module bulletfs

go 1.22
