package directory

import (
	"errors"
	"fmt"
	"strings"

	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

// Client calls a directory server over any rpc.Transport, including the
// path-walking helpers that resolve "a/b/c" through nested directories.
type Client struct {
	tr rpc.Transport
}

// NewClient builds a directory client.
func NewClient(tr rpc.Transport) *Client { return &Client{tr: tr} }

func (c *Client) call(port capability.Port, req rpc.Header, payload []byte) (rpc.Header, []byte, error) {
	rep, body, err := c.tr.Trans(port, req, payload)
	if err != nil {
		return rpc.Header{}, nil, fmt.Errorf("directory client: transport: %w", err)
	}
	if rep.Status != rpc.StatusOK {
		return rep, nil, ErrorOf(rep.Status)
	}
	return rep, body, nil
}

// Root fetches the root directory capability of the server at port.
func (c *Client) Root(port capability.Port) (capability.Capability, error) {
	rep, _, err := c.call(port, rpc.Header{Command: CmdRoot}, nil)
	if err != nil {
		return capability.Capability{}, err
	}
	return rep.Cap, nil
}

// CreateDir makes a fresh, unlinked directory.
func (c *Client) CreateDir(port capability.Port) (capability.Capability, error) {
	rep, _, err := c.call(port, rpc.Header{Command: CmdCreateDir}, nil)
	if err != nil {
		return capability.Capability{}, err
	}
	return rep.Cap, nil
}

// DeleteDir removes an empty directory.
func (c *Client) DeleteDir(dir capability.Capability) error {
	_, _, err := c.call(dir.Port, rpc.Header{Command: CmdDeleteDir, Cap: dir}, nil)
	return err
}

// Enter binds a fresh name to cap inside dir.
func (c *Client) Enter(dir capability.Capability, name string, target capability.Capability) error {
	_, _, err := c.call(dir.Port, rpc.Header{Command: CmdEnter, Cap: dir}, encodeNameCap(name, target))
	return err
}

// Replace rebinds an existing name, pushing the old binding onto the
// version history.
func (c *Client) Replace(dir capability.Capability, name string, target capability.Capability) error {
	_, _, err := c.call(dir.Port, rpc.Header{Command: CmdReplace, Cap: dir}, encodeNameCap(name, target))
	return err
}

// Remove unbinds name from dir.
func (c *Client) Remove(dir capability.Capability, name string) error {
	_, _, err := c.call(dir.Port, rpc.Header{Command: CmdRemove, Cap: dir}, []byte(name))
	return err
}

// Lookup returns the current capability bound to name in dir.
func (c *Client) Lookup(dir capability.Capability, name string) (capability.Capability, error) {
	rep, _, err := c.call(dir.Port, rpc.Header{Command: CmdLookup, Cap: dir}, []byte(name))
	if err != nil {
		return capability.Capability{}, err
	}
	return rep.Cap, nil
}

// List returns dir's rows sorted by name.
func (c *Client) List(dir capability.Capability) ([]Row, error) {
	_, body, err := c.call(dir.Port, rpc.Header{Command: CmdList, Cap: dir}, nil)
	if err != nil {
		return nil, err
	}
	return decodeRows(body)
}

// History returns the retained versions of name, oldest first.
func (c *Client) History(dir capability.Capability, name string) ([]capability.Capability, error) {
	_, body, err := c.call(dir.Port, rpc.Header{Command: CmdHistory, Cap: dir}, []byte(name))
	if err != nil {
		return nil, err
	}
	return decodeCaps(body)
}

// ApplySet performs several mutations on one directory atomically (see
// Server.ApplySet).
func (c *Client) ApplySet(dir capability.Capability, ops []SetOp) error {
	_, _, err := c.call(dir.Port, rpc.Header{Command: CmdApplySet, Cap: dir}, encodeSetOps(ops))
	return err
}

// LookupPath resolves a slash-separated path starting at dir, walking
// through nested directory capabilities. Empty components are ignored, so
// "/a//b/" resolves like "a/b".
func (c *Client) LookupPath(dir capability.Capability, path string) (capability.Capability, error) {
	cur := dir
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		next, err := c.Lookup(cur, part)
		if err != nil {
			return capability.Capability{}, fmt.Errorf("%q: %w", path, err)
		}
		cur = next
	}
	return cur, nil
}

// MkdirPath creates (as needed) every directory along path under dir and
// returns the capability of the deepest one.
func (c *Client) MkdirPath(dir capability.Capability, path string) (capability.Capability, error) {
	cur := dir
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		next, err := c.Lookup(cur, part)
		switch {
		case err == nil:
			cur = next
		case isNotFound(err):
			fresh, cerr := c.CreateDir(cur.Port)
			if cerr != nil {
				return capability.Capability{}, cerr
			}
			if eerr := c.Enter(cur, part, fresh); eerr != nil {
				return capability.Capability{}, eerr
			}
			cur = fresh
		default:
			return capability.Capability{}, err
		}
	}
	return cur, nil
}

func isNotFound(err error) bool { return errors.Is(err, ErrNotFound) }
