package directory

import (
	"errors"
	"fmt"
	"testing"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

// recoveryWorld exposes the engine too (FindLatestCheckpoint needs admin
// access).
func recoveryWorld(t *testing.T) (*Server, *client.Client, *bullet.Server) {
	t.Helper()
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 300); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(eng.Sync)
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	cl := client.New(rpc.NewLocal(mux))
	dsrv, err := New(Options{Store: cl, StorePort: eng.Port(), PFactor: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return dsrv, cl, eng
}

func TestRecoverFromStoreWithoutStatePointer(t *testing.T) {
	dsrv, cl, eng := recoveryWorld(t)
	root := dsrv.Root()
	f1, f2 := fileCap(t, "a"), fileCap(t, "b")
	if err := dsrv.Enter(root, "a", f1); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := dsrv.Replace(root, "a", f2); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	// Also some plain user files that must not confuse the scan.
	for i := 0; i < 5; i++ {
		if _, err := cl.Create(eng.Port(), []byte(fmt.Sprintf("user data %d", i)), 2); err != nil {
			t.Fatalf("Create: %v", err)
		}
	}

	// Disaster: the state pointer is lost. Recover by scanning the store.
	found, gen, err := FindLatestCheckpoint(eng)
	if err != nil {
		t.Fatalf("FindLatestCheckpoint: %v", err)
	}
	if found != dsrv.StateCap() {
		t.Fatalf("found %v, want %v", found, dsrv.StateCap())
	}
	if gen == 0 {
		t.Fatal("generation not recorded")
	}

	dsrv2, err := New(Options{
		Port: dsrv.Port(), Store: cl, StorePort: eng.Port(), State: found, PFactor: 2,
	})
	if err != nil {
		t.Fatalf("restore from recovered checkpoint: %v", err)
	}
	if dsrv2.Root() != root {
		t.Fatal("root changed across recovery")
	}
	got, err := dsrv2.Lookup(root, "a")
	if err != nil || got != f2 {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	hist, err := dsrv2.History(root, "a")
	if err != nil || len(hist) != 2 {
		t.Fatalf("History = %v, %v", hist, err)
	}
	// The recovered server keeps checkpointing with increasing
	// generations.
	if err := dsrv2.Enter(root, "post-recovery", f1); err != nil {
		t.Fatalf("Enter after recovery: %v", err)
	}
	found2, gen2, err := FindLatestCheckpoint(eng)
	if err != nil || gen2 <= gen {
		t.Fatalf("generation did not advance: %d -> %d, %v", gen, gen2, err)
	}
	if found2 != dsrv2.StateCap() {
		t.Fatal("scan found a stale checkpoint")
	}
}

func TestRecoverPicksNewestWhenOldCheckpointLingers(t *testing.T) {
	dsrv, cl, eng := recoveryWorld(t)
	root := dsrv.Root()
	if err := dsrv.Enter(root, "x", fileCap(t, "x")); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	oldState := dsrv.StateCap()
	oldBlob, err := cl.Read(oldState)
	if err != nil {
		t.Fatalf("Read old checkpoint: %v", err)
	}
	if err := dsrv.Enter(root, "y", fileCap(t, "y")); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	// Simulate the crash-between-write-and-delete: the OLD checkpoint is
	// still on the store alongside the new one.
	if _, err := cl.Create(eng.Port(), oldBlob, 2); err != nil {
		t.Fatalf("resurrecting old checkpoint: %v", err)
	}
	found, _, err := FindLatestCheckpoint(eng)
	if err != nil {
		t.Fatalf("FindLatestCheckpoint: %v", err)
	}
	if found != dsrv.StateCap() {
		t.Fatal("recovery picked the stale checkpoint")
	}
}

func TestRecoverNoCheckpoint(t *testing.T) {
	_, cl, eng := func() (*Server, *client.Client, *bullet.Server) {
		devs := make([]disk.Device, 1)
		mem, err := disk.NewMem(512, 2048)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[0] = mem
		set, err := disk.NewReplicaSet(devs...)
		if err != nil {
			t.Fatalf("NewReplicaSet: %v", err)
		}
		if err := bullet.Format(set, 100); err != nil {
			t.Fatalf("Format: %v", err)
		}
		eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
		if err != nil {
			t.Fatalf("bullet.New: %v", err)
		}
		mux := rpc.NewMux(0)
		bulletsvc.New(eng).Register(mux)
		return nil, client.New(rpc.NewLocal(mux)), eng
	}()
	// Only user files, no checkpoints.
	if _, err := cl.Create(eng.Port(), []byte("just data"), 1); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, _, err := FindLatestCheckpoint(eng); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointGenerationPeek(t *testing.T) {
	if _, ok := CheckpointGeneration(nil); ok {
		t.Fatal("nil accepted")
	}
	if _, ok := CheckpointGeneration([]byte("tooshort")); ok {
		t.Fatal("short blob accepted")
	}
	if _, ok := CheckpointGeneration(make([]byte, 20)); ok {
		t.Fatal("wrong magic accepted")
	}
	s := memServer(t)
	s.generation = 42
	s.mu.Lock()
	blob := s.snapshotLocked()
	s.mu.Unlock()
	gen, ok := CheckpointGeneration(blob)
	if !ok || gen != 42 {
		t.Fatalf("peek = %d, %v", gen, ok)
	}
}
