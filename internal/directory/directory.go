// Package directory implements the Amoeba directory service the paper
// pairs with the Bullet server (§2.1): it maps human-chosen ASCII names to
// capabilities, handles protection, and — because Bullet files are
// immutable — owns the version mechanism (§2.2: "Version management is not
// part of the file server interface, since it is done by the directory
// service").
//
// Directories are two-column tables (name, capability). Directories are
// objects themselves, addressed by capabilities of this server's port, so
// arbitrary naming graphs can be built by entering directory capabilities
// into directories. Replacing a name pushes the previous capability onto a
// bounded version history, which is what makes "update" of an immutable
// file cheap and what lets clients validate cached copies by comparing
// capabilities (§5).
//
// Persistence dogfoods the Bullet server: every mutation checkpoints the
// whole directory table into a new immutable Bullet file (write-through,
// replicated), and the previous checkpoint is deleted. Only the latest
// checkpoint capability needs to be kept somewhere small and stable (the
// daemon stores it in a local file).
package directory

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"bulletfs/internal/capability"
	"bulletfs/internal/client"
)

// Errors returned by the directory service.
var (
	// ErrNoSuchDir means the capability does not name a live directory.
	ErrNoSuchDir = errors.New("directory: no such directory")
	// ErrNotFound means the name is not in the directory.
	ErrNotFound = errors.New("directory: name not found")
	// ErrExists means Enter found the name already present.
	ErrExists = errors.New("directory: name already exists")
	// ErrBadName means the name is empty or contains '/'.
	ErrBadName = errors.New("directory: bad name")
	// ErrNotEmpty means DeleteDir was called on a non-empty directory.
	ErrNotEmpty = errors.New("directory: directory not empty")
	// ErrConfig means the server was built with unusable options.
	ErrConfig = errors.New("directory: bad configuration")
)

// Rights used by the directory server.
const (
	// RightLookup permits Lookup and resolving paths through the directory.
	RightLookup = capability.RightRead
	// RightList permits List and History.
	RightList = capability.RightList
	// RightModify permits Enter, Replace and Remove.
	RightModify = capability.RightModify
	// RightDelete permits deleting the directory object itself.
	RightDelete = capability.RightDelete
)

// Row is one directory entry as returned by List.
type Row struct {
	Name string
	Cap  capability.Capability // current version
}

// dir is one directory object.
type dir struct {
	random capability.Random
	rows   map[string]*row
}

type row struct {
	versions []capability.Capability // oldest first; last is current
}

// Options configures a directory server.
type Options struct {
	// Port is the server's capability port (zero = random).
	Port capability.Port
	// MaxVersions bounds each name's version history (default 8).
	MaxVersions int
	// Store, if non-nil, enables persistence: checkpoints are written as
	// Bullet files on StorePort through this client.
	Store *client.Client
	// StorePort is the Bullet server holding the checkpoints.
	StorePort capability.Port
	// State is the capability of an existing checkpoint to restore from
	// (zero value = start fresh with an empty root directory).
	State capability.Capability
	// PFactor is the paranoia factor used for checkpoint writes
	// (default 1; checkpoints are the server's durability).
	PFactor int
}

// Server is the directory server.
type Server struct {
	port        capability.Port
	maxVersions int
	store       *client.Client
	storePort   capability.Port
	pfactor     int

	mu         sync.Mutex
	dirs       map[uint32]*dir
	nextObj    uint32
	rootObj    uint32
	generation uint64                // bumps on every checkpoint; newest wins in recovery
	stateCap   capability.Capability // latest checkpoint (zero if none yet)
}

// New builds a directory server, restoring from opts.State if given,
// otherwise creating a fresh root directory.
func New(opts Options) (*Server, error) {
	if (opts.Port == capability.Port{}) {
		p, err := capability.NewPort()
		if err != nil {
			return nil, err
		}
		opts.Port = p
	}
	if opts.MaxVersions <= 0 {
		opts.MaxVersions = 8
	}
	if opts.PFactor == 0 {
		opts.PFactor = 1
	}
	s := &Server{
		port:        opts.Port,
		maxVersions: opts.MaxVersions,
		store:       opts.Store,
		storePort:   opts.StorePort,
		pfactor:     opts.PFactor,
		dirs:        make(map[uint32]*dir),
		nextObj:     1,
	}
	if (opts.State != capability.Capability{}) {
		if s.store == nil {
			return nil, fmt.Errorf("restoring state requires a store: %w", ErrConfig)
		}
		blob, err := s.store.Read(opts.State)
		if err != nil {
			return nil, fmt.Errorf("directory: reading checkpoint: %w", err)
		}
		if err := s.restore(blob); err != nil {
			return nil, err
		}
		s.stateCap = opts.State
		return s, nil
	}
	// Fresh server: create the root directory.
	rootObj, _, err := s.newDirLocked()
	if err != nil {
		return nil, err
	}
	s.rootObj = rootObj
	if err := s.checkpointLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Port returns the server's capability port.
func (s *Server) Port() capability.Port { return s.port }

// Root returns the owner capability of the root directory.
func (s *Server) Root() capability.Capability {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dirs[s.rootObj]
	return capability.Owner(s.port, s.rootObj, d.random)
}

// StateCap returns the capability of the latest checkpoint; persist it
// somewhere small to restore the server after a restart.
func (s *Server) StateCap() capability.Capability {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateCap
}

// newDirLocked allocates a fresh directory object.
func (s *Server) newDirLocked() (uint32, capability.Random, error) {
	r, err := capability.NewRandom()
	if err != nil {
		return 0, capability.Random{}, err
	}
	obj := s.nextObj
	s.nextObj++
	s.dirs[obj] = &dir{random: r, rows: make(map[string]*row)}
	return obj, r, nil
}

// resolve verifies a directory capability and returns its object.
func (s *Server) resolveLocked(c capability.Capability, want capability.Rights) (uint32, *dir, error) {
	if c.Port != s.port {
		return 0, nil, fmt.Errorf("capability for another server: %w", ErrNoSuchDir)
	}
	d, ok := s.dirs[c.Object]
	if !ok {
		return 0, nil, fmt.Errorf("object %d: %w", c.Object, ErrNoSuchDir)
	}
	if err := capability.Require(c, d.random, want); err != nil {
		return 0, nil, err
	}
	return c.Object, d, nil
}

func validName(name string) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("%q: %w", name, ErrBadName)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return fmt.Errorf("%q: %w", name, ErrBadName)
		}
	}
	return nil
}

// CreateDir makes a new, empty directory object and returns its owner
// capability. The new directory is not linked anywhere; use Enter to give
// it a name in another directory.
func (s *Server) CreateDir() (capability.Capability, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, r, err := s.newDirLocked()
	if err != nil {
		return capability.Capability{}, err
	}
	if err := s.checkpointLocked(); err != nil {
		delete(s.dirs, obj)
		return capability.Capability{}, err
	}
	return capability.Owner(s.port, obj, r), nil
}

// DeleteDir removes an empty directory object.
func (s *Server) DeleteDir(c capability.Capability) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, d, err := s.resolveLocked(c, RightDelete)
	if err != nil {
		return err
	}
	if len(d.rows) != 0 {
		return fmt.Errorf("%d rows: %w", len(d.rows), ErrNotEmpty)
	}
	if obj == s.rootObj {
		return fmt.Errorf("cannot delete the root: %w", ErrNotEmpty)
	}
	delete(s.dirs, obj)
	if err := s.checkpointLocked(); err != nil {
		s.dirs[obj] = d // roll back
		return err
	}
	return nil
}

// Enter binds name to cap in the directory; the name must be fresh.
func (s *Server) Enter(dirCap capability.Capability, name string, c capability.Capability) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, d, err := s.resolveLocked(dirCap, RightModify)
	if err != nil {
		return err
	}
	if _, exists := d.rows[name]; exists {
		return fmt.Errorf("%q: %w", name, ErrExists)
	}
	d.rows[name] = &row{versions: []capability.Capability{c}}
	if err := s.checkpointLocked(); err != nil {
		delete(d.rows, name)
		return err
	}
	return nil
}

// Replace binds name to cap, pushing the previous binding onto the
// version history — the "store files as sequences of versions" model of
// paper §2. The name must already exist (use Enter for fresh names).
func (s *Server) Replace(dirCap capability.Capability, name string, c capability.Capability) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, d, err := s.resolveLocked(dirCap, RightModify)
	if err != nil {
		return err
	}
	rw, ok := d.rows[name]
	if !ok {
		return fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	old := rw.versions
	rw.versions = append(rw.versions, c)
	if len(rw.versions) > s.maxVersions {
		rw.versions = rw.versions[len(rw.versions)-s.maxVersions:]
	}
	if err := s.checkpointLocked(); err != nil {
		rw.versions = old
		return err
	}
	return nil
}

// Remove unbinds name (all versions).
func (s *Server) Remove(dirCap capability.Capability, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, d, err := s.resolveLocked(dirCap, RightModify)
	if err != nil {
		return err
	}
	rw, ok := d.rows[name]
	if !ok {
		return fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	delete(d.rows, name)
	if err := s.checkpointLocked(); err != nil {
		d.rows[name] = rw
		return err
	}
	return nil
}

// SetOpKind selects what one element of an atomic set update does.
type SetOpKind int

// Atomic set-operation kinds.
const (
	SetEnter   SetOpKind = iota + 1 // bind a fresh name
	SetReplace                      // rebind, pushing version history
	SetRemove                       // unbind
)

// SetOp is one element of an atomic update.
type SetOp struct {
	Kind SetOpKind
	Name string
	Cap  capability.Capability // ignored for SetRemove
}

// ApplySet performs several mutations on one directory atomically: either
// every operation applies and a single checkpoint makes them durable
// together, or none does. This is the consistency primitive the paper's
// companion work ("Consistency and Availability in the Amoeba Distributed
// Operating System", ref [7]) builds on — e.g. republishing a multi-file
// artifact so readers never observe a half-updated set.
func (s *Server) ApplySet(dirCap capability.Capability, ops []SetOp) error {
	if len(ops) == 0 {
		return nil
	}
	for _, op := range ops {
		if err := validName(op.Name); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, d, err := s.resolveLocked(dirCap, RightModify)
	if err != nil {
		return err
	}
	// Validate everything against the current state before touching it;
	// duplicate names within one set are rejected (their outcome would
	// depend on ordering).
	seen := make(map[string]bool, len(ops))
	for _, op := range ops {
		if seen[op.Name] {
			return fmt.Errorf("name %q repeated in set: %w", op.Name, ErrBadName)
		}
		seen[op.Name] = true
		_, exists := d.rows[op.Name]
		switch op.Kind {
		case SetEnter:
			if exists {
				return fmt.Errorf("%q: %w", op.Name, ErrExists)
			}
		case SetReplace, SetRemove:
			if !exists {
				return fmt.Errorf("%q: %w", op.Name, ErrNotFound)
			}
		default:
			return fmt.Errorf("set op kind %d: %w", op.Kind, ErrBadName)
		}
	}
	// Apply in memory, remembering how to undo.
	undo := make(map[string]*row, len(ops))
	for _, op := range ops {
		undo[op.Name] = d.rows[op.Name]
		switch op.Kind {
		case SetEnter:
			d.rows[op.Name] = &row{versions: []capability.Capability{op.Cap}}
		case SetReplace:
			old := d.rows[op.Name]
			versions := append(append([]capability.Capability{}, old.versions...), op.Cap)
			if len(versions) > s.maxVersions {
				versions = versions[len(versions)-s.maxVersions:]
			}
			d.rows[op.Name] = &row{versions: versions}
		case SetRemove:
			delete(d.rows, op.Name)
		}
	}
	if err := s.checkpointLocked(); err != nil {
		for name, old := range undo {
			if old == nil {
				delete(d.rows, name)
			} else {
				d.rows[name] = old
			}
		}
		return err
	}
	return nil
}

// Lookup returns the current capability bound to name.
func (s *Server) Lookup(dirCap capability.Capability, name string) (capability.Capability, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, d, err := s.resolveLocked(dirCap, RightLookup)
	if err != nil {
		return capability.Capability{}, err
	}
	rw, ok := d.rows[name]
	if !ok {
		return capability.Capability{}, fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	return rw.versions[len(rw.versions)-1], nil
}

// List returns the directory's rows, sorted by name.
func (s *Server) List(dirCap capability.Capability) ([]Row, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, d, err := s.resolveLocked(dirCap, RightList)
	if err != nil {
		return nil, err
	}
	out := make([]Row, 0, len(d.rows))
	for name, rw := range d.rows {
		out = append(out, Row{Name: name, Cap: rw.versions[len(rw.versions)-1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// History returns all retained versions for name, oldest first.
func (s *Server) History(dirCap capability.Capability, name string) ([]capability.Capability, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, d, err := s.resolveLocked(dirCap, RightList)
	if err != nil {
		return nil, err
	}
	rw, ok := d.rows[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	out := make([]capability.Capability, len(rw.versions))
	copy(out, rw.versions)
	return out, nil
}

// ReferencedObjects collects the object numbers of every capability for
// the given server port reachable from any directory — current bindings
// and retained history alike, plus the directory server's own checkpoint.
// This is the mark phase of the Amoeba-style garbage collector; feed the
// result to bullet.Server.SweepExcept during quiescence.
func (s *Server) ReferencedObjects(port capability.Port) map[uint32]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint32]bool)
	for _, d := range s.dirs {
		for _, rw := range d.rows {
			for _, c := range rw.versions {
				if c.Port == port {
					out[c.Object] = true
				}
			}
		}
	}
	if s.stateCap.Port == port {
		out[s.stateCap.Object] = true
	}
	return out
}

// DirCount returns the number of live directory objects.
func (s *Server) DirCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dirs)
}

// checkpointLocked persists the whole directory table as a fresh Bullet
// file and deletes the previous checkpoint. A nil store means in-memory
// operation (tests, benchmarks).
func (s *Server) checkpointLocked() error {
	if s.store == nil {
		return nil
	}
	s.generation++
	blob := s.snapshotLocked()
	newCap, err := s.store.Create(s.storePort, blob, s.pfactor)
	if err != nil {
		return fmt.Errorf("directory: writing checkpoint: %w", err)
	}
	if (s.stateCap != capability.Capability{}) {
		// Best effort: losing the delete only leaks one old checkpoint.
		_ = s.store.Delete(s.stateCap)
	}
	s.stateCap = newCap
	return nil
}
