package directory

import (
	"encoding/binary"
	"errors"

	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

// Command codes of the directory protocol.
const (
	CmdCreateDir uint32 = 32 // -> reply Cap
	CmdDeleteDir uint32 = 33 // Cap
	CmdEnter     uint32 = 34 // Cap, payload = name + cap
	CmdReplace   uint32 = 35 // Cap, payload = name + cap
	CmdRemove    uint32 = 36 // Cap, payload = name
	CmdLookup    uint32 = 37 // Cap, payload = name -> reply Cap
	CmdList      uint32 = 38 // Cap -> reply payload = rows
	CmdHistory   uint32 = 39 // Cap, payload = name -> reply payload = caps
	CmdRoot      uint32 = 40 // -> reply Cap (the root directory)
	CmdApplySet  uint32 = 41 // Cap, payload = encoded SetOps (atomic)
)

// StatusOf maps directory errors to transaction statuses.
func StatusOf(err error) rpc.Status {
	switch {
	case err == nil:
		return rpc.StatusOK
	case errors.Is(err, ErrNoSuchDir):
		return rpc.StatusNoSuchObject
	case errors.Is(err, ErrNotFound):
		return rpc.StatusNotFound
	case errors.Is(err, ErrExists):
		return rpc.StatusExists
	case errors.Is(err, ErrBadName), errors.Is(err, ErrNotEmpty):
		return rpc.StatusBadRequest
	case errors.Is(err, capability.ErrBadCheck):
		return rpc.StatusBadCheck
	case errors.Is(err, capability.ErrBadRights):
		return rpc.StatusBadRights
	default:
		return rpc.StatusInternal
	}
}

// ErrorOf maps reply statuses back to directory errors on the client side.
func ErrorOf(st rpc.Status) error {
	switch st {
	case rpc.StatusOK:
		return nil
	case rpc.StatusNoSuchObject:
		return ErrNoSuchDir
	case rpc.StatusNotFound:
		return ErrNotFound
	case rpc.StatusExists:
		return ErrExists
	case rpc.StatusBadRequest:
		return ErrBadName
	case rpc.StatusBadCheck:
		return capability.ErrBadCheck
	case rpc.StatusBadRights:
		return capability.ErrBadRights
	default:
		return rpc.Errf(st, "directory server error")
	}
}

// encodeNameCap encodes "name + capability" request payloads.
func encodeNameCap(name string, c capability.Capability) []byte {
	buf := make([]byte, 0, 2+len(name)+capability.EncodedLen)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(name)))
	buf = append(buf, l[:]...)
	buf = append(buf, name...)
	return capability.Encode(buf, c)
}

func decodeNameCap(payload []byte) (string, capability.Capability, error) {
	if len(payload) < 2 {
		return "", capability.Capability{}, rpc.ErrBadFrame
	}
	n := int(binary.BigEndian.Uint16(payload[:2]))
	payload = payload[2:]
	if len(payload) < n {
		return "", capability.Capability{}, rpc.ErrBadFrame
	}
	name := string(payload[:n])
	c, _, err := capability.Decode(payload[n:])
	if err != nil {
		return "", capability.Capability{}, err
	}
	return name, c, nil
}

// encodeRows encodes a List reply.
func encodeRows(rows []Row) []byte {
	var buf []byte
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(rows)))
	buf = append(buf, l[:]...)
	for _, r := range rows {
		binary.BigEndian.PutUint16(l[:], uint16(len(r.Name)))
		buf = append(buf, l[:]...)
		buf = append(buf, r.Name...)
		buf = capability.Encode(buf, r.Cap)
	}
	return buf
}

func decodeRows(payload []byte) ([]Row, error) {
	if len(payload) < 2 {
		return nil, rpc.ErrBadFrame
	}
	count := int(binary.BigEndian.Uint16(payload[:2]))
	payload = payload[2:]
	rows := make([]Row, 0, count)
	for i := 0; i < count; i++ {
		if len(payload) < 2 {
			return nil, rpc.ErrBadFrame
		}
		n := int(binary.BigEndian.Uint16(payload[:2]))
		payload = payload[2:]
		if len(payload) < n {
			return nil, rpc.ErrBadFrame
		}
		name := string(payload[:n])
		payload = payload[n:]
		c, rest, err := capability.Decode(payload)
		if err != nil {
			return nil, err
		}
		payload = rest
		rows = append(rows, Row{Name: name, Cap: c})
	}
	return rows, nil
}

// encodeSetOps encodes an ApplySet request payload: u16 count, then per
// op {u8 kind, u16 name length, name, capability}.
func encodeSetOps(ops []SetOp) []byte {
	var buf []byte
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(ops)))
	buf = append(buf, l[:]...)
	for _, op := range ops {
		buf = append(buf, byte(op.Kind))
		binary.BigEndian.PutUint16(l[:], uint16(len(op.Name)))
		buf = append(buf, l[:]...)
		buf = append(buf, op.Name...)
		buf = capability.Encode(buf, op.Cap)
	}
	return buf
}

func decodeSetOps(payload []byte) ([]SetOp, error) {
	if len(payload) < 2 {
		return nil, rpc.ErrBadFrame
	}
	count := int(binary.BigEndian.Uint16(payload[:2]))
	payload = payload[2:]
	out := make([]SetOp, 0, count)
	for i := 0; i < count; i++ {
		if len(payload) < 3 {
			return nil, rpc.ErrBadFrame
		}
		op := SetOp{Kind: SetOpKind(payload[0])}
		n := int(binary.BigEndian.Uint16(payload[1:3]))
		payload = payload[3:]
		if len(payload) < n {
			return nil, rpc.ErrBadFrame
		}
		op.Name = string(payload[:n])
		payload = payload[n:]
		c, rest, err := capability.Decode(payload)
		if err != nil {
			return nil, err
		}
		op.Cap = c
		payload = rest
		out = append(out, op)
	}
	return out, nil
}

// encodeCaps encodes a History reply.
func encodeCaps(caps []capability.Capability) []byte {
	var buf []byte
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(caps)))
	buf = append(buf, l[:]...)
	for _, c := range caps {
		buf = capability.Encode(buf, c)
	}
	return buf
}

func decodeCaps(payload []byte) ([]capability.Capability, error) {
	if len(payload) < 2 {
		return nil, rpc.ErrBadFrame
	}
	count := int(binary.BigEndian.Uint16(payload[:2]))
	payload = payload[2:]
	caps := make([]capability.Capability, 0, count)
	for i := 0; i < count; i++ {
		c, rest, err := capability.Decode(payload)
		if err != nil {
			return nil, err
		}
		payload = rest
		caps = append(caps, c)
	}
	return caps, nil
}

// Register installs the directory server's handler on mux.
func (s *Server) Register(mux *rpc.Mux) { mux.Register(s.port, s.Handle) }

// Handle processes one directory transaction.
func (s *Server) Handle(req rpc.Header, payload []byte) (rpc.Header, []byte) {
	fail := func(err error) (rpc.Header, []byte) {
		return rpc.ReplyErr(StatusOf(err)), nil
	}
	switch req.Command {
	case CmdRoot:
		return rpc.Header{Status: rpc.StatusOK, Cap: s.Root()}, nil

	case CmdCreateDir:
		c, err := s.CreateDir()
		if err != nil {
			return fail(err)
		}
		return rpc.Header{Status: rpc.StatusOK, Cap: c}, nil

	case CmdDeleteDir:
		if err := s.DeleteDir(req.Cap); err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), nil

	case CmdEnter, CmdReplace:
		name, c, err := decodeNameCap(payload)
		if err != nil {
			return rpc.ReplyErr(rpc.StatusBadRequest), nil
		}
		if req.Command == CmdEnter {
			err = s.Enter(req.Cap, name, c)
		} else {
			err = s.Replace(req.Cap, name, c)
		}
		if err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), nil

	case CmdRemove:
		if err := s.Remove(req.Cap, string(payload)); err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), nil

	case CmdLookup:
		c, err := s.Lookup(req.Cap, string(payload))
		if err != nil {
			return fail(err)
		}
		return rpc.Header{Status: rpc.StatusOK, Cap: c}, nil

	case CmdList:
		rows, err := s.List(req.Cap)
		if err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), encodeRows(rows)

	case CmdHistory:
		caps, err := s.History(req.Cap, string(payload))
		if err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), encodeCaps(caps)

	case CmdApplySet:
		ops, err := decodeSetOps(payload)
		if err != nil {
			return rpc.ReplyErr(rpc.StatusBadRequest), nil
		}
		if err := s.ApplySet(req.Cap, ops); err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), nil

	default:
		return rpc.ReplyErr(rpc.StatusBadCommand), nil
	}
}
