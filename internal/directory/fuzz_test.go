package directory

import (
	"testing"
)

// FuzzRestore hardens checkpoint deserialization: the bytes come from the
// Bullet store, which other (possibly buggy) software can write to.
func FuzzRestore(f *testing.F) {
	// Seed with a real checkpoint.
	s, err := New(Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Enter(s.Root(), "seed", s.Root()); err != nil {
		f.Fatal(err)
	}
	s.mu.Lock()
	blob := s.snapshotLocked()
	s.mu.Unlock()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint"))
	f.Add(blob[:len(blob)/2]) // truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := &Server{maxVersions: 8, dirs: make(map[uint32]*dir)}
		if err := srv.restore(data); err != nil {
			return
		}
		// A checkpoint that restores must re-serialize and restore again.
		srv.mu.Lock()
		again := srv.snapshotLocked()
		srv.mu.Unlock()
		srv2 := &Server{maxVersions: 8, dirs: make(map[uint32]*dir)}
		if err := srv2.restore(again); err != nil {
			t.Fatalf("re-restore: %v", err)
		}
		if len(srv2.dirs) != len(srv.dirs) {
			t.Fatalf("dir count changed: %d -> %d", len(srv.dirs), len(srv2.dirs))
		}
	})
}
