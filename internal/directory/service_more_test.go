package directory

import (
	"errors"
	"testing"

	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

func TestDirStatusErrorRoundTrip(t *testing.T) {
	cases := []error{
		ErrNoSuchDir, ErrNotFound, ErrExists,
		capability.ErrBadCheck, capability.ErrBadRights,
	}
	for _, in := range cases {
		st := StatusOf(in)
		if st == rpc.StatusOK || st == rpc.StatusInternal {
			t.Errorf("StatusOf(%v) = %v", in, st)
			continue
		}
		if out := ErrorOf(st); !errors.Is(out, in) {
			t.Errorf("round trip %v -> %v -> %v", in, st, out)
		}
	}
	// ErrBadName and ErrNotEmpty collapse onto StatusBadRequest.
	for _, in := range []error{ErrBadName, ErrNotEmpty} {
		if StatusOf(in) != rpc.StatusBadRequest {
			t.Errorf("StatusOf(%v) = %v", in, StatusOf(in))
		}
	}
	if StatusOf(nil) != rpc.StatusOK || ErrorOf(rpc.StatusOK) != nil {
		t.Error("nil round trip broken")
	}
	if StatusOf(errors.New("x")) != rpc.StatusInternal || ErrorOf(rpc.StatusInternal) == nil {
		t.Error("internal mapping broken")
	}
}

func TestClientDeleteDirAndErrors(t *testing.T) {
	dsrv := memServer(t)
	mux := rpc.NewMux(0)
	dsrv.Register(mux)
	dc := NewClient(rpc.NewLocal(mux))

	sub, err := dc.CreateDir(dsrv.Port())
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if err := dc.DeleteDir(sub); err != nil {
		t.Fatalf("DeleteDir: %v", err)
	}
	if err := dc.DeleteDir(sub); !errors.Is(err, ErrNoSuchDir) {
		t.Fatalf("double DeleteDir err = %v", err)
	}
	root, err := dc.Root(dsrv.Port())
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if err := dc.Enter(root, "bad/name", fileCap(t, "x")); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad name err = %v", err)
	}
	rep, _ := dsrv.Handle(rpc.Header{Command: 999}, nil)
	if rep.Status != rpc.StatusBadCommand {
		t.Fatalf("bad command status = %v", rep.Status)
	}
	// Malformed Enter payload.
	rep, _ = dsrv.Handle(rpc.Header{Command: CmdEnter, Cap: root}, []byte{0x00})
	if rep.Status != rpc.StatusBadRequest {
		t.Fatalf("truncated payload status = %v", rep.Status)
	}
}

func TestReferencedObjectsWalksEverything(t *testing.T) {
	dsrv := memServer(t)
	root := dsrv.Root()
	port := capability.PortFromString("files-here")
	other := capability.PortFromString("files-elsewhere")

	mk := func(p capability.Port, obj uint32) capability.Capability {
		r, err := capability.NewRandom()
		if err != nil {
			t.Fatalf("NewRandom: %v", err)
		}
		return capability.Owner(p, obj, r)
	}

	// Current binding, history versions, nested directory binding, and a
	// capability for a different server that must be ignored.
	if err := dsrv.Enter(root, "f", mk(port, 10)); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := dsrv.Replace(root, "f", mk(port, 11)); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	sub, err := dsrv.CreateDir()
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if err := dsrv.Enter(root, "sub", sub); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := dsrv.Enter(sub, "g", mk(port, 12)); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := dsrv.Enter(sub, "foreign", mk(other, 99)); err != nil {
		t.Fatalf("Enter: %v", err)
	}

	refs := dsrv.ReferencedObjects(port)
	for _, want := range []uint32{10, 11, 12} {
		if !refs[want] {
			t.Errorf("missing reference %d in %v", want, refs)
		}
	}
	if refs[99] {
		t.Error("foreign-port object marked")
	}
	if len(refs) != 3 {
		t.Errorf("refs = %v, want exactly 3 (in-memory server has no checkpoint)", refs)
	}
	if dsrv.DirCount() != 2 {
		t.Errorf("DirCount = %d, want 2", dsrv.DirCount())
	}
}

func TestReferencedObjectsIncludesCheckpoint(t *testing.T) {
	dsrv, _, storePort, _ := bulletWorld(t)
	refs := dsrv.ReferencedObjects(storePort)
	state := dsrv.StateCap()
	if !refs[state.Object] {
		t.Fatalf("checkpoint object %d missing from refs %v", state.Object, refs)
	}
}
