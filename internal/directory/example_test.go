package directory_test

import (
	"fmt"
	"log"

	"bulletfs/internal/capability"
	"bulletfs/internal/directory"
)

// The version mechanism (§2.2): Replace pushes the previous binding onto
// a history, so "updating" an immutable file never loses the old one.
func ExampleServer_Replace() {
	srv, err := directory.New(directory.Options{MaxVersions: 4})
	if err != nil {
		log.Fatal(err)
	}
	root := srv.Root()

	mkcap := func(obj uint32) capability.Capability {
		r, _ := capability.NewRandom()
		return capability.Owner(capability.PortFromString("bullet"), obj, r)
	}

	_ = srv.Enter(root, "report.txt", mkcap(1))
	_ = srv.Replace(root, "report.txt", mkcap(2))
	_ = srv.Replace(root, "report.txt", mkcap(3))

	current, _ := srv.Lookup(root, "report.txt")
	history, _ := srv.History(root, "report.txt")
	fmt.Printf("current is object %d\n", current.Object)
	for i, v := range history {
		fmt.Printf("version %d: object %d\n", i+1, v.Object)
	}
	// Output:
	// current is object 3
	// version 1: object 1
	// version 2: object 2
	// version 3: object 3
}
