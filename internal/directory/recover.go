package directory

import (
	"errors"
	"fmt"

	"bulletfs/internal/bullet"
	"bulletfs/internal/capability"
)

// ErrNoCheckpoint means no directory checkpoint exists on the store.
var ErrNoCheckpoint = errors.New("directory: no checkpoint found on store")

// FindLatestCheckpoint scans a Bullet engine for directory checkpoints
// and returns the newest one's owner capability and generation. This is
// the disaster-recovery path: the local state-pointer file is gone (or
// the machine with it is), but the checkpoints themselves live on the
// replicated Bullet store and are self-describing — magic plus a
// monotonic generation. It is an administrative scan (engine access, not
// client access); run it on the store's operator host.
//
// A crash between writing checkpoint N+1 and deleting checkpoint N leaves
// both on the store; the generation picks the newer, and the older is
// reclaimable by the garbage collector afterwards.
func FindLatestCheckpoint(eng *bullet.Server) (capability.Capability, uint64, error) {
	var best capability.Capability
	var bestGen uint64
	found := false
	for _, obj := range eng.Objects() {
		blob, owner, err := eng.ReadObjectAdmin(obj)
		if err != nil {
			return capability.Capability{}, 0, fmt.Errorf("directory: scanning object %d: %w", obj, err)
		}
		gen, ok := CheckpointGeneration(blob)
		if !ok {
			continue // some other file
		}
		if !found || gen > bestGen {
			best, bestGen, found = owner, gen, true
		}
	}
	if !found {
		return capability.Capability{}, 0, ErrNoCheckpoint
	}
	return best, bestGen, nil
}
