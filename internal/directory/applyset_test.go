package directory

import (
	"errors"
	"fmt"
	"testing"

	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

func TestApplySetAllOrNothing(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	a, b, c := fileCap(t, "a"), fileCap(t, "b"), fileCap(t, "c")
	if err := s.Enter(root, "existing", a); err != nil {
		t.Fatalf("Enter: %v", err)
	}

	// A valid set: enter two names, replace one, remove none.
	err := s.ApplySet(root, []SetOp{
		{Kind: SetEnter, Name: "new1", Cap: b},
		{Kind: SetEnter, Name: "new2", Cap: c},
		{Kind: SetReplace, Name: "existing", Cap: b},
	})
	if err != nil {
		t.Fatalf("ApplySet: %v", err)
	}
	for name, want := range map[string]capability.Capability{
		"new1": b, "new2": c, "existing": b,
	} {
		got, err := s.Lookup(root, name)
		if err != nil || got != want {
			t.Fatalf("Lookup(%s) = %v, %v", name, got, err)
		}
	}
	hist, err := s.History(root, "existing")
	if err != nil || len(hist) != 2 {
		t.Fatalf("History = %v, %v", hist, err)
	}

	// An invalid set (last op enters an existing name): NOTHING applies.
	err = s.ApplySet(root, []SetOp{
		{Kind: SetRemove, Name: "new1"},
		{Kind: SetReplace, Name: "new2", Cap: a},
		{Kind: SetEnter, Name: "existing", Cap: a}, // conflict
	})
	if !errors.Is(err, ErrExists) {
		t.Fatalf("conflicting set err = %v", err)
	}
	if _, err := s.Lookup(root, "new1"); err != nil {
		t.Fatal("failed set removed a name anyway")
	}
	got, err := s.Lookup(root, "new2")
	if err != nil || got != c {
		t.Fatal("failed set replaced a name anyway")
	}
}

func TestApplySetValidation(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	if err := s.ApplySet(root, nil); err != nil {
		t.Fatalf("empty set err = %v", err)
	}
	if err := s.ApplySet(root, []SetOp{{Kind: SetRemove, Name: "ghost"}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove-missing err = %v", err)
	}
	if err := s.ApplySet(root, []SetOp{{Kind: SetEnter, Name: "a/b", Cap: fileCap(t, "x")}}); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad name err = %v", err)
	}
	if err := s.ApplySet(root, []SetOp{{Kind: SetOpKind(99), Name: "x", Cap: fileCap(t, "x")}}); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad kind err = %v", err)
	}
	// Duplicate names within a set are order-dependent: rejected.
	err := s.ApplySet(root, []SetOp{
		{Kind: SetEnter, Name: "dup", Cap: fileCap(t, "1")},
		{Kind: SetReplace, Name: "dup", Cap: fileCap(t, "2")},
	})
	if !errors.Is(err, ErrBadName) {
		t.Fatalf("duplicate-name set err = %v", err)
	}
	// Rights enforced.
	lookupOnly, err := capability.Restrict(root, RightLookup)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	err = s.ApplySet(lookupOnly, []SetOp{{Kind: SetEnter, Name: "x", Cap: fileCap(t, "x")}})
	if !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("unauthorized set err = %v", err)
	}
}

func TestApplySetSingleCheckpoint(t *testing.T) {
	dsrv, cl, storePort, _ := bulletWorld(t)
	root := dsrv.Root()
	stats0, err := cl.Stat(storePort)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	ops := make([]SetOp, 10)
	for i := range ops {
		ops[i] = SetOp{Kind: SetEnter, Name: fmt.Sprintf("f%d", i), Cap: fileCap(t, "x")}
	}
	if err := dsrv.ApplySet(root, ops); err != nil {
		t.Fatalf("ApplySet: %v", err)
	}
	stats1, err := cl.Stat(storePort)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	// Ten mutations, ONE checkpoint write (plus the delete of the old).
	if got := stats1.Engine.Creates - stats0.Engine.Creates; got != 1 {
		t.Fatalf("checkpoint creates = %d, want 1", got)
	}
}

func TestApplySetOverRPC(t *testing.T) {
	dsrv, _, _, mux := bulletWorld(t)
	dsrv.Register(mux)
	dc := NewClient(rpc.NewLocal(mux))
	root, err := dc.Root(dsrv.Port())
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	a, b := fileCap(t, "a"), fileCap(t, "b")
	err = dc.ApplySet(root, []SetOp{
		{Kind: SetEnter, Name: "one", Cap: a},
		{Kind: SetEnter, Name: "two", Cap: b},
	})
	if err != nil {
		t.Fatalf("ApplySet over RPC: %v", err)
	}
	err = dc.ApplySet(root, []SetOp{
		{Kind: SetReplace, Name: "one", Cap: b},
		{Kind: SetRemove, Name: "two"},
	})
	if err != nil {
		t.Fatalf("second ApplySet: %v", err)
	}
	got, err := dc.Lookup(root, "one")
	if err != nil || got != b {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := dc.Lookup(root, "two"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removed name err = %v", err)
	}
	// Malformed payload straight at the handler.
	rep, _ := dsrv.Handle(rpc.Header{Command: CmdApplySet, Cap: root}, []byte{0})
	if rep.Status != rpc.StatusBadRequest {
		t.Fatalf("malformed set status = %v", rep.Status)
	}
}

func TestSetOpsCodecRoundTrip(t *testing.T) {
	in := []SetOp{
		{Kind: SetEnter, Name: "alpha", Cap: fileCap(t, "a")},
		{Kind: SetReplace, Name: "beta", Cap: fileCap(t, "b")},
		{Kind: SetRemove, Name: "gamma"},
	}
	out, err := decodeSetOps(encodeSetOps(in))
	if err != nil || len(out) != 3 {
		t.Fatalf("decode = %v, %v", out, err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("op %d: %+v != %+v", i, in[i], out[i])
		}
	}
	if _, err := decodeSetOps([]byte{0, 2, 1}); err == nil {
		t.Fatal("truncated set accepted")
	}
}
