package directory

import (
	"encoding/binary"
	"fmt"
	"sort"

	"bulletfs/internal/capability"
)

// Checkpoint wire format (all big-endian):
//
//	magic      uint32 ('DIR1')
//	generation uint64 (monotonic per mutation; highest = newest)
//	rootObj    uint32
//	nextObj    uint32
//	dirCount   uint32
//	per directory:
//	  obj      uint32
//	  random   6 bytes
//	  rowCount uint32
//	  per row (sorted by name for determinism):
//	    nameLen  uint16, name bytes
//	    verCount uint16, capabilities (16 bytes each)
const checkpointMagic = 0x44495231 // "DIR1"

// snapshotLocked serializes the directory table.
func (s *Server) snapshotLocked() []byte {
	buf := make([]byte, 0, 1024)
	var scratch [4]byte
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	put16 := func(v uint16) {
		binary.BigEndian.PutUint16(scratch[:2], v)
		buf = append(buf, scratch[:2]...)
	}

	put32(checkpointMagic)
	var gen [8]byte
	binary.BigEndian.PutUint64(gen[:], s.generation)
	buf = append(buf, gen[:]...)
	put32(s.rootObj)
	put32(s.nextObj)
	put32(uint32(len(s.dirs)))

	objs := make([]uint32, 0, len(s.dirs))
	for obj := range s.dirs {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, obj := range objs {
		d := s.dirs[obj]
		put32(obj)
		buf = append(buf, d.random[:]...)
		put32(uint32(len(d.rows)))
		names := make([]string, 0, len(d.rows))
		for name := range d.rows {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rw := d.rows[name]
			put16(uint16(len(name)))
			buf = append(buf, name...)
			put16(uint16(len(rw.versions)))
			for _, c := range rw.versions {
				buf = capability.Encode(buf, c)
			}
		}
	}
	return buf
}

// restore deserializes a checkpoint into the (empty) server.
func (s *Server) restore(blob []byte) error {
	r := reader{buf: blob}
	if magic := r.u32(); magic != checkpointMagic {
		return fmt.Errorf("directory: checkpoint magic %08x", magic)
	}
	s.generation = r.u64()
	s.rootObj = r.u32()
	s.nextObj = r.u32()
	dirCount := int(r.u32())
	// A forged or corrupted blob can claim absurd counts; every directory
	// needs at least 14 bytes, every row at least 4, every version 16.
	// Validating counts against the remaining bytes bounds both time and
	// allocation before any looping starts.
	if dirCount < 0 || dirCount > len(r.buf)/14 {
		return fmt.Errorf("directory: checkpoint claims %d directories in %d bytes", dirCount, len(r.buf))
	}
	for i := 0; i < dirCount && r.err == nil; i++ {
		obj := r.u32()
		var random capability.Random
		r.bytes(random[:])
		rowCount := int(r.u32())
		if rowCount < 0 || rowCount > len(r.buf)/4 {
			return fmt.Errorf("directory: checkpoint claims %d rows in %d bytes", rowCount, len(r.buf))
		}
		d := &dir{random: random, rows: make(map[string]*row, rowCount)}
		for j := 0; j < rowCount && r.err == nil; j++ {
			name := string(r.n(int(r.u16())))
			verCount := int(r.u16())
			if verCount < 0 || verCount > len(r.buf)/capability.EncodedLen {
				return fmt.Errorf("directory: checkpoint claims %d versions in %d bytes", verCount, len(r.buf))
			}
			rw := &row{versions: make([]capability.Capability, 0, verCount)}
			for k := 0; k < verCount; k++ {
				var c capability.Capability
				if err := c.UnmarshalBinary(r.n(capability.EncodedLen)); err != nil {
					return fmt.Errorf("directory: checkpoint capability: %w", err)
				}
				rw.versions = append(rw.versions, c)
			}
			if len(rw.versions) == 0 {
				return fmt.Errorf("directory: checkpoint row %q with no versions", name)
			}
			d.rows[name] = rw
		}
		s.dirs[obj] = d
	}
	if r.err != nil {
		return fmt.Errorf("directory: truncated checkpoint: %w", r.err)
	}
	if _, ok := s.dirs[s.rootObj]; !ok {
		return fmt.Errorf("directory: checkpoint lost the root directory")
	}
	return nil
}

// reader is a tiny cursor with sticky error semantics.
type reader struct {
	buf []byte
	err error
}

func (r *reader) n(count int) []byte {
	if r.err != nil || count < 0 || count > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("need %d bytes, have %d", count, len(r.buf))
		}
		return make([]byte, max(count, 0))
	}
	out := r.buf[:count]
	r.buf = r.buf[count:]
	return out
}

func (r *reader) bytes(dst []byte) { copy(dst, r.n(len(dst))) }

func (r *reader) u32() uint32 {
	b := r.n(4)
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u16() uint16 {
	b := r.n(2)
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u64() uint64 {
	b := r.n(8)
	return binary.BigEndian.Uint64(b)
}

// CheckpointGeneration peeks a checkpoint blob's generation without a full
// restore; recovery scans use it to pick the newest checkpoint.
func CheckpointGeneration(blob []byte) (uint64, bool) {
	if len(blob) < 12 {
		return 0, false
	}
	if binary.BigEndian.Uint32(blob[0:4]) != checkpointMagic {
		return 0, false
	}
	return binary.BigEndian.Uint64(blob[4:12]), true
}
