package directory

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

// memServer builds an in-memory (non-persistent) directory server.
func memServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func fileCap(t *testing.T, name string) capability.Capability {
	t.Helper()
	r, err := capability.NewRandom()
	if err != nil {
		t.Fatalf("NewRandom: %v", err)
	}
	return capability.Owner(capability.PortFromString("files"), uint32(len(name)+1), r)
}

func TestRootExists(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	if root.Rights != capability.RightsAll {
		t.Fatal("root capability is not an owner capability")
	}
	rows, err := s.List(root)
	if err != nil {
		t.Fatalf("List(root): %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("fresh root has %d rows", len(rows))
	}
}

func TestEnterLookup(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	f := fileCap(t, "readme")
	if err := s.Enter(root, "readme", f); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	got, err := s.Lookup(root, "readme")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if got != f {
		t.Fatalf("Lookup = %v, want %v", got, f)
	}
	if _, err := s.Lookup(root, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup(missing) err = %v", err)
	}
}

func TestEnterDuplicateRejected(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	if err := s.Enter(root, "x", fileCap(t, "a")); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := s.Enter(root, "x", fileCap(t, "b")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Enter err = %v, want ErrExists", err)
	}
}

func TestBadNames(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	for _, name := range []string{"", "a/b", string([]byte{'a', 0}), string(bytes.Repeat([]byte{'x'}, 256))} {
		if err := s.Enter(root, name, fileCap(t, "f")); !errors.Is(err, ErrBadName) {
			t.Errorf("Enter(%q) err = %v, want ErrBadName", name, err)
		}
	}
}

func TestReplacePushesVersions(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	v1, v2, v3 := fileCap(t, "v1"), fileCap(t, "v2"), fileCap(t, "v3")
	if err := s.Enter(root, "doc", v1); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := s.Replace(root, "doc", v2); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if err := s.Replace(root, "doc", v3); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	cur, err := s.Lookup(root, "doc")
	if err != nil || cur != v3 {
		t.Fatalf("Lookup = %v, %v; want v3", cur, err)
	}
	hist, err := s.History(root, "doc")
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(hist) != 3 || hist[0] != v1 || hist[1] != v2 || hist[2] != v3 {
		t.Fatalf("History = %v", hist)
	}
}

func TestReplaceRequiresExisting(t *testing.T) {
	s := memServer(t)
	if err := s.Replace(s.Root(), "ghost", fileCap(t, "g")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Replace(missing) err = %v", err)
	}
}

func TestVersionHistoryBounded(t *testing.T) {
	s, err := New(Options{MaxVersions: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	root := s.Root()
	if err := s.Enter(root, "f", fileCap(t, "v0")); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	var last capability.Capability
	for i := 0; i < 10; i++ {
		last = fileCap(t, fmt.Sprintf("v%d", i+1))
		if err := s.Replace(root, "f", last); err != nil {
			t.Fatalf("Replace %d: %v", i, err)
		}
	}
	hist, err := s.History(root, "f")
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	if hist[2] != last {
		t.Fatal("newest version missing from bounded history")
	}
}

func TestRemove(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	if err := s.Enter(root, "gone", fileCap(t, "g")); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := s.Remove(root, "gone"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := s.Lookup(root, "gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup after remove err = %v", err)
	}
	if err := s.Remove(root, "gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Remove err = %v", err)
	}
}

func TestListSorted(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := s.Enter(root, name, fileCap(t, name)); err != nil {
			t.Fatalf("Enter: %v", err)
		}
	}
	rows, err := s.List(root)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i, r := range rows {
		if r.Name != want[i] {
			t.Fatalf("rows = %v, want names %v", rows, want)
		}
	}
}

func TestNestedDirectories(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	sub, err := s.CreateDir()
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if err := s.Enter(root, "src", sub); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := s.Enter(sub, "main.go", fileCap(t, "m")); err != nil {
		t.Fatalf("Enter in subdir: %v", err)
	}
	got, err := s.Lookup(root, "src")
	if err != nil || got != sub {
		t.Fatalf("Lookup(src) = %v, %v", got, err)
	}
	if _, err := s.Lookup(sub, "main.go"); err != nil {
		t.Fatalf("Lookup in subdir: %v", err)
	}
}

func TestDeleteDir(t *testing.T) {
	s := memServer(t)
	sub, err := s.CreateDir()
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if err := s.Enter(sub, "f", fileCap(t, "f")); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := s.DeleteDir(sub); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("DeleteDir(non-empty) err = %v", err)
	}
	if err := s.Remove(sub, "f"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := s.DeleteDir(sub); err != nil {
		t.Fatalf("DeleteDir: %v", err)
	}
	if _, err := s.List(sub); !errors.Is(err, ErrNoSuchDir) {
		t.Fatalf("List(deleted) err = %v", err)
	}
	if err := s.DeleteDir(s.Root()); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("DeleteDir(root) err = %v", err)
	}
}

func TestDirectoryRights(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	if err := s.Enter(root, "f", fileCap(t, "f")); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	lookupOnly, err := capability.Restrict(root, RightLookup)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := s.Lookup(lookupOnly, "f"); err != nil {
		t.Fatalf("Lookup with lookup-only cap: %v", err)
	}
	if err := s.Enter(lookupOnly, "g", fileCap(t, "g")); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("Enter with lookup-only cap err = %v", err)
	}
	if _, err := s.List(lookupOnly); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("List with lookup-only cap err = %v", err)
	}
	forged := root
	forged.Check[5] ^= 1
	if _, err := s.Lookup(forged, "f"); !errors.Is(err, capability.ErrBadCheck) {
		t.Fatalf("forged cap err = %v", err)
	}
}

// bulletWorld wires a Bullet engine + directory server with persistence
// through the in-process transport.
func bulletWorld(t *testing.T) (*Server, *client.Client, capability.Port, *rpc.Mux) {
	t.Helper()
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 300); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(eng.Sync)
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	cl := client.New(rpc.NewLocal(mux))

	dsrv, err := New(Options{Store: cl, StorePort: eng.Port(), PFactor: 2})
	if err != nil {
		t.Fatalf("New(persistent): %v", err)
	}
	return dsrv, cl, eng.Port(), mux
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dsrv, cl, storePort, _ := bulletWorld(t)
	root := dsrv.Root()
	f1, f2 := fileCap(t, "a"), fileCap(t, "b")
	if err := dsrv.Enter(root, "a", f1); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	sub, err := dsrv.CreateDir()
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if err := dsrv.Enter(root, "sub", sub); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := dsrv.Enter(sub, "b", f2); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := dsrv.Replace(root, "a", f2); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	state := dsrv.StateCap()

	// Restart: a fresh server restored from the checkpoint, same port.
	dsrv2, err := New(Options{
		Port: dsrv.Port(), Store: cl, StorePort: storePort, State: state, PFactor: 2,
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if dsrv2.Root() != root {
		t.Fatal("root capability changed across restart")
	}
	got, err := dsrv2.Lookup(root, "a")
	if err != nil || got != f2 {
		t.Fatalf("Lookup(a) = %v, %v; want f2", got, err)
	}
	hist, err := dsrv2.History(root, "a")
	if err != nil || len(hist) != 2 || hist[0] != f1 {
		t.Fatalf("History(a) = %v, %v", hist, err)
	}
	gotSub, err := dsrv2.Lookup(root, "sub")
	if err != nil || gotSub != sub {
		t.Fatalf("Lookup(sub) = %v, %v", gotSub, err)
	}
	if _, err := dsrv2.Lookup(sub, "b"); err != nil {
		t.Fatalf("Lookup in restored subdir: %v", err)
	}
}

func TestCheckpointsDoNotAccumulate(t *testing.T) {
	dsrv, cl, storePort, _ := bulletWorld(t)
	root := dsrv.Root()
	for i := 0; i < 20; i++ {
		if err := dsrv.Enter(root, fmt.Sprintf("f%d", i), fileCap(t, "x")); err != nil {
			t.Fatalf("Enter: %v", err)
		}
	}
	st, err := cl.Stat(storePort)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	// Exactly one live checkpoint file on the Bullet store.
	if st.LiveFiles != 1 {
		t.Fatalf("store holds %d files, want 1 (old checkpoints deleted)", st.LiveFiles)
	}
}

func TestClientOverRPC(t *testing.T) {
	dsrv, _, _, mux := bulletWorld(t)
	dsrv.Register(mux)
	dc := NewClient(rpc.NewLocal(mux))

	root, err := dc.Root(dsrv.Port())
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	f := fileCap(t, "wire")
	if err := dc.Enter(root, "wire", f); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	got, err := dc.Lookup(root, "wire")
	if err != nil || got != f {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	f2 := fileCap(t, "wire2")
	if err := dc.Replace(root, "wire", f2); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	hist, err := dc.History(root, "wire")
	if err != nil || len(hist) != 2 {
		t.Fatalf("History = %v, %v", hist, err)
	}
	rows, err := dc.List(root)
	if err != nil || len(rows) != 1 || rows[0].Name != "wire" || rows[0].Cap != f2 {
		t.Fatalf("List = %v, %v", rows, err)
	}
	if err := dc.Remove(root, "wire"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := dc.Lookup(root, "wire"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup after remove err = %v", err)
	}
}

func TestClientPathHelpers(t *testing.T) {
	dsrv, _, _, mux := bulletWorld(t)
	dsrv.Register(mux)
	dc := NewClient(rpc.NewLocal(mux))
	root, err := dc.Root(dsrv.Port())
	if err != nil {
		t.Fatalf("Root: %v", err)
	}

	deep, err := dc.MkdirPath(root, "home/user/projects")
	if err != nil {
		t.Fatalf("MkdirPath: %v", err)
	}
	f := fileCap(t, "deep")
	if err := dc.Enter(deep, "notes.txt", f); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	got, err := dc.LookupPath(root, "/home/user/projects/notes.txt")
	if err != nil || got != f {
		t.Fatalf("LookupPath = %v, %v", got, err)
	}
	// MkdirPath is idempotent.
	again, err := dc.MkdirPath(root, "home/user/projects")
	if err != nil || again != deep {
		t.Fatalf("MkdirPath(again) = %v, %v", again, err)
	}
	if _, err := dc.LookupPath(root, "home/missing/x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LookupPath(missing) err = %v", err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := memServer(t)
	root := s.Root()
	sub, err := s.CreateDir()
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if err := s.Enter(root, "sub", sub); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Enter(sub, fmt.Sprintf("f%d", i), fileCap(t, "x")); err != nil {
			t.Fatalf("Enter: %v", err)
		}
	}
	s.mu.Lock()
	blob := s.snapshotLocked()
	s.mu.Unlock()

	s2 := &Server{port: s.port, maxVersions: 8, dirs: make(map[uint32]*dir)}
	if err := s2.restore(blob); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if s2.Root() != root {
		t.Fatal("root differs after restore")
	}
	rows, err := s2.List(sub)
	if err != nil || len(rows) != 5 {
		t.Fatalf("List = %v, %v", rows, err)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := &Server{dirs: make(map[uint32]*dir)}
	if err := s.restore([]byte("not a checkpoint")); err == nil {
		t.Fatal("restore(garbage) succeeded")
	}
	if err := s.restore(nil); err == nil {
		t.Fatal("restore(nil) succeeded")
	}
}

// Property: snapshot/restore round trips arbitrary directory shapes.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(names []string, versions uint8) bool {
		s, err := New(Options{MaxVersions: int(versions%5) + 1})
		if err != nil {
			return false
		}
		root := s.Root()
		entered := map[string]bool{}
		for _, raw := range names {
			name := raw
			if len(name) == 0 || len(name) > 200 {
				continue
			}
			if err := validName(name); err != nil {
				continue
			}
			r, err := capability.NewRandom()
			if err != nil {
				return false
			}
			c := capability.Owner(capability.PortFromString("p"), 1, r)
			if entered[name] {
				if err := s.Replace(root, name, c); err != nil {
					return false
				}
			} else {
				if err := s.Enter(root, name, c); err != nil {
					return false
				}
				entered[name] = true
			}
		}
		s.mu.Lock()
		blob := s.snapshotLocked()
		s.mu.Unlock()
		s2 := &Server{port: s.port, maxVersions: s.maxVersions, dirs: make(map[uint32]*dir)}
		if err := s2.restore(blob); err != nil {
			return false
		}
		want, err := s.List(root)
		if err != nil {
			return false
		}
		got, err := s2.List(root)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
