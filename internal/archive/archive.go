// Package archive implements version archival onto write-once media —
// the possibility the paper raises in §2: "It also presents the
// possibility of keeping versions on write-once storage such as optical
// disks." Immutable whole files are a perfect match for WORM media:
// nothing ever needs updating in place.
//
// The volume format is strictly append-only so it can be burned onto a
// disk.WORMDisk (or any Device):
//
//	block 0:    volume header (magic, block size)
//	then, repeated:
//	  1 header block: record magic, the file's capability (identity),
//	                  payload length, SHA-256 of the payload
//	  N data blocks:  the payload, zero-padded to block size
//
// There is no mutable index: Open locates the end of the volume by
// scanning record headers (cheap: one block read per record), exactly how
// write-once media are catalogued.
package archive

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

const (
	volumeMagic = 0x42415243 // "BARC"
	recordMagic = 0x52435244 // "RCRD"
)

// Errors returned by the archive.
var (
	// ErrNotArchive means the device holds no archive volume.
	ErrNotArchive = errors.New("archive: not an archive volume")
	// ErrNotFound means no record carries the requested capability.
	ErrNotFound = errors.New("archive: capability not archived")
	// ErrCorrupt means a record failed its checksum.
	ErrCorrupt = errors.New("archive: record corrupt")
	// ErrFull means the medium has no room for the record.
	ErrFull = errors.New("archive: volume full")
	// ErrBadGeometry means the backing device cannot hold an archive.
	ErrBadGeometry = errors.New("archive: unusable device geometry")
)

// Entry describes one archived record.
type Entry struct {
	Cap   capability.Capability
	Size  int64
	Block int64 // header block number
}

// Archive is an append-only volume on a block device.
type Archive struct {
	dev disk.Device
	bs  int64

	mu   sync.Mutex
	next int64 // first unwritten block
}

// Create initializes a fresh archive volume on dev (which must be blank —
// on WORM media there is no erasing).
func Create(dev disk.Device) (*Archive, error) {
	bs := int64(dev.BlockSize())
	if bs < 64 {
		return nil, fmt.Errorf("block size %d too small: %w", bs, ErrBadGeometry)
	}
	hdr := make([]byte, bs)
	binary.BigEndian.PutUint32(hdr[0:4], volumeMagic)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(bs))
	if err := dev.WriteAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("archive: writing volume header: %w", err)
	}
	return &Archive{dev: dev, bs: bs, next: 1}, nil
}

// Open mounts an existing archive volume, scanning to the end of the
// written records.
func Open(dev disk.Device) (*Archive, error) {
	bs := int64(dev.BlockSize())
	hdr := make([]byte, bs)
	if err := dev.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("archive: reading volume header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != volumeMagic {
		return nil, ErrNotArchive
	}
	if got := int64(binary.BigEndian.Uint32(hdr[4:8])); got != bs {
		return nil, fmt.Errorf("volume block size %d, device %d: %w", got, bs, ErrNotArchive)
	}
	a := &Archive{dev: dev, bs: bs, next: 1}
	// Walk the records to the end.
	for {
		_, size, ok, err := a.recordAt(a.next)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		a.next += 1 + a.dataBlocks(size)
	}
	return a, nil
}

func (a *Archive) dataBlocks(size int64) int64 {
	return (size + a.bs - 1) / a.bs
}

// recordAt parses the record header at block b, reporting ok=false at the
// end of the volume.
func (a *Archive) recordAt(b int64) (capability.Capability, int64, bool, error) {
	if b >= a.dev.Blocks() {
		return capability.Capability{}, 0, false, nil
	}
	buf := make([]byte, a.bs)
	if err := a.dev.ReadAt(buf, b*a.bs); err != nil {
		return capability.Capability{}, 0, false, fmt.Errorf("archive: reading record header: %w", err)
	}
	if binary.BigEndian.Uint32(buf[0:4]) != recordMagic {
		return capability.Capability{}, 0, false, nil
	}
	c, rest, err := capability.Decode(buf[4:])
	if err != nil {
		return capability.Capability{}, 0, false, fmt.Errorf("archive: record capability: %w", err)
	}
	size := int64(binary.BigEndian.Uint64(rest[0:8]))
	// Bound the claimed size by the space physically after this header
	// BEFORE any arithmetic on it: a forged size near 2^63 would overflow
	// dataBlocks and slip past a post-hoc range check.
	maxPayload := (a.dev.Blocks() - b - 1) * a.bs
	if size < 0 || size > maxPayload {
		return capability.Capability{}, 0, false, fmt.Errorf("archive: record size %d at block %d: %w", size, b, ErrCorrupt)
	}
	return c, size, true, nil
}

// Store appends one immutable file to the volume, identified by its
// capability.
func (a *Archive) Store(c capability.Capability, data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	size := int64(len(data))
	needed := 1 + a.dataBlocks(size)
	if a.next+needed > a.dev.Blocks() {
		return fmt.Errorf("%d blocks needed, %d left: %w", needed, a.dev.Blocks()-a.next, ErrFull)
	}
	hdr := make([]byte, a.bs)
	binary.BigEndian.PutUint32(hdr[0:4], recordMagic)
	rest := capability.Encode(hdr[:4], c)
	var sz [8]byte
	binary.BigEndian.PutUint64(sz[:], uint64(size))
	rest = append(rest, sz[:]...)
	sum := sha256.Sum256(data)
	rest = append(rest, sum[:]...)
	copy(hdr, rest)

	if err := a.dev.WriteAt(hdr, a.next*a.bs); err != nil {
		return fmt.Errorf("archive: writing record header: %w", err)
	}
	if size > 0 {
		padded := make([]byte, a.dataBlocks(size)*a.bs)
		copy(padded, data)
		if err := a.dev.WriteAt(padded, (a.next+1)*a.bs); err != nil {
			return fmt.Errorf("archive: writing record data: %w", err)
		}
	}
	a.next += needed
	return nil
}

// List walks all records in burn order.
func (a *Archive) List() ([]Entry, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Entry
	b := int64(1)
	for {
		c, size, ok, err := a.recordAt(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, Entry{Cap: c, Size: size, Block: b})
		b += 1 + a.dataBlocks(size)
	}
}

// Load returns the archived payload for the capability, verifying its
// checksum. If the capability was archived more than once the first copy
// wins (they are identical by construction — the file was immutable).
func (a *Archive) Load(c capability.Capability) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := int64(1)
	for {
		got, size, ok, err := a.recordAt(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%v: %w", c, ErrNotFound)
		}
		if got == c {
			return a.loadRecord(b, size)
		}
		b += 1 + a.dataBlocks(size)
	}
}

func (a *Archive) loadRecord(b, size int64) ([]byte, error) {
	hdr := make([]byte, a.bs)
	if err := a.dev.ReadAt(hdr, b*a.bs); err != nil {
		return nil, err
	}
	wantSum := hdr[4+capability.EncodedLen+8 : 4+capability.EncodedLen+8+sha256.Size]
	data := make([]byte, a.dataBlocks(size)*a.bs)
	if size > 0 {
		if err := a.dev.ReadAt(data, (b+1)*a.bs); err != nil {
			return nil, err
		}
	}
	data = data[:size]
	sum := sha256.Sum256(data)
	if !bytes.Equal(sum[:], wantSum) {
		return nil, fmt.Errorf("record at block %d: %w", b, ErrCorrupt)
	}
	return data, nil
}

// Used returns the number of written blocks (header + records).
func (a *Archive) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// StoreVersions archives a set of capabilities (e.g. a directory entry's
// version history) by fetching each through read. Already-archived
// capabilities are skipped, so repeated runs are incremental.
func (a *Archive) StoreVersions(read func(capability.Capability) ([]byte, error), caps []capability.Capability) (stored int, err error) {
	existing, err := a.List()
	if err != nil {
		return 0, err
	}
	have := make(map[capability.Capability]bool, len(existing))
	for _, e := range existing {
		have[e.Cap] = true
	}
	for _, c := range caps {
		if have[c] {
			continue
		}
		data, err := read(c)
		if err != nil {
			return stored, fmt.Errorf("archive: fetching %v: %w", c, err)
		}
		if err := a.Store(c, data); err != nil {
			return stored, err
		}
		have[c] = true
		stored++
	}
	return stored, nil
}
