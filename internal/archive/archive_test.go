package archive

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/directory"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

func newWORM(t *testing.T, blocks int64) *disk.WORMDisk {
	t.Helper()
	mem, err := disk.NewMem(512, blocks)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	return disk.NewWORM(mem)
}

func cap0(t *testing.T, obj uint32) capability.Capability {
	t.Helper()
	r, err := capability.NewRandom()
	if err != nil {
		t.Fatalf("NewRandom: %v", err)
	}
	return capability.Owner(capability.PortFromString("arch"), obj, r)
}

func TestWORMSemantics(t *testing.T) {
	w := newWORM(t, 8)
	buf := make([]byte, 512)
	if err := w.WriteAt(buf, 0); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := w.WriteAt(buf, 0); !errors.Is(err, disk.ErrWriteOnce) {
		t.Fatalf("rewrite err = %v, want ErrWriteOnce", err)
	}
	// Partial overlap with a burned block is also refused.
	if err := w.WriteAt(make([]byte, 1024), 256); !errors.Is(err, disk.ErrWriteOnce) {
		t.Fatalf("overlap err = %v", err)
	}
	// A fresh block is fine; reads always work.
	if err := w.WriteAt(buf, 512); err != nil {
		t.Fatalf("write to fresh block: %v", err)
	}
	if err := w.ReadAt(buf, 3*512); err != nil {
		t.Fatalf("read of unwritten block: %v", err)
	}
	if w.WrittenBlocks() != 2 {
		t.Fatalf("WrittenBlocks = %d, want 2", w.WrittenBlocks())
	}
	if err := w.WriteAt(buf, 8*512); !errors.Is(err, disk.ErrOutOfRange) {
		t.Fatalf("out of range err = %v", err)
	}
	if err := w.WriteAt(nil, 0); err != nil {
		t.Fatalf("empty write: %v", err)
	}
}

func TestArchiveStoreLoadRoundTrip(t *testing.T) {
	w := newWORM(t, 256)
	a, err := Create(w)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	c1, c2 := cap0(t, 1), cap0(t, 2)
	d1 := []byte("first version of the report")
	d2 := bytes.Repeat([]byte{0xAB}, 2000) // multi-block
	if err := a.Store(c1, d1); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := a.Store(c2, d2); err != nil {
		t.Fatalf("Store: %v", err)
	}
	got, err := a.Load(c1)
	if err != nil || !bytes.Equal(got, d1) {
		t.Fatalf("Load(c1) = %q, %v", got, err)
	}
	got, err = a.Load(c2)
	if err != nil || !bytes.Equal(got, d2) {
		t.Fatalf("Load(c2) corrupted, %v", err)
	}
	if _, err := a.Load(cap0(t, 99)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load(missing) err = %v", err)
	}
	entries, err := a.List()
	if err != nil || len(entries) != 2 {
		t.Fatalf("List = %v, %v", entries, err)
	}
	if entries[0].Cap != c1 || entries[0].Size != int64(len(d1)) {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
}

func TestArchiveEmptyPayload(t *testing.T) {
	w := newWORM(t, 64)
	a, err := Create(w)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	c := cap0(t, 1)
	if err := a.Store(c, nil); err != nil {
		t.Fatalf("Store(empty): %v", err)
	}
	got, err := a.Load(c)
	if err != nil || len(got) != 0 {
		t.Fatalf("Load = %q, %v", got, err)
	}
}

func TestArchiveReopenScansToEnd(t *testing.T) {
	w := newWORM(t, 256)
	a, err := Create(w)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	caps := make([]capability.Capability, 5)
	for i := range caps {
		caps[i] = cap0(t, uint32(i+1))
		if err := a.Store(caps[i], bytes.Repeat([]byte{byte(i)}, 100+300*i)); err != nil {
			t.Fatalf("Store %d: %v", i, err)
		}
	}
	used := a.Used()

	a2, err := Open(w)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if a2.Used() != used {
		t.Fatalf("Used = %d after reopen, want %d", a2.Used(), used)
	}
	// Appending after reopen must not collide with burned blocks.
	c := cap0(t, 77)
	if err := a2.Store(c, []byte("appended after reopen")); err != nil {
		t.Fatalf("Store after reopen: %v", err)
	}
	for i, want := range caps {
		got, err := a2.Load(want)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 100+300*i)) {
			t.Fatalf("record %d lost after reopen: %v", i, err)
		}
	}
}

func TestArchiveOpenRejectsBlankAndGarbage(t *testing.T) {
	if _, err := Open(newWORM(t, 16)); !errors.Is(err, ErrNotArchive) {
		t.Fatalf("Open(blank) err = %v", err)
	}
	mem, err := disk.NewMem(512, 16)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	if err := mem.WriteAt([]byte("garbage!"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if _, err := Open(mem); !errors.Is(err, ErrNotArchive) {
		t.Fatalf("Open(garbage) err = %v", err)
	}
}

func TestArchiveFull(t *testing.T) {
	w := newWORM(t, 8) // header + 7 blocks
	a, err := Create(w)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// 2 records of 2 blocks each (header + 1 data) fit, then a 3-block
	// record does not.
	if err := a.Store(cap0(t, 1), make([]byte, 400)); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := a.Store(cap0(t, 2), make([]byte, 400)); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := a.Store(cap0(t, 3), make([]byte, 1200)); !errors.Is(err, ErrFull) {
		t.Fatalf("Store on full volume err = %v", err)
	}
	// A smaller record still fits in the remainder.
	if err := a.Store(cap0(t, 4), make([]byte, 400)); err != nil {
		t.Fatalf("Store(small): %v", err)
	}
}

func TestArchiveDetectsBitRot(t *testing.T) {
	mem, err := disk.NewMem(512, 64)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	a, err := Create(mem) // plain device so we can corrupt it
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	c := cap0(t, 1)
	if err := a.Store(c, bytes.Repeat([]byte{7}, 600)); err != nil {
		t.Fatalf("Store: %v", err)
	}
	// Flip a bit in the record's data area (blocks 2..3).
	evil := []byte{0xFF}
	if err := mem.WriteAt(evil, 2*512+100); err != nil {
		t.Fatalf("corrupting: %v", err)
	}
	if _, err := a.Load(c); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of rotten record err = %v", err)
	}
}

// TestArchiveVersionsFromDirectory is the paper's scenario end to end:
// every version of a file, as retained by the directory service, burned
// onto write-once storage and readable back.
func TestArchiveVersionsFromDirectory(t *testing.T) {
	// Live system: bullet + directory.
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 200); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	defer eng.Sync()
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	cl := client.New(rpc.NewLocal(mux))
	dsrv, err := directory.New(directory.Options{})
	if err != nil {
		t.Fatalf("directory.New: %v", err)
	}
	root := dsrv.Root()

	// Three versions of a document.
	var want [][]byte
	for i := 0; i < 3; i++ {
		data := []byte(fmt.Sprintf("revision %d of the design", i+1))
		want = append(want, data)
		c, err := cl.Create(eng.Port(), data, 2)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if i == 0 {
			err = dsrv.Enter(root, "design.txt", c)
		} else {
			err = dsrv.Replace(root, "design.txt", c)
		}
		if err != nil {
			t.Fatalf("bind version %d: %v", i, err)
		}
	}

	// Burn the history to WORM.
	worm := newWORM(t, 512)
	a, err := Create(worm)
	if err != nil {
		t.Fatalf("Create archive: %v", err)
	}
	hist, err := dsrv.History(root, "design.txt")
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	stored, err := a.StoreVersions(cl.Read, hist)
	if err != nil || stored != 3 {
		t.Fatalf("StoreVersions = %d, %v", stored, err)
	}
	// Re-running is incremental: nothing new to burn.
	stored, err = a.StoreVersions(cl.Read, hist)
	if err != nil || stored != 0 {
		t.Fatalf("second StoreVersions = %d, %v", stored, err)
	}

	// The live store can now drop old versions; the archive keeps them.
	for _, c := range hist[:2] {
		if err := cl.Delete(c); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	for i, c := range hist {
		got, err := a.Load(c)
		if err != nil || !bytes.Equal(got, want[i]) {
			t.Fatalf("archived version %d = %q, %v", i, got, err)
		}
	}
}

// Property: any sequence of stores round-trips through a reopen.
func TestQuickArchiveRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			return false
		}
		a, err := Create(disk.NewWORM(mem))
		if err != nil {
			return false
		}
		type rec struct {
			c    capability.Capability
			data []byte
		}
		var recs []rec
		for i, p := range payloads {
			if len(p) > 4096 {
				p = p[:4096]
			}
			r, err := capability.NewRandom()
			if err != nil {
				return false
			}
			c := capability.Owner(capability.PortFromString("q"), uint32(i+1), r)
			if err := a.Store(c, p); err != nil {
				if errors.Is(err, ErrFull) {
					break
				}
				return false
			}
			recs = append(recs, rec{c, p})
		}
		a2, err := Open(mem)
		if err != nil {
			return false
		}
		for _, r := range recs {
			got, err := a2.Load(r.c)
			if err != nil || !bytes.Equal(got, r.data) {
				return false
			}
		}
		entries, err := a2.List()
		return err == nil && len(entries) == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsForgedHugeRecordSize(t *testing.T) {
	mem, err := disk.NewMem(512, 64)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	a, err := Create(mem)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := a.Store(cap0(t, 1), []byte("real record")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	// Forge the record header's size field to near-2^63: Open and Load
	// must fail cleanly, not overflow or panic.
	forged := make([]byte, 8)
	for i := range forged {
		forged[i] = 0x7F
	}
	// size lives after magic(4) + capability(16) at block 1.
	if err := mem.WriteAt(forged, 512+4+16); err != nil {
		t.Fatalf("forging: %v", err)
	}
	if _, err := Open(mem); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(forged) err = %v, want ErrCorrupt", err)
	}
	if _, err := a.Load(cap0(t, 1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(forged) err = %v, want ErrCorrupt", err)
	}
}
