package hwmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvances(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("Now = %v, want 5ms", got)
	}
}

func TestClockIgnoresNegativeAdvance(t *testing.T) {
	var c Clock
	c.Advance(time.Millisecond)
	c.Advance(-time.Hour)
	c.Advance(0)
	if got := c.Now(); got != time.Millisecond {
		t.Fatalf("Now = %v, want 1ms", got)
	}
}

func TestClockSince(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Millisecond)
	start := c.Now()
	c.Advance(7 * time.Millisecond)
	if got := c.Since(start); got != 7*time.Millisecond {
		t.Fatalf("Since = %v, want 7ms", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Now(); got != 8*1000*time.Microsecond {
		t.Fatalf("Now = %v, want 8ms", got)
	}
}

func TestDiskAccessTimeComponents(t *testing.T) {
	m := DiskModel{
		SeekAvg:             10 * time.Millisecond,
		SeekTrack:           1 * time.Millisecond,
		RotationPeriod:      8 * time.Millisecond,
		TransferBytesPerSec: 1 << 20,
		ControllerOverhead:  500 * time.Microsecond,
	}
	random := m.AccessTime(0, false)
	want := 500*time.Microsecond + 10*time.Millisecond + 4*time.Millisecond
	if random != want {
		t.Fatalf("random access = %v, want %v", random, want)
	}
	seq := m.AccessTime(0, true)
	want = 500*time.Microsecond + 1*time.Millisecond
	if seq != want {
		t.Fatalf("sequential access = %v, want %v", seq, want)
	}
	// 1 MiB at 1 MiB/s adds one second of transfer.
	withData := m.AccessTime(1<<20, true)
	if got := withData - seq; got != time.Second {
		t.Fatalf("transfer time = %v, want 1s", got)
	}
}

func TestDiskSequentialCheaperThanRandom(t *testing.T) {
	m := AmoebaProfile().Disk
	if m.AccessTime(4096, true) >= m.AccessTime(4096, false) {
		t.Fatal("sequential access not cheaper than random access")
	}
}

func TestNetPackets(t *testing.T) {
	m := NetModel{MTU: 1500}
	cases := []struct {
		bytes, want int
	}{
		{0, 1}, {1, 1}, {1500, 1}, {1501, 2}, {3000, 2}, {3001, 3},
	}
	for _, c := range cases {
		if got := m.packets(c.bytes); got != c.want {
			t.Errorf("packets(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestNetOneWayScalesWithBytes(t *testing.T) {
	m := AmoebaProfile().Net
	small := m.OneWayTime(100)
	large := m.OneWayTime(100_000)
	if large <= small {
		t.Fatal("larger transfer not slower")
	}
	// 100 KB on 10 Mbit/s is at least 80 ms of pure wire time.
	if large < 80*time.Millisecond {
		t.Fatalf("100 KB one-way = %v, want >= 80ms", large)
	}
}

func TestNetRPCIncludesBothDirections(t *testing.T) {
	m := AmoebaProfile().Net
	rpc := m.RPCTime(64, 64)
	if rpc <= m.OneWayTime(64) {
		t.Fatal("RPC no more expensive than a one-way message")
	}
	if rpc < m.PerRPCOverhead {
		t.Fatal("RPC cheaper than its own fixed overhead")
	}
}

func TestNetLoadFactorSlowsWire(t *testing.T) {
	idle := NetModel{BitsPerSec: 10_000_000, MTU: 1500, HeaderBytes: 58, LoadFactor: 1.0}
	loaded := idle
	loaded.LoadFactor = 1.5
	if loaded.OneWayTime(10_000) <= idle.OneWayTime(10_000) {
		t.Fatal("load factor did not slow the wire")
	}
}

func TestCPURequestTime(t *testing.T) {
	m := CPUModel{PerRequest: time.Millisecond, PerCopiedByte: time.Microsecond}
	if got := m.RequestTime(0); got != time.Millisecond {
		t.Fatalf("RequestTime(0) = %v, want 1ms", got)
	}
	if got := m.RequestTime(1000); got != time.Millisecond+1000*time.Microsecond {
		t.Fatalf("RequestTime(1000) = %v", got)
	}
}

func TestProfilesAreSane(t *testing.T) {
	for _, p := range []Profile{AmoebaProfile(), SunNFSProfile(), ModernProfile()} {
		if p.Name == "" {
			t.Error("profile without a name")
		}
		if p.Net.BitsPerSec <= 0 || p.Disk.TransferBytesPerSec <= 0 {
			t.Errorf("%s: non-positive bandwidths", p.Name)
		}
		if p.Net.MTU <= 0 {
			t.Errorf("%s: non-positive MTU", p.Name)
		}
	}
}

func TestSunRPCSlowerThanAmoebaRPC(t *testing.T) {
	// The paper's comparison hinges on Amoeba RPC being much leaner than
	// Sun RPC on identical hardware; the profiles must preserve that.
	amoeba := AmoebaProfile().Net.RPCTime(64, 64)
	sun := SunNFSProfile().Net.RPCTime(64, 64)
	if sun <= amoeba {
		t.Fatalf("Sun RPC (%v) not slower than Amoeba RPC (%v)", sun, amoeba)
	}
}

func TestAmoebaNullRPCOrderOfMagnitude(t *testing.T) {
	// Amoeba's measured null RPC was ~1.4 ms on this hardware; the model
	// should land within a factor of two of that.
	got := AmoebaProfile().Net.RPCTime(32, 32)
	if got < 700*time.Microsecond || got > 2800*time.Microsecond {
		t.Fatalf("modelled null RPC = %v, want ~1.4ms (within 2x)", got)
	}
}

// Property: one-way time is monotonic in payload size.
func TestQuickOneWayMonotonic(t *testing.T) {
	m := AmoebaProfile().Net
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.OneWayTime(x) <= m.OneWayTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: disk access time is monotonic in transfer size and never
// negative.
func TestQuickDiskMonotonic(t *testing.T) {
	m := AmoebaProfile().Disk
	f := func(a, b uint32, seq bool) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		ta, tb := m.AccessTime(x, seq), m.AccessTime(y, seq)
		return ta >= 0 && ta <= tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
