// Package hwmodel contains the calibrated hardware cost models used to
// regenerate the paper's experiments on a virtual clock.
//
// The paper measured a 16.7 MHz MC68020 Bullet server with 16 MB of RAM and
// two 800 MB disks, a SUN 3/50 client, a SUN 3/180 NFS server with a 3 MB
// buffer cache, and a normally loaded 10 Mbit/s Ethernet. None of that
// hardware is available, so the simulated disks (internal/disk) and the
// simulated network (internal/simnet) advance a shared virtual Clock by the
// amounts these models prescribe. All payload bytes really move through the
// implementation; only *time* is simulated.
//
// Calibration sources: the paper itself (§3, §4), "The Performance of the
// Amoeba Distributed Operating System" (SP&E 1989) for RPC costs, and
// era-typical SCSI/ESDI disk specifications for the seek/rotation/transfer
// parameters. The absolute values matter less than the mechanisms: fixed
// per-RPC cost, per-packet cost, wire bandwidth, seek+rotation per disk
// access, and sequential transfer rate.
package hwmodel

import (
	"sync"
	"time"
)

// Clock is a monotonic virtual clock shared by all simulated components of
// one experiment world. The zero value is a clock at time zero, ready to use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative advances are ignored so a
// buggy model can never move time backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
}

// Since returns the virtual time elapsed since start.
func (c *Clock) Since(start time.Duration) time.Duration {
	return c.Now() - start
}

// AdvanceTo moves the clock forward to the absolute virtual time t. Times
// at or before the current reading are ignored — like Advance, the clock
// never moves backwards. Open-loop load generators use this to align the
// shared stopwatch with a request's scheduled service start before
// dispatching it, so the costs the simulated components charge are charged
// "at" the right virtual instant.
func (c *Clock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// DiskModel describes one magnetic disk of the era. Access time for a
// contiguous transfer is
//
//	controller + seek + rotation/2 + bytes/transferRate
//
// and the Bullet layout pays it once per file, while a block server pays
// seek+rotation per scattered block.
type DiskModel struct {
	// SeekAvg is the average random seek time (track to track movement of
	// the arm over a third of the surface, the usual datasheet number).
	SeekAvg time.Duration
	// SeekTrack is a short head movement to an adjacent track, paid when a
	// transfer is sequential with the previous one.
	SeekTrack time.Duration
	// RotationPeriod is one full platter revolution (16.7 ms at 3600 rpm).
	// Half of it is charged as average rotational latency per access.
	RotationPeriod time.Duration
	// TransferBytesPerSec is the sustained media transfer rate.
	TransferBytesPerSec int64
	// ControllerOverhead is the fixed per-request controller/driver cost.
	ControllerOverhead time.Duration
}

// AccessTime returns the time to transfer n contiguous bytes, given whether
// the access is sequential with the previous one (head already positioned).
func (m DiskModel) AccessTime(n int64, sequential bool) time.Duration {
	d := m.ControllerOverhead
	if sequential {
		d += m.SeekTrack
	} else {
		d += m.SeekAvg + m.RotationPeriod/2
	}
	if n > 0 && m.TransferBytesPerSec > 0 {
		d += time.Duration(n * int64(time.Second) / m.TransferBytesPerSec)
	}
	return d
}

// NetModel describes a shared-medium network carrying request/response
// transactions. One RPC moves reqBytes one way and repBytes back; each
// direction is fragmented into packets of at most MTU payload bytes, and
// every packet costs header bytes on the wire plus fixed software overhead.
type NetModel struct {
	// BitsPerSec is the raw medium bandwidth (10 Mbit/s Ethernet).
	BitsPerSec int64
	// MTU is the maximum payload bytes per packet.
	MTU int
	// HeaderBytes is per-packet framing (Ethernet + protocol headers).
	HeaderBytes int
	// PerPacketCPU is the per-packet software cost at each endpoint
	// (interrupt, driver, protocol processing).
	PerPacketCPU time.Duration
	// PerRPCOverhead is the fixed cost of one transaction above packet
	// costs: stub processing, context switches, reply matching.
	PerRPCOverhead time.Duration
	// LoadFactor scales wire time upward to model a "normally loaded"
	// Ethernet (1.0 = idle medium). The paper measured on a normally
	// loaded network, so the profiles use a value slightly above 1.
	LoadFactor float64
}

// packets returns how many packets carry n payload bytes (at least 1: even
// an empty message needs a frame).
func (m NetModel) packets(n int) int {
	if m.MTU <= 0 || n <= 0 {
		return 1
	}
	return (n + m.MTU - 1) / m.MTU
}

// OneWayTime returns the time for n bytes to cross the medium in one
// direction, including per-packet software costs.
func (m NetModel) OneWayTime(n int) time.Duration {
	pkts := m.packets(n)
	wireBytes := int64(n) + int64(pkts*m.HeaderBytes)
	var wire time.Duration
	if m.BitsPerSec > 0 {
		wire = time.Duration(wireBytes * 8 * int64(time.Second) / m.BitsPerSec)
	}
	if m.LoadFactor > 1 {
		wire = time.Duration(float64(wire) * m.LoadFactor)
	}
	return wire + time.Duration(pkts)*m.PerPacketCPU
}

// RPCTime returns the end-to-end time of one transaction carrying reqBytes
// out and repBytes back, excluding server think time (disk, CPU), which the
// server components add themselves.
func (m NetModel) RPCTime(reqBytes, repBytes int) time.Duration {
	return m.PerRPCOverhead + m.OneWayTime(reqBytes) + m.OneWayTime(repBytes)
}

// CPUModel describes server processing costs that are neither disk nor
// network: request validation, table lookups, and memory copies.
type CPUModel struct {
	// PerRequest is the fixed cost of dispatching one request.
	PerRequest time.Duration
	// PerCopiedByte is the cost of moving one byte through server memory
	// (the 68020 copied roughly 4-8 MB/s).
	PerCopiedByte time.Duration
}

// RequestTime returns the server CPU time to process a request that copies
// n bytes through memory.
func (m CPUModel) RequestTime(n int64) time.Duration {
	return m.PerRequest + time.Duration(n)*m.PerCopiedByte
}

// Profile bundles the models for one machine-room setup.
type Profile struct {
	Name string
	Disk DiskModel
	Net  NetModel
	CPU  CPUModel
}

// AmoebaProfile returns the calibrated model of the paper's Bullet setup:
// MC68020 server, two 800 MB disks, Amoeba RPC on 10 Mbit/s Ethernet.
// Amoeba's null RPC took about 1.4 ms and achieved ~680-800 KB/s bulk
// transfer on this hardware (paper [8], [9]).
func AmoebaProfile() Profile {
	return Profile{
		Name: "amoeba-mc68020",
		Disk: DiskModel{
			SeekAvg:             18 * time.Millisecond,
			SeekTrack:           4 * time.Millisecond,
			RotationPeriod:      16667 * time.Microsecond, // 3600 rpm
			TransferBytesPerSec: 1 << 20,                  // ~1 MB/s sustained
			ControllerOverhead:  1 * time.Millisecond,
		},
		Net: NetModel{
			BitsPerSec:   10_000_000,
			MTU:          1500,
			HeaderBytes:  58, // Ethernet + FLIP-style headers
			PerPacketCPU: 120 * time.Microsecond,
			// Null Amoeba RPC was ~1.4 ms kernel to kernel; the Bullet
			// server runs at user level, adding scheduling on top.
			PerRPCOverhead: 1200 * time.Microsecond,
			LoadFactor:     1.15, // normally loaded Ethernet
		},
		CPU: CPUModel{
			PerRequest:    200 * time.Microsecond,
			PerCopiedByte: 220 * time.Nanosecond, // ~4.5 MB/s copy on a 68020
		},
	}
}

// SunNFSProfile returns the calibrated model of the paper's comparison
// setup: SUN 3/50 client, SUN 3/180 server, SunOS 3.5 NFS over UDP on the
// same Ethernet. Sun RPC plus kernel crossings made a small NFS operation
// cost several milliseconds on this hardware; the per-packet and per-RPC
// overheads below are correspondingly higher than Amoeba's.
func SunNFSProfile() Profile {
	return Profile{
		Name: "sunos35-nfs",
		Disk: DiskModel{
			SeekAvg:             18 * time.Millisecond,
			SeekTrack:           4 * time.Millisecond,
			RotationPeriod:      16667 * time.Microsecond,
			TransferBytesPerSec: 1 << 20,
			ControllerOverhead:  1 * time.Millisecond,
		},
		Net: NetModel{
			BitsPerSec:  10_000_000,
			MTU:         1500,
			HeaderBytes: 58,
			// UDP/IP stack and mbuf handling, on a cacheless SUN 3/50
			// client plus the 3/180 server (both endpoints folded in).
			PerPacketCPU: 700 * time.Microsecond,
			// Sun RPC + XDR + nfsd scheduling + VFS/UFS path: Amoeba's
			// measurements put a raw Sun RPC round trip near 10 ms on
			// this hardware; a full NFS operation (through the kernels on
			// both ends) lands in the high teens of milliseconds.
			PerRPCOverhead: 18 * time.Millisecond,
			LoadFactor:     1.15,
		},
		CPU: CPUModel{
			PerRequest:    600 * time.Microsecond, // VFS+UFS path per call
			PerCopiedByte: 220 * time.Nanosecond,
		},
	}
}

// WANProfile returns a long-fat-network variant: the paper's two designs
// reached across an intercontinental link with plenty of bandwidth but an
// irreducible round trip (100 Mbit/s, ~80 ms RTT). The paper argued
// whole-file transfer enables geographic scale (§2: Amoeba's gateways
// spanned four countries); on the era's kilobit leased lines both designs
// were bandwidth-bound, but as pipes grew the round trip became the
// scarce resource — and a protocol that pays it once per 8 KB block stops
// working across distance at all. This is the regime today's
// whole-object stores live in.
func WANProfile() Profile {
	p := AmoebaProfile()
	p.Name = "wan-long-fat"
	p.Net.BitsPerSec = 100_000_000
	p.Net.PerPacketCPU = 10 * time.Microsecond
	p.Net.PerRPCOverhead = 80 * time.Millisecond // intercontinental RTT
	p.Net.LoadFactor = 1.0
	return p
}

// ModernProfile returns a model of commodity hardware circa the 2020s, used
// by the what-if benchmarks: the paper's design questions re-asked with SSD
// seek times and gigabit networks.
func ModernProfile() Profile {
	return Profile{
		Name: "modern-ssd-gige",
		Disk: DiskModel{
			SeekAvg:             60 * time.Microsecond, // SSD random access
			SeekTrack:           20 * time.Microsecond,
			RotationPeriod:      0,
			TransferBytesPerSec: 2 << 30, // 2 GB/s NVMe
			ControllerOverhead:  10 * time.Microsecond,
		},
		Net: NetModel{
			BitsPerSec:     1_000_000_000,
			MTU:            1500,
			HeaderBytes:    58,
			PerPacketCPU:   1 * time.Microsecond,
			PerRPCOverhead: 30 * time.Microsecond,
			LoadFactor:     1.0,
		},
		CPU: CPUModel{
			PerRequest:    2 * time.Microsecond,
			PerCopiedByte: 0, // memcpy bandwidth is effectively free here
		},
	}
}
