package client

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
	"bulletfs/internal/trace"
)

// WithTraceIDs makes the client stamp every transaction with a fresh
// 64-bit trace ID, propagated to the server in the RPC prologue
// extension so the server's flight recorder files the request's span
// tree under an ID the client knows. Requires a transport that supports
// tracing (TCP does); other transports silently send untraced requests,
// which the server still records under its own IDs.
func WithTraceIDs() Option {
	return func(c *Client) { c.traceIDs = true }
}

// newTraceID draws a random client-side trace ID. The top bit is the
// server's local-assignment namespace (trace.LocalIDBit), so client IDs
// keep it clear; zero means "untraced" on the wire and is never returned.
func newTraceID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0 // fall back to an untraced request
		}
		id := binary.BigEndian.Uint64(b[:]) &^ trace.LocalIDBit
		if id != 0 {
			return id
		}
	}
}

// Traces fetches the server's flight-recorder contents: the recent ring,
// or the slow-request ring when slow is set. Like Stats it is
// capability-checked — cap must name a live file on the server and carry
// the read right.
func (c *Client) Traces(cap capability.Capability, slow bool) ([]trace.JSONTrace, error) {
	arg := bulletsvc.TraceRecent
	if slow {
		arg = bulletsvc.TraceSlow
	}
	_, body, err := c.call(cap.Port, rpc.Header{Command: bulletsvc.CmdTrace, Cap: cap, Arg: arg}, nil)
	if err != nil {
		return nil, err
	}
	ts, err := trace.DecodeTraces(body)
	if err != nil {
		return nil, fmt.Errorf("bullet client: %w", err)
	}
	return ts, nil
}
