// Package client provides the Bullet client stubs: BULLET.CREATE,
// BULLET.SIZE, BULLET.READ and BULLET.DELETE from paper §2.2, the §5
// extensions, and an optional client-side cache of immutable files.
//
// "Client caching of immutable files is straightforward" (§5): a file's
// bytes can never change under a given capability, so a cached copy keyed
// by the exact capability is valid forever — it only needs dropping for
// space, or when the file is deleted through this client.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// ErrTransport marks failures that happened before a reply arrived — dial,
// send, receive, timeout. Callers distinguish these from server-side
// rejections (capability.ErrBadCheck, capability.ErrBadRights, ...) with
// errors.Is; scripts get distinct exit codes from bulletctl.
var ErrTransport = errors.New("bullet client: transport failure")

// Client calls Bullet servers over any rpc.Transport. One Client can talk
// to many servers; each file operation is addressed by the capability's
// port. Client is safe for concurrent use.
type Client struct {
	tr       rpc.Transport
	cache    *fileCache
	traceIDs bool          // stamp each transaction with a trace ID (see WithTraceIDs)
	budget   time.Duration // per-operation deadline budget (see WithBudget)
}

// Option configures a Client.
type Option func(*Client)

// WithCache enables the client-side immutable-file cache with the given
// capacity in bytes.
func WithCache(maxBytes int64) Option {
	return func(c *Client) {
		if maxBytes > 0 {
			c.cache = newFileCache(maxBytes)
		}
	}
}

// WithBudget attaches a deadline budget to every operation: the call
// carries the remaining time on the wire (the v2 deadline TLV), a
// retrying transport refreshes it per attempt, and the server sheds the
// request with StatusDeadlineExceeded — surfaced here as
// trace.ErrDeadlineExceeded, never as a transport failure — when the
// budget cannot cover the work. d <= 0 leaves calls unbounded.
func WithBudget(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.budget = d
		}
	}
}

// New builds a Client on a transport.
func New(tr rpc.Transport, opts ...Option) *Client {
	c := &Client{tr: tr}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) call(port capability.Port, req rpc.Header, payload []byte) (rpc.Header, []byte, error) {
	var rep rpc.Header
	var body []byte
	var err error
	var tid uint64
	if c.traceIDs {
		tid = newTraceID()
	}
	if ot, ok := c.tr.(rpc.OptsTransport); ok && c.budget > 0 {
		rep, body, err = ot.TransOpts(port, rpc.CallOpts{TraceID: tid, Budget: c.budget}, req, payload)
	} else if tt, ok := c.tr.(rpc.TracedTransport); ok && tid != 0 {
		rep, body, err = tt.TransTraced(port, tid, req, payload)
	} else {
		rep, body, err = c.tr.Trans(port, req, payload)
	}
	if err != nil {
		// A spent budget is a deadline outcome, not a transport failure:
		// callers asked for bounded time and got exactly that.
		if errors.Is(err, trace.ErrDeadlineExceeded) {
			return rpc.Header{}, nil, fmt.Errorf("bullet client: budget spent: %w", err)
		}
		return rpc.Header{}, nil, fmt.Errorf("%w: %w", ErrTransport, err)
	}
	if rep.Status != rpc.StatusOK {
		op := bulletsvc.CommandName(req.Command)
		if op == "" {
			op = fmt.Sprintf("cmd%d", req.Command)
		}
		return rep, nil, fmt.Errorf("bullet client: %s rejected: %w", op, bulletsvc.ErrorOf(rep.Status))
	}
	return rep, body, nil
}

// Create stores data as a new immutable file on the server at port and
// returns its owner capability. pfactor is the paranoia factor of §2.2.
func (c *Client) Create(port capability.Port, data []byte, pfactor int) (capability.Capability, error) {
	rep, _, err := c.call(port, rpc.Header{Command: bulletsvc.CmdCreate, Arg: uint64(pfactor)}, data)
	if err != nil {
		return capability.Capability{}, err
	}
	if c.cache != nil {
		c.cache.put(rep.Cap, data)
	}
	return rep.Cap, nil
}

// Size returns the file's size in bytes (call before Read to allocate, as
// the paper prescribes; this client's Read allocates for you).
func (c *Client) Size(cap capability.Capability) (int64, error) {
	if c.cache != nil {
		if data, ok := c.cache.get(cap); ok {
			return int64(len(data)), nil
		}
	}
	rep, _, err := c.call(cap.Port, rpc.Header{Command: bulletsvc.CmdSize, Cap: cap}, nil)
	if err != nil {
		return 0, err
	}
	return int64(rep.Arg), nil
}

// Read returns the whole file. Cached immutable copies are served without
// a transaction.
func (c *Client) Read(cap capability.Capability) ([]byte, error) {
	if c.cache != nil {
		if data, ok := c.cache.get(cap); ok {
			out := make([]byte, len(data))
			copy(out, data)
			return out, nil
		}
	}
	_, body, err := c.call(cap.Port, rpc.Header{Command: bulletsvc.CmdRead, Cap: cap}, nil)
	if err != nil {
		return nil, err
	}
	if c.cache != nil {
		c.cache.put(cap, body)
	}
	return body, nil
}

// ReadRange returns n bytes starting at offset (clipped at EOF).
func (c *Client) ReadRange(cap capability.Capability, offset, n int64) ([]byte, error) {
	req := rpc.Header{Command: bulletsvc.CmdReadRange, Cap: cap, Arg: uint64(offset), Arg2: uint64(n)}
	_, body, err := c.call(cap.Port, req, nil)
	if err != nil {
		return nil, err
	}
	return body, nil
}

// Delete discards the file and drops any cached copy.
func (c *Client) Delete(cap capability.Capability) error {
	if c.cache != nil {
		c.cache.drop(cap)
	}
	_, _, err := c.call(cap.Port, rpc.Header{Command: bulletsvc.CmdDelete, Cap: cap}, nil)
	return err
}

// Modify derives a new immutable file: the old contents resized to newSize
// (-1 keeps the natural size) with data spliced in at offset. Returns the
// new file's capability; the original is untouched.
func (c *Client) Modify(cap capability.Capability, offset int64, data []byte, newSize int64, pfactor int) (capability.Capability, error) {
	req := rpc.Header{
		Command: bulletsvc.CmdModify,
		Cap:     cap,
		Arg:     uint64(offset),
		Arg2:    bulletsvc.PackModifyArg2(newSize, pfactor),
	}
	rep, _, err := c.call(cap.Port, req, data)
	if err != nil {
		return capability.Capability{}, err
	}
	return rep.Cap, nil
}

// Append derives a new file consisting of the old contents plus data.
func (c *Client) Append(cap capability.Capability, data []byte, pfactor int) (capability.Capability, error) {
	req := rpc.Header{Command: bulletsvc.CmdAppend, Cap: cap, Arg: uint64(pfactor)}
	rep, _, err := c.call(cap.Port, req, data)
	if err != nil {
		return capability.Capability{}, err
	}
	return rep.Cap, nil
}

// Stat fetches the server's counters.
func (c *Client) Stat(port capability.Port) (bulletsvc.ServerStats, error) {
	_, body, err := c.call(port, rpc.Header{Command: bulletsvc.CmdStat}, nil)
	if err != nil {
		return bulletsvc.ServerStats{}, err
	}
	var st bulletsvc.ServerStats
	if err := unmarshalStats(body, &st); err != nil {
		return bulletsvc.ServerStats{}, err
	}
	return st, nil
}

// Stats fetches the server's full metrics snapshot — counters, gauges and
// latency histograms across every layer. Unlike Stat it is
// capability-checked: cap must name a live file on the server and carry the
// read right (statistics are read-only, so the read right suffices).
func (c *Client) Stats(cap capability.Capability) (stats.Snapshot, error) {
	_, body, err := c.call(cap.Port, rpc.Header{Command: bulletsvc.CmdStats, Cap: cap}, nil)
	if err != nil {
		return stats.Snapshot{}, err
	}
	var snap stats.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return stats.Snapshot{}, fmt.Errorf("bullet client: decoding stats snapshot: %w", err)
	}
	return snap, nil
}

// Sync waits until the server's background write-through has drained.
func (c *Client) Sync(port capability.Port) error {
	_, _, err := c.call(port, rpc.Header{Command: bulletsvc.CmdSync}, nil)
	return err
}

// CompactDisk triggers the server's disk compactor.
func (c *Client) CompactDisk(port capability.Port) error {
	_, _, err := c.call(port, rpc.Header{Command: bulletsvc.CmdCompactDisk}, nil)
	return err
}

// CompactCache triggers the server's RAM-cache compactor.
func (c *Client) CompactCache(port capability.Port) error {
	_, _, err := c.call(port, rpc.Header{Command: bulletsvc.CmdCompactCache}, nil)
	return err
}

// CacheStats reports the client cache state (zero value when disabled).
type CacheStats struct {
	Files int
	Bytes int64
	Hits  int64
	Miss  int64
}

// CacheStats returns client-cache counters.
func (c *Client) CacheStats() CacheStats {
	if c.cache == nil {
		return CacheStats{}
	}
	return c.cache.stats()
}

// fileCache is a byte-bounded FIFO cache of immutable files keyed by exact
// capability. Immutability makes invalidation unnecessary; eviction is for
// space only, in insertion order (the workloads that benefit re-read
// recent files; an LRU would also work and costs more bookkeeping).
type fileCache struct {
	mu    sync.Mutex
	max   int64
	used  int64
	data  map[capability.Capability][]byte
	order []capability.Capability
	hits  int64
	miss  int64
}

func newFileCache(max int64) *fileCache {
	return &fileCache{max: max, data: make(map[capability.Capability][]byte)}
}

func (f *fileCache) get(cap capability.Capability) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.data[cap]
	if ok {
		f.hits++
	} else {
		f.miss++
	}
	return data, ok
}

func (f *fileCache) put(cap capability.Capability, data []byte) {
	size := int64(len(data))
	if size > f.max {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.data[cap]; dup {
		return
	}
	for f.used+size > f.max && len(f.order) > 0 {
		victim := f.order[0]
		f.order = f.order[1:]
		f.used -= int64(len(f.data[victim]))
		delete(f.data, victim)
	}
	f.data[cap] = cp
	f.order = append(f.order, cap)
	f.used += size
}

func (f *fileCache) drop(cap capability.Capability) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.data[cap]; ok {
		f.used -= int64(len(old))
		delete(f.data, cap)
		for i, k := range f.order {
			if k == cap {
				f.order = append(f.order[:i], f.order[i+1:]...)
				break
			}
		}
	}
}

func (f *fileCache) stats() CacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return CacheStats{Files: len(f.data), Bytes: f.used, Hits: f.hits, Miss: f.miss}
}

func unmarshalStats(body []byte, st *bulletsvc.ServerStats) error {
	if err := json.Unmarshal(body, st); err != nil {
		return fmt.Errorf("bullet client: decoding stats: %w", err)
	}
	return nil
}
