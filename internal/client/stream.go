package client

import (
	"fmt"
	"io"

	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

// Streaming stubs: READSTREAM downloads (a large file as a sequence of
// ranged frames, written straight to an io.Writer) and session creates
// (a large or incrementally produced file uploaded in chunks and
// committed as ONE ordinary create on the server).

// defaultUploadChunk is the CreateFrom chunk size when the caller passes
// chunkSize <= 0. It stays comfortably under rpc.MaxPayload.
const defaultUploadChunk = 256 << 10

// ReadStream streams the file from offset onward into w and returns the
// number of payload bytes written. On a transport that supports
// multi-frame replies (the TCP transport) the chunks arrive as separate
// frames and are written as they land — the client never buffers the
// whole file. Other transports deliver the server's frames assembled
// into one reply, which this method then writes in a single call.
// The client-side file cache is bypassed: streaming exists for files too
// large to buffer.
func (c *Client) ReadStream(cp capability.Capability, offset int64, w io.Writer) (int64, error) {
	req := rpc.Header{Command: bulletsvc.CmdReadStream, Cap: cp, Arg: uint64(offset)}

	if st, ok := c.tr.(rpc.StreamTransport); ok {
		var written int64
		var werr error
		rep, err := st.TransStream(cp.Port, req, nil, func(h rpc.Header, data []byte, last bool) error {
			if h.Status != rpc.StatusOK || len(data) == 0 {
				return nil
			}
			n, err := w.Write(data)
			written += int64(n)
			if err != nil {
				// Remember the writer's error but keep draining frames so
				// the connection stays usable for the next transaction.
				if werr == nil {
					werr = err
				}
			}
			return nil
		})
		if err != nil {
			return written, fmt.Errorf("%w: %w", ErrTransport, err)
		}
		if rep.Status != rpc.StatusOK {
			return written, fmt.Errorf("bullet client: readstream rejected: %w", bulletsvc.ErrorOf(rep.Status))
		}
		if werr != nil {
			return written, fmt.Errorf("bullet client: readstream sink: %w", werr)
		}
		return written, nil
	}

	_, body, err := c.call(cp.Port, req, nil)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(body)
	if err != nil {
		return int64(n), fmt.Errorf("bullet client: readstream sink: %w", err)
	}
	return int64(n), nil
}

// CreateFrom uploads r's contents in chunks through a create session and
// commits them as one immutable file, returning its owner capability.
// chunkSize <= 0 picks a default. The file lands in a single contiguous
// extent with the usual checksum and replication semantics — exactly as
// if it had been sent as one CREATE — so CreateFrom is how clients store
// files larger than one request payload. On any error after the session
// opens, the session is aborted (best effort) so the server's buffer is
// freed immediately rather than idling out.
func (c *Client) CreateFrom(port capability.Port, r io.Reader, chunkSize int, pfactor int) (capability.Capability, error) {
	if chunkSize <= 0 {
		chunkSize = defaultUploadChunk
	}
	if chunkSize > rpc.MaxPayload {
		chunkSize = rpc.MaxPayload
	}
	rep, _, err := c.call(port, rpc.Header{Command: bulletsvc.CmdCreateStart}, nil)
	if err != nil {
		return capability.Capability{}, err
	}
	id := rep.Arg

	abort := func() {
		_, _, _ = c.call(port, rpc.Header{Command: bulletsvc.CmdCreateAbort, Arg: id}, nil)
	}

	buf := make([]byte, chunkSize)
	var off int64
	for {
		n, rerr := io.ReadFull(r, buf)
		if n > 0 {
			req := rpc.Header{Command: bulletsvc.CmdCreateWrite, Arg: id, Arg2: uint64(off)}
			if _, _, err := c.call(port, req, buf[:n]); err != nil {
				abort()
				return capability.Capability{}, err
			}
			off += int64(n)
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			abort()
			return capability.Capability{}, fmt.Errorf("bullet client: reading upload source: %w", rerr)
		}
	}

	rep, _, err = c.call(port, rpc.Header{Command: bulletsvc.CmdCreateCommit, Arg: id, Arg2: uint64(pfactor)}, nil)
	if err != nil {
		abort()
		return capability.Capability{}, err
	}
	return rep.Cap, nil
}
