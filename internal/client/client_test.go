package client

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
	"bulletfs/internal/trace"
)

// newEngine builds a two-disk Bullet engine for service tests.
func newEngine(t *testing.T) *bullet.Server {
	t.Helper()
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 300); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(eng.Sync)
	return eng
}

// localSetup wires an engine to a client over the in-process transport.
func localSetup(t *testing.T, opts ...Option) (*Client, *bullet.Server) {
	t.Helper()
	eng := newEngine(t)
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	return New(rpc.NewLocal(mux), opts...), eng
}

func TestClientCreateReadDelete(t *testing.T) {
	cl, eng := localSetup(t)
	data := []byte("whole file transfer over RPC")
	c, err := cl.Create(eng.Port(), data, 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	size, err := cl.Size(c)
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
	got, err := cl.Read(c)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q", got)
	}
	if err := cl.Delete(c); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := cl.Read(c); !errors.Is(err, bullet.ErrNoSuchFile) {
		t.Fatalf("Read after delete err = %v, want ErrNoSuchFile across the wire", err)
	}
}

func TestClientErrorsCrossTheWire(t *testing.T) {
	cl, eng := localSetup(t)
	c, err := cl.Create(eng.Port(), []byte("x"), 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	forged := c
	forged.Check[3] ^= 1
	if _, err := cl.Read(forged); !errors.Is(err, capability.ErrBadCheck) {
		t.Fatalf("forged read err = %v, want ErrBadCheck", err)
	}
	readOnly, err := capability.Restrict(c, capability.RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if err := cl.Delete(readOnly); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("unauthorized delete err = %v, want ErrBadRights", err)
	}
	if _, err := cl.Create(eng.Port(), []byte("y"), 99); !errors.Is(err, bullet.ErrBadPFactor) {
		t.Fatalf("bad p-factor err = %v", err)
	}
	if _, err := cl.ReadRange(c, -1, 5); !errors.Is(err, bullet.ErrBadOffset) {
		t.Fatalf("bad offset err = %v", err)
	}
}

func TestClientModifyAppend(t *testing.T) {
	cl, eng := localSetup(t)
	v1, err := cl.Create(eng.Port(), []byte("version one"), 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	v2, err := cl.Modify(v1, 8, []byte("two"), -1, 2)
	if err != nil {
		t.Fatalf("Modify: %v", err)
	}
	got, err := cl.Read(v2)
	if err != nil || !bytes.Equal(got, []byte("version two")) {
		t.Fatalf("v2 = %q, %v", got, err)
	}
	v3, err := cl.Append(v2, []byte(" plus"), 2)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	got, err = cl.Read(v3)
	if err != nil || !bytes.Equal(got, []byte("version two plus")) {
		t.Fatalf("v3 = %q, %v", got, err)
	}
	// Original unchanged.
	got, err = cl.Read(v1)
	if err != nil || !bytes.Equal(got, []byte("version one")) {
		t.Fatalf("v1 = %q, %v", got, err)
	}
}

func TestClientReadRange(t *testing.T) {
	cl, eng := localSetup(t)
	c, err := cl.Create(eng.Port(), []byte("abcdefghij"), 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := cl.ReadRange(c, 2, 3)
	if err != nil || string(got) != "cde" {
		t.Fatalf("ReadRange = %q, %v", got, err)
	}
}

func TestClientStatSyncCompact(t *testing.T) {
	cl, eng := localSetup(t)
	if _, err := cl.Create(eng.Port(), make([]byte, 1000), 0); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := cl.Sync(eng.Port()); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st, err := cl.Stat(eng.Port())
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Engine.Creates != 1 || st.LiveFiles != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxFileSize != 1<<20 {
		t.Fatalf("MaxFileSize = %d", st.MaxFileSize)
	}
	if err := cl.CompactDisk(eng.Port()); err != nil {
		t.Fatalf("CompactDisk: %v", err)
	}
	if err := cl.CompactCache(eng.Port()); err != nil {
		t.Fatalf("CompactCache: %v", err)
	}
}

func TestClientCacheServesRepeatReads(t *testing.T) {
	cl, eng := localSetup(t, WithCache(1<<20))
	data := []byte("read me twice")
	c, err := cl.Create(eng.Port(), data, 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	engineReadsBefore := eng.Stats().Reads
	for i := 0; i < 5; i++ {
		got, err := cl.Read(c)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("Read %d = %q, %v", i, got, err)
		}
	}
	if reads := eng.Stats().Reads; reads != engineReadsBefore {
		t.Fatalf("server saw %d reads, want 0 (client cache)", reads-engineReadsBefore)
	}
	cs := cl.CacheStats()
	if cs.Files != 1 || cs.Hits != 5 {
		t.Fatalf("client cache stats = %+v", cs)
	}
	// Size is also answered locally.
	if n, err := cl.Size(c); err != nil || n != int64(len(data)) {
		t.Fatalf("Size = %d, %v", n, err)
	}
}

func TestClientCacheKeyedByExactCapability(t *testing.T) {
	cl, eng := localSetup(t, WithCache(1<<20))
	c, err := cl.Create(eng.Port(), []byte("guarded"), 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := cl.Read(c); err != nil {
		t.Fatalf("Read: %v", err)
	}
	// A forged capability for the same object must NOT hit the cache.
	forged := c
	forged.Check[0] ^= 1
	if _, err := cl.Read(forged); !errors.Is(err, capability.ErrBadCheck) {
		t.Fatalf("forged read served from cache: %v", err)
	}
}

func TestClientCacheEviction(t *testing.T) {
	cl, eng := localSetup(t, WithCache(1000))
	var caps []capability.Capability
	for i := 0; i < 5; i++ {
		c, err := cl.Create(eng.Port(), bytes.Repeat([]byte{byte(i)}, 300), 2)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		caps = append(caps, c)
	}
	cs := cl.CacheStats()
	if cs.Bytes > 1000 {
		t.Fatalf("client cache overcommitted: %+v", cs)
	}
	// All files still readable (older ones from the server).
	for i, c := range caps {
		got, err := cl.Read(c)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 300)) {
			t.Fatalf("file %d: %q, %v", i, got, err)
		}
	}
}

func TestClientDeleteDropsCachedCopy(t *testing.T) {
	cl, eng := localSetup(t, WithCache(1<<20))
	c, err := cl.Create(eng.Port(), []byte("bye"), 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := cl.Delete(c); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := cl.Read(c); !errors.Is(err, bullet.ErrNoSuchFile) {
		t.Fatalf("Read after delete served stale cache: %v", err)
	}
}

func TestClientOverTCP(t *testing.T) {
	eng := newEngine(t)
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	srv := rpc.NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{eng.Port(): addr}), 5*time.Second)
	defer tr.Close()
	cl := New(tr)

	data := bytes.Repeat([]byte{0x42}, 200_000)
	c, err := cl.Create(eng.Port(), data, 2)
	if err != nil {
		t.Fatalf("Create over TCP: %v", err)
	}
	got, err := cl.Read(c)
	if err != nil {
		t.Fatalf("Read over TCP: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted over TCP")
	}
	st, err := cl.Stat(eng.Port())
	if err != nil {
		t.Fatalf("Stat over TCP: %v", err)
	}
	if st.Engine.Creates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientRetriesWithAtMostOnceCreate(t *testing.T) {
	eng := newEngine(t)
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	flaky := rpc.NewFlaky(&rpc.LocalID{Mux: mux}, 0, 0, 7)
	// First create executes but its reply is lost; the retry must not
	// create a second file.
	flaky.ScriptDrops([]bool{false, false}, []bool{true, false})
	cl := New(rpc.NewRetrier(flaky, 3))

	c, err := cl.Create(eng.Port(), []byte("exactly one"), 2)
	if err != nil {
		t.Fatalf("Create with flaky transport: %v", err)
	}
	if eng.Live() != 1 {
		t.Fatalf("Live = %d, want 1 (at-most-once)", eng.Live())
	}
	got, err := cl.Read(c)
	if err != nil || !bytes.Equal(got, []byte("exactly one")) {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

func TestClientSurvivesHeavyLoss(t *testing.T) {
	eng := newEngine(t)
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	flaky := rpc.NewFlaky(&rpc.LocalID{Mux: mux}, 0.3, 0.3, 99)
	cl := New(rpc.NewRetrier(flaky, 25))

	for i := 0; i < 20; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 100*(i+1))
		c, err := cl.Create(eng.Port(), data, 2)
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		got, err := cl.Read(c)
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("file %d corrupted", i)
		}
	}
	if eng.Live() != 20 {
		t.Fatalf("Live = %d, want exactly 20 despite retries", eng.Live())
	}
	t.Logf("flaky transport: %d attempts, %d dropped", flaky.Requests, flaky.Dropped)
}

func TestBadCommandRejected(t *testing.T) {
	eng := newEngine(t)
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	tr := rpc.NewLocal(mux)
	rep, _, err := tr.Trans(eng.Port(), rpc.Header{Command: 999}, nil)
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if rep.Status != rpc.StatusBadCommand {
		t.Fatalf("status = %v, want StatusBadCommand", rep.Status)
	}
}

func TestPackUnpackModifyArg2(t *testing.T) {
	cases := []struct {
		size int64
		pf   int
	}{
		{-1, 0}, {0, 1}, {12345, 2}, {1 << 32, 3}, {(1 << 40), 15},
	}
	for _, c := range cases {
		size, pf := bulletsvc.UnpackModifyArg2(bulletsvc.PackModifyArg2(c.size, c.pf))
		if size != c.size || pf != c.pf {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c.size, c.pf, size, pf)
		}
	}
}

// TestClientBudgetShedsAsDeadline pins the deadline budget's client-side
// contract: a spent budget surfaces as trace.ErrDeadlineExceeded — never
// as a generic transport failure — and a budget with headroom changes
// nothing. The mux's clock is injected, so the shed is deterministic.
func TestClientBudgetShedsAsDeadline(t *testing.T) {
	eng := newEngine(t)
	mux := rpc.NewMux(0)
	svc := bulletsvc.New(eng)
	svc.Register(mux)

	// Seed the file with an unbudgeted client on a sane clock.
	data := []byte("pay the toll before the bridge")
	c, err := New(&rpc.LocalID{Mux: mux}).Create(eng.Port(), data, 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Every look at the clock now jumps an hour, so the millisecond
	// budget is spent by the service's first shed check.
	var ticks atomic.Int64
	mux.SetNow(func() int64 { return ticks.Add(int64(time.Hour)) })
	cl := New(&rpc.LocalID{Mux: mux}, WithBudget(time.Millisecond))
	_, err = cl.Read(c)
	if !errors.Is(err, trace.ErrDeadlineExceeded) {
		t.Fatalf("Read with spent budget err = %v, want trace.ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Fatalf("deadline shed classified as a transport failure: %v", err)
	}
	if got := svc.DeadlineSheds(); got != 1 {
		t.Fatalf("DeadlineSheds = %d, want 1", got)
	}

	// Freeze the clock: the same budget can never expire, and the
	// budgeted read behaves exactly like an unbudgeted one.
	mux.SetNow(func() int64 { return 1 })
	got, err := cl.Read(c)
	if err != nil {
		t.Fatalf("Read with frozen clock: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q, want %q", got, data)
	}
}
