package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
	"bulletfs/internal/stats"
)

// ErrWatchUnbounded is returned by Watch when max is 0 (stream forever)
// but the transport cannot deliver frames incrementally — an unbounded
// watch over an assemble-into-one-reply transport would never return.
var ErrWatchUnbounded = errors.New("bullet client: unbounded watch needs a streaming transport")

// Watch subscribes to the server's telemetry stream: fn is called once
// per collector tick with that window's stats.Update. max bounds the
// subscription (0 = until the server or connection ends the stream;
// only valid on a streaming transport). fn returning an error stops the
// watch client-side and returns that error.
//
// Like Stats, any capability with the read right admits the watcher.
func (c *Client) Watch(cp capability.Capability, max uint64, fn func(stats.Update) error) error {
	req := rpc.Header{Command: bulletsvc.CmdWatch, Cap: cp, Arg: max}

	if st, ok := c.tr.(rpc.StreamTransport); ok {
		var fnErr error
		rep, err := st.TransStream(cp.Port, req, nil, func(h rpc.Header, data []byte, last bool) error {
			if fnErr != nil || h.Status != rpc.StatusOK || len(data) == 0 {
				return nil
			}
			var u stats.Update
			if err := json.Unmarshal(data, &u); err != nil {
				fnErr = fmt.Errorf("bullet client: watch frame: %w", err)
				return nil
			}
			if err := fn(u); err != nil {
				// Returning the error from the sink aborts the stream read;
				// the transport drops the connection, which is what tells
				// the server this watcher is gone.
				fnErr = err
				return err
			}
			return nil
		})
		if fnErr != nil {
			return fnErr
		}
		if err != nil {
			return fmt.Errorf("%w: %w", ErrTransport, err)
		}
		if rep.Status != rpc.StatusOK {
			return fmt.Errorf("bullet client: watch rejected: %w", bulletsvc.ErrorOf(rep.Status))
		}
		return nil
	}

	// Assembled fallback: the transport delivers every frame concatenated
	// into one reply, so the stream must be finite.
	if max == 0 {
		return ErrWatchUnbounded
	}
	rep, body, err := c.tr.Trans(cp.Port, req, nil)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrTransport, err)
	}
	if rep.Status != rpc.StatusOK {
		return fmt.Errorf("bullet client: watch rejected: %w", bulletsvc.ErrorOf(rep.Status))
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	for {
		var u stats.Update
		if err := dec.Decode(&u); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("bullet client: watch frames: %w", err)
		}
		if err := fn(u); err != nil {
			return err
		}
	}
}
