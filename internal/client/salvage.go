package client

import (
	"encoding/json"
	"fmt"

	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

// Health fetches the server's self-healing report: replica liveness,
// checksum and repair counters, recovery state, and scrubber progress.
// Capability-checked like Stats — cap must name a live file and carry the
// read right (the report is read-only).
func (c *Client) Health(cap capability.Capability) (bulletsvc.HealthReport, error) {
	req := rpc.Header{Command: bulletsvc.CmdSalvage, Cap: cap, Arg: bulletsvc.SalvageHealth}
	_, body, err := c.call(cap.Port, req, nil)
	if err != nil {
		return bulletsvc.HealthReport{}, err
	}
	var h bulletsvc.HealthReport
	if err := json.Unmarshal(body, &h); err != nil {
		return bulletsvc.HealthReport{}, fmt.Errorf("bullet client: decoding health report: %w", err)
	}
	return h, nil
}

// ScrubNow asks the server to run a scrub pass immediately. cap must
// carry the admin right: scrubbing rewrites divergent replica extents.
func (c *Client) ScrubNow(cap capability.Capability) error {
	req := rpc.Header{Command: bulletsvc.CmdSalvage, Cap: cap, Arg: bulletsvc.SalvageScrub}
	_, _, err := c.call(cap.Port, req, nil)
	return err
}

// Recover asks the server to start an online catch-up copy onto replica.
// cap must carry the admin right. Returns disk.ErrRecovering (StatusBusy
// on the wire) when a recovery is already running.
func (c *Client) Recover(cap capability.Capability, replica int) error {
	req := rpc.Header{
		Command: bulletsvc.CmdSalvage, Cap: cap,
		Arg: bulletsvc.SalvageRecover, Arg2: uint64(replica),
	}
	_, _, err := c.call(cap.Port, req, nil)
	return err
}
