package nfs

import (
	"errors"
	"testing"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

func TestStatusErrorRoundTrip(t *testing.T) {
	cases := []error{
		ErrStale, ErrNotFound, ErrExists, ErrNoSpace, ErrTooBig, ErrBadRange,
	}
	for _, in := range cases {
		st := StatusOf(in)
		if st == rpc.StatusOK || st == rpc.StatusInternal {
			t.Errorf("StatusOf(%v) = %v", in, st)
			continue
		}
		if out := ErrorOf(st); !errors.Is(out, in) {
			t.Errorf("round trip %v -> %v -> %v", in, st, out)
		}
	}
	// The directory-shape errors collapse onto one status.
	for _, in := range []error{ErrIsDir, ErrNotDir, ErrNotEmpty} {
		if StatusOf(in) != rpc.StatusBadRequest {
			t.Errorf("StatusOf(%v) = %v, want StatusBadRequest", in, StatusOf(in))
		}
	}
	if StatusOf(nil) != rpc.StatusOK || ErrorOf(rpc.StatusOK) != nil {
		t.Error("nil round trip broken")
	}
	if StatusOf(errors.New("x")) != rpc.StatusInternal {
		t.Error("unknown error not internal")
	}
	if ErrorOf(rpc.StatusInternal) == nil {
		t.Error("internal mapped to nil")
	}
}

func TestServiceErrorsOverRPC(t *testing.T) {
	s := newFS(t, Options{})
	mux := rpc.NewMux(0)
	port := capability.PortFromString("nfs-err")
	svc := NewService(s, port)
	if svc.Port() != port {
		t.Fatal("Port mismatch")
	}
	svc.Register(mux)
	cl := NewClient(rpc.NewLocal(mux), port)
	root, err := cl.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}

	if _, err := cl.Lookup(root, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup(missing) err = %v", err)
	}
	if _, err := cl.GetAttr(Handle{Inode: 9999, Gen: 1}); !errors.Is(err, ErrStale) {
		t.Fatalf("GetAttr(stale) err = %v", err)
	}
	h, err := cl.Create(root, "f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := cl.Create(root, "f"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate err = %v", err)
	}
	if err := cl.Remove(root, "f"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := cl.ReadBlock(h, 0, 10); !errors.Is(err, ErrStale) {
		t.Fatalf("read stale handle err = %v", err)
	}
	// Bad command straight at the handler.
	rep, _ := svc.Handle(rpc.Header{Command: 12345}, nil)
	if rep.Status != rpc.StatusBadCommand {
		t.Fatalf("bad command status = %v", rep.Status)
	}
}

func TestEvictCacheAndCachedBlocks(t *testing.T) {
	s := newFS(t, Options{})
	h := create(t, s, s.Root(), "evictme")
	writeAllSrv(t, s, h, pattern(6*BlockSize))
	n := s.CachedBlocks()
	if n == 0 {
		t.Fatal("nothing cached after writes")
	}
	s.EvictCache(2)
	if got := s.CachedBlocks(); got != n-2 {
		t.Fatalf("CachedBlocks = %d, want %d", got, n-2)
	}
	// Evicting more than exists empties it without panicking.
	s.EvictCache(1 << 20)
	if got := s.CachedBlocks(); got != 0 {
		t.Fatalf("CachedBlocks = %d, want 0", got)
	}
	// Data still correct (cache was clean: write-through).
	if got := readAllSrv(t, s, h); len(got) != 6*BlockSize {
		t.Fatalf("read %d bytes", len(got))
	}
}

func TestDiskFullSmall(t *testing.T) {
	// 4 MB device: superblock + tables + small data area. The fill
	// exercises the allocation rotor's wrap-around and the full-disk path.
	s := func() *Server {
		dev, err := disk.NewMem(512, 8192)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		if err := Format(dev, FormatConfig{Inodes: 64}); err != nil {
			t.Fatalf("Format: %v", err)
		}
		srv, err := Mount(dev, Options{AllocStride: 13})
		if err != nil {
			t.Fatalf("Mount: %v", err)
		}
		return srv
	}()
	h := create(t, s, s.Root(), "filler")
	data := pattern(BlockSize)
	var werr error
	for off := int64(0); ; off += BlockSize {
		if _, werr = s.Write(h, off, data); werr != nil {
			break
		}
		if off > 64<<20 {
			t.Fatal("device never filled")
		}
	}
	if !errors.Is(werr, ErrNoSpace) {
		t.Fatalf("fill err = %v, want ErrNoSpace", werr)
	}
	// Freeing by removal makes room again (rotor wraps over the bitmap).
	if err := s.Remove(s.Root(), "filler"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	h2 := create(t, s, s.Root(), "after")
	if _, err := s.Write(h2, 0, data); err != nil {
		t.Fatalf("write after refill: %v", err)
	}
}
