// Package nfs implements the paper's comparator: a SUN-NFS-style
// block-model file server (§1, §4). Where Bullet stores files contiguously
// and ships them whole, this server does what 1980s UNIX file servers did:
//
//   - files are split into fixed 8 KB blocks scattered over the disk;
//   - an inode holds 12 direct block pointers, one single-indirect and one
//     double-indirect block ("the block management introduced high
//     overhead: indirect blocks were necessary", §1);
//   - clients read and write one block per RPC (lseek+read / creat+write+
//     close in the paper's measurement loop);
//   - the server has a 3 MB write-through buffer cache, writing to one
//     disk only (§4).
//
// The block allocator deliberately models an *aged* production filesystem:
// free blocks are handed out round-robin with a stride, so consecutive
// file blocks are rarely adjacent on disk — the paper's NFS server had
// been in service, not freshly formatted. Stride 1 gives a fresh FS for
// ablation studies.
package nfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"bulletfs/internal/disk"
)

// Filesystem geometry.
const (
	// BlockSize is the filesystem block size (and the per-RPC transfer
	// unit), 8 KB as in SunOS-era NFS.
	BlockSize = 8192
	// NDirect is the number of direct block pointers per inode.
	NDirect = 12
	// PtrsPerBlock is how many block pointers fit in an indirect block.
	PtrsPerBlock = BlockSize / 4
	// InodeSize is the on-disk inode slot size.
	InodeSize = 128
	// MaxFileSize is the largest representable file.
	MaxFileSize = int64(NDirect+PtrsPerBlock+PtrsPerBlock*PtrsPerBlock) * BlockSize

	superMagic = 0x55465331 // "UFS1"
)

// Errors returned by the server.
var (
	// ErrNotFormatted means the device holds no filesystem.
	ErrNotFormatted = errors.New("nfs: device not formatted")
	// ErrStale means a file handle no longer names a live file.
	ErrStale = errors.New("nfs: stale file handle")
	// ErrNotFound means a name is absent from its directory.
	ErrNotFound = errors.New("nfs: no such file")
	// ErrExists means Create/Mkdir found the name taken.
	ErrExists = errors.New("nfs: file exists")
	// ErrNoSpace means the disk or inode table is full.
	ErrNoSpace = errors.New("nfs: no space")
	// ErrIsDir means a file operation hit a directory (or vice versa).
	ErrIsDir = errors.New("nfs: is a directory")
	// ErrNotDir means a directory operation hit a file.
	ErrNotDir = errors.New("nfs: not a directory")
	// ErrNotEmpty means Rmdir on a non-empty directory.
	ErrNotEmpty = errors.New("nfs: directory not empty")
	// ErrTooBig means a write would exceed MaxFileSize.
	ErrTooBig = errors.New("nfs: file too large")
	// ErrBadRange means a malformed offset/count.
	ErrBadRange = errors.New("nfs: bad offset or count")
	// ErrConfig means a format request cannot fit the device.
	ErrConfig = errors.New("nfs: bad format configuration")
)

// Handle names a file or directory, like an NFS file handle: inode number
// plus a generation count that detects reuse after deletion.
type Handle struct {
	Inode uint32
	Gen   uint32
}

// Attr is the subset of file attributes the benchmarks need.
type Attr struct {
	Size  int64
	IsDir bool
}

// inode modes.
const (
	modeFree uint32 = 0
	modeFile uint32 = 1
	modeDir  uint32 = 2
)

// inode is the in-memory form of an on-disk inode.
type inode struct {
	Mode      uint32
	Gen       uint32
	Size      int64
	Direct    [NDirect]uint32
	Indirect  uint32
	DIndirect uint32
}

func (ino *inode) encode(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], ino.Mode)
	binary.BigEndian.PutUint32(b[4:8], ino.Gen)
	binary.BigEndian.PutUint64(b[8:16], uint64(ino.Size))
	for i, p := range ino.Direct {
		binary.BigEndian.PutUint32(b[16+i*4:20+i*4], p)
	}
	binary.BigEndian.PutUint32(b[64:68], ino.Indirect)
	binary.BigEndian.PutUint32(b[68:72], ino.DIndirect)
}

func decodeInode(b []byte) inode {
	var ino inode
	ino.Mode = binary.BigEndian.Uint32(b[0:4])
	ino.Gen = binary.BigEndian.Uint32(b[4:8])
	ino.Size = int64(binary.BigEndian.Uint64(b[8:16]))
	for i := range ino.Direct {
		ino.Direct[i] = binary.BigEndian.Uint32(b[16+i*4 : 20+i*4])
	}
	ino.Indirect = binary.BigEndian.Uint32(b[64:68])
	ino.DIndirect = binary.BigEndian.Uint32(b[68:72])
	return ino
}

// superblock describes the on-disk layout, all units in FS blocks.
type superblock struct {
	InodeCount  uint32
	InodeStart  uint32 // first FS block of the inode table
	BitmapStart uint32
	DataStart   uint32
	TotalBlocks uint32
}

func (sb *superblock) encode(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], superMagic)
	binary.BigEndian.PutUint32(b[4:8], sb.InodeCount)
	binary.BigEndian.PutUint32(b[8:12], sb.InodeStart)
	binary.BigEndian.PutUint32(b[12:16], sb.BitmapStart)
	binary.BigEndian.PutUint32(b[16:20], sb.DataStart)
	binary.BigEndian.PutUint32(b[20:24], sb.TotalBlocks)
}

func decodeSuperblock(b []byte) (superblock, error) {
	if binary.BigEndian.Uint32(b[0:4]) != superMagic {
		return superblock{}, ErrNotFormatted
	}
	sb := superblock{
		InodeCount:  binary.BigEndian.Uint32(b[4:8]),
		InodeStart:  binary.BigEndian.Uint32(b[8:12]),
		BitmapStart: binary.BigEndian.Uint32(b[12:16]),
		DataStart:   binary.BigEndian.Uint32(b[16:20]),
		TotalBlocks: binary.BigEndian.Uint32(b[20:24]),
	}
	// Region ordering sanity: a corrupted superblock must not underflow
	// the bitmap size or send region math out of range during Mount.
	if sb.InodeStart != 1 ||
		sb.BitmapStart <= sb.InodeStart || sb.DataStart < sb.BitmapStart ||
		sb.DataStart >= sb.TotalBlocks || sb.InodeCount == 0 {
		return superblock{}, fmt.Errorf("inconsistent superblock regions: %w", ErrNotFormatted)
	}
	return sb, nil
}

// Options configures a Server.
type Options struct {
	// CacheBytes is the buffer cache size (default 3 MB, the paper's SUN
	// 3/180 configuration).
	CacheBytes int64
	// AllocStride scatters block allocation to model filesystem aging:
	// the free-block search advances by this many blocks between
	// allocations. 1 = fresh contiguous-ish filesystem; default 7.
	AllocStride int
}

// Server is the block-model file server engine. It is safe for concurrent
// use (one big lock, as honest to the era as the Bullet engine's).
type Server struct {
	dev disk.Device
	sb  superblock

	mu     sync.Mutex
	cache  *bcache
	bitmap []byte // in-RAM copy of the block bitmap
	rotor  uint32 // next-allocation search position
	stride int
	root   Handle
	stats  Stats
}

// Stats counts server activity.
type Stats struct {
	Lookups    int64
	Creates    int64
	Reads      int64
	Writes     int64
	Removes    int64
	BytesRead  int64
	BytesWrite int64
	CacheHits  int64
	CacheMiss  int64
}

// FormatConfig controls Format.
type FormatConfig struct {
	// Inodes is the inode table capacity (default: 1 per 4 data blocks).
	Inodes int
}

// Format writes a fresh filesystem onto dev and creates the root
// directory.
func Format(dev disk.Device, cfg FormatConfig) error {
	devBytes := dev.Blocks() * int64(dev.BlockSize())
	total := uint32(devBytes / BlockSize)
	if total < 16 {
		return fmt.Errorf("device too small (%d FS blocks): %w", total, ErrConfig)
	}
	inodes := cfg.Inodes
	if inodes <= 0 {
		inodes = int(total / 4)
	}
	inodeBlocks := (uint32(inodes)*InodeSize + BlockSize - 1) / BlockSize
	bitmapBlocks := (total/8 + BlockSize - 1) / BlockSize
	sb := superblock{
		InodeCount:  uint32(inodes),
		InodeStart:  1,
		BitmapStart: 1 + inodeBlocks,
		DataStart:   1 + inodeBlocks + bitmapBlocks,
		TotalBlocks: total,
	}
	if sb.DataStart >= total {
		return fmt.Errorf("device too small for %d inodes: %w", inodes, ErrConfig)
	}

	zero := make([]byte, BlockSize)
	for b := uint32(0); b < sb.DataStart; b++ {
		if err := writeFSBlock(dev, b, zero); err != nil {
			return err
		}
	}
	buf := make([]byte, BlockSize)
	sb.encode(buf)
	if err := writeFSBlock(dev, 0, buf); err != nil {
		return err
	}

	// Root directory: inode 1, an empty file of directory mode.
	root := inode{Mode: modeDir, Gen: 1}
	ib := make([]byte, BlockSize)
	root.encode(ib[1*InodeSize:])
	if err := writeFSBlock(dev, sb.InodeStart, ib); err != nil {
		return err
	}
	return dev.Sync()
}

func writeFSBlock(dev disk.Device, fsBlock uint32, data []byte) error {
	if err := dev.WriteAt(data, int64(fsBlock)*BlockSize); err != nil {
		return fmt.Errorf("nfs: writing FS block %d: %w", fsBlock, err)
	}
	return nil
}

// Mount opens a formatted device.
func Mount(dev disk.Device, opts Options) (*Server, error) {
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 3 << 20
	}
	if opts.AllocStride <= 0 {
		opts.AllocStride = 7
	}
	buf := make([]byte, BlockSize)
	if err := dev.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("nfs: reading superblock: %w", err)
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return nil, err
	}
	s := &Server{
		dev:    dev,
		sb:     sb,
		cache:  newBcache(int(opts.CacheBytes / BlockSize)),
		stride: opts.AllocStride,
		root:   Handle{Inode: 1, Gen: 1},
		rotor:  sb.DataStart,
	}
	// Load the bitmap into RAM (kernels kept it cached; we are explicit).
	bitmapBlocks := sb.DataStart - sb.BitmapStart
	s.bitmap = make([]byte, int64(bitmapBlocks)*BlockSize)
	for i := uint32(0); i < bitmapBlocks; i++ {
		if err := dev.ReadAt(s.bitmap[int64(i)*BlockSize:(int64(i)+1)*BlockSize], int64(sb.BitmapStart+i)*BlockSize); err != nil {
			return nil, fmt.Errorf("nfs: reading bitmap: %w", err)
		}
	}
	return s, nil
}

// Root returns the root directory handle.
func (s *Server) Root() Handle { return s.root }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// EvictCache drops the n least-recently-used buffer-cache blocks. The
// experiment harness uses it to model working-set pressure from the rest
// of a shared departmental server (the paper's SUN 3/180 was the
// production file server; only the *client* was idle, §4).
func (s *Server) EvictCache(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.evictN(n)
}

// CachedBlocks reports how many blocks the buffer cache currently holds.
func (s *Server) CachedBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

// --- block I/O through the buffer cache -----------------------------------

// readBlock returns FS block b via the cache. The returned slice aliases
// the cache entry; do not retain across lock release.
func (s *Server) readBlock(b uint32) ([]byte, error) {
	if data, ok := s.cache.get(b); ok {
		s.stats.CacheHits++
		return data, nil
	}
	s.stats.CacheMiss++
	data := make([]byte, BlockSize)
	if err := s.dev.ReadAt(data, int64(b)*BlockSize); err != nil {
		return nil, fmt.Errorf("nfs: reading FS block %d: %w", b, err)
	}
	s.cache.put(b, data)
	return data, nil
}

// writeBlock stores FS block b write-through: disk first, then cache.
func (s *Server) writeBlock(b uint32, data []byte) error {
	if err := s.dev.WriteAt(data, int64(b)*BlockSize); err != nil {
		return fmt.Errorf("nfs: writing FS block %d: %w", b, err)
	}
	s.cache.put(b, data)
	return nil
}

// --- inode I/O -------------------------------------------------------------

const inodesPerBlock = BlockSize / InodeSize

func (s *Server) inodeBlock(n uint32) uint32 { return s.sb.InodeStart + n/inodesPerBlock }

func (s *Server) readInode(n uint32) (inode, error) {
	if n == 0 || n >= s.sb.InodeCount {
		return inode{}, fmt.Errorf("inode %d: %w", n, ErrStale)
	}
	blk, err := s.readBlock(s.inodeBlock(n))
	if err != nil {
		return inode{}, err
	}
	off := (n % inodesPerBlock) * InodeSize
	return decodeInode(blk[off : off+InodeSize]), nil
}

func (s *Server) writeInode(n uint32, ino inode) error {
	blk, err := s.readBlock(s.inodeBlock(n))
	if err != nil {
		return err
	}
	updated := make([]byte, BlockSize)
	copy(updated, blk)
	off := (n % inodesPerBlock) * InodeSize
	ino.encode(updated[off : off+InodeSize])
	return s.writeBlock(s.inodeBlock(n), updated)
}

// allocInode claims a free inode slot.
func (s *Server) allocInode(mode uint32) (uint32, inode, error) {
	for n := uint32(1); n < s.sb.InodeCount; n++ {
		ino, err := s.readInode(n)
		if err != nil {
			return 0, inode{}, err
		}
		if ino.Mode == modeFree {
			fresh := inode{Mode: mode, Gen: ino.Gen + 1}
			if err := s.writeInode(n, fresh); err != nil {
				return 0, inode{}, err
			}
			return n, fresh, nil
		}
	}
	return 0, inode{}, fmt.Errorf("inode table full: %w", ErrNoSpace)
}

// --- block allocation (the scattered kind) ---------------------------------

func (s *Server) bitGet(b uint32) bool { return s.bitmap[b/8]&(1<<(b%8)) != 0 }
func (s *Server) bitSet(b uint32, v bool) {
	if v {
		s.bitmap[b/8] |= 1 << (b % 8)
	} else {
		s.bitmap[b/8] &^= 1 << (b % 8)
	}
}

// flushBitmapFor persists the bitmap block covering FS block b.
func (s *Server) flushBitmapFor(b uint32) error {
	byteIdx := int64(b / 8)
	blockIdx := uint32(byteIdx / BlockSize)
	start := int64(blockIdx) * BlockSize
	blk := make([]byte, BlockSize)
	copy(blk, s.bitmap[start:start+BlockSize])
	return s.writeBlock(s.sb.BitmapStart+blockIdx, blk)
}

// allocBlock claims one data block. The rotor + stride walk models an aged
// filesystem: logically consecutive allocations land on scattered blocks.
func (s *Server) allocBlock() (uint32, error) {
	dataBlocks := s.sb.TotalBlocks - s.sb.DataStart
	if dataBlocks == 0 {
		return 0, ErrNoSpace
	}
	pos := s.rotor
	for scanned := uint32(0); scanned < dataBlocks; scanned++ {
		if pos < s.sb.DataStart || pos >= s.sb.TotalBlocks {
			pos = s.sb.DataStart
		}
		if !s.bitGet(pos) {
			s.bitSet(pos, true)
			if err := s.flushBitmapFor(pos); err != nil {
				s.bitSet(pos, false)
				return 0, err
			}
			s.rotor = pos + uint32(s.stride)
			if s.rotor >= s.sb.TotalBlocks {
				s.rotor = s.sb.DataStart + (s.rotor-s.sb.DataStart)%dataBlocks
			}
			return pos, nil
		}
		pos++
		if pos >= s.sb.TotalBlocks {
			pos = s.sb.DataStart
		}
	}
	return 0, fmt.Errorf("disk full: %w", ErrNoSpace)
}

func (s *Server) freeBlock(b uint32) error {
	if b < s.sb.DataStart || b >= s.sb.TotalBlocks {
		return nil // pointer slot was empty
	}
	s.bitSet(b, false)
	return s.flushBitmapFor(b)
}
