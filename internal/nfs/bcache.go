package nfs

import "container/list"

// bcache is the server's buffer cache: an LRU of FS blocks, 3 MB in the
// paper's configuration. It caches data and metadata blocks alike, exactly
// like the era's UNIX buffer cache. Write-through is the caller's job
// (Server.writeBlock); the cache itself never holds dirty blocks.
type bcache struct {
	capacity int
	blocks   map[uint32]*list.Element
	lru      *list.List // front = most recent
}

type bcEntry struct {
	block uint32
	data  []byte
}

func newBcache(capacityBlocks int) *bcache {
	if capacityBlocks < 1 {
		capacityBlocks = 1
	}
	return &bcache{
		capacity: capacityBlocks,
		blocks:   make(map[uint32]*list.Element, capacityBlocks),
		lru:      list.New(),
	}
}

// get returns the cached block and refreshes its recency.
func (c *bcache) get(block uint32) ([]byte, bool) {
	e, ok := c.blocks[block]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*bcEntry).data, true
}

// put inserts or refreshes a block, evicting the LRU block when full. The
// data is copied so callers may reuse their buffer.
func (c *bcache) put(block uint32, data []byte) {
	if e, ok := c.blocks[block]; ok {
		copy(e.Value.(*bcEntry).data, data)
		c.lru.MoveToFront(e)
		return
	}
	for c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.blocks, oldest.Value.(*bcEntry).block)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.blocks[block] = c.lru.PushFront(&bcEntry{block: block, data: cp})
}

// drop removes a block (after freeing it on disk).
func (c *bcache) drop(block uint32) {
	if e, ok := c.blocks[block]; ok {
		c.lru.Remove(e)
		delete(c.blocks, block)
	}
}

// len reports cached blocks (for tests).
func (c *bcache) len() int { return c.lru.Len() }

// evictN drops the n least-recently-used blocks.
func (c *bcache) evictN(n int) {
	for i := 0; i < n; i++ {
		oldest := c.lru.Back()
		if oldest == nil {
			return
		}
		c.lru.Remove(oldest)
		delete(c.blocks, oldest.Value.(*bcEntry).block)
	}
}
