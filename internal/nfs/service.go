package nfs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

// Command codes of the NFS-like protocol. Each READ/WRITE carries at most
// one 8 KB block — the per-block RPC model whose overhead the paper
// measures against Bullet's whole-file transfer.
const (
	CmdNull    uint32 = 96  // round-trip only
	CmdGetAttr uint32 = 97  // Arg2=handle -> Arg=size, Arg2=isDir
	CmdLookup  uint32 = 98  // Arg2=dir handle, payload=name -> Arg2=handle, Arg=isDir
	CmdCreate  uint32 = 99  // Arg2=dir handle, payload=name -> Arg2=handle
	CmdRead    uint32 = 100 // Arg2=handle, Arg=offset<<16|count -> payload
	CmdWrite   uint32 = 101 // Arg2=handle, Arg=offset, payload=data -> Arg=written
	CmdRemove  uint32 = 102 // Arg2=dir handle, payload=name
	CmdMkdir   uint32 = 103 // Arg2=dir handle, payload=name -> Arg2=handle
	CmdReadDir uint32 = 104 // Arg2=dir handle -> payload=entries
	CmdRoot    uint32 = 105 // -> Arg2=root handle
	CmdStat    uint32 = 106 // -> payload=JSON Stats
)

// HandleToArg packs a handle into a header argument.
func HandleToArg(h Handle) uint64 { return uint64(h.Inode)<<32 | uint64(h.Gen) }

// ArgToHandle unpacks a handle from a header argument.
func ArgToHandle(a uint64) Handle { return Handle{Inode: uint32(a >> 32), Gen: uint32(a)} }

// StatusOf maps server errors to statuses.
func StatusOf(err error) rpc.Status {
	switch {
	case err == nil:
		return rpc.StatusOK
	case errors.Is(err, ErrStale):
		return rpc.StatusNoSuchObject
	case errors.Is(err, ErrNotFound):
		return rpc.StatusNotFound
	case errors.Is(err, ErrExists):
		return rpc.StatusExists
	case errors.Is(err, ErrNoSpace):
		return rpc.StatusNoSpace
	case errors.Is(err, ErrTooBig):
		return rpc.StatusTooLarge
	case errors.Is(err, ErrBadRange):
		return rpc.StatusBadOffset
	case errors.Is(err, ErrIsDir), errors.Is(err, ErrNotDir), errors.Is(err, ErrNotEmpty):
		return rpc.StatusBadRequest
	default:
		return rpc.StatusInternal
	}
}

// ErrorOf maps statuses back to errors client-side.
func ErrorOf(st rpc.Status) error {
	switch st {
	case rpc.StatusOK:
		return nil
	case rpc.StatusNoSuchObject:
		return ErrStale
	case rpc.StatusNotFound:
		return ErrNotFound
	case rpc.StatusExists:
		return ErrExists
	case rpc.StatusNoSpace:
		return ErrNoSpace
	case rpc.StatusTooLarge:
		return ErrTooBig
	case rpc.StatusBadOffset:
		return ErrBadRange
	case rpc.StatusBadRequest:
		return ErrNotDir
	default:
		return rpc.Errf(st, "nfs server error")
	}
}

// Service exposes a Server over RPC on a port.
type Service struct {
	srv  *Server
	port capability.Port
}

// NewService wraps srv for serving on port.
func NewService(srv *Server, port capability.Port) *Service {
	return &Service{srv: srv, port: port}
}

// Port returns the service's port.
func (s *Service) Port() capability.Port { return s.port }

// Register installs the handler on mux.
func (s *Service) Register(mux *rpc.Mux) { mux.Register(s.port, s.Handle) }

// Handle processes one NFS transaction.
func (s *Service) Handle(req rpc.Header, payload []byte) (rpc.Header, []byte) {
	fail := func(err error) (rpc.Header, []byte) { return rpc.ReplyErr(StatusOf(err)), nil }
	switch req.Command {
	case CmdNull:
		return rpc.ReplyOK(), nil

	case CmdRoot:
		return rpc.Header{Status: rpc.StatusOK, Arg2: HandleToArg(s.srv.Root())}, nil

	case CmdGetAttr:
		attr, err := s.srv.GetAttr(ArgToHandle(req.Arg2))
		if err != nil {
			return fail(err)
		}
		isDir := uint64(0)
		if attr.IsDir {
			isDir = 1
		}
		return rpc.Header{Status: rpc.StatusOK, Arg: uint64(attr.Size), Arg2: isDir}, nil

	case CmdLookup:
		h, err := s.srv.Lookup(ArgToHandle(req.Arg2), string(payload))
		if err != nil {
			return fail(err)
		}
		attr, err := s.srv.GetAttr(h)
		if err != nil {
			return fail(err)
		}
		isDir := uint64(0)
		if attr.IsDir {
			isDir = 1
		}
		return rpc.Header{Status: rpc.StatusOK, Arg: isDir, Arg2: HandleToArg(h)}, nil

	case CmdCreate:
		h, err := s.srv.Create(ArgToHandle(req.Arg2), string(payload))
		if err != nil {
			return fail(err)
		}
		return rpc.Header{Status: rpc.StatusOK, Arg2: HandleToArg(h)}, nil

	case CmdMkdir:
		h, err := s.srv.Mkdir(ArgToHandle(req.Arg2), string(payload))
		if err != nil {
			return fail(err)
		}
		return rpc.Header{Status: rpc.StatusOK, Arg2: HandleToArg(h)}, nil

	case CmdRead:
		offset := int64(req.Arg >> 16)
		count := int(req.Arg & 0xFFFF)
		data, err := s.srv.Read(ArgToHandle(req.Arg2), offset, count)
		if err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), data

	case CmdWrite:
		n, err := s.srv.Write(ArgToHandle(req.Arg2), int64(req.Arg), payload)
		if err != nil {
			return fail(err)
		}
		return rpc.Header{Status: rpc.StatusOK, Arg: uint64(n)}, nil

	case CmdRemove:
		if err := s.srv.Remove(ArgToHandle(req.Arg2), string(payload)); err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), nil

	case CmdReadDir:
		entries, err := s.srv.ReadDir(ArgToHandle(req.Arg2))
		if err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), encodeEntries(entries)

	case CmdStat:
		body, err := json.Marshal(s.srv.Stats())
		if err != nil {
			return rpc.ReplyErr(rpc.StatusInternal), nil
		}
		return rpc.ReplyOK(), body

	default:
		return rpc.ReplyErr(rpc.StatusBadCommand), nil
	}
}

func encodeEntries(entries []DirEntry) []byte {
	var buf []byte
	var scratch [10]byte
	binary.BigEndian.PutUint16(scratch[:2], uint16(len(entries)))
	buf = append(buf, scratch[:2]...)
	for _, e := range entries {
		binary.BigEndian.PutUint32(scratch[0:4], e.Handle.Inode)
		binary.BigEndian.PutUint32(scratch[4:8], e.Handle.Gen)
		scratch[8] = byte(len(e.Name))
		scratch[9] = 0
		if e.IsDir {
			scratch[9] = 1
		}
		buf = append(buf, scratch[:10]...)
		buf = append(buf, e.Name...)
	}
	return buf
}

func decodeEntries(payload []byte) ([]DirEntry, error) {
	if len(payload) < 2 {
		return nil, rpc.ErrBadFrame
	}
	count := int(binary.BigEndian.Uint16(payload[:2]))
	payload = payload[2:]
	out := make([]DirEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(payload) < 10 {
			return nil, rpc.ErrBadFrame
		}
		e := DirEntry{
			Handle: Handle{
				Inode: binary.BigEndian.Uint32(payload[0:4]),
				Gen:   binary.BigEndian.Uint32(payload[4:8]),
			},
			IsDir: payload[9] == 1,
		}
		n := int(payload[8])
		payload = payload[10:]
		if len(payload) < n {
			return nil, rpc.ErrBadFrame
		}
		e.Name = string(payload[:n])
		payload = payload[n:]
		out = append(out, e)
	}
	return out, nil
}

// Client is the NFS-style client. Per the paper's measurement setup,
// it does no client-side caching (the paper disabled it with lockf): every
// read and write is a transaction, one block at a time.
type Client struct {
	tr   rpc.Transport
	port capability.Port
}

// NewClient builds a client of the service at port.
func NewClient(tr rpc.Transport, port capability.Port) *Client {
	return &Client{tr: tr, port: port}
}

func (c *Client) call(req rpc.Header, payload []byte) (rpc.Header, []byte, error) {
	rep, body, err := c.tr.Trans(c.port, req, payload)
	if err != nil {
		return rpc.Header{}, nil, fmt.Errorf("nfs client: transport: %w", err)
	}
	if rep.Status != rpc.StatusOK {
		return rep, nil, ErrorOf(rep.Status)
	}
	return rep, body, nil
}

// Root fetches the root directory handle.
func (c *Client) Root() (Handle, error) {
	rep, _, err := c.call(rpc.Header{Command: CmdRoot}, nil)
	if err != nil {
		return Handle{}, err
	}
	return ArgToHandle(rep.Arg2), nil
}

// Lookup resolves a name.
func (c *Client) Lookup(dir Handle, name string) (Handle, error) {
	rep, _, err := c.call(rpc.Header{Command: CmdLookup, Arg2: HandleToArg(dir)}, []byte(name))
	if err != nil {
		return Handle{}, err
	}
	return ArgToHandle(rep.Arg2), nil
}

// GetAttr fetches attributes.
func (c *Client) GetAttr(h Handle) (Attr, error) {
	rep, _, err := c.call(rpc.Header{Command: CmdGetAttr, Arg2: HandleToArg(h)}, nil)
	if err != nil {
		return Attr{}, err
	}
	return Attr{Size: int64(rep.Arg), IsDir: rep.Arg2 == 1}, nil
}

// Create makes an empty file.
func (c *Client) Create(dir Handle, name string) (Handle, error) {
	rep, _, err := c.call(rpc.Header{Command: CmdCreate, Arg2: HandleToArg(dir)}, []byte(name))
	if err != nil {
		return Handle{}, err
	}
	return ArgToHandle(rep.Arg2), nil
}

// Mkdir makes a directory.
func (c *Client) Mkdir(dir Handle, name string) (Handle, error) {
	rep, _, err := c.call(rpc.Header{Command: CmdMkdir, Arg2: HandleToArg(dir)}, []byte(name))
	if err != nil {
		return Handle{}, err
	}
	return ArgToHandle(rep.Arg2), nil
}

// Remove unlinks a name.
func (c *Client) Remove(dir Handle, name string) error {
	_, _, err := c.call(rpc.Header{Command: CmdRemove, Arg2: HandleToArg(dir)}, []byte(name))
	return err
}

// ReadDir lists a directory.
func (c *Client) ReadDir(dir Handle) ([]DirEntry, error) {
	_, body, err := c.call(rpc.Header{Command: CmdReadDir, Arg2: HandleToArg(dir)}, nil)
	if err != nil {
		return nil, err
	}
	return decodeEntries(body)
}

// ReadBlock reads up to count (<= BlockSize) bytes at offset: one RPC.
func (c *Client) ReadBlock(h Handle, offset int64, count int) ([]byte, error) {
	if count > BlockSize {
		count = BlockSize
	}
	req := rpc.Header{Command: CmdRead, Arg2: HandleToArg(h), Arg: uint64(offset)<<16 | uint64(count)}
	_, body, err := c.call(req, nil)
	return body, err
}

// WriteBlock writes up to one block at offset: one RPC.
func (c *Client) WriteBlock(h Handle, offset int64, data []byte) (int, error) {
	if len(data) > BlockSize {
		data = data[:BlockSize]
	}
	rep, _, err := c.call(rpc.Header{Command: CmdWrite, Arg2: HandleToArg(h), Arg: uint64(offset)}, data)
	if err != nil {
		return 0, err
	}
	return int(rep.Arg), nil
}

// ReadAll performs the paper's read test for one file: an lseek (free) and
// sequential one-block read RPCs until EOF.
func (c *Client) ReadAll(h Handle) ([]byte, error) {
	attr, err := c.GetAttr(h)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, attr.Size)
	for off := int64(0); off < attr.Size; {
		blk, err := c.ReadBlock(h, off, BlockSize)
		if err != nil {
			return nil, err
		}
		if len(blk) == 0 {
			break
		}
		out = append(out, blk...)
		off += int64(len(blk))
	}
	return out, nil
}

// WriteAll writes data with sequential one-block write RPCs.
func (c *Client) WriteAll(h Handle, data []byte) error {
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > BlockSize {
			n = BlockSize
		}
		w, err := c.WriteBlock(h, int64(off), data[off:off+n])
		if err != nil {
			return err
		}
		off += w
	}
	return nil
}

// CreateWrite performs the paper's write test for one file: creat, write
// loop, close (close is free on this protocol; the server is
// write-through, matching the paper's SunOS server).
func (c *Client) CreateWrite(dir Handle, name string, data []byte) (Handle, error) {
	h, err := c.Create(dir, name)
	if err != nil {
		return Handle{}, err
	}
	if err := c.WriteAll(h, data); err != nil {
		return Handle{}, err
	}
	return h, nil
}

// Null performs an empty round trip (for measuring protocol overhead).
func (c *Client) Null() error {
	_, _, err := c.call(rpc.Header{Command: CmdNull}, nil)
	return err
}

// Stat fetches server counters.
func (c *Client) Stat() (Stats, error) {
	_, body, err := c.call(rpc.Header{Command: CmdStat}, nil)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return Stats{}, fmt.Errorf("nfs client: decoding stats: %w", err)
	}
	return st, nil
}
