package nfs

import (
	"bytes"
	"fmt"
	"testing"

	"bulletfs/internal/disk"
)

// TestBmapBoundaries writes one block at each structural boundary of the
// UNIX block map — last direct, first indirect, last indirect, first
// double-indirect — and verifies contents, sparsity and cleanup.
func TestBmapBoundaries(t *testing.T) {
	dev, err := disk.NewMem(512, 131072) // 64 MB: room for indirect spans
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	if err := Format(dev, FormatConfig{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	s, err := Mount(dev, Options{})
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}

	boundaries := []int64{
		0,                                     // first direct
		NDirect - 1,                           // last direct
		NDirect,                               // first single-indirect
		NDirect + PtrsPerBlock - 1,            // last single-indirect
		NDirect + PtrsPerBlock,                // first double-indirect
		NDirect + PtrsPerBlock + PtrsPerBlock, // second inner indirect block
	}
	h := create(t, s, s.Root(), "boundaries")
	marks := map[int64][]byte{}
	for i, blk := range boundaries {
		data := bytes.Repeat([]byte{byte(i + 1)}, BlockSize)
		if _, err := s.Write(h, blk*BlockSize, data); err != nil {
			t.Fatalf("write at block %d: %v", blk, err)
		}
		marks[blk] = data
	}
	for blk, want := range marks {
		got, err := s.Read(h, blk*BlockSize, BlockSize)
		if err != nil {
			t.Fatalf("read at block %d: %v", blk, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d corrupted", blk)
		}
	}
	// A hole between boundaries reads as zeros.
	hole, err := s.Read(h, (NDirect+5)*BlockSize, BlockSize)
	if err != nil || !bytes.Equal(hole, make([]byte, BlockSize)) {
		t.Fatalf("hole not zero: %v", err)
	}
	attr, err := s.GetAttr(h)
	if err != nil {
		t.Fatalf("GetAttr: %v", err)
	}
	wantSize := (boundaries[len(boundaries)-1] + 1) * BlockSize
	if attr.Size != wantSize {
		t.Fatalf("size = %d, want %d", attr.Size, wantSize)
	}

	// Removal frees every data, indirect and double-indirect block.
	if err := s.Remove(s.Root(), "boundaries"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	used := 0
	for b := s.sb.DataStart; b < s.sb.TotalBlocks; b++ {
		if s.bitGet(b) {
			used++
		}
	}
	if used != 1 { // only the root directory's block
		t.Fatalf("%d blocks leaked after removing a boundary-spanning file", used)
	}
}

// TestSequentialGrowthThroughIndirects writes a file straight through the
// direct/indirect transition and reads it back whole.
func TestSequentialGrowthThroughIndirects(t *testing.T) {
	dev, err := disk.NewMem(512, 32768)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	if err := Format(dev, FormatConfig{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	s, err := Mount(dev, Options{})
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	h := create(t, s, s.Root(), "grow")
	const blocks = NDirect + 20 // crosses into single-indirect
	data := pattern(blocks * BlockSize)
	writeAllSrv(t, s, h, data)
	if got := readAllSrv(t, s, h); !bytes.Equal(got, data) {
		t.Fatal("contents corrupted across the direct/indirect transition")
	}
}

// TestManyFilesManyInodes pushes inode allocation across several inode
// blocks and checks generation bumps across reuse.
func TestManyFilesManyInodes(t *testing.T) {
	s := newFS(t, Options{})
	type rec struct {
		h    Handle
		name string
	}
	var recs []rec
	for i := 0; i < 150; i++ { // > one 64-inode block
		name := fmt.Sprintf("n%03d", i)
		recs = append(recs, rec{h: create(t, s, s.Root(), name), name: name})
	}
	seen := map[uint32]bool{}
	for _, r := range recs {
		if seen[r.h.Inode] {
			t.Fatalf("inode %d handed out twice", r.h.Inode)
		}
		seen[r.h.Inode] = true
	}
	// Delete everything; recreate; generations must differ.
	old := map[uint32]uint32{}
	for _, r := range recs {
		old[r.h.Inode] = r.h.Gen
		if err := s.Remove(s.Root(), r.name); err != nil {
			t.Fatalf("Remove: %v", err)
		}
	}
	for i := 0; i < 150; i++ {
		h := create(t, s, s.Root(), fmt.Sprintf("m%03d", i))
		if gen, ok := old[h.Inode]; ok && gen == h.Gen {
			t.Fatalf("inode %d reused without a generation bump", h.Inode)
		}
	}
}
