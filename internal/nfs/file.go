package nfs

import (
	"encoding/binary"
	"fmt"
)

// bmap resolves a file-relative block index to a disk FS block, optionally
// allocating the block (and any indirect blocks) on the way — the classic
// UNIX block-map walk whose cost is the whole point of the paper's
// comparison.
func (s *Server) bmap(ino *inode, idx int64, alloc bool) (uint32, bool, error) {
	switch {
	case idx < 0:
		return 0, false, fmt.Errorf("block index %d: %w", idx, ErrBadRange)

	case idx < NDirect:
		b := ino.Direct[idx]
		if b == 0 {
			if !alloc {
				return 0, false, nil
			}
			nb, err := s.allocBlock()
			if err != nil {
				return 0, false, err
			}
			ino.Direct[idx] = nb
			return nb, true, nil
		}
		return b, false, nil

	case idx < NDirect+PtrsPerBlock:
		return s.indirectLookup(&ino.Indirect, idx-NDirect, alloc)

	case idx < NDirect+PtrsPerBlock+int64(PtrsPerBlock)*PtrsPerBlock:
		rel := idx - NDirect - PtrsPerBlock
		outer := rel / PtrsPerBlock
		inner := rel % PtrsPerBlock
		// Walk (or build) the double-indirect block, then the inner one.
		if ino.DIndirect == 0 {
			if !alloc {
				return 0, false, nil
			}
			nb, err := s.allocZeroedBlock()
			if err != nil {
				return 0, false, err
			}
			ino.DIndirect = nb
		}
		outerBlk, err := s.readBlock(ino.DIndirect)
		if err != nil {
			return 0, false, err
		}
		innerPtr := binary.BigEndian.Uint32(outerBlk[outer*4 : outer*4+4])
		if innerPtr == 0 {
			if !alloc {
				return 0, false, nil
			}
			nb, err := s.allocZeroedBlock()
			if err != nil {
				return 0, false, err
			}
			if err := s.flushIndirect(ino.DIndirect, outer, nb); err != nil {
				return 0, false, err
			}
			innerPtr = nb
		}
		return s.indirectLookupAt(innerPtr, inner, alloc)

	default:
		return 0, false, fmt.Errorf("block index %d: %w", idx, ErrTooBig)
	}
}

// indirectLookup resolves slot idx inside the indirect block pointed to by
// *ptr, allocating the indirect block and/or the data block when asked.
// The indirect block pointer is written back through *ptr (the caller
// persists the inode); slot updates are flushed to the indirect block.
func (s *Server) indirectLookup(ptr *uint32, idx int64, alloc bool) (uint32, bool, error) {
	if *ptr == 0 {
		if !alloc {
			return 0, false, nil
		}
		nb, err := s.allocZeroedBlock()
		if err != nil {
			return 0, false, err
		}
		*ptr = nb
	}
	return s.indirectLookupAt(*ptr, idx, alloc)
}

// indirectLookupAt resolves slot idx inside the (existing) indirect block.
func (s *Server) indirectLookupAt(indirectBlock uint32, idx int64, alloc bool) (uint32, bool, error) {
	blk, err := s.readBlock(indirectBlock)
	if err != nil {
		return 0, false, err
	}
	val := binary.BigEndian.Uint32(blk[idx*4 : idx*4+4])
	if val != 0 {
		return val, false, nil
	}
	if !alloc {
		return 0, false, nil
	}
	nb, err := s.allocBlock()
	if err != nil {
		return 0, false, err
	}
	if err := s.flushIndirect(indirectBlock, idx, nb); err != nil {
		return 0, false, err
	}
	return nb, true, nil
}

// allocZeroedBlock claims a block and zero-fills it on disk (fresh
// indirect blocks must read as all-null pointers).
func (s *Server) allocZeroedBlock() (uint32, error) {
	nb, err := s.allocBlock()
	if err != nil {
		return 0, err
	}
	if err := s.writeBlock(nb, make([]byte, BlockSize)); err != nil {
		return 0, err
	}
	return nb, nil
}

// flushIndirect persists a new pointer value into an indirect block.
func (s *Server) flushIndirect(indirectBlock uint32, idx int64, val uint32) error {
	blk, err := s.readBlock(indirectBlock)
	if err != nil {
		return err
	}
	updated := make([]byte, BlockSize)
	copy(updated, blk)
	binary.BigEndian.PutUint32(updated[idx*4:idx*4+4], val)
	return s.writeBlock(indirectBlock, updated)
}

// resolve validates a handle against the current inode.
func (s *Server) resolve(h Handle) (inode, error) {
	ino, err := s.readInode(h.Inode)
	if err != nil {
		return inode{}, err
	}
	if ino.Mode == modeFree || ino.Gen != h.Gen {
		return inode{}, fmt.Errorf("inode %d gen %d: %w", h.Inode, h.Gen, ErrStale)
	}
	return ino, nil
}

// GetAttr returns the file's attributes.
func (s *Server) GetAttr(h Handle) (Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ino, err := s.resolve(h)
	if err != nil {
		return Attr{}, err
	}
	return Attr{Size: ino.Size, IsDir: ino.Mode == modeDir}, nil
}

// Read returns up to count bytes from offset — at most one FS block per
// call, like the NFS READ procedure.
func (s *Server) Read(h Handle, offset int64, count int) ([]byte, error) {
	if offset < 0 || count < 0 {
		return nil, ErrBadRange
	}
	if count > BlockSize {
		count = BlockSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ino, err := s.resolve(h)
	if err != nil {
		return nil, err
	}
	if ino.Mode != modeFile {
		return nil, ErrIsDir
	}
	if offset >= ino.Size {
		return nil, nil // EOF
	}
	end := offset + int64(count)
	if end > ino.Size {
		end = ino.Size
	}
	out := make([]byte, 0, end-offset)
	for off := offset; off < end; {
		idx := off / BlockSize
		within := off % BlockSize
		n := BlockSize - within
		if off+n > end {
			n = end - off
		}
		b, _, err := s.bmap(&ino, idx, false)
		if err != nil {
			return nil, err
		}
		if b == 0 {
			out = append(out, make([]byte, n)...) // hole
		} else {
			blk, err := s.readBlock(b)
			if err != nil {
				return nil, err
			}
			out = append(out, blk[within:within+n]...)
		}
		off += n
	}
	s.stats.Reads++
	s.stats.BytesRead += int64(len(out))
	return out, nil
}

// Write stores data at offset, extending the file as needed — at most one
// FS block per call, write-through to the (single) disk, like the NFS
// WRITE procedure on the paper's server.
func (s *Server) Write(h Handle, offset int64, data []byte) (int, error) {
	if offset < 0 {
		return 0, ErrBadRange
	}
	if len(data) > BlockSize {
		data = data[:BlockSize]
	}
	if offset+int64(len(data)) > MaxFileSize {
		return 0, ErrTooBig
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ino, err := s.resolve(h)
	if err != nil {
		return 0, err
	}
	if ino.Mode != modeFile {
		return 0, ErrIsDir
	}
	written := 0
	for off := offset; off < offset+int64(len(data)); {
		idx := off / BlockSize
		within := off % BlockSize
		n := int64(BlockSize - within)
		if rem := offset + int64(len(data)) - off; rem < n {
			n = rem
		}
		b, fresh, err := s.bmap(&ino, idx, true)
		if err != nil {
			return written, err
		}
		var blk []byte
		if within == 0 && n == BlockSize {
			blk = data[written : written+int(n)]
		} else {
			// Partial block: read-modify-write. A freshly allocated block
			// reads as zeros (never leak a previous file's bytes).
			tmp := make([]byte, BlockSize)
			if !fresh {
				cur, err := s.readBlock(b)
				if err != nil {
					return written, err
				}
				copy(tmp, cur)
			}
			copy(tmp[within:], data[written:written+int(n)])
			blk = tmp
		}
		if err := s.writeBlock(b, blk); err != nil {
			return written, err
		}
		off += n
		written += int(n)
	}
	if end := offset + int64(len(data)); end > ino.Size {
		ino.Size = end
	}
	if err := s.writeInode(h.Inode, ino); err != nil {
		return written, err
	}
	s.stats.Writes++
	s.stats.BytesWrite += int64(written)
	return written, nil
}

// truncateLocked frees every data and indirect block of the inode.
func (s *Server) truncateLocked(ino *inode) error {
	for i, b := range ino.Direct {
		if b != 0 {
			if err := s.freeBlock(b); err != nil {
				return err
			}
			s.cache.drop(b)
			ino.Direct[i] = 0
		}
	}
	if ino.Indirect != 0 {
		if err := s.freeIndirect(ino.Indirect, 1); err != nil {
			return err
		}
		ino.Indirect = 0
	}
	if ino.DIndirect != 0 {
		if err := s.freeIndirect(ino.DIndirect, 2); err != nil {
			return err
		}
		ino.DIndirect = 0
	}
	ino.Size = 0
	return nil
}

// freeIndirect frees an indirect block tree of the given depth.
func (s *Server) freeIndirect(block uint32, depth int) error {
	blk, err := s.readBlock(block)
	if err != nil {
		return err
	}
	ptrs := make([]uint32, PtrsPerBlock)
	for i := range ptrs {
		ptrs[i] = binary.BigEndian.Uint32(blk[i*4 : i*4+4])
	}
	for _, p := range ptrs {
		if p == 0 {
			continue
		}
		if depth > 1 {
			if err := s.freeIndirect(p, depth-1); err != nil {
				return err
			}
		} else {
			if err := s.freeBlock(p); err != nil {
				return err
			}
			s.cache.drop(p)
		}
	}
	if err := s.freeBlock(block); err != nil {
		return err
	}
	s.cache.drop(block)
	return nil
}
