package nfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

// newFS builds a formatted, mounted server on a RAM disk (~16 MB).
func newFS(t *testing.T, opts Options) *Server {
	t.Helper()
	dev, err := disk.NewMem(512, 32768) // 16 MiB
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	if err := Format(dev, FormatConfig{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	s, err := Mount(dev, opts)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return s
}

func create(t *testing.T, s *Server, dir Handle, name string) Handle {
	t.Helper()
	h, err := s.Create(dir, name)
	if err != nil {
		t.Fatalf("Create(%q): %v", name, err)
	}
	return h
}

func writeAllSrv(t *testing.T, s *Server, h Handle, data []byte) {
	t.Helper()
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > BlockSize {
			n = BlockSize
		}
		w, err := s.Write(h, int64(off), data[off:off+n])
		if err != nil {
			t.Fatalf("Write at %d: %v", off, err)
		}
		off += w
	}
}

func readAllSrv(t *testing.T, s *Server, h Handle) []byte {
	t.Helper()
	attr, err := s.GetAttr(h)
	if err != nil {
		t.Fatalf("GetAttr: %v", err)
	}
	out := make([]byte, 0, attr.Size)
	for off := int64(0); off < attr.Size; {
		blk, err := s.Read(h, off, BlockSize)
		if err != nil {
			t.Fatalf("Read at %d: %v", off, err)
		}
		if len(blk) == 0 {
			break
		}
		out = append(out, blk...)
		off += int64(len(blk))
	}
	return out
}

func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i/255)
	}
	return out
}

func TestFormatMountRoot(t *testing.T) {
	s := newFS(t, Options{})
	attr, err := s.GetAttr(s.Root())
	if err != nil {
		t.Fatalf("GetAttr(root): %v", err)
	}
	if !attr.IsDir {
		t.Fatal("root is not a directory")
	}
	entries, err := s.ReadDir(s.Root())
	if err != nil || len(entries) != 0 {
		t.Fatalf("fresh root = %v, %v", entries, err)
	}
}

func TestMountUnformatted(t *testing.T) {
	dev, err := disk.NewMem(512, 32768)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	if _, err := Mount(dev, Options{}); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("Mount(unformatted) err = %v", err)
	}
}

func TestCreateLookupRoundTrip(t *testing.T) {
	s := newFS(t, Options{})
	h := create(t, s, s.Root(), "hello.txt")
	got, err := s.Lookup(s.Root(), "hello.txt")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if got != h {
		t.Fatalf("Lookup = %+v, want %+v", got, h)
	}
	if _, err := s.Lookup(s.Root(), "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup(missing) err = %v", err)
	}
	if _, err := s.Create(s.Root(), "hello.txt"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Create err = %v", err)
	}
}

func TestWriteReadSizes(t *testing.T) {
	s := newFS(t, Options{})
	sizes := []int{0, 1, 100, BlockSize - 1, BlockSize, BlockSize + 1,
		3*BlockSize + 17, NDirect * BlockSize, NDirect*BlockSize + 1, // first indirect block
		(NDirect + 3) * BlockSize,
	}
	for i, size := range sizes {
		name := fmt.Sprintf("f%d", i)
		h := create(t, s, s.Root(), name)
		data := pattern(size)
		writeAllSrv(t, s, h, data)
		attr, err := s.GetAttr(h)
		if err != nil || attr.Size != int64(size) {
			t.Fatalf("size %d: GetAttr = %+v, %v", size, attr, err)
		}
		if got := readAllSrv(t, s, h); !bytes.Equal(got, data) {
			t.Fatalf("size %d: read back %d bytes, corrupted", size, len(got))
		}
	}
}

func TestDoubleIndirectFile(t *testing.T) {
	s := newFS(t, Options{})
	h := create(t, s, s.Root(), "big")
	// Past direct (96 KB) and single-indirect (16 MB would be too big for
	// the disk); write a sparse file instead: one block in double-indirect
	// territory.
	off := int64(NDirect+PtrsPerBlock) * BlockSize // first double-indirect block
	data := pattern(BlockSize)
	if _, err := s.Write(h, off, data); err != nil {
		t.Fatalf("Write(double-indirect): %v", err)
	}
	got, err := s.Read(h, off, BlockSize)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read(double-indirect) corrupted: %v", err)
	}
	// The hole before it reads as zeros.
	hole, err := s.Read(h, 0, BlockSize)
	if err != nil {
		t.Fatalf("Read(hole): %v", err)
	}
	if !bytes.Equal(hole, make([]byte, BlockSize)) {
		t.Fatal("hole is not zero-filled")
	}
}

func TestFreshBlocksDoNotLeak(t *testing.T) {
	s := newFS(t, Options{})
	// Write a recognizable pattern, remove the file, then create a new
	// file with a partial-block write: old bytes must not resurface.
	h1 := create(t, s, s.Root(), "secret")
	writeAllSrv(t, s, h1, bytes.Repeat([]byte{0xAA}, 4*BlockSize))
	if err := s.Remove(s.Root(), "secret"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	h2 := create(t, s, s.Root(), "fresh")
	if _, err := s.Write(h2, 0, []byte("tiny")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Extend so the first block is read back whole.
	if _, err := s.Write(h2, BlockSize-1, []byte{1}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := s.Read(h2, 0, BlockSize)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if bytes.Contains(got, bytes.Repeat([]byte{0xAA}, 16)) {
		t.Fatal("previous file's bytes leaked into a fresh block")
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	s := newFS(t, Options{})
	h := create(t, s, s.Root(), "victim")
	writeAllSrv(t, s, h, pattern(20*BlockSize)) // uses indirect blocks
	used := func() (n int) {
		for b := s.sb.DataStart; b < s.sb.TotalBlocks; b++ {
			if s.bitGet(b) {
				n++
			}
		}
		return n
	}
	usedBefore := used()
	if usedBefore == 0 {
		t.Fatal("no blocks allocated")
	}
	if err := s.Remove(s.Root(), "victim"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	// Only the root directory's own block remains in use.
	if got := used(); got != 1 {
		t.Fatalf("%d blocks in use after remove (was %d), want 1 (root dir)", got, usedBefore)
	}
	if _, err := s.GetAttr(h); !errors.Is(err, ErrStale) {
		t.Fatalf("GetAttr(removed) err = %v", err)
	}
}

func TestStaleHandleAfterReuse(t *testing.T) {
	s := newFS(t, Options{})
	h1 := create(t, s, s.Root(), "a")
	if err := s.Remove(s.Root(), "a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	h2 := create(t, s, s.Root(), "b") // likely reuses the inode
	if h2.Inode == h1.Inode && h2.Gen == h1.Gen {
		t.Fatal("generation not bumped on inode reuse")
	}
	if _, err := s.Read(h1, 0, 10); !errors.Is(err, ErrStale) {
		t.Fatalf("stale read err = %v", err)
	}
}

func TestDirectories(t *testing.T) {
	s := newFS(t, Options{})
	sub, err := s.Mkdir(s.Root(), "sub")
	if err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	hf := create(t, s, sub, "inner.txt")
	got, err := s.Lookup(sub, "inner.txt")
	if err != nil || got != hf {
		t.Fatalf("Lookup(inner) = %v, %v", got, err)
	}
	// Remove of a non-empty directory fails.
	if err := s.Remove(s.Root(), "sub"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Remove(non-empty dir) err = %v", err)
	}
	if err := s.Remove(sub, "inner.txt"); err != nil {
		t.Fatalf("Remove(inner): %v", err)
	}
	if err := s.Remove(s.Root(), "sub"); err != nil {
		t.Fatalf("Remove(empty dir): %v", err)
	}
	// File/dir confusion errors.
	f := create(t, s, s.Root(), "plain")
	if _, err := s.Lookup(f, "x"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("Lookup in file err = %v", err)
	}
	if _, err := s.Read(s.Root(), 0, 10); !errors.Is(err, ErrIsDir) {
		t.Fatalf("Read(dir) err = %v", err)
	}
}

func TestReadDirListsEverything(t *testing.T) {
	s := newFS(t, Options{})
	names := map[string]bool{}
	for i := 0; i < 200; i++ { // spans multiple directory blocks
		name := fmt.Sprintf("file-%03d", i)
		create(t, s, s.Root(), name)
		names[name] = true
	}
	entries, err := s.ReadDir(s.Root())
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 200 {
		t.Fatalf("ReadDir = %d entries, want 200", len(entries))
	}
	for _, e := range entries {
		if !names[e.Name] {
			t.Fatalf("unexpected entry %q", e.Name)
		}
		if e.IsDir {
			t.Fatalf("%q reported as a directory", e.Name)
		}
	}
}

func TestDirSlotReuse(t *testing.T) {
	s := newFS(t, Options{})
	create(t, s, s.Root(), "a")
	create(t, s, s.Root(), "b")
	if err := s.Remove(s.Root(), "a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	create(t, s, s.Root(), "c") // reuses a's slot
	entries, err := s.ReadDir(s.Root())
	if err != nil || len(entries) != 2 {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
}

func TestBadNames(t *testing.T) {
	s := newFS(t, Options{})
	for _, name := range []string{"", "a/b", string(bytes.Repeat([]byte{'x'}, 56))} {
		if _, err := s.Create(s.Root(), name); !errors.Is(err, ErrBadRange) {
			t.Errorf("Create(%q) err = %v, want ErrBadRange", name, err)
		}
	}
}

func TestScatteredAllocation(t *testing.T) {
	s := newFS(t, Options{AllocStride: 7})
	h := create(t, s, s.Root(), "scattered")
	writeAllSrv(t, s, h, pattern(8*BlockSize))
	ino, err := s.readInode(h.Inode)
	if err != nil {
		t.Fatalf("readInode: %v", err)
	}
	adjacent := 0
	for i := 0; i < 7; i++ {
		if ino.Direct[i+1] == ino.Direct[i]+1 {
			adjacent++
		}
	}
	if adjacent > 2 {
		t.Fatalf("aged allocator produced %d/7 adjacent blocks; want scatter", adjacent)
	}

	// Stride 1: near-contiguous.
	s2 := newFS(t, Options{AllocStride: 1})
	h2 := create(t, s2, s2.Root(), "contig")
	writeAllSrv(t, s2, h2, pattern(8*BlockSize))
	ino2, err := s2.readInode(h2.Inode)
	if err != nil {
		t.Fatalf("readInode: %v", err)
	}
	adjacent = 0
	for i := 0; i < 7; i++ {
		if ino2.Direct[i+1] == ino2.Direct[i]+1 {
			adjacent++
		}
	}
	if adjacent < 5 {
		t.Fatalf("fresh allocator produced only %d/7 adjacent blocks", adjacent)
	}
}

func TestBufferCacheHitsOnRepeatReads(t *testing.T) {
	s := newFS(t, Options{})
	h := create(t, s, s.Root(), "hot")
	writeAllSrv(t, s, h, pattern(4*BlockSize))
	before := s.Stats()
	readAllSrv(t, s, h) // all blocks were cached by the write-through
	after := s.Stats()
	if after.CacheMiss != before.CacheMiss {
		t.Fatalf("repeat read missed the cache %d times", after.CacheMiss-before.CacheMiss)
	}
}

func TestBufferCacheEviction(t *testing.T) {
	// A cache of 4 blocks cannot hold a 16-block file.
	s := newFS(t, Options{CacheBytes: 4 * BlockSize})
	h := create(t, s, s.Root(), "big")
	writeAllSrv(t, s, h, pattern(16*BlockSize))
	before := s.Stats()
	readAllSrv(t, s, h)
	after := s.Stats()
	if after.CacheMiss == before.CacheMiss {
		t.Fatal("16-block file fit in a 4-block cache?")
	}
	if got := readAllSrv(t, s, h); !bytes.Equal(got, pattern(16*BlockSize)) {
		t.Fatal("data corrupted under cache pressure")
	}
}

func TestPersistenceAcrossMount(t *testing.T) {
	dev, err := disk.NewMem(512, 32768)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	if err := Format(dev, FormatConfig{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	s, err := Mount(dev, Options{})
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	h := create(t, s, s.Root(), "durable")
	data := pattern(5*BlockSize + 123)
	writeAllSrv(t, s, h, data)

	// Remount from the same device: everything must still be there.
	s2, err := Mount(dev, Options{})
	if err != nil {
		t.Fatalf("re-Mount: %v", err)
	}
	h2, err := s2.Lookup(s2.Root(), "durable")
	if err != nil {
		t.Fatalf("Lookup after remount: %v", err)
	}
	if got := readAllSrv(t, s2, h2); !bytes.Equal(got, data) {
		t.Fatal("data corrupted across remount")
	}
}

func TestServiceOverRPC(t *testing.T) {
	s := newFS(t, Options{})
	mux := rpc.NewMux(0)
	port := capability.PortFromString("nfs-test")
	NewService(s, port).Register(mux)
	cl := NewClient(rpc.NewLocal(mux), port)

	root, err := cl.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	data := pattern(3*BlockSize + 500)
	h, err := cl.CreateWrite(root, "wire.dat", data)
	if err != nil {
		t.Fatalf("CreateWrite: %v", err)
	}
	got, err := cl.ReadAll(h)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadAll corrupted (%d bytes), %v", len(got), err)
	}
	attr, err := cl.GetAttr(h)
	if err != nil || attr.Size != int64(len(data)) {
		t.Fatalf("GetAttr = %+v, %v", attr, err)
	}
	lh, err := cl.Lookup(root, "wire.dat")
	if err != nil || lh != h {
		t.Fatalf("Lookup = %v, %v", lh, err)
	}
	sub, err := cl.Mkdir(root, "dir")
	if err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if _, err := cl.Create(sub, "nested"); err != nil {
		t.Fatalf("Create nested: %v", err)
	}
	entries, err := cl.ReadDir(root)
	if err != nil || len(entries) != 2 {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	if err := cl.Null(); err != nil {
		t.Fatalf("Null: %v", err)
	}
	st, err := cl.Stat()
	if err != nil || st.Creates != 2 {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	if err := cl.Remove(sub, "nested"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := cl.Lookup(sub, "nested"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup(removed) err = %v", err)
	}
}

func TestWriteValidation(t *testing.T) {
	s := newFS(t, Options{})
	h := create(t, s, s.Root(), "v")
	if _, err := s.Write(h, -1, []byte("x")); !errors.Is(err, ErrBadRange) {
		t.Fatalf("negative offset err = %v", err)
	}
	if _, err := s.Write(h, MaxFileSize, []byte("x")); !errors.Is(err, ErrTooBig) {
		t.Fatalf("past max size err = %v", err)
	}
	if _, err := s.Read(h, -1, 10); !errors.Is(err, ErrBadRange) {
		t.Fatalf("negative read offset err = %v", err)
	}
	// Read at EOF returns empty.
	if got, err := s.Read(h, 100, 10); err != nil || len(got) != 0 {
		t.Fatalf("Read at EOF = %v, %v", got, err)
	}
}

// Property: arbitrary write patterns against a model byte slice.
func TestQuickFileModelEquivalence(t *testing.T) {
	type op struct {
		Off  uint16
		Size uint8
		Fill byte
	}
	f := func(ops []op) bool {
		dev, err := disk.NewMem(512, 32768)
		if err != nil {
			return false
		}
		if err := Format(dev, FormatConfig{}); err != nil {
			return false
		}
		s, err := Mount(dev, Options{})
		if err != nil {
			return false
		}
		h, err := s.Create(s.Root(), "model")
		if err != nil {
			return false
		}
		model := []byte{}
		for _, o := range ops {
			off := int64(o.Off) % (4 * BlockSize)
			size := int(o.Size)%512 + 1
			data := bytes.Repeat([]byte{o.Fill}, size)
			if _, err := s.Write(h, off, data); err != nil {
				return false
			}
			if need := off + int64(size); need > int64(len(model)) {
				model = append(model, make([]byte, need-int64(len(model)))...)
			}
			copy(model[off:], data)
		}
		attr, err := s.GetAttr(h)
		if err != nil || attr.Size != int64(len(model)) {
			return false
		}
		got := make([]byte, 0, len(model))
		for off := int64(0); off < attr.Size; {
			blk, err := s.Read(h, off, BlockSize)
			if err != nil {
				return false
			}
			if len(blk) == 0 {
				break
			}
			got = append(got, blk...)
			off += int64(len(blk))
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBcacheUnit(t *testing.T) {
	c := newBcache(2)
	c.put(1, []byte{1})
	c.put(2, []byte{2})
	if _, ok := c.get(1); !ok {
		t.Fatal("block 1 missing")
	}
	c.put(3, []byte{3}) // evicts 2 (LRU; 1 was just touched)
	if _, ok := c.get(2); ok {
		t.Fatal("block 2 should have been evicted")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("block 1 evicted out of order")
	}
	c.drop(1)
	if _, ok := c.get(1); ok {
		t.Fatal("dropped block still cached")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	// put of existing refreshes contents.
	c.put(3, []byte{33})
	if got, _ := c.get(3); got[0] != 33 {
		t.Fatal("put did not refresh contents")
	}
}

func TestMountRejectsInconsistentSuperblock(t *testing.T) {
	dev, err := disk.NewMem(512, 32768)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	if err := Format(dev, FormatConfig{}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	// Forge BitmapStart beyond DataStart: Mount must refuse instead of
	// underflowing the bitmap length.
	blk := make([]byte, BlockSize)
	if err := dev.ReadAt(blk, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	forged := make([]byte, BlockSize)
	copy(forged, blk)
	forged[12], forged[13], forged[14], forged[15] = 0xFF, 0xFF, 0xFF, 0xFF // BitmapStart
	if err := dev.WriteAt(forged, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if _, err := Mount(dev, Options{}); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("Mount(forged superblock) err = %v, want ErrNotFormatted", err)
	}
}
