package nfs

import (
	"encoding/binary"
	"fmt"
)

// Directory entries are fixed 64-byte slots inside directory files:
//
//	inode   uint32 (0 = free slot)
//	gen     uint32
//	nameLen uint8
//	name    up to 55 bytes
const (
	direntSize    = 64
	maxNameLen    = 55
	direntPerBlok = BlockSize / direntSize
)

// DirEntry is one row of a directory listing.
type DirEntry struct {
	Name   string
	Handle Handle
	IsDir  bool
}

func checkName(name string) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("name %q: %w", name, ErrBadRange)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return fmt.Errorf("name %q: %w", name, ErrBadRange)
		}
	}
	return nil
}

// dirBlockCount returns how many FS blocks a directory spans.
func dirBlockCount(ino *inode) int64 {
	return (ino.Size + BlockSize - 1) / BlockSize
}

// scanDir walks the directory's entries; fn returns true to stop. The
// callback receives the entry's location for in-place updates.
func (s *Server) scanDir(ino *inode, fn func(blockIdx int64, slot int, ent []byte) bool) error {
	blocks := dirBlockCount(ino)
	for bi := int64(0); bi < blocks; bi++ {
		b, _, err := s.bmap(ino, bi, false)
		if err != nil {
			return err
		}
		if b == 0 {
			continue
		}
		blk, err := s.readBlock(b)
		if err != nil {
			return err
		}
		for slot := 0; slot < direntPerBlok; slot++ {
			ent := blk[slot*direntSize : (slot+1)*direntSize]
			if fn(bi, slot, ent) {
				return nil
			}
		}
	}
	return nil
}

// findEntry locates name in the directory; returns its handle.
func (s *Server) findEntry(ino *inode, name string) (Handle, bool, error) {
	var found Handle
	ok := false
	err := s.scanDir(ino, func(_ int64, _ int, ent []byte) bool {
		inum := binary.BigEndian.Uint32(ent[0:4])
		if inum == 0 {
			return false
		}
		n := int(ent[8])
		if n > maxNameLen {
			return false
		}
		if string(ent[9:9+n]) == name {
			found = Handle{Inode: inum, Gen: binary.BigEndian.Uint32(ent[4:8])}
			ok = true
			return true
		}
		return false
	})
	return found, ok, err
}

// writeDirEntry stores an entry into (blockIdx, slot) of the directory,
// allocating the block if the directory grows.
func (s *Server) writeDirEntry(dirInode uint32, ino *inode, blockIdx int64, slot int, h Handle, name string) error {
	b, fresh, err := s.bmap(ino, blockIdx, true)
	if err != nil {
		return err
	}
	blk := make([]byte, BlockSize)
	if !fresh {
		cur, err := s.readBlock(b)
		if err != nil {
			return err
		}
		copy(blk, cur)
	}
	ent := blk[slot*direntSize : (slot+1)*direntSize]
	for i := range ent {
		ent[i] = 0
	}
	binary.BigEndian.PutUint32(ent[0:4], h.Inode)
	binary.BigEndian.PutUint32(ent[4:8], h.Gen)
	ent[8] = byte(len(name))
	copy(ent[9:], name)
	if err := s.writeBlock(b, blk); err != nil {
		return err
	}
	if end := (blockIdx + 1) * BlockSize; end > ino.Size {
		ino.Size = end
	}
	return s.writeInode(dirInode, *ino)
}

// addEntry finds a free slot (or grows the directory) and writes an entry.
func (s *Server) addEntry(dirH Handle, dirIno *inode, h Handle, name string) error {
	freeBlock, freeSlot := int64(-1), -1
	err := s.scanDir(dirIno, func(bi int64, slot int, ent []byte) bool {
		if binary.BigEndian.Uint32(ent[0:4]) == 0 {
			freeBlock, freeSlot = bi, slot
			return true
		}
		return false
	})
	if err != nil {
		return err
	}
	if freeSlot == -1 {
		freeBlock = dirBlockCount(dirIno)
		freeSlot = 0
	}
	return s.writeDirEntry(dirH.Inode, dirIno, freeBlock, freeSlot, h, name)
}

// removeEntry clears name's slot; returns the removed handle.
func (s *Server) removeEntry(dirH Handle, dirIno *inode, name string) (Handle, error) {
	var victim Handle
	vb, vs := int64(-1), -1
	err := s.scanDir(dirIno, func(bi int64, slot int, ent []byte) bool {
		inum := binary.BigEndian.Uint32(ent[0:4])
		if inum == 0 {
			return false
		}
		n := int(ent[8])
		if n <= maxNameLen && string(ent[9:9+n]) == name {
			victim = Handle{Inode: inum, Gen: binary.BigEndian.Uint32(ent[4:8])}
			vb, vs = bi, slot
			return true
		}
		return false
	})
	if err != nil {
		return Handle{}, err
	}
	if vs == -1 {
		return Handle{}, fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	b, _, err := s.bmap(dirIno, vb, false)
	if err != nil {
		return Handle{}, err
	}
	blk, err := s.readBlock(b)
	if err != nil {
		return Handle{}, err
	}
	updated := make([]byte, BlockSize)
	copy(updated, blk)
	for i := 0; i < direntSize; i++ {
		updated[vs*direntSize+i] = 0
	}
	if err := s.writeBlock(b, updated); err != nil {
		return Handle{}, err
	}
	return victim, nil
}

// Lookup resolves name within the directory — the NFS LOOKUP procedure.
func (s *Server) Lookup(dir Handle, name string) (Handle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dirIno, err := s.resolve(dir)
	if err != nil {
		return Handle{}, err
	}
	if dirIno.Mode != modeDir {
		return Handle{}, ErrNotDir
	}
	h, ok, err := s.findEntry(&dirIno, name)
	if err != nil {
		return Handle{}, err
	}
	if !ok {
		return Handle{}, fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	s.stats.Lookups++
	return h, nil
}

// Create makes an empty file under dir — the creat() of the paper's write
// benchmark.
func (s *Server) Create(dir Handle, name string) (Handle, error) {
	if err := checkName(name); err != nil {
		return Handle{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dirIno, err := s.resolve(dir)
	if err != nil {
		return Handle{}, err
	}
	if dirIno.Mode != modeDir {
		return Handle{}, ErrNotDir
	}
	if _, exists, err := s.findEntry(&dirIno, name); err != nil {
		return Handle{}, err
	} else if exists {
		return Handle{}, fmt.Errorf("%q: %w", name, ErrExists)
	}
	n, ino, err := s.allocInode(modeFile)
	if err != nil {
		return Handle{}, err
	}
	h := Handle{Inode: n, Gen: ino.Gen}
	if err := s.addEntry(dir, &dirIno, h, name); err != nil {
		return Handle{}, err
	}
	s.stats.Creates++
	return h, nil
}

// Mkdir makes an empty directory under dir.
func (s *Server) Mkdir(dir Handle, name string) (Handle, error) {
	if err := checkName(name); err != nil {
		return Handle{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dirIno, err := s.resolve(dir)
	if err != nil {
		return Handle{}, err
	}
	if dirIno.Mode != modeDir {
		return Handle{}, ErrNotDir
	}
	if _, exists, err := s.findEntry(&dirIno, name); err != nil {
		return Handle{}, err
	} else if exists {
		return Handle{}, fmt.Errorf("%q: %w", name, ErrExists)
	}
	n, ino, err := s.allocInode(modeDir)
	if err != nil {
		return Handle{}, err
	}
	h := Handle{Inode: n, Gen: ino.Gen}
	if err := s.addEntry(dir, &dirIno, h, name); err != nil {
		return Handle{}, err
	}
	return h, nil
}

// Remove unlinks a file and frees its blocks and inode.
func (s *Server) Remove(dir Handle, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dirIno, err := s.resolve(dir)
	if err != nil {
		return err
	}
	if dirIno.Mode != modeDir {
		return ErrNotDir
	}
	// Peek at the victim before unlinking: directories need Rmdir.
	h, ok, err := s.findEntry(&dirIno, name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	ino, err := s.readInode(h.Inode)
	if err != nil {
		return err
	}
	if ino.Mode == modeDir {
		// Rmdir semantics: only empty directories.
		empty := true
		if err := s.scanDir(&ino, func(_ int64, _ int, ent []byte) bool {
			if binary.BigEndian.Uint32(ent[0:4]) != 0 {
				empty = false
				return true
			}
			return false
		}); err != nil {
			return err
		}
		if !empty {
			return fmt.Errorf("%q: %w", name, ErrNotEmpty)
		}
	}
	if _, err := s.removeEntry(dir, &dirIno, name); err != nil {
		return err
	}
	if err := s.truncateLocked(&ino); err != nil {
		return err
	}
	ino.Mode = modeFree
	if err := s.writeInode(h.Inode, ino); err != nil {
		return err
	}
	s.stats.Removes++
	return nil
}

// ReadDir lists the directory.
func (s *Server) ReadDir(dir Handle) ([]DirEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dirIno, err := s.resolve(dir)
	if err != nil {
		return nil, err
	}
	if dirIno.Mode != modeDir {
		return nil, ErrNotDir
	}
	var out []DirEntry
	var inner error
	err = s.scanDir(&dirIno, func(_ int64, _ int, ent []byte) bool {
		inum := binary.BigEndian.Uint32(ent[0:4])
		if inum == 0 {
			return false
		}
		n := int(ent[8])
		if n > maxNameLen {
			return false
		}
		h := Handle{Inode: inum, Gen: binary.BigEndian.Uint32(ent[4:8])}
		child, err := s.readInode(inum)
		if err != nil {
			inner = err
			return true
		}
		out = append(out, DirEntry{
			Name:   string(ent[9 : 9+n]),
			Handle: h,
			IsDir:  child.Mode == modeDir,
		})
		return false
	})
	if err != nil {
		return nil, err
	}
	if inner != nil {
		return nil, inner
	}
	return out, nil
}
