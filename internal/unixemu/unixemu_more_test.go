package unixemu

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"bulletfs/internal/client"
	"bulletfs/internal/directory"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New with no clients succeeded")
	}
	if _, err := New(Options{Files: &client.Client{}}); err == nil {
		t.Fatal("New with no dirs succeeded")
	}
	if _, err := New(Options{Files: &client.Client{}, Dirs: &directory.Client{}}); err == nil {
		t.Fatal("New with no root succeeded")
	}
}

func TestTruncateGrowAndShrink(t *testing.T) {
	fs, _ := newFS(t, false)
	f, err := fs.Create("t.bin")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Truncate(3); err != nil {
		t.Fatalf("Truncate(3): %v", err)
	}
	if f.Size() != 3 {
		t.Fatalf("Size = %d", f.Size())
	}
	if err := f.Truncate(8); err != nil {
		t.Fatalf("Truncate(8): %v", err)
	}
	if err := f.Truncate(8); err != nil { // same size: no-op path
		t.Fatalf("Truncate(8) again: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := fs.ReadFile("t.bin")
	if err != nil || !bytes.Equal(got, []byte("abc\x00\x00\x00\x00\x00")) {
		t.Fatalf("contents = %q, %v", got, err)
	}
	if err := f.Truncate(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Truncate after close err = %v", err)
	}
}

func TestSeekValidation(t *testing.T) {
	fs, _ := newFS(t, false)
	if err := fs.WriteFile("s.txt", []byte("0123456789")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	f, err := fs.Open("s.txt", ORdonly)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative position accepted")
	}
	pos, err := f.Seek(3, io.SeekCurrent)
	if err != nil || pos != 3 {
		t.Fatalf("SeekCurrent = %d, %v", pos, err)
	}
	// Seeking past EOF is legal; reads there hit EOF.
	pos, err = f.Seek(100, io.SeekStart)
	if err != nil || pos != 100 {
		t.Fatalf("Seek past EOF = %d, %v", pos, err)
	}
	if _, err := f.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read past EOF err = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := f.Seek(0, io.SeekStart); !errors.Is(err, ErrClosed) {
		t.Fatalf("Seek after close err = %v", err)
	}
}

func TestSyncOnCleanFileIsNoop(t *testing.T) {
	fs, eng := newFS(t, false)
	if err := fs.WriteFile("c.txt", []byte("x")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	f, err := fs.Open("c.txt", ORdwr)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	creates := eng.Stats().Creates
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if eng.Stats().Creates != creates {
		t.Fatal("clean Sync created a version")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close err = %v", err)
	}
}

func TestStatErrors(t *testing.T) {
	fs, _ := newFS(t, false)
	if _, err := fs.Stat("missing.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Stat(missing) err = %v", err)
	}
	if _, err := fs.Stat("no/such/dir/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Stat(missing dir) err = %v", err)
	}
	if err := fs.WriteFile("ok.txt", []byte("abc")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	n, err := fs.Stat("ok.txt")
	if err != nil || n != 3 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
}

func TestReadDirErrors(t *testing.T) {
	fs, _ := newFS(t, false)
	if _, err := fs.ReadDir("nowhere"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ReadDir(missing) err = %v", err)
	}
	names, err := fs.ReadDir("") // root
	if err != nil || len(names) != 0 {
		t.Fatalf("ReadDir(root) = %v, %v", names, err)
	}
}

func TestRenameOverwritesAndVersions(t *testing.T) {
	fs, _ := newFS(t, true)
	if err := fs.WriteFile("a.txt", []byte("from a")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := fs.WriteFile("b.txt", []byte("old b")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// Rename onto an existing name replaces the binding (the old b stays
	// in the version history).
	if err := fs.Rename("a.txt", "b.txt"); err != nil {
		t.Fatalf("Rename onto existing: %v", err)
	}
	got, err := fs.ReadFile("b.txt")
	if err != nil || string(got) != "from a" {
		t.Fatalf("b.txt = %q, %v", got, err)
	}
	vers, err := fs.Versions("b.txt")
	if err != nil || len(vers) != 2 {
		t.Fatalf("Versions = %d, %v", len(vers), err)
	}
}

func TestRenameOntoItselfIsNoop(t *testing.T) {
	fs, _ := newFS(t, false)
	if err := fs.WriteFile("same.txt", []byte("still here")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := fs.Rename("same.txt", "same.txt"); err != nil {
		t.Fatalf("Rename onto itself: %v", err)
	}
	if err := fs.Rename("same.txt", "/./same.txt"); err != nil {
		t.Fatalf("Rename onto itself (messy path): %v", err)
	}
	got, err := fs.ReadFile("same.txt")
	if err != nil || string(got) != "still here" {
		t.Fatalf("file lost by self-rename: %q, %v", got, err)
	}
}

func TestWriteFileErrorOnDirectoryPath(t *testing.T) {
	fs, _ := newFS(t, false)
	if err := fs.WriteFile("/", []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Fatalf("WriteFile(/) err = %v", err)
	}
	if err := fs.Remove("/"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("Remove(/) err = %v", err)
	}
	if _, err := fs.Versions("/"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("Versions(/) err = %v", err)
	}
	if _, err := fs.Versions("nope.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Versions(missing) err = %v", err)
	}
}

// Property: a random sequence of write/seek/truncate operations through
// the emulation matches a plain in-memory model after close/reopen.
func TestQuickFileModelEquivalence(t *testing.T) {
	type op struct {
		Kind uint8 // 0 write, 1 seek, 2 truncate
		Arg  uint16
		Fill byte
	}
	fs, _ := newFS(t, false)
	seq := 0
	f := func(ops []op) bool {
		seq++
		name := "model" + string(rune('a'+seq%26)) + ".bin"
		file, err := fs.Create(name)
		if err != nil {
			return false
		}
		model := []byte{}
		pos := int64(0)
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // write
				n := int(o.Arg)%200 + 1
				data := bytes.Repeat([]byte{o.Fill}, n)
				if _, err := file.Write(data); err != nil {
					return false
				}
				if end := pos + int64(n); end > int64(len(model)) {
					model = append(model, make([]byte, end-int64(len(model)))...)
				}
				copy(model[pos:], data)
				pos += int64(n)
			case 1: // seek absolute within a window
				pos = int64(o.Arg) % 2048
				if _, err := file.Seek(pos, io.SeekStart); err != nil {
					return false
				}
			case 2: // truncate
				size := int64(o.Arg) % 2048
				if err := file.Truncate(size); err != nil {
					return false
				}
				switch {
				case size < int64(len(model)):
					model = model[:size]
				case size > int64(len(model)):
					model = append(model, make([]byte, size-int64(len(model)))...)
				}
			}
		}
		if err := file.Close(); err != nil {
			return false
		}
		got, err := fs.ReadFile(name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
