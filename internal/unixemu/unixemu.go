// Package unixemu is the paper's §5 UNIX emulation: open/read/write/seek/
// close file semantics built on the Bullet server and the directory
// service. Like Amoeba's own emulation, an open file is buffered whole in
// the client's memory (files fit in memory by the Bullet model); writes
// mutate the buffer, and close() of a written file creates a *new*
// immutable Bullet file and rebinds the name in the directory service —
// which is exactly the versioning model of §2.
package unixemu

import (
	"errors"
	"fmt"
	"io"
	"path"
	"strings"

	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/directory"
)

// Open flags, deliberately os-like.
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreate = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// Errors returned by the emulation.
var (
	// ErrNotExist mirrors os.ErrNotExist.
	ErrNotExist = errors.New("unixemu: file does not exist")
	// ErrExist mirrors os.ErrExist.
	ErrExist = errors.New("unixemu: file already exists")
	// ErrClosed means the file was used after Close.
	ErrClosed = errors.New("unixemu: file already closed")
	// ErrReadOnly means a write on an O_RDONLY descriptor.
	ErrReadOnly = errors.New("unixemu: read-only file descriptor")
	// ErrIsDir means the path names a directory.
	ErrIsDir = errors.New("unixemu: is a directory")
	// ErrConfig means the FS was built with unusable options.
	ErrConfig = errors.New("unixemu: bad configuration")
	// ErrInvalid means an argument was out of range (bad whence,
	// negative seek, and similar).
	ErrInvalid = errors.New("unixemu: invalid argument")
)

// Options configures an FS.
type Options struct {
	// Files is the Bullet client; required.
	Files *client.Client
	// FilePort is the Bullet server storing file contents.
	FilePort capability.Port
	// Dirs is the directory client; required.
	Dirs *directory.Client
	// Root is the directory under which all paths resolve.
	Root capability.Capability
	// PFactor is the paranoia factor for file creation (default 1).
	PFactor int
	// KeepVersions leaves superseded Bullet files alive so the directory
	// history can still read them. Off by default: close() deletes the
	// previous version's file, keeping only the current bytes.
	KeepVersions bool
}

// FS is a POSIX-flavoured view of a Bullet + directory service pair.
type FS struct {
	files    *client.Client
	filePort capability.Port
	dirs     *directory.Client
	root     capability.Capability
	pfactor  int
	keepOld  bool
}

// New builds an FS.
func New(opts Options) (*FS, error) {
	if opts.Files == nil || opts.Dirs == nil {
		return nil, fmt.Errorf("Files and Dirs clients are required: %w", ErrConfig)
	}
	if (opts.Root == capability.Capability{}) {
		return nil, fmt.Errorf("a root directory capability is required: %w", ErrConfig)
	}
	if opts.PFactor == 0 {
		opts.PFactor = 1
	}
	return &FS{
		files:    opts.Files,
		filePort: opts.FilePort,
		dirs:     opts.Dirs,
		root:     opts.Root,
		pfactor:  opts.PFactor,
		keepOld:  opts.KeepVersions,
	}, nil
}

// splitPath yields the parent directory capability and the final name.
func (fs *FS) splitPath(p string, mkdirs bool) (capability.Capability, string, error) {
	p = path.Clean("/" + p)
	if p == "/" {
		return capability.Capability{}, "", fmt.Errorf("path %q: %w", p, ErrIsDir)
	}
	dirPart, name := path.Split(p)
	dirPart = strings.Trim(dirPart, "/")
	var parent capability.Capability
	var err error
	if mkdirs {
		parent, err = fs.dirs.MkdirPath(fs.root, dirPart)
	} else {
		parent, err = fs.dirs.LookupPath(fs.root, dirPart)
	}
	if err != nil {
		if errors.Is(err, directory.ErrNotFound) {
			return capability.Capability{}, "", fmt.Errorf("%q: %w", p, ErrNotExist)
		}
		return capability.Capability{}, "", err
	}
	return parent, name, nil
}

// File is an open file: the whole contents buffered in memory, plus a
// cursor — the Amoeba-style emulation of UNIX descriptors.
type File struct {
	fs     *FS
	parent capability.Capability
	name   string
	flags  int

	buf    []byte
	pos    int64
	dirty  bool
	exists bool                  // name already bound in parent
	old    capability.Capability // existing version (zero if fresh)
	closed bool
}

// Open opens path with the given flags.
func (fs *FS) Open(p string, flags int) (*File, error) {
	parent, name, err := fs.splitPath(p, flags&OCreate != 0)
	if err != nil {
		return nil, err
	}
	f := &File{fs: fs, parent: parent, name: name, flags: flags}
	cur, err := fs.dirs.Lookup(parent, name)
	switch {
	case err == nil:
		f.exists = true
		f.old = cur
		if flags&OTrunc == 0 {
			data, err := fs.files.Read(cur)
			if err != nil {
				return nil, fmt.Errorf("unixemu: reading %q: %w", p, err)
			}
			f.buf = data
		} else {
			// Truncation is itself a mutation: close must publish the
			// empty (or rewritten) contents even without further writes.
			f.dirty = true
		}
	case errors.Is(err, directory.ErrNotFound):
		if flags&OCreate == 0 {
			return nil, fmt.Errorf("%q: %w", p, ErrNotExist)
		}
		// creat() semantics: the (empty) file must exist after close even
		// if nothing is written.
		f.dirty = true
	default:
		return nil, err
	}
	if flags&OAppend != 0 {
		f.pos = int64(len(f.buf))
	}
	return f, nil
}

// Create opens path for writing, truncating or creating it.
func (fs *FS) Create(p string) (*File, error) {
	return fs.Open(p, OWronly|OCreate|OTrunc)
}

func (f *File) writable() bool { return f.flags&(OWronly|ORdwr) != 0 }

// Read implements io.Reader against the in-memory image.
func (f *File) Read(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if f.flags&OWronly != 0 {
		return 0, ErrReadOnly // write-only descriptor cannot read
	}
	if f.pos >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.pos:])
	f.pos += int64(n)
	return n, nil
}

// Write implements io.Writer against the in-memory image.
func (f *File) Write(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if !f.writable() {
		return 0, ErrReadOnly
	}
	end := f.pos + int64(len(p))
	if end > int64(len(f.buf)) {
		grown := make([]byte, end)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[f.pos:], p)
	f.pos = end
	f.dirty = true
	return len(p), nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.buf))
	default:
		return 0, fmt.Errorf("bad whence %d: %w", whence, ErrInvalid)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("negative seek position: %w", ErrInvalid)
	}
	f.pos = base + offset
	return f.pos, nil
}

// Truncate resizes the in-memory image.
func (f *File) Truncate(size int64) error {
	if f.closed {
		return ErrClosed
	}
	if !f.writable() {
		return ErrReadOnly
	}
	switch {
	case size < int64(len(f.buf)):
		f.buf = f.buf[:size]
	case size > int64(len(f.buf)):
		grown := make([]byte, size)
		copy(grown, f.buf)
		f.buf = grown
	}
	f.dirty = true
	return nil
}

// Size returns the current (possibly unflushed) length.
func (f *File) Size() int64 { return int64(len(f.buf)) }

// Sync publishes the current contents as a new immutable version without
// closing the descriptor.
func (f *File) Sync() error {
	if f.closed {
		return ErrClosed
	}
	if !f.dirty {
		return nil
	}
	return f.publish()
}

func (f *File) publish() error {
	newCap, err := f.fs.files.Create(f.fs.filePort, f.buf, f.fs.pfactor)
	if err != nil {
		return fmt.Errorf("unixemu: creating new version of %q: %w", f.name, err)
	}
	if f.exists {
		err = f.fs.dirs.Replace(f.parent, f.name, newCap)
	} else {
		err = f.fs.dirs.Enter(f.parent, f.name, newCap)
		f.exists = true
	}
	if err != nil {
		_ = f.fs.files.Delete(newCap) // roll back the orphan
		return fmt.Errorf("unixemu: binding %q: %w", f.name, err)
	}
	if (f.old != capability.Capability{}) && !f.fs.keepOld {
		_ = f.fs.files.Delete(f.old) // superseded version
	}
	f.old = newCap
	f.dirty = false
	return nil
}

// Close flushes (if written) and invalidates the descriptor. This is where
// UNIX write() semantics meet immutability: the new version becomes
// visible atomically on close.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	defer func() { f.closed = true }()
	if f.dirty {
		return f.publish()
	}
	return nil
}

// ReadFile slurps a path.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	f, err := fs.Open(p, ORdonly)
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck // read-only close cannot fail meaningfully
	return f.buf, nil
}

// WriteFile writes data to path, creating or replacing it.
func (fs *FS) WriteFile(p string, data []byte) error {
	f, err := fs.Create(p)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	return f.Close()
}

// Remove unlinks a file (its current version is deleted from the Bullet
// store unless KeepVersions is set).
func (fs *FS) Remove(p string) error {
	parent, name, err := fs.splitPath(p, false)
	if err != nil {
		return err
	}
	cur, err := fs.dirs.Lookup(parent, name)
	if err != nil {
		if errors.Is(err, directory.ErrNotFound) {
			return fmt.Errorf("%q: %w", p, ErrNotExist)
		}
		return err
	}
	if err := fs.dirs.Remove(parent, name); err != nil {
		return err
	}
	if !fs.keepOld && cur.Port == fs.filePort {
		_ = fs.files.Delete(cur)
	}
	return nil
}

// Mkdir creates a directory path (like mkdir -p).
func (fs *FS) Mkdir(p string) error {
	_, err := fs.dirs.MkdirPath(fs.root, p)
	return err
}

// Stat returns the size of the file at path.
func (fs *FS) Stat(p string) (int64, error) {
	parent, name, err := fs.splitPath(p, false)
	if err != nil {
		return 0, err
	}
	cur, err := fs.dirs.Lookup(parent, name)
	if err != nil {
		if errors.Is(err, directory.ErrNotFound) {
			return 0, fmt.Errorf("%q: %w", p, ErrNotExist)
		}
		return 0, err
	}
	return fs.files.Size(cur)
}

// ReadDir lists the names bound in the directory at path.
func (fs *FS) ReadDir(p string) ([]string, error) {
	dir, err := fs.dirs.LookupPath(fs.root, p)
	if err != nil {
		if errors.Is(err, directory.ErrNotFound) {
			return nil, fmt.Errorf("%q: %w", p, ErrNotExist)
		}
		return nil, err
	}
	rows, err := fs.dirs.List(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(rows))
	for i, r := range rows {
		names[i] = r.Name
	}
	return names, nil
}

// Rename moves a binding between directories (lookup + enter + remove; the
// file itself never moves — names are cheap, bytes are immutable).
func (fs *FS) Rename(oldPath, newPath string) error {
	oldParent, oldName, err := fs.splitPath(oldPath, false)
	if err != nil {
		return err
	}
	cur, err := fs.dirs.Lookup(oldParent, oldName)
	if err != nil {
		if errors.Is(err, directory.ErrNotFound) {
			return fmt.Errorf("%q: %w", oldPath, ErrNotExist)
		}
		return err
	}
	newParent, newName, err := fs.splitPath(newPath, true)
	if err != nil {
		return err
	}
	if newParent == oldParent && newName == oldName {
		return nil // renaming onto itself: POSIX says success, change nothing
	}
	if err := fs.dirs.Enter(newParent, newName, cur); err != nil {
		if errors.Is(err, directory.ErrExists) {
			if err := fs.dirs.Replace(newParent, newName, cur); err != nil {
				return err
			}
		} else {
			return err
		}
	}
	return fs.dirs.Remove(oldParent, oldName)
}

// Versions returns the capability history of the file at path (oldest
// first) — the version mechanism surfaced.
func (fs *FS) Versions(p string) ([]capability.Capability, error) {
	parent, name, err := fs.splitPath(p, false)
	if err != nil {
		return nil, err
	}
	hist, err := fs.dirs.History(parent, name)
	if errors.Is(err, directory.ErrNotFound) {
		return nil, fmt.Errorf("%q: %w", p, ErrNotExist)
	}
	return hist, err
}
