package unixemu

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/client"
	"bulletfs/internal/directory"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

// newFS spins up a Bullet engine + directory server + UNIX emulation, all
// over the in-process transport.
func newFS(t *testing.T, keepVersions bool) (*FS, *bullet.Server) {
	t.Helper()
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 8192)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 500); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(eng.Sync)
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	tr := rpc.NewLocal(mux)
	cl := client.New(tr)

	dsrv, err := directory.New(directory.Options{Store: cl, StorePort: eng.Port(), PFactor: 2})
	if err != nil {
		t.Fatalf("directory.New: %v", err)
	}
	dsrv.Register(mux)
	dc := directory.NewClient(tr)
	root, err := dc.Root(dsrv.Port())
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	fs, err := New(Options{
		Files: cl, FilePort: eng.Port(),
		Dirs: dc, Root: root,
		PFactor: 2, KeepVersions: keepVersions,
	})
	if err != nil {
		t.Fatalf("unixemu.New: %v", err)
	}
	return fs, eng
}

func TestWriteReadFile(t *testing.T) {
	fs, _ := newFS(t, false)
	data := []byte("hello unix emulation")
	if err := fs.WriteFile("greeting.txt", data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := fs.ReadFile("greeting.txt")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	size, err := fs.Stat("greeting.txt")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Stat = %d, %v", size, err)
	}
}

func TestOpenMissing(t *testing.T) {
	fs, _ := newFS(t, false)
	if _, err := fs.Open("nope.txt", ORdonly); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open(missing) err = %v", err)
	}
	if _, err := fs.ReadFile("deep/missing.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ReadFile(missing dir) err = %v", err)
	}
}

func TestReadWriteSeek(t *testing.T) {
	fs, _ := newFS(t, false)
	f, err := fs.Create("notes.txt")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.Seek(2, io.SeekStart); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	if _, err := f.Write([]byte("AB")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g, err := fs.Open("notes.txt", ORdwr)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := g.Seek(-4, io.SeekEnd); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	n, err := g.Read(buf)
	if err != nil || n != 4 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if string(buf) != "6789" {
		t.Fatalf("tail = %q", buf)
	}
	if _, err := g.Read(buf); err != io.EOF {
		t.Fatalf("read at EOF err = %v, want EOF", err)
	}
	all, err := fs.ReadFile("notes.txt")
	if err != nil || string(all) != "01AB456789" {
		t.Fatalf("contents = %q, %v", all, err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := g.Read(buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v", err)
	}
}

func TestFlagsEnforced(t *testing.T) {
	fs, _ := newFS(t, false)
	if err := fs.WriteFile("ro.txt", []byte("x")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	r, err := fs.Open("ro.txt", ORdonly)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := r.Write([]byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write to O_RDONLY err = %v", err)
	}
	if err := r.Truncate(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("truncate O_RDONLY err = %v", err)
	}
	w, err := fs.Open("ro.txt", OWronly)
	if err != nil {
		t.Fatalf("Open(WRONLY): %v", err)
	}
	if _, err := w.Read(make([]byte, 1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read from O_WRONLY err = %v", err)
	}
}

func TestAppendFlag(t *testing.T) {
	fs, _ := newFS(t, false)
	if err := fs.WriteFile("log.txt", []byte("one\n")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	f, err := fs.Open("log.txt", OWronly|OAppend)
	if err != nil {
		t.Fatalf("Open(APPEND): %v", err)
	}
	if _, err := f.Write([]byte("two\n")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := fs.ReadFile("log.txt")
	if err != nil || string(got) != "one\ntwo\n" {
		t.Fatalf("contents = %q, %v", got, err)
	}
}

func TestTruncFlag(t *testing.T) {
	fs, _ := newFS(t, false)
	if err := fs.WriteFile("t.txt", []byte("long old contents")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	f, err := fs.Open("t.txt", OWronly|OTrunc)
	if err != nil {
		t.Fatalf("Open(TRUNC): %v", err)
	}
	if f.Size() != 0 {
		t.Fatalf("size after O_TRUNC = %d", f.Size())
	}
	if _, err := f.Write([]byte("new")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := fs.ReadFile("t.txt")
	if err != nil || string(got) != "new" {
		t.Fatalf("contents = %q, %v", got, err)
	}
}

func TestNestedPathsAndReadDir(t *testing.T) {
	fs, _ := newFS(t, false)
	if err := fs.WriteFile("a/b/c/file.txt", []byte("deep")); err != nil {
		t.Fatalf("WriteFile(deep): %v", err)
	}
	got, err := fs.ReadFile("a/b/c/file.txt")
	if err != nil || string(got) != "deep" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	names, err := fs.ReadDir("a/b")
	if err != nil || len(names) != 1 || names[0] != "c" {
		t.Fatalf("ReadDir(a/b) = %v, %v", names, err)
	}
	if err := fs.Mkdir("a/b/other"); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	names, err = fs.ReadDir("a/b")
	if err != nil || len(names) != 2 {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
}

func TestRemove(t *testing.T) {
	fs, eng := newFS(t, false)
	if err := fs.WriteFile("gone.txt", []byte("bye")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	filesBefore := eng.Live()
	if err := fs.Remove("gone.txt"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := fs.ReadFile("gone.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ReadFile after remove err = %v", err)
	}
	if err := fs.Remove("gone.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double Remove err = %v", err)
	}
	// The Bullet file was reclaimed.
	if eng.Live() != filesBefore-1 {
		t.Fatalf("Live = %d, want %d", eng.Live(), filesBefore-1)
	}
}

func TestRename(t *testing.T) {
	fs, _ := newFS(t, false)
	if err := fs.WriteFile("old/name.txt", []byte("payload")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := fs.Rename("old/name.txt", "new/place.txt"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := fs.ReadFile("old/name.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old path still readable: %v", err)
	}
	got, err := fs.ReadFile("new/place.txt")
	if err != nil || string(got) != "payload" {
		t.Fatalf("new path = %q, %v", got, err)
	}
	if err := fs.Rename("missing", "anywhere"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Rename(missing) err = %v", err)
	}
}

func TestVersionsSurface(t *testing.T) {
	fs, _ := newFS(t, true) // keep versions
	for i, text := range []string{"v1", "v2", "v3"} {
		if err := fs.WriteFile("doc.txt", []byte(text)); err != nil {
			t.Fatalf("WriteFile %d: %v", i, err)
		}
	}
	vers, err := fs.Versions("doc.txt")
	if err != nil {
		t.Fatalf("Versions: %v", err)
	}
	if len(vers) != 3 {
		t.Fatalf("versions = %d, want 3", len(vers))
	}
	// Every retained version is still readable (KeepVersions).
	fsClient := fs.files
	for i, v := range vers {
		got, err := fsClient.Read(v)
		if err != nil {
			t.Fatalf("reading version %d: %v", i, err)
		}
		want := []string{"v1", "v2", "v3"}[i]
		if string(got) != want {
			t.Fatalf("version %d = %q, want %q", i, got, want)
		}
	}
}

func TestOldVersionsDeletedByDefault(t *testing.T) {
	fs, eng := newFS(t, false)
	for _, text := range []string{"v1", "v2", "v3"} {
		if err := fs.WriteFile("doc.txt", []byte(text)); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	// One live content file + 1 directory checkpoint.
	if live := eng.Live(); live != 2 {
		t.Fatalf("Live = %d, want 2 (current version + dir checkpoint)", live)
	}
}

func TestSyncPublishesWithoutClose(t *testing.T) {
	fs, _ := newFS(t, false)
	f, err := fs.Create("sync.txt")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("visible")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got, err := fs.ReadFile("sync.txt")
	if err != nil || string(got) != "visible" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	// Keep writing after sync; close publishes the final state.
	if _, err := f.Write([]byte(" more")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err = fs.ReadFile("sync.txt")
	if err != nil || string(got) != "visible more" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
}

func TestCloseWithoutWriteCreatesNothing(t *testing.T) {
	fs, eng := newFS(t, false)
	if err := fs.WriteFile("ro.txt", []byte("x")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	before := eng.Stats().Creates
	f, err := fs.Open("ro.txt", ORdonly)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close err = %v", err)
	}
	if eng.Stats().Creates != before {
		t.Fatal("read-only open/close created a file version")
	}
}

func TestConcurrentOpenersSeeConsistentVersions(t *testing.T) {
	fs, _ := newFS(t, false)
	if err := fs.WriteFile("shared.txt", []byte("original")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	reader, err := fs.Open("shared.txt", ORdonly)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// A writer replaces the file while the reader holds it open.
	if err := fs.WriteFile("shared.txt", []byte("replaced")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// The reader still sees the snapshot it opened — immutability gives
	// perfect open-file semantics for free.
	buf := make([]byte, 32)
	n, _ := reader.Read(buf)
	if string(buf[:n]) != "original" {
		t.Fatalf("reader sees %q, want the opened snapshot", buf[:n])
	}
	got, err := fs.ReadFile("shared.txt")
	if err != nil || string(got) != "replaced" {
		t.Fatalf("new opens = %q, %v", got, err)
	}
}

func TestRootPathRejected(t *testing.T) {
	fs, _ := newFS(t, false)
	if _, err := fs.Open("/", ORdonly); !errors.Is(err, ErrIsDir) {
		t.Fatalf("Open(/) err = %v", err)
	}
}
