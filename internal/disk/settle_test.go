package disk

import (
	"sync/atomic"
	"testing"
	"time"

	"bulletfs/internal/trace"
)

// TestDrainWaitsForSettleHook is the regression test for the
// stats-snapshot-vs-settle race: in the old ordering the last replica
// goroutine retired its write from the drain tracker BEFORE running the
// onSettled hook, so a Drain (e.g. the one before a final stats snapshot
// at shutdown) could return while settle work was still in flight. Now
// onSettled runs before endWrite, so Drain returning implies the hook has
// completed. Looped to give the scheduler chances to expose a reordering.
func TestDrainWaitsForSettleHook(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		a, err := NewMem(512, 64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewMem(512, 64)
		if err != nil {
			t.Fatal(err)
		}
		set, err := NewReplicaSet(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var settled atomic.Bool
		// P-FACTOR 0: the whole fanout, including the settle hook, runs in
		// the background — the interleaving the bug needed.
		err = set.ApplyNotify(0, func(i int, dev Device) error {
			time.Sleep(time.Microsecond)
			return dev.WriteAt([]byte{1}, 0)
		}, func() {
			time.Sleep(10 * time.Microsecond) // widen the race window
			settled.Store(true)
		})
		if err != nil {
			t.Fatal(err)
		}
		set.Drain()
		if !settled.Load() {
			t.Fatalf("iter %d: Drain returned before the settle hook completed", iter)
		}
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestApplyNotifyTracedSpans pins the per-replica commit span shape: one
// replica-commit span per live replica, carrying the replica index and
// the p-factor, with settled replicas stamped with a real duration.
func TestApplyNotifyTracedSpans(t *testing.T) {
	a, err := NewMem(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMem(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewReplicaSet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	rec := trace.NewRecorder(trace.WithCapacity(4, 4))
	tc := rec.AcquireCtx()
	tc.Reset(42)
	root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)

	if err := set.ApplyNotifyTraced(tc, root, 2, func(i int, dev Device) error {
		return dev.WriteAt([]byte{7}, 0)
	}, nil); err != nil {
		t.Fatal(err)
	}
	tc.End(root)
	tc.Finish()

	traces := rec.Recent()
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	var commits []trace.Span
	for i := 0; i < traces[0].N; i++ {
		sp := traces[0].Spans[i]
		if sp.Op == trace.OpReplicaCommit {
			commits = append(commits, sp)
		}
	}
	if len(commits) != 2 {
		t.Fatalf("%d replica-commit spans, want 2: %+v", len(commits), traces[0].Spans[:traces[0].N])
	}
	seen := map[int8]bool{}
	for _, sp := range commits {
		seen[sp.Replica] = true
		if sp.PFactor != 2 {
			t.Fatalf("span p-factor %d, want 2", sp.PFactor)
		}
		if sp.Layer != trace.LayerDisk {
			t.Fatalf("span layer %v, want disk", sp.Layer)
		}
		// syncN == replica count: both writes completed before return.
		if sp.Dur == trace.DurPending {
			t.Fatalf("fully synchronous commit left replica %d pending", sp.Replica)
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("replica indices missing: %v", seen)
	}
}
