// Package disk provides the block devices underneath the Bullet server and
// the NFS-like baseline: RAM-backed and file-backed devices, a wrapper that
// charges a hwmodel.DiskModel's costs to a virtual clock, failure injection
// for recovery tests, and the two-disk replica set from paper §3.
//
// Devices address whole bytes but promise only sector-granular atomicity;
// callers that need aligned I/O (the inode table) align themselves.
package disk

import (
	"errors"
	"fmt"
	"sync"
)

// Device is a random-access block storage device.
type Device interface {
	// BlockSize returns the physical sector size in bytes.
	BlockSize() int
	// Blocks returns the device capacity in blocks.
	Blocks() int64
	// ReadAt fills p from the byte offset off.
	ReadAt(p []byte, off int64) error
	// WriteAt stores p at the byte offset off.
	WriteAt(p []byte, off int64) error
	// Sync flushes any volatile buffers to stable storage.
	Sync() error
	// Close releases the device.
	Close() error
}

// Errors returned by devices in this package.
var (
	// ErrOutOfRange means an access fell outside the device.
	ErrOutOfRange = errors.New("disk: access out of range")
	// ErrClosed means the device was used after Close.
	ErrClosed = errors.New("disk: device closed")
	// ErrFaulted means injected failure: the device has died.
	ErrFaulted = errors.New("disk: device faulted")
	// ErrNoReplica means every replica of a set has failed.
	ErrNoReplica = errors.New("disk: no working replica")
	// ErrBadGeometry means a device was configured with an unusable
	// block size or capacity, or replicas with mismatched geometries.
	ErrBadGeometry = errors.New("disk: bad device geometry")
)

// MemDisk is a RAM-backed Device. It is the workhorse for tests and for the
// simulated experiments (wrapped in a SimDisk for timing).
type MemDisk struct {
	mu        sync.RWMutex
	data      []byte // guarded by mu
	blockSize int    // immutable after construction
	closed    bool   // guarded by mu
}

var _ Device = (*MemDisk)(nil)

// NewMem returns a zero-filled RAM disk with the given geometry.
func NewMem(blockSize int, blocks int64) (*MemDisk, error) {
	if blockSize <= 0 || blocks <= 0 {
		return nil, fmt.Errorf("%d x %d: %w", blockSize, blocks, ErrBadGeometry)
	}
	return &MemDisk{
		data:      make([]byte, int64(blockSize)*blocks),
		blockSize: blockSize,
	}, nil
}

// BlockSize returns the sector size.
func (d *MemDisk) BlockSize() int { return d.blockSize }

// Blocks returns the capacity in sectors.
func (d *MemDisk) Blocks() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.data)) / int64(d.blockSize)
}

func (d *MemDisk) checkLocked(n, off int64) error {
	if d.closed {
		return ErrClosed
	}
	if off < 0 || off+n > int64(len(d.data)) {
		return fmt.Errorf("offset %d length %d on %d-byte device: %w", off, n, len(d.data), ErrOutOfRange)
	}
	return nil
}

// ReadAt implements Device.
func (d *MemDisk) ReadAt(p []byte, off int64) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkLocked(int64(len(p)), off); err != nil {
		return err
	}
	copy(p, d.data[off:])
	return nil
}

// WriteAt implements Device.
func (d *MemDisk) WriteAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkLocked(int64(len(p)), off); err != nil {
		return err
	}
	copy(d.data[off:], p)
	return nil
}

// Sync implements Device; RAM disks are always "stable".
func (d *MemDisk) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Device.
func (d *MemDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// Snapshot returns a copy of the device contents; used by recovery tests to
// compare replicas byte for byte.
func (d *MemDisk) Snapshot() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]byte, len(d.data))
	copy(out, d.data)
	return out
}
