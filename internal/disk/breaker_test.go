package disk

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// vclock is a virtual timeline for breaker tests: FaultyDisk latency
// sinks Advance it, BreakerConfig.Now reads it. No test here sleeps.
type vclock struct {
	mu  sync.Mutex
	now int64
}

func (c *vclock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *vclock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += int64(d)
	c.mu.Unlock()
}

// noTimerHedge disables in-flight timer hedging: a nil channel never
// fires, so the ladder stays sequential and deterministic.
func noTimerHedge(time.Duration) <-chan time.Time { return nil }

// TestBreakerBrownoutOpensAndRecovers is the deterministic brownout
// test: one replica answers 100x slower than healthy, every read still
// completes with zero client-visible errors, the slow replica's breaker
// opens after the configured streak, and once the slowness clears the
// cooldown half-opens it, a probe read succeeds, and the breaker closes
// again — all on a virtual clock.
func TestBreakerBrownoutOpensAndRecovers(t *testing.T) {
	s, faulty := newSet(t, 2)
	clk := &vclock{}
	s.EnableBreakers(BreakerConfig{
		MinSlow:  500 * time.Millisecond,
		Cooldown: 5 * time.Second,
		Now:      clk.Now,
		After:    noTimerHedge,
	})
	in := []byte("gray failure: answering, just two seconds late")
	writeAll(t, s, in, 512)

	// Brownout: replica 0 (the main) serves every read, 2s each.
	faulty[0].SetLatency(2*time.Second, 2*time.Second, 1, clk.Advance)
	out := make([]byte, len(in))
	for i := 0; i < DefaultSlowStreak; i++ {
		if err := s.ReadAt(out, 512); err != nil {
			t.Fatalf("read %d during brownout: %v", i, err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("read %d returned wrong bytes", i)
		}
	}
	if got := s.BreakerState(0); got != "open" {
		t.Fatalf("after %d slow reads, breaker(0) = %s, want open", DefaultSlowStreak, got)
	}
	if got := s.BreakerOpens(); got != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", got)
	}

	// With the breaker open, reads route to replica 1 — no errors, no
	// 2s stalls (the virtual clock only advances through the injector).
	before := clk.Now()
	r1 := s.Reads(1)
	for i := 0; i < 5; i++ {
		if err := s.ReadAt(out, 512); err != nil {
			t.Fatalf("read %d with open breaker: %v", i, err)
		}
	}
	if clk.Now() != before {
		t.Fatalf("reads with an open breaker advanced the clock %v; they hit the slow replica", time.Duration(clk.Now()-before))
	}
	if got := s.Reads(1) - r1; got != 5 {
		t.Fatalf("healthy replica served %d of 5 reads", got)
	}
	if s.BreakerState(0) != "open" {
		t.Fatal("breaker re-closed without a probe")
	}

	// Slowness ends; after the cooldown the next read half-opens the
	// breaker, probes replica 0 first, and the fast probe closes it.
	faulty[0].SetLatency(0, 0, 0, nil)
	clk.Advance(5 * time.Second)
	r0 := s.Reads(0)
	if err := s.ReadAt(out, 512); err != nil {
		t.Fatalf("probe read: %v", err)
	}
	if got := s.Reads(0) - r0; got != 1 {
		t.Fatalf("probe read went to replica %v, want the half-open replica 0", got)
	}
	if got := s.BreakerState(0); got != "closed" {
		t.Fatalf("after a fast probe, breaker(0) = %s, want closed", got)
	}
	if !bytes.Equal(out, in) {
		t.Fatal("probe read returned wrong bytes")
	}
	if s.BreakerOpens() != 1 {
		t.Fatalf("BreakerOpens = %d after recovery, want still 1", s.BreakerOpens())
	}
}

// TestBreakerReopensOnSlowProbe pins the half-open → open edge: a probe
// that is still slow sends the breaker straight back to open.
func TestBreakerReopensOnSlowProbe(t *testing.T) {
	s, faulty := newSet(t, 2)
	clk := &vclock{}
	s.EnableBreakers(BreakerConfig{
		MinSlow:  500 * time.Millisecond,
		Cooldown: time.Second,
		Now:      clk.Now,
		After:    noTimerHedge,
	})
	in := []byte("still gray")
	writeAll(t, s, in, 0)
	faulty[0].SetLatency(2*time.Second, 2*time.Second, 1, clk.Advance)

	out := make([]byte, len(in))
	for i := 0; i < DefaultSlowStreak; i++ {
		if err := s.ReadAt(out, 0); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second) // cooldown passes, injection does not
	if err := s.ReadAt(out, 0); err != nil {
		t.Fatalf("slow probe read: %v", err)
	}
	if got := s.BreakerState(0); got != "open" {
		t.Fatalf("after a slow probe, breaker(0) = %s, want open again", got)
	}
	if got := s.BreakerOpens(); got != 2 {
		t.Fatalf("BreakerOpens = %d, want 2 (initial + re-open)", got)
	}
}

// TestHedgeTimerLaunchesSecondReplica pins the in-flight hedge: with the
// first attempt stuck on a never-completing read, the hedge timer fires
// (injected channel, no wall clock) and the second replica's response
// wins; the stuck loser is released and drained afterwards.
func TestHedgeTimerLaunchesSecondReplica(t *testing.T) {
	s, faulty := newSet(t, 2)
	clk := &vclock{}
	s.EnableBreakers(BreakerConfig{
		MinSlow:      500 * time.Millisecond,
		HedgeRatePct: 50,
		Now:          clk.Now,
		After:        noTimerHedge,
	})
	in := []byte("first response wins")
	writeAll(t, s, in, 1024)
	out := make([]byte, len(in))

	// Warm the cap: at 50% one hedge needs two prior laddered reads.
	for i := 0; i < 2; i++ {
		if err := s.ReadAt(out, 1024); err != nil {
			t.Fatal(err)
		}
	}

	// Now arm a timer that "fires" the moment it is consulted, and a
	// first attempt that never completes.
	fire := make(chan time.Time, 1)
	fire <- time.Time{}
	s.EnableBreakers(BreakerConfig{
		MinSlow:      500 * time.Millisecond,
		HedgeRatePct: 50,
		Now:          clk.Now,
		After:        func(time.Duration) <-chan time.Time { return fire },
	})
	faulty[0].StallNextReads(1)
	if err := s.ReadAt(out, 1024); err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if !bytes.Equal(out, in) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if got := s.HedgedReads(); got != 1 {
		t.Fatalf("HedgedReads = %d, want 1", got)
	}
	if got := s.Reads(1); got != 1 {
		t.Fatalf("replica 1 served %d reads, want the 1 hedge win", got)
	}

	// The loser is still parked on the stall gate; release and drain it.
	faulty[0].ReleaseStalled()
	s.DrainReads()
}

// TestHedgeRateCapEnforced pins the hard cap: with the EWMA ranking
// wanting a hedge on every read, only HedgeRatePct percent are granted;
// the rest go to the main as usual.
func TestHedgeRateCapEnforced(t *testing.T) {
	s, _ := newSet(t, 2)
	clk := &vclock{}
	s.EnableBreakers(BreakerConfig{
		MinSlow: 500 * time.Millisecond, // EWMAs below this never open the breaker
		Now:     clk.Now,
		After:   noTimerHedge,
	})
	in := []byte("capped")
	writeAll(t, s, in, 0)
	out := make([]byte, len(in))

	const reads = 200
	for i := 0; i < reads; i++ {
		// Pin the scores each round: the main looks 400x slower, so the
		// ladder wants to hedge to replica 1 on every single read.
		s.brk[0].ewmaNs.Store(int64(400 * time.Millisecond))
		s.brk[1].ewmaNs.Store(int64(time.Millisecond))
		if err := s.ReadAt(out, 0); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	// At the default 5%: hedge h is granted once (h+1)*100 <= reads*5,
	// so 200 reads admit exactly 10 hedges.
	if got := s.HedgedReads(); got != reads*DefaultHedgeRatePct/100 {
		t.Fatalf("HedgedReads = %d over %d reads, want exactly %d (the %d%% cap)",
			got, reads, reads*DefaultHedgeRatePct/100, DefaultHedgeRatePct)
	}
	if got := s.Reads(0); got != reads-reads*DefaultHedgeRatePct/100 {
		t.Fatalf("main served %d reads, want %d (everything the cap refused)", got, reads-reads*DefaultHedgeRatePct/100)
	}
}

// TestBreakerOpenExcludedFromQuorum pins the commit-side rule: an open
// breaker's replica still receives every write but the P-FACTOR quorum
// is satisfied without it, so a full-sync Apply does not wait for (or
// get failed by) the gray disk.
func TestBreakerOpenExcludedFromQuorum(t *testing.T) {
	s, faulty := newSet(t, 2)
	clk := &vclock{}
	s.EnableBreakers(BreakerConfig{
		MinSlow:  500 * time.Millisecond,
		Cooldown: time.Hour,
		Now:      clk.Now,
		After:    noTimerHedge,
	})
	in := []byte("quorum without the gray disk")
	writeAll(t, s, in, 0)
	faulty[0].SetLatency(2*time.Second, 2*time.Second, 1, clk.Advance)
	out := make([]byte, len(in))
	for i := 0; i < DefaultSlowStreak; i++ {
		if err := s.ReadAt(out, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.BreakerState(0) != "open" {
		t.Fatal("setup: breaker(0) did not open")
	}

	// Full-sync write: quorum clamps to the one eligible replica, the
	// open-breaker replica gets the write in the background.
	p := []byte("written during brownout")
	if err := s.WriteAt(p, 2048); err != nil {
		t.Fatalf("WriteAt with open breaker: %v", err)
	}
	s.Drain()
	got := make([]byte, len(p))
	for i := 0; i < 2; i++ {
		if err := s.Device(i).ReadAt(got, 2048); err != nil {
			t.Fatalf("replica %d readback: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("replica %d missed the brownout write", i)
		}
	}
}

// TestFaultyLatencySeededAndSunk pins the injector itself: the delays
// are drawn from a seeded range and delivered to the sink, never slept.
func TestFaultyLatencySeededAndSunk(t *testing.T) {
	mem := newMem(t, 512, 8)
	d := NewFaulty(mem)
	var got []time.Duration
	d.SetLatency(10*time.Millisecond, 20*time.Millisecond, 42, func(lat time.Duration) { got = append(got, lat) })
	buf := make([]byte, 512)
	for i := 0; i < 4; i++ {
		if err := d.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 4 {
		t.Fatalf("sink saw %d delays, want 4", len(got))
	}
	for i, lat := range got {
		if lat < 10*time.Millisecond || lat > 20*time.Millisecond {
			t.Fatalf("delay %d = %v, outside [10ms, 20ms]", i, lat)
		}
	}
	// Same seed, same sequence.
	var again []time.Duration
	d.SetLatency(10*time.Millisecond, 20*time.Millisecond, 42, func(lat time.Duration) { again = append(again, lat) })
	for i := 0; i < 4; i++ {
		if err := d.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("re-seeded sequence diverged at %d: %v vs %v", i, got[i], again[i])
		}
	}
	// Disarm: the sink stops seeing ops.
	d.SetLatency(0, 0, 0, nil)
	n := len(again)
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if len(again) != n {
		t.Fatal("disarmed injector still delivered a delay")
	}
}

// TestFaultyStallGate pins the stuck-op mode: a stalled read parks until
// released, WaitStalled observes it parked, and Heal also releases.
func TestFaultyStallGate(t *testing.T) {
	mem := newMem(t, 512, 8)
	d := NewFaulty(mem)
	d.StallNextReads(1)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 512)
		done <- d.ReadAt(buf, 0)
	}()
	d.WaitStalled(1)
	select {
	case err := <-done:
		t.Fatalf("stalled read returned early: %v", err)
	default:
	}
	d.ReleaseStalled()
	if err := <-done; err != nil {
		t.Fatalf("released read: %v", err)
	}

	// Heal releases too, so a stuck disk can always be un-stuck.
	d.StallNextReads(1)
	go func() {
		buf := make([]byte, 512)
		done <- d.ReadAt(buf, 0)
	}()
	d.WaitStalled(1)
	d.Heal()
	if err := <-done; err != nil {
		t.Fatalf("read released by Heal: %v", err)
	}
}
