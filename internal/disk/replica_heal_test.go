package disk

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"
	"time"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcVerify returns a ReadVerified callback accepting exactly want.
func crcVerify(want uint32) func([]byte) bool {
	return func(p []byte) bool { return crc32.Checksum(p, castagnoli) == want }
}

func TestReadVerifiedFailoverAndSelfHeal(t *testing.T) {
	s, _ := newSet(t, 3)
	in := []byte("silent corruption is the failure mode checksums exist for")
	writeAll(t, s, in, 1024)
	sum := crc32.Checksum(in, castagnoli)

	// Rot the stored bytes on the main replica only.
	bad := bytes.Repeat([]byte{0xEE}, len(in))
	if err := s.Device(0).WriteAt(bad, 1024); err != nil {
		t.Fatalf("corrupting replica 0: %v", err)
	}

	out := make([]byte, len(in))
	if err := s.ReadVerified(out, 1024, crcVerify(sum)); err != nil {
		t.Fatalf("ReadVerified: %v", err)
	}
	if !bytes.Equal(out, in) {
		t.Fatalf("read %q, want %q", out, in)
	}
	if !s.Alive(0) {
		t.Fatal("one checksum error quarantined the replica")
	}
	if got := s.ChecksumErrors(0); got != 1 {
		t.Fatalf("ChecksumErrors(0) = %d, want 1", got)
	}
	if got := s.Repairs(0); got != 1 {
		t.Fatalf("Repairs(0) = %d, want 1", got)
	}
	// The bad extent was rewritten in place: replica 0 now serves the
	// verified bytes itself.
	healed := make([]byte, len(in))
	if err := s.Device(0).ReadAt(healed, 1024); err != nil {
		t.Fatalf("re-reading replica 0: %v", err)
	}
	if !bytes.Equal(healed, in) {
		t.Fatalf("replica 0 still holds %q after self-heal", healed)
	}
	// And a second verified read is served by the main with no failover.
	before := s.Reads(0)
	if err := s.ReadVerified(out, 1024, crcVerify(sum)); err != nil {
		t.Fatalf("second ReadVerified: %v", err)
	}
	if s.Reads(0) != before+1 {
		t.Fatal("healed main did not serve the follow-up read")
	}
}

func TestReadVerifiedAllReplicasCorrupt(t *testing.T) {
	s, _ := newSet(t, 2)
	in := []byte("every copy rotted")
	writeAll(t, s, in, 512)
	out := make([]byte, len(in))
	err := s.ReadVerified(out, 512, func([]byte) bool { return false })
	if !errors.Is(err, ErrNoReplica) || !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrNoReplica wrapping ErrChecksum", err)
	}
	// Unverifiable data must not demote anyone by itself (budget is 8).
	if s.AliveCount() != 2 {
		t.Fatalf("alive = %d after mismatches, want 2", s.AliveCount())
	}
}

func TestChecksumErrorBudgetQuarantine(t *testing.T) {
	s, faulty := newSet(t, 3)
	s.SetErrorBudget(3)
	in := []byte("repeat offender")
	writeAll(t, s, in, 0)
	sum := crc32.Checksum(in, castagnoli)

	// Replica 0 lies on every read from now on (stored bytes stay good, so
	// self-heal rewrites cannot cure it).
	faulty[0].CorruptNextReads(1000)

	out := make([]byte, len(in))
	for i := 0; i < 3; i++ {
		if err := s.ReadVerified(out, 0, crcVerify(sum)); err != nil {
			t.Fatalf("ReadVerified %d: %v", i, err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("read %d returned %q", i, out)
		}
	}
	if s.Alive(0) {
		t.Fatal("replica 0 alive after exhausting its error budget")
	}
	if got := s.ChecksumErrors(0); got != 3 {
		t.Fatalf("ChecksumErrors(0) = %d, want 3", got)
	}
	if s.Main() != 1 {
		t.Fatalf("main = %d after quarantine, want 1", s.Main())
	}
	if got := s.Promotions(); got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	// Quarantined replicas serve nothing; the survivors do.
	if err := s.ReadVerified(out, 0, crcVerify(sum)); err != nil {
		t.Fatalf("post-quarantine read: %v", err)
	}
}

func TestPromotionDuringInFlightReads(t *testing.T) {
	s, faulty := newSet(t, 3)
	in := []byte("reads must survive a promotion")
	writeAll(t, s, in, 2048)

	// Hammer reads from several goroutines while the main dies mid-storm.
	// Every read must succeed: the failover ladder retries siblings within
	// one call, so the demotion is invisible to clients. Readers keep
	// going until the promotion has been observed, so reads are
	// guaranteed to be in flight across it.
	const readers = 8
	errs := make(chan error, readers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]byte, len(in))
			for i := 0; ; i++ {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				if err := s.ReadAt(out, 2048); err != nil {
					errs <- fmt.Errorf("read %d: %w", i, err)
					return
				}
				if !bytes.Equal(out, in) {
					errs <- fmt.Errorf("read %d returned %q", i, out)
					return
				}
			}
		}()
	}
	faulty[0].Fault()
	deadline := time.After(10 * time.Second)
	for s.Promotions() == 0 {
		select {
		case <-deadline:
			close(stop)
			t.Fatal("promotion never observed")
		default:
			time.Sleep(50 * time.Microsecond)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.Alive(0) {
		t.Fatal("faulted main still alive")
	}
	if got := s.Promotions(); got != 1 {
		t.Fatalf("Promotions = %d, want 1", got)
	}
	if s.Main() == 0 {
		t.Fatal("main not promoted away from the dead replica")
	}
}

// bigSet builds a replica set over larger disks so recovery copies take
// long enough to race against.
func bigSet(t *testing.T, n int, blocks int64) (*ReplicaSet, []*FaultyDisk, []*MemDisk) {
	t.Helper()
	devs := make([]Device, n)
	faulty := make([]*FaultyDisk, n)
	mems := make([]*MemDisk, n)
	for i := range devs {
		mems[i] = newMem(t, 512, blocks)
		faulty[i] = NewFaulty(mems[i])
		devs[i] = faulty[i]
	}
	s, err := NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	return s, faulty, mems
}

func TestConcurrentWritesDuringRecover(t *testing.T) {
	const blocks = 4096 // 2 MB per replica
	s, faulty, mems := bigSet(t, 3, blocks)

	seed := bytes.Repeat([]byte("seed data "), 51)
	writeAll(t, s, seed, 0)

	// Kill replica 2 and let the set notice.
	faulty[2].Fault()
	writeAll(t, s, []byte("degraded-mode write"), 4096)
	if s.AliveCount() != 2 {
		t.Fatalf("alive = %d, want 2", s.AliveCount())
	}
	faulty[2].Heal()

	// Writers keep committing to distinct extents while the recovery copy
	// runs. Every one of these writes must end up on replica 2, whether
	// the bulk copy, a catch-up pass, or the mirrored fan-out carried it.
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	werrs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				payload := []byte(fmt.Sprintf("writer %d iteration %03d", w, i))
				off := int64(8192 + (w*perWriter+i)*512)
				err := s.Apply(s.N(), func(_ int, dev Device) error {
					return dev.WriteAt(payload, off)
				})
				if err != nil {
					werrs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				select {
				case <-stop:
					werrs <- nil
					return
				default:
				}
			}
			werrs <- nil
		}()
	}

	if err := s.Recover(2); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	close(stop)
	wg.Wait()
	close(werrs)
	for err := range werrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Post-recovery writes fan out to replica 2 directly.
	writeAll(t, s, []byte("after recovery"), 1024*512)
	s.Drain()

	if s.AliveCount() != 3 {
		t.Fatalf("alive = %d after recover, want 3", s.AliveCount())
	}
	if got := s.Recoveries(); got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}
	if s.Recovering() != -1 {
		t.Fatalf("Recovering = %d after completion, want -1", s.Recovering())
	}
	if !bytes.Equal(mems[0].Snapshot(), mems[2].Snapshot()) {
		t.Fatal("replica 2 diverges from replica 0 after online recovery")
	}
	if !bytes.Equal(mems[0].Snapshot(), mems[1].Snapshot()) {
		t.Fatal("replica 1 diverges from replica 0")
	}
}

// slowDisk delays every write, stretching a recovery copy out long enough
// for the test to observe the set staying responsive.
type slowDisk struct {
	Device
	delay time.Duration
}

func (d *slowDisk) WriteAt(p []byte, off int64) error {
	time.Sleep(d.delay)
	return d.Device.WriteAt(p, off)
}

func TestRecoverDoesNotBlockTheSet(t *testing.T) {
	const blocks = 2048
	mems := make([]*MemDisk, 3)
	faulty := make([]*FaultyDisk, 3)
	devs := make([]Device, 3)
	for i := range devs {
		mems[i] = newMem(t, 512, blocks)
		faulty[i] = NewFaulty(mems[i])
		devs[i] = faulty[i]
	}
	// Replica 2's writes crawl: the bulk copy (2048/64 = 32 chunks) takes
	// at least 32ms while reads and commits should take microseconds.
	devs[2] = &slowDisk{Device: faulty[2], delay: time.Millisecond}
	s, err := NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	in := []byte("stay responsive")
	writeAll(t, s, in, 0)
	faulty[2].Fault()
	writeAll(t, s, in, 512) // set notices the death
	faulty[2].Heal()

	recDone := make(chan error, 1)
	go func() { recDone <- s.Recover(2) }()

	// Wait for the recovery to actually start.
	deadline := time.After(5 * time.Second)
	for s.Recovering() != 2 {
		select {
		case <-deadline:
			t.Fatal("recovery never started")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Mid-recovery, reads and quorum writes must complete promptly. The
	// mirrored write to the slow replica continues in the background; the
	// caller's quorum is over the live replicas only.
	out := make([]byte, len(in))
	start := time.Now()
	if err := s.ReadAt(out, 0); err != nil {
		t.Fatalf("read during recovery: %v", err)
	}
	if err := s.Apply(2, func(_ int, dev Device) error {
		return dev.WriteAt([]byte("committed mid-recovery"), 1024)
	}); err != nil {
		t.Fatalf("commit during recovery: %v", err)
	}
	elapsed := time.Since(start)
	if s.Recovering() != 2 && elapsed > 20*time.Millisecond {
		t.Logf("note: recovery finished before the mid-recovery ops ran")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("ops during recovery took %v", elapsed)
	}

	if err := <-recDone; err != nil {
		t.Fatalf("Recover: %v", err)
	}
	s.Drain()
	if !bytes.Equal(mems[0].Snapshot(), mems[2].Snapshot()) {
		t.Fatal("slow replica diverges after recovery")
	}
}

func TestRecoverWhileRecoveringFails(t *testing.T) {
	mems := make([]*MemDisk, 3)
	faulty := make([]*FaultyDisk, 3)
	devs := make([]Device, 3)
	for i := range devs {
		mems[i] = newMem(t, 512, 2048)
		faulty[i] = NewFaulty(mems[i])
		devs[i] = faulty[i]
	}
	devs[2] = &slowDisk{Device: faulty[2], delay: time.Millisecond}
	s, err := NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	faulty[1].Fault()
	faulty[2].Fault()
	_ = s.ReadAt(make([]byte, 1), 0) // notice neither death (main is 0)
	_ = s.Apply(3, func(_ int, dev Device) error { return dev.WriteAt([]byte("x"), 0) })
	faulty[1].Heal()
	faulty[2].Heal()

	recDone := make(chan error, 1)
	go func() { recDone <- s.Recover(2) }()
	deadline := time.After(5 * time.Second)
	for s.Recovering() != 2 {
		select {
		case <-deadline:
			t.Fatal("recovery never started")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	if err := s.Recover(1); !errors.Is(err, ErrRecovering) {
		t.Fatalf("second Recover err = %v, want ErrRecovering", err)
	}
	if err := <-recDone; err != nil {
		t.Fatalf("Recover(2): %v", err)
	}
	// With the first done, the second target recovers fine.
	if err := s.Recover(1); err != nil {
		t.Fatalf("Recover(1): %v", err)
	}
	if s.AliveCount() != 3 {
		t.Fatalf("alive = %d, want 3", s.AliveCount())
	}
}

func TestRecoverAliveReplicaIsNoOp(t *testing.T) {
	s, _ := newSet(t, 2)
	if err := s.Recover(1); err != nil {
		t.Fatalf("Recover of a live replica: %v", err)
	}
	if got := s.Recoveries(); got != 0 {
		t.Fatalf("Recoveries = %d for a no-op, want 0", got)
	}
}

func TestFaultyCorruptionModes(t *testing.T) {
	mem := newMem(t, 512, 8)
	d := NewFaulty(mem)
	in := []byte("pristine bytes")
	if err := d.WriteAt(in, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}

	// Read corruption: the returned copy lies, the stored bytes do not.
	d.CorruptNextReads(1)
	out := make([]byte, len(in))
	if err := d.ReadAt(out, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if bytes.Equal(out, in) {
		t.Fatal("CorruptNextReads returned clean bytes")
	}
	if err := d.ReadAt(out, 0); err != nil || !bytes.Equal(out, in) {
		t.Fatalf("second read = (%q, %v), want clean", out, err)
	}

	// Write corruption: the device acknowledges bytes it mangled, and the
	// caller's buffer is untouched.
	d.CorruptNextWrites(1)
	orig := append([]byte(nil), in...)
	if err := d.WriteAt(in, 512); err != nil {
		t.Fatalf("corrupt WriteAt: %v", err)
	}
	if !bytes.Equal(in, orig) {
		t.Fatal("CorruptNextWrites mutated the caller's buffer")
	}
	if err := d.ReadAt(out, 512); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if bytes.Equal(out, in) {
		t.Fatal("CorruptNextWrites stored clean bytes")
	}
	// Heal clears the armed corruption.
	d.CorruptNextReads(5)
	d.Heal()
	if err := d.ReadAt(out, 0); err != nil || !bytes.Equal(out, in) {
		t.Fatalf("post-Heal read = (%q, %v), want clean", out, err)
	}
}

func TestReplicaHealthSnapshot(t *testing.T) {
	s, faulty := newSet(t, 3)
	in := []byte("health check")
	writeAll(t, s, in, 0)
	faulty[2].Fault()
	writeAll(t, s, in, 512)
	s.Drain()

	h := s.Health()
	if len(h) != 3 {
		t.Fatalf("health entries = %d, want 3", len(h))
	}
	if !h[0].Alive || !h[0].Main || h[0].Writes == 0 {
		t.Fatalf("replica 0 health = %+v", h[0])
	}
	if h[2].Alive || h[2].Errors == 0 {
		t.Fatalf("replica 2 health = %+v", h[2])
	}
	if h[2].Recovering {
		t.Fatalf("replica 2 claims recovery: %+v", h[2])
	}
}
