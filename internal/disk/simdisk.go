package disk

import (
	"sync"
	"time"

	"bulletfs/internal/hwmodel"
	"bulletfs/internal/stats"
)

// SimDisk wraps a Device and charges every access to a virtual clock
// according to a hwmodel.DiskModel. It tracks the head position so that an
// access contiguous with the previous one is charged a track-to-track seek
// instead of a full average seek — exactly the property that makes the
// Bullet layout fast (one positioning per file) and a scattered block
// layout slow (one positioning per block).
type SimDisk struct {
	mu    sync.Mutex
	dev   Device
	model hwmodel.DiskModel
	clock *hwmodel.Clock
	head  int64    // guarded by mu; byte offset just past the last access
	stats SimStats // guarded by mu
}

// SimStats counts what a SimDisk has been asked to do.
type SimStats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	Seeks        int64 // non-sequential positionings

	// PositionTime is virtual time spent positioning (controller
	// overhead, seek, rotational latency); TransferTime is virtual time
	// moving bytes. Their sum is the disk's total charged time — the
	// split is the paper's whole argument for contiguous layout.
	PositionTime time.Duration
	TransferTime time.Duration
}

var _ Device = (*SimDisk)(nil)

// NewSim wraps dev with the timing model, charging costs to clock.
func NewSim(dev Device, model hwmodel.DiskModel, clock *hwmodel.Clock) *SimDisk {
	return &SimDisk{dev: dev, model: model, clock: clock, head: -1}
}

// BlockSize returns the wrapped device's sector size.
func (d *SimDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks returns the wrapped device's capacity.
func (d *SimDisk) Blocks() int64 { return d.dev.Blocks() }

func (d *SimDisk) chargeLocked(n, off int64, write bool) {
	sequential := d.head >= 0 && off == d.head
	if !sequential {
		d.stats.Seeks++
	}
	total := d.model.AccessTime(n, sequential)
	position := d.model.AccessTime(0, sequential)
	d.stats.PositionTime += position
	d.stats.TransferTime += total - position
	d.clock.Advance(total)
	d.head = off + n
	if write {
		d.stats.Writes++
		d.stats.BytesWritten += n
	} else {
		d.stats.Reads++
		d.stats.BytesRead += n
	}
}

// ReadAt implements Device, charging seek+rotation+transfer time.
func (d *SimDisk) ReadAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.dev.ReadAt(p, off); err != nil {
		return err
	}
	d.chargeLocked(int64(len(p)), off, false)
	return nil
}

// WriteAt implements Device, charging seek+rotation+transfer time.
func (d *SimDisk) WriteAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.dev.WriteAt(p, off); err != nil {
		return err
	}
	d.chargeLocked(int64(len(p)), off, true)
	return nil
}

// Sync implements Device.
func (d *SimDisk) Sync() error { return d.dev.Sync() }

// Close implements Device.
func (d *SimDisk) Close() error { return d.dev.Close() }

// Stats returns a copy of the access counters.
func (d *SimDisk) Stats() SimStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the access counters (between experiment phases).
func (d *SimDisk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = SimStats{}
}

// AttachMetrics registers the simulated disk's counters with a stats
// registry under the given prefix (e.g. "disk.replica0"): operation and
// byte totals, seek count, and the position/transfer time split in
// nanoseconds of virtual time.
func (d *SimDisk) AttachMetrics(r *stats.Registry, prefix string) {
	poll := func(pick func(SimStats) int64) func() int64 {
		return func() int64 { return pick(d.Stats()) }
	}
	r.GaugeFunc(prefix+".sim_reads", poll(func(s SimStats) int64 { return s.Reads }))
	r.GaugeFunc(prefix+".sim_writes", poll(func(s SimStats) int64 { return s.Writes }))
	r.GaugeFunc(prefix+".sim_bytes_read", poll(func(s SimStats) int64 { return s.BytesRead }))
	r.GaugeFunc(prefix+".sim_bytes_written", poll(func(s SimStats) int64 { return s.BytesWritten }))
	r.GaugeFunc(prefix+".sim_seeks", poll(func(s SimStats) int64 { return s.Seeks }))
	r.GaugeFunc(prefix+".sim_position_ns", poll(func(s SimStats) int64 { return int64(s.PositionTime) }))
	r.GaugeFunc(prefix+".sim_transfer_ns", poll(func(s SimStats) int64 { return int64(s.TransferTime) }))
}
