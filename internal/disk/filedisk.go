package disk

import (
	"fmt"
	"os"
	"sync"
)

// FileDisk is a Device backed by a file in the host filesystem, used by the
// real daemons (cmd/bulletd) for durable storage.
type FileDisk struct {
	mu        sync.Mutex
	f         *os.File // guarded by mu
	blockSize int      // immutable after construction
	blocks    int64    // immutable after construction
	closed    bool     // guarded by mu
}

var _ Device = (*FileDisk)(nil)

// CreateFile makes (or truncates) a file-backed device of the given
// geometry at path.
func CreateFile(path string, blockSize int, blocks int64) (*FileDisk, error) {
	if blockSize <= 0 || blocks <= 0 {
		return nil, fmt.Errorf("%d x %d: %w", blockSize, blocks, ErrBadGeometry)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("disk: create %s: %w", path, err)
	}
	if err := f.Truncate(int64(blockSize) * blocks); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: size %s: %w", path, err)
	}
	return &FileDisk{f: f, blockSize: blockSize, blocks: blocks}, nil
}

// OpenFile opens an existing file-backed device created by CreateFile. The
// block size must be supplied by the caller (the Bullet disk descriptor in
// inode 0 records it; layout.Load verifies).
func OpenFile(path string, blockSize int) (*FileDisk, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("block size %d: %w", blockSize, ErrBadGeometry)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat %s: %w", path, err)
	}
	if st.Size()%int64(blockSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("%s size %d not a multiple of block size %d: %w", path, st.Size(), blockSize, ErrBadGeometry)
	}
	return &FileDisk{f: f, blockSize: blockSize, blocks: st.Size() / int64(blockSize)}, nil
}

// BlockSize returns the sector size.
func (d *FileDisk) BlockSize() int { return d.blockSize }

// Blocks returns the capacity in sectors.
func (d *FileDisk) Blocks() int64 { return d.blocks }

func (d *FileDisk) checkLocked(n, off int64) error {
	if d.closed {
		return ErrClosed
	}
	if off < 0 || off+n > d.blocks*int64(d.blockSize) {
		return fmt.Errorf("offset %d length %d: %w", off, n, ErrOutOfRange)
	}
	return nil
}

// ReadAt implements Device.
func (d *FileDisk) ReadAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkLocked(int64(len(p)), off); err != nil {
		return err
	}
	if _, err := d.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("disk: read at %d: %w", off, err)
	}
	return nil
}

// WriteAt implements Device.
func (d *FileDisk) WriteAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkLocked(int64(len(p)), off); err != nil {
		return err
	}
	if _, err := d.f.WriteAt(p, off); err != nil {
		return fmt.Errorf("disk: write at %d: %w", off, err)
	}
	return nil
}

// Sync implements Device.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync: %w", err)
	}
	return nil
}

// Close implements Device.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("disk: close: %w", err)
	}
	return nil
}
