package disk

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultyDisk wraps a Device with failure injection for recovery and
// replication tests. A faulted device fails every subsequent operation with
// ErrFaulted, like a drive that has died (paper §3: "If the main disk
// fails, the file server can proceed uninterruptedly by using the other
// disk").
type FaultyDisk struct {
	dev     Device
	faulted atomic.Bool

	mu           sync.Mutex
	failWriteIn  int64 // guarded by mu; fail (and fault) after this many more writes; 0 = off
	tornNext     bool  // guarded by mu; next write stores only the first half, then faults
	corruptReads int64 // guarded by mu; silently flip a byte in this many more reads
	corruptWrite int64 // guarded by mu; silently flip a byte in this many more writes

	// Seeded per-op latency (gray failure: the disk answers, just slowly).
	// All guarded by mu; latency is off while latSink is nil. The sink is
	// explicit — virtual-clock worlds pass clock.Advance, unit tests pass a
	// recorder — so no test ever sleeps on the wall clock.
	latMin  time.Duration
	latMax  time.Duration
	latRng  *rand.Rand
	latSink func(time.Duration)

	// Stuck-op gate (gray failure: the disk never answers). Guarded by mu.
	stallReads int64         // this many more reads park on stallGate
	stallGate  chan struct{} // parked reads block here until it closes
	stalledNow int           // reads currently parked; stallCond signals changes
	stallCond  *sync.Cond    // lazily bound to mu
}

var _ Device = (*FaultyDisk)(nil)

// NewFaulty wraps dev with failure injection, initially healthy.
func NewFaulty(dev Device) *FaultyDisk { return &FaultyDisk{dev: dev} }

// Fault kills the device immediately.
func (d *FaultyDisk) Fault() { d.faulted.Store(true) }

// Heal revives the device (for repair-and-recover tests). The underlying
// contents are whatever they were when it faulted. Any injected latency
// is cleared and stalled operations are released, so Heal is always
// enough to let Drain or Close finish.
func (d *FaultyDisk) Heal() {
	d.faulted.Store(false)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWriteIn = 0
	d.tornNext = false
	d.corruptReads = 0
	d.corruptWrite = 0
	d.latSink = nil
	d.releaseStalledLocked()
}

// SetLatency injects a seeded uniform per-op latency in [min, max] on
// every read and write. The delay is delivered to sink rather than slept:
// simulated worlds pass their virtual clock's Advance, unit tests pass a
// recorder. A nil sink (or max <= 0) turns injection off — there is
// deliberately no wall-clock default.
func (d *FaultyDisk) SetLatency(min, max time.Duration, seed int64, sink func(time.Duration)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if sink == nil || max <= 0 {
		d.latSink = nil
		return
	}
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	d.latMin, d.latMax = min, max
	d.latRng = rand.New(rand.NewSource(seed))
	d.latSink = sink
}

// nextLatency draws the next injected delay (0 when injection is off)
// and the sink to deliver it to. Drawn under mu so concurrent ops see a
// deterministic sequence for a given seed and arrival order.
func (d *FaultyDisk) nextLatency() (time.Duration, func(time.Duration)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.latSink == nil {
		return 0, nil
	}
	lat := d.latMin
	if span := d.latMax - d.latMin; span > 0 {
		lat += time.Duration(d.latRng.Int63n(int64(span) + 1))
	}
	return lat, d.latSink
}

// StallNextReads makes the next n reads park indefinitely — the
// never-completes gray failure. Parked reads hold no locks; they resume
// (and then run normally) when ReleaseStalled or Heal is called, so a
// stuck disk can always be un-stuck before shutdown.
func (d *FaultyDisk) StallNextReads(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stallReads = n
	if d.stallGate == nil {
		d.stallGate = make(chan struct{})
	}
}

// ReleaseStalled wakes every currently-parked read and stops capturing
// new ones.
func (d *FaultyDisk) ReleaseStalled() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.releaseStalledLocked()
}

func (d *FaultyDisk) releaseStalledLocked() {
	d.stallReads = 0
	if d.stallGate != nil {
		close(d.stallGate)
		d.stallGate = nil
	}
}

// WaitStalled blocks until at least n reads are parked on the stall
// gate. Tests use it to know the victim operation is truly stuck before
// asserting what happens around it.
func (d *FaultyDisk) WaitStalled(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stallCond == nil {
		d.stallCond = sync.NewCond(&d.mu)
	}
	for d.stalledNow < n {
		d.stallCond.Wait()
	}
}

// maybeStall parks the calling read if a stall is armed. Returns after
// the gate opens (or immediately if no stall applies).
func (d *FaultyDisk) maybeStall() {
	d.mu.Lock()
	if d.stallReads <= 0 {
		d.mu.Unlock()
		return
	}
	d.stallReads--
	gate := d.stallGate
	d.stalledNow++
	if d.stallCond != nil {
		d.stallCond.Broadcast()
	}
	d.mu.Unlock()
	<-gate
	d.mu.Lock()
	d.stalledNow--
	d.mu.Unlock()
}

// CorruptNextReads makes the next n reads succeed but return data with one
// byte flipped — silent corruption, the failure mode checksums exist for.
// The stored bytes are untouched; only the returned copy lies.
func (d *FaultyDisk) CorruptNextReads(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.corruptReads = n
}

// CorruptNextWrites makes the next n writes succeed but persist one
// flipped byte — a firmware that acknowledges data it never stored
// correctly. Reads then return the corrupt stored bytes indefinitely.
func (d *FaultyDisk) CorruptNextWrites(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.corruptWrite = n
}

// flipByte corrupts one mid-buffer byte. XOR with 0xFF guarantees the
// byte changes, so a corruption is never a silent no-op.
func flipByte(p []byte) {
	if len(p) > 0 {
		p[len(p)/2] ^= 0xFF
	}
}

// Faulted reports whether the device is currently dead.
func (d *FaultyDisk) Faulted() bool { return d.faulted.Load() }

// FailAfterWrites arranges for the device to die after n more successful
// writes (the n+1st write fails).
func (d *FaultyDisk) FailAfterWrites(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWriteIn = n + 1
}

// TearNextWrite makes the next write persist only its first half and then
// fault the device, simulating a torn sector write during power loss.
func (d *FaultyDisk) TearNextWrite() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tornNext = true
}

// BlockSize returns the wrapped device's sector size.
func (d *FaultyDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks returns the wrapped device's capacity.
func (d *FaultyDisk) Blocks() int64 { return d.dev.Blocks() }

// ReadAt implements Device.
func (d *FaultyDisk) ReadAt(p []byte, off int64) error {
	d.maybeStall()
	if d.faulted.Load() {
		return ErrFaulted
	}
	if lat, sink := d.nextLatency(); sink != nil {
		sink(lat)
	}
	if err := d.dev.ReadAt(p, off); err != nil {
		return err
	}
	d.mu.Lock()
	corrupt := d.corruptReads > 0
	if corrupt {
		d.corruptReads--
	}
	d.mu.Unlock()
	if corrupt {
		flipByte(p)
	}
	return nil
}

// WriteAt implements Device.
func (d *FaultyDisk) WriteAt(p []byte, off int64) error {
	if d.faulted.Load() {
		return ErrFaulted
	}
	if lat, sink := d.nextLatency(); sink != nil {
		sink(lat)
	}
	d.mu.Lock()
	torn := d.tornNext
	d.tornNext = false
	corrupt := d.corruptWrite > 0
	if corrupt {
		d.corruptWrite--
	}
	if d.failWriteIn > 0 {
		d.failWriteIn--
		if d.failWriteIn == 0 {
			d.mu.Unlock()
			d.faulted.Store(true)
			return ErrFaulted
		}
	}
	d.mu.Unlock()

	if corrupt {
		bad := make([]byte, len(p))
		copy(bad, p)
		flipByte(bad)
		p = bad
	}
	if torn {
		half := p[:len(p)/2]
		err := d.dev.WriteAt(half, off)
		d.faulted.Store(true)
		if err != nil {
			return err
		}
		return ErrFaulted
	}
	return d.dev.WriteAt(p, off)
}

// Sync implements Device.
func (d *FaultyDisk) Sync() error {
	if d.faulted.Load() {
		return ErrFaulted
	}
	return d.dev.Sync()
}

// Close implements Device.
func (d *FaultyDisk) Close() error { return d.dev.Close() }
