package disk

import (
	"sync"
	"sync/atomic"
)

// FaultyDisk wraps a Device with failure injection for recovery and
// replication tests. A faulted device fails every subsequent operation with
// ErrFaulted, like a drive that has died (paper §3: "If the main disk
// fails, the file server can proceed uninterruptedly by using the other
// disk").
type FaultyDisk struct {
	dev     Device
	faulted atomic.Bool

	mu           sync.Mutex
	failWriteIn  int64 // guarded by mu; fail (and fault) after this many more writes; 0 = off
	tornNext     bool  // guarded by mu; next write stores only the first half, then faults
	corruptReads int64 // guarded by mu; silently flip a byte in this many more reads
	corruptWrite int64 // guarded by mu; silently flip a byte in this many more writes
}

var _ Device = (*FaultyDisk)(nil)

// NewFaulty wraps dev with failure injection, initially healthy.
func NewFaulty(dev Device) *FaultyDisk { return &FaultyDisk{dev: dev} }

// Fault kills the device immediately.
func (d *FaultyDisk) Fault() { d.faulted.Store(true) }

// Heal revives the device (for repair-and-recover tests). The underlying
// contents are whatever they were when it faulted.
func (d *FaultyDisk) Heal() {
	d.faulted.Store(false)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWriteIn = 0
	d.tornNext = false
	d.corruptReads = 0
	d.corruptWrite = 0
}

// CorruptNextReads makes the next n reads succeed but return data with one
// byte flipped — silent corruption, the failure mode checksums exist for.
// The stored bytes are untouched; only the returned copy lies.
func (d *FaultyDisk) CorruptNextReads(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.corruptReads = n
}

// CorruptNextWrites makes the next n writes succeed but persist one
// flipped byte — a firmware that acknowledges data it never stored
// correctly. Reads then return the corrupt stored bytes indefinitely.
func (d *FaultyDisk) CorruptNextWrites(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.corruptWrite = n
}

// flipByte corrupts one mid-buffer byte. XOR with 0xFF guarantees the
// byte changes, so a corruption is never a silent no-op.
func flipByte(p []byte) {
	if len(p) > 0 {
		p[len(p)/2] ^= 0xFF
	}
}

// Faulted reports whether the device is currently dead.
func (d *FaultyDisk) Faulted() bool { return d.faulted.Load() }

// FailAfterWrites arranges for the device to die after n more successful
// writes (the n+1st write fails).
func (d *FaultyDisk) FailAfterWrites(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWriteIn = n + 1
}

// TearNextWrite makes the next write persist only its first half and then
// fault the device, simulating a torn sector write during power loss.
func (d *FaultyDisk) TearNextWrite() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tornNext = true
}

// BlockSize returns the wrapped device's sector size.
func (d *FaultyDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks returns the wrapped device's capacity.
func (d *FaultyDisk) Blocks() int64 { return d.dev.Blocks() }

// ReadAt implements Device.
func (d *FaultyDisk) ReadAt(p []byte, off int64) error {
	if d.faulted.Load() {
		return ErrFaulted
	}
	if err := d.dev.ReadAt(p, off); err != nil {
		return err
	}
	d.mu.Lock()
	corrupt := d.corruptReads > 0
	if corrupt {
		d.corruptReads--
	}
	d.mu.Unlock()
	if corrupt {
		flipByte(p)
	}
	return nil
}

// WriteAt implements Device.
func (d *FaultyDisk) WriteAt(p []byte, off int64) error {
	if d.faulted.Load() {
		return ErrFaulted
	}
	d.mu.Lock()
	torn := d.tornNext
	d.tornNext = false
	corrupt := d.corruptWrite > 0
	if corrupt {
		d.corruptWrite--
	}
	if d.failWriteIn > 0 {
		d.failWriteIn--
		if d.failWriteIn == 0 {
			d.mu.Unlock()
			d.faulted.Store(true)
			return ErrFaulted
		}
	}
	d.mu.Unlock()

	if corrupt {
		bad := make([]byte, len(p))
		copy(bad, p)
		flipByte(bad)
		p = bad
	}
	if torn {
		half := p[:len(p)/2]
		err := d.dev.WriteAt(half, off)
		d.faulted.Store(true)
		if err != nil {
			return err
		}
		return ErrFaulted
	}
	return d.dev.WriteAt(p, off)
}

// Sync implements Device.
func (d *FaultyDisk) Sync() error {
	if d.faulted.Load() {
		return ErrFaulted
	}
	return d.dev.Sync()
}

// Close implements Device.
func (d *FaultyDisk) Close() error { return d.dev.Close() }
