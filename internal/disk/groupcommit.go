package disk

import (
	"sync"
	"sync/atomic"
	"time"

	"bulletfs/internal/stats"
)

// GroupCommitter batches concurrent small writes into shared replica
// round-trips. Each engine create normally costs its own ApplyNotify
// fan-out — one goroutine launch and one quorum wait per replica per
// file — so N concurrent small creates pay N sync round-trips even
// though each replica could absorb all N data writes plus one combined
// metadata write in a single pass. The committer queues entries for up
// to a flush window (or a batch-size cap, whichever trips first) and
// then runs the whole batch as ONE ApplyNotify: per replica, every
// entry's op in sequence, then a caller-supplied epilogue that writes
// the batch's combined metadata (the engine re-encodes each dirty inode
// block exactly once, however many creates share it).
//
// Durability trades exactly like classic database group commit: an
// entry's quorum wait covers the whole batch, so a caller that asked
// for P-FACTOR k still returns only after k replicas hold its bytes —
// it just may also wait for its batch-mates. Queued entries are NOT yet
// registered with the replica set's drain tracker; anything that relies
// on Drain for quiescence (delete, compaction, recovery hand-off) must
// call Flush first. The engine does this at every Drain site.
type GroupCommitter struct {
	rs       *ReplicaSet
	window   time.Duration
	maxBatch int
	epilogue func(i int, dev Device, tags []uint32) error

	mu    sync.Mutex
	queue []queuedEntry // guarded by mu
	timer *time.Timer   // guarded by mu; armed while queue is non-empty

	// flushMu serializes flushes so two batches never interleave their
	// ApplyNotify calls (ordering per submitter is preserved).
	flushMu sync.Mutex

	batches atomic.Int64 // flushes that carried at least one entry
	entries atomic.Int64 // entries committed across all batches
	forced  atomic.Int64 // flushes tripped by the batch-size cap
}

// GroupEntry is one write in a batch.
type GroupEntry struct {
	// SyncN is the entry's P-FACTOR; the batch waits for the maximum
	// across its entries, so no entry gets less durability than it asked
	// for.
	SyncN int
	// Tag identifies the entry to the epilogue (the engine passes the
	// inode number, so the epilogue can write each dirty inode block
	// once).
	Tag uint32
	// Op writes the entry's data on one replica. Like ApplyNotify ops it
	// runs concurrently across replicas and must touch only caller-owned
	// state plus the device.
	Op func(i int, dev Device) error
	// OnSettled, when non-nil, runs after every replica has finished the
	// whole batch (the ApplyNotify settle hook, demultiplexed).
	OnSettled func()
}

type queuedEntry struct {
	GroupEntry
	done chan error
}

// NewGroupCommitter builds a committer over rs. window is how long the
// first queued entry may wait for batch-mates; maxBatch (<= 0 means 64)
// flushes early when the queue fills. epilogue (may be nil) runs once
// per replica per batch, after every entry's op, with the batch's tags.
func NewGroupCommitter(rs *ReplicaSet, window time.Duration, maxBatch int, epilogue func(i int, dev Device, tags []uint32) error) *GroupCommitter {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	return &GroupCommitter{rs: rs, window: window, maxBatch: maxBatch, epilogue: epilogue}
}

// Submit queues one entry and returns the channel its commit result will
// arrive on (buffered; the flush never blocks on a slow consumer). The
// entry commits when the flush window elapses, the batch fills, or
// someone calls Flush — whichever happens first.
func (g *GroupCommitter) Submit(e GroupEntry) <-chan error {
	done := make(chan error, 1)
	g.mu.Lock()
	g.queue = append(g.queue, queuedEntry{GroupEntry: e, done: done})
	full := len(g.queue) >= g.maxBatch
	if len(g.queue) == 1 && !full {
		g.timer = time.AfterFunc(g.window, func() { g.Flush() })
	}
	g.mu.Unlock()
	if full {
		g.forced.Add(1)
		g.Flush()
	}
	return done
}

// Flush commits every queued entry in one replica round-trip. It returns
// after the batch's writes are registered with the replica set's drain
// tracker and the batch's quorum wait is over — so Flush followed by
// rs.Drain() observes full quiescence. Safe to call with an empty queue.
func (g *GroupCommitter) Flush() error {
	g.flushMu.Lock()
	defer g.flushMu.Unlock()
	g.mu.Lock()
	batch := g.queue
	g.queue = nil
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	g.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}

	syncN := 0
	tags := make([]uint32, len(batch))
	for k, e := range batch {
		if e.SyncN > syncN {
			syncN = e.SyncN
		}
		tags[k] = e.Tag
	}
	op := func(i int, dev Device) error {
		for _, e := range batch {
			if err := e.Op(i, dev); err != nil {
				return err
			}
		}
		if g.epilogue != nil {
			return g.epilogue(i, dev, tags)
		}
		return nil
	}
	settle := func() {
		for _, e := range batch {
			if e.OnSettled != nil {
				e.OnSettled()
			}
		}
	}
	err := g.rs.ApplyNotify(syncN, op, settle)
	g.batches.Add(1)
	g.entries.Add(int64(len(batch)))
	for _, e := range batch {
		e.done <- err
	}
	return err
}

// Batches returns how many non-empty batches have committed.
func (g *GroupCommitter) Batches() int64 { return g.batches.Load() }

// Entries returns how many entries have committed across all batches.
func (g *GroupCommitter) Entries() int64 { return g.entries.Load() }

// Forced returns how many flushes were tripped by the batch-size cap.
func (g *GroupCommitter) Forced() int64 { return g.forced.Load() }

// Queued returns how many entries are currently waiting for a flush.
func (g *GroupCommitter) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queue)
}

// AttachMetrics registers the committer's gauges under "disk.".
func (g *GroupCommitter) AttachMetrics(r *stats.Registry) {
	r.GaugeFunc("disk.group_commit_batches", g.batches.Load)
	r.GaugeFunc("disk.group_commit_entries", g.entries.Load)
	r.GaugeFunc("disk.group_commit_forced", g.forced.Load)
	r.GaugeFunc("disk.group_commit_queued", func() int64 { return int64(g.Queued()) })
}
