package disk

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newGCSet(t *testing.T) *ReplicaSet {
	t.Helper()
	devs := make([]Device, 2)
	for i := range devs {
		mem, err := NewMem(512, 1024)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	rs, err := NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	return rs
}

func TestGroupCommitBatchesConcurrentSubmits(t *testing.T) {
	rs := newGCSet(t)
	var epilogues atomic.Int64
	var epilogueTags atomic.Int64
	g := NewGroupCommitter(rs, time.Hour, 8, func(i int, dev Device, tags []uint32) error {
		epilogues.Add(1)
		epilogueTags.Store(int64(len(tags)))
		return nil
	})

	// 8 concurrent submits with a far-future window: the batch-size cap
	// flushes them as one forced batch.
	var ops atomic.Int64
	var settled atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			done := g.Submit(GroupEntry{
				SyncN: 1,
				Tag:   uint32(k),
				Op: func(i int, dev Device) error {
					ops.Add(1)
					return dev.WriteAt([]byte{byte(k)}, int64(k)*512)
				},
				OnSettled: func() { settled.Add(1) },
			})
			if err := <-done; err != nil {
				t.Errorf("entry %d: %v", k, err)
			}
		}(k)
	}
	wg.Wait()
	rs.Drain()

	if got := g.Batches(); got != 1 {
		t.Fatalf("Batches = %d, want 1 (all 8 submits share one round-trip)", got)
	}
	if got := g.Entries(); got != 8 {
		t.Fatalf("Entries = %d, want 8", got)
	}
	if got := g.Forced(); got != 1 {
		t.Fatalf("Forced = %d, want 1", got)
	}
	if got := ops.Load(); got != 8*int64(rs.N()) {
		t.Fatalf("ops ran %d times, want %d (8 entries x %d replicas)", got, 8*rs.N(), rs.N())
	}
	if got := settled.Load(); got != 8 {
		t.Fatalf("OnSettled ran %d times, want 8", got)
	}
	// The epilogue ran once per replica with the full batch's tags.
	if got := epilogues.Load(); got != int64(rs.N()) {
		t.Fatalf("epilogue ran %d times, want %d", got, rs.N())
	}
	if got := epilogueTags.Load(); got != 8 {
		t.Fatalf("epilogue saw %d tags, want 8", got)
	}
}

func TestGroupCommitWindowFlush(t *testing.T) {
	rs := newGCSet(t)
	g := NewGroupCommitter(rs, time.Millisecond, 64, nil)
	done := g.Submit(GroupEntry{SyncN: 1, Op: func(i int, dev Device) error {
		return dev.WriteAt([]byte("w"), 0)
	}})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("window flush never fired")
	}
	if g.Batches() != 1 || g.Forced() != 0 {
		t.Fatalf("Batches = %d, Forced = %d; want a single timer-driven batch", g.Batches(), g.Forced())
	}
}

func TestGroupCommitExplicitFlushBeforeDrain(t *testing.T) {
	rs := newGCSet(t)
	g := NewGroupCommitter(rs, time.Hour, 64, nil)
	var wrote atomic.Bool
	done := g.Submit(GroupEntry{SyncN: 0, Op: func(i int, dev Device) error {
		wrote.Store(true)
		return dev.WriteAt([]byte("q"), 0)
	}})
	// Queued entries are invisible to Drain: without a Flush the write has
	// not even started.
	rs.Drain()
	if wrote.Load() {
		t.Fatal("queued entry ran before Flush")
	}
	if g.Queued() != 1 {
		t.Fatalf("Queued = %d, want 1", g.Queued())
	}
	if err := g.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rs.Drain() // Flush + Drain = full quiescence
	if !wrote.Load() {
		t.Fatal("entry did not run after Flush + Drain")
	}
	if err := <-done; err != nil {
		t.Fatalf("commit: %v", err)
	}
	// Idempotent on an empty queue.
	if err := g.Flush(); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
}

func TestGroupCommitErrorFansOutToWholeBatch(t *testing.T) {
	rs := newGCSet(t)
	bad := fmt.Errorf("replica exploded")
	g := NewGroupCommitter(rs, time.Hour, 2, nil)
	mkEntry := func() GroupEntry {
		return GroupEntry{SyncN: rs.N(), Op: func(i int, dev Device) error { return bad }}
	}
	d1 := g.Submit(mkEntry())
	d2 := g.Submit(mkEntry()) // fills the batch, forces the flush
	for i, d := range []<-chan error{d1, d2} {
		select {
		case err := <-d:
			if err == nil {
				t.Fatalf("entry %d: nil error, want the batch failure", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("entry %d never settled", i)
		}
	}
}
