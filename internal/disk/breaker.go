package disk

// Gray-failure tolerance for the replica set. The paper's failure model
// is fail-stop: a disk is either correct or dead (§3, the dual-disk
// mirror). Real disks also go *gray* — they keep answering, just orders
// of magnitude more slowly — and a fail-stop reader behind a gray main
// turns every read into a stall. This file adds the three mechanisms
// that bound the damage, all off by default (EnableBreakers) and all
// driven by injectable clocks so tests never sleep:
//
//   - Per-replica health scoring: an EWMA of observed read latency per
//     replica, fed by every attempt — including abandoned hedges, so a
//     replica the ladder routes around still accumulates evidence.
//   - Circuit breakers: a replica whose reads are persistently slow
//     relative to its fastest peer trips open and is read only as a
//     last resort; after a cooldown it half-opens and one probe read
//     decides whether it closes again.
//   - Hedged reads: when the preferred replica is slow — predicted by
//     EWMA ranking, or detected in flight by a timer — the read is
//     issued to a second replica and the first response wins. Hedges
//     are capped at a hard percentage of reads so a misbehaving
//     heuristic can at worst double a small fraction of read load.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Breaker states. Closed is the zero value: a fresh replica is trusted.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName renders a breaker state for health reports.
func breakerStateName(s int32) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one replica's health score and circuit state. All fields
// are atomics: observations arrive from read-attempt goroutines
// (including abandoned hedge losers) while the ladder reads them
// lock-free.
type breaker struct {
	state    atomic.Int32 // breakerClosed / breakerOpen / breakerHalfOpen
	ewmaNs   atomic.Int64 // smoothed read latency; 0 = no observation yet
	openedAt atomic.Int64 // clock nanos when the breaker last opened
	streak   atomic.Int32 // consecutive slow-or-failed reads while closed
}

// DefaultSlowStreak is how many consecutive slow reads open a breaker.
const DefaultSlowStreak = 3

// DefaultHedgeRatePct is the hard cap on hedged reads as a percentage
// of laddered reads.
const DefaultHedgeRatePct = 5

// BreakerConfig configures gray-failure handling for a ReplicaSet. The
// zero value of any field gets a sane default; the two clock hooks make
// the whole mechanism virtual-time friendly.
type BreakerConfig struct {
	// SlowFactor: a read is "slow" when it exceeds SlowFactor times the
	// fastest peer's EWMA (default 8). The comparison is relative so a
	// uniformly slow medium (every replica equally loaded) never trips.
	SlowFactor int64
	// MinSlow is the absolute floor below which no read counts as slow,
	// whatever the peers look like (default 50ms). Keeps cache-warm
	// microsecond EWMAs from branding a normal disk read as gray.
	MinSlow time.Duration
	// SlowStreak consecutive slow reads open the breaker (default
	// DefaultSlowStreak). A streak, not a rate: one hiccup is weather.
	SlowStreak int
	// Cooldown is how long an open breaker waits before half-opening
	// for a probe read (default 5s).
	Cooldown time.Duration
	// HedgeDelayMin/Max clamp the hedge delay derived from the observed
	// read-latency p99 (defaults 10ms / 500ms).
	HedgeDelayMin time.Duration
	HedgeDelayMax time.Duration
	// HedgeRatePct is the hard hedge-rate cap in percent of laddered
	// reads (default DefaultHedgeRatePct). Both predictive and timer
	// hedges count against it.
	HedgeRatePct int64
	// Now supplies nanoseconds for EWMA timing and cooldowns; nil means
	// wall clock. Simulated worlds pass their virtual clock.
	Now func() int64
	// After arms the in-flight hedge timer; nil means time.After. A
	// hook that returns a nil channel disables timer hedging entirely —
	// the right choice for discrete-event worlds, where predictive
	// (EWMA-ranked) hedging does the work deterministically.
	After func(time.Duration) <-chan time.Time
}

// grayConfig is BreakerConfig with defaults resolved, stored behind an
// atomic pointer so the read path branches on one load.
type grayConfig struct {
	slowFactor int64
	minSlowNs  int64
	slowStreak int32
	cooldownNs int64
	hedgeMinNs int64
	hedgeMaxNs int64
	hedgePct   int64
	now        func() int64
	after      func(time.Duration) <-chan time.Time
}

// EnableBreakers turns on per-replica health scoring, circuit breaking
// and hedged reads. Until it is called the read path is byte-for-byte
// the fail-stop ladder. Call before serving; re-configuring a live set
// is safe (the pointer swap is atomic) but resets no breaker state.
func (s *ReplicaSet) EnableBreakers(cfg BreakerConfig) {
	g := &grayConfig{
		slowFactor: cfg.SlowFactor,
		minSlowNs:  int64(cfg.MinSlow),
		slowStreak: int32(cfg.SlowStreak),
		cooldownNs: int64(cfg.Cooldown),
		hedgeMinNs: int64(cfg.HedgeDelayMin),
		hedgeMaxNs: int64(cfg.HedgeDelayMax),
		hedgePct:   cfg.HedgeRatePct,
		now:        cfg.Now,
		after:      cfg.After,
	}
	if g.slowFactor <= 0 {
		g.slowFactor = 8
	}
	if g.minSlowNs <= 0 {
		g.minSlowNs = int64(50 * time.Millisecond)
	}
	if g.slowStreak <= 0 {
		g.slowStreak = DefaultSlowStreak
	}
	if g.cooldownNs <= 0 {
		g.cooldownNs = int64(5 * time.Second)
	}
	if g.hedgeMinNs <= 0 {
		g.hedgeMinNs = int64(10 * time.Millisecond)
	}
	if g.hedgeMaxNs <= g.hedgeMinNs {
		g.hedgeMaxNs = int64(500 * time.Millisecond)
		if g.hedgeMaxNs < g.hedgeMinNs {
			g.hedgeMaxNs = g.hedgeMinNs
		}
	}
	if g.hedgePct <= 0 {
		g.hedgePct = DefaultHedgeRatePct
	}
	if g.now == nil {
		g.now = func() int64 { return time.Now().UnixNano() }
	}
	if g.after == nil {
		g.after = time.After
	}
	s.gray.Store(g)
}

// BreakersEnabled reports whether gray-failure handling is on.
func (s *ReplicaSet) BreakersEnabled() bool { return s.gray.Load() != nil }

// observeRead feeds one read attempt's outcome into replica i's health
// score and breaker. Runs on the attempt goroutine — abandoned hedge
// losers still report, which is what lets the breaker open on a replica
// the ladder has already learned to avoid. Atomics only; no locks.
func (s *ReplicaSet) observeRead(g *grayConfig, i int, dur time.Duration, failed bool) {
	b := &s.brk[i]
	ns := int64(dur)
	if ns < 1 {
		ns = 1
	}
	old := b.ewmaNs.Load()
	if old == 0 {
		b.ewmaNs.Store(ns)
	} else {
		b.ewmaNs.Store((7*old + ns) / 8)
	}
	s.readHist.Observe(ns)

	slow := failed || ns >= s.slowThreshold(g, i)
	switch b.state.Load() {
	case breakerClosed:
		if !slow {
			b.streak.Store(0)
			return
		}
		if b.streak.Add(1) >= g.slowStreak {
			if b.state.CompareAndSwap(breakerClosed, breakerOpen) {
				b.openedAt.Store(g.now())
				b.streak.Store(0)
				s.breakerOpens.Inc()
			}
		}
	case breakerHalfOpen:
		// The probe's verdict: one good read closes, one bad re-opens.
		if slow {
			if b.state.CompareAndSwap(breakerHalfOpen, breakerOpen) {
				b.openedAt.Store(g.now())
				s.breakerOpens.Inc()
			}
		} else if b.state.CompareAndSwap(breakerHalfOpen, breakerClosed) {
			b.streak.Store(0)
			s.breakerCloses.Inc()
		}
	}
}

// slowThreshold is the latency above which a read on replica i counts
// as slow: SlowFactor times the fastest *other* replica's EWMA, floored
// at MinSlow. Relative to peers so a uniformly loaded set never trips.
func (s *ReplicaSet) slowThreshold(g *grayConfig, i int) int64 {
	best := int64(0)
	for j := range s.brk {
		if j == i {
			continue
		}
		if e := s.brk[j].ewmaNs.Load(); e > 0 && (best == 0 || e < best) {
			best = e
		}
	}
	thr := g.minSlowNs
	if best > 0 && best*g.slowFactor > thr {
		thr = best * g.slowFactor
	}
	return thr
}

// grayOrder builds the read ladder under gray-failure rules: any
// half-open replica first (its probe read is the point of half-open),
// then closed replicas — fastest EWMA first, with the main winning
// unless a peer is at least twice as fast — and open-breaker replicas
// dead last, kept only so a read can still succeed when everything
// healthy has failed. Open breakers whose cooldown has passed are
// flipped half-open here (CAS; one winner per transition).
func (s *ReplicaSet) grayOrder(g *grayConfig, main int, aliveMask uint64) []int {
	now := g.now()
	var half, closed, open []int
	for i := range s.devs {
		if aliveMask&(1<<uint(i)) == 0 {
			continue
		}
		b := &s.brk[i]
		st := b.state.Load()
		if st == breakerOpen && now-b.openedAt.Load() >= g.cooldownNs {
			if b.state.CompareAndSwap(breakerOpen, breakerHalfOpen) {
				s.breakerProbes.Inc()
			}
			st = b.state.Load()
		}
		switch st {
		case breakerHalfOpen:
			half = append(half, i)
		case breakerOpen:
			open = append(open, i)
		default:
			closed = append(closed, i)
		}
	}
	// Closed ranking: keep the paper's main-first order (sequential
	// locality on the main spindle) unless a peer's EWMA is less than
	// half the main's — a demotion that readGray accounts as a
	// predictive hedge, subject to the cap.
	sort.SliceStable(closed, func(a, b int) bool {
		ia, ib := closed[a], closed[b]
		ea, eb := s.brk[ia].ewmaNs.Load(), s.brk[ib].ewmaNs.Load()
		if ea > 0 && eb > 0 && (ea*2 < eb || eb*2 < ea) {
			return ea < eb
		}
		if (ia == main) != (ib == main) {
			return ia == main
		}
		return ia < ib
	})
	order := make([]int, 0, len(half)+len(closed)+len(open))
	order = append(order, half...)
	order = append(order, closed...)
	order = append(order, open...)
	return order
}

// allowHedge applies the hard hedge-rate cap: granting this hedge must
// keep hedges within hedgePct percent of laddered reads. The +1 makes
// the check conservative from the first read — at 5%, no hedge is
// granted until twenty reads have been served.
func (s *ReplicaSet) allowHedge(g *grayConfig) bool {
	return (s.hedgedReads.Load()+1)*100 <= s.grayLadderReads.Load()*g.hedgePct
}

// hedgeDelay derives the in-flight hedge timer from the observed
// read-latency p99, clamped to the configured window. Before enough
// observations exist the delay sits at the clamp maximum — hedging
// starts conservative and tightens as evidence accumulates.
func (s *ReplicaSet) hedgeDelay(g *grayConfig) time.Duration {
	p99 := int64(s.readHist.Snapshot().Quantile(0.99))
	if p99 <= 0 {
		return time.Duration(g.hedgeMaxNs)
	}
	if p99 < g.hedgeMinNs {
		p99 = g.hedgeMinNs
	}
	if p99 > g.hedgeMaxNs {
		p99 = g.hedgeMaxNs
	}
	return time.Duration(p99)
}

// beginRead registers one in-flight read attempt with the read drain
// tracker (see DrainReads).
func (s *ReplicaSet) beginRead() {
	s.readMu.Lock()
	if s.readCond == nil {
		s.readCond = sync.NewCond(&s.readMu)
	}
	s.pendingReads++
	s.readMu.Unlock()
}

// endRead retires one in-flight read attempt.
func (s *ReplicaSet) endRead() {
	s.readMu.Lock()
	s.pendingReads--
	if s.pendingReads == 0 && s.readCond != nil {
		s.readCond.Broadcast()
	}
	s.readMu.Unlock()
}

// DrainReads blocks until no hedged-read attempt is in flight. Tests
// use it to assert loser bookkeeping. Close deliberately does NOT wait
// on reads: a read stuck on a gray device must not hang shutdown — the
// abandoned attempt writes only to its private buffer.
func (s *ReplicaSet) DrainReads() {
	s.readMu.Lock()
	for s.pendingReads > 0 {
		if s.readCond == nil {
			s.readCond = sync.NewCond(&s.readMu)
		}
		s.readCond.Wait()
	}
	s.readMu.Unlock()
}
