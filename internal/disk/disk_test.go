package disk

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"bulletfs/internal/stats"
)

func newMem(t *testing.T, blockSize int, blocks int64) *MemDisk {
	t.Helper()
	d, err := NewMem(blockSize, blocks)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	return d
}

func TestMemReadWriteRoundTrip(t *testing.T) {
	d := newMem(t, 512, 16)
	in := []byte("the bullet server stores files contiguously")
	if err := d.WriteAt(in, 1000); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	out := make([]byte, len(in))
	if err := d.ReadAt(out, 1000); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("read back %q, want %q", out, in)
	}
}

func TestMemGeometry(t *testing.T) {
	d := newMem(t, 512, 16)
	if d.BlockSize() != 512 || d.Blocks() != 16 {
		t.Fatalf("geometry = %dx%d, want 512x16", d.BlockSize(), d.Blocks())
	}
	if _, err := NewMem(0, 16); err == nil {
		t.Fatal("NewMem(0, 16) succeeded")
	}
	if _, err := NewMem(512, 0); err == nil {
		t.Fatal("NewMem(512, 0) succeeded")
	}
}

func TestMemOutOfRange(t *testing.T) {
	d := newMem(t, 512, 2)
	buf := make([]byte, 512)
	if err := d.ReadAt(buf, 600); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadAt past end err = %v, want ErrOutOfRange", err)
	}
	if err := d.WriteAt(buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("WriteAt(-1) err = %v, want ErrOutOfRange", err)
	}
	// Exactly at the end is fine.
	if err := d.WriteAt(buf, 512); err != nil {
		t.Fatalf("WriteAt(last block): %v", err)
	}
}

func TestMemClosed(t *testing.T) {
	d := newMem(t, 512, 2)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	buf := make([]byte, 1)
	if err := d.ReadAt(buf, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadAt after close err = %v, want ErrClosed", err)
	}
	if err := d.WriteAt(buf, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteAt after close err = %v, want ErrClosed", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close err = %v, want ErrClosed", err)
	}
}

func TestMemSnapshotIsCopy(t *testing.T) {
	d := newMem(t, 512, 2)
	if err := d.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	snap := d.Snapshot()
	snap[0] = 99
	out := make([]byte, 1)
	if err := d.ReadAt(out, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if out[0] != 1 {
		t.Fatal("mutating the snapshot changed the device")
	}
}

func TestFileDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk0.img")
	d, err := CreateFile(path, 512, 32)
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	in := []byte("durable bytes")
	if err := d.WriteAt(in, 2048); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := OpenFile(path, 512)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer d2.Close()
	if d2.Blocks() != 32 {
		t.Fatalf("reopened blocks = %d, want 32", d2.Blocks())
	}
	out := make([]byte, len(in))
	if err := d2.ReadAt(out, 2048); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("read back %q, want %q", out, in)
	}
}

func TestFileDiskErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "missing.img"), 512); err == nil {
		t.Fatal("OpenFile(missing) succeeded")
	}
	if _, err := CreateFile(filepath.Join(dir, "bad.img"), 0, 1); err == nil {
		t.Fatal("CreateFile with zero block size succeeded")
	}
	d, err := CreateFile(filepath.Join(dir, "d.img"), 512, 4)
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	defer d.Close()
	if err := d.ReadAt(make([]byte, 513), 512*3+511); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadAt out of range err = %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close err = %v, want ErrClosed", err)
	}
}

func TestFaultyDiskFault(t *testing.T) {
	d := NewFaulty(newMem(t, 512, 4))
	buf := make([]byte, 16)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	d.Fault()
	if !d.Faulted() {
		t.Fatal("Faulted() false after Fault()")
	}
	if err := d.ReadAt(buf, 0); !errors.Is(err, ErrFaulted) {
		t.Fatalf("read on faulted disk err = %v, want ErrFaulted", err)
	}
	if err := d.WriteAt(buf, 0); !errors.Is(err, ErrFaulted) {
		t.Fatalf("write on faulted disk err = %v, want ErrFaulted", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrFaulted) {
		t.Fatalf("sync on faulted disk err = %v, want ErrFaulted", err)
	}
	d.Heal()
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestFaultyDiskFailAfterWrites(t *testing.T) {
	d := NewFaulty(newMem(t, 512, 4))
	d.FailAfterWrites(2)
	buf := make([]byte, 8)
	for i := 0; i < 2; i++ {
		if err := d.WriteAt(buf, int64(i*8)); err != nil {
			t.Fatalf("write %d should succeed: %v", i, err)
		}
	}
	if err := d.WriteAt(buf, 16); !errors.Is(err, ErrFaulted) {
		t.Fatalf("third write err = %v, want ErrFaulted", err)
	}
	if !d.Faulted() {
		t.Fatal("disk not faulted after scheduled failure")
	}
}

func TestFaultyDiskTornWrite(t *testing.T) {
	mem := newMem(t, 512, 4)
	d := NewFaulty(mem)
	full := bytes.Repeat([]byte{0xAB}, 64)
	d.TearNextWrite()
	if err := d.WriteAt(full, 0); !errors.Is(err, ErrFaulted) {
		t.Fatalf("torn write err = %v, want ErrFaulted", err)
	}
	out := make([]byte, 64)
	if err := mem.ReadAt(out, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(out[:32], full[:32]) {
		t.Fatal("first half of torn write not persisted")
	}
	if bytes.Equal(out[32:], full[32:]) {
		t.Fatal("second half of torn write persisted; want torn")
	}
}

func newSet(t *testing.T, n int) (*ReplicaSet, []*FaultyDisk) {
	t.Helper()
	devs := make([]Device, n)
	faulty := make([]*FaultyDisk, n)
	for i := range devs {
		faulty[i] = NewFaulty(newMem(t, 512, 64))
		devs[i] = faulty[i]
	}
	s, err := NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	return s, faulty
}

func writeAll(t *testing.T, s *ReplicaSet, p []byte, off int64) {
	t.Helper()
	err := s.Apply(s.N(), func(_ int, dev Device) error {
		return dev.WriteAt(p, off)
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
}

func TestReplicaSetGeometryMismatch(t *testing.T) {
	a := newMem(t, 512, 64)
	b := newMem(t, 1024, 64)
	if _, err := NewReplicaSet(a, b); err == nil {
		t.Fatal("mismatched geometry accepted")
	}
	if _, err := NewReplicaSet(); err == nil {
		t.Fatal("empty replica set accepted")
	}
}

func TestReplicaSetWriteAllReadBack(t *testing.T) {
	s, _ := newSet(t, 2)
	in := []byte("replicated")
	writeAll(t, s, in, 100)
	out := make([]byte, len(in))
	if err := s.ReadAt(out, 100); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("read %q, want %q", out, in)
	}
	// Both replicas must hold the data.
	for i := 0; i < s.N(); i++ {
		got := make([]byte, len(in))
		if err := s.Device(i).ReadAt(got, 100); err != nil {
			t.Fatalf("replica %d read: %v", i, err)
		}
		if !bytes.Equal(in, got) {
			t.Fatalf("replica %d holds %q, want %q", i, got, in)
		}
	}
}

func TestReplicaSetFailover(t *testing.T) {
	s, faulty := newSet(t, 2)
	in := []byte("survives failover")
	writeAll(t, s, in, 0)

	faulty[0].Fault()
	out := make([]byte, len(in))
	if err := s.ReadAt(out, 0); err != nil {
		t.Fatalf("ReadAt after main fault: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("read %q, want %q", out, in)
	}
	if s.Main() != 1 {
		t.Fatalf("main = %d after failover, want 1", s.Main())
	}
	if s.AliveCount() != 1 {
		t.Fatalf("alive = %d, want 1", s.AliveCount())
	}
	if s.Alive(0) {
		t.Fatal("dead replica still reported alive")
	}
}

func TestReplicaSetAllDead(t *testing.T) {
	s, faulty := newSet(t, 2)
	faulty[0].Fault()
	faulty[1].Fault()
	if err := s.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("ReadAt with all dead err = %v, want ErrNoReplica", err)
	}
	err := s.Apply(1, func(_ int, dev Device) error { return dev.WriteAt([]byte{1}, 0) })
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("Apply with all dead err = %v, want ErrNoReplica", err)
	}
}

func TestReplicaSetOutOfRangeNotFailover(t *testing.T) {
	s, _ := newSet(t, 2)
	err := s.ReadAt(make([]byte, 1), s.Blocks()*int64(s.BlockSize()))
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if s.AliveCount() != 2 {
		t.Fatal("out-of-range read killed a replica")
	}
}

func TestReplicaSetApplySurvivesOneFailure(t *testing.T) {
	s, faulty := newSet(t, 2)
	faulty[0].FailAfterWrites(0) // next write fails
	in := []byte("written to the survivor")
	writeAll(t, s, in, 0)
	if s.AliveCount() != 1 {
		t.Fatalf("alive = %d, want 1", s.AliveCount())
	}
	out := make([]byte, len(in))
	if err := s.ReadAt(out, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("read %q, want %q", out, in)
	}
}

func TestReplicaSetApplyAsync(t *testing.T) {
	s, _ := newSet(t, 2)
	in := []byte("async write")
	if err := s.Apply(0, func(_ int, dev Device) error { return dev.WriteAt(in, 0) }); err != nil {
		t.Fatalf("Apply(0): %v", err)
	}
	s.Drain()
	for i := 0; i < 2; i++ {
		out := make([]byte, len(in))
		if err := s.Device(i).ReadAt(out, 0); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if !bytes.Equal(in, out) {
			t.Fatalf("replica %d missing async write", i)
		}
	}
}

func TestReplicaSetApplyPartialSync(t *testing.T) {
	s, _ := newSet(t, 3)
	var mu sync.Mutex
	var order []int
	err := s.Apply(2, func(i int, dev Device) error {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return dev.WriteAt([]byte{7}, 0)
	})
	if err != nil {
		t.Fatalf("Apply(2): %v", err)
	}
	mu.Lock()
	sofar := len(order)
	mu.Unlock()
	if sofar < 2 {
		t.Fatalf("only %d replicas written before return, want >= 2", sofar)
	}
	s.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 {
		t.Fatalf("after drain %d replicas written, want 3", len(order))
	}
}

func TestReplicaSetRecover(t *testing.T) {
	s, faulty := newSet(t, 2)
	in := []byte("before the crash")
	writeAll(t, s, in, 512)

	faulty[1].Fault()
	// More writes happen while replica 1 is down.
	in2 := []byte("written during degraded mode")
	writeAll(t, s, in2, 2048)
	if s.AliveCount() != 1 {
		t.Fatalf("alive = %d, want 1", s.AliveCount())
	}

	faulty[1].Heal()
	if err := s.Recover(1); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if s.AliveCount() != 2 {
		t.Fatalf("alive = %d after recover, want 2", s.AliveCount())
	}
	// Replica 1 must now hold everything, including degraded-mode writes.
	out := make([]byte, len(in2))
	if err := s.Device(1).ReadAt(out, 2048); err != nil {
		t.Fatalf("recovered replica read: %v", err)
	}
	if !bytes.Equal(in2, out) {
		t.Fatalf("recovered replica holds %q, want %q", out, in2)
	}
}

func TestReplicaSetRecoverNoSource(t *testing.T) {
	s, faulty := newSet(t, 2)
	faulty[0].Fault()
	faulty[1].Fault()
	// Force the set to notice both deaths.
	_ = s.ReadAt(make([]byte, 1), 0)
	if err := s.Recover(1); err == nil {
		t.Fatal("Recover with no live source succeeded")
	}
	if err := s.Recover(7); err == nil {
		t.Fatal("Recover(out of range) succeeded")
	}
}

func TestReplicaSetAsDevice(t *testing.T) {
	// ReplicaSet implements Device: WriteAt fans out, Sync survives a
	// single dead replica, Close closes everything.
	s, faulty := newSet(t, 2)
	in := []byte("device-style write")
	if err := s.WriteAt(in, 256); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	for i := 0; i < 2; i++ {
		out := make([]byte, len(in))
		if err := s.Device(i).ReadAt(out, 256); err != nil || !bytes.Equal(in, out) {
			t.Fatalf("replica %d: %q, %v", i, out, err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	faulty[0].Fault()
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync with one dead replica: %v", err)
	}
	faulty[1].Fault()
	if err := s.Sync(); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("Sync with all dead err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestFaultyDiskClosePassesThrough(t *testing.T) {
	d := NewFaulty(newMem(t, 512, 2))
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v", err)
	}
}

// Property: data written through a full Apply is readable back through
// ReadAt regardless of which single replica subsequently dies.
func TestQuickReplicaDurability(t *testing.T) {
	f := func(data []byte, offBlocks uint8, kill bool, which uint8) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		if len(data) > 512 {
			data = data[:512]
		}
		mems := []Device{}
		faulty := []*FaultyDisk{}
		for i := 0; i < 2; i++ {
			m, err := NewMem(512, 64)
			if err != nil {
				return false
			}
			fd := NewFaulty(m)
			faulty = append(faulty, fd)
			mems = append(mems, fd)
		}
		s, err := NewReplicaSet(mems...)
		if err != nil {
			return false
		}
		off := int64(offBlocks%32) * 512
		err = s.Apply(2, func(_ int, dev Device) error { return dev.WriteAt(data, off) })
		if err != nil {
			return false
		}
		if kill {
			faulty[which%2].Fault()
		}
		out := make([]byte, len(data))
		if err := s.ReadAt(out, off); err != nil {
			return false
		}
		return bytes.Equal(data, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaSetMetrics(t *testing.T) {
	var devs []Device
	for i := 0; i < 2; i++ {
		mem, err := NewMem(512, 256)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs = append(devs, mem)
	}
	set, err := NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	defer set.Close() //nolint:errcheck // test cleanup
	reg := stats.NewRegistry()
	set.AttachMetrics(reg)

	if err := set.Apply(2, func(_ int, dev Device) error {
		return dev.WriteAt(make([]byte, 512), 0)
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	buf := make([]byte, 512)
	if err := set.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}

	snap := reg.Snapshot()
	if n := snap.Gauges["disk.replica0.writes"]; n != 1 {
		t.Errorf("replica0.writes = %d, want 1", n)
	}
	if n := snap.Gauges["disk.replica1.writes"]; n != 1 {
		t.Errorf("replica1.writes = %d, want 1", n)
	}
	if n := snap.Gauges["disk.replica0.reads"]; n != 1 {
		t.Errorf("replica0.reads = %d, want 1", n)
	}
	if n := snap.Gauges["disk.alive_replicas"]; n != 2 {
		t.Errorf("alive_replicas = %d, want 2", n)
	}
	if n := snap.Gauges["disk.replica0.alive"]; n != 1 {
		t.Errorf("replica0.alive = %d, want 1", n)
	}
	if n := snap.Gauges["disk.read_failovers"]; n != 0 {
		t.Errorf("read_failovers = %d, want 0", n)
	}
}
