package disk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// ReplicaSet manages N identical replica disks (the paper's hardware had
// two). Reads go to the main disk, failing over — and permanently demoting
// the main — when it dies. Writes are applied to every live replica
// concurrently; the create operation's P-FACTOR chooses how many must
// complete before the caller resumes (paper §2.2, §3), so commit latency
// for P-FACTOR k is the maximum of k disk writes, not their sum. Recovery
// is a whole-disk copy (paper §3: "Recovery is simply done by copying the
// complete disk").
type ReplicaSet struct {
	mu    sync.Mutex
	devs  []Device // immutable after construction (liveness is in alive)
	alive []bool   // guarded by mu
	main  int      // guarded by mu

	// pending tracks in-flight replica writes (both the synchronous phase
	// and the post-P-FACTOR background remainder) for Drain. A plain
	// counter with a condition variable, not a WaitGroup: concurrent
	// readers may Drain while concurrent creators start new writes, which
	// WaitGroup's Add/Wait contract forbids.
	pendMu   sync.Mutex
	pendCond *sync.Cond // lazily initialized under pendMu
	pending  int        // guarded by pendMu

	// Per-replica activity counters (atomic; indexed like devs).
	reads     []stats.Counter // successful ReadAt calls served by replica i
	writes    []stats.Counter // successful op applications on replica i
	errs      []stats.Counter // failures that demoted replica i
	failovers stats.Counter   // reads served by a non-main replica

	// Parallel-commit observability: commits with a synchronous phase, and
	// the total replica fanout of those synchronous phases. fanout/commits
	// is the mean number of disks a caller's reply waited on in parallel.
	parallelCommits stats.Counter
	commitFanout    stats.Counter
}

// maxReplicas bounds a set so replica liveness fits a uint64 snapshot
// (ReadAt's lock-free failover order). Sixty-four disks is far beyond the
// paper's two and any deployment this server targets.
const maxReplicas = 64

// NewReplicaSet builds a set over devs. All devices must share a geometry.
func NewReplicaSet(devs ...Device) (*ReplicaSet, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("replica set needs at least one device: %w", ErrBadGeometry)
	}
	if len(devs) > maxReplicas {
		return nil, fmt.Errorf("replica set of %d exceeds %d devices: %w", len(devs), maxReplicas, ErrBadGeometry)
	}
	bs, nb := devs[0].BlockSize(), devs[0].Blocks()
	for i, d := range devs[1:] {
		if d.BlockSize() != bs || d.Blocks() != nb {
			return nil, fmt.Errorf("replica %d geometry %dx%d differs from %dx%d: %w",
				i+1, d.BlockSize(), d.Blocks(), bs, nb, ErrBadGeometry)
		}
	}
	alive := make([]bool, len(devs))
	for i := range alive {
		alive[i] = true
	}
	return &ReplicaSet{
		devs:   devs,
		alive:  alive,
		reads:  make([]stats.Counter, len(devs)),
		writes: make([]stats.Counter, len(devs)),
		errs:   make([]stats.Counter, len(devs)),
	}, nil
}

// N returns the number of replicas, dead or alive.
func (s *ReplicaSet) N() int { return len(s.devs) }

// BlockSize returns the common sector size.
func (s *ReplicaSet) BlockSize() int { return s.devs[0].BlockSize() }

// Blocks returns the common capacity.
func (s *ReplicaSet) Blocks() int64 { return s.devs[0].Blocks() }

// AliveCount returns how many replicas are currently usable.
func (s *ReplicaSet) AliveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// Main returns the index of the current main (read) disk.
func (s *ReplicaSet) Main() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.main
}

// Alive reports whether replica i is usable.
func (s *ReplicaSet) Alive(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive[i]
}

// markDead demotes replica i; if it was the main, the next live replica is
// promoted. Safe to call from concurrent per-replica commit goroutines.
func (s *ReplicaSet) markDead(i int) {
	s.errs[i].Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alive[i] = false
	if s.main == i {
		for j, a := range s.alive {
			if a {
				s.main = j
				return
			}
		}
	}
}

// readSnapshot captures the current main index and the liveness set as a
// bitmask, so ReadAt can walk its failover order without holding the mutex
// or allocating an order slice on every read.
func (s *ReplicaSet) readSnapshot() (main int, aliveMask uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, a := range s.alive {
		if a {
			aliveMask |= 1 << uint(i)
		}
	}
	return s.main, aliveMask
}

// ReadAt reads from the main disk, failing over to any other live replica.
// It returns ErrNoReplica only when every replica has failed.
func (s *ReplicaSet) ReadAt(p []byte, off int64) error {
	return s.readAt(nil, nil, p, off)
}

// ReadAtTraced is ReadAt with span emission: one disk-read span per
// replica attempted, so a trace shows exactly which disk served the read
// and any failovers along the way. tc may be nil.
func (s *ReplicaSet) ReadAtTraced(tc *trace.Ctx, parent *trace.Span, p []byte, off int64) error {
	return s.readAt(tc, parent, p, off)
}

func (s *ReplicaSet) readAt(tc *trace.Ctx, parent *trace.Span, p []byte, off int64) error {
	main, aliveMask := s.readSnapshot()

	var lastErr error
	tried := 0
	// Failover order: the main first, then the remaining live replicas in
	// index order — derived from the snapshot, no allocation, no lock held
	// across the I/O.
	for pass := 0; pass < 2; pass++ {
		for i := range s.devs {
			isMain := i == main
			if pass == 0 && !isMain || pass == 1 && isMain {
				continue
			}
			if aliveMask&(1<<uint(i)) == 0 {
				continue
			}
			sp := tc.Begin(parent, trace.LayerDisk, trace.OpDiskRead)
			err := s.devs[i].ReadAt(p, off)
			if sp != nil {
				sp.Replica = int8(i)
				sp.Bytes = int64(len(p))
				if err != nil {
					sp.Status = 1
				}
			}
			tc.End(sp)
			if err == nil {
				s.reads[i].Inc()
				if tried > 0 {
					s.failovers.Inc()
				}
				return nil
			}
			if errors.Is(err, ErrOutOfRange) {
				return err // caller bug, not a media failure
			}
			tried++
			lastErr = err
			s.markDead(i)
		}
	}
	if lastErr != nil {
		return fmt.Errorf("all replicas failed (last: %v): %w", lastErr, ErrNoReplica)
	}
	return ErrNoReplica
}

// beginWrites registers n in-flight replica writes with the drain tracker.
func (s *ReplicaSet) beginWrites(n int) {
	s.pendMu.Lock()
	if s.pendCond == nil {
		s.pendCond = sync.NewCond(&s.pendMu)
	}
	s.pending += n
	s.pendMu.Unlock()
}

// endWrite retires one in-flight replica write.
func (s *ReplicaSet) endWrite() {
	s.pendMu.Lock()
	s.pending--
	if s.pending == 0 && s.pendCond != nil {
		s.pendCond.Broadcast()
	}
	s.pendMu.Unlock()
}

// Apply runs op against every live replica concurrently. Once syncN
// replicas have succeeded, Apply returns; the remaining replicas finish in
// the background (tracked; see Drain). syncN <= 0 returns immediately with
// the whole fanout in the background — the P-FACTOR 0 semantics of paper
// §2.2. syncN larger than the number of live replicas means fully
// synchronous. A replica whose op fails is marked dead; Apply fails only
// if every live replica's op failed during the synchronous wait (for
// syncN <= 0, it never fails).
//
// Because the per-replica ops run in parallel, op must be safe for
// concurrent invocation with distinct devices — every engine op is (it
// writes caller-owned buffers and re-encodes inode blocks from the
// internally locked table).
func (s *ReplicaSet) Apply(syncN int, op func(i int, dev Device) error) error {
	return s.ApplyNotify(syncN, op, nil)
}

// ApplyNotify is Apply with a completion hook: onSettled (when non-nil)
// runs exactly once, after every replica — synchronous and background —
// has finished its op. The engine uses it to unpin a fresh cache entry
// the moment its disk copies are as durable as they will get.
func (s *ReplicaSet) ApplyNotify(syncN int, op func(i int, dev Device) error, onSettled func()) error {
	s.mu.Lock()
	live := make([]int, 0, len(s.devs))
	for i, a := range s.alive {
		if a {
			live = append(live, i)
		}
	}
	s.mu.Unlock()
	if len(live) == 0 {
		return ErrNoReplica
	}
	if syncN > len(live) {
		syncN = len(live)
	}

	// All replicas start now; the caller merely chooses how many results
	// to wait for. Registering the fanout before the goroutines launch
	// keeps Drain exact: a Drain entered after Apply returns sees every
	// write this call started.
	s.beginWrites(len(live))
	results := make(chan bool, len(live))
	var remaining atomic.Int32
	remaining.Store(int32(len(live)))
	for _, i := range live {
		i := i
		//lint:ignore goroutinestop accounted by the set's pending-write counter: endWrite below signals Drain, which shutdown and the engine's fault path wait on
		go func() {
			ok := op(i, s.devs[i]) == nil
			if ok {
				s.writes[i].Inc()
			} else {
				s.markDead(i)
			}
			results <- ok
			// onSettled must complete before the write is retired from the
			// drain tracker: Drain() returning promises that background
			// settle work (the engine's cache unpin, stats updates) has
			// already run, so a final stats snapshot taken after Drain can
			// never race the last settle hook.
			if remaining.Add(-1) == 0 && onSettled != nil {
				onSettled()
			}
			s.endWrite()
		}()
	}
	if syncN <= 0 {
		return nil
	}

	s.parallelCommits.Inc()
	s.commitFanout.Add(int64(syncN))
	done, succeeded := 0, 0
	for done < len(live) && succeeded < syncN {
		if <-results {
			succeeded++
		}
		done++
	}
	if succeeded == 0 {
		return fmt.Errorf("no replica accepted the write: %w", ErrNoReplica)
	}
	return nil
}

// Drain blocks until all background (post-P-FACTOR) writes have finished.
// Tests, the cache-miss fault path, and orderly shutdown use it; see paper
// §2.2 on the durability semantics of P-FACTOR 0. It is safe to call
// concurrently with new Apply calls: writes that start while a Drain is
// waiting extend the wait (the drain returns only at a moment of true
// quiescence).
func (s *ReplicaSet) Drain() {
	s.pendMu.Lock()
	for s.pending > 0 {
		if s.pendCond == nil {
			s.pendCond = sync.NewCond(&s.pendMu)
		}
		s.pendCond.Wait()
	}
	s.pendMu.Unlock()
}

// Recover copies the complete contents of the current main disk onto
// replica i and marks it alive again — the paper's whole-disk recovery.
func (s *ReplicaSet) Recover(i int) error {
	if i < 0 || i >= len(s.devs) {
		return fmt.Errorf("recover: no replica %d: %w", i, ErrOutOfRange)
	}
	s.mu.Lock()
	if !s.alive[s.main] || s.main == i {
		s.mu.Unlock()
		return fmt.Errorf("disk: recover: no live source disk: %w", ErrNoReplica)
	}
	src := s.devs[s.main]
	s.mu.Unlock()

	dst := s.devs[i]
	bs := int64(s.BlockSize())
	// Copy a track's worth at a time; big enough to be sequential, small
	// enough not to hold a huge buffer.
	const blocksPerCopy = 64
	buf := make([]byte, bs*blocksPerCopy)
	total := s.Blocks()
	for blk := int64(0); blk < total; blk += blocksPerCopy {
		n := blocksPerCopy
		if rem := total - blk; rem < blocksPerCopy {
			n = int(rem)
		}
		chunk := buf[:int64(n)*bs]
		if err := src.ReadAt(chunk, blk*bs); err != nil {
			return fmt.Errorf("disk: recover: reading source: %w", err)
		}
		if err := dst.WriteAt(chunk, blk*bs); err != nil {
			return fmt.Errorf("disk: recover: writing replica %d: %w", i, err)
		}
	}
	if err := dst.Sync(); err != nil {
		return fmt.Errorf("disk: recover: sync replica %d: %w", i, err)
	}
	s.mu.Lock()
	s.alive[i] = true
	s.mu.Unlock()
	return nil
}

// WriteAt writes p to every live replica synchronously, making ReplicaSet
// itself a Device (used when formatting and by layout.Load/WriteInode).
func (s *ReplicaSet) WriteAt(p []byte, off int64) error {
	return s.Apply(s.N(), func(_ int, dev Device) error {
		return dev.WriteAt(p, off)
	})
}

// Sync flushes every live replica. Like writes, it succeeds as long as at
// least one replica remains usable.
func (s *ReplicaSet) Sync() error {
	s.Drain()
	for i, dev := range s.devs {
		if !s.Alive(i) {
			continue
		}
		if err := dev.Sync(); err != nil {
			s.markDead(i)
		}
	}
	if s.AliveCount() == 0 {
		return ErrNoReplica
	}
	return nil
}

var _ Device = (*ReplicaSet)(nil)

// Device returns replica i's device (for tests and recovery tooling).
func (s *ReplicaSet) Device(i int) Device { return s.devs[i] }

// Reads returns the number of successful ReadAt calls replica i has
// served (tests assert fault-singleflight behaviour with it).
func (s *ReplicaSet) Reads(i int) int64 { return s.reads[i].Load() }

// Writes returns the number of successful writes replica i has applied
// (tests assert parallel-commit behaviour with it).
func (s *ReplicaSet) Writes(i int) int64 { return s.writes[i].Load() }

// AttachMetrics registers the set's per-replica counters with a stats
// registry under the "disk." prefix: reads, writes and demoting errors
// per replica, plus liveness, failover totals, and the parallel-commit
// fanout (synchronous commits and the replicas their callers waited on).
func (s *ReplicaSet) AttachMetrics(r *stats.Registry) {
	for i := range s.devs {
		i := i
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.reads", i), s.reads[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.writes", i), s.writes[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.errors", i), s.errs[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.alive", i), func() int64 {
			if s.Alive(i) {
				return 1
			}
			return 0
		})
		if sim, ok := s.devs[i].(*SimDisk); ok {
			sim.AttachMetrics(r, fmt.Sprintf("disk.replica%d", i))
		}
	}
	r.GaugeFunc("disk.alive_replicas", func() int64 { return int64(s.AliveCount()) })
	r.GaugeFunc("disk.main_index", func() int64 { return int64(s.Main()) })
	r.GaugeFunc("disk.read_failovers", s.failovers.Load)
	r.GaugeFunc("disk.parallel_commits", s.parallelCommits.Load)
	r.GaugeFunc("disk.parallel_commit_fanout", s.commitFanout.Load)
	r.GaugeFunc("disk.pending_writes", func() int64 {
		s.pendMu.Lock()
		defer s.pendMu.Unlock()
		return int64(s.pending)
	})
}

// Close drains background writes and closes every replica, returning the
// first error.
func (s *ReplicaSet) Close() error {
	s.Drain()
	var first error
	for _, d := range s.devs {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
