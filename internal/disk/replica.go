package disk

import (
	"errors"
	"fmt"
	"sync"

	"bulletfs/internal/stats"
)

// ReplicaSet manages N identical replica disks (the paper's hardware had
// two). Reads go to the main disk, failing over — and permanently demoting
// the main — when it dies. Writes are applied to every live replica;
// the create operation's P-FACTOR chooses how many must complete before the
// caller resumes (paper §2.2, §3). Recovery is a whole-disk copy (paper §3:
// "Recovery is simply done by copying the complete disk").
type ReplicaSet struct {
	mu    sync.Mutex
	devs  []Device       // immutable after construction (liveness is in alive)
	alive []bool         // guarded by mu
	main  int            // guarded by mu
	wg    sync.WaitGroup // tracks background (post-P-FACTOR) writes

	// Per-replica activity counters (atomic; indexed like devs).
	reads     []stats.Counter // successful ReadAt calls served by replica i
	writes    []stats.Counter // successful op applications on replica i
	errs      []stats.Counter // failures that demoted replica i
	failovers stats.Counter   // reads served by a non-main replica
}

// NewReplicaSet builds a set over devs. All devices must share a geometry.
func NewReplicaSet(devs ...Device) (*ReplicaSet, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("replica set needs at least one device: %w", ErrBadGeometry)
	}
	bs, nb := devs[0].BlockSize(), devs[0].Blocks()
	for i, d := range devs[1:] {
		if d.BlockSize() != bs || d.Blocks() != nb {
			return nil, fmt.Errorf("replica %d geometry %dx%d differs from %dx%d: %w",
				i+1, d.BlockSize(), d.Blocks(), bs, nb, ErrBadGeometry)
		}
	}
	alive := make([]bool, len(devs))
	for i := range alive {
		alive[i] = true
	}
	return &ReplicaSet{
		devs:   devs,
		alive:  alive,
		reads:  make([]stats.Counter, len(devs)),
		writes: make([]stats.Counter, len(devs)),
		errs:   make([]stats.Counter, len(devs)),
	}, nil
}

// N returns the number of replicas, dead or alive.
func (s *ReplicaSet) N() int { return len(s.devs) }

// BlockSize returns the common sector size.
func (s *ReplicaSet) BlockSize() int { return s.devs[0].BlockSize() }

// Blocks returns the common capacity.
func (s *ReplicaSet) Blocks() int64 { return s.devs[0].Blocks() }

// AliveCount returns how many replicas are currently usable.
func (s *ReplicaSet) AliveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// Main returns the index of the current main (read) disk.
func (s *ReplicaSet) Main() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.main
}

// Alive reports whether replica i is usable.
func (s *ReplicaSet) Alive(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive[i]
}

// markDead demotes replica i; if it was the main, the next live replica is
// promoted.
func (s *ReplicaSet) markDead(i int) {
	s.errs[i].Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alive[i] = false
	if s.main == i {
		for j, a := range s.alive {
			if a {
				s.main = j
				return
			}
		}
	}
}

// ReadAt reads from the main disk, failing over to any other live replica.
// It returns ErrNoReplica only when every replica has failed.
func (s *ReplicaSet) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	order := make([]int, 0, len(s.devs))
	if s.alive[s.main] {
		order = append(order, s.main)
	}
	for i, a := range s.alive {
		if a && i != s.main {
			order = append(order, i)
		}
	}
	s.mu.Unlock()

	var lastErr error
	for _, i := range order {
		err := s.devs[i].ReadAt(p, off)
		if err == nil {
			s.reads[i].Inc()
			if i != order[0] {
				s.failovers.Inc()
			}
			return nil
		}
		if errors.Is(err, ErrOutOfRange) {
			return err // caller bug, not a media failure
		}
		lastErr = err
		s.markDead(i)
	}
	if lastErr != nil {
		return fmt.Errorf("all replicas failed (last: %v): %w", lastErr, ErrNoReplica)
	}
	return ErrNoReplica
}

// Apply runs op against every live replica in index order. After syncN
// replicas have succeeded, Apply returns; remaining replicas are written in
// the background (tracked; see Drain). syncN <= 0 runs the whole chain in
// the background and returns immediately — the P-FACTOR 0 semantics of
// paper §2.2. syncN larger than the number of live replicas means fully
// synchronous. A replica whose op fails is marked dead; Apply fails only if
// no replica succeeded during the synchronous phase (for syncN <= 0, it
// never fails).
func (s *ReplicaSet) Apply(syncN int, op func(i int, dev Device) error) error {
	s.mu.Lock()
	live := make([]int, 0, len(s.devs))
	for i, a := range s.alive {
		if a {
			live = append(live, i)
		}
	}
	s.mu.Unlock()
	if len(live) == 0 {
		return ErrNoReplica
	}

	apply := func(idxs []int) (succeeded int) {
		for _, i := range idxs {
			if err := op(i, s.devs[i]); err != nil {
				s.markDead(i)
				continue
			}
			s.writes[i].Inc()
			succeeded++
		}
		return succeeded
	}

	if syncN <= 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			apply(live)
		}()
		return nil
	}

	if syncN > len(live) {
		syncN = len(live)
	}
	// Synchronous phase: keep going until syncN successes or we run out.
	done := 0
	var i int
	for i = 0; i < len(live) && done < syncN; i++ {
		if err := op(live[i], s.devs[live[i]]); err != nil {
			s.markDead(live[i])
			continue
		}
		s.writes[live[i]].Inc()
		done++
	}
	if rest := live[i:]; len(rest) > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			apply(rest)
		}()
	}
	if done == 0 {
		return fmt.Errorf("no replica accepted the write: %w", ErrNoReplica)
	}
	return nil
}

// Drain blocks until all background (post-P-FACTOR) writes have finished.
// Tests and orderly shutdown use it; see paper §2.2 on the durability
// semantics of P-FACTOR 0.
func (s *ReplicaSet) Drain() { s.wg.Wait() }

// Recover copies the complete contents of the current main disk onto
// replica i and marks it alive again — the paper's whole-disk recovery.
func (s *ReplicaSet) Recover(i int) error {
	if i < 0 || i >= len(s.devs) {
		return fmt.Errorf("recover: no replica %d: %w", i, ErrOutOfRange)
	}
	s.mu.Lock()
	if !s.alive[s.main] || s.main == i {
		s.mu.Unlock()
		return fmt.Errorf("disk: recover: no live source disk: %w", ErrNoReplica)
	}
	src := s.devs[s.main]
	s.mu.Unlock()

	dst := s.devs[i]
	bs := int64(s.BlockSize())
	// Copy a track's worth at a time; big enough to be sequential, small
	// enough not to hold a huge buffer.
	const blocksPerCopy = 64
	buf := make([]byte, bs*blocksPerCopy)
	total := s.Blocks()
	for blk := int64(0); blk < total; blk += blocksPerCopy {
		n := blocksPerCopy
		if rem := total - blk; rem < blocksPerCopy {
			n = int(rem)
		}
		chunk := buf[:int64(n)*bs]
		if err := src.ReadAt(chunk, blk*bs); err != nil {
			return fmt.Errorf("disk: recover: reading source: %w", err)
		}
		if err := dst.WriteAt(chunk, blk*bs); err != nil {
			return fmt.Errorf("disk: recover: writing replica %d: %w", i, err)
		}
	}
	if err := dst.Sync(); err != nil {
		return fmt.Errorf("disk: recover: sync replica %d: %w", i, err)
	}
	s.mu.Lock()
	s.alive[i] = true
	s.mu.Unlock()
	return nil
}

// WriteAt writes p to every live replica synchronously, making ReplicaSet
// itself a Device (used when formatting and by layout.Load/WriteInode).
func (s *ReplicaSet) WriteAt(p []byte, off int64) error {
	return s.Apply(s.N(), func(_ int, dev Device) error {
		return dev.WriteAt(p, off)
	})
}

// Sync flushes every live replica. Like writes, it succeeds as long as at
// least one replica remains usable.
func (s *ReplicaSet) Sync() error {
	s.Drain()
	for i, dev := range s.devs {
		if !s.Alive(i) {
			continue
		}
		if err := dev.Sync(); err != nil {
			s.markDead(i)
		}
	}
	if s.AliveCount() == 0 {
		return ErrNoReplica
	}
	return nil
}

var _ Device = (*ReplicaSet)(nil)

// Device returns replica i's device (for tests and recovery tooling).
func (s *ReplicaSet) Device(i int) Device { return s.devs[i] }

// AttachMetrics registers the set's per-replica counters with a stats
// registry under the "disk." prefix: reads, writes and demoting errors
// per replica, plus liveness and failover totals.
func (s *ReplicaSet) AttachMetrics(r *stats.Registry) {
	for i := range s.devs {
		i := i
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.reads", i), s.reads[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.writes", i), s.writes[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.errors", i), s.errs[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.alive", i), func() int64 {
			if s.Alive(i) {
				return 1
			}
			return 0
		})
		if sim, ok := s.devs[i].(*SimDisk); ok {
			sim.AttachMetrics(r, fmt.Sprintf("disk.replica%d", i))
		}
	}
	r.GaugeFunc("disk.alive_replicas", func() int64 { return int64(s.AliveCount()) })
	r.GaugeFunc("disk.main_index", func() int64 { return int64(s.Main()) })
	r.GaugeFunc("disk.read_failovers", s.failovers.Load)
}

// Close closes every replica, returning the first error.
func (s *ReplicaSet) Close() error {
	s.Drain()
	var first error
	for _, d := range s.devs {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
