package disk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// Errors specific to replica management.
var (
	// ErrChecksum means a replica returned data that failed the caller's
	// integrity check: the device answered, but with corrupt bytes.
	ErrChecksum = errors.New("disk: replica data failed checksum")
	// ErrRecovering means a recovery is already in progress; the set
	// rebuilds one replica at a time.
	ErrRecovering = errors.New("disk: a recovery is already in progress")
)

// DefaultErrorBudget is how many checksum mismatches a replica may serve
// before it is quarantined (marked dead). I/O errors still demote a
// replica immediately — a drive that cannot answer is gone — but a drive
// that answers wrongly gets repaired in place until it exhausts the
// budget, because occasional latent sector corruption is recoverable
// while systematic corruption is not.
const DefaultErrorBudget = 8

// ReplicaSet manages N identical replica disks (the paper's hardware had
// two). Reads go to the main disk, failing over — and permanently demoting
// the main — when it dies. Writes are applied to every live replica
// concurrently; the create operation's P-FACTOR chooses how many must
// complete before the caller resumes (paper §2.2, §3), so commit latency
// for P-FACTOR k is the maximum of k disk writes, not their sum.
//
// Beyond the paper: reads can carry a verification callback (ReadVerified)
// that turns silent corruption into failover plus in-place repair, and
// recovery is an online catch-up copy rather than the paper's stop-the-
// world whole-disk copy (§3: "Recovery is simply done by copying the
// complete disk" — still true, but the engine keeps running while it
// happens; see docs/RECOVERY.md).
type ReplicaSet struct {
	mu    sync.Mutex
	devs  []Device // immutable after construction (liveness is in alive)
	alive []bool   // guarded by mu
	main  int      // guarded by mu

	// pending tracks in-flight replica writes (both the synchronous phase
	// and the post-P-FACTOR background remainder) for Drain. A plain
	// counter with a condition variable, not a WaitGroup: concurrent
	// readers may Drain while concurrent creators start new writes, which
	// WaitGroup's Add/Wait contract forbids.
	pendMu   sync.Mutex
	pendCond *sync.Cond // lazily initialized under pendMu
	pending  int        // guarded by pendMu

	// applyGate serializes recovery state changes against write fan-out
	// launches. ApplyNotify holds the read side only while it snapshots
	// liveness and launches its goroutines — never across I/O or the
	// quorum wait — so the write side (taken twice per recovery, at arm
	// and finish) stalls commits for microseconds, not for the copy.
	// Ordering matters: markDead and Drain never touch applyGate, so a
	// recovery holding the write side cannot deadlock against a dying
	// replica or a draining reader.
	applyGate sync.RWMutex
	// recovering is the replica index under online recovery, -1 if none.
	// Written only while holding applyGate's write side; read atomically
	// (under the read side by ApplyNotify, lock-free by observers).
	recovering atomic.Int32
	recDev     *recordingDevice // mirror target; guarded by applyGate
	recFailed  atomic.Bool      // a mirrored write failed; recovery must abort

	// Per-replica activity counters (atomic; indexed like devs).
	reads        []stats.Counter // successful ReadAt calls served by replica i
	writes       []stats.Counter // successful op applications on replica i
	errs         []stats.Counter // failures that demoted replica i
	checksumErrs []stats.Counter // reads that returned corrupt data (lifetime)
	selfheals    []stats.Counter // bad extents rewritten in place on replica i
	failovers    stats.Counter   // reads served by a non-main replica

	// faults is the quarantine budget tracker: like checksumErrs but reset
	// when the replica is recovered, so a repaired drive starts clean.
	faults    []atomic.Int64
	errBudget atomic.Int64

	selfhealTotal stats.Counter
	promotions    stats.Counter // times a new main was promoted
	recoveries    stats.Counter // completed online recoveries

	// Gray-failure state (see breaker.go). gray is nil until
	// EnableBreakers; the read path branches on that one load, so the
	// disabled set behaves exactly like the fail-stop original. brk and
	// readHist are always allocated so health reports and metrics are
	// uniform either way.
	gray     atomic.Pointer[grayConfig]
	brk      []breaker
	readHist *stats.Histogram

	grayLadderReads stats.Counter // reads that went through the gray ladder
	hedgedReads     stats.Counter // predictive + timer hedges granted
	breakerOpens    stats.Counter
	breakerCloses   stats.Counter
	breakerProbes   stats.Counter

	// In-flight hedged-read attempts, for DrainReads. Separate from the
	// write tracker: Close waits on writes but never on reads, so a read
	// stuck on a gray device cannot hang shutdown.
	readMu       sync.Mutex
	readCond     *sync.Cond // lazily initialized under readMu
	pendingReads int        // guarded by readMu

	// Parallel-commit observability: commits with a synchronous phase, and
	// the total replica fanout of those synchronous phases. fanout/commits
	// is the mean number of disks a caller's reply waited on in parallel.
	parallelCommits stats.Counter
	commitFanout    stats.Counter
}

// maxReplicas bounds a set so replica liveness fits a uint64 snapshot
// (ReadAt's lock-free failover order). Sixty-four disks is far beyond the
// paper's two and any deployment this server targets.
const maxReplicas = 64

// NewReplicaSet builds a set over devs. All devices must share a geometry.
func NewReplicaSet(devs ...Device) (*ReplicaSet, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("replica set needs at least one device: %w", ErrBadGeometry)
	}
	if len(devs) > maxReplicas {
		return nil, fmt.Errorf("replica set of %d exceeds %d devices: %w", len(devs), maxReplicas, ErrBadGeometry)
	}
	bs, nb := devs[0].BlockSize(), devs[0].Blocks()
	for i, d := range devs[1:] {
		if d.BlockSize() != bs || d.Blocks() != nb {
			return nil, fmt.Errorf("replica %d geometry %dx%d differs from %dx%d: %w",
				i+1, d.BlockSize(), d.Blocks(), bs, nb, ErrBadGeometry)
		}
	}
	alive := make([]bool, len(devs))
	for i := range alive {
		alive[i] = true
	}
	s := &ReplicaSet{
		devs:         devs,
		alive:        alive,
		reads:        make([]stats.Counter, len(devs)),
		writes:       make([]stats.Counter, len(devs)),
		errs:         make([]stats.Counter, len(devs)),
		checksumErrs: make([]stats.Counter, len(devs)),
		selfheals:    make([]stats.Counter, len(devs)),
		faults:       make([]atomic.Int64, len(devs)),
		brk:          make([]breaker, len(devs)),
		readHist:     stats.NewHistogram(nil),
	}
	s.errBudget.Store(DefaultErrorBudget)
	s.recovering.Store(-1)
	return s, nil
}

// N returns the number of replicas, dead or alive.
func (s *ReplicaSet) N() int { return len(s.devs) }

// BlockSize returns the common sector size.
func (s *ReplicaSet) BlockSize() int { return s.devs[0].BlockSize() }

// Blocks returns the common capacity.
func (s *ReplicaSet) Blocks() int64 { return s.devs[0].Blocks() }

// AliveCount returns how many replicas are currently usable.
func (s *ReplicaSet) AliveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// Main returns the index of the current main (read) disk.
func (s *ReplicaSet) Main() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.main
}

// Alive reports whether replica i is usable.
func (s *ReplicaSet) Alive(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive[i]
}

// SetErrorBudget sets how many checksum mismatches a replica may serve
// before being quarantined. n <= 0 is ignored.
func (s *ReplicaSet) SetErrorBudget(n int64) {
	if n > 0 {
		s.errBudget.Store(n)
	}
}

// markDead demotes replica i; if it was the main, the next live replica is
// promoted and its index returned (else -1). Safe to call from concurrent
// per-replica commit goroutines.
func (s *ReplicaSet) markDead(i int) (promoted int) {
	s.errs[i].Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alive[i] = false
	if s.main == i {
		for j, a := range s.alive {
			if a {
				s.main = j
				s.promotions.Inc()
				return j
			}
		}
	}
	return -1
}

// notePromotion emits the trace event for a main promotion. markDead
// already counted it; this is the per-request view. promoted < 0 (no
// promotion happened) is a no-op, so call sites never branch.
func (s *ReplicaSet) notePromotion(tc *trace.Ctx, parent *trace.Span, promoted int) {
	if promoted < 0 {
		return
	}
	sp := tc.Add(parent, trace.LayerDisk, trace.OpPromote, time.Now(), 0)
	if sp != nil {
		sp.Replica = int8(promoted)
	}
}

// readSnapshot captures the current main index and the liveness set as a
// bitmask, so ReadAt can walk its failover order without holding the mutex
// or allocating an order slice on every read.
func (s *ReplicaSet) readSnapshot() (main int, aliveMask uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, a := range s.alive {
		if a {
			aliveMask |= 1 << uint(i)
		}
	}
	return s.main, aliveMask
}

// ReadAt reads from the main disk, failing over to any other live replica.
// It returns ErrNoReplica only when every replica has failed.
func (s *ReplicaSet) ReadAt(p []byte, off int64) error {
	return s.readVerified(nil, nil, p, off, nil)
}

// ReadAtTraced is ReadAt with span emission: one disk-read span per
// replica attempted, so a trace shows exactly which disk served the read
// and any failovers along the way. tc may be nil.
func (s *ReplicaSet) ReadAtTraced(tc *trace.Ctx, parent *trace.Span, p []byte, off int64) error {
	return s.readVerified(tc, parent, p, off, nil)
}

// ReadVerified is ReadAt with an integrity check: verify is called on the
// bytes each replica returns, and a replica whose bytes fail it is treated
// like a failed read — the set fails over to the next live replica — except
// that the lying replica stays alive. Once a replica's copy verifies, every
// replica that returned corrupt bytes during this call has the bad extent
// rewritten in place from the good copy (self-heal). A replica is
// quarantined (marked dead) only after its checksum-error budget is
// exhausted; see SetErrorBudget.
func (s *ReplicaSet) ReadVerified(p []byte, off int64, verify func([]byte) bool) error {
	return s.readVerified(nil, nil, p, off, verify)
}

// ReadVerifiedTraced is ReadVerified with span emission: disk-read spans
// per attempt (Status 2 marks a checksum mismatch), disk-repair spans per
// self-heal rewrite, and a promote span if a demotion moved the main.
func (s *ReplicaSet) ReadVerifiedTraced(tc *trace.Ctx, parent *trace.Span, p []byte, off int64, verify func([]byte) bool) error {
	return s.readVerified(tc, parent, p, off, verify)
}

func (s *ReplicaSet) readVerified(tc *trace.Ctx, parent *trace.Span, p []byte, off int64, verify func([]byte) bool) error {
	if g := s.gray.Load(); g != nil {
		return s.readGray(g, tc, parent, p, off, verify)
	}
	main, aliveMask := s.readSnapshot()

	var lastErr error
	tried := 0
	var bad []int // replicas that answered with corrupt bytes this call
	// Failover order: the main first, then the remaining live replicas in
	// index order — derived from the snapshot, no allocation, no lock held
	// across the I/O.
	for pass := 0; pass < 2; pass++ {
		for i := range s.devs {
			isMain := i == main
			if pass == 0 && !isMain || pass == 1 && isMain {
				continue
			}
			if aliveMask&(1<<uint(i)) == 0 {
				continue
			}
			sp := tc.Begin(parent, trace.LayerDisk, trace.OpDiskRead)
			err := s.devs[i].ReadAt(p, off)
			if sp != nil {
				sp.Replica = int8(i)
				sp.Bytes = int64(len(p))
				if err != nil {
					sp.Status = 1
				}
			}
			if err == nil && verify != nil && !verify(p) {
				// The replica answered, but wrongly. Count it against the
				// budget, keep the replica for now, and fail over.
				if sp != nil {
					sp.Status = 2
				}
				tc.End(sp)
				s.checksumErrs[i].Inc()
				tried++
				lastErr = fmt.Errorf("replica %d at offset %d: %w", i, off, ErrChecksum)
				bad = append(bad, i)
				if s.faults[i].Add(1) >= s.errBudget.Load() {
					s.notePromotion(tc, parent, s.markDead(i))
				}
				continue
			}
			tc.End(sp)
			if err == nil {
				s.reads[i].Inc()
				if tried > 0 {
					s.failovers.Inc()
				}
				// p now holds a verified copy: rewrite it over every corrupt
				// replica seen on the way here.
				for _, j := range bad {
					s.selfHeal(tc, parent, j, p, off)
				}
				return nil
			}
			if errors.Is(err, ErrOutOfRange) {
				return err // caller bug, not a media failure
			}
			tried++
			lastErr = err
			s.notePromotion(tc, parent, s.markDead(i))
		}
	}
	if lastErr != nil {
		return fmt.Errorf("all replicas failed (last: %w): %w", lastErr, ErrNoReplica)
	}
	return ErrNoReplica
}

// grayAttempt is one in-flight read attempt under the gray ladder. The
// worker goroutine owns buf and err; start/dur are atomics so the
// ladder goroutine can stamp spans for attempts still in flight
// (trace.Ctx is single-goroutine — same pattern as commitClock).
type grayAttempt struct {
	idx   int
	buf   []byte
	err   error        // written by the worker before its results send
	start atomic.Int64 // wall nanos; 0 = worker not yet scheduled
	dur   atomic.Int64 // observed nanos; 0 = in flight; negative = failed
}

// readGray is the verified-read ladder with gray-failure handling: the
// rung order comes from grayOrder (health-ranked, breaker-aware), each
// rung runs in a goroutine with a private buffer, and while a rung is
// in flight a hedge timer may launch the next rung early — first good
// response wins, losers are abandoned (they finish against their
// private buffers and report their latency to the health score). The
// verify/self-heal/quarantine semantics are exactly readVerified's.
func (s *ReplicaSet) readGray(g *grayConfig, tc *trace.Ctx, parent *trace.Span, p []byte, off int64, verify func([]byte) bool) error {
	main, aliveMask := s.readSnapshot()
	order := s.grayOrder(g, main, aliveMask)
	if len(order) == 0 {
		return ErrNoReplica
	}
	s.grayLadderReads.Inc()

	// Predictive hedge accounting: grayOrder demotes a closed main only
	// when a peer's EWMA is measurably better. That demotion is a hedge
	// away from a slow-but-unbroken replica, so it pays from the same
	// cap as timer hedges; with the cap spent, the main goes back first.
	if k := indexOf(order, main); k > 0 &&
		s.brk[main].state.Load() == breakerClosed &&
		s.brk[order[0]].state.Load() == breakerClosed {
		if s.allowHedge(g) {
			s.hedgedReads.Inc()
			if sp := tc.Add(parent, trace.LayerDisk, trace.OpHedge, time.Now(), 0); sp != nil {
				sp.Replica = int8(order[0])
			}
		} else {
			copy(order[1:k+1], order[:k])
			order[0] = main
		}
	}

	results := make(chan *grayAttempt, len(order))
	attempts := make([]*grayAttempt, 0, len(order))
	next := 0
	launch := func() {
		idx := order[next]
		next++
		at := &grayAttempt{idx: idx, buf: make([]byte, len(p))}
		attempts = append(attempts, at)
		s.beginRead()
		//lint:ignore goroutinestop accounted by the set's pending-read counter: endRead signals DrainReads, and an abandoned attempt only ever touches its private buffer
		go func() {
			at.start.Store(time.Now().UnixNano())
			t0 := g.now()
			err := s.devs[idx].ReadAt(at.buf, off)
			d := g.now() - t0
			if d < 1 {
				d = 1 // 0 is the in-flight sentinel
			}
			s.observeRead(g, idx, time.Duration(d), err != nil)
			at.err = err
			if err != nil {
				d = -d
			}
			at.dur.Store(d)
			results <- at
			s.endRead()
		}()
	}
	launch()
	outstanding := 1

	var bad []int // replicas that answered with corrupt bytes this call
	var lastErr error
	tried := 0
	var winner *grayAttempt
	for winner == nil && outstanding > 0 {
		// Arm the hedge timer only when there is a rung left worth
		// hedging to (an open breaker is not) and the cap allows it. A
		// nil After channel (discrete-event worlds) never fires.
		var timerC <-chan time.Time
		if next < len(order) && s.brk[order[next]].state.Load() != breakerOpen && s.allowHedge(g) {
			timerC = g.after(s.hedgeDelay(g))
		}
		select {
		case at := <-results:
			outstanding--
			d := at.dur.Load()
			if d < 0 {
				d = -d
			}
			sp := tc.Add(parent, trace.LayerDisk, trace.OpDiskRead, time.Unix(0, at.start.Load()), d)
			if sp != nil {
				sp.Replica = int8(at.idx)
				sp.Bytes = int64(len(p))
				if at.err != nil {
					sp.Status = 1
				}
			}
			if at.err == nil && verify != nil && !verify(at.buf) {
				if sp != nil {
					sp.Status = 2
				}
				s.checksumErrs[at.idx].Inc()
				tried++
				lastErr = fmt.Errorf("replica %d at offset %d: %w", at.idx, off, ErrChecksum)
				bad = append(bad, at.idx)
				if s.faults[at.idx].Add(1) >= s.errBudget.Load() {
					s.notePromotion(tc, parent, s.markDead(at.idx))
				}
			} else if at.err == nil {
				winner = at
			} else if errors.Is(at.err, ErrOutOfRange) {
				return at.err // caller bug, not a media failure
			} else {
				tried++
				lastErr = at.err
				s.notePromotion(tc, parent, s.markDead(at.idx))
			}
			if winner == nil && outstanding == 0 && next < len(order) {
				launch()
				outstanding++
			}
		case <-timerC:
			s.hedgedReads.Inc()
			if sp := tc.Add(parent, trace.LayerDisk, trace.OpHedge, time.Now(), 0); sp != nil {
				sp.Replica = int8(order[next])
			}
			launch()
			outstanding++
		}
	}
	if winner == nil {
		if lastErr != nil {
			return fmt.Errorf("all replicas failed (last: %w): %w", lastErr, ErrNoReplica)
		}
		return ErrNoReplica
	}
	// Abandoned losers: stamp a pending-duration span for anything still
	// in flight so the trace shows what the reply did not wait for.
	for _, at := range attempts {
		if at != winner && at.dur.Load() == 0 && at.start.Load() != 0 {
			if sp := tc.Add(parent, trace.LayerDisk, trace.OpDiskRead, time.Unix(0, at.start.Load()), trace.DurPending); sp != nil {
				sp.Replica = int8(at.idx)
			}
		}
	}
	copy(p, winner.buf)
	s.reads[winner.idx].Inc()
	if tried > 0 {
		s.failovers.Inc()
	}
	for _, j := range bad {
		s.selfHeal(tc, parent, j, winner.buf, off)
	}
	return nil
}

// indexOf returns i's position in order, or -1.
func indexOf(order []int, i int) int {
	for k, v := range order {
		if v == i {
			return k
		}
	}
	return -1
}

// selfHeal rewrites one corrupt extent of replica i with verified bytes.
// Best-effort: a replica that cannot even accept the repair write is dead.
func (s *ReplicaSet) selfHeal(tc *trace.Ctx, parent *trace.Span, i int, p []byte, off int64) {
	if !s.Alive(i) {
		return // quarantined in the meantime; recovery will rebuild it
	}
	start := time.Now()
	err := s.devs[i].WriteAt(p, off)
	sp := tc.Add(parent, trace.LayerDisk, trace.OpDiskRepair, start, int64(time.Since(start)))
	if sp != nil {
		sp.Replica = int8(i)
		sp.Bytes = int64(len(p))
		if err != nil {
			sp.Status = 1
		}
	}
	if err != nil {
		s.notePromotion(tc, parent, s.markDead(i))
		return
	}
	s.selfheals[i].Inc()
	s.selfhealTotal.Inc()
}

// Repair rewrites one extent of replica i with known-good bytes. The
// scrubber uses it after deciding which copy is authoritative. The write
// counts as a self-heal; a replica that rejects it is marked dead.
func (s *ReplicaSet) Repair(i int, p []byte, off int64) error {
	if i < 0 || i >= len(s.devs) {
		return fmt.Errorf("repair: no replica %d: %w", i, ErrOutOfRange)
	}
	if !s.Alive(i) {
		return fmt.Errorf("repair: replica %d is dead: %w", i, ErrNoReplica)
	}
	if err := s.devs[i].WriteAt(p, off); err != nil {
		s.markDead(i)
		return fmt.Errorf("repair: writing replica %d: %w", i, err)
	}
	s.selfheals[i].Inc()
	s.selfhealTotal.Inc()
	return nil
}

// beginWrites registers n in-flight replica writes with the drain tracker.
func (s *ReplicaSet) beginWrites(n int) {
	s.pendMu.Lock()
	if s.pendCond == nil {
		s.pendCond = sync.NewCond(&s.pendMu)
	}
	s.pending += n
	s.pendMu.Unlock()
}

// endWrite retires one in-flight replica write.
func (s *ReplicaSet) endWrite() {
	s.pendMu.Lock()
	s.pending--
	if s.pending == 0 && s.pendCond != nil {
		s.pendCond.Broadcast()
	}
	s.pendMu.Unlock()
}

// Apply runs op against every live replica concurrently. Once syncN
// replicas have succeeded, Apply returns; the remaining replicas finish in
// the background (tracked; see Drain). syncN <= 0 returns immediately with
// the whole fanout in the background — the P-FACTOR 0 semantics of paper
// §2.2. syncN larger than the number of live replicas means fully
// synchronous. A replica whose op fails is marked dead; Apply fails only
// if every live replica's op failed during the synchronous wait (for
// syncN <= 0, it never fails).
//
// Because the per-replica ops run in parallel, op must be safe for
// concurrent invocation with distinct devices — every engine op is (it
// writes caller-owned buffers and re-encodes inode blocks from the
// internally locked table).
func (s *ReplicaSet) Apply(syncN int, op func(i int, dev Device) error) error {
	return s.ApplyNotify(syncN, op, nil)
}

// ApplyNotify is Apply with a completion hook: onSettled (when non-nil)
// runs exactly once, after every replica — synchronous and background —
// has finished its op. The engine uses it to unpin a fresh cache entry
// the moment its disk copies are as durable as they will get.
func (s *ReplicaSet) ApplyNotify(syncN int, op func(i int, dev Device) error, onSettled func()) error {
	s.applyGate.RLock()
	s.mu.Lock()
	live := make([]int, 0, len(s.devs))
	for i, a := range s.alive {
		if a {
			live = append(live, i)
		}
	}
	s.mu.Unlock()
	if len(live) == 0 {
		s.applyGate.RUnlock()
		return ErrNoReplica
	}
	if syncN > len(live) {
		syncN = len(live)
	}

	// A replica under online recovery is not in the live list — it is
	// still officially dead — but must see every write anyway, or the
	// catch-up copy could never converge. The op is mirrored to it through
	// a recording device that logs the extent before writing it, so the
	// recovery loop re-copies anything its bulk pass raced with. The
	// mirror is excluded from the P-FACTOR quorum (it is not durable until
	// recovery completes) but is tracked for Drain and onSettled.
	mirror := -1
	var mdev Device
	if rec := int(s.recovering.Load()); rec >= 0 {
		inLive := false
		for _, i := range live {
			if i == rec {
				inLive = true
			}
		}
		if !inLive {
			mirror = rec
			mdev = s.recDev
		}
	}

	// All replicas start now; the caller merely chooses how many results
	// to wait for. Registering the fanout before the goroutines launch
	// keeps Drain exact: a Drain entered after Apply returns sees every
	// write this call started.
	// Quorum eligibility: with gray-failure handling on, a replica whose
	// breaker is open still receives the write (it must stay convergent
	// for the moment its breaker closes) but does not count toward the
	// P-FACTOR quorum — a commit must not wait on a disk known to be
	// answering at gray latency. At least one replica always stays
	// eligible so a fully-gray set degrades to the fail-stop behavior.
	eligible := make([]bool, len(s.devs))
	nEligible := 0
	if g := s.gray.Load(); g != nil {
		for _, i := range live {
			if s.brk[i].state.Load() != breakerOpen {
				eligible[i] = true
				nEligible++
			}
		}
	}
	if nEligible == 0 {
		for _, i := range live {
			eligible[i] = true
		}
		nEligible = len(live)
	}
	if syncN > nEligible {
		syncN = nEligible
	}

	fanout := len(live)
	if mirror >= 0 {
		fanout++
	}
	s.beginWrites(fanout)
	type applyResult struct{ ok, quorum bool }
	results := make(chan applyResult, len(live))
	var remaining atomic.Int32
	remaining.Store(int32(fanout))
	// onSettled must complete before the write is retired from the drain
	// tracker: Drain() returning promises that background settle work (the
	// engine's cache unpin, stats updates) has already run, so a final
	// stats snapshot taken after Drain can never race the last settle hook.
	settle := func() {
		if remaining.Add(-1) == 0 && onSettled != nil {
			onSettled()
		}
		s.endWrite()
	}
	for _, i := range live {
		i := i
		//lint:ignore goroutinestop accounted by the set's pending-write counter: endWrite (via settle) signals Drain, which shutdown and the engine's fault path wait on
		go func() {
			ok := op(i, s.devs[i]) == nil
			if ok {
				s.writes[i].Inc()
			} else {
				s.markDead(i)
			}
			results <- applyResult{ok: ok, quorum: eligible[i]}
			settle()
		}()
	}
	if mirror >= 0 {
		j, jdev := mirror, mdev
		//lint:ignore goroutinestop accounted by the set's pending-write counter (endWrite via settle), exactly like the live fanout above
		go func() {
			if err := op(j, jdev); err != nil {
				s.recFailed.Store(true)
			} else {
				s.writes[j].Inc()
			}
			settle()
		}()
	}
	s.applyGate.RUnlock()
	if syncN <= 0 {
		return nil
	}

	s.parallelCommits.Inc()
	s.commitFanout.Add(int64(syncN))
	done, succeeded, anyOK := 0, 0, false
	for done < len(live) && succeeded < syncN {
		r := <-results
		if r.ok {
			anyOK = true
			if r.quorum {
				succeeded++
			}
		}
		done++
	}
	if !anyOK {
		return fmt.Errorf("no replica accepted the write: %w", ErrNoReplica)
	}
	return nil
}

// Drain blocks until all background (post-P-FACTOR) writes have finished.
// Tests, the cache-miss fault path, and orderly shutdown use it; see paper
// §2.2 on the durability semantics of P-FACTOR 0. It is safe to call
// concurrently with new Apply calls: writes that start while a Drain is
// waiting extend the wait (the drain returns only at a moment of true
// quiescence).
func (s *ReplicaSet) Drain() {
	s.pendMu.Lock()
	for s.pending > 0 {
		if s.pendCond == nil {
			s.pendCond = sync.NewCond(&s.pendMu)
		}
		s.pendCond.Wait()
	}
	s.pendMu.Unlock()
}

// extent is one byte range dirtied by a mirrored write during recovery.
type extent struct{ off, n int64 }

// extentLog collects extents dirtied while a recovery copy runs. Mirror
// goroutines append; the recovery loop swaps the whole list out per pass.
type extentLog struct {
	mu   sync.Mutex
	exts []extent
}

func (l *extentLog) add(off, n int64) {
	l.mu.Lock()
	// Collapse immediate rewrites of the same range (inode blocks see
	// these); correctness only needs the range present once per pass.
	if k := len(l.exts); k > 0 && l.exts[k-1] == (extent{off, n}) {
		l.mu.Unlock()
		return
	}
	l.exts = append(l.exts, extent{off, n})
	l.mu.Unlock()
}

func (l *extentLog) swap() []extent {
	l.mu.Lock()
	e := l.exts
	l.exts = nil
	l.mu.Unlock()
	return e
}

// recordingDevice wraps the recovery target: every write logs its extent
// before touching the device, so an extent is either re-copied by a later
// pass or was never written at all — a mirrored write can never be lost to
// a race with the bulk copy.
type recordingDevice struct {
	dev Device
	log *extentLog
}

var _ Device = (*recordingDevice)(nil)

func (r *recordingDevice) BlockSize() int { return r.dev.BlockSize() }
func (r *recordingDevice) Blocks() int64  { return r.dev.Blocks() }
func (r *recordingDevice) ReadAt(p []byte, off int64) error {
	return r.dev.ReadAt(p, off)
}
func (r *recordingDevice) WriteAt(p []byte, off int64) error {
	r.log.add(off, int64(len(p)))
	return r.dev.WriteAt(p, off)
}
func (r *recordingDevice) Sync() error  { return r.dev.Sync() }
func (r *recordingDevice) Close() error { return r.dev.Close() }

// maxCatchupPasses bounds the lock-free convergence loop before recovery
// falls back to its final (briefly gated) pass. Each pass only re-copies
// what was written during the previous one, so under any write rate the
// engine can sustain, the batches shrink geometrically.
const maxCatchupPasses = 8

// Recover brings replica i back online by copying the live contents onto
// it — the paper's whole-disk recovery, made online. The bulk copy runs
// with no locks held while the engine keeps serving reads and commits;
// writes that land during the copy are mirrored to the recovering replica
// and their extents logged, and catch-up passes re-copy the logged
// extents until the replica has converged. Only the final pass briefly
// gates new commits. Recover is synchronous to its caller (when it
// returns nil, the replica is alive and identical) but never stalls the
// rest of the set for the duration of the copy.
func (s *ReplicaSet) Recover(i int) error {
	return s.RecoverTraced(nil, nil, i)
}

// RecoverTraced is Recover with span emission: one recover span covering
// the whole catch-up copy. tc may be nil.
func (s *ReplicaSet) RecoverTraced(tc *trace.Ctx, parent *trace.Span, i int) error {
	if i < 0 || i >= len(s.devs) {
		return fmt.Errorf("recover: no replica %d: %w", i, ErrOutOfRange)
	}

	// Arm mirroring. From the moment the gate is released, every
	// ApplyNotify fan-out also writes to replica i through the recording
	// device. Writes launched before this point are not mirrored — the
	// Drain below waits for them, so the bulk copy (which starts after)
	// reads their effects from the source.
	s.applyGate.Lock()
	if s.recovering.Load() != -1 {
		s.applyGate.Unlock()
		return fmt.Errorf("recover: replica %d: %w", i, ErrRecovering)
	}
	s.mu.Lock()
	srcOK := s.alive[s.main] && s.main != i
	src := s.devs[s.main]
	alreadyAlive := s.alive[i]
	s.mu.Unlock()
	if !srcOK {
		s.applyGate.Unlock()
		return fmt.Errorf("disk: recover: no live source disk: %w", ErrNoReplica)
	}
	if alreadyAlive {
		s.applyGate.Unlock()
		return nil // live replicas receive every write already
	}
	log := &extentLog{}
	s.recDev = &recordingDevice{dev: s.devs[i], log: log}
	s.recFailed.Store(false)
	s.recovering.Store(int32(i))
	s.applyGate.Unlock()

	s.Drain()

	sp := tc.Begin(parent, trace.LayerDisk, trace.OpRecover)
	if sp != nil {
		sp.Replica = int8(i)
		sp.Bytes = s.Blocks() * int64(s.BlockSize())
	}
	err := s.recoverCopy(src, s.devs[i], log)
	err = s.finishRecovery(src, i, log, err)
	if sp != nil && err != nil {
		sp.Status = 1
	}
	tc.End(sp)
	return err
}

// recoverCopy is the unlocked phase: the bulk whole-disk copy plus the
// lock-free catch-up passes.
func (s *ReplicaSet) recoverCopy(src, dst Device, log *extentLog) error {
	bs := int64(s.BlockSize())
	// Copy a track's worth at a time; big enough to be sequential, small
	// enough not to hold a huge buffer.
	const blocksPerCopy = 64
	buf := make([]byte, bs*blocksPerCopy)
	total := s.Blocks()
	for blk := int64(0); blk < total; blk += blocksPerCopy {
		n := blocksPerCopy
		if rem := total - blk; rem < blocksPerCopy {
			n = int(rem)
		}
		chunk := buf[:int64(n)*bs]
		if err := src.ReadAt(chunk, blk*bs); err != nil {
			return fmt.Errorf("disk: recover: reading source: %w", err)
		}
		if err := dst.WriteAt(chunk, blk*bs); err != nil {
			return fmt.Errorf("disk: recover: writing target: %w", err)
		}
	}
	// Catch-up: re-copy extents dirtied during the previous pass. The
	// swap-then-drain order is load-bearing: an extent in the batch was
	// logged after its fan-out registered with the drain tracker, so the
	// Drain guarantees the source copy of every batched extent has landed
	// before we read it.
	for pass := 0; pass < maxCatchupPasses; pass++ {
		batch := log.swap()
		if len(batch) == 0 {
			break
		}
		s.Drain()
		for _, e := range batch {
			if err := copyExtent(src, dst, e, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// finishRecovery is the gated phase: with new fan-outs held at the gate
// and in-flight ones drained, copy whatever is still dirty, then flip the
// replica alive and disarm mirroring. prevErr aborts the recovery but the
// state teardown still runs.
func (s *ReplicaSet) finishRecovery(src Device, i int, log *extentLog, prevErr error) error {
	s.applyGate.Lock()
	defer s.applyGate.Unlock()
	s.Drain() // all launched fan-outs (and their log adds) complete here
	err := prevErr
	if err == nil {
		buf := make([]byte, int64(s.BlockSize())*64)
		for _, e := range log.swap() {
			if cerr := copyExtent(src, s.devs[i], e, buf); cerr != nil {
				err = cerr
				break
			}
		}
	}
	if err == nil && s.recFailed.Load() {
		err = fmt.Errorf("disk: recover: a mirrored write failed on replica %d: %w", i, ErrFaulted)
	}
	if err == nil {
		if serr := s.devs[i].Sync(); serr != nil {
			err = fmt.Errorf("disk: recover: sync replica %d: %w", i, serr)
		}
	}
	if err == nil {
		s.mu.Lock()
		s.alive[i] = true
		s.mu.Unlock()
		s.faults[i].Store(0) // repaired drives start with a fresh budget
		s.recoveries.Inc()
	}
	s.recovering.Store(-1)
	s.recDev = nil
	return err
}

// copyExtent copies one byte range from src to dst through buf.
func copyExtent(src, dst Device, e extent, buf []byte) error {
	off, n := e.off, e.n
	for n > 0 {
		c := int64(len(buf))
		if n < c {
			c = n
		}
		p := buf[:c]
		if err := src.ReadAt(p, off); err != nil {
			return fmt.Errorf("disk: recover: reading source extent: %w", err)
		}
		if err := dst.WriteAt(p, off); err != nil {
			return fmt.Errorf("disk: recover: writing target extent: %w", err)
		}
		off += c
		n -= c
	}
	return nil
}

// Recovering returns the index of the replica under online recovery, or
// -1 if none.
func (s *ReplicaSet) Recovering() int { return int(s.recovering.Load()) }

// ReplicaHealth is one replica's health snapshot, as served by the
// SALVAGE RPC.
type ReplicaHealth struct {
	Index          int   `json:"index"`
	Alive          bool  `json:"alive"`
	Recovering     bool  `json:"recovering"`
	Main           bool  `json:"main"`
	Reads          int64 `json:"reads"`
	Writes         int64 `json:"writes"`
	Errors         int64 `json:"errors"`
	ChecksumErrors int64 `json:"checksum_errors"`
	Repairs        int64 `json:"repairs"`
	// Gray-failure view: the circuit-breaker state ("closed", "open",
	// "half-open") and the smoothed observed read latency. A set without
	// EnableBreakers reports "closed" and zero.
	Breaker       string `json:"breaker"`
	LatencyEwmaUs int64  `json:"latency_ewma_us"`
}

// Health returns a per-replica health snapshot.
func (s *ReplicaSet) Health() []ReplicaHealth {
	main := s.Main()
	rec := s.Recovering()
	out := make([]ReplicaHealth, len(s.devs))
	for i := range s.devs {
		out[i] = ReplicaHealth{
			Index:          i,
			Alive:          s.Alive(i),
			Recovering:     i == rec,
			Main:           i == main,
			Reads:          s.reads[i].Load(),
			Writes:         s.writes[i].Load(),
			Errors:         s.errs[i].Load(),
			ChecksumErrors: s.checksumErrs[i].Load(),
			Repairs:        s.selfheals[i].Load(),
			Breaker:        breakerStateName(s.brk[i].state.Load()),
			LatencyEwmaUs:  s.brk[i].ewmaNs.Load() / int64(time.Microsecond),
		}
	}
	return out
}

// BreakerState returns replica i's circuit-breaker state name (tests
// and the health report use it).
func (s *ReplicaSet) BreakerState(i int) string {
	return breakerStateName(s.brk[i].state.Load())
}

// HedgedReads returns how many reads were hedged (predictive or timer).
func (s *ReplicaSet) HedgedReads() int64 { return s.hedgedReads.Load() }

// BreakerOpens returns how many times any replica's breaker opened.
func (s *ReplicaSet) BreakerOpens() int64 { return s.breakerOpens.Load() }

// GrayLadderReads returns how many reads went through the health-ranked
// ladder — the denominator of the hedge-rate cap.
func (s *ReplicaSet) GrayLadderReads() int64 { return s.grayLadderReads.Load() }

// WriteAt writes p to every live replica synchronously, making ReplicaSet
// itself a Device (used when formatting and by layout.Load/WriteInode).
func (s *ReplicaSet) WriteAt(p []byte, off int64) error {
	return s.Apply(s.N(), func(_ int, dev Device) error {
		return dev.WriteAt(p, off)
	})
}

// Sync flushes every live replica. Like writes, it succeeds as long as at
// least one replica remains usable.
func (s *ReplicaSet) Sync() error {
	s.Drain()
	for i, dev := range s.devs {
		if !s.Alive(i) {
			continue
		}
		if err := dev.Sync(); err != nil {
			s.markDead(i)
		}
	}
	if s.AliveCount() == 0 {
		return ErrNoReplica
	}
	return nil
}

var _ Device = (*ReplicaSet)(nil)

// Device returns replica i's device (for tests and recovery tooling).
func (s *ReplicaSet) Device(i int) Device { return s.devs[i] }

// Reads returns the number of successful ReadAt calls replica i has
// served (tests assert fault-singleflight behaviour with it).
func (s *ReplicaSet) Reads(i int) int64 { return s.reads[i].Load() }

// Writes returns the number of successful writes replica i has applied
// (tests assert parallel-commit behaviour with it).
func (s *ReplicaSet) Writes(i int) int64 { return s.writes[i].Load() }

// ChecksumErrors returns how many corrupt reads replica i has served.
func (s *ReplicaSet) ChecksumErrors(i int) int64 { return s.checksumErrs[i].Load() }

// Repairs returns how many extents have been rewritten in place on
// replica i (read-path self-heals plus scrubber repairs).
func (s *ReplicaSet) Repairs(i int) int64 { return s.selfheals[i].Load() }

// Promotions returns how many times the set promoted a new main.
func (s *ReplicaSet) Promotions() int64 { return s.promotions.Load() }

// Recoveries returns how many online recoveries have completed.
func (s *ReplicaSet) Recoveries() int64 { return s.recoveries.Load() }

// AttachMetrics registers the set's per-replica counters with a stats
// registry under the "disk." prefix: reads, writes, demoting errors,
// checksum errors and self-heal repairs per replica, plus liveness,
// failover/promotion/recovery totals, and the parallel-commit fanout
// (synchronous commits and the replicas their callers waited on).
func (s *ReplicaSet) AttachMetrics(r *stats.Registry) {
	for i := range s.devs {
		i := i
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.reads", i), s.reads[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.writes", i), s.writes[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.errors", i), s.errs[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.checksum_errors", i), s.checksumErrs[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.selfheal_repairs", i), s.selfheals[i].Load)
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.alive", i), func() int64 {
			if s.Alive(i) {
				return 1
			}
			return 0
		})
		r.GaugeFunc(fmt.Sprintf("disk.replica%d.breaker_state", i), func() int64 {
			return int64(s.brk[i].state.Load())
		})
		if sim, ok := s.devs[i].(*SimDisk); ok {
			sim.AttachMetrics(r, fmt.Sprintf("disk.replica%d", i))
		}
	}
	r.GaugeFunc("disk.alive_replicas", func() int64 { return int64(s.AliveCount()) })
	r.GaugeFunc("disk.main_index", func() int64 { return int64(s.Main()) })
	r.GaugeFunc("disk.read_failovers", s.failovers.Load)
	r.GaugeFunc("disk.checksum_errors", func() int64 {
		var n int64
		for i := range s.checksumErrs {
			n += s.checksumErrs[i].Load()
		}
		return n
	})
	r.GaugeFunc("disk.selfheal_repairs", s.selfhealTotal.Load)
	r.GaugeFunc("disk.promotions", s.promotions.Load)
	r.GaugeFunc("disk.recoveries", s.recoveries.Load)
	r.GaugeFunc("disk.recovering", func() int64 { return int64(s.Recovering()) })
	r.GaugeFunc("disk.parallel_commits", s.parallelCommits.Load)
	r.GaugeFunc("disk.parallel_commit_fanout", s.commitFanout.Load)
	r.GaugeFunc("disk.hedged_reads", s.hedgedReads.Load)
	r.GaugeFunc("disk.breaker_opens", s.breakerOpens.Load)
	r.GaugeFunc("disk.breaker_closes", s.breakerCloses.Load)
	r.GaugeFunc("disk.breaker_probes", s.breakerProbes.Load)
	r.GaugeFunc("disk.pending_writes", func() int64 {
		s.pendMu.Lock()
		defer s.pendMu.Unlock()
		return int64(s.pending)
	})
}

// Close drains background writes and closes every replica, returning the
// first error.
func (s *ReplicaSet) Close() error {
	s.Drain()
	var first error
	for _, d := range s.devs {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
