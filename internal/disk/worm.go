package disk

import (
	"errors"
	"fmt"
	"sync"
)

// ErrWriteOnce means a WORM block was written twice.
var ErrWriteOnce = errors.New("disk: block already written (write-once medium)")

// WORMDisk wraps a Device with write-once-read-many semantics, modelling
// the optical disks the paper mentions as a home for immutable versions
// (§2: "the possibility of keeping versions on write-once storage such as
// optical disks"). Every block may be written exactly once; rewrites fail
// with ErrWriteOnce. Reads of unwritten blocks succeed (they return the
// medium's blank state), as on real WORM drives.
type WORMDisk struct {
	dev Device

	mu      sync.Mutex
	written []bool // guarded by mu; per block
}

var _ Device = (*WORMDisk)(nil)

// NewWORM wraps dev as a write-once medium. The underlying device is
// assumed blank; all blocks start unwritten.
func NewWORM(dev Device) *WORMDisk {
	return &WORMDisk{dev: dev, written: make([]bool, dev.Blocks())}
}

// BlockSize returns the wrapped device's sector size.
func (d *WORMDisk) BlockSize() int { return d.dev.BlockSize() }

// Blocks returns the wrapped device's capacity.
func (d *WORMDisk) Blocks() int64 { return d.dev.Blocks() }

// ReadAt implements Device.
func (d *WORMDisk) ReadAt(p []byte, off int64) error { return d.dev.ReadAt(p, off) }

// WriteAt implements Device: the write must cover only virgin blocks, and
// it burns them.
func (d *WORMDisk) WriteAt(p []byte, off int64) error {
	if len(p) == 0 {
		return nil
	}
	bs := int64(d.BlockSize())
	first := off / bs
	last := (off + int64(len(p)) - 1) / bs
	if off < 0 || last >= d.Blocks() {
		return fmt.Errorf("offset %d length %d: %w", off, len(p), ErrOutOfRange)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for b := first; b <= last; b++ {
		if d.written[b] {
			return fmt.Errorf("block %d: %w", b, ErrWriteOnce)
		}
	}
	if err := d.dev.WriteAt(p, off); err != nil {
		return err
	}
	for b := first; b <= last; b++ {
		d.written[b] = true
	}
	return nil
}

// Sync implements Device.
func (d *WORMDisk) Sync() error { return d.dev.Sync() }

// Close implements Device.
func (d *WORMDisk) Close() error { return d.dev.Close() }

// WrittenBlocks reports how many blocks have been burned.
func (d *WORMDisk) WrittenBlocks() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, w := range d.written {
		if w {
			n++
		}
	}
	return n
}
