package disk

import (
	"sync/atomic"
	"time"

	"bulletfs/internal/trace"
)

// commitClock publishes one replica's commit timing from its worker
// goroutine to the request goroutine that records the span. The fields
// are atomics because the worker may still be mid-write when the quorum
// returns and the span is stamped: start is 0 until the worker begins,
// dur is 0 until it finishes, and a negative dur marks a failed write.
type commitClock struct {
	start atomic.Int64 // Unix nanos; 0 = op not yet started
	dur   atomic.Int64 // nanos (min 1); 0 = in flight; negative = failed
}

// ApplyNotifyTraced is ApplyNotify with one replica-commit span per live
// replica, recorded on the caller's goroutine once the synchronous quorum
// is reached. Replicas whose write has not finished by then (the
// background remainder of a P-FACTOR commit, or the whole fanout for
// syncN <= 0) get a span with Dur = DurPending — the trace shows exactly
// which disks the reply waited for and which it did not. tc may be nil,
// in which case this is ApplyNotify.
func (s *ReplicaSet) ApplyNotifyTraced(tc *trace.Ctx, parent *trace.Span, syncN int, op func(i int, dev Device) error, onSettled func()) error {
	if !tc.Active() {
		return s.ApplyNotify(syncN, op, onSettled)
	}

	_, aliveMask := s.readSnapshot()
	clocks := make([]commitClock, len(s.devs))
	wrapped := func(i int, dev Device) error {
		clocks[i].start.Store(time.Now().UnixNano())
		t0 := time.Now()
		err := op(i, dev)
		d := int64(time.Since(t0))
		if d < 1 {
			d = 1 // 0 is the in-flight sentinel
		}
		if err != nil {
			d = -d
		}
		clocks[i].dur.Store(d)
		return err
	}
	err := s.ApplyNotify(syncN, wrapped, onSettled)

	now := time.Now()
	for i := range clocks {
		if aliveMask&(1<<uint(i)) == 0 {
			continue // dead before the commit: never attempted
		}
		st := clocks[i].start.Load()
		d := clocks[i].dur.Load()
		var sp *trace.Span
		switch {
		case st == 0:
			// Live replica whose goroutine had not been scheduled yet.
			sp = tc.Add(parent, trace.LayerDisk, trace.OpReplicaCommit, now, trace.DurPending)
		case d == 0:
			sp = tc.Add(parent, trace.LayerDisk, trace.OpReplicaCommit, time.Unix(0, st), trace.DurPending)
		case d < 0:
			sp = tc.Add(parent, trace.LayerDisk, trace.OpReplicaCommit, time.Unix(0, st), -d)
			if sp != nil {
				sp.Status = 1
			}
		default:
			sp = tc.Add(parent, trace.LayerDisk, trace.OpReplicaCommit, time.Unix(0, st), d)
		}
		if sp != nil {
			sp.Replica = int8(i)
			sp.PFactor = int8(syncN)
		}
	}
	return err
}
