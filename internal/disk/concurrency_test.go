package disk

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// hungDevice parks every WriteAt until release is closed.
type hungDevice struct {
	Device
	release chan struct{}
}

func (d *hungDevice) WriteAt(p []byte, off int64) error {
	<-d.release
	return d.Device.WriteAt(p, off)
}

// signalDevice closes done after its first successful write.
type signalDevice struct {
	Device
	once sync.Once
	done chan struct{}
}

func (d *signalDevice) WriteAt(p []byte, off int64) error {
	err := d.Device.WriteAt(p, off)
	if err == nil {
		d.once.Do(func() { close(d.done) })
	}
	return err
}

// TestParallelCommitWithHungReplica proves the synchronous phase of Apply
// fans out concurrently: replica 0's write refuses to proceed until
// replica 1's write has completed. Under the old serial loop (replica 0
// first, then replica 1) this dependency deadlocks; with parallel commit
// both writes are in flight at once and the P-FACTOR 2 commit completes.
func TestParallelCommitWithHungReplica(t *testing.T) {
	memA, err := NewMem(512, 64)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	memB, err := NewMem(512, 64)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	done := make(chan struct{})
	a := &hungDevice{Device: memA, release: done}
	b := &signalDevice{Device: memB, done: done}
	set, err := NewReplicaSet(a, b)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}

	payload := []byte("parallel commit payload")
	errc := make(chan error, 1)
	go func() {
		errc <- set.Apply(2, func(i int, dev Device) error {
			return dev.WriteAt(payload, 0)
		})
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Apply(2): %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("P-FACTOR 2 commit deadlocked: replica writes did not run in parallel")
	}
	set.Drain()

	for i, mem := range []*MemDisk{memA, memB} {
		got := make([]byte, len(payload))
		if err := mem.ReadAt(got, 0); err != nil {
			t.Fatalf("replica %d ReadAt: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("replica %d holds %q, want %q", i, got, payload)
		}
	}
	if set.AliveCount() != 2 {
		t.Fatalf("AliveCount = %d, want 2", set.AliveCount())
	}
}

// TestParallelCommitReturnsAfterSyncQuorum proves the max-of-k latency
// claim: Apply(1) replies as soon as one replica has the write, while the
// other replica's write is still parked; Drain then settles the laggard.
func TestParallelCommitReturnsAfterSyncQuorum(t *testing.T) {
	memA, err := NewMem(512, 64)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	memB, err := NewMem(512, 64)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	release := make(chan struct{})
	b := &hungDevice{Device: memB, release: release}
	set, err := NewReplicaSet(memA, b)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}

	payload := []byte("quorum of one")
	errc := make(chan error, 1)
	go func() {
		errc <- set.Apply(1, func(i int, dev Device) error {
			return dev.WriteAt(payload, 0)
		})
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Apply(1): %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Apply(1) waited for the hung replica instead of the quorum")
	}

	// The laggard has not written yet.
	got := make([]byte, len(payload))
	if err := memB.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("hung replica wrote before being released")
	}

	close(release)
	set.Drain()
	if err := memB.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt after drain: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("background write never landed on the slow replica")
	}
	if set.Writes(0) != 1 || set.Writes(1) != 1 {
		t.Fatalf("writes = %d,%d, want 1,1", set.Writes(0), set.Writes(1))
	}
}
