package disk

import (
	"testing"
	"time"

	"bulletfs/internal/hwmodel"

	"bulletfs/internal/stats"
)

func simWorld(t *testing.T) (*SimDisk, *hwmodel.Clock) {
	t.Helper()
	mem, err := NewMem(512, 2048)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	clock := &hwmodel.Clock{}
	return NewSim(mem, hwmodel.AmoebaProfile().Disk, clock), clock
}

func TestSimDiskChargesTime(t *testing.T) {
	d, clock := simWorld(t)
	before := clock.Now()
	if err := d.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if clock.Now() == before {
		t.Fatal("write did not advance the virtual clock")
	}
}

func TestSimDiskSequentialCheaper(t *testing.T) {
	d, clock := simWorld(t)
	buf := make([]byte, 4096)

	// First access: random positioning.
	start := clock.Now()
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	randomCost := clock.Since(start)

	// Second access continues where the head stopped: sequential.
	start = clock.Now()
	if err := d.WriteAt(buf, 4096); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	seqCost := clock.Since(start)

	if seqCost >= randomCost {
		t.Fatalf("sequential (%v) not cheaper than random (%v)", seqCost, randomCost)
	}

	// Third access jumps backwards: random again.
	start = clock.Now()
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	jumpCost := clock.Since(start)
	if jumpCost <= seqCost {
		t.Fatalf("non-sequential read (%v) not dearer than sequential write (%v)", jumpCost, seqCost)
	}
}

func TestSimDiskLargeTransferDominatedByBandwidth(t *testing.T) {
	d, clock := simWorld(t)
	buf := make([]byte, 512*1024) // 512 KB
	start := clock.Now()
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := clock.Since(start)
	// At ~1 MB/s the transfer alone is ~0.5 s; positioning is ~27 ms.
	if got < 400*time.Millisecond {
		t.Fatalf("512 KB write = %v, want >= 400ms at ~1MB/s", got)
	}
	if got > time.Second {
		t.Fatalf("512 KB write = %v, want <= 1s", got)
	}
}

func TestSimDiskStats(t *testing.T) {
	d, _ := simWorld(t)
	buf := make([]byte, 1024)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if err := d.ReadAt(buf, 1024); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 2 {
		t.Fatalf("stats = %+v, want 1 write / 2 reads", st)
	}
	if st.BytesWritten != 1024 || st.BytesRead != 2048 {
		t.Fatalf("stats = %+v, want 1024 written / 2048 read", st)
	}
	// Access 1 random, access 2 random (jump back), access 3 sequential.
	if st.Seeks != 2 {
		t.Fatalf("seeks = %d, want 2", st.Seeks)
	}
	d.ResetStats()
	if st := d.Stats(); st != (SimStats{}) {
		t.Fatalf("stats after reset = %+v, want zero", st)
	}
}

func TestSimDiskErrorDoesNotCharge(t *testing.T) {
	d, clock := simWorld(t)
	before := clock.Now()
	if err := d.ReadAt(make([]byte, 16), d.Blocks()*int64(d.BlockSize())); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if clock.Now() != before {
		t.Fatal("failed access advanced the clock")
	}
}

func TestSimDiskPassesGeometry(t *testing.T) {
	d, _ := simWorld(t)
	if d.BlockSize() != 512 || d.Blocks() != 2048 {
		t.Fatalf("geometry %dx%d, want 512x2048", d.BlockSize(), d.Blocks())
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSimDiskMetrics(t *testing.T) {
	d, _ := simWorld(t)
	reg := stats.NewRegistry()
	d.AttachMetrics(reg, "disk.replica0")

	if err := d.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	buf := make([]byte, 1024)
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}

	snap := reg.Snapshot()
	if n := snap.Gauges["disk.replica0.sim_writes"]; n != 1 {
		t.Errorf("sim_writes = %d, want 1", n)
	}
	if n := snap.Gauges["disk.replica0.sim_reads"]; n != 1 {
		t.Errorf("sim_reads = %d, want 1", n)
	}
	if n := snap.Gauges["disk.replica0.sim_bytes_written"]; n != 4096 {
		t.Errorf("sim_bytes_written = %d, want 4096", n)
	}
	if n := snap.Gauges["disk.replica0.sim_bytes_read"]; n != 1024 {
		t.Errorf("sim_bytes_read = %d, want 1024", n)
	}
	if n := snap.Gauges["disk.replica0.sim_position_ns"]; n <= 0 {
		t.Errorf("sim_position_ns = %d, want > 0", n)
	}
	if n := snap.Gauges["disk.replica0.sim_transfer_ns"]; n <= 0 {
		t.Errorf("sim_transfer_ns = %d, want > 0", n)
	}
}
