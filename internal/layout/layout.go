// Package layout implements the Bullet server's on-disk structure from
// paper §3 and Figure 1: a disk descriptor in inode 0, an inode table, and
// a data area of contiguous files separated by holes.
//
// The disk is divided into two sections. The first is the inode table; the
// second contains contiguous files and the gaps between them. Inode entry 0
// is special and holds three integers: the physical block size, the number
// of blocks in the inode table ("control size"), and the number of blocks
// in the file area ("data size").
//
// Every other inode describes one file with four fields (paper §3):
//
//  1. a 6-byte random number used for access protection — the key against
//     which capabilities are validated;
//  2. a 2-byte index with no significance on disk, used at run time to
//     point at the file's cache slot (rnode);
//  3. a 4-byte first-block number of the file in the data area;
//  4. a 4-byte file size in bytes.
//
// When the server starts it reads the whole inode table into RAM and keeps
// it there permanently, scanning it to rebuild the free lists and to check
// consistency (files in bounds, no overlaps).
package layout

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

// InodeSize is the on-disk size of one inode: 6 + 2 + 4 + 4 bytes.
const InodeSize = 16

// Magic identifies a Bullet-formatted disk. It lives in the descriptor
// block alongside the three size fields. (The paper's descriptor holds only
// the sizes; the magic is our addition so that Load can reject a disk that
// was never formatted, which the paper's server trusted its operator about.)
const Magic = 0x42554c37 // "BUL7"

// Magic2 identifies the version-2 layout: identical to v1 except that the
// last SumBlocks blocks of the disk are carved out of the data area and
// hold one 8-byte checksum entry per inode (a validity flag plus the
// CRC32C of the file's contents). The paper has no checksums at all; see
// docs/RECOVERY.md for why we add them. Carving the sum area from the
// *tail* of the disk is what makes an in-place v1 upgrade possible: the
// inode table and every file keep their block addresses, only DataSize
// shrinks.
const Magic2 = 0x42554c38 // "BUL8"

// SumEntrySize is the on-disk size of one checksum entry: a 4-byte flags
// word (bit 0 = checksum valid, bits 8–31 = a tag of the file's random
// number) followed by the 4-byte CRC32C.
const SumEntrySize = 8

// sumFlagValid marks a checksum entry as present. Entries start zero
// (absent) and are backfilled lazily on first fault-in of v1-era files.
const sumFlagValid = 1

// sumTagWord builds the flags word for a live entry. Embedding three bytes
// of the file's random number makes entries self-invalidating: when an
// inode slot is freed and reallocated, the new file's random no longer
// matches the stale entry's tag, so the entry is ignored and recomputed —
// delete never has to write the checksum area at all.
func sumTagWord(r capability.Random) uint32 {
	return sumFlagValid | uint32(r[0])<<8 | uint32(r[1])<<16 | uint32(r[2])<<24
}

// Descriptor is inode entry 0: the shape of the disk.
type Descriptor struct {
	BlockSize int   // physical sector size used by the disk hardware
	CtrlSize  int64 // number of blocks in the inode table
	DataSize  int64 // number of blocks in the file area
	Version   int   // 1 = paper layout, 2 = with trailing checksum area
}

// Inode describes one file. The first four fields are the paper's 16-byte
// on-disk inode; Sum/HasSum mirror the file's checksum entry, which lives
// separately in the v2 checksum area (RAM-only on v1 disks, backfilled
// lazily on first fault-in).
type Inode struct {
	Random     capability.Random // access-protection key; zero = free inode
	CacheIndex uint16            // rnode index + 1; 0 = not cached (RAM only)
	FirstBlock uint32            // first block of the file in the data area
	Size       uint32            // file size in bytes

	Sum    uint32 // CRC32C (Castagnoli) of the file's Size bytes
	HasSum bool   // false until the checksum is computed or loaded
}

// InUse reports whether the inode describes a live file. A zero-filled
// random number marks a free inode (paper §3: "unused inodes (inodes that
// are zero-filled)").
func (ino Inode) InUse() bool { return !ino.Random.IsZero() }

// Blocks returns how many data-area blocks the file occupies on a disk with
// the given block size. Zero-byte files still occupy one block so that they
// have a well-defined, non-overlapping location.
func (ino Inode) Blocks(blockSize int) int64 {
	if ino.Size == 0 {
		return 1
	}
	return (int64(ino.Size) + int64(blockSize) - 1) / int64(blockSize)
}

// encode writes the inode's disk representation into b.
func (ino Inode) encode(b []byte) {
	_ = b[InodeSize-1]
	copy(b[0:6], ino.Random[:])
	binary.BigEndian.PutUint16(b[6:8], ino.CacheIndex)
	binary.BigEndian.PutUint32(b[8:12], ino.FirstBlock)
	binary.BigEndian.PutUint32(b[12:16], ino.Size)
}

// decodeInode parses one on-disk inode.
func decodeInode(b []byte) Inode {
	var ino Inode
	copy(ino.Random[:], b[0:6])
	ino.CacheIndex = binary.BigEndian.Uint16(b[6:8])
	ino.FirstBlock = binary.BigEndian.Uint32(b[8:12])
	ino.Size = binary.BigEndian.Uint32(b[12:16])
	return ino
}

// Errors reported by this package.
var (
	// ErrNotFormatted means the descriptor block is not a Bullet disk.
	ErrNotFormatted = errors.New("layout: disk not Bullet-formatted")
	// ErrCorrupt means the descriptor or inode table is inconsistent.
	ErrCorrupt = errors.New("layout: on-disk structure corrupt")
	// ErrBadInode means an inode number is out of range or free.
	ErrBadInode = errors.New("layout: bad inode number")
	// ErrNoFreeInode means the inode table is full.
	ErrNoFreeInode = errors.New("layout: no free inodes")
	// ErrConfig means a format or allocation request was unusable.
	ErrConfig = errors.New("layout: bad configuration")
)

// FormatConfig controls Format.
type FormatConfig struct {
	// Inodes is how many file slots to provision (excluding the
	// descriptor). The control area is sized to hold them.
	Inodes int
	// Version selects the on-disk layout: 0 or 2 formats the current
	// (checksummed) layout, 1 formats the pre-checksum paper layout —
	// kept for upgrade tests and byte-compatible with old disks.
	Version int
}

// sumBlocksFor returns how many blocks the checksum area needs for a table
// of ctrlBlocks control blocks: one SumEntrySize entry per inode slot
// (including the unused descriptor slot, so entry offsets are just n*8).
func sumBlocksFor(bs int, ctrlBlocks int64) int64 {
	slots := ctrlBlocks * int64(bs/InodeSize)
	return (slots*SumEntrySize + int64(bs) - 1) / int64(bs)
}

// Format writes a fresh Bullet structure onto dev: a descriptor, an empty
// inode table, a data area, and (v2) a trailing checksum area.
func Format(dev disk.Device, cfg FormatConfig) error {
	bs := dev.BlockSize()
	if bs < InodeSize*2 {
		return fmt.Errorf("block size %d too small: %w", bs, ErrConfig)
	}
	if cfg.Inodes <= 0 {
		return fmt.Errorf("need at least one inode: %w", ErrConfig)
	}
	version := cfg.Version
	switch version {
	case 0:
		version = 2
	case 1, 2:
	default:
		return fmt.Errorf("unknown layout version %d: %w", cfg.Version, ErrConfig)
	}
	inodesPerBlock := bs / InodeSize
	// +1 for the descriptor occupying slot 0.
	ctrlBlocks := int64((cfg.Inodes + 1 + inodesPerBlock - 1) / inodesPerBlock)
	var sumBlocks int64
	if version == 2 {
		sumBlocks = sumBlocksFor(bs, ctrlBlocks)
	}
	dataBlocks := dev.Blocks() - ctrlBlocks - sumBlocks
	if dataBlocks <= 0 {
		return fmt.Errorf("disk too small: %d blocks of inode table + %d of checksums on a %d-block disk: %w",
			ctrlBlocks, sumBlocks, dev.Blocks(), ErrConfig)
	}

	// Zero the whole control area (zero inodes = free inodes).
	zero := make([]byte, bs)
	for b := int64(0); b < ctrlBlocks; b++ {
		if err := dev.WriteAt(zero, b*int64(bs)); err != nil {
			return fmt.Errorf("layout: clearing inode table: %w", err)
		}
	}
	// Zero the checksum area (zero entries = no checksum recorded).
	for b := int64(0); b < sumBlocks; b++ {
		if err := dev.WriteAt(zero, (ctrlBlocks+dataBlocks+b)*int64(bs)); err != nil {
			return fmt.Errorf("layout: clearing checksum area: %w", err)
		}
	}

	// Descriptor into slot 0: magic + block size + ctrl size + data size.
	desc := make([]byte, InodeSize)
	descriptorBytes(Descriptor{
		BlockSize: bs, CtrlSize: ctrlBlocks, DataSize: dataBlocks, Version: version,
	}, desc)
	if err := dev.WriteAt(desc, 0); err != nil {
		return fmt.Errorf("layout: writing descriptor: %w", err)
	}
	return dev.Sync()
}

// ReadDescriptor parses inode 0 from dev.
func ReadDescriptor(dev disk.Device) (Descriptor, error) {
	buf := make([]byte, InodeSize)
	if err := dev.ReadAt(buf, 0); err != nil {
		return Descriptor{}, fmt.Errorf("layout: reading descriptor: %w", err)
	}
	d := Descriptor{
		BlockSize: int(binary.BigEndian.Uint32(buf[4:8])),
		CtrlSize:  int64(binary.BigEndian.Uint32(buf[8:12])),
		DataSize:  int64(binary.BigEndian.Uint32(buf[12:16])),
	}
	switch binary.BigEndian.Uint32(buf[0:4]) {
	case Magic:
		d.Version = 1
	case Magic2:
		d.Version = 2
	default:
		return Descriptor{}, ErrNotFormatted
	}
	if d.BlockSize != dev.BlockSize() {
		return Descriptor{}, fmt.Errorf("descriptor block size %d, device %d: %w",
			d.BlockSize, dev.BlockSize(), ErrCorrupt)
	}
	if d.CtrlSize <= 0 || d.DataSize <= 0 || d.CtrlSize+d.DataSize+d.SumBlocks() > dev.Blocks() {
		return Descriptor{}, fmt.Errorf("descriptor sizes %d+%d+%d on %d-block device: %w",
			d.CtrlSize, d.DataSize, d.SumBlocks(), dev.Blocks(), ErrCorrupt)
	}
	return d, nil
}

// MaxInodes returns how many file inodes the descriptor provides.
func (d Descriptor) MaxInodes() int {
	return int(d.CtrlSize)*(d.BlockSize/InodeSize) - 1
}

// DataStart returns the byte offset of the data area.
func (d Descriptor) DataStart() int64 { return d.CtrlSize * int64(d.BlockSize) }

// DataOffset returns the byte offset of data-area block b.
func (d Descriptor) DataOffset(b int64) int64 { return d.DataStart() + b*int64(d.BlockSize) }

// SumBlocks returns the number of blocks in the checksum area (0 for v1).
// The count is derived from the geometry rather than stored, so the v1
// descriptor encoding needs no new field.
func (d Descriptor) SumBlocks() int64 {
	if d.Version < 2 {
		return 0
	}
	return sumBlocksFor(d.BlockSize, d.CtrlSize)
}

// SumStart returns the first block of the checksum area, which sits
// immediately after the data area at the tail of the disk.
func (d Descriptor) SumStart() int64 { return d.CtrlSize + d.DataSize }

// SumBlockOf returns the absolute block number holding inode n's checksum
// entry. Only meaningful on v2 layouts.
func (d Descriptor) SumBlockOf(n uint32) int64 {
	return d.SumStart() + int64(n)*SumEntrySize/int64(d.BlockSize)
}
