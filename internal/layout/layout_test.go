package layout

import (
	"errors"
	"testing"
	"testing/quick"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

func newDev(t *testing.T, blocks int64) *disk.MemDisk {
	t.Helper()
	d, err := disk.NewMem(512, blocks)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	return d
}

func format(t *testing.T, dev disk.Device, inodes int) Descriptor {
	t.Helper()
	if err := Format(dev, FormatConfig{Inodes: inodes}); err != nil {
		t.Fatalf("Format: %v", err)
	}
	desc, err := ReadDescriptor(dev)
	if err != nil {
		t.Fatalf("ReadDescriptor: %v", err)
	}
	return desc
}

func rnd(t *testing.T) capability.Random {
	t.Helper()
	r, err := capability.NewRandom()
	if err != nil {
		t.Fatalf("NewRandom: %v", err)
	}
	return r
}

func TestFormatAndReadDescriptor(t *testing.T) {
	dev := newDev(t, 256)
	desc := format(t, dev, 100)
	if desc.BlockSize != 512 {
		t.Fatalf("BlockSize = %d, want 512", desc.BlockSize)
	}
	// 101 slots at 32 per block -> 4 control blocks.
	if desc.CtrlSize != 4 {
		t.Fatalf("CtrlSize = %d, want 4", desc.CtrlSize)
	}
	// 128 sum entries of 8 bytes -> 2 checksum blocks at the tail.
	if desc.SumBlocks() != 2 {
		t.Fatalf("SumBlocks = %d, want 2", desc.SumBlocks())
	}
	if desc.DataSize != 256-4-2 {
		t.Fatalf("DataSize = %d, want 250", desc.DataSize)
	}
	if desc.Version != 2 {
		t.Fatalf("Version = %d, want 2", desc.Version)
	}
	if desc.SumStart() != 4+250 {
		t.Fatalf("SumStart = %d, want 254", desc.SumStart())
	}
	if desc.MaxInodes() != 4*32-1 {
		t.Fatalf("MaxInodes = %d, want 127", desc.MaxInodes())
	}
	if desc.DataStart() != 4*512 {
		t.Fatalf("DataStart = %d, want 2048", desc.DataStart())
	}
	if desc.DataOffset(3) != 4*512+3*512 {
		t.Fatalf("DataOffset(3) = %d", desc.DataOffset(3))
	}
}

func TestReadDescriptorUnformatted(t *testing.T) {
	dev := newDev(t, 16)
	if _, err := ReadDescriptor(dev); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("err = %v, want ErrNotFormatted", err)
	}
}

func TestFormatErrors(t *testing.T) {
	dev := newDev(t, 4)
	// 2000 inodes need 63 control blocks; the disk has 4.
	if err := Format(dev, FormatConfig{Inodes: 2000}); err == nil {
		t.Fatal("Format on a too-small disk succeeded")
	}
	if err := Format(dev, FormatConfig{Inodes: 0}); err == nil {
		t.Fatal("Format with zero inodes succeeded")
	}
}

func TestInodeBlocks(t *testing.T) {
	cases := []struct {
		size uint32
		want int64
	}{
		{0, 1}, {1, 1}, {511, 1}, {512, 1}, {513, 2}, {1024, 2}, {1025, 3},
	}
	for _, c := range cases {
		ino := Inode{Size: c.size}
		if got := ino.Blocks(512); got != c.want {
			t.Errorf("Blocks(size=%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestAllocateGetFree(t *testing.T) {
	dev := newDev(t, 64)
	desc := format(t, dev, 30)
	tab := NewEmpty(desc)

	r := rnd(t)
	n, err := tab.Allocate(r, 5, 1000)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if n != 1 {
		t.Fatalf("first inode = %d, want 1", n)
	}
	ino, err := tab.Get(n)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if ino.Random != r || ino.FirstBlock != 5 || ino.Size != 1000 {
		t.Fatalf("Get = %+v", ino)
	}
	if tab.Live() != 1 {
		t.Fatalf("Live = %d, want 1", tab.Live())
	}

	if err := tab.Free(n); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, err := tab.Get(n); !errors.Is(err, ErrBadInode) {
		t.Fatalf("Get(freed) err = %v, want ErrBadInode", err)
	}
	if tab.Live() != 0 {
		t.Fatalf("Live = %d, want 0", tab.Live())
	}
	// Freed inode is reused first (sorted free list).
	n2, err := tab.Allocate(rnd(t), 9, 1)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if n2 != 1 {
		t.Fatalf("reallocated inode = %d, want 1", n2)
	}
}

func TestAllocateRejectsZeroRandom(t *testing.T) {
	tab := NewEmpty(Descriptor{BlockSize: 512, CtrlSize: 1, DataSize: 10})
	if _, err := tab.Allocate(capability.Random{}, 0, 0); err == nil {
		t.Fatal("Allocate with zero random succeeded")
	}
}

func TestAllocateExhaustion(t *testing.T) {
	// 1 control block of 512 bytes = 32 slots = 31 file inodes.
	tab := NewEmpty(Descriptor{BlockSize: 512, CtrlSize: 1, DataSize: 100})
	for i := 0; i < 31; i++ {
		if _, err := tab.Allocate(rnd(t), uint32(i), 1); err != nil {
			t.Fatalf("Allocate %d: %v", i, err)
		}
	}
	if _, err := tab.Allocate(rnd(t), 99, 1); !errors.Is(err, ErrNoFreeInode) {
		t.Fatalf("err = %v, want ErrNoFreeInode", err)
	}
}

func TestGetErrors(t *testing.T) {
	tab := NewEmpty(Descriptor{BlockSize: 512, CtrlSize: 1, DataSize: 10})
	if _, err := tab.Get(0); !errors.Is(err, ErrBadInode) {
		t.Fatalf("Get(0) err = %v", err)
	}
	if _, err := tab.Get(9999); !errors.Is(err, ErrBadInode) {
		t.Fatalf("Get(9999) err = %v", err)
	}
	if err := tab.Free(0); !errors.Is(err, ErrBadInode) {
		t.Fatalf("Free(0) err = %v", err)
	}
	if err := tab.Free(3); !errors.Is(err, ErrBadInode) {
		t.Fatalf("Free(free inode) err = %v", err)
	}
	if err := tab.SetCacheIndex(3, 1); !errors.Is(err, ErrBadInode) {
		t.Fatalf("SetCacheIndex(free) err = %v", err)
	}
}

func TestWriteInodeAndLoad(t *testing.T) {
	dev := newDev(t, 128)
	desc := format(t, dev, 60)
	tab := NewEmpty(desc)

	r1, r2 := rnd(t), rnd(t)
	n1, err := tab.Allocate(r1, 0, 700) // blocks 0-1
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	n2, err := tab.Allocate(r2, 2, 512) // block 2
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := tab.WriteInode(dev, n1); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	if err := tab.WriteInode(dev, n2); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}

	loaded, report, err := Load(dev)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if report.Live != 2 || len(report.Problems) != 0 {
		t.Fatalf("report = %+v, want 2 live, no problems", report)
	}
	got1, err := loaded.Get(n1)
	if err != nil {
		t.Fatalf("Get(n1): %v", err)
	}
	if got1.Random != r1 || got1.FirstBlock != 0 || got1.Size != 700 {
		t.Fatalf("loaded inode 1 = %+v", got1)
	}
	got2, err := loaded.Get(n2)
	if err != nil {
		t.Fatalf("Get(n2): %v", err)
	}
	if got2.Random != r2 || got2.FirstBlock != 2 || got2.Size != 512 {
		t.Fatalf("loaded inode 2 = %+v", got2)
	}
}

func TestLoadClearsCacheIndex(t *testing.T) {
	dev := newDev(t, 128)
	desc := format(t, dev, 60)
	tab := NewEmpty(desc)
	n, err := tab.Allocate(rnd(t), 0, 100)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := tab.SetCacheIndex(n, 7); err != nil {
		t.Fatalf("SetCacheIndex: %v", err)
	}
	if err := tab.WriteInode(dev, n); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	loaded, _, err := Load(dev)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ino, err := loaded.Get(n)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if ino.CacheIndex != 0 {
		t.Fatalf("CacheIndex = %d after load, want 0", ino.CacheIndex)
	}
}

func TestLoadDetectsOutOfBounds(t *testing.T) {
	dev := newDev(t, 128)
	desc := format(t, dev, 60)
	tab := NewEmpty(desc)
	// A file claiming to live past the data area.
	n, err := tab.Allocate(rnd(t), uint32(desc.DataSize)-1, 4096)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := tab.WriteInode(dev, n); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	_, report, err := Load(dev)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(report.Problems) != 1 || report.Problems[0].Inode != n {
		t.Fatalf("report = %+v, want one problem on inode %d", report, n)
	}
	if report.Live != 0 {
		t.Fatalf("Live = %d, want 0", report.Live)
	}
}

func TestLoadDetectsOverlap(t *testing.T) {
	dev := newDev(t, 128)
	desc := format(t, dev, 60)
	tab := NewEmpty(desc)
	n1, err := tab.Allocate(rnd(t), 0, 2048) // blocks 0-3
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	n2, err := tab.Allocate(rnd(t), 2, 512) // block 2: overlaps n1
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := tab.WriteInode(dev, n1); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	if err := tab.WriteInode(dev, n2); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	loaded, report, err := Load(dev)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(report.Problems) != 1 {
		t.Fatalf("problems = %+v, want exactly one", report.Problems)
	}
	if report.Problems[0].Inode != n2 {
		t.Fatalf("zeroed inode %d, want the later one %d", report.Problems[0].Inode, n2)
	}
	if _, err := loaded.Get(n1); err != nil {
		t.Fatalf("surviving inode unreadable: %v", err)
	}
	if _, err := loaded.Get(n2); err == nil {
		t.Fatal("overlapping inode survived the scan")
	}
}

func TestLoadZeroByteFileOccupiesABlock(t *testing.T) {
	dev := newDev(t, 128)
	desc := format(t, dev, 60)
	tab := NewEmpty(desc)
	// Two zero-byte files on the same block must be flagged as overlapping.
	n1, err := tab.Allocate(rnd(t), 0, 0)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	n2, err := tab.Allocate(rnd(t), 0, 0)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := tab.WriteInode(dev, n1); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	if err := tab.WriteInode(dev, n2); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	_, report, err := Load(dev)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(report.Problems) != 1 {
		t.Fatalf("problems = %+v, want one overlap", report.Problems)
	}
}

func TestForEachUsedOrder(t *testing.T) {
	tab := NewEmpty(Descriptor{BlockSize: 512, CtrlSize: 2, DataSize: 100})
	for i := 0; i < 5; i++ {
		if _, err := tab.Allocate(rnd(t), uint32(i*2), 100); err != nil {
			t.Fatalf("Allocate: %v", err)
		}
	}
	if err := tab.Free(3); err != nil {
		t.Fatalf("Free: %v", err)
	}
	var seen []uint32
	tab.ForEachUsed(func(n uint32, _ Inode) { seen = append(seen, n) })
	want := []uint32{1, 2, 4, 5}
	if len(seen) != len(want) {
		t.Fatalf("seen = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen = %v, want %v", seen, want)
		}
	}
}

func TestInodeBlockMapping(t *testing.T) {
	tab := NewEmpty(Descriptor{BlockSize: 512, CtrlSize: 4, DataSize: 100})
	// 32 inodes per 512-byte block.
	cases := []struct {
		n    uint32
		want int64
	}{
		{1, 0}, {31, 0}, {32, 1}, {63, 1}, {64, 2},
	}
	for _, c := range cases {
		if got := tab.InodeBlock(c.n); got != c.want {
			t.Errorf("InodeBlock(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestEncodeInodeBlockPreservesDescriptor(t *testing.T) {
	dev := newDev(t, 128)
	desc := format(t, dev, 60)
	tab := NewEmpty(desc)
	n, err := tab.Allocate(rnd(t), 3, 42)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Inode 1 lives in block 0 together with the descriptor; writing it
	// back must not clobber the descriptor.
	if err := tab.WriteInode(dev, n); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	got, err := ReadDescriptor(dev)
	if err != nil {
		t.Fatalf("descriptor destroyed by inode write: %v", err)
	}
	if got != desc {
		t.Fatalf("descriptor = %+v, want %+v", got, desc)
	}
}

func TestSumPersistence(t *testing.T) {
	dev := newDev(t, 128)
	desc := format(t, dev, 60)
	tab := NewEmpty(desc)
	if !tab.SumsPersisted() {
		t.Fatal("v2 table should persist sums")
	}
	n, err := tab.Allocate(rnd(t), 0, 100)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := tab.SetSum(n, 0xDEADBEEF); err != nil {
		t.Fatalf("SetSum: %v", err)
	}
	if err := tab.WriteInode(dev, n); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	if tab.DirtySums() != 1 {
		t.Fatalf("DirtySums = %d, want 1", tab.DirtySums())
	}
	if wrote, err := tab.FlushSums(dev); wrote != 1 || err != nil {
		t.Fatalf("FlushSums = (%d, %v), want (1, nil)", wrote, err)
	}
	if tab.DirtySums() != 0 {
		t.Fatalf("DirtySums after flush = %d, want 0", tab.DirtySums())
	}
	loaded, _, err := Load(dev)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ino, err := loaded.Get(n)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !ino.HasSum || ino.Sum != 0xDEADBEEF {
		t.Fatalf("loaded sum = (%v, %08x), want (true, deadbeef)", ino.HasSum, ino.Sum)
	}

	// Freeing the inode and reallocating its slot must not resurrect the
	// old checksum: the on-disk entry is never cleared, but its tag no
	// longer matches the new file's random number.
	if err := loaded.Free(n); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := loaded.WriteInode(dev, n); err != nil {
		t.Fatalf("WriteInode after free: %v", err)
	}
	re, _, err := Load(dev)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	n2, err := re.Allocate(rnd(t), 0, 100)
	if err != nil || n2 != n {
		t.Fatalf("Allocate = (%d, %v), want reuse of %d", n2, err, n)
	}
	if ino, _ := re.Get(n2); ino.HasSum {
		t.Fatal("stale checksum survived a free/realloc cycle")
	}
	if err := re.WriteInode(dev, n2); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	again, _, err := Load(dev)
	if err != nil {
		t.Fatalf("third load: %v", err)
	}
	if ino, _ := again.Get(n2); ino.HasSum {
		t.Fatal("stale on-disk checksum entry matched a reallocated inode")
	}
}

func TestSetSumErrors(t *testing.T) {
	tab := NewEmpty(Descriptor{BlockSize: 512, CtrlSize: 1, DataSize: 10, Version: 2})
	if err := tab.SetSum(0, 1); !errors.Is(err, ErrBadInode) {
		t.Fatalf("SetSum(0) err = %v", err)
	}
	if err := tab.SetSum(3, 1); !errors.Is(err, ErrBadInode) {
		t.Fatalf("SetSum(free) err = %v", err)
	}
}

func TestV1LoadsAndUpgradesInPlace(t *testing.T) {
	dev := newDev(t, 256)
	if err := Format(dev, FormatConfig{Inodes: 100, Version: 1}); err != nil {
		t.Fatalf("Format v1: %v", err)
	}
	desc, err := ReadDescriptor(dev)
	if err != nil {
		t.Fatalf("ReadDescriptor: %v", err)
	}
	if desc.Version != 1 || desc.DataSize != 256-4 || desc.SumBlocks() != 0 {
		t.Fatalf("v1 desc = %+v", desc)
	}
	tab := NewEmpty(desc)
	r := rnd(t)
	n, err := tab.Allocate(r, 0, 700)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := tab.WriteInode(dev, n); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	if tab.SumsPersisted() {
		t.Fatal("v1 table claims persistent sums")
	}
	// RAM-only sums still work on v1 (WriteSum is a no-op).
	if err := tab.SetSum(n, 42); err != nil {
		t.Fatalf("SetSum on v1: %v", err)
	}
	if err := tab.WriteSum(dev, n); err != nil {
		t.Fatalf("WriteSum on v1: %v", err)
	}

	loaded, report, err := Load(dev)
	if err != nil || report.Live != 1 {
		t.Fatalf("Load v1 = (%+v, %v)", report, err)
	}
	upgraded, err := loaded.UpgradeInPlace(dev)
	if err != nil {
		t.Fatalf("UpgradeInPlace: %v", err)
	}
	if !upgraded {
		t.Fatal("upgrade did not happen on an empty-tailed disk")
	}
	got, err := ReadDescriptor(dev)
	if err != nil {
		t.Fatalf("ReadDescriptor after upgrade: %v", err)
	}
	if got.Version != 2 || got.DataSize != 256-4-got.SumBlocks() {
		t.Fatalf("upgraded desc = %+v", got)
	}
	// A second upgrade is a no-op.
	if again, err := loaded.UpgradeInPlace(dev); again || err != nil {
		t.Fatalf("second upgrade = (%v, %v), want (false, nil)", again, err)
	}

	// The file survived, and sums now persist.
	re, report2, err := Load(dev)
	if err != nil || report2.Live != 1 || len(report2.Problems) != 0 {
		t.Fatalf("reload after upgrade = (%+v, %v)", report2, err)
	}
	ino, err := re.Get(n)
	if err != nil || ino.Random != r || ino.Size != 700 {
		t.Fatalf("file lost in upgrade: %+v, %v", ino, err)
	}
	if err := re.SetSum(n, 7); err != nil {
		t.Fatalf("SetSum: %v", err)
	}
	if err := re.WriteSum(dev, n); err != nil {
		t.Fatalf("WriteSum: %v", err)
	}
	final, _, err := Load(dev)
	if err != nil {
		t.Fatalf("final load: %v", err)
	}
	if ino, _ := final.Get(n); !ino.HasSum || ino.Sum != 7 {
		t.Fatalf("sum not persisted after upgrade: %+v", ino)
	}
}

func TestUpgradeBlockedByTailFile(t *testing.T) {
	dev := newDev(t, 256)
	if err := Format(dev, FormatConfig{Inodes: 100, Version: 1}); err != nil {
		t.Fatalf("Format v1: %v", err)
	}
	desc, err := ReadDescriptor(dev)
	if err != nil {
		t.Fatalf("ReadDescriptor: %v", err)
	}
	tab := NewEmpty(desc)
	// A file on the very last data block blocks the tail carve-out.
	n, err := tab.Allocate(rnd(t), uint32(desc.DataSize-1), 10)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := tab.WriteInode(dev, n); err != nil {
		t.Fatalf("WriteInode: %v", err)
	}
	loaded, _, err := Load(dev)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	upgraded, err := loaded.UpgradeInPlace(dev)
	if err != nil {
		t.Fatalf("UpgradeInPlace: %v", err)
	}
	if upgraded {
		t.Fatal("upgrade claimed success with a file in the checksum area")
	}
	got, err := ReadDescriptor(dev)
	if err != nil || got.Version != 1 {
		t.Fatalf("desc after blocked upgrade = %+v, %v; want intact v1", got, err)
	}
}

// Property: allocate/free round trips keep the table consistent: Live +
// FreeCount is constant and no two live inodes share a number.
func TestQuickTableAccounting(t *testing.T) {
	desc := Descriptor{BlockSize: 512, CtrlSize: 2, DataSize: 1000}
	f := func(ops []bool) bool {
		tab := NewEmpty(desc)
		total := tab.FreeCount()
		var livei []uint32
		next := uint32(0)
		for _, alloc := range ops {
			if alloc {
				r, err := capability.NewRandom()
				if err != nil {
					return false
				}
				n, err := tab.Allocate(r, next, 1)
				if errors.Is(err, ErrNoFreeInode) {
					continue
				}
				if err != nil {
					return false
				}
				next += 1
				livei = append(livei, n)
			} else if len(livei) > 0 {
				n := livei[0]
				livei = livei[1:]
				if err := tab.Free(n); err != nil {
					return false
				}
			}
			if tab.Live()+tab.FreeCount() != total {
				return false
			}
			if tab.Live() != len(livei) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: an inode encode/decode round trip through a block is lossless
// (modulo the cache index, which is cleared on disk).
func TestQuickInodePersistence(t *testing.T) {
	f := func(randoms [][6]byte) bool {
		dev, err := disk.NewMem(512, 256)
		if err != nil {
			return false
		}
		if err := Format(dev, FormatConfig{Inodes: 100}); err != nil {
			return false
		}
		desc, err := ReadDescriptor(dev)
		if err != nil {
			return false
		}
		tab := NewEmpty(desc)
		type rec struct {
			n    uint32
			r    capability.Random
			size uint32
		}
		var recs []rec
		var block uint32
		for _, rb := range randoms {
			r := capability.Random(rb)
			if r.IsZero() {
				continue
			}
			size := uint32(len(recs)*13 + 1)
			if int64(block)+(Inode{Size: size}).Blocks(512) > desc.DataSize {
				break
			}
			n, err := tab.Allocate(r, block, size)
			if err != nil {
				break
			}
			block += uint32((Inode{Size: size}).Blocks(512)) // packed contiguously: never overlaps
			if err := tab.WriteInode(dev, n); err != nil {
				return false
			}
			recs = append(recs, rec{n: n, r: r, size: size})
		}
		loaded, report, err := Load(dev)
		if err != nil || len(report.Problems) != 0 {
			return false
		}
		for _, rc := range recs {
			got, err := loaded.Get(rc.n)
			if err != nil {
				return false
			}
			if got.Random != rc.r || got.Size != rc.size {
				return false
			}
		}
		return loaded.Live() == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
