package layout

import (
	"reflect"
	"testing"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

// fuzzGeometry is the disk shape every fuzz input is poured into: small
// enough that the corpus mutates quickly, big enough to hold a v2 layout
// with several control and checksum blocks.
const (
	fuzzBlockSize = 64
	fuzzBlocks    = 256
)

// fuzzSeedImage builds a valid formatted image (with a couple of live
// inodes and one checksum) so the fuzzer starts from structure, not noise.
func fuzzSeedImage(version int) []byte {
	dev, err := disk.NewMem(fuzzBlockSize, fuzzBlocks)
	if err != nil {
		panic(err)
	}
	if err := Format(dev, FormatConfig{Inodes: 20, Version: version}); err != nil {
		panic(err)
	}
	desc, err := ReadDescriptor(dev)
	if err != nil {
		panic(err)
	}
	tab := NewEmpty(desc)
	r := capability.Random{1, 2, 3, 4, 5, 6}
	if n, err := tab.Allocate(r, 0, 100); err == nil {
		_ = tab.SetSum(n, 0xFEEDFACE)
		_ = tab.WriteInode(dev, n)
	}
	r2 := capability.Random{9, 8, 7, 6, 5, 4}
	if n, err := tab.Allocate(r2, 2, 64); err == nil {
		_ = tab.WriteInode(dev, n)
	}
	return dev.Snapshot()
}

// FuzzLoadTable feeds arbitrary bytes to the versioned on-disk decoder.
// Two properties must hold for every input: Load never panics, and when it
// does accept an image, re-encoding the loaded table and loading the
// re-encoding yields the identical table (the decoder never invents state
// a round trip loses or mutates).
func FuzzLoadTable(f *testing.F) {
	f.Add(fuzzSeedImage(1))
	f.Add(fuzzSeedImage(2))
	f.Add(make([]byte, fuzzBlockSize*4))
	f.Add([]byte("BUL8 garbage that is far too short"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dev, err := disk.NewMem(fuzzBlockSize, fuzzBlocks)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) > fuzzBlockSize*fuzzBlocks {
			raw = raw[:fuzzBlockSize*fuzzBlocks]
		}
		if len(raw) > 0 {
			if err := dev.WriteAt(raw, 0); err != nil {
				t.Fatal(err)
			}
		}

		tab, _, err := Load(dev)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}

		// Round trip: write every control and checksum block the table
		// would emit onto a fresh device and load it back.
		re, err := disk.NewMem(fuzzBlockSize, fuzzBlocks)
		if err != nil {
			t.Fatal(err)
		}
		desc := tab.Desc()
		perBlock := uint32(fuzzBlockSize / InodeSize)
		for b := int64(0); b < desc.CtrlSize; b++ {
			blockNo, data := tab.EncodeInodeBlock(uint32(b) * perBlock)
			if err := re.WriteAt(data, blockNo*fuzzBlockSize); err != nil {
				t.Fatalf("re-encoding control block %d: %v", b, err)
			}
		}
		if desc.Version >= 2 {
			perSum := uint32(fuzzBlockSize / SumEntrySize)
			for b := int64(0); b < desc.SumBlocks(); b++ {
				blockNo, data := tab.EncodeSumBlock(uint32(b) * perSum)
				if err := re.WriteAt(data, blockNo*fuzzBlockSize); err != nil {
					t.Fatalf("re-encoding checksum block %d: %v", b, err)
				}
			}
		}

		tab2, report2, err := Load(re)
		if err != nil {
			t.Fatalf("re-encoded image rejected: %v", err)
		}
		if len(report2.Problems) != 0 {
			t.Fatalf("re-encoded image has problems: %+v", report2.Problems)
		}
		if tab2.Desc() != desc {
			t.Fatalf("descriptor changed in round trip: %+v -> %+v", desc, tab2.Desc())
		}
		var a, b []Inode
		tab.ForEachUsed(func(n uint32, ino Inode) { a = append(a, ino) })
		tab2.ForEachUsed(func(n uint32, ino Inode) { b = append(b, ino) })
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("table changed in round trip:\n  first:  %+v\n  second: %+v", a, b)
		}
		if tab.Live() != tab2.Live() || tab.FreeCount() != tab2.FreeCount() {
			t.Fatalf("accounting changed in round trip: live %d->%d free %d->%d",
				tab.Live(), tab2.Live(), tab.FreeCount(), tab2.FreeCount())
		}
	})
}
