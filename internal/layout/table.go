package layout

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

// Table is the in-RAM copy of the inode table. The server reads the whole
// table at startup and keeps it in memory permanently (paper §3); every
// mutation is written through to disk by the caller via WriteInode.
//
// Inode numbers are 1-based: number 0 is the descriptor and is never handed
// out. They are also the object numbers inside Bullet capabilities.
type Table struct {
	mu     sync.RWMutex
	desc   Descriptor // immutable after Load/Format
	inodes []Inode    // guarded by mu; slot i holds inode i; slot 0 unused
	free   []uint32   // guarded by mu; free inode numbers, ascending so allocation is stable
	live   int        // guarded by mu
}

// ScanProblem describes one inconsistency found while scanning the table.
type ScanProblem struct {
	Inode  uint32
	Reason string
}

// ScanReport summarises the startup consistency scan.
type ScanReport struct {
	Live     int           // inodes describing valid files
	Free     int           // zero-filled inodes
	Problems []ScanProblem // inodes zeroed because they were inconsistent
}

// Load reads the complete inode table from dev into RAM, performing the
// startup consistency checks of paper §3: every file must lie inside the
// data area and no two files may overlap. Inconsistent inodes are zeroed in
// RAM (the caller re-persists them). Cache indexes are meaningless on disk
// and cleared.
func Load(dev disk.Device) (*Table, *ScanReport, error) {
	desc, err := ReadDescriptor(dev)
	if err != nil {
		return nil, nil, err
	}
	bs := desc.BlockSize
	raw := make([]byte, desc.CtrlSize*int64(bs))
	if err := dev.ReadAt(raw, 0); err != nil {
		return nil, nil, fmt.Errorf("layout: reading inode table: %w", err)
	}

	max := desc.MaxInodes()
	t := &Table{
		desc:   desc,
		inodes: make([]Inode, max+1),
	}
	report := &ScanReport{}

	type span struct {
		start, count int64
		n            uint32
	}
	var spans []span
	for n := 1; n <= max; n++ {
		ino := decodeInode(raw[n*InodeSize : (n+1)*InodeSize])
		ino.CacheIndex = 0 // no significance on disk
		if !ino.InUse() {
			report.Free++
			t.free = append(t.free, uint32(n))
			continue
		}
		blocks := ino.Blocks(bs)
		if int64(ino.FirstBlock)+blocks > desc.DataSize {
			report.Problems = append(report.Problems, ScanProblem{
				Inode:  uint32(n),
				Reason: fmt.Sprintf("file extends past data area (block %d + %d > %d)", ino.FirstBlock, blocks, desc.DataSize),
			})
			t.free = append(t.free, uint32(n))
			report.Free++
			continue
		}
		spans = append(spans, span{start: int64(ino.FirstBlock), count: blocks, n: uint32(n)})
		t.inodes[n] = ino
	}

	// Overlap detection: sort by first block and compare neighbours. A
	// later inode overlapping an earlier one is zeroed (the earlier file is
	// kept; with write-through either order is defensible, this one is
	// deterministic).
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].n < spans[j].n
	})
	end := int64(-1)
	for _, s := range spans {
		if s.start < end {
			report.Problems = append(report.Problems, ScanProblem{
				Inode:  s.n,
				Reason: fmt.Sprintf("file at block %d overlaps previous file ending at %d", s.start, end),
			})
			t.inodes[s.n] = Inode{}
			t.free = append(t.free, s.n)
			report.Free++
			continue
		}
		if e := s.start + s.count; e > end {
			end = e
		}
		report.Live++
		t.live++
	}
	sort.Slice(t.free, func(i, j int) bool { return t.free[i] < t.free[j] })
	return t, report, nil
}

// NewEmpty builds the in-RAM table for a freshly formatted disk without
// re-reading it.
func NewEmpty(desc Descriptor) *Table {
	max := desc.MaxInodes()
	t := &Table{
		desc:   desc,
		inodes: make([]Inode, max+1),
		free:   make([]uint32, 0, max),
	}
	for n := 1; n <= max; n++ {
		t.free = append(t.free, uint32(n))
	}
	return t
}

// Desc returns the disk descriptor the table was loaded from.
func (t *Table) Desc() Descriptor { return t.desc }

// MaxInodes returns the table capacity.
func (t *Table) MaxInodes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.inodes) - 1
}

// Live returns the number of in-use inodes.
func (t *Table) Live() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// FreeCount returns the number of free inodes.
func (t *Table) FreeCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.free)
}

// Get returns inode n if it is in use.
func (t *Table) Get(n uint32) (Inode, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n == 0 || int(n) >= len(t.inodes) {
		return Inode{}, fmt.Errorf("inode %d of %d: %w", n, len(t.inodes)-1, ErrBadInode)
	}
	ino := t.inodes[n]
	if !ino.InUse() {
		return Inode{}, fmt.Errorf("inode %d is free: %w", n, ErrBadInode)
	}
	return ino, nil
}

// Allocate claims a free inode for a new file and fills it in. The random
// number must be non-zero (capability.NewRandom guarantees it with
// overwhelming probability; Allocate rejects zero outright).
func (t *Table) Allocate(r capability.Random, firstBlock uint32, size uint32) (uint32, error) {
	if r.IsZero() {
		return 0, fmt.Errorf("zero random number marks a free inode: %w", ErrConfig)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.free) == 0 {
		return 0, ErrNoFreeInode
	}
	n := t.free[0]
	t.free = t.free[1:]
	t.inodes[n] = Inode{Random: r, FirstBlock: firstBlock, Size: size}
	t.live++
	return n, nil
}

// Free zeroes inode n, returning it to the free list. The caller writes the
// change through with WriteInode ("freeing an inode by zeroing it and
// writing it back to the disk", paper §3).
func (t *Table) Free(n uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 || int(n) >= len(t.inodes) || !t.inodes[n].InUse() {
		return fmt.Errorf("freeing inode %d: %w", n, ErrBadInode)
	}
	t.inodes[n] = Inode{}
	t.live--
	// Keep the free list sorted so allocation order is deterministic.
	i := sort.Search(len(t.free), func(i int) bool { return t.free[i] >= n })
	t.free = append(t.free, 0)
	copy(t.free[i+1:], t.free[i:])
	t.free[i] = n
	return nil
}

// SetCacheIndex records the rnode slot (plus one) holding inode n's file in
// the RAM cache; 0 means not cached. The index is never written to disk
// with meaning — it just rides along inside the inode's block.
func (t *Table) SetCacheIndex(n uint32, idx uint16) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 || int(n) >= len(t.inodes) || !t.inodes[n].InUse() {
		return fmt.Errorf("indexing inode %d: %w", n, ErrBadInode)
	}
	t.inodes[n].CacheIndex = idx
	return nil
}

// SetCacheIndexIf updates inode n's cache index to idx only if it still
// holds from. Concurrent readers use it to heal a stale index without
// clobbering a cache insert published by a parallel disk fault: the
// compare-and-set loses gracefully when someone else got there first.
// It returns true when the swap happened.
func (t *Table) SetCacheIndexIf(n uint32, from, idx uint16) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 || int(n) >= len(t.inodes) || !t.inodes[n].InUse() {
		return false, fmt.Errorf("indexing inode %d: %w", n, ErrBadInode)
	}
	if t.inodes[n].CacheIndex != from {
		return false, nil
	}
	t.inodes[n].CacheIndex = idx
	return true, nil
}

// Retarget points inode n at a new first block, preserving every other
// field. Compaction uses it after physically moving a file's data.
func (t *Table) Retarget(n uint32, firstBlock uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 || int(n) >= len(t.inodes) || !t.inodes[n].InUse() {
		return fmt.Errorf("retargeting inode %d: %w", n, ErrBadInode)
	}
	t.inodes[n].FirstBlock = firstBlock
	return nil
}

// ForEachUsed calls fn for every in-use inode, ascending by number.
func (t *Table) ForEachUsed(fn func(n uint32, ino Inode)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for n := 1; n < len(t.inodes); n++ {
		if t.inodes[n].InUse() {
			fn(uint32(n), t.inodes[n])
		}
	}
}

// InodeBlock returns the control-area block number containing inode n.
func (t *Table) InodeBlock(n uint32) int64 {
	return int64(n) * InodeSize / int64(t.desc.BlockSize)
}

// EncodeInodeBlock renders the current contents of the control block that
// holds inode n, ready to be written to disk. Creating or deleting a file
// writes the whole block containing the inode (paper §3).
func (t *Table) EncodeInodeBlock(n uint32) (blockNo int64, data []byte) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	bs := t.desc.BlockSize
	blockNo = t.InodeBlock(n)
	data = make([]byte, bs)
	perBlock := bs / InodeSize
	first := int(blockNo) * perBlock
	for i := 0; i < perBlock; i++ {
		slot := first + i
		if slot == 0 {
			// Re-encode the descriptor so block 0 round-trips.
			descriptorBytes(t.desc, data[:InodeSize])
			continue
		}
		if slot >= len(t.inodes) {
			break
		}
		ino := t.inodes[slot]
		ino.CacheIndex = 0 // keep disk copies free of run-time state
		ino.encode(data[i*InodeSize : (i+1)*InodeSize])
	}
	return blockNo, data
}

// WriteInode persists the control block containing inode n to dev.
func (t *Table) WriteInode(dev disk.Device, n uint32) error {
	blockNo, data := t.EncodeInodeBlock(n)
	if err := dev.WriteAt(data, blockNo*int64(t.desc.BlockSize)); err != nil {
		return fmt.Errorf("layout: writing inode block %d: %w", blockNo, err)
	}
	return nil
}

func descriptorBytes(d Descriptor, b []byte) {
	binary.BigEndian.PutUint32(b[0:4], Magic)
	binary.BigEndian.PutUint32(b[4:8], uint32(d.BlockSize))
	binary.BigEndian.PutUint32(b[8:12], uint32(d.CtrlSize))
	binary.BigEndian.PutUint32(b[12:16], uint32(d.DataSize))
}
