package layout

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

// Table is the in-RAM copy of the inode table. The server reads the whole
// table at startup and keeps it in memory permanently (paper §3); every
// mutation is written through to disk by the caller via WriteInode.
//
// Inode numbers are 1-based: number 0 is the descriptor and is never handed
// out. They are also the object numbers inside Bullet capabilities.
type Table struct {
	mu     sync.RWMutex
	desc   Descriptor // immutable after Load/Format except for UpgradeInPlace
	inodes []Inode    // guarded by mu; slot i holds inode i; slot 0 unused
	free   []uint32   // guarded by mu; free inode numbers, ascending so allocation is stable
	live   int        // guarded by mu

	// dirtySums holds the 0-based checksum-area block indexes whose RAM
	// state is newer than disk. Checksums are advisory (an absent entry is
	// recomputed on fault-in) so they are persisted in batches by
	// FlushSums rather than on the create write-through path, keeping the
	// commit cost of a create identical to the paper's.
	dirtySums map[int64]struct{} // guarded by mu
}

// ScanProblem describes one inconsistency found while scanning the table.
type ScanProblem struct {
	Inode  uint32
	Reason string
}

// ScanReport summarises the startup consistency scan.
type ScanReport struct {
	Live     int           // inodes describing valid files
	Free     int           // zero-filled inodes
	Problems []ScanProblem // inodes zeroed because they were inconsistent
}

// Load reads the complete inode table from dev into RAM, performing the
// startup consistency checks of paper §3: every file must lie inside the
// data area and no two files may overlap. Inconsistent inodes are zeroed in
// RAM (the caller re-persists them). Cache indexes are meaningless on disk
// and cleared.
func Load(dev disk.Device) (*Table, *ScanReport, error) {
	desc, err := ReadDescriptor(dev)
	if err != nil {
		return nil, nil, err
	}
	bs := desc.BlockSize
	raw := make([]byte, desc.CtrlSize*int64(bs))
	if err := dev.ReadAt(raw, 0); err != nil {
		return nil, nil, fmt.Errorf("layout: reading inode table: %w", err)
	}

	max := desc.MaxInodes()
	t := &Table{
		desc:   desc,
		inodes: make([]Inode, max+1),
	}
	report := &ScanReport{}

	type span struct {
		start, count int64
		n            uint32
	}
	var spans []span
	for n := 1; n <= max; n++ {
		ino := decodeInode(raw[n*InodeSize : (n+1)*InodeSize])
		ino.CacheIndex = 0 // no significance on disk
		if !ino.InUse() {
			report.Free++
			t.free = append(t.free, uint32(n))
			continue
		}
		blocks := ino.Blocks(bs)
		if int64(ino.FirstBlock)+blocks > desc.DataSize {
			report.Problems = append(report.Problems, ScanProblem{
				Inode:  uint32(n),
				Reason: fmt.Sprintf("file extends past data area (block %d + %d > %d)", ino.FirstBlock, blocks, desc.DataSize),
			})
			t.free = append(t.free, uint32(n))
			report.Free++
			continue
		}
		spans = append(spans, span{start: int64(ino.FirstBlock), count: blocks, n: uint32(n)})
		t.inodes[n] = ino
	}

	// Overlap detection: sort by first block and compare neighbours. A
	// later inode overlapping an earlier one is zeroed (the earlier file is
	// kept; with write-through either order is defensible, this one is
	// deterministic).
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].n < spans[j].n
	})
	end := int64(-1)
	for _, s := range spans {
		if s.start < end {
			report.Problems = append(report.Problems, ScanProblem{
				Inode:  s.n,
				Reason: fmt.Sprintf("file at block %d overlaps previous file ending at %d", s.start, end),
			})
			t.inodes[s.n] = Inode{}
			t.free = append(t.free, s.n)
			report.Free++
			continue
		}
		if e := s.start + s.count; e > end {
			end = e
		}
		report.Live++
		t.live++
	}
	sort.Slice(t.free, func(i, j int) bool { return t.free[i] < t.free[j] })

	// v2: load the checksum area. Entries are advisory — an absent or
	// garbage entry only means the checksum will be recomputed on first
	// fault-in — and an entry counts only when its tag matches the live
	// inode's random number, so entries left behind by deleted files
	// self-invalidate without ever being cleared on disk.
	if desc.Version >= 2 {
		sums := make([]byte, desc.SumBlocks()*int64(bs))
		if err := dev.ReadAt(sums, desc.SumStart()*int64(bs)); err != nil {
			return nil, nil, fmt.Errorf("layout: reading checksum area: %w", err)
		}
		for n := 1; n <= max; n++ {
			if !t.inodes[n].InUse() {
				continue
			}
			e := sums[n*SumEntrySize : (n+1)*SumEntrySize]
			if binary.BigEndian.Uint32(e[0:4]) == sumTagWord(t.inodes[n].Random) {
				t.inodes[n].Sum = binary.BigEndian.Uint32(e[4:8])
				t.inodes[n].HasSum = true
			}
		}
	}
	return t, report, nil
}

// NewEmpty builds the in-RAM table for a freshly formatted disk without
// re-reading it.
func NewEmpty(desc Descriptor) *Table {
	max := desc.MaxInodes()
	t := &Table{
		desc:   desc,
		inodes: make([]Inode, max+1),
		free:   make([]uint32, 0, max),
	}
	for n := 1; n <= max; n++ {
		t.free = append(t.free, uint32(n))
	}
	return t
}

// Desc returns the disk descriptor the table was loaded from.
func (t *Table) Desc() Descriptor { return t.desc }

// MaxInodes returns the table capacity.
func (t *Table) MaxInodes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.inodes) - 1
}

// Live returns the number of in-use inodes.
func (t *Table) Live() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// FreeCount returns the number of free inodes.
func (t *Table) FreeCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.free)
}

// Get returns inode n if it is in use.
func (t *Table) Get(n uint32) (Inode, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n == 0 || int(n) >= len(t.inodes) {
		return Inode{}, fmt.Errorf("inode %d of %d: %w", n, len(t.inodes)-1, ErrBadInode)
	}
	ino := t.inodes[n]
	if !ino.InUse() {
		return Inode{}, fmt.Errorf("inode %d is free: %w", n, ErrBadInode)
	}
	return ino, nil
}

// Allocate claims a free inode for a new file and fills it in. The random
// number must be non-zero (capability.NewRandom guarantees it with
// overwhelming probability; Allocate rejects zero outright).
func (t *Table) Allocate(r capability.Random, firstBlock uint32, size uint32) (uint32, error) {
	if r.IsZero() {
		return 0, fmt.Errorf("zero random number marks a free inode: %w", ErrConfig)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.free) == 0 {
		return 0, ErrNoFreeInode
	}
	n := t.free[0]
	t.free = t.free[1:]
	t.inodes[n] = Inode{Random: r, FirstBlock: firstBlock, Size: size}
	t.live++
	return n, nil
}

// Free zeroes inode n, returning it to the free list. The caller writes the
// change through with WriteInode ("freeing an inode by zeroing it and
// writing it back to the disk", paper §3).
func (t *Table) Free(n uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 || int(n) >= len(t.inodes) || !t.inodes[n].InUse() {
		return fmt.Errorf("freeing inode %d: %w", n, ErrBadInode)
	}
	t.inodes[n] = Inode{}
	t.live--
	// Keep the free list sorted so allocation order is deterministic.
	i := sort.Search(len(t.free), func(i int) bool { return t.free[i] >= n })
	t.free = append(t.free, 0)
	copy(t.free[i+1:], t.free[i:])
	t.free[i] = n
	return nil
}

// SetCacheIndex records the rnode slot (plus one) holding inode n's file in
// the RAM cache; 0 means not cached. The index is never written to disk
// with meaning — it just rides along inside the inode's block.
func (t *Table) SetCacheIndex(n uint32, idx uint16) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 || int(n) >= len(t.inodes) || !t.inodes[n].InUse() {
		return fmt.Errorf("indexing inode %d: %w", n, ErrBadInode)
	}
	t.inodes[n].CacheIndex = idx
	return nil
}

// SetCacheIndexIf updates inode n's cache index to idx only if it still
// holds from. Concurrent readers use it to heal a stale index without
// clobbering a cache insert published by a parallel disk fault: the
// compare-and-set loses gracefully when someone else got there first.
// It returns true when the swap happened.
func (t *Table) SetCacheIndexIf(n uint32, from, idx uint16) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 || int(n) >= len(t.inodes) || !t.inodes[n].InUse() {
		return false, fmt.Errorf("indexing inode %d: %w", n, ErrBadInode)
	}
	if t.inodes[n].CacheIndex != from {
		return false, nil
	}
	t.inodes[n].CacheIndex = idx
	return true, nil
}

// SetSum records the CRC32C of inode n's contents and marks its checksum
// block dirty. The entry reaches disk via WriteSum (one block, now) or
// FlushSums (all dirty blocks, batched — the normal path); on v1 disks
// the checksum lives in RAM only.
func (t *Table) SetSum(n uint32, sum uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 || int(n) >= len(t.inodes) || !t.inodes[n].InUse() {
		return fmt.Errorf("checksumming inode %d: %w", n, ErrBadInode)
	}
	t.inodes[n].Sum = sum
	t.inodes[n].HasSum = true
	if t.desc.Version >= 2 {
		if t.dirtySums == nil {
			t.dirtySums = make(map[int64]struct{})
		}
		t.dirtySums[int64(n)*SumEntrySize/int64(t.desc.BlockSize)] = struct{}{}
	}
	return nil
}

// SumsPersisted reports whether the disk carries a checksum area (v2). On
// v1 disks checksums are RAM-only and WriteSum is a no-op.
func (t *Table) SumsPersisted() bool { return t.desc.Version >= 2 }

// EncodeSumBlock renders the checksum-area block holding inode n's entry,
// re-encoded from the live table like EncodeInodeBlock: free inodes get
// zero entries, inodes without a computed checksum get a zero flags word.
func (t *Table) EncodeSumBlock(n uint32) (blockNo int64, data []byte) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	bs := t.desc.BlockSize
	blockNo = t.desc.SumBlockOf(n)
	data = make([]byte, bs)
	perBlock := bs / SumEntrySize
	first := (int(n) * SumEntrySize / bs) * perBlock
	for i := 0; i < perBlock; i++ {
		slot := first + i
		if slot == 0 || slot >= len(t.inodes) {
			continue
		}
		ino := t.inodes[slot]
		if !ino.InUse() || !ino.HasSum {
			continue
		}
		e := data[i*SumEntrySize : (i+1)*SumEntrySize]
		binary.BigEndian.PutUint32(e[0:4], sumTagWord(ino.Random))
		binary.BigEndian.PutUint32(e[4:8], ino.Sum)
	}
	return blockNo, data
}

// WriteSum persists the checksum-area block containing inode n's entry and
// clears its dirty mark. On v1 disks (no checksum area) it is a no-op.
func (t *Table) WriteSum(dev disk.Device, n uint32) error {
	if !t.SumsPersisted() {
		return nil
	}
	blockNo, data := t.EncodeSumBlock(n)
	if err := dev.WriteAt(data, blockNo*int64(t.desc.BlockSize)); err != nil {
		return fmt.Errorf("layout: writing checksum block %d: %w", blockNo, err)
	}
	t.mu.Lock()
	delete(t.dirtySums, blockNo-t.desc.SumStart())
	t.mu.Unlock()
	return nil
}

// DirtySums returns how many checksum blocks have RAM state newer than
// disk.
func (t *Table) DirtySums() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.dirtySums)
}

// FlushSums writes every dirty checksum block to dev and returns how many
// blocks it wrote. The engine calls it from Sync, shutdown, and the
// scrubber's idle loop; losing a flush costs only a lazy recompute on the
// next fault-in, never correctness.
func (t *Table) FlushSums(dev disk.Device) (int, error) {
	if !t.SumsPersisted() {
		return 0, nil
	}
	t.mu.Lock()
	idxs := make([]int64, 0, len(t.dirtySums))
	for idx := range t.dirtySums {
		idxs = append(idxs, idx)
	}
	t.mu.Unlock()
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	bs := t.desc.BlockSize
	perBlock := uint32(bs / SumEntrySize)
	for _, idx := range idxs {
		blockNo, data := t.EncodeSumBlock(uint32(idx) * perBlock)
		if err := dev.WriteAt(data, blockNo*int64(bs)); err != nil {
			return 0, fmt.Errorf("layout: flushing checksum block %d: %w", blockNo, err)
		}
		t.mu.Lock()
		delete(t.dirtySums, idx)
		t.mu.Unlock()
	}
	return len(idxs), nil
}

// Retarget points inode n at a new first block, preserving every other
// field. Compaction uses it after physically moving a file's data.
func (t *Table) Retarget(n uint32, firstBlock uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == 0 || int(n) >= len(t.inodes) || !t.inodes[n].InUse() {
		return fmt.Errorf("retargeting inode %d: %w", n, ErrBadInode)
	}
	t.inodes[n].FirstBlock = firstBlock
	return nil
}

// ForEachUsed calls fn for every in-use inode, ascending by number.
func (t *Table) ForEachUsed(fn func(n uint32, ino Inode)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for n := 1; n < len(t.inodes); n++ {
		if t.inodes[n].InUse() {
			fn(uint32(n), t.inodes[n])
		}
	}
}

// InodeBlock returns the control-area block number containing inode n.
func (t *Table) InodeBlock(n uint32) int64 {
	return int64(n) * InodeSize / int64(t.desc.BlockSize)
}

// EncodeInodeBlock renders the current contents of the control block that
// holds inode n, ready to be written to disk. Creating or deleting a file
// writes the whole block containing the inode (paper §3).
func (t *Table) EncodeInodeBlock(n uint32) (blockNo int64, data []byte) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	bs := t.desc.BlockSize
	blockNo = t.InodeBlock(n)
	data = make([]byte, bs)
	perBlock := bs / InodeSize
	first := int(blockNo) * perBlock
	for i := 0; i < perBlock; i++ {
		slot := first + i
		if slot == 0 {
			// Re-encode the descriptor so block 0 round-trips.
			descriptorBytes(t.desc, data[:InodeSize])
			continue
		}
		if slot >= len(t.inodes) {
			break
		}
		ino := t.inodes[slot]
		ino.CacheIndex = 0 // keep disk copies free of run-time state
		ino.encode(data[i*InodeSize : (i+1)*InodeSize])
	}
	return blockNo, data
}

// WriteInode persists the control block containing inode n to dev. The
// checksum area is deliberately NOT written here: entries self-invalidate
// via their random-number tag, so create and delete stay one-block writes
// exactly as in the paper, and checksums reach disk via FlushSums.
func (t *Table) WriteInode(dev disk.Device, n uint32) error {
	blockNo, data := t.EncodeInodeBlock(n)
	if err := dev.WriteAt(data, blockNo*int64(t.desc.BlockSize)); err != nil {
		return fmt.Errorf("layout: writing inode block %d: %w", blockNo, err)
	}
	return nil
}

// WriteInodes persists the control blocks containing the given inodes,
// writing each distinct block exactly once however many of the inodes
// share it. Group-committed creates use this: a batch of N small files
// whose inodes land in the same block costs one block write, not N.
func (t *Table) WriteInodes(dev disk.Device, ns []uint32) error {
	written := make(map[int64]bool, len(ns))
	for _, n := range ns {
		blockNo := t.InodeBlock(n)
		if written[blockNo] {
			continue
		}
		written[blockNo] = true
		if err := t.WriteInode(dev, n); err != nil {
			return err
		}
	}
	return nil
}

// UpgradeInPlace converts a loaded v1 table to v2 on dev: it carves the
// checksum area out of the tail of the data area, zeroes it, and rewrites
// the descriptor. The upgrade is possible only when no live file occupies
// the tail blocks being carved off (the allocator is first-fit, so the
// tail is free on all but completely full disks); when a file is in the way the
// table stays v1 — checksums then live in RAM only — and (false, nil) is
// returned. The descriptor write is last and single-block, so a crash
// mid-upgrade leaves a valid v1 disk.
func (t *Table) UpgradeInPlace(dev disk.Device) (bool, error) {
	t.mu.Lock()
	if t.desc.Version >= 2 {
		t.mu.Unlock()
		return false, nil
	}
	bs := t.desc.BlockSize
	sumBlocks := sumBlocksFor(bs, t.desc.CtrlSize)
	newDataSize := t.desc.DataSize - sumBlocks
	if newDataSize <= 0 {
		t.mu.Unlock()
		return false, nil
	}
	for n := 1; n < len(t.inodes); n++ {
		ino := t.inodes[n]
		if ino.InUse() && int64(ino.FirstBlock)+ino.Blocks(bs) > newDataSize {
			t.mu.Unlock()
			return false, nil // a file occupies the would-be checksum area
		}
	}
	t.mu.Unlock()

	// Zero the new checksum area first, then flip the descriptor: magic2
	// is only visible once every entry under it reads as "absent".
	zero := make([]byte, bs)
	for b := int64(0); b < sumBlocks; b++ {
		if err := dev.WriteAt(zero, (t.desc.CtrlSize+newDataSize+b)*int64(bs)); err != nil {
			return false, fmt.Errorf("layout: clearing checksum area: %w", err)
		}
	}
	t.mu.Lock()
	t.desc.Version = 2
	t.desc.DataSize = newDataSize
	// Any checksums computed while the disk was still v1 lived in RAM
	// only; mark their blocks dirty so the next FlushSums persists them.
	for n := 1; n < len(t.inodes); n++ {
		if t.inodes[n].InUse() && t.inodes[n].HasSum {
			if t.dirtySums == nil {
				t.dirtySums = make(map[int64]struct{})
			}
			t.dirtySums[int64(n)*SumEntrySize/int64(bs)] = struct{}{}
		}
	}
	t.mu.Unlock()
	if err := t.WriteInode(dev, 0); err != nil {
		return false, fmt.Errorf("layout: writing upgraded descriptor: %w", err)
	}
	return true, dev.Sync()
}

func descriptorBytes(d Descriptor, b []byte) {
	magic := uint32(Magic)
	if d.Version >= 2 {
		magic = Magic2
	}
	binary.BigEndian.PutUint32(b[0:4], magic)
	binary.BigEndian.PutUint32(b[4:8], uint32(d.BlockSize))
	binary.BigEndian.PutUint32(b[8:12], uint32(d.CtrlSize))
	binary.BigEndian.PutUint32(b[12:16], uint32(d.DataSize))
}
