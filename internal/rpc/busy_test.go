package rpc

import (
	"testing"
	"time"

	"bulletfs/internal/capability"
)

// busyTransport replies StatusBusy for the first busyLeft transactions,
// then StatusOK, recording every transaction ID it sees.
type busyTransport struct {
	busyLeft int
	calls    int
	txids    []uint64
}

func (b *busyTransport) Trans(port capability.Port, req Header, payload []byte) (Header, []byte, error) {
	return b.TransID(port, 0, req, payload)
}

func (b *busyTransport) TransID(_ capability.Port, txid uint64, _ Header, _ []byte) (Header, []byte, error) {
	b.calls++
	b.txids = append(b.txids, txid)
	if b.busyLeft > 0 {
		b.busyLeft--
		return Header{Status: StatusBusy}, nil, nil
	}
	return Header{Status: StatusOK}, nil, nil
}

func TestRetrierBusyBacksOffWithFreshTxID(t *testing.T) {
	bt := &busyTransport{busyLeft: 2}
	r := NewRetrier(bt, 5)
	r.SetBackoff(10*time.Millisecond, 80*time.Millisecond)
	r.SetRetryBusy(true)
	clk := &fakeClock{t: time.Unix(0, 0)}
	withFakeClock(r, clk)

	h, _, err := r.Trans(capability.Port{}, Header{}, nil)
	if err != nil {
		t.Fatalf("Trans error = %v", err)
	}
	if h.Status != StatusOK {
		t.Fatalf("status = %v, want OK after busy retries", h.Status)
	}
	if bt.calls != 3 {
		t.Fatalf("attempts = %d, want 3 (busy, busy, ok)", bt.calls)
	}
	// Busy replies are backed off like failures, on the jittered schedule.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(clk.sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", clk.sleeps, want)
	}
	// A shed executed nothing, so each retry must be a NEW transaction: the
	// mux's duplicate suppression caches replies per transaction ID, and a
	// reused ID would just replay the cached busy reply forever.
	seen := map[uint64]bool{}
	for i, id := range bt.txids {
		if id == 0 {
			t.Fatalf("attempt %d ran without a transaction ID", i)
		}
		if seen[id] {
			t.Fatalf("transaction ID %d reused across busy retries (%v)", id, bt.txids)
		}
		seen[id] = true
	}
}

func TestRetrierBusyExhaustionReturnsBusyReply(t *testing.T) {
	bt := &busyTransport{busyLeft: 100}
	r := NewRetrier(bt, 3)
	r.SetBackoff(time.Millisecond, time.Millisecond)
	r.SetRetryBusy(true)
	clk := &fakeClock{t: time.Unix(0, 0)}
	withFakeClock(r, clk)

	h, _, err := r.Trans(capability.Port{}, Header{}, nil)
	if err != nil {
		t.Fatalf("Trans error = %v; exhausted busy retries are a reply, not an error", err)
	}
	if h.Status != StatusBusy {
		t.Fatalf("status = %v, want StatusBusy", h.Status)
	}
	if bt.calls != 3 {
		t.Fatalf("attempts = %d, want all 3", bt.calls)
	}
}

func TestRetrierBusyDisabledPassesThrough(t *testing.T) {
	bt := &busyTransport{busyLeft: 1}
	r := NewRetrier(bt, 5)
	clk := &fakeClock{t: time.Unix(0, 0)}
	withFakeClock(r, clk)

	h, _, err := r.Trans(capability.Port{}, Header{}, nil)
	if err != nil {
		t.Fatalf("Trans error = %v", err)
	}
	if h.Status != StatusBusy || bt.calls != 1 {
		t.Fatalf("status = %v after %d calls; busy must pass through untouched by default", h.Status, bt.calls)
	}
}
