package rpc

import (
	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// TraceHandler is a Handler that can emit spans: tc is the dispatch's
// span arena and parent its root span (both nil when the dispatch is
// untraced — implementations must tolerate that, which trace.Ctx's
// nil-safe methods make free). The payload contract is the same as
// Handler's: request payloads are pooled and must not be retained.
type TraceHandler func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte) (Header, []byte)

// TracedTransport is a Transport that can propagate a client-generated
// trace ID to the server. Transports that cannot carry one (or talk to
// peers that predate the extension) simply don't implement this; callers
// fall back to Trans and the server assigns a local ID.
type TracedTransport interface {
	Transport
	// TransTraced is Trans with a trace ID. traceID 0 degrades to Trans.
	TransTraced(port capability.Port, traceID uint64, req Header, payload []byte) (Header, []byte, error)
}

// identifiedTracedTransport carries both an at-most-once transaction ID
// and a trace ID (the retry layer needs to pin the former across
// attempts while propagating the latter).
type identifiedTracedTransport interface {
	TransIDTraced(port capability.Port, txid, traceID uint64, req Header, payload []byte) (Header, []byte, error)
}

// transIDTraced dispatches with the richest form the transport supports,
// degrading gracefully: trace-unaware transports still get the
// transaction ID, plain transports just get the request.
func transIDTraced(t Transport, port capability.Port, txid, traceID uint64, req Header, payload []byte) (Header, []byte, error) {
	if traceID != 0 {
		if itt, ok := t.(identifiedTracedTransport); ok {
			return itt.TransIDTraced(port, txid, traceID, req, payload)
		}
	}
	return transID(t, port, txid, req, payload)
}

// TransTraced implements TracedTransport: the transaction ID is drawn
// per call, and the trace ID rides along on every retry attempt so the
// server's flight recorder sees each attempt under the same trace.
func (r *Retrier) TransTraced(port capability.Port, traceID uint64, req Header, payload []byte) (Header, []byte, error) {
	return r.trans(port, traceID, 0, req, payload)
}

// TransIDTraced implements identifiedTracedTransport with injected loss.
func (f *Flaky) TransIDTraced(port capability.Port, txid, traceID uint64, req Header, payload []byte) (Header, []byte, error) {
	return f.run(func() (Header, []byte, error) {
		return transIDTraced(f.inner, port, txid, traceID, req, payload)
	})
}

// TransIDTraced implements identifiedTracedTransport in-process.
func (l *LocalID) TransIDTraced(port capability.Port, txid, traceID uint64, req Header, payload []byte) (Header, []byte, error) {
	return l.Mux.DispatchTraceID(traceID, port, txid, req, payload)
}

// TransTraced implements TracedTransport in-process.
func (l *LocalID) TransTraced(port capability.Port, traceID uint64, req Header, payload []byte) (Header, []byte, error) {
	return l.Mux.DispatchTraceID(traceID, port, 0, req, payload)
}
