package rpc

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"bulletfs/internal/capability"
)

// TestDeadlineTLVRoundTrip pins the deadline extension: the budget rides
// the v2 prologue next to the trace ID and both come back intact.
func TestDeadlineTLVRoundTrip(t *testing.T) {
	port := capability.PortFromString("deadline-wire")
	var buf bytes.Buffer
	const budget = 750 * time.Millisecond
	if err := writeFrameExt(&buf, magicRequest, 9, 0xabcd, budget, port, Header{Command: 5}, []byte("p")); err != nil {
		t.Fatalf("writeFrameExt: %v", err)
	}
	if got := binary.BigEndian.Uint32(buf.Bytes()[0:4]); got != magicRequestV2 {
		t.Fatalf("frame magic %08x, want v2 %08x", got, magicRequestV2)
	}
	var fixed [prologueLen + extScratchLen]byte
	txid, traceID, gotBudget, gotPort, h, payload, _, err := readFrameScratch(bytes.NewReader(buf.Bytes()), magicRequest, fixed[:], false)
	if err != nil {
		t.Fatalf("readFrameScratch: %v", err)
	}
	if txid != 9 || traceID != 0xabcd || gotBudget != budget || gotPort != port || h.Command != 5 || string(payload) != "p" {
		t.Fatalf("round trip lost fields: txid=%d traceID=%x budget=%v cmd=%d payload=%q",
			txid, traceID, gotBudget, h.Command, payload)
	}
}

// TestDeadlineWithoutTraceStaysV2 pins that a budget alone (no trace ID)
// still upgrades the frame and emits only the deadline TLV.
func TestDeadlineWithoutTraceStaysV2(t *testing.T) {
	port := capability.Port{3}
	var buf bytes.Buffer
	if err := writeFrameExt(&buf, magicRequest, 1, 0, time.Second, port, Header{Command: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(buf.Bytes()[0:4]); got != magicRequestV2 {
		t.Fatalf("frame magic %08x, want v2 %08x", got, magicRequestV2)
	}
	var fixed [prologueLen + extScratchLen]byte
	_, traceID, budget, _, _, _, _, err := readFrameScratch(bytes.NewReader(buf.Bytes()), magicRequest, fixed[:], false)
	if err != nil {
		t.Fatal(err)
	}
	if traceID != 0 || budget != time.Second {
		t.Fatalf("traceID=%x budget=%v, want 0 and 1s", traceID, budget)
	}
}

// TestDeadlineZeroStaysV1 pins interop: no budget and no trace ID means
// a byte-identical v1 frame — old servers never see the extension.
func TestDeadlineZeroStaysV1(t *testing.T) {
	port := capability.Port{7}
	var v1, v2 bytes.Buffer
	if err := writeFrame(&v1, magicRequest, 4, port, Header{Command: 6}, nil); err != nil {
		t.Fatal(err)
	}
	if err := writeFrameExt(&v2, magicRequest, 4, 0, 0, port, Header{Command: 6}, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Fatal("zero budget and trace ID changed the frame bytes")
	}
}

// TestFlakyDelayInjection pins the injected-latency mode: scripted
// per-transaction delays are delivered to the injected sleep (never the
// wall clock in tests) before the transaction runs.
func TestFlakyDelayInjection(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("flaky-delay")
	mux.Register(port, echoHandler)
	f := NewFlaky(&LocalID{Mux: mux}, 0, 0, 1)
	var slept []time.Duration
	f.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	f.ScriptDelays([]time.Duration{5 * time.Millisecond, 0, 7 * time.Millisecond})

	for i := 0; i < 3; i++ {
		if _, _, err := f.Trans(port, Header{Command: 1}, nil); err != nil {
			t.Fatalf("transaction %d: %v (schedule: %s)", i, err, f.Schedule())
		}
	}
	want := []time.Duration{5 * time.Millisecond, 7 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
}

// TestFlakySchedule pins the fault-schedule log: each transaction's fate
// (delay, drop, ok) is recorded so test failures can print exactly what
// the injector did.
func TestFlakySchedule(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("flaky-sched")
	mux.Register(port, echoHandler)
	f := NewFlaky(&LocalID{Mux: mux}, 0, 0, 1)
	f.SetSleep(func(time.Duration) {})
	f.ScriptDrops([]bool{true, false, false}, []bool{false, true, false})
	f.ScriptDelays([]time.Duration{0, 0, 3 * time.Millisecond})

	for i := 0; i < 3; i++ {
		_, _, _ = f.Trans(port, Header{Command: 1}, nil)
	}
	got := f.Schedule()
	for _, want := range []string{"#0 drop-req", "#1 drop-rep", "#2 delay(3ms)+ok"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Schedule() = %q, want it to contain %q", got, want)
		}
	}
}
