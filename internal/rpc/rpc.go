// Package rpc implements the Amoeba-style request/reply transactions the
// Bullet server is built on (paper §2.1: "operations on it are invoked
// through remote procedure calls"). A client performs a transaction against
// a 48-bit server port; the addressed capability, a command code and two
// scalar arguments travel in a fixed header, bulk data in the payload.
//
// Two transports are provided: an in-process transport (Local) for tests,
// benchmarks and single-process deployments, and a TCP transport for real
// daemons. A Mux dispatches incoming transactions to per-port handlers and
// performs at-most-once duplicate suppression so that client retries after
// lost replies never re-execute a create or delete.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bulletfs/internal/capability"
)

// Status is the outcome of a transaction, carried in the reply header.
// Services map their domain errors onto these codes and clients map them
// back, so errors.Is works across the wire.
type Status int32

// Transaction status codes.
const (
	StatusOK Status = iota
	StatusNoSuchObject
	StatusBadCheck
	StatusBadRights
	StatusTooLarge
	StatusNoSpace
	StatusBadPFactor
	StatusBadOffset
	StatusBadCommand
	StatusNotFound
	StatusExists
	StatusBadRequest
	StatusInternal
	StatusBusy
	StatusDeadlineExceeded
)

var statusText = map[Status]string{
	StatusOK:           "ok",
	StatusNoSuchObject: "no such object",
	StatusBadCheck:     "bad check field",
	StatusBadRights:    "insufficient rights",
	StatusTooLarge:     "too large",
	StatusNoSpace:      "no space",
	StatusBadPFactor:   "bad p-factor",
	StatusBadOffset:    "bad offset",
	StatusBadCommand:   "bad command",
	StatusNotFound:     "not found",
	StatusExists:       "already exists",
	StatusBadRequest:   "bad request",
	StatusInternal:     "internal error",
	StatusBusy:         "busy",

	StatusDeadlineExceeded: "deadline exceeded",
}

func (s Status) String() string {
	if t, ok := statusText[s]; ok {
		return t
	}
	return fmt.Sprintf("status(%d)", int32(s))
}

// Error wraps a non-OK Status as a Go error.
type Error struct {
	Status  Status
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Message == "" {
		return "rpc: " + e.Status.String()
	}
	return fmt.Sprintf("rpc: %s: %s", e.Status, e.Message)
}

// Is lets errors.Is match two rpc errors by status.
func (e *Error) Is(target error) bool {
	var other *Error
	if errors.As(target, &other) {
		return other.Status == e.Status
	}
	return false
}

// Errf builds an *Error.
func Errf(s Status, format string, args ...any) *Error {
	return &Error{Status: s, Message: fmt.Sprintf(format, args...)}
}

// Transport-level errors.
var (
	// ErrNoServer means no handler/listener serves the addressed port.
	ErrNoServer = errors.New("rpc: no server for port")
	// ErrBadFrame means a malformed message arrived on the wire.
	ErrBadFrame = errors.New("rpc: malformed frame")
	// ErrPayloadTooLarge means a frame exceeded the transport limit.
	ErrPayloadTooLarge = errors.New("rpc: payload exceeds limit")
	// ErrDropped is injected by the Flaky transport to simulate loss.
	ErrDropped = errors.New("rpc: message dropped")
)

// MaxPayload is the largest payload a transport will carry: comfortably
// above the largest Bullet file the experiments use (1 MB) plus headroom.
const MaxPayload = 64 << 20

// Header is the fixed part of every request and reply, modelled on the
// Amoeba transaction header: the capability being addressed, a command (or
// status, in replies) and two scalar arguments.
type Header struct {
	Cap     capability.Capability
	Command uint32
	Status  Status
	Arg     uint64
	Arg2    uint64
}

// HeaderLen is the encoded size of a Header.
const HeaderLen = capability.EncodedLen + 4 + 4 + 8 + 8

// Encode appends the wire form of h to dst.
func (h Header) Encode(dst []byte) []byte {
	dst = capability.Encode(dst, h.Cap)
	var tail [24]byte
	binary.BigEndian.PutUint32(tail[0:4], h.Command)
	binary.BigEndian.PutUint32(tail[4:8], uint32(h.Status))
	binary.BigEndian.PutUint64(tail[8:16], h.Arg)
	binary.BigEndian.PutUint64(tail[16:24], h.Arg2)
	return append(dst, tail[:]...)
}

// DecodeHeader parses a Header from the front of src, returning the rest.
func DecodeHeader(src []byte) (Header, []byte, error) {
	var h Header
	if len(src) < HeaderLen {
		return h, src, fmt.Errorf("%d bytes: %w", len(src), ErrBadFrame)
	}
	c, rest, err := capability.Decode(src)
	if err != nil {
		return h, src, fmt.Errorf("%v: %w", err, ErrBadFrame)
	}
	h.Cap = c
	h.Command = binary.BigEndian.Uint32(rest[0:4])
	h.Status = Status(binary.BigEndian.Uint32(rest[4:8]))
	h.Arg = binary.BigEndian.Uint64(rest[8:16])
	h.Arg2 = binary.BigEndian.Uint64(rest[16:24])
	return h, rest[24:], nil
}

// Handler processes one transaction addressed to a port. Implementations
// must not retain req or payload past the call — the TCP server recycles
// request payload buffers through a pool, so bytes reachable after the
// handler returns will be overwritten by a later request. The returned
// reply payload must be owned by the reply (neither aliasing the request
// payload nor server state that can mutate; copy at the boundary): the
// duplicate-suppression cache retains it indefinitely.
type Handler func(req Header, payload []byte) (Header, []byte)

// Transport delivers one transaction to the server owning a port and
// returns its reply — Amoeba's trans() primitive.
type Transport interface {
	Trans(port capability.Port, req Header, payload []byte) (Header, []byte, error)
}

// ReplyErr builds an error reply header from a status.
func ReplyErr(s Status) Header { return Header{Status: s} }

// ReplyOK builds a success reply header.
func ReplyOK() Header { return Header{Status: StatusOK} }
