package rpc

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bulletfs/internal/capability"
)

// TestSharedTCPTransportConcurrency drives ONE pooled TCPTransport from
// many goroutines: transactions on the shared connection must serialize
// correctly and never mix up replies.
func TestSharedTCPTransportConcurrency(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("shared-tr")
	mux.Register(port, func(req Header, payload []byte) (Header, []byte) {
		// Echo the command back in the reply plus the payload, so any
		// reply/request mismatch is detectable.
		out := make([]byte, len(payload))
		copy(out, payload)
		return Header{Status: StatusOK, Command: req.Command, Arg: req.Arg}, out
	})
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close() //nolint:errcheck // test cleanup

	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 10*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup

	const workers = 10
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 40; i++ {
				cmd := uint32(w*1000 + i)
				payload := bytes.Repeat([]byte{byte(w)}, w*97+1)
				rep, body, err := tr.Trans(port, Header{Command: cmd, Arg: uint64(w)}, payload)
				if err != nil {
					errc <- err
					return
				}
				if rep.Command != cmd || rep.Arg != uint64(w) {
					errc <- fmt.Errorf("worker %d got reply for command %d", w, rep.Command)
					return
				}
				if !bytes.Equal(body, payload) {
					errc <- fmt.Errorf("worker %d got another worker's payload", w)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
