package rpc

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"bulletfs/internal/capability"
)

// Local is an in-process Transport over a Mux: transactions are direct
// function calls. It is the substrate for tests and for the simulated
// network (internal/simnet), which wraps it with a timing model.
type Local struct {
	mux *Mux
}

var _ Transport = (*Local)(nil)

// NewLocal returns a Local transport dispatching to mux.
func NewLocal(mux *Mux) *Local { return &Local{mux: mux} }

// Trans implements Transport.
func (l *Local) Trans(port capability.Port, req Header, payload []byte) (Header, []byte, error) {
	return l.mux.Dispatch(port, 0, req, payload)
}

// NewTxID draws a random non-zero transaction ID for at-most-once retry.
func NewTxID() (uint64, error) {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0, fmt.Errorf("rpc: generating txid: %w", err)
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id, nil
		}
	}
}
