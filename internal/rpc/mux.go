package rpc

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// Mux routes transactions to the Handler registered for each server port
// and performs at-most-once duplicate suppression: a retried transaction
// (same non-zero transaction ID) returns the cached reply instead of
// re-executing the handler, so a create retried after a lost reply does not
// create the file twice.
//
// When a trace recorder is attached, every dispatch opens a root span
// (layer rpc, op request) in the caller's span arena; traced handlers
// (RegisterTraced) receive the arena and the root span so lower layers can
// hang their spans under it.
type Mux struct {
	mu            sync.Mutex
	handlers      map[capability.Port]muxEntry // guarded by mu
	dedup         map[uint64]cachedReply       // guarded by mu
	order         *list.List                   // guarded by mu; txids in arrival order, for bounded eviction
	maxDedup      int                          // immutable after construction
	maxDedupBytes int64                        // immutable after construction (see SetDedupBytes)
	dedupBytes    int64                        // guarded by mu; retained reply payload bytes
	metrics       *muxMetrics                  // guarded by mu (the pointed-to state is immutable)
	rec           *trace.Recorder              // guarded by mu (pointer swap only)
	timeNow       func() int64                 // guarded by mu (pointer swap only; see SetNow)

	// Dispatch-path telemetry, atomics so the hot path takes no lock.
	// AttachMetrics exposes them as rpc.* gauges.
	bytesOut       atomic.Int64 // reply payload bytes handed to transports
	pinsHeld       atomic.Int64 // owned (pin-backed) reply payloads currently over a write
	ownedReplies   atomic.Int64 // frames written from a borrowed payload (zero-copy serves)
	dedupCopied    atomic.Int64 // bytes copied by the dedup cache's copy-on-retain
	dedupEvictions atomic.Int64 // entries evicted to stay within the count/byte budget
}

// muxEntry is one registered server: exactly one of plain/traced/stream
// is set.
type muxEntry struct {
	plain  Handler
	traced TraceHandler
	stream StreamHandler
}

type cachedReply struct {
	hdr     Header
	payload []byte
	elem    *list.Element
}

// DefaultDedupBytes is the default budget on total reply payload bytes
// the duplicate-suppression cache may retain. Before the byte budget the
// cache was bounded only by entry count, so a burst of large-read replies
// could pin maxDedup megabyte payloads in RAM indefinitely.
const DefaultDedupBytes = 16 << 20

// NewMux returns an empty Mux. maxDedup bounds the duplicate-suppression
// cache (0 means a sensible default).
func NewMux(maxDedup int) *Mux {
	if maxDedup <= 0 {
		maxDedup = 4096
	}
	return &Mux{
		handlers:      make(map[capability.Port]muxEntry),
		dedup:         make(map[uint64]cachedReply),
		order:         list.New(),
		maxDedup:      maxDedup,
		maxDedupBytes: DefaultDedupBytes,
	}
}

// SetDedupBytes overrides the duplicate-suppression cache's retained-byte
// budget (0 restores the default). Call before serving; the budget is not
// synchronized against in-flight dispatches.
func (m *Mux) SetDedupBytes(n int64) {
	if n <= 0 {
		n = DefaultDedupBytes
	}
	m.maxDedupBytes = n
}

// retainLocked remembers one reply for duplicate replay, evicting oldest
// entries until both the entry count and the byte budget hold. Replies
// larger than the whole budget are not retained at all: a replayed
// transaction of that size is a re-executed read, which is idempotent.
// Caller holds m.mu.
func (m *Mux) retainLocked(txid uint64, hdr Header, payload []byte) {
	if _, dup := m.dedup[txid]; dup {
		return
	}
	n := int64(len(payload))
	if n > m.maxDedupBytes {
		return
	}
	for m.order.Len() > 0 && (m.order.Len() >= m.maxDedup || m.dedupBytes+n > m.maxDedupBytes) {
		oldest := m.order.Front()
		m.order.Remove(oldest)
		old := oldest.Value.(uint64)
		m.dedupBytes -= int64(len(m.dedup[old].payload))
		delete(m.dedup, old)
		m.dedupEvictions.Add(1)
	}
	elem := m.order.PushBack(txid)
	m.dedup[txid] = cachedReply{hdr: hdr, payload: payload, elem: elem}
	m.dedupBytes += n
}

// Register installs h as the server for port. Registering a port twice
// replaces the handler (used when restarting a server in place).
func (m *Mux) Register(port capability.Port, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[port] = muxEntry{plain: h}
}

// RegisterTraced installs th as the server for port. A traced handler
// receives the dispatch's span arena and root span (both nil when no
// recorder is attached or the transport carried no trace context) so it
// can emit child spans.
func (m *Mux) RegisterTraced(port capability.Port, th TraceHandler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[port] = muxEntry{traced: th}
}

// Unregister removes the server for port.
func (m *Mux) Unregister(port capability.Port) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, port)
}

// Ports returns the currently served ports.
func (m *Mux) Ports() []capability.Port {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]capability.Port, 0, len(m.handlers))
	for p := range m.handlers {
		out = append(out, p)
	}
	return out
}

// AttachRecorder wires the flight recorder into the dispatch path: from
// now on in-process dispatches (Local transports) record traces, and the
// TCP server borrows per-connection arenas from it.
func (m *Mux) AttachRecorder(rec *trace.Recorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rec = rec
}

// Recorder returns the attached flight recorder (nil if none).
func (m *Mux) Recorder() *trace.Recorder {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rec
}

// SetNow overrides the time source deadline budgets are measured
// against (nil restores the wall clock). Virtual-clock worlds inject
// their clock here so deadline sheds are deterministic under test.
func (m *Mux) SetNow(now func() int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.timeNow = now
}

// nowNanos is the deadline time source handed to trace.Ctx.ArmDeadline:
// the injected clock when set, otherwise the wall clock.
func (m *Mux) nowNanos() int64 {
	m.mu.Lock()
	now := m.timeNow
	m.mu.Unlock()
	if now != nil {
		return now()
	}
	return time.Now().UnixNano()
}

// Dispatch executes one transaction. txid 0 disables duplicate
// suppression; any other value is remembered and replays the cached reply.
// If a recorder is attached the dispatch records a trace under a
// server-assigned local ID.
func (m *Mux) Dispatch(port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	return m.DispatchTraceID(0, port, txid, req, payload)
}

// DispatchTraceID is Dispatch for transports that carry a wire trace ID
// but no span arena (the in-process Local transports): it borrows an
// arena from the attached recorder for the duration of the dispatch.
// traceID 0 means "none propagated"; the recorder assigns a local ID so
// the flight recorder stays complete.
func (m *Mux) DispatchTraceID(traceID uint64, port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	m.mu.Lock()
	rec := m.rec
	m.mu.Unlock()
	if rec == nil {
		return m.DispatchTrace(nil, port, txid, req, payload)
	}
	tc := rec.AcquireCtx()
	if traceID == 0 {
		traceID = rec.NextLocalID()
	}
	tc.Reset(traceID)
	h, p, err := m.DispatchTrace(tc, port, txid, req, payload)
	tc.Finish()
	rec.ReleaseCtx(tc)
	return h, p, err
}

// DispatchOpts is DispatchTraceID with the full per-call option set: a
// deadline budget (when present) is armed on the span arena before
// dispatch, exactly as the TCP server arms budgets carried by the wire
// TLV. With no recorder attached a budgeted call still gets a bare
// arena, because budgets ride on the trace Ctx.
func (m *Mux) DispatchOpts(opts CallOpts, port capability.Port, req Header, payload []byte) (Header, []byte, error) {
	if opts.Budget <= 0 {
		return m.DispatchTraceID(opts.TraceID, port, opts.TxID, req, payload)
	}
	m.mu.Lock()
	rec := m.rec
	m.mu.Unlock()
	var tc *trace.Ctx
	traceID := opts.TraceID
	if rec != nil {
		tc = rec.AcquireCtx()
		if traceID == 0 {
			traceID = rec.NextLocalID()
		}
	} else {
		tc = new(trace.Ctx)
	}
	tc.Reset(traceID)
	tc.ArmDeadline(opts.Budget, m.nowNanos)
	h, p, err := m.DispatchTrace(tc, port, opts.TxID, req, payload)
	tc.Finish()
	if rec != nil {
		rec.ReleaseCtx(tc)
	}
	return h, p, err
}

// DispatchTrace executes one transaction, recording spans into tc (which
// the caller owns, arms with Reset, and flushes with Finish — the TCP
// server holds one arena per connection). A nil tc records nothing.
func (m *Mux) DispatchTrace(tc *trace.Ctx, port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	m.mu.Lock()
	e, ok := m.handlers[port]
	mm := m.metrics
	if !ok {
		m.mu.Unlock()
		return Header{}, nil, ErrNoServer
	}
	if txid != 0 {
		if cached, dup := m.dedup[txid]; dup {
			m.mu.Unlock()
			m.replayStats(mm, tc, req, cached)
			return cached.hdr, cached.payload, nil
		}
	}
	m.mu.Unlock()

	root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
	if root != nil {
		root.Cmd = req.Command
		root.Bytes = int64(len(payload))
	}
	start := time.Now()
	var repHdr Header
	var repPayload []byte
	switch {
	case e.stream != nil:
		// Single-reply view of a stream handler: the frames are assembled
		// into one owned payload (each frame's bytes are copied before its
		// backing pin is released), so non-streaming transports keep the
		// classic Trans contract.
		first := true
		e.stream(tc, root, req, payload, func(h Header, p Payload, last bool) error {
			if first {
				repHdr = h
				first = false
			}
			repPayload = append(repPayload, p.Data...)
			m.bytesOut.Add(int64(len(p.Data)))
			p.release()
			return nil
		})
		if first {
			repHdr = ReplyErr(StatusInternal)
		}
	case e.traced != nil:
		repHdr, repPayload = e.traced(tc, root, req, payload)
		m.bytesOut.Add(int64(len(repPayload)))
	default:
		repHdr, repPayload = e.plain(req, payload)
		m.bytesOut.Add(int64(len(repPayload)))
	}
	if mm != nil {
		mm.record(req.Command, len(payload), len(repPayload), repHdr.Status, time.Since(start), tc.TraceID())
	}
	if root != nil {
		root.Status = int32(repHdr.Status)
	}
	tc.End(root)

	if txid != 0 {
		m.mu.Lock()
		m.retainLocked(txid, repHdr, repPayload)
		m.mu.Unlock()
	}
	return repHdr, repPayload, nil
}

// DedupLen reports the current size of the duplicate-suppression cache.
func (m *Mux) DedupLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dedup)
}

// DedupBytes reports the reply payload bytes currently retained by the
// duplicate-suppression cache.
func (m *Mux) DedupBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dedupBytes
}

// DedupEvictions reports entries evicted from the duplicate-suppression
// cache to stay within its count and byte budgets.
func (m *Mux) DedupEvictions() int64 { return m.dedupEvictions.Load() }

// BytesOut reports total reply payload bytes handed to transports.
func (m *Mux) BytesOut() int64 { return m.bytesOut.Load() }

// OwnedReplies reports reply frames written from borrowed (pin-backed)
// payloads — the zero-copy serves.
func (m *Mux) OwnedReplies() int64 { return m.ownedReplies.Load() }

// PinsHeld reports borrowed reply payloads currently held over a write.
func (m *Mux) PinsHeld() int64 { return m.pinsHeld.Load() }

// DedupCopiedBytes reports bytes the dedup cache copied on retain
// (borrowed payloads only; reply-owned payloads are retained as-is).
func (m *Mux) DedupCopiedBytes() int64 { return m.dedupCopied.Load() }
