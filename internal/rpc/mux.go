package rpc

import (
	"container/list"
	"sync"
	"time"

	"bulletfs/internal/capability"
)

// Mux routes transactions to the Handler registered for each server port
// and performs at-most-once duplicate suppression: a retried transaction
// (same non-zero transaction ID) returns the cached reply instead of
// re-executing the handler, so a create retried after a lost reply does not
// create the file twice.
type Mux struct {
	mu       sync.Mutex
	handlers map[capability.Port]Handler // guarded by mu
	dedup    map[uint64]cachedReply      // guarded by mu
	order    *list.List                  // guarded by mu; txids in arrival order, for bounded eviction
	maxDedup int                         // immutable after construction
	metrics  *muxMetrics                 // guarded by mu (the pointed-to state is immutable)
}

type cachedReply struct {
	hdr     Header
	payload []byte
	elem    *list.Element
}

// NewMux returns an empty Mux. maxDedup bounds the duplicate-suppression
// cache (0 means a sensible default).
func NewMux(maxDedup int) *Mux {
	if maxDedup <= 0 {
		maxDedup = 4096
	}
	return &Mux{
		handlers: make(map[capability.Port]Handler),
		dedup:    make(map[uint64]cachedReply),
		order:    list.New(),
		maxDedup: maxDedup,
	}
}

// Register installs h as the server for port. Registering a port twice
// replaces the handler (used when restarting a server in place).
func (m *Mux) Register(port capability.Port, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[port] = h
}

// Unregister removes the server for port.
func (m *Mux) Unregister(port capability.Port) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, port)
}

// Ports returns the currently served ports.
func (m *Mux) Ports() []capability.Port {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]capability.Port, 0, len(m.handlers))
	for p := range m.handlers {
		out = append(out, p)
	}
	return out
}

// Dispatch executes one transaction. txid 0 disables duplicate
// suppression; any other value is remembered and replays the cached reply.
func (m *Mux) Dispatch(port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	m.mu.Lock()
	h, ok := m.handlers[port]
	mm := m.metrics
	if !ok {
		m.mu.Unlock()
		return Header{}, nil, ErrNoServer
	}
	if txid != 0 {
		if cached, dup := m.dedup[txid]; dup {
			m.mu.Unlock()
			if mm != nil {
				mm.reg.Counter("rpc.dup_replays").Inc()
			}
			return cached.hdr, cached.payload, nil
		}
	}
	m.mu.Unlock()

	start := time.Now()
	repHdr, repPayload := h(req, payload)
	if mm != nil {
		mm.record(req.Command, len(payload), len(repPayload), repHdr.Status, time.Since(start))
	}

	if txid != 0 {
		m.mu.Lock()
		if _, dup := m.dedup[txid]; !dup {
			for m.order.Len() >= m.maxDedup {
				oldest := m.order.Front()
				m.order.Remove(oldest)
				delete(m.dedup, oldest.Value.(uint64))
			}
			elem := m.order.PushBack(txid)
			m.dedup[txid] = cachedReply{hdr: repHdr, payload: repPayload, elem: elem}
		}
		m.mu.Unlock()
	}
	return repHdr, repPayload, nil
}

// DedupLen reports the current size of the duplicate-suppression cache.
func (m *Mux) DedupLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dedup)
}
