package rpc

import (
	"container/list"
	"sync"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// Mux routes transactions to the Handler registered for each server port
// and performs at-most-once duplicate suppression: a retried transaction
// (same non-zero transaction ID) returns the cached reply instead of
// re-executing the handler, so a create retried after a lost reply does not
// create the file twice.
//
// When a trace recorder is attached, every dispatch opens a root span
// (layer rpc, op request) in the caller's span arena; traced handlers
// (RegisterTraced) receive the arena and the root span so lower layers can
// hang their spans under it.
type Mux struct {
	mu       sync.Mutex
	handlers map[capability.Port]muxEntry // guarded by mu
	dedup    map[uint64]cachedReply       // guarded by mu
	order    *list.List                   // guarded by mu; txids in arrival order, for bounded eviction
	maxDedup int                          // immutable after construction
	metrics  *muxMetrics                  // guarded by mu (the pointed-to state is immutable)
	rec      *trace.Recorder              // guarded by mu (pointer swap only)
}

// muxEntry is one registered server: exactly one of plain/traced is set.
type muxEntry struct {
	plain  Handler
	traced TraceHandler
}

type cachedReply struct {
	hdr     Header
	payload []byte
	elem    *list.Element
}

// NewMux returns an empty Mux. maxDedup bounds the duplicate-suppression
// cache (0 means a sensible default).
func NewMux(maxDedup int) *Mux {
	if maxDedup <= 0 {
		maxDedup = 4096
	}
	return &Mux{
		handlers: make(map[capability.Port]muxEntry),
		dedup:    make(map[uint64]cachedReply),
		order:    list.New(),
		maxDedup: maxDedup,
	}
}

// Register installs h as the server for port. Registering a port twice
// replaces the handler (used when restarting a server in place).
func (m *Mux) Register(port capability.Port, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[port] = muxEntry{plain: h}
}

// RegisterTraced installs th as the server for port. A traced handler
// receives the dispatch's span arena and root span (both nil when no
// recorder is attached or the transport carried no trace context) so it
// can emit child spans.
func (m *Mux) RegisterTraced(port capability.Port, th TraceHandler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[port] = muxEntry{traced: th}
}

// Unregister removes the server for port.
func (m *Mux) Unregister(port capability.Port) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, port)
}

// Ports returns the currently served ports.
func (m *Mux) Ports() []capability.Port {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]capability.Port, 0, len(m.handlers))
	for p := range m.handlers {
		out = append(out, p)
	}
	return out
}

// AttachRecorder wires the flight recorder into the dispatch path: from
// now on in-process dispatches (Local transports) record traces, and the
// TCP server borrows per-connection arenas from it.
func (m *Mux) AttachRecorder(rec *trace.Recorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rec = rec
}

// Recorder returns the attached flight recorder (nil if none).
func (m *Mux) Recorder() *trace.Recorder {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rec
}

// Dispatch executes one transaction. txid 0 disables duplicate
// suppression; any other value is remembered and replays the cached reply.
// If a recorder is attached the dispatch records a trace under a
// server-assigned local ID.
func (m *Mux) Dispatch(port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	return m.DispatchTraceID(0, port, txid, req, payload)
}

// DispatchTraceID is Dispatch for transports that carry a wire trace ID
// but no span arena (the in-process Local transports): it borrows an
// arena from the attached recorder for the duration of the dispatch.
// traceID 0 means "none propagated"; the recorder assigns a local ID so
// the flight recorder stays complete.
func (m *Mux) DispatchTraceID(traceID uint64, port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	m.mu.Lock()
	rec := m.rec
	m.mu.Unlock()
	if rec == nil {
		return m.DispatchTrace(nil, port, txid, req, payload)
	}
	tc := rec.AcquireCtx()
	if traceID == 0 {
		traceID = rec.NextLocalID()
	}
	tc.Reset(traceID)
	h, p, err := m.DispatchTrace(tc, port, txid, req, payload)
	tc.Finish()
	rec.ReleaseCtx(tc)
	return h, p, err
}

// DispatchTrace executes one transaction, recording spans into tc (which
// the caller owns, arms with Reset, and flushes with Finish — the TCP
// server holds one arena per connection). A nil tc records nothing.
func (m *Mux) DispatchTrace(tc *trace.Ctx, port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	m.mu.Lock()
	e, ok := m.handlers[port]
	mm := m.metrics
	if !ok {
		m.mu.Unlock()
		return Header{}, nil, ErrNoServer
	}
	if txid != 0 {
		if cached, dup := m.dedup[txid]; dup {
			m.mu.Unlock()
			if mm != nil {
				mm.reg.Counter("rpc.dup_replays").Inc()
			}
			root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
			if root != nil {
				root.Cmd = req.Command
				root.Status = int32(cached.hdr.Status)
			}
			tc.End(root)
			return cached.hdr, cached.payload, nil
		}
	}
	m.mu.Unlock()

	root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
	if root != nil {
		root.Cmd = req.Command
		root.Bytes = int64(len(payload))
	}
	start := time.Now()
	var repHdr Header
	var repPayload []byte
	if e.traced != nil {
		repHdr, repPayload = e.traced(tc, root, req, payload)
	} else {
		repHdr, repPayload = e.plain(req, payload)
	}
	if mm != nil {
		mm.record(req.Command, len(payload), len(repPayload), repHdr.Status, time.Since(start))
	}
	if root != nil {
		root.Status = int32(repHdr.Status)
	}
	tc.End(root)

	if txid != 0 {
		m.mu.Lock()
		if _, dup := m.dedup[txid]; !dup {
			for m.order.Len() >= m.maxDedup {
				oldest := m.order.Front()
				m.order.Remove(oldest)
				delete(m.dedup, oldest.Value.(uint64))
			}
			elem := m.order.PushBack(txid)
			m.dedup[txid] = cachedReply{hdr: repHdr, payload: repPayload, elem: elem}
		}
		m.mu.Unlock()
	}
	return repHdr, repPayload, nil
}

// DedupLen reports the current size of the duplicate-suppression cache.
func (m *Mux) DedupLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dedup)
}
