package rpc

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// fakeLease is a Releaser tracking release count and whether the bytes
// were still live at write time.
type fakeLease struct {
	mu       sync.Mutex
	released int
}

func (f *fakeLease) Release() {
	f.mu.Lock()
	f.released++
	f.mu.Unlock()
}

func (f *fakeLease) releases() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.released
}

func TestDispatchStreamMultiFrame(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("stream")
	payloadA, payloadB := []byte("first-"), []byte("second")
	mux.RegisterStream(port, func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte, emit Emitter) {
		_ = emit(Header{Status: StatusOK, Arg: 1}, Plain(payloadA), false)
		_ = emit(Header{Status: StatusOK, Arg: 2}, Plain(payloadB), true)
	})

	var frames []Header
	var got []byte
	var lasts []bool
	err := mux.DispatchStream(nil, port, 0, Header{Command: 9}, nil, func(h Header, data []byte, last bool) error {
		frames = append(frames, h)
		got = append(got, data...)
		lasts = append(lasts, last)
		return nil
	})
	if err != nil {
		t.Fatalf("DispatchStream: %v", err)
	}
	if len(frames) != 2 || !lasts[1] || lasts[0] {
		t.Fatalf("frames = %d, lasts = %v; want 2 frames, final last", len(frames), lasts)
	}
	if !bytes.Equal(got, []byte("first-second")) {
		t.Fatalf("assembled payload = %q", got)
	}
	if mux.BytesOut() != int64(len(got)) {
		t.Fatalf("BytesOut = %d, want %d", mux.BytesOut(), len(got))
	}
}

func TestDispatchStreamOwnedPayloadReleasedAfterWrite(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("owned")
	lease := &fakeLease{}
	mux.RegisterStream(port, func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte, emit Emitter) {
		_ = emit(ReplyOK(), Owned([]byte("pinned bytes"), lease), true)
	})

	var pinsDuringWrite int64
	err := mux.DispatchStream(nil, port, 0, Header{}, nil, func(h Header, data []byte, last bool) error {
		// The pin must be held while the sink (the socket write) runs.
		pinsDuringWrite = mux.PinsHeld()
		if lease.releases() != 0 {
			t.Error("lease released before the sink ran")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("DispatchStream: %v", err)
	}
	if pinsDuringWrite != 1 {
		t.Fatalf("PinsHeld during write = %d, want 1", pinsDuringWrite)
	}
	if lease.releases() != 1 {
		t.Fatalf("lease released %d times, want exactly 1", lease.releases())
	}
	if mux.PinsHeld() != 0 {
		t.Fatalf("PinsHeld after dispatch = %d, want 0", mux.PinsHeld())
	}
	if mux.OwnedReplies() != 1 {
		t.Fatalf("OwnedReplies = %d, want 1", mux.OwnedReplies())
	}
}

func TestDispatchStreamOwnedReleasedEvenOnSinkError(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("sinkerr")
	lease := &fakeLease{}
	mux.RegisterStream(port, func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte, emit Emitter) {
		if err := emit(ReplyOK(), Owned([]byte("x"), lease), true); err == nil {
			t.Error("emit should surface the sink error")
		}
	})
	sinkErr := fmt.Errorf("conn gone")
	err := mux.DispatchStream(nil, port, 0, Header{}, nil, func(Header, []byte, bool) error { return sinkErr })
	if err != sinkErr {
		t.Fatalf("DispatchStream err = %v, want the sink error", err)
	}
	if lease.releases() != 1 {
		t.Fatalf("lease released %d times after sink error, want 1", lease.releases())
	}
	if mux.PinsHeld() != 0 {
		t.Fatalf("PinsHeld = %d, want 0", mux.PinsHeld())
	}
}

func TestDispatchStreamCopyOnRetain(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("retain")
	backing := []byte("live while pinned")
	calls := 0
	mux.RegisterStream(port, func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte, emit Emitter) {
		calls++
		lease := &fakeLease{}
		_ = emit(ReplyOK(), Owned(backing, lease), true)
	})

	sink := func(h Header, data []byte, last bool) error { return nil }
	if err := mux.DispatchStream(nil, port, 77, Header{}, nil, sink); err != nil {
		t.Fatalf("DispatchStream: %v", err)
	}
	if mux.DedupCopiedBytes() != int64(len(backing)) {
		t.Fatalf("DedupCopiedBytes = %d, want %d", mux.DedupCopiedBytes(), len(backing))
	}
	// Clobber the borrowed backing (simulates the cache slot being reused
	// after release): the replay must serve its own copy.
	for i := range backing {
		backing[i] = 0
	}
	var replay []byte
	if err := mux.DispatchStream(nil, port, 77, Header{}, nil, func(h Header, data []byte, last bool) error {
		replay = append([]byte(nil), data...)
		return nil
	}); err != nil {
		t.Fatalf("replay DispatchStream: %v", err)
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1 (replay must come from the dedup cache)", calls)
	}
	if string(replay) != "live while pinned" {
		t.Fatalf("replayed payload = %q: the dedup cache aliased the borrowed bytes", replay)
	}
}

func TestDispatchStreamMultiFrameNotRetained(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("noretain")
	calls := 0
	mux.RegisterStream(port, func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte, emit Emitter) {
		calls++
		_ = emit(ReplyOK(), Plain([]byte("a")), false)
		_ = emit(ReplyOK(), Plain([]byte("b")), true)
	})
	sink := func(Header, []byte, bool) error { return nil }
	if err := mux.DispatchStream(nil, port, 42, Header{}, nil, sink); err != nil {
		t.Fatal(err)
	}
	if err := mux.DispatchStream(nil, port, 42, Header{}, nil, sink); err != nil {
		t.Fatal(err)
	}
	// Multi-frame replies are never cached: the retry re-executes.
	if calls != 2 {
		t.Fatalf("handler ran %d times, want 2 (multi-frame replies are not replayable)", calls)
	}
}

func TestDispatchStreamEmptyEmitIsInternalError(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("silent")
	mux.RegisterStream(port, func(*trace.Ctx, *trace.Span, Header, []byte, Emitter) {})
	var got Header
	var last bool
	if err := mux.DispatchStream(nil, port, 0, Header{}, nil, func(h Header, _ []byte, l bool) error {
		got, last = h, l
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusInternal || !last {
		t.Fatalf("silent handler produced %v (last=%v), want StatusInternal final frame", got, last)
	}
}

func TestDedupByteBudgetEviction(t *testing.T) {
	mux := NewMux(0)
	mux.SetDedupBytes(1 << 10) // 1 KiB budget
	port := capability.PortFromString("budget")
	mux.Register(port, func(req Header, payload []byte) (Header, []byte) {
		return ReplyOK(), bytes.Repeat([]byte{byte(req.Arg)}, 400)
	})

	// Three 400-byte replies against a 1 KiB budget: retaining the third
	// must evict the first.
	for txid := uint64(1); txid <= 3; txid++ {
		if _, _, err := mux.Dispatch(port, txid, Header{Arg: txid}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := mux.DedupBytes(); got > 1<<10 {
		t.Fatalf("DedupBytes = %d, exceeds the 1 KiB budget", got)
	}
	if mux.DedupEvictions() == 0 {
		t.Fatal("no evictions despite exceeding the byte budget")
	}
	if mux.DedupLen() != 2 {
		t.Fatalf("DedupLen = %d, want 2", mux.DedupLen())
	}

	// An oversized reply is not retained at all: the retry re-executes
	// (harmless for idempotent reads), and the budget is undisturbed.
	big := capability.PortFromString("big")
	execs := 0
	mux.Register(big, func(Header, []byte) (Header, []byte) {
		execs++
		return ReplyOK(), make([]byte, 2<<10)
	})
	before := mux.DedupBytes()
	for i := 0; i < 2; i++ {
		if _, _, err := mux.Dispatch(big, 99, Header{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if execs != 2 {
		t.Fatalf("oversized reply executed %d times, want 2 (never retained)", execs)
	}
	if mux.DedupBytes() != before {
		t.Fatalf("DedupBytes moved from %d to %d on an unretained reply", before, mux.DedupBytes())
	}
}

func TestTransStreamOverTCP(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("wire-stream")
	const chunks = 5
	mux.RegisterStream(port, func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte, emit Emitter) {
		for i := 0; i < chunks; i++ {
			data := bytes.Repeat([]byte{byte('a' + i)}, 1000)
			if emit(Header{Status: StatusOK, Arg: uint64(i)}, Plain(data), i == chunks-1) != nil {
				return
			}
		}
	})
	echo := capability.PortFromString("wire-echo")
	mux.Register(echo, echoHandler)
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close() //nolint:errcheck // test cleanup
	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr, echo: addr}), 5*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup

	var got []byte
	var frames int
	rep, err := tr.TransStream(port, Header{Command: 1}, nil, func(h Header, data []byte, last bool) error {
		frames++
		got = append(got, data...)
		if last != (frames == chunks) {
			t.Errorf("frame %d: last = %v", frames, last)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("TransStream: %v", err)
	}
	if rep.Status != StatusOK || rep.Arg != chunks-1 {
		t.Fatalf("final header = %+v", rep)
	}
	if frames != chunks || len(got) != chunks*1000 {
		t.Fatalf("got %d frames, %d bytes; want %d frames, %d bytes", frames, len(got), chunks, chunks*1000)
	}

	// The connection is reusable for a classic transaction afterwards.
	if rep, _, err := tr.Trans(echo, Header{Command: 2}, nil); err != nil || rep.Status != StatusOK {
		t.Fatalf("Trans after stream: %+v, %v", rep, err)
	}
}
