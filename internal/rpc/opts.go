package rpc

import (
	"time"

	"bulletfs/internal/capability"
)

// CallOpts is the full per-call option set a transport can carry beyond
// the fixed header: the at-most-once transaction ID, the wire trace ID,
// and a remaining-time deadline budget. Zero values mean "absent" —
// CallOpts{} is exactly a plain Trans.
type CallOpts struct {
	// TxID pins the transaction for at-most-once duplicate suppression
	// (0 = none).
	TxID uint64
	// TraceID propagates the client's trace (0 = server assigns one).
	TraceID uint64
	// Budget is how much time the caller is still willing to wait. It
	// rides the wire as the deadline TLV; the server sheds with
	// StatusDeadlineExceeded when the budget can't cover the op. 0 means
	// no deadline.
	Budget time.Duration
}

// OptsTransport is a Transport that can carry the full option set.
// Transports that predate a given option simply don't implement this;
// transOpts degrades the call to the richest form the transport
// supports (dropping the budget, then the trace ID).
type OptsTransport interface {
	Transport
	TransOpts(port capability.Port, opts CallOpts, req Header, payload []byte) (Header, []byte, error)
}

// transOpts dispatches with the richest form the transport supports.
// A budget on a transport that cannot carry one is dropped — the
// caller's own clock still bounds the call — rather than failing.
func transOpts(t Transport, port capability.Port, opts CallOpts, req Header, payload []byte) (Header, []byte, error) {
	if ot, ok := t.(OptsTransport); ok {
		return ot.TransOpts(port, opts, req, payload)
	}
	return transIDTraced(t, port, opts.TxID, opts.TraceID, req, payload)
}

// TransOpts implements OptsTransport in-process.
func (l *LocalID) TransOpts(port capability.Port, opts CallOpts, req Header, payload []byte) (Header, []byte, error) {
	return l.Mux.DispatchOpts(opts, port, req, payload)
}
