package rpc

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"bulletfs/internal/capability"
)

// These tests point raw sockets at the TCP server: a production file
// server must shrug off garbage, truncated frames and oversized claims
// without crashing or wedging other clients.

func newEchoServer(t *testing.T) (string, capability.Port, *TCPServer) {
	t.Helper()
	mux := NewMux(0)
	port := capability.PortFromString("robust")
	mux.Register(port, echoHandler)
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck // test cleanup
	return addr, port, srv
}

func checkStillServing(t *testing.T, addr string, port capability.Port) {
	t.Helper()
	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 5*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup
	rep, body, err := tr.Trans(port, Header{Command: 1}, []byte("alive?"))
	if err != nil || rep.Status != StatusOK || !bytes.Equal(body, []byte("alive?")) {
		t.Fatalf("server unhealthy after abuse: %v %v %q", err, rep.Status, body)
	}
}

func TestTCPServerSurvivesGarbageBytes(t *testing.T) {
	addr, port, _ := newEchoServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := conn.Write(bytes.Repeat([]byte("not a frame at all "), 100)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// The server must drop the connection (bad magic), not hang it.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second)) //nolint:errcheck
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server replied to garbage")
	}
	conn.Close()
	checkStillServing(t, addr, port)
}

func TestTCPServerSurvivesTruncatedFrame(t *testing.T) {
	addr, port, _ := newEchoServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// A valid prefix that claims a payload, then hang up mid-payload.
	var buf bytes.Buffer
	if err := writeFrame(&buf, magicRequest, 1, port, Header{Command: 1}, bytes.Repeat([]byte{1}, 1000)); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	if _, err := conn.Write(buf.Bytes()[:buf.Len()-500]); err != nil {
		t.Fatalf("Write: %v", err)
	}
	conn.Close()
	checkStillServing(t, addr, port)
}

func TestTCPServerRejectsOversizedPayloadClaim(t *testing.T) {
	addr, port, _ := newEchoServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	// Hand-build a frame header claiming a payload far past MaxPayload.
	var frame bytes.Buffer
	var scratch [12]byte
	binary.BigEndian.PutUint32(scratch[0:4], magicRequest)
	binary.BigEndian.PutUint64(scratch[4:12], 7)
	frame.Write(scratch[:12])
	frame.Write(port[:])
	frame.Write(Header{Command: 1}.Encode(nil))
	binary.BigEndian.PutUint32(scratch[0:4], uint32(MaxPayload+1))
	frame.Write(scratch[:4])
	if _, err := conn.Write(frame.Bytes()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// The server must drop the connection instead of allocating 64 MB+.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second)) //nolint:errcheck
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Fatal("server replied to an oversized claim")
	}
	checkStillServing(t, addr, port)
}

func TestTCPServerSurvivesAbruptDisconnects(t *testing.T) {
	addr, port, _ := newEchoServer(t)
	for i := 0; i < 20; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("Dial %d: %v", i, err)
		}
		// Half of them send a partial frame first.
		if i%2 == 0 {
			conn.Write([]byte{0x41, 0x4d}) //nolint:errcheck
		}
		conn.Close()
	}
	checkStillServing(t, addr, port)
}

func TestTCPClientReconnectsAfterServerRestart(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("restarting")
	mux.Register(port, echoHandler)
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}

	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 5*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup
	if _, _, err := tr.Trans(port, Header{}, []byte("one")); err != nil {
		t.Fatalf("first Trans: %v", err)
	}

	// Server restarts on the same address.
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	srv2 := NewTCPServer(mux)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("re-Listen: %v", err)
	}
	defer srv2.Close() //nolint:errcheck // test cleanup

	// The pooled connection is dead; the first call fails, the retry
	// machinery (as a client would use) succeeds on a fresh dial.
	retr := NewRetrier(tr, 3)
	rep, body, err := retr.Trans(port, Header{}, []byte("two"))
	if err != nil || rep.Status != StatusOK || !bytes.Equal(body, []byte("two")) {
		t.Fatalf("Trans after restart: %v %v %q", err, rep.Status, body)
	}
}
