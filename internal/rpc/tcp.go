package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/stats"
)

// Wire format of one TCP frame, both directions:
//
//	magic   uint32  ('AMTX' requests, 'AMRP' replies)
//	txid    uint64  (at-most-once duplicate suppression; 0 = none)
//	port    [6]byte (requests only the addressed port; replies echo it)
//	header  HeaderLen bytes
//	paylen  uint32
//	payload paylen bytes
const (
	magicRequest = 0x414d5458 // "AMTX"
	magicReply   = 0x414d5250 // "AMRP"
)

func writeFrame(w io.Writer, magic uint32, txid uint64, port capability.Port, h Header, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%d bytes: %w", len(payload), ErrPayloadTooLarge)
	}
	buf := make([]byte, 0, 4+8+capability.PortLen+HeaderLen+4+len(payload))
	var scratch [12]byte
	binary.BigEndian.PutUint32(scratch[0:4], magic)
	binary.BigEndian.PutUint64(scratch[4:12], txid)
	buf = append(buf, scratch[:12]...)
	buf = append(buf, port[:]...)
	buf = h.Encode(buf)
	binary.BigEndian.PutUint32(scratch[0:4], uint32(len(payload)))
	buf = append(buf, scratch[:4]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader, wantMagic uint32) (txid uint64, port capability.Port, h Header, payload []byte, err error) {
	fixed := make([]byte, 4+8+capability.PortLen+HeaderLen+4)
	if _, err = io.ReadFull(r, fixed); err != nil {
		return 0, port, h, nil, err
	}
	if got := binary.BigEndian.Uint32(fixed[0:4]); got != wantMagic {
		return 0, port, h, nil, fmt.Errorf("magic %08x: %w", got, ErrBadFrame)
	}
	txid = binary.BigEndian.Uint64(fixed[4:12])
	copy(port[:], fixed[12:12+capability.PortLen])
	h, _, err = DecodeHeader(fixed[12+capability.PortLen : 12+capability.PortLen+HeaderLen])
	if err != nil {
		return 0, port, h, nil, err
	}
	paylen := binary.BigEndian.Uint32(fixed[len(fixed)-4:])
	if paylen > MaxPayload {
		return 0, port, h, nil, fmt.Errorf("%d bytes: %w", paylen, ErrPayloadTooLarge)
	}
	payload = make([]byte, paylen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, port, h, nil, err
	}
	return txid, port, h, payload, nil
}

// TCPServer serves a Mux over a TCP listener, one goroutine per
// connection, requests on a connection processed in order.
type TCPServer struct {
	mux *Mux

	mu     sync.Mutex
	lis    net.Listener          // guarded by mu
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
	wg     sync.WaitGroup
}

// NewTCPServer wraps mux for serving.
func NewTCPServer(mux *Mux) *TCPServer {
	return &TCPServer{mux: mux, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr ("host:port", ":0" for ephemeral) and
// returns the bound address. Serving happens on background goroutines
// until Close.
func (s *TCPServer) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(lis)
	return lis.Addr().String(), nil
}

func (s *TCPServer) acceptLoop(lis net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		txid, port, req, payload, err := readFrame(br, magicRequest)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		repHdr, repPayload, err := s.mux.Dispatch(port, txid, req, payload)
		if err != nil {
			if errors.Is(err, ErrNoServer) {
				repHdr, repPayload = ReplyErr(StatusNoSuchObject), nil
			} else {
				repHdr, repPayload = ReplyErr(StatusInternal), nil
			}
		}
		if err := writeFrame(bw, magicReply, txid, port, repHdr, repPayload); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener and all connections, waiting for handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// Resolver maps a server port to a TCP address — the static equivalent of
// Amoeba's port-location broadcast.
type Resolver func(port capability.Port) (addr string, err error)

// StaticResolver builds a Resolver from a fixed port->address table.
func StaticResolver(table map[capability.Port]string) Resolver {
	return func(p capability.Port) (string, error) {
		addr, ok := table[p]
		if !ok {
			return "", fmt.Errorf("port %x: %w", p[:], ErrNoServer)
		}
		return addr, nil
	}
}

// TCPTransport is a client-side Transport over TCP with one pooled
// connection per server address. Transactions on one connection are
// serialized (the Bullet protocol is strictly request/reply).
type TCPTransport struct {
	resolve Resolver
	timeout time.Duration

	mu        sync.Mutex
	conns     map[string]*tcpConn // guarded by mu
	timeouts  *stats.Counter      // guarded by mu (pointer swap only; see AttachMetrics)
	transErrs *stats.Counter      // guarded by mu (pointer swap only; see AttachMetrics)
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn      // safe for concurrent use; mu orders whole transactions
	br   *bufio.Reader // guarded by mu
	bw   *bufio.Writer // guarded by mu
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport builds a client transport. timeout bounds each
// transaction (0 means no deadline).
func NewTCPTransport(resolve Resolver, timeout time.Duration) *TCPTransport {
	return &TCPTransport{resolve: resolve, timeout: timeout, conns: make(map[string]*tcpConn)}
}

func (t *TCPTransport) getConn(addr string) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[addr]; ok {
		return c, nil
	}
	conn, err := net.DialTimeout("tcp", addr, t.timeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &tcpConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	t.conns[addr] = c
	return c, nil
}

func (t *TCPTransport) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	c.conn.Close()
}

// Trans implements Transport.
func (t *TCPTransport) Trans(port capability.Port, req Header, payload []byte) (Header, []byte, error) {
	return t.TransID(port, 0, req, payload)
}

// TransID is Trans with an explicit transaction ID for at-most-once
// semantics across retries (see Retrier).
func (t *TCPTransport) TransID(port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	addr, err := t.resolve(port)
	if err != nil {
		return Header{}, nil, err
	}
	c, err := t.getConn(addr)
	if err != nil {
		t.noteTransportErr(err)
		return Header{}, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(t.timeout)); err != nil {
			t.dropConn(addr, c)
			t.noteTransportErr(err)
			return Header{}, nil, fmt.Errorf("rpc: set deadline: %w", err)
		}
	}
	if err := writeFrame(c.bw, magicRequest, txid, port, req, payload); err != nil {
		t.dropConn(addr, c)
		t.noteTransportErr(err)
		return Header{}, nil, fmt.Errorf("rpc: send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		t.dropConn(addr, c)
		t.noteTransportErr(err)
		return Header{}, nil, fmt.Errorf("rpc: flush: %w", err)
	}
	_, _, repHdr, repPayload, err := readFrame(c.br, magicReply)
	if err != nil {
		t.dropConn(addr, c)
		t.noteTransportErr(err)
		return Header{}, nil, fmt.Errorf("rpc: receive: %w", err)
	}
	return repHdr, repPayload, nil
}

// Close drops all pooled connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for addr, c := range t.conns {
		c.conn.Close()
		delete(t.conns, addr)
	}
	return nil
}
