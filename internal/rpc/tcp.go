package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// Wire format of one TCP frame, both directions:
//
//	magic   uint32  ('AMTX' requests, 'AMRP' replies)
//	txid    uint64  (at-most-once duplicate suppression; 0 = none)
//	port    [6]byte (requests only the addressed port; replies echo it)
//	header  HeaderLen bytes
//	paylen  uint32
//	payload paylen bytes
//
// A v2 request ('AMT2' magic, same prologue layout) inserts a prologue
// extension between paylen and payload:
//
//	extlen  uint16
//	ext     extlen bytes of TLV fields: type uint8, len uint8, value
//
// Receivers skip unknown TLV types. Type 0x01 carries the 8-byte trace ID.
const (
	magicRequest = 0x414d5458 // "AMTX"
	magicReply   = 0x414d5250 // "AMRP"

	// magicReplyMore marks a non-final frame of a multi-frame (streamed)
	// reply: same prologue layout as a reply, with at least one more frame
	// following on the connection. The final frame of a stream carries the
	// plain reply magic, so a transaction is complete exactly when an AMRP
	// frame arrives. Only stream-aware commands (READSTREAM) ever produce
	// these; every other command replies with a single AMRP frame, keeping
	// old clients wire-compatible.
	magicReplyMore = 0x414d5253 // "AMRS"

	// magicRequestV2 marks a request frame carrying a prologue extension:
	// the v1 prologue byte-for-byte (only the magic differs), then
	// extlen (uint16) and extlen bytes of type-length-value fields, then
	// the payload. Receivers skip unknown field types, so the extension
	// can grow without another version bump; v1-only peers are addressed
	// with v1 frames (the extension is opt-in per request).
	magicRequestV2 = 0x414d5432 // "AMT2"

	// prologueLen is everything before the payload: magic, txid, port,
	// header, paylen.
	prologueLen = 4 + 8 + capability.PortLen + HeaderLen + 4

	// Extension TLV types. A field is type (uint8), length (uint8),
	// value (length bytes).
	extTypeTraceID  = 0x01 // value: 8-byte big-endian trace ID
	extTypeDeadline = 0x02 // value: 8-byte big-endian remaining budget, nanoseconds

	// extMax bounds the extension this implementation emits: extlen plus
	// one trace-ID TLV and one deadline TLV.
	extMax = 2 + (2 + 8) + (2 + 8)

	// extScratchLen is how much inbound-extension scratch serveConn
	// appends to its prologue buffer; larger (future) extensions fall
	// back to a one-shot allocation.
	extScratchLen = 64
)

// prologuePool recycles the fixed-size prologue buffers of the vectored
// write path, so a steady request load allocates nothing per frame. The
// arrays carry extMax extra bytes so a traced (v2) frame's extension
// rides in the same buffer.
var prologuePool = sync.Pool{
	New: func() any { return new([prologueLen + extMax]byte) },
}

// payloadPool recycles server-side request payload buffers (see
// readFrameScratch). Only buffers up to pooledPayloadCap are pooled;
// oversized requests fall back to one-shot allocations rather than
// pinning megabytes in the pool.
var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

const pooledPayloadCap = 1 << 20

// encodePrologue fills dst (length prologueLen) with everything before
// the payload.
func encodePrologue(dst []byte, magic uint32, txid uint64, port capability.Port, h Header, paylen int) {
	binary.BigEndian.PutUint32(dst[0:4], magic)
	binary.BigEndian.PutUint64(dst[4:12], txid)
	copy(dst[12:12+capability.PortLen], port[:])
	h.Encode(dst[12+capability.PortLen : 12+capability.PortLen : prologueLen-4])
	binary.BigEndian.PutUint32(dst[prologueLen-4:], uint32(paylen))
}

// writeFrame sends one frame. On a net.Conn the prologue and payload go
// out as one vectored write (writev on TCP) — no per-frame buffer is
// assembled and the payload is never copied. Other writers (tests,
// in-memory pipes) get two plain writes.
func writeFrame(w io.Writer, magic uint32, txid uint64, port capability.Port, h Header, payload []byte) error {
	return writeFrameTraced(w, magic, txid, 0, port, h, payload)
}

// writeFrameTraced is writeFrame with an optional trace ID: traceID 0
// emits a plain v1 frame; otherwise a request's magic is upgraded to v2
// and a trace-ID TLV extension is inserted between prologue and payload.
// (Replies never carry the extension: the trace lives on the server.)
func writeFrameTraced(w io.Writer, magic uint32, txid, traceID uint64, port capability.Port, h Header, payload []byte) error {
	return writeFrameExt(w, magic, txid, traceID, 0, port, h, payload)
}

// writeFrameExt is the full sender: trace ID and deadline budget both
// optional (zero means absent). Either one upgrades a request frame to
// v2; replies never carry the extension.
func writeFrameExt(w io.Writer, magic uint32, txid, traceID uint64, budget time.Duration, port capability.Port, h Header, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%d bytes: %w", len(payload), ErrPayloadTooLarge)
	}
	pb := prologuePool.Get().(*[prologueLen + extMax]byte)
	defer prologuePool.Put(pb)
	n := prologueLen
	if (traceID != 0 || budget > 0) && magic == magicRequest {
		magic = magicRequestV2
		n += encodeExt(pb[prologueLen:], traceID, budget)
	}
	encodePrologue(pb[:prologueLen], magic, txid, port, h, len(payload))
	if conn, ok := w.(net.Conn); ok {
		bufs := net.Buffers{pb[:n], payload}
		_, err := bufs.WriteTo(conn)
		return err
	}
	if _, err := w.Write(pb[:n]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// encodeExt writes the extension block (extlen + the TLVs whose values
// are present) into dst and returns its length.
func encodeExt(dst []byte, traceID uint64, budget time.Duration) int {
	n := 2
	if traceID != 0 {
		dst[n] = extTypeTraceID
		dst[n+1] = 8
		binary.BigEndian.PutUint64(dst[n+2:n+10], traceID)
		n += 10
	}
	if budget > 0 {
		dst[n] = extTypeDeadline
		dst[n+1] = 8
		binary.BigEndian.PutUint64(dst[n+2:n+10], uint64(budget))
		n += 10
	}
	binary.BigEndian.PutUint16(dst[0:2], uint16(n-2))
	return n
}

// readFrame reads one frame, allocating a fresh payload the caller owns.
// A request frame may be v1 or v2; any extension fields are dropped.
func readFrame(r io.Reader, wantMagic uint32) (txid uint64, port capability.Port, h Header, payload []byte, err error) {
	var fixed [prologueLen + extScratchLen]byte
	txid, _, _, port, h, payload, _, err = readFrameScratch(r, wantMagic, fixed[:], false)
	return txid, port, h, payload, err
}

// readFrameScratch is the allocation-conscious core of readFrame: fixed
// (length >= prologueLen; bytes past that are inbound-extension scratch)
// is caller-provided, and with pooled true the payload buffer comes from
// payloadPool — release must then be called once the payload is dead (it
// is nil when there is nothing to return). Pooled payloads must not
// outlive their release; the server relies on the Handler contract for
// that.
//
// When wantMagic is magicRequest, v2 request frames are accepted too:
// their extension is parsed for a trace ID (traceID 0 = none carried)
// and a deadline budget (0 = none), and unknown extension fields are
// skipped.
func readFrameScratch(r io.Reader, wantMagic uint32, fixed []byte, pooled bool) (txid, traceID uint64, budget time.Duration, port capability.Port, h Header, payload []byte, release func(), err error) {
	pro := fixed[:prologueLen]
	if _, err = io.ReadFull(r, pro); err != nil {
		return 0, 0, 0, port, h, nil, nil, err
	}
	got := binary.BigEndian.Uint32(pro[0:4])
	v2 := wantMagic == magicRequest && got == magicRequestV2
	if got != wantMagic && !v2 {
		return 0, 0, 0, port, h, nil, nil, fmt.Errorf("magic %08x: %w", got, ErrBadFrame)
	}
	txid = binary.BigEndian.Uint64(pro[4:12])
	copy(port[:], pro[12:12+capability.PortLen])
	h, _, err = DecodeHeader(pro[12+capability.PortLen : 12+capability.PortLen+HeaderLen])
	if err != nil {
		return 0, 0, 0, port, h, nil, nil, err
	}
	paylen := binary.BigEndian.Uint32(pro[len(pro)-4:])
	if paylen > MaxPayload {
		return 0, 0, 0, port, h, nil, nil, fmt.Errorf("%d bytes: %w", paylen, ErrPayloadTooLarge)
	}
	if v2 {
		// pro is fully decoded by now, so its first bytes double as the
		// extlen scratch.
		traceID, budget, err = readExt(r, pro[0:2], fixed[prologueLen:])
		if err != nil {
			return 0, 0, 0, port, h, nil, nil, err
		}
	}
	if pooled && paylen <= pooledPayloadCap {
		bp := payloadPool.Get().(*[]byte)
		if cap(*bp) < int(paylen) {
			*bp = make([]byte, paylen)
		}
		payload = (*bp)[:paylen]
		release = func() { payloadPool.Put(bp) }
	} else {
		payload = make([]byte, paylen)
	}
	if _, err = io.ReadFull(r, payload); err != nil {
		if release != nil {
			release()
		}
		return 0, 0, 0, port, h, nil, nil, err
	}
	return txid, traceID, budget, port, h, payload, release, nil
}

// readExt consumes a v2 prologue extension: extlen, then TLV fields.
// Known fields are extracted, unknown types (and known types with an
// unexpected length) are skipped — senders may add fields without
// breaking this receiver. Truncated TLVs are a framing error.
func readExt(r io.Reader, two, scratch []byte) (traceID uint64, budget time.Duration, err error) {
	if _, err = io.ReadFull(r, two[:2]); err != nil {
		return 0, 0, err
	}
	extlen := int(binary.BigEndian.Uint16(two[:2]))
	if extlen == 0 {
		return 0, 0, nil
	}
	ext := scratch
	if extlen > len(ext) {
		ext = make([]byte, extlen)
	}
	ext = ext[:extlen]
	if _, err = io.ReadFull(r, ext); err != nil {
		return 0, 0, err
	}
	for i := 0; i < len(ext); {
		if i+2 > len(ext) {
			return 0, 0, fmt.Errorf("extension tlv truncated: %w", ErrBadFrame)
		}
		typ, l := ext[i], int(ext[i+1])
		i += 2
		if i+l > len(ext) {
			return 0, 0, fmt.Errorf("extension tlv overruns: %w", ErrBadFrame)
		}
		switch {
		case typ == extTypeTraceID && l == 8:
			traceID = binary.BigEndian.Uint64(ext[i : i+8])
		case typ == extTypeDeadline && l == 8:
			budget = time.Duration(binary.BigEndian.Uint64(ext[i : i+8]))
		}
		i += l
	}
	return traceID, budget, nil
}

// TCPServer serves a Mux over a TCP listener, one goroutine per
// connection, requests on a connection processed in order.
type TCPServer struct {
	mux *Mux

	mu     sync.Mutex
	lis    net.Listener          // guarded by mu
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
	wg     sync.WaitGroup
}

// NewTCPServer wraps mux for serving.
func NewTCPServer(mux *Mux) *TCPServer {
	return &TCPServer{mux: mux, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr ("host:port", ":0" for ephemeral) and
// returns the bound address. Serving happens on background goroutines
// until Close.
func (s *TCPServer) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(lis)
	return lis.Addr().String(), nil
}

func (s *TCPServer) acceptLoop(lis net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	// fixed holds the prologue plus scratch for the v2 extension, so a
	// traced request costs no more allocation than an untraced one.
	var fixed [prologueLen + extScratchLen]byte
	// The connection owns one pre-allocated span arena for its lifetime;
	// each request re-arms it. With no recorder attached, tc is nil and
	// the trace calls below are no-ops.
	rec := s.mux.Recorder()
	tc := rec.AcquireCtx()
	defer rec.ReleaseCtx(tc)
	// spare carries deadline budgets when no recorder (and hence no
	// pooled Ctx) is attached: budgets ride on the trace Ctx, so a
	// budgeted request always needs one. Allocated once per connection,
	// on demand.
	var spare *trace.Ctx
	for {
		// Request payloads come from a pool: Dispatch (and the Handlers
		// under it) must not retain them, so the buffer is recycled as
		// soon as the reply is built. Reply payloads are never pooled —
		// the duplicate-suppression cache retains them.
		txid, traceID, budget, port, req, payload, release, err := readFrameScratch(br, magicRequest, fixed[:], true)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		cur := tc
		if cur == nil && budget > 0 {
			if spare == nil {
				spare = new(trace.Ctx)
			}
			cur = spare
		}
		if cur != nil {
			if traceID == 0 && tc != nil {
				traceID = rec.NextLocalID()
			}
			cur.Reset(traceID)
			if budget > 0 {
				cur.ArmDeadline(budget, s.mux.nowNanos)
			}
		}
		// Reply frames are written from inside the dispatch: the sink hands
		// each frame's payload to a vectored socket write (header and
		// payload in one writev, no intermediate copy), and a payload
		// backed by a pinned cache view is released by the dispatch layer
		// right after its write returns — the pin is held exactly over the
		// write, never longer.
		err = s.mux.DispatchStream(cur, port, txid, req, payload, func(h Header, data []byte, last bool) error {
			magic := uint32(magicReplyMore)
			if last {
				magic = magicReply
			}
			return writeFrame(conn, magic, txid, port, h, data)
		})
		cur.Finish()
		if release != nil {
			release()
		}
		if err != nil {
			// A dispatch error before any frame went out still gets a
			// reply; a mid-stream write error means the connection is gone
			// and the write below fails too, dropping it.
			repHdr := ReplyErr(StatusInternal)
			if errors.Is(err, ErrNoServer) {
				repHdr = ReplyErr(StatusNoSuchObject)
			}
			if werr := writeFrame(conn, magicReply, txid, port, repHdr, nil); werr != nil {
				return
			}
		}
	}
}

// Close stops the listener and all connections, waiting for handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// Resolver maps a server port to a TCP address — the static equivalent of
// Amoeba's port-location broadcast.
type Resolver func(port capability.Port) (addr string, err error)

// StaticResolver builds a Resolver from a fixed port->address table.
func StaticResolver(table map[capability.Port]string) Resolver {
	return func(p capability.Port) (string, error) {
		addr, ok := table[p]
		if !ok {
			return "", fmt.Errorf("port %x: %w", p[:], ErrNoServer)
		}
		return addr, nil
	}
}

// TCPTransport is a client-side Transport over TCP with one pooled
// connection per server address. Transactions on one connection are
// serialized (the Bullet protocol is strictly request/reply).
type TCPTransport struct {
	resolve Resolver
	timeout time.Duration

	mu        sync.Mutex
	conns     map[string]*tcpConn // guarded by mu
	timeouts  *stats.Counter      // guarded by mu (pointer swap only; see AttachMetrics)
	transErrs *stats.Counter      // guarded by mu (pointer swap only; see AttachMetrics)
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn      // safe for concurrent use; mu orders whole transactions
	br   *bufio.Reader // guarded by mu
}

var (
	_ Transport                 = (*TCPTransport)(nil)
	_ TracedTransport           = (*TCPTransport)(nil)
	_ identifiedTracedTransport = (*TCPTransport)(nil)
	_ StreamTransport           = (*TCPTransport)(nil)
	_ OptsTransport             = (*TCPTransport)(nil)
)

// NewTCPTransport builds a client transport. timeout bounds each
// transaction (0 means no deadline).
func NewTCPTransport(resolve Resolver, timeout time.Duration) *TCPTransport {
	return &TCPTransport{resolve: resolve, timeout: timeout, conns: make(map[string]*tcpConn)}
}

func (t *TCPTransport) getConn(addr string) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[addr]; ok {
		return c, nil
	}
	conn, err := net.DialTimeout("tcp", addr, t.timeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &tcpConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
	}
	t.conns[addr] = c
	return c, nil
}

func (t *TCPTransport) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	c.conn.Close()
}

// Trans implements Transport.
func (t *TCPTransport) Trans(port capability.Port, req Header, payload []byte) (Header, []byte, error) {
	return t.TransID(port, 0, req, payload)
}

// TransTraced implements TracedTransport: the trace ID rides in the v2
// prologue extension.
func (t *TCPTransport) TransTraced(port capability.Port, traceID uint64, req Header, payload []byte) (Header, []byte, error) {
	return t.TransIDTraced(port, 0, traceID, req, payload)
}

// TransID is Trans with an explicit transaction ID for at-most-once
// semantics across retries (see Retrier).
func (t *TCPTransport) TransID(port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	return t.TransIDTraced(port, txid, 0, req, payload)
}

// TransIDTraced carries both the at-most-once transaction ID and the
// trace ID (0 for either means "none"). traceID 0 emits a v1 frame, so
// untraced clients stay wire-compatible with pre-extension servers.
func (t *TCPTransport) TransIDTraced(port capability.Port, txid, traceID uint64, req Header, payload []byte) (Header, []byte, error) {
	return t.TransOpts(port, CallOpts{TxID: txid, TraceID: traceID}, req, payload)
}

// TransOpts implements OptsTransport: the full per-call option set —
// at-most-once txid, trace ID, and deadline budget. Any non-zero
// extension field upgrades the request frame to v2.
func (t *TCPTransport) TransOpts(port capability.Port, opts CallOpts, req Header, payload []byte) (Header, []byte, error) {
	addr, err := t.resolve(port)
	if err != nil {
		return Header{}, nil, err
	}
	c, err := t.getConn(addr)
	if err != nil {
		t.noteTransportErr(err)
		return Header{}, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(t.timeout)); err != nil {
			t.dropConn(addr, c)
			t.noteTransportErr(err)
			return Header{}, nil, fmt.Errorf("rpc: set deadline: %w", err)
		}
	}
	// One vectored write per request (see writeFrame): nothing to flush.
	if err := writeFrameExt(c.conn, magicRequest, opts.TxID, opts.TraceID, opts.Budget, port, req, payload); err != nil {
		t.dropConn(addr, c)
		t.noteTransportErr(err)
		return Header{}, nil, fmt.Errorf("rpc: send: %w", err)
	}
	_, _, repHdr, repPayload, err := readFrame(c.br, magicReply)
	if err != nil {
		t.dropConn(addr, c)
		t.noteTransportErr(err)
		return Header{}, nil, fmt.Errorf("rpc: receive: %w", err)
	}
	return repHdr, repPayload, nil
}

// readStreamFrame reads one reply frame of a streamed transaction,
// accepting both the non-final (AMRS) and final (AMRP) reply magics;
// last reports which one arrived.
func readStreamFrame(r io.Reader) (txid uint64, h Header, payload []byte, last bool, err error) {
	var fixed [prologueLen]byte
	if _, err = io.ReadFull(r, fixed[:]); err != nil {
		return 0, h, nil, false, err
	}
	switch binary.BigEndian.Uint32(fixed[0:4]) {
	case magicReply:
		last = true
	case magicReplyMore:
	default:
		return 0, h, nil, false, fmt.Errorf("magic %08x: %w", binary.BigEndian.Uint32(fixed[0:4]), ErrBadFrame)
	}
	txid = binary.BigEndian.Uint64(fixed[4:12])
	h, _, err = DecodeHeader(fixed[12+capability.PortLen : 12+capability.PortLen+HeaderLen])
	if err != nil {
		return 0, h, nil, false, err
	}
	paylen := binary.BigEndian.Uint32(fixed[prologueLen-4:])
	if paylen > MaxPayload {
		return 0, h, nil, false, fmt.Errorf("%d bytes: %w", paylen, ErrPayloadTooLarge)
	}
	payload = make([]byte, paylen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, h, nil, false, err
	}
	return txid, h, payload, last, nil
}

// TransStream implements StreamTransport: the request goes out once and
// each reply frame is handed to sink as it arrives off the wire, ending
// with the final frame (whose header is returned). The per-transaction
// deadline covers the whole stream. A sink error abandons the stream and
// drops the connection — frames still in flight die with it.
func (t *TCPTransport) TransStream(port capability.Port, req Header, payload []byte, sink FrameSink) (Header, error) {
	addr, err := t.resolve(port)
	if err != nil {
		return Header{}, err
	}
	c, err := t.getConn(addr)
	if err != nil {
		t.noteTransportErr(err)
		return Header{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(t.timeout)); err != nil {
			t.dropConn(addr, c)
			t.noteTransportErr(err)
			return Header{}, fmt.Errorf("rpc: set deadline: %w", err)
		}
	}
	if err := writeFrame(c.conn, magicRequest, 0, port, req, payload); err != nil {
		t.dropConn(addr, c)
		t.noteTransportErr(err)
		return Header{}, fmt.Errorf("rpc: send: %w", err)
	}
	for {
		_, h, data, last, err := readStreamFrame(c.br)
		if err != nil {
			t.dropConn(addr, c)
			t.noteTransportErr(err)
			return Header{}, fmt.Errorf("rpc: receive: %w", err)
		}
		if err := sink(h, data, last); err != nil {
			t.dropConn(addr, c)
			return h, err
		}
		if last {
			return h, nil
		}
	}
}

// Close drops all pooled connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for addr, c := range t.conns {
		c.conn.Close()
		delete(t.conns, addr)
	}
	return nil
}
