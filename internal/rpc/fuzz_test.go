package rpc

import (
	"bytes"
	"encoding/binary"
	"testing"

	"bulletfs/internal/capability"
)

// FuzzDecodeHeader hardens the transaction header decoder: arbitrary
// bytes arrive from the network before any validation.
func FuzzDecodeHeader(f *testing.F) {
	valid := Header{
		Cap:     capability.Owner(capability.PortFromString("f"), 7, capability.Random{1}),
		Command: 3, Status: StatusOK, Arg: 9, Arg2: 10,
	}.Encode(nil)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, HeaderLen))
	f.Add(bytes.Repeat([]byte{0x00}, HeaderLen+5))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, rest, err := DecodeHeader(data)
		if err != nil {
			return
		}
		if len(rest) != len(data)-HeaderLen {
			t.Fatalf("rest = %d bytes of %d", len(rest), len(data))
		}
		// Decoded headers re-encode to the same prefix.
		out := h.Encode(nil)
		if !bytes.Equal(out, data[:HeaderLen]) {
			t.Fatalf("round trip changed bytes")
		}
	})
}

// FuzzReadFrame hardens the TCP frame reader against arbitrary streams,
// including v2 frames whose prologue extension may hold arbitrary TLVs.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	_ = writeFrame(&good, magicRequest, 1, capability.Port{1}, Header{Command: 2}, []byte("payload"))
	f.Add(good.Bytes())
	var traced bytes.Buffer
	_ = writeFrameTraced(&traced, magicRequest, 1, 0xfeed, capability.Port{1}, Header{Command: 2}, []byte("payload"))
	f.Add(traced.Bytes())
	f.Add([]byte("garbage stream"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fixed [prologueLen + extScratchLen]byte
		txid, traceID, _, port, h, payload, _, err := readFrameScratch(bytes.NewReader(data), magicRequest, fixed[:], false)
		if err != nil {
			return
		}
		// A frame that parses must survive a semantic round trip. Byte
		// equality only holds for v1 frames and v2 frames whose extension
		// is exactly the fields this implementation emits, so re-read the
		// re-encoding instead of comparing raw bytes.
		var out bytes.Buffer
		if err := writeFrameTraced(&out, magicRequest, txid, traceID, port, h, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		txid2, traceID2, _, port2, h2, payload2, _, err := readFrameScratch(bytes.NewReader(out.Bytes()), magicRequest, fixed[:], false)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if txid2 != txid || traceID2 != traceID || port2 != port || h2 != h || !bytes.Equal(payload2, payload) {
			t.Fatal("round trip changed frame fields")
		}
		if binary.BigEndian.Uint32(data[0:4]) == magicRequest {
			// v1 frames still round-trip byte-for-byte.
			if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
				t.Fatal("v1 round trip changed frame bytes")
			}
		}
	})
}
