package rpc

import (
	"bytes"
	"testing"

	"bulletfs/internal/capability"
)

// FuzzDecodeHeader hardens the transaction header decoder: arbitrary
// bytes arrive from the network before any validation.
func FuzzDecodeHeader(f *testing.F) {
	valid := Header{
		Cap:     capability.Owner(capability.PortFromString("f"), 7, capability.Random{1}),
		Command: 3, Status: StatusOK, Arg: 9, Arg2: 10,
	}.Encode(nil)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, HeaderLen))
	f.Add(bytes.Repeat([]byte{0x00}, HeaderLen+5))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, rest, err := DecodeHeader(data)
		if err != nil {
			return
		}
		if len(rest) != len(data)-HeaderLen {
			t.Fatalf("rest = %d bytes of %d", len(rest), len(data))
		}
		// Decoded headers re-encode to the same prefix.
		out := h.Encode(nil)
		if !bytes.Equal(out, data[:HeaderLen]) {
			t.Fatalf("round trip changed bytes")
		}
	})
}

// FuzzReadFrame hardens the TCP frame reader against arbitrary streams.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	_ = writeFrame(&good, magicRequest, 1, capability.Port{1}, Header{Command: 2}, []byte("payload"))
	f.Add(good.Bytes())
	f.Add([]byte("garbage stream"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		txid, port, h, payload, err := readFrame(bytes.NewReader(data), magicRequest)
		if err != nil {
			return
		}
		// A frame that parses must re-serialize into an equal prefix.
		var out bytes.Buffer
		if err := writeFrame(&out, magicRequest, txid, port, h, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("round trip changed frame bytes")
		}
	})
}
