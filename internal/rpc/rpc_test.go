package rpc

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"bulletfs/internal/capability"
)

func echoHandler(req Header, payload []byte) (Header, []byte) {
	rep := req
	rep.Status = StatusOK
	out := make([]byte, len(payload))
	copy(out, payload)
	return rep, out
}

func TestHeaderEncodeDecodeRoundTrip(t *testing.T) {
	r, err := capability.NewRandom()
	if err != nil {
		t.Fatalf("NewRandom: %v", err)
	}
	in := Header{
		Cap:     capability.Owner(capability.PortFromString("t"), 99, r),
		Command: 7,
		Status:  StatusBadRights,
		Arg:     1 << 40,
		Arg2:    42,
	}
	buf := in.Encode(nil)
	if len(buf) != HeaderLen {
		t.Fatalf("encoded length = %d, want %d", len(buf), HeaderLen)
	}
	out, rest, err := DecodeHeader(buf)
	if err != nil {
		t.Fatalf("DecodeHeader: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDecodeHeaderShort(t *testing.T) {
	if _, _, err := DecodeHeader(make([]byte, HeaderLen-1)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(port [6]byte, object uint32, rights, cmd uint8, status int16, arg, arg2 uint64, check [6]byte) bool {
		in := Header{
			Cap: capability.Capability{
				Port:   capability.Port(port),
				Object: object & capability.MaxObject,
				Rights: capability.Rights(rights),
				Check:  capability.Check(check),
			},
			Command: uint32(cmd),
			Status:  Status(status),
			Arg:     arg,
			Arg2:    arg2,
		}
		out, _, err := DecodeHeader(in.Encode(nil))
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusOK.String() != "ok" {
		t.Fatalf("StatusOK = %q", StatusOK.String())
	}
	if Status(999).String() != "status(999)" {
		t.Fatalf("unknown status = %q", Status(999).String())
	}
}

func TestErrorIsMatchesByStatus(t *testing.T) {
	a := Errf(StatusNoSpace, "disk %d", 1)
	b := Errf(StatusNoSpace, "other")
	c := Errf(StatusTooLarge, "x")
	if !errors.Is(a, b) {
		t.Fatal("same-status errors do not match")
	}
	if errors.Is(a, c) {
		t.Fatal("different-status errors match")
	}
	if a.Error() == "" || (&Error{Status: StatusOK}).Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestLocalTransport(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("echo")
	mux.Register(port, echoHandler)
	tr := NewLocal(mux)

	payload := []byte("ping")
	rep, got, err := tr.Trans(port, Header{Command: 3}, payload)
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if rep.Status != StatusOK || rep.Command != 3 {
		t.Fatalf("reply header = %+v", rep)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}

	if _, _, err := tr.Trans(capability.PortFromString("nobody"), Header{}, nil); !errors.Is(err, ErrNoServer) {
		t.Fatalf("unknown port err = %v, want ErrNoServer", err)
	}
}

func TestMuxRegisterUnregister(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("svc")
	mux.Register(port, echoHandler)
	if len(mux.Ports()) != 1 {
		t.Fatalf("ports = %v", mux.Ports())
	}
	mux.Unregister(port)
	if _, _, err := mux.Dispatch(port, 0, Header{}, nil); !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v, want ErrNoServer", err)
	}
}

func TestMuxDuplicateSuppression(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("count")
	var calls atomic.Int64
	mux.Register(port, func(req Header, payload []byte) (Header, []byte) {
		calls.Add(1)
		return ReplyOK(), []byte{byte(calls.Load())}
	})

	h1, p1, err := mux.Dispatch(port, 77, Header{}, nil)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	h2, p2, err := mux.Dispatch(port, 77, Header{}, nil) // duplicate
	if err != nil {
		t.Fatalf("Dispatch dup: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", calls.Load())
	}
	if h1 != h2 || !bytes.Equal(p1, p2) {
		t.Fatal("duplicate reply differs from original")
	}

	// txid 0 is never deduplicated.
	mux.Dispatch(port, 0, Header{}, nil) //nolint:errcheck
	mux.Dispatch(port, 0, Header{}, nil) //nolint:errcheck
	if calls.Load() != 3 {
		t.Fatalf("handler ran %d times, want 3", calls.Load())
	}
}

func TestMuxDedupEviction(t *testing.T) {
	mux := NewMux(4)
	port := capability.PortFromString("e")
	var calls atomic.Int64
	mux.Register(port, func(Header, []byte) (Header, []byte) {
		calls.Add(1)
		return ReplyOK(), nil
	})
	for id := uint64(1); id <= 6; id++ {
		if _, _, err := mux.Dispatch(port, id, Header{}, nil); err != nil {
			t.Fatalf("Dispatch: %v", err)
		}
	}
	if mux.DedupLen() != 4 {
		t.Fatalf("dedup cache = %d entries, want 4", mux.DedupLen())
	}
	// txid 1 was evicted: replaying it re-executes (at-most-once is
	// bounded by cache size, like any real dedup window).
	if _, _, err := mux.Dispatch(port, 1, Header{}, nil); err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if calls.Load() != 7 {
		t.Fatalf("handler ran %d times, want 7", calls.Load())
	}
}

func TestTCPEndToEnd(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("tcp-echo")
	mux.Register(port, echoHandler)
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 5*time.Second)
	defer tr.Close()

	payload := bytes.Repeat([]byte{0xAB}, 100_000)
	rep, got, err := tr.Trans(port, Header{Command: 9, Arg: 1}, payload)
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if rep.Status != StatusOK || rep.Command != 9 || rep.Arg != 1 {
		t.Fatalf("reply header = %+v", rep)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted over TCP")
	}

	// Sequential transactions on the pooled connection.
	for i := 0; i < 10; i++ {
		if _, _, err := tr.Trans(port, Header{Command: uint32(i)}, []byte{byte(i)}); err != nil {
			t.Fatalf("Trans %d: %v", i, err)
		}
	}
}

func TestTCPUnknownPort(t *testing.T) {
	mux := NewMux(0)
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	port := capability.PortFromString("ghost")
	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 2*time.Second)
	defer tr.Close()
	rep, _, err := tr.Trans(port, Header{}, nil)
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if rep.Status != StatusNoSuchObject {
		t.Fatalf("status = %v, want StatusNoSuchObject", rep.Status)
	}
}

func TestTCPResolverFailure(t *testing.T) {
	tr := NewTCPTransport(StaticResolver(nil), time.Second)
	defer tr.Close()
	if _, _, err := tr.Trans(capability.PortFromString("x"), Header{}, nil); !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v, want ErrNoServer", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("conc")
	mux.Register(port, echoHandler)
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	const clients = 8
	done := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(id int) {
			tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 5*time.Second)
			defer tr.Close()
			for i := 0; i < 50; i++ {
				payload := bytes.Repeat([]byte{byte(id)}, id*100+1)
				_, got, err := tr.Trans(port, Header{Command: uint32(id)}, payload)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, payload) {
					done <- errors.New("payload corrupted")
					return
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPayloadLimit(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, magicRequest, 1, capability.Port{}, Header{}, make([]byte, MaxPayload+1))
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestRetrierRecoversFromRequestLoss(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("retry")
	var calls atomic.Int64
	mux.Register(port, func(Header, []byte) (Header, []byte) {
		calls.Add(1)
		return ReplyOK(), []byte("done")
	})
	flaky := NewFlaky(&LocalID{Mux: mux}, 0, 0, 1)
	flaky.ScriptDrops([]bool{true, false}, nil) // first request lost
	tr := NewRetrier(flaky, 3)

	rep, payload, err := tr.Trans(port, Header{}, nil)
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if rep.Status != StatusOK || string(payload) != "done" {
		t.Fatalf("reply = %+v %q", rep, payload)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", calls.Load())
	}
}

func TestRetrierAtMostOnceOnReplyLoss(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("amo")
	var calls atomic.Int64
	mux.Register(port, func(Header, []byte) (Header, []byte) {
		n := calls.Add(1)
		return ReplyOK(), []byte{byte(n)}
	})
	flaky := NewFlaky(&LocalID{Mux: mux}, 0, 0, 1)
	// First attempt: server executes but the reply is lost. Retry must
	// return the CACHED first reply, not run the handler again.
	flaky.ScriptDrops([]bool{false, false}, []bool{true, false})
	tr := NewRetrier(flaky, 3)

	_, payload, err := tr.Trans(port, Header{}, nil)
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler executed %d times, want exactly 1 (at-most-once)", calls.Load())
	}
	if len(payload) != 1 || payload[0] != 1 {
		t.Fatalf("payload = %v, want the first reply", payload)
	}
}

func TestRetrierGivesUp(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("dead")
	mux.Register(port, echoHandler)
	flaky := NewFlaky(&LocalID{Mux: mux}, 1.0, 0, 1) // all requests lost
	tr := NewRetrier(flaky, 3)
	if _, _, err := tr.Trans(port, Header{}, nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if flaky.Requests != 3 {
		t.Fatalf("attempts = %d, want 3", flaky.Requests)
	}
}

func TestRetrierNoServerShortCircuits(t *testing.T) {
	mux := NewMux(0)
	flaky := NewFlaky(&LocalID{Mux: mux}, 0, 0, 1)
	tr := NewRetrier(flaky, 5)
	if _, _, err := tr.Trans(capability.PortFromString("x"), Header{}, nil); !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v", err)
	}
	if flaky.Requests != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on unknown port)", flaky.Requests)
	}
}

func TestNewTxIDNonZeroAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id, err := NewTxID()
		if err != nil {
			t.Fatalf("NewTxID: %v", err)
		}
		if id == 0 {
			t.Fatal("zero txid")
		}
		if seen[id] {
			t.Fatal("duplicate txid in 100 draws")
		}
		seen[id] = true
	}
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("closing")
	block := make(chan struct{})
	mux.Register(port, func(Header, []byte) (Header, []byte) {
		<-block
		return ReplyOK(), nil
	})
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 500*time.Millisecond)
	defer tr.Close()

	errc := make(chan error, 1)
	go func() {
		_, _, err := tr.Trans(port, Header{}, nil)
		errc <- err
	}()
	// The client must time out rather than hang forever.
	if err := <-errc; err == nil {
		t.Fatal("blocked transaction returned nil error")
	}
	close(block)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
