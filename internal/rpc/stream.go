package rpc

import (
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// This file adds reply-payload ownership and multi-frame streaming to the
// dispatch path. The classic Handler contract forces every reply payload
// to be owned by the reply (the duplicate-suppression cache retains it),
// which costs a full copy on the read hot path: the engine copies the file
// out of its pinned cache view before handing it to the RPC layer. A
// stream handler instead emits frames whose payloads may be *borrowed* —
// backed by a resource (a pinned cache view lease) that the RPC layer
// releases only after the frame's bytes have been written to the socket.
// The dedup cache copies on retain instead, bounded by a byte budget.

// Releaser is a resource backing a borrowed reply payload — typically a
// pinned cache-view lease whose bytes the payload aliases. Release must
// be safe to call exactly once per hand-off and idempotent implementations
// are encouraged.
type Releaser interface {
	Release()
}

// Payload is one reply frame's bytes plus optional ownership. When Owner
// is non-nil the bytes are borrowed from it: the RPC layer releases Owner
// after the frame has been written (or the write abandoned), never before
// — this is how a zero-copy reply keeps its cache pin alive exactly until
// the payload has left for the kernel. When Owner is nil the bytes follow
// the classic Handler contract (owned by the reply, retainable as-is).
type Payload struct {
	Data  []byte
	Owner Releaser
}

// Plain wraps reply bytes with no backing resource attached.
func Plain(data []byte) Payload { return Payload{Data: data} }

// Owned hands data plus the resource backing it to the RPC layer. The
// caller must not touch data (or owner) after the emit call it passes the
// payload to returns: the resource is released inside the emitter.
func Owned(data []byte, owner Releaser) Payload { return Payload{Data: data, Owner: owner} }

// release returns the backing resource, if any.
func (p Payload) release() {
	if p.Owner != nil {
		p.Owner.Release()
	}
}

// Emitter writes one reply frame of a streamed transaction. last marks
// the final frame; single-frame commands emit exactly once with last
// true. The emitter assumes ownership of p's backing resource whether or
// not it returns an error, so handlers never release a payload they have
// emitted. A non-nil error means the client connection is gone: the
// handler should stop emitting and return.
type Emitter func(h Header, p Payload, last bool) error

// StreamHandler serves one transaction by emitting one or more reply
// frames. The request payload contract matches Handler: it is pooled and
// must not be retained past the call. Errors are reported in-band, as a
// single emitted frame whose header carries the status.
type StreamHandler func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte, emit Emitter)

// RegisterStream installs sh as the server for port. Stream handlers
// receive every dispatch — single-frame transports see their frames
// assembled into one reply — and may emit borrowed (Owned) payloads that
// the dispatch layer releases after writing.
func (m *Mux) RegisterStream(port capability.Port, sh StreamHandler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[port] = muxEntry{stream: sh}
}

// FrameSink receives one reply frame of a streamed dispatch. The data
// slice is only valid during the call (it may alias a pinned cache slot
// that is unpinned right after): the sink must write or copy it before
// returning. The TCP server's sink hands it to a vectored socket write,
// so the bytes travel cache -> kernel with no intermediate copy.
type FrameSink func(h Header, data []byte, last bool) error

// DispatchStream executes one transaction, delivering the reply as one or
// more frames through sink. Ports registered with plain or traced
// handlers produce exactly one frame. Duplicate transactions replay the
// cached single-frame reply; multi-frame replies are never cached (the
// only multi-frame command, READSTREAM, is idempotent). The returned
// error is transport-level: ErrNoServer for an unserved port, or the
// sink's own error propagated back.
func (m *Mux) DispatchStream(tc *trace.Ctx, port capability.Port, txid uint64, req Header, payload []byte, sink FrameSink) error {
	m.mu.Lock()
	e, ok := m.handlers[port]
	mm := m.metrics
	if !ok {
		m.mu.Unlock()
		return ErrNoServer
	}
	if txid != 0 {
		if cached, dup := m.dedup[txid]; dup {
			m.mu.Unlock()
			m.replayStats(mm, tc, req, cached)
			return sink(cached.hdr, cached.payload, true)
		}
	}
	m.mu.Unlock()

	if e.stream == nil {
		// Classic handler: DispatchTrace does metrics, tracing and dedup
		// retention; the single reply becomes the only frame.
		h, p, err := m.DispatchTrace(tc, port, txid, req, payload)
		if err != nil {
			return err
		}
		return sink(h, p, true)
	}

	root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
	if root != nil {
		root.Cmd = req.Command
		root.Bytes = int64(len(payload))
	}
	start := time.Now()
	st := streamState{m: m, sink: sink, txid: txid}
	e.stream(tc, root, req, payload, st.emit)
	if st.frames == 0 && st.werr == nil {
		// A handler that emitted nothing is a bug; keep the wire sane.
		st.werr = st.emit(ReplyErr(StatusInternal), Payload{}, true)
	}
	if mm != nil {
		mm.record(req.Command, len(payload), st.bytes, st.hdr.Status, time.Since(start), tc.TraceID())
	}
	if root != nil {
		root.Status = int32(st.hdr.Status)
	}
	tc.End(root)

	if txid != 0 && st.retained != nil && st.frames == 1 {
		m.mu.Lock()
		m.retainLocked(txid, st.hdr, st.retained)
		m.mu.Unlock()
	}
	return st.werr
}

// streamState carries one streamed dispatch's bookkeeping across emits.
type streamState struct {
	m    *Mux
	sink FrameSink
	txid uint64

	frames   int
	bytes    int // payload bytes across all frames
	hdr      Header
	retained []byte // copy-on-retain candidate for the dedup cache
	werr     error  // first sink error; later emits are dropped
}

// emit is the Emitter handed to stream handlers: it books the frame,
// copies a retainable single-frame reply for the dedup cache, writes the
// frame through the sink, and releases the payload's backing resource
// after the write — the pin is held exactly over the write.
func (st *streamState) emit(h Header, p Payload, last bool) error {
	m := st.m
	if p.Owner != nil {
		m.pinsHeld.Add(1)
		m.ownedReplies.Add(1)
		defer func() {
			p.Owner.Release()
			m.pinsHeld.Add(-1)
		}()
	}
	if st.werr != nil {
		return st.werr
	}
	if st.frames == 0 {
		st.hdr = h
		// Copy-on-retain: a single-frame reply on a dedup-tracked
		// transaction is remembered for replay, but the payload may be
		// borrowed (dead after release), so the cache takes its own copy
		// — bounded by the byte budget, oversized replies just re-execute.
		if st.txid != 0 && last && int64(len(p.Data)) <= m.maxDedupBytes {
			if p.Owner == nil {
				st.retained = p.Data // already reply-owned per the Handler contract
				if st.retained == nil {
					st.retained = []byte{}
				}
			} else {
				st.retained = append([]byte{}, p.Data...)
				m.dedupCopied.Add(int64(len(p.Data)))
			}
		}
	}
	st.frames++
	st.bytes += len(p.Data)
	m.bytesOut.Add(int64(len(p.Data)))
	st.werr = st.sink(h, p.Data, last)
	return st.werr
}

// replayStats books a duplicate-transaction replay: counter, root span,
// outbound bytes.
func (m *Mux) replayStats(mm *muxMetrics, tc *trace.Ctx, req Header, cached cachedReply) {
	if mm != nil {
		mm.reg.Counter("rpc.dup_replays").Inc()
	}
	root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
	if root != nil {
		root.Cmd = req.Command
		root.Status = int32(cached.hdr.Status)
	}
	tc.End(root)
	m.bytesOut.Add(int64(len(cached.payload)))
}

// StreamTransport is a Transport that can deliver a transaction whose
// reply arrives as multiple frames, handing each to sink in order. The
// final frame's header is returned. Transports that cannot stream simply
// don't implement this; callers fall back to Trans and receive the frames
// assembled into one payload.
type StreamTransport interface {
	Transport
	TransStream(port capability.Port, req Header, payload []byte, sink FrameSink) (Header, error)
}
