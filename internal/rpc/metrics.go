package rpc

import (
	"errors"
	"net"
	"os"
	"strconv"
	"time"

	"bulletfs/internal/stats"
)

// This file instruments the RPC layer with the stats package: the Mux
// records per-operation request counts, payload sizes and service-time
// histograms; the Retrier counts retries; the TCP transport counts
// timeouts and other transport failures. All attachment is optional —
// an uninstrumented Mux or transport pays a single nil check per call.

// muxMetrics is the per-Mux instrumentation state.
type muxMetrics struct {
	reg    *stats.Registry
	nameOf func(uint32) string
}

// opName renders a command code for metric names: the attached naming
// function's answer if it gives one, else "cmd<N>".
func (mm *muxMetrics) opName(cmd uint32) string {
	if mm.nameOf != nil {
		if n := mm.nameOf(cmd); n != "" {
			return n
		}
	}
	return "cmd" + strconv.FormatUint(uint64(cmd), 10)
}

// record books one dispatched transaction under rpc.<op>.*. traceID (0
// for untraced requests) feeds the latency histogram's per-bucket
// exemplars, so a tail-latency bucket names a trace the flight recorder
// can expand.
func (mm *muxMetrics) record(cmd uint32, reqBytes, repBytes int, st Status, elapsed time.Duration, traceID uint64) {
	op := mm.opName(cmd)
	mm.reg.Counter("rpc." + op + ".requests").Inc()
	if st != StatusOK {
		mm.reg.Counter("rpc." + op + ".errors").Inc()
	}
	// Exemplar threshold 0: every traced observation is eligible, so the
	// slowest recent trace per bucket is always on record.
	mm.reg.HistogramExemplars("rpc."+op+".latency_ns", stats.DefaultLatencyBounds, 0).
		ObserveTraced(int64(elapsed), traceID)
	mm.reg.Histogram("rpc."+op+".req_bytes", stats.DefaultSizeBounds).Observe(int64(reqBytes))
	mm.reg.Histogram("rpc."+op+".rep_bytes", stats.DefaultSizeBounds).Observe(int64(repBytes))
}

// AttachMetrics instruments every subsequent Dispatch with per-operation
// counters and histograms in reg. nameOf maps command codes to metric
// name segments (nil or "" answers fall back to "cmd<N>"); services own
// their command spaces, so the owner of the mux supplies the mapping
// (e.g. bulletsvc.CommandName).
func (m *Mux) AttachMetrics(reg *stats.Registry, nameOf func(uint32) string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.metrics = &muxMetrics{reg: reg, nameOf: nameOf}
	// Dispatch-path gauges: outbound reply bytes, the zero-copy reply
	// path (borrowed payloads and the pins held over socket writes), and
	// the byte-budgeted duplicate-suppression cache.
	reg.GaugeFunc("rpc.bytes_out", m.BytesOut)
	reg.GaugeFunc("rpc.reply_pins_held", m.PinsHeld)
	reg.GaugeFunc("rpc.owned_replies", m.OwnedReplies)
	reg.GaugeFunc("rpc.dedup_bytes", m.DedupBytes)
	reg.GaugeFunc("rpc.dedup_copied_bytes", m.DedupCopiedBytes)
	reg.GaugeFunc("rpc.dedup_evictions", m.DedupEvictions)
}

// AttachMetrics adds a retry counter ("rpc.retries") to the registry;
// each attempt beyond a transaction's first increments it.
func (r *Retrier) AttachMetrics(reg *stats.Registry) {
	r.retries = reg.Counter("rpc.retries")
}

// AttachMetrics adds transport-failure counters to the registry:
// "rpc.timeouts" for deadline expiries and "rpc.transport_errors" for
// every failed transaction (timeouts included).
func (t *TCPTransport) AttachMetrics(reg *stats.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.timeouts = reg.Counter("rpc.timeouts")
	t.transErrs = reg.Counter("rpc.transport_errors")
}

// noteTransportErr classifies one failed TCP transaction.
func (t *TCPTransport) noteTransportErr(err error) {
	t.mu.Lock()
	timeouts, transErrs := t.timeouts, t.transErrs
	t.mu.Unlock()
	if transErrs != nil {
		transErrs.Inc()
	}
	if timeouts == nil {
		return
	}
	var nerr net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &nerr) && nerr.Timeout()) {
		timeouts.Inc()
	}
}
