package rpc

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// TestTracedFrameRoundTrip pins the v2 wire format: prologue, extension
// TLV, payload.
func TestTracedFrameRoundTrip(t *testing.T) {
	port := capability.PortFromString("trace-wire")
	var buf bytes.Buffer
	if err := writeFrameTraced(&buf, magicRequest, 7, 0xdeadbeefcafe, port, Header{Command: 3, Arg: 9}, []byte("hi")); err != nil {
		t.Fatalf("writeFrameTraced: %v", err)
	}
	if got := binary.BigEndian.Uint32(buf.Bytes()[0:4]); got != magicRequestV2 {
		t.Fatalf("traced frame magic %08x, want %08x", got, magicRequestV2)
	}
	var fixed [prologueLen + extScratchLen]byte
	txid, traceID, _, gotPort, h, payload, _, err := readFrameScratch(bytes.NewReader(buf.Bytes()), magicRequest, fixed[:], false)
	if err != nil {
		t.Fatalf("readFrameScratch: %v", err)
	}
	if txid != 7 || traceID != 0xdeadbeefcafe || gotPort != port || h.Command != 3 || h.Arg != 9 || string(payload) != "hi" {
		t.Fatalf("round trip lost fields: txid=%d traceID=%x cmd=%d payload=%q", txid, traceID, h.Command, payload)
	}
}

// TestTracedFrameZeroIDStaysV1 pins the interop contract: no trace ID,
// no version bump — old servers never see a v2 frame from an untraced
// client.
func TestTracedFrameZeroIDStaysV1(t *testing.T) {
	var v1, v2 bytes.Buffer
	port := capability.Port{1}
	if err := writeFrame(&v1, magicRequest, 5, port, Header{Command: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := writeFrameTraced(&v2, magicRequest, 5, 0, port, Header{Command: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Fatal("traceID 0 changed the frame bytes")
	}
}

// TestUnknownExtensionFieldsSkipped proves a v2 receiver tolerates TLV
// types it has never heard of — before, after, and instead of the trace
// ID — so the extension can grow without a version bump.
func TestUnknownExtensionFieldsSkipped(t *testing.T) {
	port := capability.Port{9}
	h := Header{Command: 4}

	build := func(ext []byte, paylen int) []byte {
		var buf bytes.Buffer
		pro := make([]byte, prologueLen)
		encodePrologue(pro, magicRequestV2, 11, port, h, paylen)
		buf.Write(pro)
		var two [2]byte
		binary.BigEndian.PutUint16(two[:], uint16(len(ext)))
		buf.Write(two[:])
		buf.Write(ext)
		buf.Write(bytes.Repeat([]byte{'x'}, paylen))
		return buf.Bytes()
	}

	traceTLV := make([]byte, 10)
	traceTLV[0] = extTypeTraceID
	traceTLV[1] = 8
	binary.BigEndian.PutUint64(traceTLV[2:], 0x1234)

	cases := []struct {
		name   string
		ext    []byte
		wantID uint64
	}{
		{"unknown-before-known", append([]byte{0x7f, 3, 1, 2, 3}, traceTLV...), 0x1234},
		{"unknown-after-known", append(append([]byte{}, traceTLV...), 0x7f, 2, 9, 9), 0x1234},
		{"only-unknown", []byte{0x7f, 4, 1, 2, 3, 4}, 0},
		{"empty-ext", nil, 0},
		{"known-type-wrong-len", []byte{extTypeTraceID, 2, 1, 2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var fixed [prologueLen + extScratchLen]byte
			_, traceID, _, _, gotH, payload, _, err := readFrameScratch(bytes.NewReader(build(tc.ext, 3)), magicRequest, fixed[:], false)
			if err != nil {
				t.Fatalf("readFrameScratch: %v", err)
			}
			if traceID != tc.wantID {
				t.Fatalf("traceID = %#x, want %#x", traceID, tc.wantID)
			}
			if gotH != h || string(payload) != "xxx" {
				t.Fatal("header/payload corrupted by extension parsing")
			}
		})
	}
}

// TestTruncatedExtensionRejected: a TLV that overruns the declared
// extension length is a framing error, not a silent misparse.
func TestTruncatedExtensionRejected(t *testing.T) {
	port := capability.Port{9}
	pro := make([]byte, prologueLen)
	encodePrologue(pro, magicRequestV2, 1, port, Header{}, 0)
	var buf bytes.Buffer
	buf.Write(pro)
	var two [2]byte
	binary.BigEndian.PutUint16(two[:], 3)
	buf.Write(two[:])
	buf.Write([]byte{extTypeTraceID, 8, 0x01}) // claims 8 value bytes, has 1
	var fixed [prologueLen + extScratchLen]byte
	_, _, _, _, _, _, _, err := readFrameScratch(bytes.NewReader(buf.Bytes()), magicRequest, fixed[:], false)
	if err == nil {
		t.Fatal("truncated TLV accepted")
	}
}

// TestLargeExtensionBeyondScratch: extensions bigger than the
// connection's scratch buffer still parse (one-shot allocation path).
func TestLargeExtensionBeyondScratch(t *testing.T) {
	port := capability.Port{3}
	pro := make([]byte, prologueLen)
	encodePrologue(pro, magicRequestV2, 1, port, Header{Command: 8}, 0)
	ext := make([]byte, 0, extScratchLen+40)
	for len(ext) < extScratchLen+20 {
		ext = append(ext, 0x70, 10)
		ext = append(ext, make([]byte, 10)...)
	}
	tlv := make([]byte, 10)
	tlv[0] = extTypeTraceID
	tlv[1] = 8
	binary.BigEndian.PutUint64(tlv[2:], 0xabc)
	ext = append(ext, tlv...)

	var buf bytes.Buffer
	buf.Write(pro)
	var two [2]byte
	binary.BigEndian.PutUint16(two[:], uint16(len(ext)))
	buf.Write(two[:])
	buf.Write(ext)
	var fixed [prologueLen + extScratchLen]byte
	_, traceID, _, _, _, _, _, err := readFrameScratch(bytes.NewReader(buf.Bytes()), magicRequest, fixed[:], false)
	if err != nil {
		t.Fatalf("readFrameScratch: %v", err)
	}
	if traceID != 0xabc {
		t.Fatalf("traceID = %#x, want 0xabc", traceID)
	}
}

// TestTraceIDPropagatesOverTCP drives a traced transaction through the
// real TCP stack and asserts the server's flight recorder saw the
// client's trace ID with an rpc root span.
func TestTraceIDPropagatesOverTCP(t *testing.T) {
	port := capability.PortFromString("traced-tcp")
	mux := NewMux(0)
	rec := trace.NewRecorder(trace.WithCapacity(8, 8))
	mux.AttachRecorder(rec)
	mux.RegisterTraced(port, func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte) (Header, []byte) {
		sp := tc.Begin(parent, trace.LayerEngine, trace.OpRead)
		tc.End(sp)
		return Header{Status: StatusOK, Arg: 1}, []byte("ok")
	})
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 5*time.Second)
	defer tr.Close()
	const wantID = uint64(0x1122334455)
	rep, payload, err := tr.TransTraced(port, wantID, Header{Command: 2}, []byte("req"))
	if err != nil {
		t.Fatalf("TransTraced: %v", err)
	}
	if rep.Status != StatusOK || string(payload) != "ok" {
		t.Fatalf("reply %v %q", rep.Status, payload)
	}

	traces := rec.Recent()
	if len(traces) != 1 {
		t.Fatalf("recorder has %d traces, want 1", len(traces))
	}
	tr0 := traces[0]
	if tr0.ID != wantID {
		t.Fatalf("recorded trace ID %#x, want %#x", tr0.ID, wantID)
	}
	root := tr0.Root()
	if root == nil || root.Layer != trace.LayerRPC || root.Op != trace.OpRequest || root.Cmd != 2 {
		t.Fatalf("bad root span: %+v", root)
	}
	if tr0.N != 2 || tr0.Spans[1].Layer != trace.LayerEngine || tr0.Spans[1].Parent != root.ID {
		t.Fatalf("handler span missing or mis-parented: %+v", tr0.Spans[:tr0.N])
	}
}

// TestUntracedRequestGetsLocalID: with a recorder attached, a v1 request
// is still recorded — under a server-assigned ID with the local bit set.
func TestUntracedRequestGetsLocalID(t *testing.T) {
	port := capability.PortFromString("local-id")
	mux := NewMux(0)
	rec := trace.NewRecorder(trace.WithCapacity(8, 8))
	mux.AttachRecorder(rec)
	mux.Register(port, func(req Header, payload []byte) (Header, []byte) {
		return ReplyOK(), nil
	})
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 5*time.Second)
	defer tr.Close()
	if _, _, err := tr.Trans(port, Header{Command: 6}, nil); err != nil {
		t.Fatalf("Trans: %v", err)
	}
	traces := rec.Recent()
	if len(traces) != 1 {
		t.Fatalf("recorder has %d traces, want 1", len(traces))
	}
	if traces[0].ID&trace.LocalIDBit == 0 {
		t.Fatalf("server-assigned ID %#x lacks the local bit", traces[0].ID)
	}
}

// TestDispatchTraceDupReplayRecordsSpan: a duplicate transaction replays
// the cached reply and still leaves a root span in the trace.
func TestDispatchTraceDupReplayRecordsSpan(t *testing.T) {
	port := capability.Port{5}
	mux := NewMux(0)
	rec := trace.NewRecorder(trace.WithCapacity(8, 8))
	mux.AttachRecorder(rec)
	calls := 0
	mux.Register(port, func(req Header, payload []byte) (Header, []byte) {
		calls++
		return Header{Status: StatusOK, Arg: 42}, nil
	})
	const txid = 77
	if _, _, err := mux.DispatchTraceID(1, port, txid, Header{Command: 3}, nil); err != nil {
		t.Fatal(err)
	}
	rep, _, err := mux.DispatchTraceID(2, port, txid, Header{Command: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1 (at-most-once)", calls)
	}
	if rep.Arg != 42 {
		t.Fatalf("replayed reply Arg = %d, want 42", rep.Arg)
	}
	traces := rec.Recent()
	if len(traces) != 2 {
		t.Fatalf("recorder has %d traces, want 2 (original + replay)", len(traces))
	}
	for _, tr0 := range traces {
		if root := tr0.Root(); root == nil || root.Cmd != 3 {
			t.Fatalf("trace %#x missing root span", tr0.ID)
		}
	}
}
