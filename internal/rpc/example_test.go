package rpc_test

import (
	"fmt"

	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

// A transaction against a registered port: the Amoeba trans() primitive.
func ExampleMux() {
	mux := rpc.NewMux(0)
	port := capability.PortFromString("adder")
	mux.Register(port, func(req rpc.Header, payload []byte) (rpc.Header, []byte) {
		return rpc.Header{Status: rpc.StatusOK, Arg: req.Arg + req.Arg2}, nil
	})

	tr := rpc.NewLocal(mux)
	rep, _, _ := tr.Trans(port, rpc.Header{Arg: 40, Arg2: 2}, nil)
	fmt.Println(rep.Arg)
	// Output: 42
}

// At-most-once execution: a retried transaction (same transaction ID)
// replays the cached reply instead of re-running the handler.
func ExampleMux_duplicateSuppression() {
	mux := rpc.NewMux(0)
	port := capability.PortFromString("counter")
	calls := 0
	mux.Register(port, func(rpc.Header, []byte) (rpc.Header, []byte) {
		calls++
		return rpc.ReplyOK(), nil
	})

	const txid = 12345
	mux.Dispatch(port, txid, rpc.Header{}, nil) //nolint:errcheck
	mux.Dispatch(port, txid, rpc.Header{}, nil) //nolint:errcheck
	fmt.Println("handler ran", calls, "time(s)")
	// Output: handler ran 1 time(s)
}
