package rpc

import (
	"errors"
	"testing"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// failingTransport always drops, counting attempts.
type failingTransport struct{ calls int }

func (f *failingTransport) Trans(capability.Port, Header, []byte) (Header, []byte, error) {
	f.calls++
	return Header{}, nil, ErrDropped
}

// fakeClock drives the retrier's now/sleep hooks: sleeping advances
// virtual time instantly and records the requested duration.
type fakeClock struct {
	t      time.Time
	sleeps []time.Duration
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) sleep(d time.Duration) {
	c.sleeps = append(c.sleeps, d)
	c.t = c.t.Add(d)
}

// withFakeClock rewires a retrier onto clk with jitter replaced by the
// identity (sleep the full pre-jitter cap), so the schedule is exact.
func withFakeClock(r *Retrier, clk *fakeClock) {
	r.now = clk.now
	r.sleep = clk.sleep
	r.jitter = func(cap time.Duration) time.Duration { return cap }
}

func TestRetrierBackoffSchedule(t *testing.T) {
	ft := &failingTransport{}
	r := NewRetrier(ft, 6)
	r.SetBackoff(10*time.Millisecond, 80*time.Millisecond)
	clk := &fakeClock{t: time.Unix(0, 0)}
	withFakeClock(r, clk)

	_, _, err := r.Trans(capability.Port{}, Header{}, nil)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("Trans error = %v, want ErrDropped", err)
	}
	if ft.calls != 6 {
		t.Fatalf("attempts = %d, want 6", ft.calls)
	}
	// The cap doubles from base and saturates at max; the last attempt is
	// not followed by a sleep.
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond,
	}
	if len(clk.sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", clk.sleeps, want)
	}
	for i := range want {
		if clk.sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, clk.sleeps[i], want[i], clk.sleeps)
		}
	}
}

func TestRetrierBackoffJitterBounds(t *testing.T) {
	// With the real jitter hook every sleep must land in [0, cap).
	ft := &failingTransport{}
	r := NewRetrier(ft, 8)
	r.SetBackoff(16*time.Millisecond, 64*time.Millisecond)
	clk := &fakeClock{t: time.Unix(0, 0)}
	realJitter := r.jitter
	r.now = clk.now
	r.sleep = clk.sleep
	r.jitter = realJitter

	if _, _, err := r.Trans(capability.Port{}, Header{}, nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("Trans error = %v, want ErrDropped", err)
	}
	caps := []time.Duration{16, 32, 64, 64, 64, 64, 64}
	for i, d := range clk.sleeps {
		if d < 0 || d >= caps[i]*time.Millisecond {
			t.Fatalf("sleep %d = %v, want in [0, %v)", i, d, caps[i]*time.Millisecond)
		}
	}
}

func TestRetrierBudgetStopsRetrying(t *testing.T) {
	ft := &failingTransport{}
	r := NewRetrier(ft, 100)
	r.SetBackoff(10*time.Millisecond, 10*time.Millisecond)
	r.SetBudget(25 * time.Millisecond)
	clk := &fakeClock{t: time.Unix(0, 0)}
	withFakeClock(r, clk)

	_, _, err := r.Trans(capability.Port{}, Header{}, nil)
	if !errors.Is(err, trace.ErrDeadlineExceeded) {
		t.Fatalf("Trans error = %v, want the budget error (trace.ErrDeadlineExceeded)", err)
	}
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("Trans error = %v, want the last transport error (ErrDropped) wrapped alongside", err)
	}
	// Virtual schedule: attempt, sleep 10ms, attempt, sleep 10ms, attempt —
	// the next 10ms backoff would land past the 25ms deadline, so the
	// retrier stops with the budget error instead of sleeping into it.
	if ft.calls != 3 {
		t.Fatalf("attempts = %d, want 3 (sleeps: %v)", ft.calls, clk.sleeps)
	}
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond}
	if len(clk.sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", clk.sleeps, want)
	}
	for i := range want {
		if clk.sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, clk.sleeps[i], want[i])
		}
	}
	if total := clk.t.Sub(time.Unix(0, 0)); total > 25*time.Millisecond {
		t.Fatalf("slept %v total, budget was 25ms", total)
	}
}

func TestRetrierZeroBaseDisablesSleep(t *testing.T) {
	ft := &failingTransport{}
	r := NewRetrier(ft, 5)
	r.SetBackoff(0, 0)
	clk := &fakeClock{t: time.Unix(0, 0)}
	withFakeClock(r, clk)

	if _, _, err := r.Trans(capability.Port{}, Header{}, nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("Trans error = %v, want ErrDropped", err)
	}
	if ft.calls != 5 || len(clk.sleeps) != 0 {
		t.Fatalf("attempts = %d sleeps = %v, want 5 attempts and no sleeps", ft.calls, clk.sleeps)
	}
}
