package rpc

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/stats"
)

func TestMuxMetricsRecordsPerOp(t *testing.T) {
	reg := stats.NewRegistry()
	mux := NewMux(0)
	mux.AttachMetrics(reg, func(cmd uint32) string {
		if cmd == 1 {
			return "ping"
		}
		return ""
	})
	port := capability.PortFromString("metrics-test")
	mux.Register(port, func(req Header, payload []byte) (Header, []byte) {
		if req.Command == 2 {
			return ReplyErr(StatusBadCommand), nil
		}
		return ReplyOK(), []byte("pong")
	})

	if _, _, err := mux.Dispatch(port, 0, Header{Command: 1}, []byte("abc")); err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if _, _, err := mux.Dispatch(port, 0, Header{Command: 2}, nil); err != nil {
		t.Fatalf("Dispatch cmd2: %v", err)
	}

	snap := reg.Snapshot()
	if n := snap.Counters["rpc.ping.requests"]; n != 1 {
		t.Errorf("rpc.ping.requests = %d, want 1", n)
	}
	// Unnamed command falls back to cmd<N>.
	if n := snap.Counters["rpc.cmd2.requests"]; n != 1 {
		t.Errorf("rpc.cmd2.requests = %d, want 1", n)
	}
	if n := snap.Counters["rpc.cmd2.errors"]; n != 1 {
		t.Errorf("rpc.cmd2.errors = %d, want 1", n)
	}
	if _, ok := snap.Counters["rpc.ping.errors"]; ok {
		t.Error("rpc.ping.errors should not exist for an OK reply")
	}
	if h := snap.Histograms["rpc.ping.latency_ns"]; h.Count != 1 {
		t.Errorf("rpc.ping.latency_ns count = %d, want 1", h.Count)
	}
	if h := snap.Histograms["rpc.ping.req_bytes"]; h.Count != 1 || h.Max != 3 {
		t.Errorf("rpc.ping.req_bytes = %+v, want count 1 max 3", h)
	}
	if h := snap.Histograms["rpc.ping.rep_bytes"]; h.Max != 4 {
		t.Errorf("rpc.ping.rep_bytes max = %d, want 4", h.Max)
	}
}

func TestMuxMetricsCountsDupReplays(t *testing.T) {
	reg := stats.NewRegistry()
	mux := NewMux(0)
	mux.AttachMetrics(reg, nil)
	port := capability.PortFromString("dup-test")
	calls := 0
	mux.Register(port, func(Header, []byte) (Header, []byte) {
		calls++
		return ReplyOK(), nil
	})
	for i := 0; i < 3; i++ {
		if _, _, err := mux.Dispatch(port, 42, Header{Command: 1}, nil); err != nil {
			t.Fatalf("Dispatch %d: %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1", calls)
	}
	if n := reg.Snapshot().Counters["rpc.dup_replays"]; n != 2 {
		t.Errorf("rpc.dup_replays = %d, want 2", n)
	}
}

func TestRetrierMetricsCountsRetries(t *testing.T) {
	reg := stats.NewRegistry()
	mux := NewMux(0)
	port := capability.PortFromString("retry-test")
	mux.Register(port, func(Header, []byte) (Header, []byte) { return ReplyOK(), nil })
	flaky := NewFlaky(&LocalID{Mux: mux}, 0, 0, 1)
	flaky.ScriptDrops([]bool{true, false}, nil) // first attempt lost, second lands
	r := NewRetrier(flaky, 3)
	r.AttachMetrics(reg)

	if _, _, err := r.Trans(port, Header{Command: 1}, nil); err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if n := reg.Snapshot().Counters["rpc.retries"]; n != 1 {
		t.Errorf("rpc.retries = %d, want 1", n)
	}
}

func TestTransportMetricsClassifiesErrors(t *testing.T) {
	reg := stats.NewRegistry()
	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{}), time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup
	tr.AttachMetrics(reg)

	// A plain failure counts as a transport error, not a timeout.
	tr.noteTransportErr(errors.New("connection refused"))
	// A deadline expiry counts as both.
	tr.noteTransportErr(fmt.Errorf("read: %w", os.ErrDeadlineExceeded))

	snap := reg.Snapshot()
	if n := snap.Counters["rpc.transport_errors"]; n != 2 {
		t.Errorf("rpc.transport_errors = %d, want 2", n)
	}
	if n := snap.Counters["rpc.timeouts"]; n != 1 {
		t.Errorf("rpc.timeouts = %d, want 1", n)
	}
}

func TestTransportMetricsRealDialFailure(t *testing.T) {
	reg := stats.NewRegistry()
	port := capability.PortFromString("nobody")
	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{
		port: "127.0.0.1:1",
	}), 2*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup
	tr.AttachMetrics(reg)

	if _, _, err := tr.Trans(port, Header{Command: 1}, nil); err == nil {
		t.Fatal("dial to a dead address should fail")
	}
	if n := reg.Snapshot().Counters["rpc.transport_errors"]; n != 1 {
		t.Errorf("rpc.transport_errors = %d, want 1", n)
	}
}
