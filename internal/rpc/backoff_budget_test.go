package rpc

import (
	"errors"
	"testing"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// budgetProbe is an OptsTransport that records the budget each attempt
// carried and fails (or succeeds) per script. Failing attempts may also
// consume virtual time, modelling a transport that times out slowly.
type budgetProbe struct {
	clk     *fakeClock
	budgets []time.Duration
	fail    []bool        // fail[i]: attempt i returns ErrDropped (true past the end)
	cost    time.Duration // virtual time each attempt consumes
	busy    bool          // failed attempts reply StatusBusy instead of erroring
}

func (p *budgetProbe) Trans(capability.Port, Header, []byte) (Header, []byte, error) {
	panic("retrier must use TransOpts when the transport supports it")
}

func (p *budgetProbe) TransOpts(_ capability.Port, opts CallOpts, _ Header, _ []byte) (Header, []byte, error) {
	i := len(p.budgets)
	p.budgets = append(p.budgets, opts.Budget)
	p.clk.t = p.clk.t.Add(p.cost)
	failed := i >= len(p.fail) || p.fail[i]
	if !failed {
		return ReplyOK(), nil, nil
	}
	if p.busy {
		return ReplyErr(StatusBusy), nil, nil
	}
	return Header{}, nil, ErrDropped
}

// TestRetrierDeadlineVsRetry is the deadline-vs-retry interaction
// table: whenever the backoff schedule cannot fit in the caller's
// budget the retrier must stop early with the budget error — never the
// last transport error dressed up as the outcome — and every attempt
// must carry the budget remaining at that point, not the original.
func TestRetrierDeadlineVsRetry(t *testing.T) {
	cases := []struct {
		name          string
		budget        time.Duration // caller budget via TransOpts (0 = none)
		retrierBudget time.Duration
		attempts      int
		cost          time.Duration
		fail          []bool
		wantAttempts  int
		wantDeadline  bool // errors.Is(err, trace.ErrDeadlineExceeded)
		wantDropped   bool // errors.Is(err, ErrDropped)
		wantBudgets   []time.Duration
	}{
		{
			// 10ms backoffs fit a 100ms budget: plain exhaustion, and
			// the error is the transport's, not a deadline.
			name: "generous budget exhausts attempts", budget: 100 * time.Millisecond,
			attempts: 3, wantAttempts: 3, wantDropped: true,
			wantBudgets: []time.Duration{100 * time.Millisecond, 90 * time.Millisecond, 80 * time.Millisecond},
		},
		{
			// The third 10ms backoff would land past the 25ms deadline:
			// stop with the budget error, last transport error wrapped.
			name: "backoff would overrun budget", budget: 25 * time.Millisecond,
			attempts: 100, wantAttempts: 3, wantDeadline: true, wantDropped: true,
			wantBudgets: []time.Duration{25 * time.Millisecond, 15 * time.Millisecond, 5 * time.Millisecond},
		},
		{
			// A transport whose failing call itself eats the budget:
			// no second attempt, budget error.
			name: "slow transport consumes budget", budget: 25 * time.Millisecond,
			attempts: 100, cost: 30 * time.Millisecond,
			wantAttempts: 1, wantDeadline: true, wantDropped: true,
			wantBudgets: []time.Duration{25 * time.Millisecond},
		},
		{
			// Success inside the budget is just success.
			name: "success before deadline", budget: 25 * time.Millisecond,
			attempts: 100, fail: []bool{true, false},
			wantAttempts: 2,
			wantBudgets:  []time.Duration{25 * time.Millisecond, 15 * time.Millisecond},
		},
		{
			// The retrier's own SetBudget behaves identically when the
			// caller carries none of its own.
			name: "retrier-owned budget", retrierBudget: 25 * time.Millisecond,
			attempts: 100, wantAttempts: 3, wantDeadline: true, wantDropped: true,
			wantBudgets: []time.Duration{25 * time.Millisecond, 15 * time.Millisecond, 5 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{t: time.Unix(0, 0)}
			probe := &budgetProbe{clk: clk, fail: tc.fail, cost: tc.cost}
			r := NewRetrier(probe, tc.attempts)
			r.SetBackoff(10*time.Millisecond, 10*time.Millisecond)
			if tc.retrierBudget > 0 {
				r.SetBudget(tc.retrierBudget)
			}
			withFakeClock(r, clk)

			var err error
			if tc.budget > 0 {
				_, _, err = r.TransOpts(capability.Port{}, CallOpts{Budget: tc.budget}, Header{}, nil)
			} else {
				_, _, err = r.Trans(capability.Port{}, Header{}, nil)
			}

			if got := errors.Is(err, trace.ErrDeadlineExceeded); got != tc.wantDeadline {
				t.Errorf("errors.Is(err, trace.ErrDeadlineExceeded) = %v, want %v (err: %v)", got, tc.wantDeadline, err)
			}
			if got := errors.Is(err, ErrDropped); got != tc.wantDropped {
				t.Errorf("errors.Is(err, ErrDropped) = %v, want %v (err: %v)", got, tc.wantDropped, err)
			}
			if !tc.wantDeadline && !tc.wantDropped && err != nil {
				t.Errorf("err = %v, want success", err)
			}
			if len(probe.budgets) != tc.wantAttempts {
				t.Fatalf("attempts = %d, want %d (budgets: %v)", len(probe.budgets), tc.wantAttempts, probe.budgets)
			}
			for i, want := range tc.wantBudgets {
				if probe.budgets[i] != want {
					t.Errorf("attempt %d carried budget %v, want %v (refresh per attempt)", i, probe.budgets[i], want)
				}
			}
		})
	}
}

// TestRetrierBusyBeatsBudgetError: when every attempt came back as an
// admission shed and the budget then runs out, the caller gets the busy
// reply — the server answered; only its answer was "no".
func TestRetrierBusyBeatsBudgetError(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	probe := &budgetProbe{clk: clk, busy: true}
	r := NewRetrier(probe, 100)
	r.SetBackoff(10*time.Millisecond, 10*time.Millisecond)
	r.SetRetryBusy(true)
	withFakeClock(r, clk)

	h, _, err := r.TransOpts(capability.Port{}, CallOpts{Budget: 25 * time.Millisecond}, Header{}, nil)
	if err != nil {
		t.Fatalf("err = %v, want the busy reply, not an error", err)
	}
	if h.Status != StatusBusy {
		t.Fatalf("status = %v, want StatusBusy", h.Status)
	}
}
