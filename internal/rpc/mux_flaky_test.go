package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// TestRetrierExhaustionTagsMetrics pins the bookkeeping when every
// attempt fails: the retry counter records attempts beyond the first
// (not the first attempt itself), the caller sees the final underlying
// error, and the fault injector agrees on how many transactions it ate.
func TestRetrierExhaustionTagsMetrics(t *testing.T) {
	reg := stats.NewRegistry()
	mux := NewMux(0)
	port := capability.PortFromString("exhausted")
	mux.Register(port, echoHandler)
	flaky := NewFlaky(&LocalID{Mux: mux}, 1.0, 0, 1) // every request lost
	r := NewRetrier(flaky, 4)
	r.AttachMetrics(reg)

	if _, _, err := r.Trans(port, Header{Command: 9}, nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped after exhausting retries (schedule: %s)", err, flaky.Schedule())
	}
	if n := reg.Snapshot().Counters["rpc.retries"]; n != 3 {
		t.Errorf("rpc.retries = %d, want 3 (4 attempts, first is not a retry; schedule: %s)", n, flaky.Schedule())
	}
	if flaky.Requests != 4 || flaky.Dropped != 4 {
		t.Errorf("flaky requests/dropped = %d/%d, want 4/4 (schedule: %s)", flaky.Requests, flaky.Dropped, flaky.Schedule())
	}
}

// TestFlakyReplyLossExecutesHandler pins the semantic that makes reply
// loss the interesting failure mode: the handler DID run (server-side
// effects exist) even though the caller got ErrDropped. Duplicate
// suppression exists precisely because of this asymmetry.
func TestFlakyReplyLossExecutesHandler(t *testing.T) {
	mux := NewMux(0)
	port := capability.PortFromString("rep-loss")
	var calls atomic.Int64
	mux.Register(port, func(Header, []byte) (Header, []byte) {
		calls.Add(1)
		return ReplyOK(), nil
	})
	flaky := NewFlaky(&LocalID{Mux: mux}, 0, 0, 1)
	flaky.ScriptDrops(nil, []bool{true}) // reply of the first transaction lost

	if _, _, err := flaky.Trans(port, Header{}, nil); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped (schedule: %s)", err, flaky.Schedule())
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1 — reply loss must happen after dispatch (schedule: %s)", calls.Load(), flaky.Schedule())
	}
	if flaky.Requests != 1 || flaky.Dropped != 1 {
		t.Errorf("flaky requests/dropped = %d/%d, want 1/1 (schedule: %s)", flaky.Requests, flaky.Dropped, flaky.Schedule())
	}
}

// TestSharedTransportInterleavedTracedReplies drives one pooled
// TCPTransport with concurrent TRACED transactions (v2 frames carrying
// distinct trace IDs): replies must demux back to the right caller, and
// the server's recorder must file one trace per client-chosen ID.
func TestSharedTransportInterleavedTracedReplies(t *testing.T) {
	rec := trace.NewRecorder(trace.WithCapacity(256, 8))
	defer rec.Close()
	mux := NewMux(0)
	mux.AttachRecorder(rec)
	port := capability.PortFromString("traced-shared")
	mux.RegisterTraced(port, func(tc *trace.Ctx, parent *trace.Span, req Header, payload []byte) (Header, []byte) {
		if tc == nil || parent == nil {
			return Header{Status: StatusInternal}, nil
		}
		out := make([]byte, len(payload))
		copy(out, payload)
		return Header{Status: StatusOK, Command: req.Command, Arg: req.Arg}, out
	})
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close() //nolint:errcheck // test cleanup

	tr := NewTCPTransport(StaticResolver(map[capability.Port]string{port: addr}), 10*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup

	const workers, perWorker = 8, 16
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				cmd := uint32(w*1000 + i)
				traceID := uint64(w*perWorker + i + 1) // nonzero, top bit clear
				payload := bytes.Repeat([]byte{byte(w + 1)}, w*31+1)
				rep, body, err := tr.TransTraced(port, traceID, Header{Command: cmd, Arg: uint64(w)}, payload)
				if err != nil {
					errc <- err
					return
				}
				if rep.Status != StatusOK || rep.Command != cmd || rep.Arg != uint64(w) {
					errc <- fmt.Errorf("worker %d got reply %+v for command %d", w, rep, cmd)
					return
				}
				if !bytes.Equal(body, payload) {
					errc <- fmt.Errorf("worker %d got another worker's payload", w)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	seen := map[uint64]int{}
	for _, tc := range rec.Recent() {
		seen[tc.ID]++
	}
	for id := uint64(1); id <= workers*perWorker; id++ {
		if seen[id] != 1 {
			t.Fatalf("trace ID %d recorded %d times, want exactly 1", id, seen[id])
		}
	}
}
