package rpc

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// Flaky wraps a Transport with deterministic fault injection for testing
// the retry/at-most-once machinery: a transaction can be "dropped" before
// reaching the server (request loss) or after executing (reply loss). Both
// surface to the caller as ErrDropped, but reply loss leaves the server's
// side effects in place — exactly the hazard duplicate suppression exists
// for.
type Flaky struct {
	inner   Transport
	mu      sync.Mutex
	rng     *rand.Rand // guarded by mu
	dropReq float64    // guarded by mu; probability a request is lost before dispatch
	dropRep float64    // guarded by mu; probability a reply is lost after dispatch

	scriptReq   []bool          // guarded by mu; if non-nil, consumed one per Trans: true = drop request
	scriptRep   []bool          // guarded by mu
	delay       time.Duration   // guarded by mu; fixed injected delay before every dispatch
	scriptDelay []time.Duration // guarded by mu; per-transaction delays (overrides delay while entries last)
	sched       []string        // guarded by mu; per-transaction fate log, see Schedule

	sleep func(time.Duration) // injected delay sink; nil = time.Sleep

	Requests int // transactions attempted
	Dropped  int // transactions that returned ErrDropped
}

var _ Transport = (*Flaky)(nil)

// NewFlaky wraps inner with loss probabilities and a deterministic seed.
func NewFlaky(inner Transport, dropReq, dropRep float64, seed int64) *Flaky {
	return &Flaky{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		dropReq: dropReq,
		dropRep: dropRep,
	}
}

// ScriptDrops arranges exact loss patterns: on the i-th transaction the
// request is dropped if req[i], else the reply is dropped if rep[i].
// Past the end of the scripts nothing is dropped.
func (f *Flaky) ScriptDrops(req, rep []bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scriptReq, f.scriptRep = req, rep
	f.dropReq, f.dropRep = 0, 0
}

// SetDelay injects a fixed delay before every subsequent dispatch — the
// gray-failure counterpart of a drop: the message arrives, just late.
// 0 clears it.
func (f *Flaky) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// ScriptDelays arranges exact per-transaction delays: the i-th
// transaction waits delays[i] before dispatch. Past the end of the
// script the fixed SetDelay value (if any) applies again.
func (f *Flaky) ScriptDelays(delays []time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scriptDelay = delays
}

// SetSleep replaces the delay sink (nil restores time.Sleep). Tests
// inject a virtual-clock advance so injected delays cost no wall time.
func (f *Flaky) SetSleep(sleep func(time.Duration)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sleep = sleep
}

// Schedule reports what the injector did to each transaction so far,
// e.g. "#0 ok; #1 drop-req; #2 delay(5ms); #3 drop-rep". Retry tests
// include it in failure messages: a bare "err = dropped, want ok" says
// nothing about WHICH attempt the injector ate.
func (f *Flaky) Schedule() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.sched) == 0 {
		return "(no transactions)"
	}
	return strings.Join(f.sched, "; ")
}

func (f *Flaky) decide() (dropReq, dropRep bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := f.Requests
	f.Requests++
	scripted := f.scriptReq != nil || f.scriptRep != nil
	if scripted {
		if i < len(f.scriptReq) {
			dropReq = f.scriptReq[i]
		}
		if i < len(f.scriptRep) {
			dropRep = f.scriptRep[i]
		}
	} else {
		dropReq = f.rng.Float64() < f.dropReq
		dropRep = f.rng.Float64() < f.dropRep
	}
	delay = f.delay
	if i < len(f.scriptDelay) {
		delay = f.scriptDelay[i]
	}
	fate := "ok"
	switch {
	case dropReq:
		fate = "drop-req"
	case dropRep:
		fate = "drop-rep"
	}
	if delay > 0 {
		fate = fmt.Sprintf("delay(%v)+%s", delay, fate)
	}
	f.sched = append(f.sched, fmt.Sprintf("#%d %s", i, fate))
	return dropReq, dropRep, delay
}

// run applies one transaction's scripted fate around send: the injected
// delay first (late messages, the gray-failure mode), then request loss
// before dispatch or reply loss after it.
func (f *Flaky) run(send func() (Header, []byte, error)) (Header, []byte, error) {
	dropReq, dropRep, delay := f.decide()
	if delay > 0 {
		f.mu.Lock()
		sleep := f.sleep
		f.mu.Unlock()
		if sleep == nil {
			sleep = time.Sleep
		}
		sleep(delay)
	}
	if dropReq {
		f.mu.Lock()
		f.Dropped++
		f.mu.Unlock()
		return Header{}, nil, ErrDropped
	}
	h, p, err := send()
	if err != nil {
		return h, p, err
	}
	if dropRep {
		f.mu.Lock()
		f.Dropped++
		f.mu.Unlock()
		return Header{}, nil, ErrDropped
	}
	return h, p, nil
}

// Trans implements Transport with injected loss.
func (f *Flaky) Trans(port capability.Port, req Header, payload []byte) (Header, []byte, error) {
	return f.TransID(port, 0, req, payload)
}

// TransID implements the identified form used by Retrier.
func (f *Flaky) TransID(port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	return f.run(func() (Header, []byte, error) {
		return transID(f.inner, port, txid, req, payload)
	})
}

// TransOpts implements OptsTransport: the full option set passes
// through to the inner transport, under the same injected faults.
func (f *Flaky) TransOpts(port capability.Port, opts CallOpts, req Header, payload []byte) (Header, []byte, error) {
	return f.run(func() (Header, []byte, error) {
		return transOpts(f.inner, port, opts, req, payload)
	})
}

// IdentifiedTransport is a Transport that can carry an at-most-once
// transaction ID.
type IdentifiedTransport interface {
	Transport
	TransID(port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error)
}

// transID uses TransID when the transport supports it, else plain Trans.
func transID(t Transport, port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	if it, ok := t.(IdentifiedTransport); ok {
		return it.TransID(port, txid, req, payload)
	}
	return t.Trans(port, req, payload)
}

// LocalID adapts a Mux to an IdentifiedTransport directly (in-process), so
// the retry machinery can be tested without TCP.
type LocalID struct{ Mux *Mux }

var _ IdentifiedTransport = (*LocalID)(nil)

// Trans implements Transport.
func (l *LocalID) Trans(port capability.Port, req Header, payload []byte) (Header, []byte, error) {
	return l.Mux.Dispatch(port, 0, req, payload)
}

// TransID implements IdentifiedTransport.
func (l *LocalID) TransID(port capability.Port, txid uint64, req Header, payload []byte) (Header, []byte, error) {
	return l.Mux.Dispatch(port, txid, req, payload)
}

// Default backoff schedule for NewRetrier. The cap before jitter doubles
// from DefaultBackoffBase per failed attempt up to DefaultBackoffMax.
const (
	DefaultBackoffBase = time.Millisecond
	DefaultBackoffMax  = 50 * time.Millisecond
)

// Retrier wraps a Transport with bounded retry under a stable transaction
// ID: the server's duplicate suppression guarantees at-most-once execution
// even when replies were lost. Between attempts it sleeps with exponential
// backoff and full jitter — Uniform[0, min(max, base<<failures)) — so a
// struggling server sees retries spread out instead of a synchronized
// hammer. Zero value is not usable; use NewRetrier.
type Retrier struct {
	inner    Transport
	attempts int
	retries  *stats.Counter // optional; see AttachMetrics

	base      time.Duration // backoff cap for the first retry; 0 disables sleeping
	max       time.Duration // ceiling the doubling cap saturates at
	budget    time.Duration // total wall-clock budget across attempts; 0 = none
	retryBusy bool          // treat StatusBusy replies as retryable; see SetRetryBusy

	// Injectable for deterministic schedule tests; never nil.
	now    func() time.Time
	sleep  func(time.Duration)
	jitter func(cap time.Duration) time.Duration
}

var _ Transport = (*Retrier)(nil)

// NewRetrier retries each transaction up to attempts times (minimum 1)
// with the default backoff schedule.
func NewRetrier(inner Transport, attempts int) *Retrier {
	if attempts < 1 {
		attempts = 1
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var rngMu sync.Mutex
	return &Retrier{
		inner:    inner,
		attempts: attempts,
		base:     DefaultBackoffBase,
		max:      DefaultBackoffMax,
		now:      time.Now,
		sleep:    time.Sleep,
		jitter: func(cap time.Duration) time.Duration {
			rngMu.Lock()
			defer rngMu.Unlock()
			return time.Duration(rng.Int63n(int64(cap)))
		},
	}
}

// SetBackoff replaces the backoff schedule: the pre-jitter cap starts at
// base and doubles per failed attempt up to max. base 0 disables sleeping
// (the pre-backoff behaviour). max below base is raised to base.
func (r *Retrier) SetBackoff(base, max time.Duration) {
	if max < base {
		max = base
	}
	r.base, r.max = base, max
}

// SetBudget bounds the total wall-clock time a transaction may spend
// across attempts: once the budget cannot cover the next backoff no
// further attempt is made and the caller gets an error wrapping
// trace.ErrDeadlineExceeded (with the last transport error wrapped
// alongside, so errors.Is still matches it) — a deadline miss must
// never masquerade as a transport fault. Each attempt carries the
// remaining budget to the server (when the transport can: see
// OptsTransport), so the server's own deadline shedding sees the
// refreshed, not the original, budget. 0 (the default) means no budget.
func (r *Retrier) SetBudget(d time.Duration) { r.budget = d }

// SetRetryBusy makes the retrier treat a StatusBusy reply as retryable
// backpressure: the server shed the request under admission control (or is
// mid-recovery), so the client backs off on the normal jittered schedule
// and tries again. Unlike a lost reply, a shed executed nothing, so each
// busy retry runs as a fresh transaction — reusing the pinned transaction
// ID would only replay the cached busy reply from duplicate suppression.
// If every attempt comes back busy the final busy reply is returned to the
// caller (not an error: the transport worked, the server said no).
func (r *Retrier) SetRetryBusy(on bool) { r.retryBusy = on }

// backoffFor returns the jittered sleep before retry number retry (1 is
// the first retry). Full jitter: uniform over [0, cap), where cap doubles
// from base per retry and saturates at max.
func (r *Retrier) backoffFor(retry int) time.Duration {
	if r.base <= 0 {
		return 0
	}
	cap := r.base
	for i := 1; i < retry && cap < r.max; i++ {
		cap <<= 1
	}
	if cap > r.max {
		cap = r.max
	}
	return r.jitter(cap)
}

// Trans implements Transport with retries.
func (r *Retrier) Trans(port capability.Port, req Header, payload []byte) (Header, []byte, error) {
	return r.trans(port, 0, 0, req, payload)
}

// TransOpts implements OptsTransport: the caller's budget (when set)
// overrides the retrier's own, the caller's transaction ID is ignored —
// the retrier pins its own so at-most-once holds across its attempts.
func (r *Retrier) TransOpts(port capability.Port, opts CallOpts, req Header, payload []byte) (Header, []byte, error) {
	return r.trans(port, opts.TraceID, opts.Budget, req, payload)
}

// trans is the shared retry loop: one transaction ID pinned across all
// attempts, the trace ID (0 = none) propagated on each, jittered backoff
// between attempts, the whole thing bounded by the budget deadline.
// Every attempt carries the budget that REMAINS at that point (not the
// original), so the server's deadline shedding and the client agree on
// how much time is actually left.
func (r *Retrier) trans(port capability.Port, traceID uint64, budget time.Duration, req Header, payload []byte) (Header, []byte, error) {
	txid, err := NewTxID()
	if err != nil {
		return Header{}, nil, err
	}
	if budget <= 0 {
		budget = r.budget
	}
	var deadline time.Time
	if budget > 0 {
		deadline = r.now().Add(budget)
	}
	var lastErr error
	var lastHdr Header
	var lastPayload []byte
	var gotBusy bool
	budgetSpent := func(attempts int) (Header, []byte, error) {
		if gotBusy {
			return lastHdr, lastPayload, nil
		}
		if lastErr == nil {
			return Header{}, nil, fmt.Errorf("rpc: retry budget %v spent before any attempt: %w",
				budget, trace.ErrDeadlineExceeded)
		}
		// Both sentinels wrapped: the caller's errors.Is sees the
		// deadline first-class, without losing what the transport said.
		return Header{}, nil, fmt.Errorf("rpc: retry budget %v spent after %d attempts: %w (last attempt: %w)",
			budget, attempts, trace.ErrDeadlineExceeded, lastErr)
	}
	for i := 0; i < r.attempts; i++ {
		rem := time.Duration(0)
		if !deadline.IsZero() {
			rem = deadline.Sub(r.now())
			if rem <= 0 {
				return budgetSpent(i)
			}
		}
		if i > 0 && r.retries != nil {
			r.retries.Inc()
		}
		h, p, err := transOpts(r.inner, port, CallOpts{TxID: txid, TraceID: traceID, Budget: rem}, req, payload)
		if err == nil {
			if !r.retryBusy || h.Status != StatusBusy {
				return h, p, nil
			}
			// Shed under load: back off and retry as a new transaction
			// (see SetRetryBusy for why the transaction ID must change).
			lastHdr, lastPayload, gotBusy, lastErr = h, p, true, nil
			if txid, err = NewTxID(); err != nil {
				return Header{}, nil, err
			}
		} else {
			if errors.Is(err, ErrNoServer) {
				return Header{}, nil, err // no point retrying an unknown port
			}
			lastErr, gotBusy = err, false
		}
		if i+1 >= r.attempts {
			break
		}
		d := r.backoffFor(i + 1)
		if !deadline.IsZero() {
			if rem := deadline.Sub(r.now()); d >= rem {
				// The backoff alone would outlive the budget: stop now
				// with the budget error, not the last transport error.
				return budgetSpent(i + 1)
			}
		}
		if d > 0 {
			r.sleep(d)
		}
	}
	if gotBusy {
		return lastHdr, lastPayload, nil
	}
	return Header{}, nil, lastErr
}
