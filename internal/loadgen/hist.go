package loadgen

import (
	"math"
	"math/bits"
	"time"
)

// subBits fixes the histogram's resolution: 2^subBits sub-buckets per
// power-of-two octave, i.e. a worst-case relative error of 1/2^subBits
// (~3% at 5). That is the HDR-histogram trade: fixed memory, O(1) record,
// and every quantile from p50 to p99.99 read out of the same structure
// without storing samples.
const subBits = 5

const (
	subCount = 1 << subBits
	// histBuckets covers 0 .. 2^62 ns (≈146 years) — bucket b spans values
	// with highest bit b+subBits-1, plus the exact low buckets.
	histBuckets = (64 - subBits) * subCount
)

// Hist is a log-bucketed latency histogram: values up to 2^subBits are
// recorded exactly, larger ones land in one of 2^subBits sub-buckets of
// their power-of-two octave. Unlike internal/stats.Histogram it has no
// fixed bucket ladder to outgrow — a p99.9 of five virtual minutes under
// overload is captured as faithfully as a 50 µs cache hit — and it is
// deliberately not safe for concurrent use: the open-loop runner is a
// single-goroutine discrete-event simulation, and unsynchronized int64
// adds keep Record trivially cheap.
type Hist struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{min: math.MaxInt64, max: math.MinInt64}
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	top := bits.Len64(u) - 1 // 2^top <= u < 2^(top+1), top >= subBits
	shift := top - subBits
	// m is u with its top subBits+1 bits kept: in [2^subBits, 2^(subBits+1)).
	m := u >> uint(shift)
	i := (top-subBits+1)*subCount + int(m-subCount)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketBounds returns the value range [lo, hi] bucket i covers.
func bucketBounds(i int) (lo, hi int64) {
	if i < subCount {
		return int64(i), int64(i)
	}
	b := i/subCount - 1 // octave: values with highest bit b+subBits
	sub := i % subCount
	width := int64(1) << uint(b)
	lo = (int64(subCount) + int64(sub)) << uint(b)
	return lo, lo + width - 1
}

// Record adds one observation (negative values count as zero).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds one latency observation in nanoseconds.
func (h *Hist) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Max returns the largest observation (0 when empty).
func (h *Hist) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest observation (0 when empty).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by walking the
// cumulative bucket counts and interpolating inside the containing bucket,
// clamped to the observed min and max — so a histogram holding one value
// reports that value at every quantile.
func (h *Hist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			blo, bhi := bucketBounds(i)
			lo, hi := float64(blo), float64(bhi)
			if m := float64(h.min); m > lo {
				lo = m
			}
			if m := float64(h.max); m < hi {
				hi = m
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return float64(h.max)
}

// QuantileDuration is Quantile as a time.Duration.
func (h *Hist) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}
