// Package loadgen is an open-loop load harness for the simulated Bullet
// deployment: it schedules Poisson (or trace-driven) arrivals on the
// virtual clock, drives the paper's workload mixture through the real
// client/RPC/service/engine/disk stack, and records full latency
// distributions per operation kind.
//
// Open loop means arrival times are fixed in advance, independent of how
// the server is doing — the aggregate of thousands of independent clients,
// none of which knows the server is slow. The closed-loop generators in
// internal/bench (one client, next request after this reply) measure the
// paper's tables faithfully but cannot see overload at all: a stalled
// server slows its own offered load, so the measured latencies silently
// omit exactly the requests that would have hurt (coordinated omission).
// Here a request that arrives while the server is saturated waits — or is
// shed — and its full latency is recorded either way.
//
// Mechanically the runner is a discrete-event simulation in arrival order.
// Every request really executes against the engine (bytes move, caches
// fill, checksums verify, replicas commit); the simulated network
// (internal/simnet) reports each dispatch's virtual-time decomposition —
// request flight, server occupancy, reply flight — and the runner replays
// those costs onto an open-loop timeline: a request arriving at A starts
// service at S = max(A + flight, server free), completes at C = S +
// occupancy, and its reply lands at C + flight back. Latency is measured
// from A, so time spent queued counts. Service is FIFO over a configurable
// number of channels, which keeps the real execution order identical to
// the modeled service order and the whole run deterministic under a seed.
//
// When the target service has an admission limiter (bulletsvc.Admission),
// the runner mirrors virtual in-flight into it: the service claims a token
// at dispatch and the runner releases it when the request's simulated
// service completes, so the server's own shed decisions — StatusBusy past
// the in-flight limit — happen at exactly the occupancy an open-loop
// deployment would see.
package loadgen

import (
	"errors"
	"fmt"
	"time"

	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
	"bulletfs/internal/simnet"
	"bulletfs/internal/workload"
)

// ErrConfig marks a Run call whose target or configuration is unusable.
var ErrConfig = errors.New("loadgen: invalid configuration")

// Target is the simulated deployment under load.
type Target struct {
	// Net is the simulated network in front of the service.
	Net *simnet.Net
	// Port addresses the Bullet server.
	Port capability.Port
	// Admission, when non-nil, is the service's in-flight limiter. Run
	// switches it to manual release and retires its tokens on the virtual
	// timeline (see the package comment).
	Admission *bulletsvc.Admission
}

// Config tunes one open-loop run.
type Config struct {
	// Arrivals schedules the requests (required).
	Arrivals ArrivalSource
	// Ops is the number of arrivals (default 1000).
	Ops int
	// Channels is how many requests the server works on concurrently
	// (default 1: the paper's single-CPU, single-arm server; raise it to
	// model the PR 3 parallel read path on more cores).
	Channels int
	// Workload tunes the operation mixture and file-size distribution.
	Workload workload.Config
	// PFactor is the paranoia factor of creates (default 2).
	PFactor int
	// OnArrival, when set, runs before dispatching arrival i — the chaos
	// regime injects disk faults and replica kill/revive here, keyed to
	// deterministic arrival indexes.
	OnArrival func(i int)
}

// Result summarizes one run. All histograms are in nanoseconds of virtual
// time.
type Result struct {
	Arrivals int // requests scheduled
	Admitted int // requests the server accepted (whatever their status)
	Shed     int // requests refused with StatusBusy by admission control
	Errors   int // admitted requests that returned a non-OK status
	Skipped  int // events with no live file to address (bookkeeping, not dispatched)

	Duration time.Duration // virtual time from zero to the last reply
	Offered  float64       // scheduled arrivals per virtual second
	Achieved float64       // admitted completions per virtual second

	MaxOutstanding int // peak simultaneously outstanding admitted requests

	Latency *Hist // end-to-end latency of admitted requests (arrival to reply)
	Wait    *Hist // queueing delay of admitted requests (server arrival to service start)
	ShedLat *Hist // turnaround of shed requests (immediate busy reply)

	PerOp map[workload.Op]*Hist // end-to-end latency by operation kind
}

// filePayload builds a deterministic file body: size bytes, contents keyed
// by a salt so distinct creates store distinct data.
func filePayload(size, salt int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(i*31 + salt*7 + 1)
	}
	return out
}

// minHeap is a binary min-heap of virtual times.
type minHeap struct{ ts []time.Duration }

func (h *minHeap) len() int { return len(h.ts) }

func (h *minHeap) min() time.Duration { return h.ts[0] }

func (h *minHeap) push(t time.Duration) {
	h.ts = append(h.ts, t)
	i := len(h.ts) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ts[p] <= h.ts[i] {
			break
		}
		h.ts[p], h.ts[i] = h.ts[i], h.ts[p]
		i = p
	}
}

func (h *minHeap) popMin() time.Duration {
	top := h.ts[0]
	last := len(h.ts) - 1
	h.ts[0] = h.ts[last]
	h.ts = h.ts[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.ts) && h.ts[l] < h.ts[small] {
			small = l
		}
		if r < len(h.ts) && h.ts[r] < h.ts[small] {
			small = r
		}
		if small == i {
			break
		}
		h.ts[i], h.ts[small] = h.ts[small], h.ts[i]
		i = small
	}
	return top
}

// Run executes one open-loop experiment and returns its measurements. The
// run is deterministic: same target state, same config, same result.
func Run(t Target, cfg Config) (*Result, error) {
	if t.Net == nil {
		return nil, fmt.Errorf("%w: nil target network", ErrConfig)
	}
	if cfg.Arrivals == nil {
		return nil, fmt.Errorf("%w: no arrival source configured", ErrConfig)
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 1000
	}
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	if cfg.PFactor <= 0 {
		cfg.PFactor = 2
	}
	if t.Admission != nil {
		t.Admission.SetManualRelease(true)
	}

	gen := workload.New(cfg.Workload)
	sizes := gen.Population()
	events := gen.Trace(cfg.Ops)

	// Seed the file population. Setup is closed-loop and untimed: each
	// create's admission token is released immediately, so seeding can
	// never trip the limiter or skew the measured run.
	caps := make([]capability.Capability, len(sizes))
	live := make([]bool, len(sizes))
	liveCount := 0
	for i, size := range sizes {
		req := rpc.Header{Command: bulletsvc.CmdCreate, Arg: uint64(cfg.PFactor)}
		rep, _, _, err := t.Net.TransParts(t.Port, req, filePayload(size, i))
		if err != nil {
			return nil, fmt.Errorf("loadgen: seeding file %d: %w", i, err)
		}
		if rep.Status != rpc.StatusOK {
			return nil, fmt.Errorf("loadgen: seeding file %d: %w", i, bulletsvc.ErrorOf(rep.Status))
		}
		caps[i] = rep.Cap
		live[i] = true
		liveCount++
		if t.Admission != nil {
			t.Admission.Release()
		}
	}

	res := &Result{
		Latency: NewHist(),
		Wait:    NewHist(),
		ShedLat: NewHist(),
		PerOp:   make(map[workload.Op]*Hist),
	}
	perOp := func(op workload.Op) *Hist {
		h, ok := res.PerOp[op]
		if !ok {
			h = NewHist()
			res.PerOp[op] = h
		}
		return h
	}

	// redirect returns a live file index at or after i (wrapping), or -1.
	redirect := func(i int) int {
		if liveCount == 0 {
			return -1
		}
		for k := 0; k < len(live); k++ {
			j := (i + k) % len(live)
			if live[j] {
				return j
			}
		}
		return -1
	}

	clock := t.Net.Clock()
	var channels minHeap // per-channel next-free times
	for i := 0; i < cfg.Channels; i++ {
		channels.push(0)
	}
	var completions minHeap // admitted requests' service-completion times
	var lastArrival, lastReply time.Duration

	for i, ev := range events {
		arrive := cfg.Arrivals.Next()
		lastArrival = arrive
		res.Arrivals++
		// Align the shared stopwatch with the arrival timeline, then
		// retire every request whose simulated service has completed by
		// now — their admission tokens free the server for this one.
		clock.AdvanceTo(arrive)
		for completions.len() > 0 && completions.min() <= arrive {
			completions.popMin()
			if t.Admission != nil {
				t.Admission.Release()
			}
		}
		if cfg.OnArrival != nil {
			cfg.OnArrival(i)
		}

		// Build the request. Reads and deletes address a live file
		// (redirected to the nearest live slot when the drawn one is
		// deleted); creates replace their slot's capability. Files
		// displaced by a create are left to the server — an arrival is
		// exactly one RPC, and the immutable store reclaims them at the
		// 3 a.m. compaction like the paper says.
		var req rpc.Header
		var body []byte
		target := ev.File
		switch ev.Op {
		case workload.OpCreate:
			req = rpc.Header{Command: bulletsvc.CmdCreate, Arg: uint64(cfg.PFactor)}
			body = filePayload(ev.Size, len(sizes)+i)
		default:
			target = redirect(ev.File)
			if target < 0 {
				res.Skipped++
				continue
			}
			switch ev.Op {
			case workload.OpWholeRead:
				req = rpc.Header{Command: bulletsvc.CmdRead, Cap: caps[target]}
			case workload.OpPartRead:
				req = rpc.Header{Command: bulletsvc.CmdReadRange, Cap: caps[target], Arg: 0, Arg2: uint64(ev.N)}
			case workload.OpDelete:
				req = rpc.Header{Command: bulletsvc.CmdDelete, Cap: caps[target]}
			default:
				res.Skipped++
				continue
			}
		}

		var shedBefore int64
		if t.Admission != nil {
			shedBefore = t.Admission.Shed()
		}
		rep, _, parts, err := t.Net.TransParts(t.Port, req, body)
		if err != nil {
			return nil, fmt.Errorf("loadgen: arrival %d: %w", i, err)
		}
		if t.Admission != nil && t.Admission.Shed() > shedBefore {
			// Refused at the door: the busy reply turns around in pure
			// network-plus-dispatch time, no queueing, no service channel.
			res.Shed++
			res.ShedLat.RecordDuration(parts.Total())
			if reply := arrive + parts.Total(); reply > lastReply {
				lastReply = reply
			}
			continue
		}

		// Admitted: replay the measured costs onto the open-loop timeline.
		serverArrive := arrive + parts.NetOut
		start := serverArrive
		if free := channels.popMin(); free > start {
			start = free
		}
		complete := start + parts.Server
		channels.push(complete)
		completions.push(complete)
		if completions.len() > res.MaxOutstanding {
			res.MaxOutstanding = completions.len()
		}
		reply := complete + parts.NetBack
		if reply > lastReply {
			lastReply = reply
		}

		res.Admitted++
		res.Latency.RecordDuration(reply - arrive)
		res.Wait.RecordDuration(start - serverArrive)
		perOp(ev.Op).RecordDuration(reply - arrive)
		if rep.Status != rpc.StatusOK {
			res.Errors++
			continue
		}
		switch ev.Op {
		case workload.OpCreate:
			if !live[ev.File] {
				live[ev.File] = true
				liveCount++
			}
			caps[ev.File] = rep.Cap
		case workload.OpDelete:
			live[target] = false
			liveCount--
		}
	}

	// Drain: release the tokens of requests still in simulated flight so
	// the limiter reads zero between runs sharing one world.
	for completions.len() > 0 {
		completions.popMin()
		if t.Admission != nil {
			t.Admission.Release()
		}
	}

	res.Duration = lastReply
	if lastArrival > 0 {
		res.Offered = float64(res.Arrivals) / lastArrival.Seconds()
	}
	if lastReply > 0 {
		res.Achieved = float64(res.Admitted) / lastReply.Seconds()
	}
	return res, nil
}
