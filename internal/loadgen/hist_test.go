package loadgen

import (
	"math"
	"testing"
	"time"
)

// Every recordable value must land in a bucket whose bounds contain it and
// whose width keeps the relative error under 1/2^subBits.
func TestHistBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 1000, 4096, 1 << 20, 1<<40 + 12345, math.MaxInt64 / 2}
	for v := int64(1); v < 1<<30; v = v*3 + 1 {
		vals = append(vals, v)
	}
	for _, v := range vals {
		i := bucketOf(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d not in bucket %d bounds [%d,%d]", v, i, lo, hi)
		}
		if width := hi - lo; width > 0 && float64(width) > float64(lo)/float64(subCount)*2 {
			t.Fatalf("bucket %d for %d too wide: [%d,%d]", i, v, lo, hi)
		}
	}
	// Bucket indexes must be monotonic in the value.
	prev := -1
	for v := int64(0); v < 1<<16; v++ {
		i := bucketOf(v)
		if i < prev {
			t.Fatalf("bucketOf not monotonic at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	for v := int64(1); v <= 10000; v++ {
		h.Record(v)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5000}, {0.9, 9000}, {0.99, 9900}, {0.999, 9990}} {
		got := h.Quantile(tc.q)
		if err := math.Abs(got-tc.want) / tc.want; err > 0.04 {
			t.Errorf("q%.3f = %.0f, want ~%.0f (err %.1f%%)", tc.q, got, tc.want, err*100)
		}
	}
	if got := h.Quantile(1); got != 10000 {
		t.Errorf("q1 = %.0f, want max 10000", got)
	}
	if h.Min() != 1 || h.Max() != 10000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-5000.5) > 1 {
		t.Errorf("mean = %.1f", mean)
	}
}

// A histogram holding one observation reports it at every quantile — the
// interpolation must clamp to the observed range, not the bucket's.
func TestHistSingleValue(t *testing.T) {
	h := NewHist()
	h.RecordDuration(17 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := h.QuantileDuration(q); got != 17*time.Millisecond {
			t.Fatalf("q%g = %v, want 17ms", q, got)
		}
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read as zeros")
	}
}

func TestPoissonDeterministicAndCalibrated(t *testing.T) {
	a, b := NewPoisson(1000, 42), NewPoisson(1000, 42)
	var last, sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		ta, tb := a.Next(), b.Next()
		if ta != tb {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, ta, tb)
		}
		if ta < last {
			t.Fatalf("arrival times went backwards: %v after %v", ta, last)
		}
		last = ta
	}
	sum = last
	meanGap := float64(sum) / n
	want := float64(time.Millisecond) // 1000 ops/s
	if math.Abs(meanGap-want)/want > 0.05 {
		t.Errorf("mean gap %.0fns, want ~%.0fns", meanGap, want)
	}
	if c := NewPoisson(1000, 43).Next(); c == NewPoisson(1000, 42).Next() {
		t.Error("different seeds produced identical first arrivals")
	}
}

func TestScheduleReplayAndExtrapolate(t *testing.T) {
	s := NewSchedule([]time.Duration{1 * time.Millisecond, 3 * time.Millisecond, 7 * time.Millisecond})
	got := []time.Duration{s.Next(), s.Next(), s.Next(), s.Next(), s.Next()}
	want := []time.Duration{1 * time.Millisecond, 3 * time.Millisecond, 7 * time.Millisecond, 11 * time.Millisecond, 15 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival %d = %v, want %v", i, got[i], want[i])
		}
	}
	// A decreasing trace is clamped to non-decreasing.
	d := NewSchedule([]time.Duration{5 * time.Millisecond, 2 * time.Millisecond})
	if a, b := d.Next(), d.Next(); b < a {
		t.Fatalf("schedule went backwards: %v then %v", a, b)
	}
}
