package loadgen

import (
	"math/rand"
	"time"
)

// An ArrivalSource schedules when requests arrive, in absolute virtual
// time. Arrival times are independent of how the server is doing — that is
// the definition of an open-loop generator, and the whole point: a
// closed-loop client that waits for each reply before sending the next
// request slows its own offered load exactly when the server struggles,
// hiding the overload tail (coordinated omission). Successive Next calls
// must return non-decreasing times.
type ArrivalSource interface {
	Next() time.Duration
}

// Poisson is a seeded Poisson arrival process: exponential inter-arrival
// gaps at a fixed mean rate, the classic model for the superposition of
// many independent clients (thousands of workstations each occasionally
// touching a file look Poisson in aggregate). Not safe for concurrent use.
type Poisson struct {
	rng  *rand.Rand
	mean float64 // mean gap in nanoseconds
	t    time.Duration
}

// NewPoisson returns a Poisson process offering opsPerSec (virtual)
// arrivals per second, deterministic under seed.
func NewPoisson(opsPerSec float64, seed int64) *Poisson {
	if opsPerSec <= 0 {
		opsPerSec = 1
	}
	return &Poisson{
		rng:  rand.New(rand.NewSource(seed)),
		mean: float64(time.Second) / opsPerSec,
	}
}

// Next returns the next arrival time.
func (p *Poisson) Next() time.Duration {
	p.t += time.Duration(p.rng.ExpFloat64() * p.mean)
	return p.t
}

// Schedule replays a fixed arrival-time trace (for trace-driven load:
// bursts, diurnal ramps, or a recorded production arrival log). Once the
// trace is exhausted it extrapolates by repeating the trace's final gap,
// so a Runner asked for more arrivals than the trace holds stays open-loop
// instead of panicking. Not safe for concurrent use.
type Schedule struct {
	times []time.Duration
	i     int
	last  time.Duration
	gap   time.Duration
}

// NewSchedule builds a trace-driven source from non-decreasing absolute
// arrival times.
func NewSchedule(times []time.Duration) *Schedule {
	own := make([]time.Duration, len(times))
	copy(own, times)
	s := &Schedule{times: own, gap: time.Millisecond}
	if n := len(own); n >= 2 {
		if g := own[n-1] - own[n-2]; g > 0 {
			s.gap = g
		}
	}
	return s
}

// Next returns the next arrival time.
func (s *Schedule) Next() time.Duration {
	if s.i < len(s.times) {
		t := s.times[s.i]
		s.i++
		if t < s.last {
			t = s.last
		}
		s.last = t
		return t
	}
	s.last += s.gap
	return s.last
}
