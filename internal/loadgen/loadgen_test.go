package loadgen_test

import (
	"testing"

	"bulletfs/internal/bench"
	"bulletfs/internal/hwmodel"
	"bulletfs/internal/loadgen"
	"bulletfs/internal/workload"
)

func newWorld(t *testing.T, limit int) *bench.BulletWorld {
	t.Helper()
	w, err := bench.NewBulletWorld(bench.BulletConfig{
		Profile:        hwmodel.AmoebaProfile(),
		AdmissionLimit: limit,
	})
	if err != nil {
		t.Fatalf("building world: %v", err)
	}
	return w
}

// Below saturation, an open-loop run against an admission-limited server
// must complete with zero client-visible errors and zero sheds.
func TestRunSteadyCleanBelowSaturation(t *testing.T) {
	w := newWorld(t, 32)
	res, err := loadgen.Run(
		loadgen.Target{Net: w.Net, Port: w.Port, Admission: w.Admission},
		loadgen.Config{
			Arrivals: loadgen.NewPoisson(25, 1),
			Ops:      400,
			Workload: workload.Config{Files: 64, Seed: 7},
		},
	)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Arrivals != 400 {
		t.Errorf("arrivals = %d, want 400", res.Arrivals)
	}
	if res.Shed != 0 {
		t.Errorf("shed = %d below saturation, want 0", res.Shed)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
	if res.Admitted+res.Skipped != res.Arrivals {
		t.Errorf("admitted %d + skipped %d != arrivals %d", res.Admitted, res.Skipped, res.Arrivals)
	}
	if got := res.Latency.Count(); got != int64(res.Admitted) {
		t.Errorf("latency samples = %d, admitted = %d", got, res.Admitted)
	}
	if res.Latency.Quantile(0.5) <= 0 {
		t.Error("p50 latency is zero")
	}
	if res.Duration <= 0 || res.Offered <= 0 || res.Achieved <= 0 {
		t.Errorf("rates not computed: dur=%v offered=%.1f achieved=%.1f", res.Duration, res.Offered, res.Achieved)
	}
	if got := w.Admission.InFlight(); got != 0 {
		t.Errorf("limiter in-flight after run = %d, want 0", got)
	}
	if len(res.PerOp) == 0 {
		t.Error("no per-op histograms recorded")
	}
	var perOpTotal int64
	for _, h := range res.PerOp {
		perOpTotal += h.Count()
	}
	if perOpTotal != int64(res.Admitted) {
		t.Errorf("per-op samples = %d, admitted = %d", perOpTotal, res.Admitted)
	}
}

// Far past saturation, the server must shed with StatusBusy instead of
// queueing without bound: in-flight stays at the limit, sheds are counted,
// and admitted requests still complete without error.
func TestRunOverloadShedsBoundedly(t *testing.T) {
	const limit = 4
	w := newWorld(t, limit)
	res, err := loadgen.Run(
		loadgen.Target{Net: w.Net, Port: w.Port, Admission: w.Admission},
		loadgen.Config{
			Arrivals: loadgen.NewPoisson(500, 3),
			Ops:      400,
			Workload: workload.Config{Files: 64, Seed: 11},
		},
	)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Shed == 0 {
		t.Error("no sheds at 500 ops/s against a limit of 4")
	}
	if res.Errors != 0 {
		t.Errorf("admitted requests errored: %d", res.Errors)
	}
	if res.MaxOutstanding > limit {
		t.Errorf("outstanding admitted requests peaked at %d, limit %d", res.MaxOutstanding, limit)
	}
	if got := w.Admission.Peak(); got > limit {
		t.Errorf("limiter peak = %d, limit %d", got, limit)
	}
	if got := w.Admission.InFlight(); got != 0 {
		t.Errorf("limiter in-flight after run = %d, want 0", got)
	}
	if got := w.Admission.Shed(); got != int64(res.Shed) {
		t.Errorf("limiter shed counter = %d, result shed = %d", got, res.Shed)
	}
	if res.ShedLat.Count() != int64(res.Shed) {
		t.Errorf("shed turnaround samples = %d, sheds = %d", res.ShedLat.Count(), res.Shed)
	}
}

// Without an admission limiter the open-loop timeline still works: load
// past capacity queues, so waiting time dominates the tail.
func TestRunUnlimitedQueues(t *testing.T) {
	w := newWorld(t, 0)
	if w.Admission != nil {
		t.Fatal("world built an admission limiter without a limit")
	}
	res, err := loadgen.Run(
		loadgen.Target{Net: w.Net, Port: w.Port},
		loadgen.Config{
			Arrivals: loadgen.NewPoisson(500, 5),
			Ops:      300,
			Workload: workload.Config{Files: 64, Seed: 13},
		},
	)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Shed != 0 {
		t.Errorf("shed = %d without a limiter", res.Shed)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	// Open loop at 5x+ capacity: the queue grows without bound for the
	// whole run, so latency climbs roughly linearly with arrival index
	// (p99 ~2x p50) and the tail is pure waiting, not service.
	p50, p99 := res.Latency.Quantile(0.5), res.Latency.Quantile(0.99)
	if p99 < 3*p50/2 {
		t.Errorf("overload tail too flat: p50=%.0fns p99=%.0fns", p50, p99)
	}
	if wait := res.Wait.Quantile(0.99); wait < p99/2 {
		t.Errorf("tail not dominated by queueing: wait p99=%.0fns, latency p99=%.0fns", wait, p99)
	}
}

// Two identical worlds under the same seeds must measure exactly the same
// distributions — the SLO gate in CI depends on this.
func TestRunDeterministic(t *testing.T) {
	run := func() *loadgen.Result {
		w := newWorld(t, 8)
		res, err := loadgen.Run(
			loadgen.Target{Net: w.Net, Port: w.Port, Admission: w.Admission},
			loadgen.Config{
				Arrivals: loadgen.NewPoisson(120, 9),
				Ops:      300,
				Workload: workload.Config{Files: 64, Seed: 17},
			},
		)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Admitted != b.Admitted || a.Shed != b.Shed || a.Errors != b.Errors || a.Skipped != b.Skipped {
		t.Fatalf("counts diverged: %+v vs %+v", a, b)
	}
	if a.Duration != b.Duration {
		t.Fatalf("durations diverged: %v vs %v", a.Duration, b.Duration)
	}
	for _, q := range []float64{0.5, 0.99, 0.999, 1} {
		if a.Latency.Quantile(q) != b.Latency.Quantile(q) {
			t.Fatalf("q%g diverged: %.0f vs %.0f", q, a.Latency.Quantile(q), b.Latency.Quantile(q))
		}
	}
}
