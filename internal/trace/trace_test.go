package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCtxNilSafe(t *testing.T) {
	var c *Ctx
	c.Reset(1)
	sp := c.Begin(nil, LayerRPC, OpRequest)
	if sp != nil {
		t.Fatalf("nil Ctx Begin returned %v, want nil", sp)
	}
	c.End(sp)
	c.Add(nil, LayerDisk, OpDiskRead, time.Now(), 5)
	c.Finish()
	if c.Active() {
		t.Fatal("nil Ctx reports Active")
	}
}

func TestCtxSpanTreeShape(t *testing.T) {
	rec := NewRecorder(WithCapacity(4, 4))
	c := rec.AcquireCtx()
	defer rec.ReleaseCtx(c)

	c.Reset(0xabcd)
	root := c.Begin(nil, LayerRPC, OpRequest)
	root.Cmd = 2
	eng := c.Begin(root, LayerEngine, OpRead)
	eng.Inode = 7
	eng.Bytes = 4096
	look := c.Begin(eng, LayerCache, OpCacheLookup)
	look.CacheHit = CacheMiss
	c.End(look)
	c.End(eng)
	c.End(root)
	c.Finish()

	got := rec.Recent()
	if len(got) != 1 {
		t.Fatalf("recent ring has %d traces, want 1", len(got))
	}
	tr := got[0]
	if tr.ID != 0xabcd || tr.N != 3 {
		t.Fatalf("trace ID=%x N=%d, want ID=abcd N=3", tr.ID, tr.N)
	}
	if tr.Spans[0].Parent != NoParent {
		t.Fatalf("root parent = %d, want NoParent", tr.Spans[0].Parent)
	}
	if tr.Spans[1].Parent != tr.Spans[0].ID || tr.Spans[2].Parent != tr.Spans[1].ID {
		t.Fatal("span parent chain broken")
	}
	for i := 0; i < tr.N; i++ {
		if tr.Spans[i].Dur < 0 {
			t.Fatalf("span %d still pending after End", i)
		}
	}
	if tr.Spans[2].CacheHit != CacheMiss {
		t.Fatal("cache-hit attribute lost")
	}
	if tr.Start != tr.Spans[0].Start {
		t.Fatal("trace Start != root span Start")
	}
}

func TestCtxArenaOverflowSetsDropped(t *testing.T) {
	rec := NewRecorder(WithCapacity(2, 2))
	c := rec.AcquireCtx()
	defer rec.ReleaseCtx(c)

	c.Reset(1)
	root := c.Begin(nil, LayerRPC, OpRequest)
	for i := 0; i < MaxSpans+5; i++ {
		sp := c.Begin(root, LayerEngine, OpRead)
		c.End(sp)
	}
	c.End(root)
	c.Finish()
	got := rec.Recent()
	if len(got) != 1 || !got[0].Dropped || got[0].N != MaxSpans {
		t.Fatalf("overflow trace: len=%d dropped=%v n=%d, want 1/true/%d",
			len(got), got[0].Dropped, got[0].N, MaxSpans)
	}
}

func TestRecorderOverwritesOldest(t *testing.T) {
	rec := NewRecorder(WithCapacity(3, 1))
	for i := 1; i <= 5; i++ {
		c := rec.AcquireCtx()
		c.Reset(uint64(i))
		c.End(c.Begin(nil, LayerRPC, OpRequest))
		c.Finish()
		rec.ReleaseCtx(c)
	}
	got := rec.Recent()
	if len(got) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(got))
	}
	ids := map[uint64]bool{}
	for _, tr := range got {
		ids[tr.ID] = true
	}
	for _, want := range []uint64{3, 4, 5} {
		if !ids[want] {
			t.Fatalf("ring %v missing trace %d (oldest not overwritten?)", ids, want)
		}
	}
	if rec.Recorded() != 5 {
		t.Fatalf("Recorded()=%d, want 5", rec.Recorded())
	}
}

func TestSlowClassificationAndLog(t *testing.T) {
	var buf bytes.Buffer
	logBuf := &syncWriter{w: &buf}
	rec := NewRecorder(
		WithCapacity(8, 8),
		WithSlowThreshold(time.Millisecond),
		WithSlowLog(logBuf),
	)

	// Fast trace: under threshold, recent only.
	c := rec.AcquireCtx()
	c.Reset(1)
	c.End(c.Begin(nil, LayerRPC, OpRequest))
	c.Finish()

	// Slow trace: synthesize a 5ms root via Add.
	c.Reset(2)
	c.Add(nil, LayerRPC, OpRequest, time.Now(), int64(5*time.Millisecond))
	c.Finish()
	rec.ReleaseCtx(c)
	rec.Close() // joins the drain goroutine: log is complete after this

	if got := rec.SlowCount(); got != 1 {
		t.Fatalf("SlowCount=%d, want 1", got)
	}
	slow := rec.Slow()
	if len(slow) != 1 || slow[0].ID != 2 {
		t.Fatalf("slow ring = %+v, want one trace with ID 2", slow)
	}
	line := logBuf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("slow log is not one line: %q", line)
	}
	if !strings.Contains(line, `"id":"0000000000000002"`) {
		t.Fatalf("slow log line missing trace id: %q", line)
	}
}

// syncWriter makes a bytes.Buffer safe to share between the drain
// goroutine and the test.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer // guarded by mu
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.String()
}

func TestRecorderCloseIdempotent(t *testing.T) {
	rec := NewRecorder(WithSlowLog(&syncWriter{w: &bytes.Buffer{}}))
	rec.Close()
	rec.Close() // must not panic or deadlock
	// Recording after Close must not send on the closed channel.
	rec.SetSlowThreshold(time.Nanosecond)
	c := rec.AcquireCtx()
	c.Reset(9)
	c.Add(nil, LayerRPC, OpRequest, time.Now(), int64(time.Second))
	c.Finish()
	if len(rec.Slow()) != 1 {
		t.Fatal("slow ring should still accept traces after Close")
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	rec := NewRecorder(WithCapacity(16, 4), WithSlowThreshold(time.Nanosecond))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c := rec.AcquireCtx()
			defer rec.ReleaseCtx(c)
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Reset(seed<<32 | i)
				root := c.Begin(nil, LayerRPC, OpRequest)
				c.End(c.Begin(root, LayerEngine, OpRead))
				c.End(root)
				c.Finish()
			}
		}(uint64(w))
	}
	for i := 0; i < 50; i++ {
		for _, tr := range rec.Recent() {
			if tr.N < 1 || tr.N > MaxSpans {
				t.Errorf("torn trace: N=%d", tr.N)
			}
		}
		rec.Slow()
	}
	close(stop)
	wg.Wait()
}

func TestJSONRoundTrip(t *testing.T) {
	rec := NewRecorder(WithCapacity(2, 2))
	c := rec.AcquireCtx()
	c.Reset(0xdeadbeef)
	root := c.Begin(nil, LayerRPC, OpRequest)
	root.Cmd = 3
	disk := c.Begin(root, LayerDisk, OpDiskRead)
	disk.Replica = 1
	disk.Bytes = 512
	c.End(disk)
	c.Add(root, LayerDisk, OpReplicaCommit, time.Now(), DurPending)
	c.End(root)
	c.Finish()
	rec.ReleaseCtx(c)

	payload, err := EncodeTraces(rec.Recent())
	if err != nil {
		t.Fatalf("EncodeTraces: %v", err)
	}
	jts, err := DecodeTraces(payload)
	if err != nil {
		t.Fatalf("DecodeTraces: %v", err)
	}
	if len(jts) != 1 {
		t.Fatalf("decoded %d traces, want 1", len(jts))
	}
	jt := jts[0]
	if jt.ID != "00000000deadbeef" {
		t.Fatalf("trace id %q, want 00000000deadbeef", jt.ID)
	}
	if len(jt.Spans) != 3 {
		t.Fatalf("decoded %d spans, want 3", len(jt.Spans))
	}
	if jt.Spans[0].Parent != -1 || jt.Spans[0].Layer != "rpc" || jt.Spans[0].Op != "request" {
		t.Fatalf("root span decoded wrong: %+v", jt.Spans[0])
	}
	if jt.Spans[1].Replica != 1 || jt.Spans[1].Op != "disk-read" {
		t.Fatalf("disk span decoded wrong: %+v", jt.Spans[1])
	}
	if jt.Spans[2].Dur != -1 {
		t.Fatalf("pending span Dur = %d, want -1", jt.Spans[2].Dur)
	}
}

func TestDecodeTracesRejectsGarbage(t *testing.T) {
	if _, err := DecodeTraces([]byte("{not json")); err == nil {
		t.Fatal("DecodeTraces accepted garbage")
	}
}

func TestRenderTree(t *testing.T) {
	jt := &JSONTrace{
		ID:    "000000000000002a",
		Start: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC).UnixNano(),
		Spans: []JSONSpan{
			{ID: 0, Parent: -1, Layer: "rpc", Op: "request", Cmd: 2, Dur: 1_000_000, Replica: -1},
			{ID: 1, Parent: 0, Layer: "engine", Op: "read", Inode: 7, Dur: 800_000, Replica: -1},
			{ID: 2, Parent: 1, Layer: "cache", Op: "cache-lookup", CacheHit: "miss", Dur: 10_000, Replica: -1},
			{ID: 3, Parent: 1, Layer: "disk", Op: "disk-read", Replica: 0, Dur: 700_000},
			{ID: 4, Parent: 0, Layer: "disk", Op: "replica-commit", Replica: 1, Dur: -1},
		},
	}
	var buf bytes.Buffer
	RenderTree(&buf, jt)
	out := buf.String()
	for _, want := range []string{
		"trace 000000000000002a",
		"request cmd=2",
		"inode=7",
		"cache=miss",
		"replica=0",
		"pending",
		"self-time by layer:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// Self-time: engine = 800µs − 10µs − 700µs = 90µs.
	if !strings.Contains(out, "engine 90µs") {
		t.Errorf("engine self-time wrong:\n%s", out)
	}
	// rpc self = 1ms − 800µs (pending child excluded) = 200µs.
	if !strings.Contains(out, "rpc 200µs") {
		t.Errorf("rpc self-time wrong:\n%s", out)
	}
}

func TestEnumStringsTotal(t *testing.T) {
	for l := Layer(0); l < layerCount; l++ {
		if strings.Contains(l.String(), "?") {
			t.Errorf("layer %d has no name", l)
		}
	}
	for o := Op(0); o < opCount; o++ {
		if strings.Contains(o.String(), "?") {
			t.Errorf("op %d has no name", o)
		}
	}
	if Layer(250).String() != "layer?" || Op(250).String() != "op?" {
		t.Error("out-of-range enums must not panic")
	}
}

// TestSpanRecordingAllocFree proves the arena claim: a full
// begin/attribute/end/finish cycle allocates nothing. The CI workflow
// runs this under -race as well.
func TestSpanRecordingAllocFree(t *testing.T) {
	rec := NewRecorder(WithCapacity(8, 8))
	c := rec.AcquireCtx()
	defer rec.ReleaseCtx(c)
	allocs := testing.AllocsPerRun(200, func() {
		c.Reset(42)
		root := c.Begin(nil, LayerRPC, OpRequest)
		root.Cmd = 2
		eng := c.Begin(root, LayerEngine, OpRead)
		eng.Inode = 9
		look := c.Begin(eng, LayerCache, OpCacheLookup)
		look.CacheHit = CacheHit
		c.End(look)
		c.End(eng)
		c.End(root)
		c.Finish()
	})
	if allocs != 0 {
		t.Fatalf("span recording allocates %v per op, want 0", allocs)
	}
}
