package trace

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Default ring capacities. Fixed at construction: the recorder's memory
// footprint is capacity * sizeof(Trace) and never grows.
const (
	DefaultRecentTraces = 256
	DefaultSlowTraces   = 64
)

// slot is one ring entry. ver is a claim word: even = stable, odd =
// someone (writer or reader) owns the slot. Writers and readers both
// claim with a CAS and back off on failure instead of blocking, so the
// ring is non-blocking under contention and every access to t is ordered
// by the atomic — no torn traces, clean under the race detector.
type slot struct {
	ver atomic.Uint64
	t   Trace
}

// ring is a fixed-size overwrite-oldest trace buffer.
type ring struct {
	slots []slot
	next  atomic.Uint64
}

func newRing(n int) ring {
	if n < 1 {
		n = 1
	}
	return ring{slots: make([]slot, n)}
}

// put copies t into the next slot. Returns false (dropping t) if the slot
// is momentarily claimed by a reader or a colliding writer — overwriting
// history is acceptable, blocking the request path is not.
func (r *ring) put(t *Trace) bool {
	i := r.next.Add(1) - 1
	s := &r.slots[i%uint64(len(r.slots))]
	v := s.ver.Load()
	if v&1 != 0 || !s.ver.CompareAndSwap(v, v+1) {
		return false
	}
	s.t = *t
	s.ver.Store(v + 2)
	return true
}

// snapshot appends a copy of every stable slot to dst, oldest first by
// root start time. Slots claimed mid-copy are skipped, not waited on.
func (r *ring) snapshot(dst []Trace) []Trace {
	for i := range r.slots {
		s := &r.slots[i]
		v := s.ver.Load()
		if v == 0 || v&1 != 0 || !s.ver.CompareAndSwap(v, v+1) {
			continue
		}
		dst = append(dst, s.t)
		s.ver.Store(v)
	}
	sortTracesByStart(dst)
	return dst
}

func sortTracesByStart(ts []Trace) {
	// Insertion sort: rings hold a few hundred entries at most and are
	// already mostly ordered; avoids pulling in sort's interface boxing.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j-1].Start > ts[j].Start; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}

// Recorder is the flight recorder: an always-on pair of trace rings
// (recent and slow) plus an optional slow-request log. One Recorder
// serves the whole process; connections borrow Ctx arenas from it.
type Recorder struct {
	recent ring
	slow   ring

	// slowNS is the slow-request threshold in nanoseconds. 0 disables
	// slow classification.
	slowNS atomic.Int64

	recorded atomic.Int64 // traces flushed into the recent ring
	slowSeen atomic.Int64 // traces classified slow
	dropped  atomic.Int64 // ring-slot collisions (trace copy lost)

	localID atomic.Uint64 // server-assigned trace IDs (see NextLocalID)

	ctxPool sync.Pool

	logMu     sync.Mutex
	logClosed bool       // guarded by logMu
	logCh     chan Trace // guarded by logMu (send side; drain owns receive)
	logDone   chan struct{}
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithSlowThreshold sets the slow-request threshold. Traces whose root
// span duration meets or exceeds d go to the slow ring (and the slow log,
// if one is attached). d <= 0 disables slow classification.
func WithSlowThreshold(d time.Duration) Option {
	return func(r *Recorder) { r.slowNS.Store(int64(d)) }
}

// WithSlowLog attaches w as the slow-request log: every slow trace is
// written to w as one line of JSON by a background drain goroutine, so
// log I/O never runs on a request goroutine. Close stops the goroutine.
func WithSlowLog(w io.Writer) Option {
	return func(r *Recorder) {
		r.logCh = make(chan Trace, 32)
		r.logDone = make(chan struct{})
		go drainSlowLog(w, r.logCh, r.logDone)
	}
}

// WithCapacity overrides the recent/slow ring sizes (values < 1 become 1).
func WithCapacity(recent, slow int) Option {
	return func(r *Recorder) {
		r.recent = newRing(recent)
		r.slow = newRing(slow)
	}
}

// NewRecorder returns a recorder with default ring sizes and no slow log.
func NewRecorder(opts ...Option) *Recorder {
	r := &Recorder{
		recent: newRing(DefaultRecentTraces),
		slow:   newRing(DefaultSlowTraces),
	}
	for _, o := range opts {
		o(r)
	}
	r.ctxPool.New = func() any { return &Ctx{rec: r} }
	return r
}

// drainSlowLog writes queued slow traces until ch is closed (by
// Recorder.Close). The two-value receive is the loop's only exit.
func drainSlowLog(w io.Writer, ch chan Trace, done chan struct{}) {
	defer close(done)
	for {
		t, ok := <-ch
		if !ok {
			return
		}
		line, err := appendJSONLine(nil, &t)
		if err != nil {
			continue
		}
		w.Write(line)
	}
}

// AcquireCtx borrows a span arena. Connections hold one Ctx for their
// lifetime and Reset it per request; return it with ReleaseCtx.
func (r *Recorder) AcquireCtx() *Ctx {
	if r == nil {
		return nil
	}
	c := r.ctxPool.Get().(*Ctx)
	c.t.N = 0
	return c
}

// ReleaseCtx returns a Ctx to the pool. Nil-safe.
func (r *Recorder) ReleaseCtx(c *Ctx) {
	if r == nil || c == nil {
		return
	}
	r.ctxPool.Put(c)
}

// LocalIDBit is set on trace IDs the server assigned itself because the
// client did not propagate one, keeping them distinguishable from (and
// collision-free with) client-generated IDs, which have the top bit clear.
const LocalIDBit = uint64(1) << 63

// NextLocalID returns a fresh server-assigned trace ID.
func (r *Recorder) NextLocalID() uint64 { return LocalIDBit | r.localID.Add(1) }

// SetSlowThreshold adjusts the slow threshold at runtime.
func (r *Recorder) SetSlowThreshold(d time.Duration) { r.slowNS.Store(int64(d)) }

// SlowThreshold returns the current slow threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	return time.Duration(r.slowNS.Load())
}

// record files a finished trace: always into the recent ring, and into
// the slow ring (plus the slow log, non-blocking) when the root span
// meets the threshold. Called once per request by Ctx.Finish.
func (r *Recorder) record(t *Trace) {
	if !r.recent.put(t) {
		r.dropped.Add(1)
	}
	r.recorded.Add(1)

	thr := r.slowNS.Load()
	if thr <= 0 {
		return
	}
	root := t.Root()
	if root == nil || root.Dur < thr {
		return
	}
	r.slowSeen.Add(1)
	if !r.slow.put(t) {
		r.dropped.Add(1)
	}
	r.logMu.Lock()
	if r.logCh != nil && !r.logClosed {
		select {
		case r.logCh <- *t:
		default: // log writer is behind; drop rather than stall
			r.dropped.Add(1)
		}
	}
	r.logMu.Unlock()
}

// Recent returns copies of the traces currently in the recent ring,
// oldest first.
func (r *Recorder) Recent() []Trace {
	if r == nil {
		return nil
	}
	return r.recent.snapshot(nil)
}

// Slow returns copies of the traces currently in the slow ring, oldest
// first.
func (r *Recorder) Slow() []Trace {
	if r == nil {
		return nil
	}
	return r.slow.snapshot(nil)
}

// Recorded returns the number of traces flushed since start.
func (r *Recorder) Recorded() int64 { return r.recorded.Load() }

// SlowCount returns the number of traces classified slow since start.
func (r *Recorder) SlowCount() int64 { return r.slowSeen.Load() }

// DroppedCount returns ring-collision and log-backpressure drops.
func (r *Recorder) DroppedCount() int64 { return r.dropped.Load() }

// Close stops the slow-log drain goroutine (if any) and waits for it to
// finish the queued writes. The recorder's rings stay readable.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.logMu.Lock()
	ch := r.logCh
	closed := r.logClosed
	r.logClosed = true
	r.logMu.Unlock()
	if ch == nil || closed {
		return
	}
	close(ch)
	<-r.logDone
}
