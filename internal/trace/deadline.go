package trace

import (
	"errors"
	"time"
)

// Deadline budgets ride on the Ctx because the Ctx is the one value that
// already travels with a request through every layer — rpc dispatch,
// service, engine, cache, disk — without this package importing any of
// them. A budget is armed once at dispatch (from the wire TLV) and
// checked at the points where a request is about to commit to expensive
// work: the cache-fault disk read and the replica-commit write-through.
//
// The check points are deliberately *before* the work, never inside a
// wait: cancelling a commit after its writes have launched would let the
// caller roll back an allocation that background writes still land in.
// A request that beats its deadline mid-flight completes normally — the
// budget sheds work, it does not corrupt it.

// ErrDeadlineExceeded is the sentinel for a request abandoned because
// its deadline budget ran out. The RPC layer maps it to and from
// StatusDeadlineExceeded, so errors.Is(err, trace.ErrDeadlineExceeded)
// holds on both sides of the wire.
var ErrDeadlineExceeded = errors.New("deadline budget exceeded")

// ArmDeadline gives the request a remaining-time budget. now supplies
// the timeline (nil means the wall clock); virtual-clock worlds inject
// their own so deadline behavior is deterministic under test. A budget
// <= 0 disarms. Nil-safe.
func (c *Ctx) ArmDeadline(budget time.Duration, now func() int64) {
	if c == nil {
		return
	}
	if budget <= 0 {
		c.deadlineAt = 0
		c.deadlineNow = nil
		return
	}
	if now == nil {
		now = wallNanos
	}
	c.deadlineNow = now
	c.deadlineAt = now() + int64(budget)
}

// DeadlineArmed reports whether the request carries a budget. Nil-safe.
func (c *Ctx) DeadlineArmed() bool { return c != nil && c.deadlineAt != 0 }

// DeadlineRemaining returns the budget left. ok is false when no
// deadline is armed (the remaining value is then meaningless); a
// remaining <= 0 with ok true means the budget is spent. Nil-safe.
func (c *Ctx) DeadlineRemaining() (remaining time.Duration, ok bool) {
	if c == nil || c.deadlineAt == 0 {
		return 0, false
	}
	return time.Duration(c.deadlineAt - c.deadlineNow()), true
}

// DeadlineExceeded reports whether an armed budget has run out. An
// unarmed (or nil) Ctx never exceeds.
func (c *Ctx) DeadlineExceeded() bool {
	if c == nil || c.deadlineAt == 0 {
		return false
	}
	return c.deadlineNow() >= c.deadlineAt
}

func wallNanos() int64 { return time.Now().UnixNano() }
