package trace

import (
	"encoding/json"
	"fmt"
)

// JSONSpan is the wire/log form of a Span. Numeric attribute sentinels
// are preserved (replica -1, dur_ns -1 for pending) so decoders need no
// schema beyond this struct.
type JSONSpan struct {
	ID       uint16 `json:"id"`
	Parent   int32  `json:"parent"` // -1 for the root span
	Layer    string `json:"layer"`
	Op       string `json:"op"`
	Start    int64  `json:"start_unix_ns"`
	Dur      int64  `json:"dur_ns"` // -1: still open when the trace finished
	Cmd      uint32 `json:"cmd,omitempty"`
	Inode    uint32 `json:"inode,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	PFactor  int8   `json:"p_factor,omitempty"`
	Replica  int8   `json:"replica"` // -1: not a per-replica span
	CacheHit string `json:"cache,omitempty"`
	Merged   bool   `json:"merged,omitempty"`
	Status   int32  `json:"status,omitempty"`
}

// JSONTrace is the wire/log form of a Trace: the TRACE RPC payload is a
// JSON array of these, and each slow-log line is one of them.
type JSONTrace struct {
	ID      string     `json:"id"` // 16-digit hex: JSON numbers are lossy past 2^53
	Start   int64      `json:"start_unix_ns"`
	Dropped bool       `json:"dropped,omitempty"`
	Spans   []JSONSpan `json:"spans"`
}

func cacheHitString(v int8) string {
	switch v {
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	default:
		return ""
	}
}

// JSON converts the trace to its serializable form. This allocates; it is
// for the TRACE RPC, the HTTP endpoint, and the slow log — never the
// request path.
func (t *Trace) JSON() JSONTrace {
	jt := JSONTrace{
		ID:      fmt.Sprintf("%016x", t.ID),
		Start:   t.Start,
		Dropped: t.Dropped,
		Spans:   make([]JSONSpan, 0, t.N),
	}
	for i := 0; i < t.N; i++ {
		sp := &t.Spans[i]
		parent := int32(-1)
		if sp.Parent != NoParent {
			parent = int32(sp.Parent)
		}
		jt.Spans = append(jt.Spans, JSONSpan{
			ID:       sp.ID,
			Parent:   parent,
			Layer:    sp.Layer.String(),
			Op:       sp.Op.String(),
			Start:    sp.Start,
			Dur:      sp.Dur,
			Cmd:      sp.Cmd,
			Inode:    sp.Inode,
			Bytes:    sp.Bytes,
			PFactor:  sp.PFactor,
			Replica:  sp.Replica,
			CacheHit: cacheHitString(sp.CacheHit),
			Merged:   sp.Merged,
			Status:   sp.Status,
		})
	}
	return jt
}

// EncodeTraces renders traces as a compact JSON array (the TRACE RPC
// payload).
func EncodeTraces(ts []Trace) ([]byte, error) {
	jts := make([]JSONTrace, len(ts))
	for i := range ts {
		jts[i] = ts[i].JSON()
	}
	b, err := json.Marshal(jts)
	if err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	return b, nil
}

// DecodeTraces parses a TRACE RPC payload back into its JSON form (the
// client renders from this; it never reconstructs Trace values).
func DecodeTraces(b []byte) ([]JSONTrace, error) {
	var jts []JSONTrace
	if err := json.Unmarshal(b, &jts); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return jts, nil
}

// appendJSONLine appends one trace as a single JSON line (the slow-log
// record format) terminated by '\n'.
func appendJSONLine(dst []byte, t *Trace) ([]byte, error) {
	b, err := json.Marshal(t.JSON())
	if err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}
