package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RenderTree writes a human-readable span tree for one decoded trace,
// followed by a per-layer self-time summary. Self-time is a span's
// duration minus its children's durations (clamped at zero): the time the
// layer itself spent, not the time it waited on layers below. Spans whose
// Dur is -1 (still open when the trace finished) render as "pending" and
// contribute nothing to self-time.
func RenderTree(w io.Writer, t *JSONTrace) {
	fmt.Fprintf(w, "trace %s  start %s%s\n",
		t.ID,
		time.Unix(0, t.Start).UTC().Format(time.RFC3339Nano),
		droppedNote(t.Dropped))

	children := make(map[int32][]int, len(t.Spans))
	roots := []int{}
	for i := range t.Spans {
		p := t.Spans[i].Parent
		if p < 0 {
			roots = append(roots, i)
		} else {
			children[p] = append(children[p], i)
		}
	}

	selfNS := map[string]int64{}
	var walk func(idx int, prefix string, last bool)
	walk = func(idx int, prefix string, last bool) {
		sp := &t.Spans[idx]
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		fmt.Fprintf(w, "%s%s%-6s %-14s %s%s\n",
			prefix, branch, sp.Layer, spanLabel(sp), durString(sp.Dur), attrString(sp))

		kids := children[int32(sp.ID)]
		self := sp.Dur
		for _, k := range kids {
			if d := t.Spans[k].Dur; d > 0 && self > 0 {
				self -= d
			}
		}
		if sp.Dur >= 0 {
			if self < 0 {
				self = 0
			}
			selfNS[sp.Layer] += self
		}
		for i, k := range kids {
			walk(k, childPrefix, i == len(kids)-1)
		}
	}
	for i, r := range roots {
		walk(r, "", i == len(roots)-1)
	}

	parts := []string{}
	for _, layer := range []string{"rpc", "engine", "cache", "disk"} {
		if ns, ok := selfNS[layer]; ok {
			parts = append(parts, fmt.Sprintf("%s %s", layer, durString(ns)))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "self-time by layer: %s\n", strings.Join(parts, "  "))
	}
}

func droppedNote(dropped bool) string {
	if dropped {
		return "  [spans dropped: arena full]"
	}
	return ""
}

func spanLabel(sp *JSONSpan) string {
	if sp.Op == "request" && sp.Cmd != 0 {
		return fmt.Sprintf("request cmd=%d", sp.Cmd)
	}
	return sp.Op
}

func durString(ns int64) string {
	if ns < 0 {
		return "pending"
	}
	return time.Duration(ns).String()
}

func attrString(sp *JSONSpan) string {
	var b strings.Builder
	if sp.Inode != 0 {
		fmt.Fprintf(&b, " inode=%d", sp.Inode)
	}
	if sp.Bytes != 0 {
		fmt.Fprintf(&b, " bytes=%d", sp.Bytes)
	}
	if sp.PFactor != 0 {
		fmt.Fprintf(&b, " p=%d", sp.PFactor)
	}
	if sp.Replica >= 0 {
		fmt.Fprintf(&b, " replica=%d", sp.Replica)
	}
	if sp.CacheHit != "" {
		fmt.Fprintf(&b, " cache=%s", sp.CacheHit)
	}
	if sp.Merged {
		b.WriteString(" merged")
	}
	if sp.Status != 0 {
		fmt.Fprintf(&b, " status=%d", sp.Status)
	}
	return b.String()
}
