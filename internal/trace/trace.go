// Package trace is the server's per-request tracing subsystem: wire-
// propagated 64-bit trace IDs, fixed-size span records emitted from every
// layer (rpc, engine, cache, disk), an always-on flight recorder holding
// the last N completed traces in fixed memory, and a slow-request log.
//
// The stats registry (PR 2) answers "how much"; this package answers "why
// was THIS request slow". The paper's whole-file operations map one RPC to
// one clean span tree — rpc → capability check → cache hit/fault → disk →
// replica fan-out — so a trace here is small and bounded: at most MaxSpans
// spans of fixed size, recorded into a pre-allocated per-connection arena
// with no allocation and no locking on the hot path. A Ctx (and every
// method on it) is nil-safe, so untraced call sites pay a single
// predictable branch.
//
// The package is stdlib-only and imports nothing from the rest of the
// module, so every layer can use it without import cycles.
package trace

import "time"

// Layer identifies which server layer emitted a span.
type Layer uint8

// Span layers, ordered top (network) to bottom (storage).
const (
	LayerRPC Layer = iota
	LayerEngine
	LayerCache
	LayerDisk
	layerCount
)

var layerNames = [layerCount]string{"rpc", "engine", "cache", "disk"}

// String returns the layer's lowercase name ("rpc", "engine", ...).
func (l Layer) String() string {
	if l < layerCount {
		return layerNames[l]
	}
	return "layer?"
}

// Op identifies what a span measures.
type Op uint8

// Span operations.
const (
	OpRequest Op = iota // root span: one RPC dispatch
	OpCreate
	OpRead
	OpReadRange
	OpSize
	OpDelete
	OpModify
	OpAppend
	OpVerify        // capability check
	OpCacheLookup   // cache hit/miss probe
	OpCacheInsert   // populate after fault or create
	OpFault         // whole-file load, possibly merged with peers
	OpDiskRead      // one replica ReadAt
	OpReplicaCommit // one replica's share of a parallel commit
	OpTrace         // TRACE RPC serving itself
	OpDiskRepair    // self-heal rewrite of a bad extent on one replica
	OpPromote       // a new main replica promoted after a demotion
	OpScrub         // one scrub comparison of a file across replicas
	OpSalvage       // SALVAGE RPC serving itself
	OpRecover       // online replica recovery (catch-up copy)
	OpAdmit         // admission-control decision (Status busy when shed)
	OpWatch         // WATCH RPC streaming telemetry updates
	OpHedge         // hedged read launched against a backup replica
	opCount
)

var opNames = [opCount]string{
	"request", "create", "read", "read-range", "size", "delete",
	"modify", "append", "verify", "cache-lookup", "cache-insert",
	"fault", "disk-read", "replica-commit", "trace",
	"disk-repair", "promote", "scrub", "salvage", "recover", "admit",
	"watch", "hedge",
}

// String returns the op's lowercase name ("read", "fault", ...).
func (o Op) String() string {
	if o < opCount {
		return opNames[o]
	}
	return "op?"
}

// MaxSpans bounds one trace's span arena. A whole-file operation on a
// 4-replica set needs ~10 spans; 48 leaves room for retries and fan-out.
const MaxSpans = 48

// NoParent marks a root span's Parent field.
const NoParent = ^uint16(0)

// DurPending is the Dur of a span that was still open (or deliberately
// left open, e.g. a replica commit that had not settled) when the trace
// finished.
const DurPending = int64(-1)

// Cache-hit attribute values for Span.CacheHit.
const (
	CacheNA   = int8(0) // span does not involve the cache
	CacheHit  = int8(1)
	CacheMiss = int8(2)
)

// Span is one timed operation inside a trace. It is a fixed-size value —
// no pointers, no strings — so an arena of them costs nothing to reuse.
// Attribute fields use zero/negative sentinels for "not set" (Replica -1,
// PFactor 0, CacheHit CacheNA) because a span never knows which
// attributes its op will need.
type Span struct {
	ID     uint16
	Parent uint16 // NoParent for the root
	Layer  Layer
	Op     Op

	Start int64 // wall clock, Unix nanoseconds
	Dur   int64 // nanoseconds; DurPending while open

	// Attributes. Callers write them directly on the *Span returned by
	// Begin; unset fields keep their sentinel.
	Cmd      uint32 // RPC command code (root span)
	Inode    uint32
	Bytes    int64
	PFactor  int8
	Replica  int8 // -1: not a per-replica span
	CacheHit int8 // CacheNA, CacheHit, CacheMiss
	Merged   bool // fault coalesced onto another request's load
	Status   int32
}

// Trace is one request's completed span set. It is a fixed-size value so
// the flight recorder can copy it in and out of ring slots without
// allocating.
type Trace struct {
	ID      uint64
	Start   int64 // root span start, Unix nanoseconds
	Dropped bool  // true if the arena overflowed and spans were lost
	N       int   // number of valid entries in Spans
	Spans   [MaxSpans]Span
}

// Root returns the root span (parent == NoParent), or nil if the trace is
// empty.
func (t *Trace) Root() *Span {
	for i := 0; i < t.N; i++ {
		if t.Spans[i].Parent == NoParent {
			return &t.Spans[i]
		}
	}
	return nil
}

// Ctx is a per-connection span arena. One goroutine owns a Ctx at a time
// (the connection's request loop); it is reset per request with Reset and
// flushed to the recorder with Finish. All methods are nil-safe: a nil
// *Ctx records nothing and returns nil spans, so untraced paths share
// code with traced ones.
//
// The arena is pre-allocated: Begin/End/Finish perform no allocation.
type Ctx struct {
	rec *Recorder
	t   Trace
	// starts carries the monotonic start time of each open span (the
	// Span itself stores only wall-clock nanos; durations must come from
	// the monotonic clock).
	starts [MaxSpans]time.Time

	// Deadline budget (see deadline.go). deadlineAt is the absolute
	// instant, in nanoseconds of deadlineNow's timeline, past which the
	// request should be abandoned; 0 means no deadline is armed.
	deadlineAt  int64
	deadlineNow func() int64
}

// Reset arms the arena for a new request with the given wire trace ID.
// Any deadline armed for the previous request is cleared.
func (c *Ctx) Reset(id uint64) {
	if c == nil {
		return
	}
	c.t.ID = id
	c.t.Start = 0
	c.t.Dropped = false
	c.t.N = 0
	c.deadlineAt = 0
	c.deadlineNow = nil
}

// Active reports whether the arena is armed (nil-safe). Layers can use it
// to skip attribute computation that only feeds spans.
func (c *Ctx) Active() bool { return c != nil }

// TraceID returns the armed trace ID (0 when c is nil or unarmed) —
// what metric exemplars record so a histogram outlier names its trace.
func (c *Ctx) TraceID() uint64 {
	if c == nil {
		return 0
	}
	return c.t.ID
}

// Begin opens a span under parent (nil parent makes a root span) and
// returns it for attribute writes. Returns nil if c is nil or the arena
// is full; End(nil) is a no-op, so call sites never branch.
func (c *Ctx) Begin(parent *Span, layer Layer, op Op) *Span {
	if c == nil {
		return nil
	}
	if c.t.N >= MaxSpans {
		c.t.Dropped = true
		return nil
	}
	i := c.t.N
	c.t.N = i + 1
	now := time.Now()
	sp := &c.t.Spans[i]
	*sp = Span{
		ID:      uint16(i),
		Parent:  NoParent,
		Layer:   layer,
		Op:      op,
		Start:   now.UnixNano(),
		Dur:     DurPending,
		Replica: -1,
	}
	if parent != nil {
		sp.Parent = parent.ID
	}
	if sp.Parent == NoParent {
		c.t.Start = sp.Start
	}
	c.starts[i] = now
	return sp
}

// End closes the span, stamping its duration from the monotonic clock.
// No-op on a nil span or nil Ctx.
func (c *Ctx) End(sp *Span) {
	if c == nil || sp == nil {
		return
	}
	sp.Dur = int64(time.Since(c.starts[sp.ID]))
}

// Add appends an already-measured span under parent and returns it. It is
// the bridge for timings captured off-arena (e.g. per-replica commit
// durations measured on worker goroutines and recorded here, on the
// request goroutine, after the quorum returns). A dur of DurPending marks
// work still in flight when the trace finished.
func (c *Ctx) Add(parent *Span, layer Layer, op Op, start time.Time, dur int64) *Span {
	sp := c.Begin(parent, layer, op)
	if sp == nil {
		return nil
	}
	sp.Start = start.UnixNano()
	sp.Dur = dur
	return sp
}

// Finish flushes the completed trace to the recorder's rings and disarms
// the arena. It is the only Ctx method that touches shared state, and it
// runs once per request, off the per-span hot path.
func (c *Ctx) Finish() {
	if c == nil || c.rec == nil || c.t.N == 0 {
		return
	}
	c.rec.record(&c.t)
	c.t.N = 0
}
