// Package alloc implements the contiguous-extent allocator behind both the
// Bullet disk data area and the RAM file cache.
//
// The paper's server scans the inode table at startup to learn which parts
// of the disk are free and keeps that knowledge in an in-RAM free list
// (paper §3). Allocation is first fit; freeing coalesces with neighbours.
// External fragmentation — the price of contiguity the paper discusses in
// §3 — is observable through Stats, and Plan computes the compaction moves
// of the "every morning at 3 a.m." compactor.
//
// Units are deliberately abstract: the Bullet engine allocates disk blocks,
// the cache allocates bytes.
package alloc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Extent is a contiguous run of units [Start, Start+Count).
type Extent struct {
	Start int64
	Count int64
}

// End returns the first unit past the extent.
func (e Extent) End() int64 { return e.Start + e.Count }

// Errors returned by the allocator.
var (
	// ErrNoSpace means no free extent is large enough (the paper's answer:
	// compact, or buy a bigger disk).
	ErrNoSpace = errors.New("alloc: no contiguous extent large enough")
	// ErrBadFree means a Free did not correspond to allocated space.
	ErrBadFree = errors.New("alloc: freeing unallocated or overlapping space")
	// ErrBadExtent means an extent is malformed or out of range.
	ErrBadExtent = errors.New("alloc: extent out of range")
	// ErrBadArena means an allocator was configured with an unusable
	// arena size.
	ErrBadArena = errors.New("alloc: bad arena size")
)

// Allocator hands out contiguous extents from a fixed-size arena using
// first fit. The zero value is not usable; call New or NewFromUsed.
type Allocator struct {
	mu    sync.Mutex
	total int64    // immutable after construction
	free  []Extent // guarded by mu; sorted by Start, non-adjacent, non-overlapping
}

// New returns an allocator over an arena of total units, all free.
func New(total int64) (*Allocator, error) {
	if total <= 0 {
		return nil, fmt.Errorf("non-positive arena size %d: %w", total, ErrBadArena)
	}
	return &Allocator{total: total, free: []Extent{{Start: 0, Count: total}}}, nil
}

// NewFromUsed builds an allocator for an arena in which the given extents
// are already occupied — how the Bullet server reconstructs the disk free
// list from the inode table at startup. Used extents may arrive in any
// order but must be in range and mutually disjoint.
func NewFromUsed(total int64, used []Extent) (*Allocator, error) {
	if total <= 0 {
		return nil, fmt.Errorf("non-positive arena size %d: %w", total, ErrBadArena)
	}
	sorted := make([]Extent, len(used))
	copy(sorted, used)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	a := &Allocator{total: total}
	cursor := int64(0)
	for _, u := range sorted {
		if u.Count <= 0 || u.Start < 0 || u.End() > total {
			return nil, fmt.Errorf("used extent [%d,%d): %w", u.Start, u.End(), ErrBadExtent)
		}
		if u.Start < cursor {
			return nil, fmt.Errorf("used extents overlap at %d: %w", u.Start, ErrBadExtent)
		}
		if u.Start > cursor {
			a.free = append(a.free, Extent{Start: cursor, Count: u.Start - cursor})
		}
		cursor = u.End()
	}
	if cursor < total {
		a.free = append(a.free, Extent{Start: cursor, Count: total - cursor})
	}
	return a, nil
}

// Total returns the arena size.
func (a *Allocator) Total() int64 { return a.total }

// Alloc claims the first free extent of at least n units (first fit,
// paper §3) and returns its start.
func (a *Allocator) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("non-positive allocation %d: %w", n, ErrBadExtent)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.free {
		if a.free[i].Count < n {
			continue
		}
		start := a.free[i].Start
		if a.free[i].Count == n {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i].Start += n
			a.free[i].Count -= n
		}
		return start, nil
	}
	return 0, fmt.Errorf("allocating %d units: %w", n, ErrNoSpace)
}

// Free returns [start, start+n) to the free pool, coalescing with adjacent
// free extents. Freeing space that is already free (or out of range) is an
// error: it would mean the inode table and free list disagree.
func (a *Allocator) Free(start, n int64) error {
	if n <= 0 || start < 0 || start+n > a.total {
		return fmt.Errorf("freeing [%d,%d): %w", start, start+n, ErrBadExtent)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Find insertion point: first free extent starting at or after start.
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Start >= start })
	if i < len(a.free) && start+n > a.free[i].Start {
		return fmt.Errorf("[%d,%d) overlaps free [%d,%d): %w",
			start, start+n, a.free[i].Start, a.free[i].End(), ErrBadFree)
	}
	if i > 0 && a.free[i-1].End() > start {
		return fmt.Errorf("[%d,%d) overlaps free [%d,%d): %w",
			start, start+n, a.free[i-1].Start, a.free[i-1].End(), ErrBadFree)
	}
	// Coalesce with predecessor and/or successor.
	mergePrev := i > 0 && a.free[i-1].End() == start
	mergeNext := i < len(a.free) && a.free[i].Start == start+n
	switch {
	case mergePrev && mergeNext:
		a.free[i-1].Count += n + a.free[i].Count
		a.free = append(a.free[:i], a.free[i+1:]...)
	case mergePrev:
		a.free[i-1].Count += n
	case mergeNext:
		a.free[i].Start = start
		a.free[i].Count += n
	default:
		a.free = append(a.free, Extent{})
		copy(a.free[i+1:], a.free[i:])
		a.free[i] = Extent{Start: start, Count: n}
	}
	return nil
}

// Stats describes the allocator's fragmentation state.
type Stats struct {
	Total       int64 // arena size
	Free        int64 // total free units
	Used        int64 // total allocated units
	FreeExtents int   // number of holes
	LargestFree int64 // biggest single allocation that would succeed
}

// Fragmentation returns 1 - largest/free: 0 when all free space is one
// hole, approaching 1 when it is shattered. By convention it is 0 when
// nothing is free.
func (s Stats) Fragmentation() float64 {
	if s.Free == 0 {
		return 0
	}
	return 1 - float64(s.LargestFree)/float64(s.Free)
}

// Stats returns a snapshot of the fragmentation state.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Stats{Total: a.total, FreeExtents: len(a.free)}
	for _, e := range a.free {
		s.Free += e.Count
		if e.Count > s.LargestFree {
			s.LargestFree = e.Count
		}
	}
	s.Used = s.Total - s.Free
	return s
}

// FreeExtents returns a copy of the free list, sorted by start.
func (a *Allocator) FreeExtents() []Extent {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Extent, len(a.free))
	copy(out, a.free)
	return out
}

// Move is one step of a compaction plan: copy Count units from From to To.
// Moves are ordered so that executing them sequentially never overwrites
// data that has not moved yet (targets advance strictly left of sources).
type Move struct {
	From, To, Count int64
	Tag             any // caller's identifier for the extent (e.g. inode number)
}

// Used describes an allocated extent for compaction planning.
type Used struct {
	Extent
	Tag any
}

// Plan computes the compaction of the given used extents: sliding every
// extent as far toward the start of the arena as possible, preserving
// order. It returns the moves to execute; extents already in place yield no
// move. Plan does not mutate the allocator — call Apply after the caller
// has physically moved the data and updated its own references.
func Plan(used []Used) []Move {
	sorted := make([]Used, len(used))
	copy(sorted, used)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var moves []Move
	cursor := int64(0)
	for _, u := range sorted {
		if u.Start != cursor {
			moves = append(moves, Move{From: u.Start, To: cursor, Count: u.Count, Tag: u.Tag})
		}
		cursor += u.Count
	}
	return moves
}

// Reset rebuilds the free list from scratch given the now-current used
// extents; used after executing a compaction plan.
func (a *Allocator) Reset(used []Extent) error {
	fresh, err := NewFromUsed(a.total, used)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = fresh.free
	return nil
}

// checkInvariants verifies the free list is sorted, in range, disjoint and
// non-adjacent. Exposed for tests via export_test.go.
func (a *Allocator) checkInvariants() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	prevEnd := int64(-1)
	for _, e := range a.free {
		if e.Count <= 0 || e.Start < 0 || e.End() > a.total {
			return fmt.Errorf("free extent [%d,%d) out of range", e.Start, e.End())
		}
		if e.Start <= prevEnd {
			return fmt.Errorf("free list not sorted/coalesced at %d", e.Start)
		}
		prevEnd = e.End()
	}
	return nil
}
