package alloc_test

import (
	"fmt"

	"bulletfs/internal/alloc"
)

// First-fit contiguous allocation, the fragmentation it causes, and the
// compaction that repairs it — the §3 life cycle of the Bullet disk.
func ExampleAllocator() {
	a, _ := alloc.New(100)
	f1, _ := a.Alloc(30)
	f2, _ := a.Alloc(30)
	f3, _ := a.Alloc(30)
	_ = a.Free(f2, 30) // delete the middle file

	st := a.Stats()
	fmt.Printf("free %d in %d holes, largest %d, fragmentation %.0f%%\n",
		st.Free, st.FreeExtents, st.LargestFree, 100*st.Fragmentation())

	// The 3 a.m. compactor: slide everything left, rebuild the free list.
	moves := alloc.Plan([]alloc.Used{
		{Extent: alloc.Extent{Start: f1, Count: 30}, Tag: "file1"},
		{Extent: alloc.Extent{Start: f3, Count: 30}, Tag: "file3"},
	})
	for _, m := range moves {
		fmt.Printf("move %v: %d -> %d\n", m.Tag, m.From, m.To)
	}
	_ = a.Reset([]alloc.Extent{{Start: 0, Count: 30}, {Start: 30, Count: 30}})
	st = a.Stats()
	fmt.Printf("after compaction: largest %d, fragmentation %.0f%%\n",
		st.LargestFree, 100*st.Fragmentation())
	// Output:
	// free 40 in 2 holes, largest 30, fragmentation 25%
	// move file3: 60 -> 30
	// after compaction: largest 40, fragmentation 0%
}
