package alloc

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, total int64) *Allocator {
	t.Helper()
	a, err := New(total)
	if err != nil {
		t.Fatalf("New(%d): %v", total, err)
	}
	return a
}

func mustAlloc(t *testing.T, a *Allocator, n int64) int64 {
	t.Helper()
	start, err := a.Alloc(n)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", n, err)
	}
	return start
}

func TestNewRejectsBadSizes(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("New(-5) succeeded")
	}
}

func TestFirstFitOrder(t *testing.T) {
	a := mustNew(t, 100)
	if got := mustAlloc(t, a, 10); got != 0 {
		t.Fatalf("first alloc at %d, want 0", got)
	}
	if got := mustAlloc(t, a, 10); got != 10 {
		t.Fatalf("second alloc at %d, want 10", got)
	}
	// Free the first hole; a small request must land there (first fit).
	if err := a.Free(0, 10); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := mustAlloc(t, a, 4); got != 0 {
		t.Fatalf("first-fit alloc at %d, want 0", got)
	}
}

func TestFirstFitSkipsSmallHoles(t *testing.T) {
	a := mustNew(t, 100)
	p0 := mustAlloc(t, a, 10) // [0,10)
	mustAlloc(t, a, 10)       // [10,20)
	if err := a.Free(p0, 10); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// 10-unit hole at 0, 80-unit hole at 20. A 20-unit request must skip
	// the first hole.
	if got := mustAlloc(t, a, 20); got != 20 {
		t.Fatalf("alloc at %d, want 20", got)
	}
}

func TestAllocExactFitRemovesHole(t *testing.T) {
	a := mustNew(t, 30)
	mustAlloc(t, a, 10)
	mustAlloc(t, a, 10)
	mustAlloc(t, a, 10)
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("full arena Alloc err = %v, want ErrNoSpace", err)
	}
	st := a.Stats()
	if st.Free != 0 || st.FreeExtents != 0 || st.Used != 30 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	a := mustNew(t, 10)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := a.Alloc(-1); err == nil {
		t.Fatal("Alloc(-1) succeeded")
	}
}

func TestFreeCoalescesBothSides(t *testing.T) {
	a := mustNew(t, 30)
	p0 := mustAlloc(t, a, 10)
	p1 := mustAlloc(t, a, 10)
	p2 := mustAlloc(t, a, 10)
	if err := a.Free(p0, 10); err != nil {
		t.Fatalf("Free p0: %v", err)
	}
	if err := a.Free(p2, 10); err != nil {
		t.Fatalf("Free p2: %v", err)
	}
	if st := a.Stats(); st.FreeExtents != 2 {
		t.Fatalf("extents = %d, want 2", st.FreeExtents)
	}
	// Freeing the middle merges everything into one hole.
	if err := a.Free(p1, 10); err != nil {
		t.Fatalf("Free p1: %v", err)
	}
	st := a.Stats()
	if st.FreeExtents != 1 || st.Free != 30 || st.LargestFree != 30 {
		t.Fatalf("stats = %+v, want one 30-unit hole", st)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeDetectsDoubleFree(t *testing.T) {
	a := mustNew(t, 30)
	p := mustAlloc(t, a, 10)
	if err := a.Free(p, 10); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := a.Free(p, 10); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free err = %v, want ErrBadFree", err)
	}
	// Partial overlap with free space is also rejected.
	mustAlloc(t, a, 5) // occupies [0,5)
	if err := a.Free(3, 5); !errors.Is(err, ErrBadFree) {
		t.Fatalf("overlapping free err = %v, want ErrBadFree", err)
	}
}

func TestFreeRejectsOutOfRange(t *testing.T) {
	a := mustNew(t, 10)
	if err := a.Free(-1, 2); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("err = %v", err)
	}
	if err := a.Free(8, 5); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("err = %v", err)
	}
	if err := a.Free(0, 0); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewFromUsed(t *testing.T) {
	used := []Extent{{Start: 10, Count: 5}, {Start: 0, Count: 5}, {Start: 20, Count: 10}}
	a, err := NewFromUsed(30, used)
	if err != nil {
		t.Fatalf("NewFromUsed: %v", err)
	}
	st := a.Stats()
	if st.Used != 20 || st.Free != 10 || st.FreeExtents != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The holes are [5,10) and [15,20); first fit of 5 lands at 5.
	if got := mustAlloc(t, a, 5); got != 5 {
		t.Fatalf("alloc at %d, want 5", got)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewFromUsedFullDisk(t *testing.T) {
	a, err := NewFromUsed(10, []Extent{{Start: 0, Count: 10}})
	if err != nil {
		t.Fatalf("NewFromUsed: %v", err)
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestNewFromUsedRejectsOverlap(t *testing.T) {
	if _, err := NewFromUsed(30, []Extent{{0, 10}, {5, 10}}); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("err = %v, want ErrBadExtent", err)
	}
	if _, err := NewFromUsed(30, []Extent{{25, 10}}); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("out-of-range err = %v, want ErrBadExtent", err)
	}
	if _, err := NewFromUsed(30, []Extent{{5, 0}}); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("empty extent err = %v, want ErrBadExtent", err)
	}
}

func TestStatsFragmentation(t *testing.T) {
	a := mustNew(t, 100)
	if frag := a.Stats().Fragmentation(); frag != 0 {
		t.Fatalf("empty arena fragmentation = %v, want 0", frag)
	}
	// Allocate everything as 10 x 10, free alternate extents: five 10-unit
	// holes, largest 10, free 50 -> fragmentation 0.8.
	starts := make([]int64, 10)
	for i := range starts {
		starts[i] = mustAlloc(t, a, 10)
	}
	for i := 0; i < 10; i += 2 {
		if err := a.Free(starts[i], 10); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
	st := a.Stats()
	if st.Free != 50 || st.LargestFree != 10 || st.FreeExtents != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if frag := st.Fragmentation(); frag != 0.8 {
		t.Fatalf("fragmentation = %v, want 0.8", frag)
	}
	// Full arena: fragmentation defined as 0.
	full := Stats{Total: 10, Free: 0}
	if full.Fragmentation() != 0 {
		t.Fatal("full arena fragmentation != 0")
	}
}

func TestPlanCompaction(t *testing.T) {
	used := []Used{
		{Extent: Extent{Start: 5, Count: 5}, Tag: "a"},
		{Extent: Extent{Start: 20, Count: 10}, Tag: "b"},
		{Extent: Extent{Start: 50, Count: 1}, Tag: "c"},
	}
	moves := Plan(used)
	if len(moves) != 3 {
		t.Fatalf("moves = %+v, want 3", moves)
	}
	want := []Move{
		{From: 5, To: 0, Count: 5, Tag: "a"},
		{From: 20, To: 5, Count: 10, Tag: "b"},
		{From: 50, To: 15, Count: 1, Tag: "c"},
	}
	for i, m := range moves {
		if m != want[i] {
			t.Fatalf("move %d = %+v, want %+v", i, m, want[i])
		}
	}
	// Moves must never write past their own source (left slide only).
	for _, m := range moves {
		if m.To >= m.From {
			t.Fatalf("move %+v does not slide left", m)
		}
	}
}

func TestPlanAlreadyCompact(t *testing.T) {
	used := []Used{
		{Extent: Extent{Start: 0, Count: 5}},
		{Extent: Extent{Start: 5, Count: 5}},
	}
	if moves := Plan(used); len(moves) != 0 {
		t.Fatalf("moves = %+v, want none", moves)
	}
	if moves := Plan(nil); len(moves) != 0 {
		t.Fatalf("Plan(nil) = %+v, want none", moves)
	}
}

func TestResetAfterCompaction(t *testing.T) {
	a := mustNew(t, 100)
	mustAlloc(t, a, 10)       // [0,10) "a"
	p1 := mustAlloc(t, a, 10) // [10,20) freed below
	mustAlloc(t, a, 10)       // [20,30) "b"
	if err := a.Free(p1, 10); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// Simulate compaction: "b" moved to 10.
	if err := a.Reset([]Extent{{0, 10}, {10, 10}}); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	st := a.Stats()
	if st.Used != 20 || st.FreeExtents != 1 || st.LargestFree != 80 {
		t.Fatalf("stats after reset = %+v", st)
	}
	if got := mustAlloc(t, a, 80); got != 20 {
		t.Fatalf("post-compaction alloc at %d, want 20", got)
	}
}

// Property: any interleaving of allocs and frees preserves the free-list
// invariants and exact accounting.
func TestQuickAllocatorInvariants(t *testing.T) {
	type op struct {
		Alloc bool
		N     uint8
	}
	f := func(ops []op) bool {
		a, err := New(1 << 12)
		if err != nil {
			return false
		}
		type held struct{ start, n int64 }
		var hold []held
		var usedUnits int64
		for _, o := range ops {
			if o.Alloc {
				n := int64(o.N%64) + 1
				start, err := a.Alloc(n)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					return false
				}
				hold = append(hold, held{start, n})
				usedUnits += n
			} else if len(hold) > 0 {
				h := hold[len(hold)-1]
				hold = hold[:len(hold)-1]
				if err := a.Free(h.start, h.n); err != nil {
					return false
				}
				usedUnits -= h.n
			}
			if err := a.CheckInvariants(); err != nil {
				return false
			}
			if st := a.Stats(); st.Used != usedUnits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocations never overlap each other.
func TestQuickNoOverlappingAllocations(t *testing.T) {
	f := func(sizes []uint8) bool {
		a, err := New(1 << 12)
		if err != nil {
			return false
		}
		type span struct{ s, e int64 }
		var spans []span
		for _, raw := range sizes {
			n := int64(raw%100) + 1
			start, err := a.Alloc(n)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				return false
			}
			for _, sp := range spans {
				if start < sp.e && sp.s < start+n {
					return false // overlap
				}
			}
			spans = append(spans, span{start, start + n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a compaction plan executed on a model arena leaves data intact
// and ends with one hole at the top.
func TestQuickPlanPreservesData(t *testing.T) {
	f := func(sizes []uint8, frees []uint8) bool {
		const total = 1 << 10
		a, err := New(total)
		if err != nil {
			return false
		}
		arena := make([]byte, total)
		type file struct {
			start, n int64
			fill     byte
		}
		files := map[int]*file{}
		id := 0
		for _, raw := range sizes {
			n := int64(raw%32) + 1
			start, err := a.Alloc(n)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				return false
			}
			fill := byte(id + 1)
			for i := int64(0); i < n; i++ {
				arena[start+i] = fill
			}
			files[id] = &file{start: start, n: n, fill: fill}
			id++
		}
		for _, fr := range frees {
			if len(files) == 0 || id == 0 {
				break
			}
			victim := int(fr) % id
			f, ok := files[victim]
			if !ok {
				continue
			}
			if err := a.Free(f.start, f.n); err != nil {
				return false
			}
			delete(files, victim)
		}
		var used []Used
		for fid, f := range files {
			used = append(used, Used{Extent: Extent{Start: f.start, Count: f.n}, Tag: fid})
		}
		moves := Plan(used)
		for _, m := range moves {
			copy(arena[m.To:m.To+m.Count], arena[m.From:m.From+m.Count])
			files[m.Tag.(int)].start = m.To
		}
		var after []Extent
		var usedUnits int64
		for _, f := range files {
			after = append(after, Extent{Start: f.start, Count: f.n})
			usedUnits += f.n
		}
		if err := a.Reset(after); err != nil {
			return false
		}
		st := a.Stats()
		if st.Used != usedUnits {
			return false
		}
		if st.Free > 0 && st.FreeExtents != 1 {
			return false // compaction must leave exactly one hole
		}
		if st.LargestFree != st.Free {
			return false
		}
		// Every file's bytes survived the moves.
		for _, f := range files {
			for i := int64(0); i < f.n; i++ {
				if arena[f.start+i] != f.fill {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
