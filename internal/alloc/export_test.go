package alloc

// CheckInvariants exposes the internal invariant checker to tests.
func (a *Allocator) CheckInvariants() error { return a.checkInvariants() }
