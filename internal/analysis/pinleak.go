package analysis

// PinLeak verifies that every cache View pin is released on every path.
// A View pins its cache slot against eviction and compaction (the cache
// refuses to compact while anything is pinned), so a leaked pin on an
// error path slowly wedges the whole cache. The pass tracks each call
// returning a *cache.View as an obligation on the variable it is bound
// to: calling Release discharges it, returning the View to the caller
// transfers it (the caller's copy of this analysis takes over), passing
// it to another function hands it off, and a branch that proves the
// paired error non-nil makes it vacuous (a failed lookup pins nothing).
// Whatever reaches a return or the end of the function undischarged is
// reported at the site that created the pin.
//
// The pass tracks a second resource with the same rules: engine
// ReadLeases (bullet.ReadView and friends), which wrap pinned Views for
// the zero-copy reply path. Handing a lease to another call — most
// importantly rpc.Owned(lease.Bytes(), lease), which makes the RPC
// layer release it after the socket write — discharges the obligation,
// exactly like handing off a raw View.
var PinLeak = &Analyzer{
	Name: "pinleak",
	Doc:  "every cache View pin must be released on every path",
	Run: func(prog *Program, cfg Config, report ReportFunc) {
		runObligations("pinleak", cfg.PinObligation, prog, report)
		if cfg.LeaseObligation.Type != "" {
			runObligations("pinleak", cfg.LeaseObligation, prog, report)
		}
	},
}

// defaultPinObligation describes cache View pins for the engine.
func defaultPinObligation() ObligationSpec {
	return ObligationSpec{
		Type:          "bulletfs/internal/cache.View",
		ReleaseMethod: "Release",
		TransferOnArg: true,
		Noun:          "View",
		Verb:          "released",
	}
}

// defaultLeaseObligation describes engine read leases: a pinned View
// dressed for the wire. TransferOnArg covers the ownership handoff to
// the RPC reply path (rpc.Owned) as well as ordinary helper calls.
func defaultLeaseObligation() ObligationSpec {
	return ObligationSpec{
		Type:          "bulletfs/internal/bullet.ReadLease",
		ReleaseMethod: "Release",
		TransferOnArg: true,
		Noun:          "lease",
		Verb:          "released",
	}
}
