package analysis

import "go/ast"

// flowClient is the per-pass half of the branch-aware statement walker.
// The walker (flowWalk and friends) owns control flow — blocks, branches,
// loops, joins, termination — and calls back into the client for
// everything pass-specific: what a call does to the state, how two branch
// states merge, and what a return means. State values are owned by the
// client; the walker only threads them around and never inspects them.
type flowClient interface {
	// Fork returns an independent copy of the state for a branch arm.
	Fork(s any) any
	// Join merges two states that both reach the statement after a
	// branch (neither arm terminated).
	Join(a, b any) any
	// Simple applies a non-control-flow statement (expression,
	// assignment, declaration, send, inc/dec) to the state in place.
	Simple(s any, st ast.Stmt)
	// Return applies a return statement to the state in place; the
	// walker treats the path as terminated afterwards.
	Return(s any, st *ast.ReturnStmt)
	// Defer applies a defer statement to the state in place.
	Defer(s any, st *ast.DeferStmt)
	// Go applies a go statement to the state in place.
	Go(s any, st *ast.GoStmt)
	// Cond evaluates a branch condition against the state and returns
	// the two successor states (condition true, condition false). The
	// client may refine them (e.g. err-nilness) but must return
	// independent copies.
	Cond(s any, cond ast.Expr) (then, els any)
	// LoopEnd observes the state at the end of one loop-body walk (the
	// walker analyzes loop bodies once, on a fork); incoming is the
	// state at loop entry, bodyOut the state when the iteration falls
	// off the body's end.
	LoopEnd(incoming, bodyOut any)
}

// flowWalk runs the client over a function body starting from init and
// returns the state at fall-through (nil if every path terminated) plus
// whether any path falls through.
func flowWalk(c flowClient, body *ast.BlockStmt, init any) (any, bool) {
	s, term := flowStmts(c, body.List, init)
	return s, !term
}

// flowStmts walks a statement list; the bool result reports termination
// (every path through the list ends in return/branch).
func flowStmts(c flowClient, list []ast.Stmt, s any) (any, bool) {
	for _, st := range list {
		var term bool
		s, term = flowStmt(c, st, s)
		if term {
			return s, true
		}
	}
	return s, false
}

func flowStmt(c flowClient, st ast.Stmt, s any) (any, bool) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return flowStmts(c, st.List, s)

	case *ast.IfStmt:
		if st.Init != nil {
			s, _ = flowStmt(c, st.Init, s)
		}
		thenIn, elseIn := c.Cond(s, st.Cond)
		thenOut, thenTerm := flowStmts(c, st.Body.List, thenIn)
		elseOut, elseTerm := elseIn, false
		if st.Else != nil {
			elseOut, elseTerm = flowStmt(c, st.Else, elseIn)
		}
		switch {
		case thenTerm && elseTerm:
			return thenOut, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return c.Join(thenOut, elseOut), false
		}

	case *ast.ForStmt:
		if st.Init != nil {
			s, _ = flowStmt(c, st.Init, s)
		}
		bodyIn := c.Fork(s)
		if st.Cond != nil {
			bodyIn, s = c.Cond(s, st.Cond)
		}
		bodyOut, bodyTerm := flowStmts(c, st.Body.List, bodyIn)
		if !bodyTerm {
			if st.Post != nil {
				bodyOut, _ = flowStmt(c, st.Post, bodyOut)
			}
			c.LoopEnd(s, bodyOut)
		}
		// The body is walked once for its own findings; zero iterations
		// are always possible (or, for `for {}`, exit happens via break,
		// which we model as plain termination), so the loop is
		// state-neutral for the code after it.
		return s, false

	case *ast.RangeStmt:
		c.Simple(s, &ast.ExprStmt{X: st.X})
		bodyOut, bodyTerm := flowStmts(c, st.Body.List, c.Fork(s))
		if !bodyTerm {
			c.LoopEnd(s, bodyOut)
		}
		return s, false

	case *ast.SwitchStmt:
		if st.Init != nil {
			s, _ = flowStmt(c, st.Init, s)
		}
		if st.Tag != nil {
			c.Simple(s, &ast.ExprStmt{X: st.Tag})
		}
		return flowCases(c, st.Body.List, s, nil)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s, _ = flowStmt(c, st.Init, s)
		}
		c.Simple(s, st.Assign)
		return flowCases(c, st.Body.List, s, nil)

	case *ast.SelectStmt:
		return flowCases(c, st.Body.List, s, func(cl ast.Stmt, arm any) any {
			if comm := cl.(*ast.CommClause).Comm; comm != nil {
				arm, _ = flowStmt(c, comm, arm)
			}
			return arm
		})

	case *ast.LabeledStmt:
		return flowStmt(c, st.Stmt, s)

	case *ast.ReturnStmt:
		c.Return(s, st)
		return s, true

	case *ast.BranchStmt:
		// break/continue/goto/fallthrough all leave the current path; the
		// walker does not chase labels, so treat them as termination.
		return s, true

	case *ast.DeferStmt:
		c.Defer(s, st)
		return s, false

	case *ast.GoStmt:
		c.Go(s, st)
		return s, false

	case *ast.EmptyStmt:
		return s, false

	default:
		c.Simple(s, st)
		return s, false
	}
}

// flowCases walks switch/select clause bodies, each from a fork of the
// incoming state, and joins the arms that fall through. A missing default
// clause adds the incoming state itself (no arm taken). prep, when set,
// applies a select clause's comm statement to the arm's state first.
func flowCases(c flowClient, clauses []ast.Stmt, s any, prep func(ast.Stmt, any) any) (any, bool) {
	var live []any
	hasDefault := false
	for _, cl := range clauses {
		arm := c.Fork(s)
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.Simple(arm, &ast.ExprStmt{X: e})
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			body = cl.Body
		default:
			continue
		}
		if prep != nil {
			arm = prep(cl, arm)
		}
		out, term := flowStmts(c, body, arm)
		if !term {
			live = append(live, out)
		}
	}
	if !hasDefault {
		live = append(live, s)
	}
	if len(live) == 0 {
		return s, true
	}
	out := live[0]
	for _, l := range live[1:] {
		out = c.Join(out, l)
	}
	return out, false
}
