package analysis

import (
	_ "embed"
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder checks every mutex acquisition against the checked-in lock
// hierarchy (lockspec.json, prose twin in docs/CONCURRENCY.md). While any
// spec lock is held, only strictly lower-ranked (numerically greater) spec
// locks may be acquired: climbing the hierarchy, pairing two same-rank
// locks, re-acquiring a held lock, or acquiring anything under a leaf lock
// is a diagnostic. The check is flow-sensitive within a function (an
// Unlock ends the hold; `defer Unlock` holds to function end; branches
// fork and re-join) and interprocedural across it: each function gets a
// may-acquire summary — the set of spec locks it or anything it calls can
// take — and every call made while locks are held is checked against the
// callee's summary. RLock counts as holding. Function literals are
// analyzed with an empty held set (they run from goroutines or callbacks
// whose lock context is not the enclosing function's).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions must descend the documented lock hierarchy",
	Run:  runLockOrder,
}

//go:embed lockspec.json
var lockSpecJSON []byte

// LockSpecEntry is one lock in the hierarchy spec. ID names a struct
// field as "pkg/path.Type.Field".
type LockSpecEntry struct {
	ID   string `json:"id"`
	Rank int    `json:"rank"`
	Leaf bool   `json:"leaf,omitempty"`
	Doc  string `json:"doc,omitempty"`
}

type lockSpecFile struct {
	Locks []LockSpecEntry `json:"locks"`
}

// DefaultLockSpec returns the embedded bulletfs lock hierarchy.
func DefaultLockSpec() []LockSpecEntry {
	var f lockSpecFile
	if err := json.Unmarshal(lockSpecJSON, &f); err != nil {
		// The spec is compiled into the binary; a parse failure is a
		// build defect, not an analysis result.
		panic("analysis: embedded lockspec.json is invalid: " + err.Error())
	}
	return f.Locks
}

// lockMeta is a resolved spec entry bound to the struct field's object.
type lockMeta struct {
	entry LockSpecEntry
	name  string // display name, "Server.mu"
}

type lockOrder struct {
	prog   *Program
	report ReportFunc
	graph  *CallGraph
	locks  map[*types.Var]*lockMeta
	// may memoizes the transitive may-acquire summary per function;
	// inProg guards recursion cycles.
	may    map[*types.Func]map[*types.Var]bool
	inProg map[*types.Func]bool
	pkg    *Package // package currently being walked
}

func runLockOrder(prog *Program, cfg Config, report ReportFunc) {
	lo := &lockOrder{
		prog:   prog,
		report: report,
		graph:  prog.CallGraph(),
		locks:  make(map[*types.Var]*lockMeta),
		may:    make(map[*types.Func]map[*types.Var]bool),
		inProg: make(map[*types.Func]bool),
	}
	for _, e := range cfg.LockSpec {
		if v, name := resolveFieldID(prog, e.ID); v != nil {
			lo.locks[v] = &lockMeta{entry: e, name: name}
		}
		// Entries that do not resolve (the named package is not loaded)
		// are skipped: running the pass over a single package still
		// checks whatever locks are in scope.
	}
	for _, fn := range lo.graph.Order {
		info := lo.graph.Funcs[fn]
		lo.pkg = info.Pkg
		lo.walkBody(info.Decl.Body, heldSet{})
	}
}

// resolveFieldID resolves "pkg/path.Type.Field" to the field's object.
func resolveFieldID(prog *Program, id string) (*types.Var, string) {
	pkgPath, typeName, fieldName, ok := splitFieldID(id)
	if !ok {
		return nil, ""
	}
	pkg := prog.PackageByPath(pkgPath)
	if pkg == nil || pkg.Types == nil {
		return nil, ""
	}
	tn, ok := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil, ""
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == fieldName {
			return f, typeName + "." + fieldName
		}
	}
	return nil, ""
}

// splitFieldID splits "pkg/path.Type.Field" at its last two dots.
func splitFieldID(id string) (pkgPath, typeName, fieldName string, ok bool) {
	last, prev := -1, -1
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] != '.' {
			continue
		}
		if last == -1 {
			last = i
		} else {
			prev = i
			break
		}
	}
	if last == -1 || prev == -1 {
		return "", "", "", false
	}
	return id[:prev], id[prev+1 : last], id[last+1:], true
}

// heldSet is the set of spec locks held on the current path.
type heldSet map[*types.Var]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for v := range h {
		c[v] = true
	}
	return c
}

// --- flowClient implementation ---

func (lo *lockOrder) Fork(s any) any { return s.(heldSet).clone() }

func (lo *lockOrder) Join(a, b any) any {
	// Union: a lock held on either arm is treated as held afterwards, so
	// a conditional Lock keeps later acquisitions honest.
	out := a.(heldSet)
	for v := range b.(heldSet) {
		out[v] = true
	}
	return out
}

func (lo *lockOrder) Simple(s any, st ast.Stmt) {
	ast.Inspect(st, lo.visitor(s.(heldSet)))
}

func (lo *lockOrder) Return(s any, st *ast.ReturnStmt) {
	for _, e := range st.Results {
		ast.Inspect(e, lo.visitor(s.(heldSet)))
	}
}

func (lo *lockOrder) Defer(s any, st *ast.DeferStmt) {
	held := s.(heldSet)
	if v, op := lo.lockTarget(st.Call); v != nil && (op == "Unlock" || op == "RUnlock") {
		// `defer mu.Unlock()`: the lock is held until the function
		// returns; keeping it in the set is exactly right.
		return
	}
	// Any other deferred call runs with whatever is held at return time;
	// our conservative model checks it against the current held set.
	ast.Inspect(st.Call, lo.visitor(held))
}

func (lo *lockOrder) Go(s any, st *ast.GoStmt) {
	// The goroutine starts with nothing held; check only the argument
	// expressions (evaluated now) and walk any literal with an empty set.
	for _, arg := range st.Call.Args {
		ast.Inspect(arg, lo.visitor(s.(heldSet)))
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		lo.walkBody(lit.Body, heldSet{})
	}
}

func (lo *lockOrder) Cond(s any, cond ast.Expr) (any, any) {
	held := s.(heldSet)
	ast.Inspect(cond, lo.visitor(held))
	return held.clone(), held.clone()
}

func (lo *lockOrder) LoopEnd(incoming, bodyOut any) {}

func (lo *lockOrder) walkBody(body *ast.BlockStmt, held heldSet) {
	flowWalk(lo, body, held)
}

// visitor returns the expression visitor that applies lock operations and
// call checks to held. Function literals are cut out of the enclosing
// walk and analyzed with an empty held set.
func (lo *lockOrder) visitor(held heldSet) func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lo.walkBody(n.Body, heldSet{})
			return false
		case *ast.CallExpr:
			if v, op := lo.lockTarget(n); v != nil {
				switch op {
				case "Lock", "RLock":
					lo.checkAcquire(n.Pos(), v, held)
					held[v] = true
				case "Unlock", "RUnlock":
					delete(held, v)
				}
				return false
			}
			if callee := calleeOf(lo.pkg.Info, n); callee != nil && len(held) > 0 {
				lo.checkCall(n.Pos(), callee, held)
			}
		}
		return true
	}
}

// lockTarget resolves `expr.Lock()` / `.RLock()` / `.Unlock()` /
// `.RUnlock()` to the spec lock it operates on, if any.
func (lo *lockOrder) lockTarget(call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	x := sel.X
	for {
		switch t := x.(type) {
		case *ast.ParenExpr:
			x = t.X
		case *ast.StarExpr:
			x = t.X
		case *ast.IndexExpr:
			x = t.X // s.inoMu[i].Lock() acquires a stripe of inoMu
		default:
			goto resolved
		}
	}
resolved:
	var obj types.Object
	switch t := x.(type) {
	case *ast.SelectorExpr:
		if s, ok := lo.pkg.Info.Selections[t]; ok {
			obj = s.Obj()
		} else {
			obj = lo.pkg.Info.Uses[t.Sel]
		}
	case *ast.Ident:
		obj = lo.pkg.Info.Uses[t]
	}
	if v, ok := obj.(*types.Var); ok && lo.locks[v] != nil {
		return v, op
	}
	return nil, ""
}

// checkAcquire reports the acquisition of v against every lock in held.
func (lo *lockOrder) checkAcquire(pos token.Pos, v *types.Var, held heldSet) {
	nv := lo.locks[v]
	for h := range held {
		nh := lo.locks[h]
		switch {
		case h == v:
			lo.reportAt(pos, "%s is acquired while already held", nv.name)
		case nh.entry.Leaf:
			lo.reportAt(pos, "%s is acquired while leaf lock %s is held", nv.name, nh.name)
		case nv.entry.Rank < nh.entry.Rank:
			lo.reportAt(pos, "acquiring %s (rank %d) while holding %s (rank %d) climbs the lock hierarchy",
				nv.name, nv.entry.Rank, nh.name, nh.entry.Rank)
		case nv.entry.Rank == nh.entry.Rank:
			lo.reportAt(pos, "%s and %s are same-rank locks (rank %d) and must not be held together",
				nv.name, nh.name, nv.entry.Rank)
		}
	}
}

// checkCall reports locks the callee may (transitively) acquire against
// the caller's held set.
func (lo *lockOrder) checkCall(pos token.Pos, callee *types.Func, held heldSet) {
	for v := range lo.mayAcquire(callee) {
		if lo.callViolation(v, held) {
			nv := lo.locks[v]
			for h := range held {
				nh := lo.locks[h]
				switch {
				case h == v:
					lo.reportAt(pos, "call to %s may acquire %s, which is already held",
						funcDisplayName(callee), nv.name)
				case nh.entry.Leaf:
					lo.reportAt(pos, "call to %s may acquire %s while leaf lock %s is held",
						funcDisplayName(callee), nv.name, nh.name)
				case nv.entry.Rank < nh.entry.Rank:
					lo.reportAt(pos, "call to %s may acquire %s (rank %d) while %s (rank %d) is held, climbing the lock hierarchy",
						funcDisplayName(callee), nv.name, nv.entry.Rank, nh.name, nh.entry.Rank)
				case nv.entry.Rank == nh.entry.Rank:
					lo.reportAt(pos, "call to %s may acquire %s while same-rank %s (rank %d) is held",
						funcDisplayName(callee), nv.name, nh.name, nv.entry.Rank)
				}
			}
		}
	}
}

func (lo *lockOrder) callViolation(v *types.Var, held heldSet) bool {
	nv := lo.locks[v]
	for h := range held {
		nh := lo.locks[h]
		if h == v || nh.entry.Leaf || nv.entry.Rank <= nh.entry.Rank {
			return true
		}
	}
	return false
}

// mayAcquire returns the set of spec locks fn or its (transitive,
// statically resolvable) callees can acquire. Function literals inside fn
// contribute too: they run on fn's behalf often enough that leaving them
// out would hide real inversions.
func (lo *lockOrder) mayAcquire(fn *types.Func) map[*types.Var]bool {
	if m, ok := lo.may[fn]; ok {
		return m
	}
	info := lo.graph.Funcs[fn]
	if info == nil || lo.inProg[fn] {
		return nil
	}
	lo.inProg[fn] = true
	m := make(map[*types.Var]bool)
	savedPkg := lo.pkg
	lo.pkg = info.Pkg
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, op := lo.lockTarget(call); v != nil && (op == "Lock" || op == "RLock") {
			m[v] = true
		}
		return true
	})
	lo.pkg = savedPkg
	for _, cs := range info.Calls {
		for v := range lo.mayAcquire(cs.Callee) {
			m[v] = true
		}
	}
	delete(lo.inProg, fn)
	lo.may[fn] = m
	return m
}

func (lo *lockOrder) reportAt(pos token.Pos, format string, args ...any) {
	lo.report(pos, format, args...)
}
