// Package analysis is bulletlint: a zero-dependency static-analysis suite
// that enforces the Bullet server's concurrency, capability, and
// error-handling invariants — the properties the paper's reliability story
// depends on but the Go compiler cannot check.
//
// The suite is built from stdlib go/parser, go/ast, and go/types only. It
// loads every package in the module from source (see LoadModule) and runs
// nine passes over the typed syntax trees. Five are per-function:
//
//   - ctcmp: capability check fields must be compared in constant time
//     (crypto/subtle.ConstantTimeCompare), never with == / != / bytes.Equal,
//     so forgery attempts cannot measure how many bytes matched.
//   - lockguard: struct fields annotated "// guarded by <mu>" may only be
//     accessed by functions that visibly lock that mutex (or that follow
//     the FooLocked naming convention for caller-holds-lock helpers).
//   - panicfree: no panic call may be reachable from an RPC handler entry
//     point; a malformed request must degrade to an error reply, never take
//     the server down mid-request.
//   - errwrap: errors returned across exported package boundaries must be
//     sentinel errors or wrapped with %w so callers can errors.Is/As them.
//   - goroutinestop: every goroutine launched by server code must be
//     stoppable (observes a context or stop channel) or accounted
//     (WaitGroup-tracked), so shutdown cannot leak work.
//
// Four are interprocedural, built on a module-wide call graph (see
// CallGraph) and a flow-sensitive walk of each function body:
//
//   - lockorder: every mutex acquisition must descend the checked-in lock
//     hierarchy (lockspec.json, prose twin docs/CONCURRENCY.md); helpers'
//     transitive may-acquire sets are checked at every call made under a
//     held lock.
//   - pinleak: every cache View pin must be released on every path;
//     returning the View transfers the obligation to the caller.
//   - spanbalance: every trace span opened with Begin must be closed with
//     End on every path, with the same transfer-by-return rule.
//   - rightscheck: every RPC command handler must verify a capability
//     right before reaching a state-mutating engine method.
//
// Diagnostics can be suppressed one at a time with an annotation on the
// offending line or the line above it:
//
//	//lint:ignore <pass>[,<pass>...] <reason>
//
// The reason is mandatory: a suppression without a justification is itself
// a diagnostic. So is a stale suppression — one whose named pass ran and
// found nothing on the lines it covers — because a suppression that
// outlives its finding hides the next real one.
package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Errors returned by the driver.
var (
	// ErrUnknownPass means a -disable flag named a pass that does not exist.
	ErrUnknownPass = errors.New("analysis: unknown pass")
	// ErrNoModule means no go.mod was found at or above the start directory.
	ErrNoModule = errors.New("analysis: no go.mod found")
	// ErrBadPattern means a package pattern matched nothing.
	ErrBadPattern = errors.New("analysis: pattern matched no packages")
)

// Diagnostic is one finding: a rule violation at a position.
type Diagnostic struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: message (pass) form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Pass)
}

// Config carries the knobs passes need beyond the syntax trees themselves.
type Config struct {
	// PanicRoots lists import-path prefixes whose exported functions and
	// methods are treated as RPC-handler entry points by panicfree.
	PanicRoots []string

	// LockSpec is the lock hierarchy lockorder enforces. DefaultConfig
	// uses the embedded lockspec.json; tests point it at their own
	// hierarchies.
	LockSpec []LockSpecEntry

	// PinObligation and SpanObligation parameterize the obligation
	// engine for pinleak and spanbalance. LeaseObligation is pinleak's
	// second resource: engine ReadLeases, which wrap pinned Views and
	// must be Released (or handed to the RPC reply path, which releases
	// them after the socket write) on every path. An empty Type disables
	// it.
	PinObligation   ObligationSpec
	SpanObligation  ObligationSpec
	LeaseObligation ObligationSpec

	// RightsRoots lists the package paths whose functions rightscheck
	// treats as command handlers. RightsVerifiers and RightsMutators
	// name the capability-checking and state-mutating functions, as
	// "pkg/path.Func" or "pkg/path.Type.Method".
	RightsRoots     []string
	RightsVerifiers []string
	RightsMutators  []string
}

// DefaultConfig returns the configuration bulletlint ships with: the
// Bullet server's RPC-facing packages are the panic roots, the embedded
// lockspec.json is the hierarchy, cache Views and trace spans are the
// tracked obligations, and the bulletsvc handlers are the rights roots.
func DefaultConfig() Config {
	return Config{
		PanicRoots: []string{
			"bulletfs/internal/bullet",
			"bulletfs/internal/bulletsvc",
			"bulletfs/internal/directory",
			"bulletfs/internal/rpc",
		},
		LockSpec:        DefaultLockSpec(),
		PinObligation:   defaultPinObligation(),
		SpanObligation:  defaultSpanObligation(),
		LeaseObligation: defaultLeaseObligation(),
		RightsRoots:     []string{"bulletfs/internal/bulletsvc"},
		RightsVerifiers: []string{
			"bulletfs/internal/bullet.Server.verify",
			"bulletfs/internal/bullet.Server.AuthorizeRead",
			"bulletfs/internal/bullet.Server.AuthorizeAdmin",
			"bulletfs/internal/capability.Verify",
		},
		RightsMutators: []string{
			"bulletfs/internal/layout.Table.Allocate",
			"bulletfs/internal/layout.Table.Free",
			"bulletfs/internal/layout.Table.WriteInode",
			"bulletfs/internal/layout.Table.FlushSums",
			"bulletfs/internal/layout.Table.Retarget",
			"bulletfs/internal/alloc.Allocator.Alloc",
			"bulletfs/internal/alloc.Allocator.Free",
			"bulletfs/internal/alloc.Allocator.Reset",
			"bulletfs/internal/bullet.Server.StartRecover",
			"bulletfs/internal/scrub.Scrubber.TriggerPass",
			"bulletfs/internal/cache.Cache.Compact",
		},
	}
}

// An Analyzer is one pass over the whole program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, cfg Config, report ReportFunc)
}

// ReportFunc records one diagnostic at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// All returns every pass in the suite, in the order they run.
func All() []*Analyzer {
	return []*Analyzer{
		CTCmp, LockGuard, PanicFree, ErrWrap, GoroutineStop,
		LockOrder, PinLeak, SpanBalance, RightsCheck,
	}
}

// Select returns the suite minus the named passes. Unknown names in
// disabled are reported as an error so a typo cannot silently disable
// nothing.
func Select(disabled []string) ([]*Analyzer, error) {
	off := make(map[string]bool, len(disabled))
	for _, name := range disabled {
		if name = strings.TrimSpace(name); name != "" {
			off[name] = true
		}
	}
	var out []*Analyzer
	for _, a := range All() {
		if off[a.Name] {
			delete(off, a.Name)
			continue
		}
		out = append(out, a)
	}
	if len(off) > 0 {
		var unknown []string
		for name := range off {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("%s: %w", strings.Join(unknown, ", "), ErrUnknownPass)
	}
	return out, nil
}

// Run executes the given passes over the program and returns the surviving
// diagnostics, sorted by position, with lint:ignore suppressions applied.
func Run(prog *Program, cfg Config, passes []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range passes {
		name := a.Name
		a.Run(prog, cfg, func(pos token.Pos, format string, args ...any) {
			p := prog.Fset.Position(pos)
			diags = append(diags, Diagnostic{
				Pass:    name,
				File:    p.Filename,
				Line:    p.Line,
				Col:     p.Column,
				Message: fmt.Sprintf(format, args...),
			})
		})
	}
	sup := collectSuppressions(prog)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	diags = append(sup.malformed, kept...)
	diags = append(diags, sup.stale(passes)...)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Pass < diags[j].Pass
	})
	// Drop exact duplicates (a pass may flag one position twice, e.g. both
	// operands of a comparison).
	uniq := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			uniq = append(uniq, d)
		}
	}
	return uniq
}

// ignoreRe matches the suppression annotation grammar:
// //lint:ignore pass[,pass...] reason
var ignoreRe = regexp.MustCompile(`^lint:ignore\s+([a-z]+(?:\s*,\s*[a-z]+)*)(\s+\S.*)?$`)

// ignoreAnnotation extracts the annotation body from a comment, or "" when
// the comment is not an annotation. Only a comment whose own text starts
// with the marker counts; prose that merely mentions the grammar does not.
func ignoreAnnotation(text string) string {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if strings.HasPrefix(body, "lint:ignore") {
		return body
	}
	return ""
}

// suppEntry is one (annotation line, pass) suppression; used records
// whether it absorbed at least one diagnostic this run.
type suppEntry struct {
	col  int
	used bool
}

type suppressions struct {
	// byFileLine maps file -> line -> suppressed pass name -> entry.
	byFileLine map[string]map[int]map[string]*suppEntry
	malformed  []Diagnostic
}

func (s suppressions) covers(d Diagnostic) bool {
	lines := s.byFileLine[d.File]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{d.Line, d.Line - 1} {
		if e := lines[ln][d.Pass]; e != nil {
			e.used = true
			return true
		}
	}
	return false
}

// stale reports every suppression that absorbed nothing, restricted to
// passes that actually ran this invocation (a -disable'd pass proves
// nothing about its suppressions).
func (s suppressions) stale(passes []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(passes))
	for _, a := range passes {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for file, lines := range s.byFileLine {
		for line, set := range lines {
			for pass, e := range set {
				if !e.used && ran[pass] {
					out = append(out, Diagnostic{
						Pass: "lint", File: file, Line: line, Col: e.col,
						Message: fmt.Sprintf("stale lint:ignore: pass %s reports nothing here; delete the suppression", pass),
					})
				}
			}
		}
	}
	return out
}

func collectSuppressions(prog *Program) suppressions {
	sup := suppressions{byFileLine: make(map[string]map[int]map[string]*suppEntry)}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					body := ignoreAnnotation(c.Text)
					if body == "" {
						continue
					}
					p := prog.Fset.Position(c.Pos())
					m := ignoreRe.FindStringSubmatch(body)
					if m == nil || strings.TrimSpace(m[2]) == "" {
						sup.malformed = append(sup.malformed, Diagnostic{
							Pass: "lint", File: p.Filename, Line: p.Line, Col: p.Column,
							Message: "malformed lint:ignore: want //lint:ignore <pass>[,<pass>...] <reason>",
						})
						continue
					}
					lines := sup.byFileLine[p.Filename]
					if lines == nil {
						lines = make(map[int]map[string]*suppEntry)
						sup.byFileLine[p.Filename] = lines
					}
					set := lines[p.Line]
					if set == nil {
						set = make(map[string]*suppEntry)
						lines[p.Line] = set
					}
					for _, name := range strings.Split(m[1], ",") {
						name = strings.TrimSpace(name)
						if !known[name] {
							sup.malformed = append(sup.malformed, Diagnostic{
								Pass: "lint", File: p.Filename, Line: p.Line, Col: p.Column,
								Message: fmt.Sprintf("lint:ignore names unknown pass %q", name),
							})
							continue
						}
						if set[name] == nil {
							set[name] = &suppEntry{col: p.Column}
						}
					}
				}
			}
		}
	}
	return sup
}

// enclosingFunc returns the innermost FuncDecl in file containing pos,
// or nil when pos sits outside any function body.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
