package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CTCmp flags comparisons of capability secrets that are not constant
// time. The check field of a Bullet capability is the only thing standing
// between a client and rights amplification (paper §2.1); a == comparison
// short-circuits on the first differing byte, so a forger who can time the
// server's replies learns how much of a guess was right. Every comparison
// involving capability.Check or capability.Random must therefore go
// through crypto/subtle.ConstantTimeCompare.
var CTCmp = &Analyzer{
	Name: "ctcmp",
	Doc:  "forbid ==, !=, and bytes.Equal on capability check fields; require crypto/subtle.ConstantTimeCompare",
	Run:  runCTCmp,
}

// isCapabilitySecret reports whether t is (or points to) one of the
// capability package's secret-bearing named types.
func isCapabilitySecret(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/capability") {
		return false
	}
	return obj.Name() == "Check" || obj.Name() == "Random"
}

func runCTCmp(prog *Program, _ Config, report ReportFunc) {
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		typeName := func(e ast.Expr) (string, bool) {
			t := info.TypeOf(e)
			if !isCapabilitySecret(t) {
				return "", false
			}
			return types.TypeString(t, types.RelativeTo(pkg.Types)), true
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					name, secret := typeName(n.X)
					if !secret {
						name, secret = typeName(n.Y)
					}
					if secret {
						report(n.OpPos, "%s comparison of capability secret %s leaks timing; use crypto/subtle.ConstantTimeCompare", n.Op, name)
					}
				case *ast.CallExpr:
					if !isPkgFunc(info, n.Fun, "bytes", "Equal") {
						return true
					}
					for _, arg := range n.Args {
						base := arg
						if sl, ok := arg.(*ast.SliceExpr); ok {
							base = sl.X
						}
						if name, secret := typeName(base); secret {
							report(n.Pos(), "bytes.Equal on capability secret %s leaks timing; use crypto/subtle.ConstantTimeCompare", name)
							break
						}
					}
				}
				return true
			})
		}
	}
}

// isPkgFunc reports whether fun is a reference to the function pkg.name,
// resolved through the type information (so aliased imports still match).
func isPkgFunc(info *types.Info, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}
