package analysis

// SpanBalance verifies that every trace span opened with Ctx.Begin is
// closed with Ctx.End on every path. An unended span sits in the arena
// with DurPending forever and poisons the slow-request log with bogus
// durations; the flight recorder's usefulness (PR 4) depends on spans
// pairing up. The pass uses the same obligation engine as pinleak:
// Begin's result must reach an End call, be returned to the caller
// (helpers that open a span for their caller to close), or be handed to
// a closure. Ctx.Add returns an already-measured span and Trace.Root
// merely looks one up, so neither creates an obligation. Unlike View
// pins, passing a span as an argument to an arbitrary function does NOT
// discharge it — spans are closed by End and nothing else (parent spans
// are passed to Begin all the time and remain open).
var SpanBalance = &Analyzer{
	Name: "spanbalance",
	Doc:  "every trace span Begin must be matched by an End on every path",
	Run: func(prog *Program, cfg Config, report ReportFunc) {
		runObligations("spanbalance", cfg.SpanObligation, prog, report)
	},
}

// defaultSpanObligation describes trace spans for the engine.
func defaultSpanObligation() ObligationSpec {
	return ObligationSpec{
		Type:         "bulletfs/internal/trace.Span",
		ReleaseFuncs: []string{"bulletfs/internal/trace.Ctx.End"},
		NoObligation: []string{
			"bulletfs/internal/trace.Ctx.Add",
			"bulletfs/internal/trace.Trace.Root",
		},
		TransferOnArg: false,
		Noun:          "span",
		Verb:          "ended",
	}
}
