package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared obligation engine behind pinleak and
// spanbalance. Both passes check the same shape of invariant: a call
// returns a resource handle (*cache.View, *trace.Span) that must be
// closed on every path through the function, where "closed" can mean an
// explicit release, handing the value to a function that releases it, or
// returning it to the caller (which transfers the obligation — the
// caller's copy of this same analysis picks it up). The engine is a
// flow-sensitive walk over each function body: obligations are born at
// creating calls, follow the local variable they are bound to through
// reassignments, become vacuous on branches where the paired error is
// non-nil (a failed call returns no resource), and are reported once, at
// the creation site, if any path drops them.

// ObligationSpec parameterizes the engine for one resource type.
type ObligationSpec struct {
	// Type is the resource's named type, "pkg/path.TypeName"; a value of
	// type *Type returned by a call creates an obligation.
	Type string
	// ReleaseMethod names the method on the resource whose call
	// discharges it (e.g. "Release"). Empty means no such method.
	ReleaseMethod string
	// ReleaseFuncs lists funcIDs that discharge a resource passed to
	// them as an argument (e.g. trace.Ctx.End).
	ReleaseFuncs []string
	// NoObligation lists funcIDs whose results, despite having the
	// resource type, carry no obligation (e.g. trace.Ctx.Add returns an
	// already-closed span).
	NoObligation []string
	// TransferOnArg discharges a resource passed as an argument to ANY
	// call: the callee becomes responsible. True for View pins (helpers
	// routinely consume them); false for spans (only End closes one).
	TransferOnArg bool
	// Noun and Verb render messages: "View"/"released", "span"/"ended".
	Noun string
	Verb string
}

// oblig is one live obligation. The pointer is shared between forked
// branch states so the creation site is reported at most once.
type oblig struct {
	pos      token.Pos
	src      string     // display name of the creating call
	errVar   *types.Var // error result paired with the creation, if any
	reported bool
}

// oblState maps local variables to the obligation they currently carry.
type oblState map[*types.Var]*oblig

// obligations runs the engine over every function of the program.
type obligations struct {
	pass   string
	spec   ObligationSpec
	report ReportFunc
	pkg    *Package
}

func runObligations(pass string, spec ObligationSpec, prog *Program, report ReportFunc) {
	ob := &obligations{pass: pass, spec: spec, report: report}
	graph := prog.CallGraph()
	for _, fn := range graph.Order {
		info := graph.Funcs[fn]
		ob.pkg = info.Pkg
		ob.walkBody(info.Decl.Body)
	}
}

// walkBody analyzes one function (or function literal) body independently.
func (ob *obligations) walkBody(body *ast.BlockStmt) {
	out, fellThrough := flowWalk(ob, body, oblState{})
	if fellThrough {
		ob.leakAll(out.(oblState))
	}
}

// --- flowClient implementation ---

func (ob *obligations) Fork(s any) any {
	in := s.(oblState)
	c := make(oblState, len(in))
	for v, o := range in {
		c[v] = o
	}
	return c
}

func (ob *obligations) Join(a, b any) any {
	// Union: an obligation still open on either arm stays open. The
	// shared reported flag keeps a both-arms leak to one diagnostic.
	out := a.(oblState)
	for v, o := range b.(oblState) {
		if _, ok := out[v]; !ok {
			out[v] = o
		}
	}
	return out
}

func (ob *obligations) Simple(s any, st ast.Stmt) {
	state := s.(oblState)
	switch st := st.(type) {
	case *ast.AssignStmt:
		ob.assign(state, st.Lhs, st.Rhs)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					ob.assign(state, lhs, vs.Values)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			ob.scan(state, call)
			if idxs, callee := ob.creations(call); len(idxs) > 0 {
				ob.reportAt(call.Pos(), "result of %s discards a %s that must be %s",
					funcDisplayName(callee), ob.spec.Noun, ob.spec.Verb)
			}
			return
		}
		ob.scan(state, st.X)
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				ob.scan(state, e)
				return false
			}
			return true
		})
	}
}

func (ob *obligations) Return(s any, st *ast.ReturnStmt) {
	state := s.(oblState)
	for _, e := range st.Results {
		// Returning the resource transfers the obligation to the caller.
		if v := ob.identVar(e); v != nil && state[v] != nil {
			delete(state, v)
			continue
		}
		ob.scan(state, e)
	}
	ob.leakAll(state)
}

func (ob *obligations) Defer(s any, st *ast.DeferStmt) {
	// A deferred release runs on every exit; treating it as immediate is
	// sound for the "closed on all paths" property.
	ob.scan(s.(oblState), st.Call)
}

func (ob *obligations) Go(s any, st *ast.GoStmt) {
	// The goroutine takes ownership of anything it captures or receives.
	ob.scan(s.(oblState), st.Call)
}

func (ob *obligations) Cond(s any, cond ast.Expr) (any, any) {
	state := s.(oblState)
	ob.scan(state, cond)
	then := ob.Fork(state).(oblState)
	els := ob.Fork(state).(oblState)
	ob.refine(cond, then, els)
	return then, els
}

// LoopEnd reports obligations created inside a loop body that are still
// open when an iteration ends: the next iteration's rebinding would lose
// them. Obligations that entered the loop from outside are left to the
// enclosing path.
func (ob *obligations) LoopEnd(s, bodyOut any) {
	in := s.(oblState)
	entered := make(map[*oblig]bool, len(in))
	for _, o := range in {
		entered[o] = true
	}
	for _, o := range bodyOut.(oblState) {
		if !entered[o] {
			ob.leak(o)
		}
	}
}

// --- core transfer function ---

// assign applies lhs... = rhs... to the state: creations bind obligations
// to their destination variables, copies retarget them, stores into
// fields or slices count as escapes (some longer-lived owner has them).
func (ob *obligations) assign(state oblState, lhs, rhs []ast.Expr) {
	// Single-call form: v, err := create(...) — possibly multi-result.
	if len(rhs) == 1 {
		if call, ok := rhs[0].(*ast.CallExpr); ok {
			ob.scan(state, call)
			idxs, callee := ob.creations(call)
			if len(idxs) == 0 {
				return
			}
			errVar := ob.lastErrVar(call, lhs)
			for _, i := range idxs {
				if i >= len(lhs) {
					continue // v := pair() with pair result unpacked elsewhere
				}
				ob.bind(state, lhs[i], call, callee, errVar)
			}
			return
		}
	}
	// General form: pairwise value moves.
	for i, r := range rhs {
		if i >= len(lhs) {
			ob.scan(state, r)
			continue
		}
		if v := ob.identVar(r); v != nil && state[v] != nil {
			ob.move(state, lhs[i], v)
			continue
		}
		ob.scan(state, r)
		if call, ok := r.(*ast.CallExpr); ok {
			if idxs, callee := ob.creations(call); len(idxs) > 0 {
				ob.bind(state, lhs[i], call, callee, nil)
			}
		}
	}
	for _, l := range lhs {
		if _, ok := l.(*ast.Ident); !ok {
			ob.scan(state, l) // index/field expressions can contain calls
		}
	}
}

// bind attaches a fresh obligation for a creating call to its destination.
func (ob *obligations) bind(state oblState, dst ast.Expr, call *ast.CallExpr, callee *types.Func, errVar *types.Var) {
	id, isIdent := dst.(*ast.Ident)
	if isIdent && id.Name == "_" {
		ob.reportAt(call.Pos(), "result of %s discards a %s that must be %s",
			funcDisplayName(callee), ob.spec.Noun, ob.spec.Verb)
		return
	}
	if !isIdent {
		return // stored straight into a field/slice: escapes to its owner
	}
	v := ob.defOrUse(id)
	if v == nil {
		return
	}
	if old := state[v]; old != nil && !old.reported {
		old.reported = true
		ob.reportAt(old.pos, "%s obtained from %s is overwritten before it is %s",
			ob.spec.Noun, old.src, ob.spec.Verb)
	}
	state[v] = &oblig{pos: call.Pos(), src: funcDisplayName(callee), errVar: errVar}
}

// move retargets v's obligation to dst (plain copy) or discharges it as
// an escape (store into a field, slice element, or dereference).
func (ob *obligations) move(state oblState, dst ast.Expr, v *types.Var) {
	o := state[v]
	delete(state, v)
	if id, ok := dst.(*ast.Ident); ok {
		if id.Name == "_" {
			state[v] = o // `_ = v` moves nothing
			return
		}
		if nv := ob.defOrUse(id); nv != nil {
			state[nv] = o
			return
		}
	}
	// Non-ident destination: the value escaped to a longer-lived owner.
}

// scan walks an expression for effects: releases, transfers, captures,
// and nested function literals. Creations are NOT handled here — only
// statement-level forms track them (a resource consumed inside a larger
// expression has been handed to that expression).
func (ob *obligations) scan(state oblState, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ob.capture(state, n)
			ob.walkBody(n.Body)
			return false
		case *ast.CallExpr:
			ob.applyCall(state, n)
		}
		return true
	})
}

// applyCall discharges obligations a call releases or takes over.
func (ob *obligations) applyCall(state oblState, call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == ob.spec.ReleaseMethod {
		if v := ob.identVar(sel.X); v != nil && state[v] != nil {
			delete(state, v)
			return
		}
	}
	callee := calleeOf(ob.pkg.Info, call)
	release := callee != nil && contains(ob.spec.ReleaseFuncs, funcID(callee))
	if !release && !ob.spec.TransferOnArg {
		return
	}
	for _, arg := range call.Args {
		if v := ob.identVar(arg); v != nil && state[v] != nil {
			delete(state, v)
		}
	}
}

// capture discharges every obligation whose variable a function literal
// references: the closure owns it now (deferred cleanups, goroutine
// hand-offs, callbacks all look like this).
func (ob *obligations) capture(state oblState, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := ob.pkg.Info.Uses[id].(*types.Var); ok && state[v] != nil {
				delete(state, v)
			}
		}
		return true
	})
}

// refine applies error-nilness facts from a branch condition: on the arm
// where an obligation's paired error is known non-nil, the creating call
// failed and returned no resource, so the obligation is vacuous there.
func (ob *obligations) refine(cond ast.Expr, then, els oblState) {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		ob.refine(c.X, then, els)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			ob.refine(c.X, els, then)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			// then-arm implies both operands; else-arm implies nothing.
			ob.refine(c.X, then, nil)
			ob.refine(c.Y, then, nil)
		case token.LOR:
			// else-arm implies both operands false.
			ob.refine(c.X, nil, els)
			ob.refine(c.Y, nil, els)
		case token.EQL, token.NEQ:
			nv := ob.nilComparedVar(c)
			if nv == nil {
				return
			}
			// nv may be the resource itself (`if sp == nil`: no resource
			// on the nil arm) or a paired error (`if err != nil`: the
			// creating call failed, so no resource on that arm).
			resourceNilArm, errNonNilArm := then, then
			if c.Op == token.EQL {
				errNonNilArm = els
			} else {
				resourceNilArm = els
			}
			if resourceNilArm != nil {
				delete(resourceNilArm, nv)
			}
			if errNonNilArm != nil {
				for v, o := range errNonNilArm {
					if o.errVar == nv {
						delete(errNonNilArm, v)
					}
				}
			}
		}
	}
}

// nilComparedVar returns the variable compared against nil, if the
// comparison has exactly the `v ==/!= nil` shape.
func (ob *obligations) nilComparedVar(c *ast.BinaryExpr) *types.Var {
	x, y := c.X, c.Y
	if ob.isNil(y) {
		return ob.identVar(x)
	}
	if ob.isNil(x) {
		return ob.identVar(y)
	}
	return nil
}

func (ob *obligations) isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := ob.pkg.Info.Uses[id].(*types.Nil)
	return isNil
}

// creations returns the result indices of call that carry an obligation,
// plus the resolved callee (which may be nil for indirect calls).
func (ob *obligations) creations(call *ast.CallExpr) ([]int, *types.Func) {
	tv, ok := ob.pkg.Info.Types[call]
	if !ok {
		return nil, nil
	}
	callee := calleeOf(ob.pkg.Info, call)
	if callee != nil && contains(ob.spec.NoObligation, funcID(callee)) {
		return nil, nil
	}
	if callee == nil {
		return nil, nil // indirect call: no summary to pin blame on
	}
	var idxs []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if ob.isOblType(t.At(i).Type()) {
				idxs = append(idxs, i)
			}
		}
	default:
		if ob.isOblType(t) {
			idxs = append(idxs, 0)
		}
	}
	return idxs, callee
}

// isOblType reports whether t is *T for the spec's resource type.
func (ob *obligations) isOblType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path()+"."+named.Obj().Name() == ob.spec.Type
}

// lastErrVar pairs a creation with the error variable bound from the same
// call, when the call's last result is an error landing in a plain ident.
func (ob *obligations) lastErrVar(call *ast.CallExpr, lhs []ast.Expr) *types.Var {
	tv, ok := ob.pkg.Info.Types[call]
	if !ok {
		return nil
	}
	tup, ok := tv.Type.(*types.Tuple)
	if !ok || tup.Len() != len(lhs) {
		return nil
	}
	last := tup.Len() - 1
	if !types.Identical(tup.At(last).Type(), types.Universe.Lookup("error").Type()) {
		return nil
	}
	if id, ok := lhs[last].(*ast.Ident); ok && id.Name != "_" {
		return ob.defOrUse(id)
	}
	return nil
}

// identVar resolves a plain identifier expression to its variable.
func (ob *obligations) identVar(e ast.Expr) *types.Var {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := ob.pkg.Info.Uses[id].(*types.Var)
	return v
}

// defOrUse resolves an identifier appearing on the left of = or :=.
func (ob *obligations) defOrUse(id *ast.Ident) *types.Var {
	if v, ok := ob.pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := ob.pkg.Info.Uses[id].(*types.Var)
	return v
}

func (ob *obligations) leakAll(state oblState) {
	for _, o := range state {
		ob.leak(o)
	}
}

func (ob *obligations) leak(o *oblig) {
	if o.reported {
		return
	}
	o.reported = true
	ob.reportAt(o.pos, "%s obtained from %s is not %s on every path",
		ob.spec.Noun, o.src, ob.spec.Verb)
}

func (ob *obligations) reportAt(pos token.Pos, format string, args ...any) {
	ob.report(pos, format, args...)
}

func contains(list []string, s string) bool {
	for _, e := range list {
		if e == s {
			return true
		}
	}
	return false
}
