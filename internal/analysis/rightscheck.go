package analysis

import (
	"go/ast"
	"go/types"
)

// RightsCheck asserts that every command handler in the RPC service
// packages verifies a capability right before anything it calls mutates
// server state. The capability model is the paper's whole access-control
// story: a handler that reaches the allocator, inode table, cache
// compaction, or recovery machinery without first passing the request's
// capability through a verifier is an open door, whatever the code
// comments promise. The pass walks each function of the configured root
// packages with a branch-sensitive "verified" flag: calls to configured
// verifier functions set it, and a call that (transitively, by each
// callee's first-effect summary) reaches a configured mutator while the
// flag is unset is reported. Calls from one root-package function to
// another are skipped — the callee is independently checked, so a thin
// dispatcher delegating to per-command handlers needs no rights of its
// own. A switch dispatching on the command starts each arm unverified,
// which is exactly how per-command rights work.
var RightsCheck = &Analyzer{
	Name: "rightscheck",
	Doc:  "command handlers must verify a capability right before mutating state",
	Run:  runRightsCheck,
}

type rightsEffect struct {
	kind int // effNone, effVerifies, effMutates
	via  *types.Func
}

const (
	effNone = iota
	effVerifies
	effMutates
)

type rightsCheck struct {
	report    ReportFunc
	graph     *CallGraph
	pkg       *Package
	roots     map[string]bool // root package paths
	verifiers map[string]bool // funcIDs
	mutators  map[string]bool // funcIDs
	effects   map[*types.Func]rightsEffect
	inProg    map[*types.Func]bool
}

// rightsState is the per-path flag: has a capability right been verified
// on this path yet?
type rightsState struct{ verified bool }

func runRightsCheck(prog *Program, cfg Config, report ReportFunc) {
	rc := &rightsCheck{
		report:    report,
		graph:     prog.CallGraph(),
		roots:     make(map[string]bool),
		verifiers: make(map[string]bool),
		mutators:  make(map[string]bool),
		effects:   make(map[*types.Func]rightsEffect),
		inProg:    make(map[*types.Func]bool),
	}
	for _, p := range cfg.RightsRoots {
		rc.roots[p] = true
	}
	for _, id := range cfg.RightsVerifiers {
		rc.verifiers[id] = true
	}
	for _, id := range cfg.RightsMutators {
		rc.mutators[id] = true
	}
	for _, fn := range rc.graph.Order {
		info := rc.graph.Funcs[fn]
		if !rc.roots[info.Pkg.Path] {
			continue
		}
		rc.pkg = info.Pkg
		flowWalk(rc, info.Decl.Body, &rightsState{})
	}
}

// --- flowClient implementation ---

func (rc *rightsCheck) Fork(s any) any {
	c := *s.(*rightsState)
	return &c
}

func (rc *rightsCheck) Join(a, b any) any {
	// Verified only counts if every arm verified: a right checked on one
	// branch says nothing about the others.
	out := a.(*rightsState)
	out.verified = out.verified && b.(*rightsState).verified
	return out
}

func (rc *rightsCheck) Simple(s any, st ast.Stmt) {
	rc.scan(s.(*rightsState), st)
}

func (rc *rightsCheck) Return(s any, st *ast.ReturnStmt) {
	rc.scan(s.(*rightsState), st)
}

func (rc *rightsCheck) Defer(s any, st *ast.DeferStmt) {
	rc.scan(s.(*rightsState), st)
}

func (rc *rightsCheck) Go(s any, st *ast.GoStmt) {
	rc.scan(s.(*rightsState), st)
}

func (rc *rightsCheck) Cond(s any, cond ast.Expr) (any, any) {
	state := s.(*rightsState)
	rc.scanExpr(state, cond)
	return rc.Fork(state), rc.Fork(state)
}

func (rc *rightsCheck) LoopEnd(incoming, bodyOut any) {}

func (rc *rightsCheck) scan(state *rightsState, n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal runs on the same request path; it inherits the
			// current flag (a shared `fail` helper must not need its own
			// rights check) but cannot establish verification for code
			// after its definition, so walk it on a fork.
			flowWalk(rc, n.Body, rc.Fork(state))
			return false
		case *ast.CallExpr:
			rc.applyCall(state, n)
		}
		return true
	})
}

func (rc *rightsCheck) scanExpr(state *rightsState, e ast.Expr) {
	rc.scan(state, e)
}

func (rc *rightsCheck) applyCall(state *rightsState, call *ast.CallExpr) {
	callee := calleeOf(rc.pkg.Info, call)
	if callee == nil {
		return
	}
	id := funcID(callee)
	switch {
	case rc.verifiers[id]:
		state.verified = true
	case rc.mutators[id]:
		if !state.verified {
			rc.report(call.Pos(), "handler calls mutating %s without verifying a capability right first",
				funcDisplayName(callee))
		}
	default:
		info := rc.graph.Funcs[callee]
		if info == nil || rc.roots[info.Pkg.Path] {
			// Unknown externals have no summary; root-package callees
			// are checked independently as handlers in their own right.
			return
		}
		switch eff := rc.firstEffect(callee); eff.kind {
		case effVerifies:
			state.verified = true
		case effMutates:
			if !state.verified {
				rc.report(call.Pos(), "handler reaches mutating %s (via %s) without verifying a capability right first",
					funcDisplayName(eff.via), funcDisplayName(callee))
			}
		}
	}
}

// firstEffect summarizes a non-root function: in source order, does it
// verify a right or mutate state first? A function that verifies before
// its mutation vouches for itself (the engine's own methods check rights
// internally); one that mutates first needs the handler to have checked.
func (rc *rightsCheck) firstEffect(fn *types.Func) rightsEffect {
	if eff, ok := rc.effects[fn]; ok {
		return eff
	}
	info := rc.graph.Funcs[fn]
	if info == nil || rc.inProg[fn] {
		return rightsEffect{kind: effNone}
	}
	rc.inProg[fn] = true
	eff := rightsEffect{kind: effNone}
	for _, cs := range info.Calls {
		id := funcID(cs.Callee)
		if rc.verifiers[id] {
			eff = rightsEffect{kind: effVerifies, via: cs.Callee}
			break
		}
		if rc.mutators[id] {
			eff = rightsEffect{kind: effMutates, via: cs.Callee}
			break
		}
		if sub := rc.firstEffect(cs.Callee); sub.kind != effNone {
			eff = sub
			break
		}
	}
	delete(rc.inProg, fn)
	rc.effects[fn] = eff
	return eff
}
