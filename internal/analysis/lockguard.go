package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces "// guarded by <mu>" field annotations. The Bullet
// server shares its inode table, RAM cache, and connection tables between
// RPC goroutines; the paper's single-threaded simplicity survives only
// because every mutable field is reached under its mutex. The compiler
// cannot see that convention, so this pass does:
//
//   - A struct field carrying a "guarded by mu" comment may be read or
//     written only inside a function that visibly acquires that mutex on
//     the same receiver chain (base.mu.Lock() or base.mu.RLock(), usually
//     with a deferred unlock), or
//   - inside a helper whose name ends in "Locked", the repository's
//     convention for "caller holds the lock", or
//   - on a value that is still private to the function (declared in its
//     body), i.e. under construction and not yet shared.
//
// The check is syntactic per function, not a flow analysis: it will not
// catch a lock released too early, but it reliably catches the common bug
// of touching shared state with no lock in sight — and it keeps the
// annotations honest as documentation.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated '// guarded by <mu>' must be accessed under that mutex or from *Locked helpers",
	Run:  runLockGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo describes one annotated field.
type guardInfo struct {
	mu         string // mutex field name within the same struct
	structName string
}

func runLockGuard(prog *Program, _ Config, report ReportFunc) {
	for _, pkg := range prog.Pkgs {
		guards := collectGuards(pkg, report)
		if len(guards) == 0 {
			continue
		}
		checkGuardedAccesses(pkg, guards, report)
	}
}

// collectGuards finds annotated fields in pkg and validates that the named
// mutex exists in the same struct.
func collectGuards(pkg *Package, report ReportFunc) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					report(f.Pos(), "field is 'guarded by %s' but struct %s has no field %q", mu, ts.Name.Name, mu)
					continue
				}
				for _, name := range f.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guards[obj] = guardInfo{mu: mu, structName: ts.Name.Name}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, or "" when the field is unannotated.
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkGuardedAccesses(pkg *Package, guards map[types.Object]guardInfo, report ReportFunc) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller-holds-lock helper by convention
			}
			locks := lockCallBases(pkg, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pkg.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				g, ok := guards[selection.Obj()]
				if !ok {
					return true
				}
				base := types.ExprString(sel.X)
				if locks[base+"."+g.mu] {
					return true
				}
				if locallyConstructed(pkg, fd, sel.X) {
					return true
				}
				report(sel.Sel.Pos(),
					"%s.%s is guarded by %q but %s neither calls %s.%s.Lock/RLock nor is named *Locked",
					g.structName, selection.Obj().Name(), g.mu, fd.Name.Name, base, g.mu)
				return true
			})
		}
	}
}

// lockCallBases collects the printed forms of every X such that the body
// contains X.Lock() or X.RLock() — e.g. "c.mu" for c.mu.Lock().
func lockCallBases(pkg *Package, body *ast.BlockStmt) map[string]bool {
	locks := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name := sel.Sel.Name; name == "Lock" || name == "RLock" {
			locks[types.ExprString(sel.X)] = true
		}
		return true
	})
	return locks
}

// locallyConstructed reports whether the base expression resolves to a
// variable declared inside fd's body — a value still under construction
// that no other goroutine can see yet.
func locallyConstructed(pkg *Package, fd *ast.FuncDecl, base ast.Expr) bool {
	for {
		switch b := base.(type) {
		case *ast.ParenExpr:
			base = b.X
		case *ast.StarExpr:
			base = b.X
		case *ast.SelectorExpr:
			base = b.X
		case *ast.IndexExpr:
			base = b.X
		default:
			id, ok := base.(*ast.Ident)
			if !ok {
				return false
			}
			obj := pkg.Info.Uses[id]
			if obj == nil {
				obj = pkg.Info.Defs[id]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
		}
	}
}
