package analysis

import (
	"errors"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests load one testdata package per pass and compare the
// diagnostics against `// want `regex`` comments placed on the expected
// lines, in the spirit of analysistest: every want must be matched by a
// diagnostic on its line, and every diagnostic must be claimed by a want.

var wantRe = regexp.MustCompile("want `([^`]+)`")

type wantEntry struct {
	file string // base name
	line int
	rx   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, dir string) []*wantEntry {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var wants []*wantEntry
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regex %q: %v", e.Name(), m[1], err)
				}
				wants = append(wants, &wantEntry{
					file: e.Name(),
					line: fset.Position(c.Pos()).Line,
					rx:   rx,
				})
			}
		}
	}
	return wants
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func runTestdata(t *testing.T, pkg string, passes []*Analyzer, cfg Config) []Diagnostic {
	t.Helper()
	root := moduleRoot(t)
	base := "internal/analysis/testdata/src/" + pkg
	// Subdirectories of a testdata package (e.g. rightscheck/engine) are
	// loaded as analysis targets too, so interprocedural passes have call
	// summaries for them.
	dirs := []string{base}
	entries, err := os.ReadDir(filepath.Join(root, base))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, base+"/"+e.Name())
		}
	}
	prog, err := LoadDirs(root, dirs)
	if err != nil {
		t.Fatal(err)
	}
	return Run(prog, cfg, passes)
}

// checkGolden matches diagnostics against want comments one-to-one.
func checkGolden(t *testing.T, diags []Diagnostic, wants []*wantEntry) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.File) && w.line == d.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

func TestGoldenPasses(t *testing.T) {
	tests := []struct {
		pkg  string
		pass *Analyzer
		cfg  Config
	}{
		{"ctcmp", CTCmp, DefaultConfig()},
		{"lockguard", LockGuard, DefaultConfig()},
		{"errwrap", ErrWrap, DefaultConfig()},
		{"goroutinestop", GoroutineStop, DefaultConfig()},
		{"panicfree", PanicFree, Config{
			PanicRoots: []string{"bulletfs/internal/analysis/testdata/src/panicfree"},
		}},
		{"lockorder", LockOrder, Config{LockSpec: []LockSpecEntry{
			{ID: "bulletfs/internal/analysis/testdata/src/lockorder.Meta.mu", Rank: 0},
			{ID: "bulletfs/internal/analysis/testdata/src/lockorder.Shard.mu", Rank: 1},
			{ID: "bulletfs/internal/analysis/testdata/src/lockorder.Shard.pendMu", Rank: 1},
			{ID: "bulletfs/internal/analysis/testdata/src/lockorder.Leaf.mu", Rank: 2, Leaf: true},
		}}},
		{"pinleak", PinLeak, DefaultConfig()},
		{"spanbalance", SpanBalance, DefaultConfig()},
		{"rightscheck", RightsCheck, Config{
			RightsRoots:     []string{"bulletfs/internal/analysis/testdata/src/rightscheck"},
			RightsVerifiers: []string{"bulletfs/internal/analysis/testdata/src/rightscheck/engine.Engine.Authorize"},
			RightsMutators:  []string{"bulletfs/internal/analysis/testdata/src/rightscheck/engine.Engine.Mutate"},
		}},
	}
	for _, tc := range tests {
		t.Run(tc.pkg, func(t *testing.T) {
			diags := runTestdata(t, tc.pkg, []*Analyzer{tc.pass}, tc.cfg)
			wants := collectWants(t, filepath.Join(moduleRoot(t), "internal/analysis/testdata/src", tc.pkg))
			checkGolden(t, diags, wants)
		})
	}
}

// TestSuppressions drives the lint:ignore machinery: a justified annotation
// (above or trailing) silences its diagnostic; a reason-less or
// unknown-pass annotation is itself reported and suppresses nothing.
func TestSuppressions(t *testing.T) {
	diags := runTestdata(t, "suppress", []*Analyzer{CTCmp}, DefaultConfig())

	var lint, ctcmp []Diagnostic
	for _, d := range diags {
		switch d.Pass {
		case "lint":
			lint = append(lint, d)
		case "ctcmp":
			ctcmp = append(ctcmp, d)
		default:
			t.Errorf("unexpected pass %q: %s", d.Pass, d)
		}
	}
	if len(lint) != 3 {
		t.Fatalf("got %d lint diagnostics, want 3 (malformed + unknown pass + stale): %v", len(lint), lint)
	}
	if !strings.Contains(lint[0].Message, "malformed lint:ignore") {
		t.Errorf("first lint diagnostic should flag the reason-less annotation: %s", lint[0])
	}
	if !strings.Contains(lint[1].Message, `unknown pass "timecmp"`) {
		t.Errorf("second lint diagnostic should flag the unknown pass: %s", lint[1])
	}
	if !strings.Contains(lint[2].Message, "stale lint:ignore") {
		t.Errorf("third lint diagnostic should flag the stale suppression: %s", lint[2])
	}
	// The two well-formed suppressions silence their violations; the two
	// broken annotations leave theirs standing.
	if len(ctcmp) != 2 {
		t.Fatalf("got %d surviving ctcmp diagnostics, want 2: %v", len(ctcmp), ctcmp)
	}
	for _, d := range ctcmp {
		if d.Line < lint[0].Line {
			t.Errorf("a suppressed violation survived: %s", d)
		}
	}
}

// TestModuleIsClean is the acceptance gate: the whole module, under the
// shipped configuration, produces zero diagnostics. Reintroducing any
// violation fails this test (and makes cmd/bulletlint exit non-zero).
func TestModuleIsClean(t *testing.T) {
	root := moduleRoot(t)
	prog, err := LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, DefaultConfig(), All())
	for _, d := range diags {
		t.Errorf("module not lint-clean: %s", d)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 9 {
		t.Fatalf("Select(nil) returned %d passes, want 9", len(all))
	}

	some, err := Select([]string{"ctcmp", "errwrap"})
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 7 {
		t.Fatalf("Select disabled 2 of 9, got %d passes, want 7", len(some))
	}
	for _, a := range some {
		if a.Name == "ctcmp" || a.Name == "errwrap" {
			t.Errorf("disabled pass %s still selected", a.Name)
		}
	}

	if _, err := Select([]string{"bogus"}); !errors.Is(err, ErrUnknownPass) {
		t.Fatalf("Select(bogus) = %v, want ErrUnknownPass", err)
	}
}

func TestLoadModuleBadPattern(t *testing.T) {
	if _, err := LoadModule(moduleRoot(t), []string{"./no/such/dir"}); !errors.Is(err, ErrBadPattern) {
		t.Fatalf("LoadModule(no/such/dir) = %v, want ErrBadPattern", err)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Pass: "ctcmp", File: "x.go", Line: 3, Col: 7, Message: "m"}
	if got, want := d.String(), "x.go:3:7: m (ctcmp)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
