// Package goroutinestop exercises the goroutinestop pass: a leaked
// goroutine plus the accepted shutdown disciplines.
package goroutinestop

import (
	"context"
	"sync"
)

// Server launches background work.
type Server struct {
	wg   sync.WaitGroup
	stop chan struct{}
	work chan int
}

// Leak starts a goroutine nothing can stop.
func (s *Server) Leak() {
	go func() { // want `goroutine observes no context or stop channel`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// Stoppable watches the stop channel; no diagnostic.
func (s *Server) Stoppable() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case n := <-s.work:
				_ = n
			}
		}
	}()
}

// Accounted is WaitGroup-tracked; no diagnostic.
func (s *Server) Accounted() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

// WithContext hands the goroutine a cancelable context; no diagnostic.
func (s *Server) WithContext(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// DrainsClosedChannel exits through the comma-ok drain: the two-value
// receive is the loop's only exit, and the module close()s a channel of
// this type (CloseFeed below), so shutdown can end it; no diagnostic.
func (s *Server) DrainsClosedChannel(feed chan int) {
	go func() {
		for {
			n, ok := <-feed
			if !ok {
				return
			}
			_ = n
		}
	}()
}

// CloseFeed is the shutdown hook that makes DrainsClosedChannel's drain
// terminate.
func (s *Server) CloseFeed(feed chan int) { close(feed) }

// DrainsUnclosedChannel has the same shape, but nothing in the module
// ever closes a chan string — the drain can never end.
func (s *Server) DrainsUnclosedChannel(feed chan string) {
	go func() { // want `goroutine observes no context or stop channel`
		for {
			n, ok := <-feed
			if !ok {
				return
			}
			_ = n
		}
	}()
}
