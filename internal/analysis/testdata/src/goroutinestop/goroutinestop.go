// Package goroutinestop exercises the goroutinestop pass: a leaked
// goroutine plus the three accepted shutdown disciplines.
package goroutinestop

import (
	"context"
	"sync"
)

// Server launches background work.
type Server struct {
	wg   sync.WaitGroup
	stop chan struct{}
	work chan int
}

// Leak starts a goroutine nothing can stop.
func (s *Server) Leak() {
	go func() { // want `goroutine observes no context or stop channel`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// Stoppable watches the stop channel; no diagnostic.
func (s *Server) Stoppable() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case n := <-s.work:
				_ = n
			}
		}
	}()
}

// Accounted is WaitGroup-tracked; no diagnostic.
func (s *Server) Accounted() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

// WithContext hands the goroutine a cancelable context; no diagnostic.
func (s *Server) WithContext(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }
