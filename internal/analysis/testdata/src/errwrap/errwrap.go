// Package errwrap exercises the errwrap pass: inline errors.New, fmt.Errorf
// without %w, and the accepted sentinel/wrapping forms.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrBad is the package sentinel.
var ErrBad = errors.New("errwrap: bad value")

// Inline mints an anonymous error at the boundary.
func Inline() error {
	return errors.New("oops") // want `Inline returns an inline errors\.New`
}

// Unwrapped formats an error no caller can errors.Is.
func Unwrapped(n int) error {
	return fmt.Errorf("bad value %d", n) // want `Unwrapped returns fmt\.Errorf without %w`
}

// Wrapped ties the message to the sentinel; no diagnostic.
func Wrapped(n int) error {
	return fmt.Errorf("bad value %d: %w", n, ErrBad)
}

// Direct returns the sentinel itself; no diagnostic.
func Direct() error { return ErrBad }

// inlineUnexported is below the package boundary; no diagnostic.
func inlineUnexported() error {
	return errors.New("internal detail")
}
