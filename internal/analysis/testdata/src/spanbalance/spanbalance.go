// Package spanbalance exercises the span obligation pass against the real
// trace package: unmatched Begins, the defer-End idiom, transfer by
// return, and the no-obligation calls (Add returns a closed span).
package spanbalance

import (
	"time"

	"bulletfs/internal/trace"
)

var tc *trace.Ctx

// LeakOpen never ends the span.
func LeakOpen() {
	sp := tc.Begin(nil, trace.LayerRPC, trace.OpRequest) // want `span obtained from trace.Ctx.Begin is not ended on every path`
	sp.Bytes = 1
}

// Balanced is the canonical shape.
func Balanced() {
	sp := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
	defer tc.End(sp)
}

// EarlyReturn leaks the span on one arm.
func EarlyReturn(b bool) {
	sp := tc.Begin(nil, trace.LayerEngine, trace.OpRead) // want `not ended on every path`
	if b {
		return
	}
	tc.End(sp)
}

// OpenSpan transfers the open span to the caller, which owns ending it.
func OpenSpan() *trace.Span {
	sp := tc.Begin(nil, trace.LayerDisk, trace.OpDiskRead)
	sp.Replica = 0
	return sp
}

// AddIsMeasured uses Add, which returns an already-closed span: no
// obligation, even with the result discarded.
func AddIsMeasured(start time.Time) {
	tc.Add(nil, trace.LayerDisk, trace.OpDiskRead, start, 5)
}

func note(sp *trace.Span) {
	_ = sp
}

// ArgDoesNotEnd passes the span to a helper; unlike View pins, that does
// NOT discharge a span — only End does (parents are passed around open).
func ArgDoesNotEnd() {
	sp := tc.Begin(nil, trace.LayerRPC, trace.OpRequest) // want `not ended on every path`
	note(sp)
}

// ParentChild keeps the root open while the child runs: both are ended,
// and passing root to Begin leaves it open.
func ParentChild() {
	root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
	child := tc.Begin(root, trace.LayerEngine, trace.OpRead)
	tc.End(child)
	tc.End(root)
}

// NilChecked bails on the arena-full path: a nil span carries no
// obligation.
func NilChecked() {
	sp := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
	if sp == nil {
		return
	}
	tc.End(sp)
}
