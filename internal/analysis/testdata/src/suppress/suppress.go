// Package suppress exercises the lint:ignore machinery: a justified
// suppression that must silence its diagnostic, a reason-less annotation,
// and an annotation naming a pass that does not exist. The test asserts on
// this package programmatically rather than with want comments, because the
// malformed-annotation diagnostics land on the annotation's own line.
package suppress

import "bulletfs/internal/capability"

// SameSuppressed compares check fields with ==, but carries a justified
// suppression on the line above; no diagnostic may survive.
func SameSuppressed(a, b capability.Check) bool {
	//lint:ignore ctcmp deliberate violation exercising the suppression path
	return a == b
}

// SameInline carries the suppression as a trailing comment on the violating
// line itself; no diagnostic may survive.
func SameInline(a, b capability.Check) bool {
	return a == b //lint:ignore ctcmp trailing-comment form of the same suppression
}

// MissingReason's annotation has no justification: the annotation itself
// must be reported and the violation it fails to cover must survive.
func MissingReason(a, b capability.Check) bool {
	//lint:ignore ctcmp
	return a == b
}

// UnknownPass names a pass that does not exist; the annotation must be
// reported so a typo cannot silently suppress nothing.
func UnknownPass(a, b capability.Check) bool {
	//lint:ignore timecmp misspelled pass name
	return a == b
}

// Stale carries a well-formed, justified suppression over code that
// violates nothing: the suppression absorbed no diagnostic and must be
// reported as stale so it cannot linger and mask the next real finding.
func Stale(a, b capability.Check) int {
	//lint:ignore ctcmp left behind after the comparison below was fixed
	return len(a) + len(b)
}
