// Package lockguard exercises the lockguard pass: guarded-field accesses
// with and without the lock, the *Locked convention, construction-time
// access, and an annotation naming a mutex that does not exist.
package lockguard

import "sync"

// Counter is shared state with one annotated field.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Add locks properly; no diagnostic.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bumpLocked follows the caller-holds-lock naming convention; no diagnostic.
func (c *Counter) bumpLocked() { c.n++ }

// Peek reads the guarded field with no lock in sight.
func (c *Counter) Peek() int {
	return c.n // want `Counter\.n is guarded by "mu" but Peek`
}

// NewCounter touches n on a value still private to the function;
// no diagnostic.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

// Orphan names a mutex its struct does not have.
type Orphan struct {
	v int // guarded by lock; want `struct Orphan has no field`
}

// V keeps v referenced so the struct is realistic.
func (o *Orphan) V() int { return o.v }
