// Package ctcmp exercises the ctcmp pass: every forbidden comparison shape
// on capability secrets, plus the constant-time form that must stay silent.
package ctcmp

import (
	"bytes"
	"crypto/subtle"

	"bulletfs/internal/capability"
)

// EqualChecks compares two check fields with ==, the short-circuiting
// comparison the pass exists to forbid.
func EqualChecks(a, b capability.Check) bool {
	return a == b // want `== comparison of capability secret`
}

// DifferChecks uses !=, the same leak with the polarity flipped.
func DifferChecks(a, b capability.Check) bool {
	return a != b // want `!= comparison of capability secret`
}

// EqualRandoms compares the per-object secrets byte-wise via bytes.Equal,
// which also stops at the first difference.
func EqualRandoms(a, b capability.Random) bool {
	return bytes.Equal(a[:], b[:]) // want `bytes\.Equal on capability secret`
}

// ConstantTime is the accepted form; no diagnostic.
func ConstantTime(a, b capability.Check) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// PlainBytes compares non-secret byte slices; bytes.Equal is fine here.
func PlainBytes(a, b []byte) bool {
	return bytes.Equal(a, b)
}
