// Package engine is a stand-in storage engine for the rightscheck golden
// test: one verifier, one mutator, a read-only method, a method that
// reaches the mutator indirectly, and one that vouches for itself by
// verifying before it mutates.
package engine

// Engine is the mutable state handlers must not reach unverified.
type Engine struct {
	generation uint64
}

// Authorize is the configured verifier.
func (e *Engine) Authorize(c uint64) error {
	_ = c
	return nil
}

// Mutate is the configured mutator.
func (e *Engine) Mutate() {
	e.generation++
}

// Read is neither.
func (e *Engine) Read() uint64 {
	return e.generation
}

// MutateIndirect reaches the mutator one call deep.
func (e *Engine) MutateIndirect() {
	e.Mutate()
}

// Checked verifies before mutating: its first effect is the verification,
// so callers need no check of their own.
func (e *Engine) Checked(c uint64) {
	if err := e.Authorize(c); err != nil {
		return
	}
	e.Mutate()
}
