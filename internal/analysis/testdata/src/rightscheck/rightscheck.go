// Package rightscheck exercises the capability-rights pass: the golden
// test configures this package as the handler root, engine.Authorize as
// the verifier, and engine.Mutate as the mutator.
package rightscheck

import "bulletfs/internal/analysis/testdata/src/rightscheck/engine"

var e *engine.Engine

// HandleGood verifies before mutating: clean.
func HandleGood(c uint64) {
	if err := e.Authorize(c); err != nil {
		return
	}
	e.Mutate()
}

// HandleBad mutates with no check at all.
func HandleBad() {
	e.Mutate() // want `calls mutating engine.Engine.Mutate without verifying a capability right`
}

// HandleIndirect reaches the mutator through a helper.
func HandleIndirect() {
	e.MutateIndirect() // want `reaches mutating engine.Engine.Mutate \(via engine.Engine.MutateIndirect\) without verifying`
}

// HandleSwitch dispatches per command: each arm needs its own check.
func HandleSwitch(cmd int, c uint64) {
	switch cmd {
	case 1:
		if err := e.Authorize(c); err != nil {
			return
		}
		e.Mutate()
	case 2:
		e.Mutate() // want `without verifying a capability right`
	}
}

// HandleBranch verifies on one arm only: the mutation after the join is
// not covered.
func HandleBranch(ok bool, c uint64) {
	if ok {
		_ = e.Authorize(c)
	}
	e.Mutate() // want `without verifying a capability right`
}

// HandleReadOnly never mutates: clean with no check.
func HandleReadOnly() uint64 {
	return e.Read()
}

// HandleChecked calls an engine method that verifies before it mutates:
// the callee vouches for itself.
func HandleChecked(c uint64) {
	e.Checked(c)
}

// Dispatch delegates to another handler in this package; the callee is
// checked independently, so the dispatcher is clean.
func Dispatch() {
	HandleBad()
}
