// Package lockorder exercises the lock-hierarchy pass against a
// self-contained three-level hierarchy (the golden test supplies the
// matching LockSpec): Meta.mu at rank 0, Shard.mu and Shard.pendMu at
// rank 1, Leaf.mu a rank-2 leaf.
package lockorder

import "sync"

// Meta is the top of the testdata hierarchy (rank 0).
type Meta struct{ mu sync.RWMutex }

// Shard holds two same-rank locks (rank 1).
type Shard struct {
	mu     sync.Mutex
	pendMu sync.Mutex
}

// Leaf holds the leaf lock (rank 2).
type Leaf struct{ mu sync.Mutex }

// Descend acquires in hierarchy order: clean.
func Descend(m *Meta, s *Shard) {
	m.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	m.mu.Unlock()
}

// Invert climbs from rank 1 back up to rank 0.
func Invert(m *Meta, s *Shard) {
	s.mu.Lock()
	m.mu.Lock() // want `climbs the lock hierarchy`
	m.mu.Unlock()
	s.mu.Unlock()
}

// SameRank pairs the two rank-1 locks.
func SameRank(s *Shard) {
	s.mu.Lock()
	s.pendMu.Lock() // want `same-rank locks`
	s.pendMu.Unlock()
	s.mu.Unlock()
}

// Reacquire upgrades a read lock it already holds: self-deadlock.
func Reacquire(m *Meta) {
	m.mu.RLock()
	m.mu.Lock() // want `acquired while already held`
	m.mu.Unlock()
	m.mu.RUnlock()
}

// RLockThenLock releases before relocking: clean (the flow-sensitivity
// true negative for RLock-vs-Lock).
func RLockThenLock(m *Meta) {
	m.mu.RLock()
	m.mu.RUnlock()
	m.mu.Lock()
	m.mu.Unlock()
}

func lockShard(s *Shard) {
	s.mu.Lock()
	s.mu.Unlock()
}

// UnderLeaf calls a helper that locks Shard.mu while holding the leaf:
// nothing may be acquired under a leaf, even interprocedurally.
func UnderLeaf(l *Leaf, s *Shard) {
	l.mu.Lock()
	lockShard(s) // want `may acquire Shard.mu while leaf lock Leaf.mu is held`
	l.mu.Unlock()
}

func lockMeta(m *Meta) {
	m.mu.Lock()
	m.mu.Unlock()
}

// InterprocClimb climbs the hierarchy through a call edge: the helper is
// innocent on its own; calling it under Shard.mu is the violation.
func InterprocClimb(m *Meta, s *Shard) {
	s.mu.Lock()
	lockMeta(m) // want `may acquire Meta.mu .* climbing the lock hierarchy`
	s.mu.Unlock()
}

// Deferred unlocks via defer; acquisitions stay in hierarchy order: clean.
func Deferred(m *Meta, s *Shard) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
}

// GoroutineContext launches a literal that locks Meta.mu while the
// enclosing function holds Shard.mu: clean, because the goroutine starts
// with nothing held.
func GoroutineContext(m *Meta, s *Shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		m.mu.Lock()
		m.mu.Unlock()
	}()
}

// BranchJoin holds Shard.mu on either arm; the acquisition after the
// join must still be checked.
func BranchJoin(m *Meta, s *Shard, b bool) {
	if b {
		s.mu.Lock()
	} else {
		s.mu.Lock()
	}
	m.mu.Lock() // want `climbs the lock hierarchy`
	m.mu.Unlock()
	s.mu.Unlock()
}
