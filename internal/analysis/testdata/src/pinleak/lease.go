// Leases: the second resource the pinleak pass tracks. An engine
// ReadLease wraps a pinned cache View for the zero-copy reply path;
// the same release-on-every-path rules apply, and the blessed handoff —
// rpc.Owned(lease.Bytes(), lease) — transfers the obligation to the RPC
// layer, which releases the lease after the socket write.
package pinleak

import (
	"io"

	"bulletfs/internal/bullet"
	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

var eng *bullet.Server
var cp capability.Capability

// LeaseHandoff is the intended zero-copy reply shape: the lease rides
// into rpc.Owned as a direct argument, so the RPC layer owns it now and
// no diagnostic fires (the true negative).
func LeaseHandoff(emit rpc.Emitter) {
	lease, err := eng.ReadView(cp)
	if err != nil {
		_ = emit(rpc.ReplyErr(rpc.StatusInternal), rpc.Plain(nil), true)
		return
	}
	_ = emit(rpc.ReplyOK(), rpc.Owned(lease.Bytes(), lease), true)
}

// LeaseReleasedOnAllPaths is the classic deferred shape; also clean.
func LeaseReleasedOnAllPaths() (int64, error) {
	lease, err := eng.ReadRangeView(cp, 0, 16)
	if err != nil {
		return 0, err
	}
	defer lease.Release()
	return lease.Size(), nil
}

// LeaseLeakOnError releases the lease on the success path only: the
// writer's error return drops the pin, which would wedge cache
// compaction (the positive).
func LeaseLeakOnError(w io.Writer) error {
	lease, err := eng.ReadView(cp) // want `lease obtained from bullet.Server.ReadView is not released on every path`
	if err != nil {
		return err
	}
	if _, werr := w.Write(lease.Bytes()); werr != nil {
		return werr
	}
	lease.Release()
	return nil
}

// LeaseDropped discards the lease without binding it at all.
func LeaseDropped() {
	eng.ReadView(cp) // want `discards a lease that must be released`
}
