// Package pinleak exercises the View-pin obligation pass against the real
// cache package: leaks on success paths, error-path correlation, the
// transfer rules (return and argument), bare drops, and overwrites.
package pinleak

import "bulletfs/internal/cache"

var c *cache.Cache

// LeakOnSuccess releases nothing on the path where the pin succeeded.
func LeakOnSuccess() int {
	v, err := c.GetView(1, 1) // want `View obtained from cache.Cache.GetView is not released on every path`
	if err != nil {
		return 0
	}
	return v.Len()
}

// ReleasedOnAllPaths is the intended shape: the error path pins nothing,
// every success path runs the deferred Release.
func ReleasedOnAllPaths() (int, error) {
	v, err := c.GetView(1, 1)
	if err != nil {
		return 0, err
	}
	defer v.Release()
	return v.Len(), nil
}

// TransferByReturn hands the pin to the caller: the obligation moves with
// it (the caller's copy of this analysis takes over).
func TransferByReturn() (*cache.View, error) {
	v, err := c.GetView(2, 2)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Dropped discards the pin without ever binding it.
func Dropped() {
	c.GetView(3, 3) // want `discards a View that must be released`
}

// PartialRelease releases on one arm only.
func PartialRelease(b bool) {
	v, err := c.GetView(4, 4) // want `not released on every path`
	if err != nil {
		return
	}
	if b {
		v.Release()
	}
}

func consume(v *cache.View) {
	v.Release()
}

// TransferByArg hands the pin to a helper: for Views, passing the value
// transfers the obligation (TransferOnArg).
func TransferByArg() {
	v, err := c.GetView(5, 5)
	if err != nil {
		return
	}
	consume(v)
}

// Overwritten rebinds the variable while the first pin is still live.
func Overwritten() {
	v, err := c.GetView(6, 6) // want `overwritten before it is released`
	if err != nil {
		return
	}
	v, err = c.GetView(7, 7)
	if err != nil {
		return
	}
	v.Release()
}

// ClosureCapture hands the pin to a literal (deferred cleanup and
// goroutine hand-offs look like this): the closure owns it now.
func ClosureCapture() func() {
	v, err := c.GetView(8, 8)
	if err != nil {
		return func() {}
	}
	return func() { v.Release() }
}
