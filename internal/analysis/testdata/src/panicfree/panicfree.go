// Package panicfree exercises the panicfree pass. Tests configure this
// package as a panic root, standing in for the server's RPC packages.
package panicfree

import "errors"

// ErrBad is the sentinel for malformed input.
var ErrBad = errors.New("panicfree: bad input")

// Handle is an exported entry point whose helper panics two hops down.
func Handle(n int) error {
	if n < 0 {
		return ErrBad
	}
	helper(n)
	return nil
}

func helper(n int) {
	decode(n)
}

func decode(n int) {
	if n == 0 {
		panic("zero length request") // want `panic reachable from RPC entry point \(call chain: panicfree\.Handle -> panicfree\.helper -> panicfree\.decode\)`
	}
}

// orphanPanic is unreachable from any exported function; no diagnostic.
func orphanPanic() {
	panic("never served")
}
