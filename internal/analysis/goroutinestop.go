package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineStop demands that every goroutine the server launches can be
// shut down or waited out. A production file server restarts, drains, and
// fails over; a fire-and-forget goroutine keeps touching disks and
// sockets after Close returns, which is exactly how "rare" corruption
// happens under heavy traffic. A `go` statement passes the check when the
// launched body (or the arguments handed to it) shows one of:
//
//   - a context.Context value (cancelable),
//   - a receive, select, range, or close on a stop-style channel — any
//     channel-typed value whose name matches stop/done/quit/close/
//     shutdown/exit (case-insensitive),
//   - a sync.WaitGroup Done/Wait call (accounted: someone can drain it),
//   - a two-value receive (`v, ok := <-ch`) from a channel whose type the
//     module close()s somewhere — the comma-ok drain pattern: closing the
//     channel is the shutdown hook, whatever the channel is named.
//
// Anything else is flagged. For `go f(x)` where f is declared in the
// module, f's body is inspected too.
var GoroutineStop = &Analyzer{
	Name: "goroutinestop",
	Doc:  "goroutines must observe a context/stop channel or be WaitGroup-accounted",
	Run:  runGoroutineStop,
}

func runGoroutineStop(prog *Program, _ Config, report ReportFunc) {
	// Index module function bodies so `go pkg.F(...)` can be traced one
	// level into the callee.
	bodies := make(map[*types.Func]*ast.BlockStmt)
	infoOf := make(map[*types.Func]*types.Info)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						bodies[obj] = fd.Body
						infoOf[obj] = pkg.Info
					}
				}
			}
		}
	}

	closed := collectClosedChanTypes(prog)

	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gostmt, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				call := gostmt.Call
				ok = false
				for _, arg := range call.Args {
					if exprIsStopSignal(pkg.Info, arg) {
						ok = true
						break
					}
				}
				if !ok {
					switch fun := call.Fun.(type) {
					case *ast.FuncLit:
						ok = bodyObservesStop(pkg.Info, fun.Body, closed)
					default:
						if callee := calleeFunc(pkg.Info, call.Fun); callee != nil {
							if body := bodies[callee]; body != nil {
								ok = bodyObservesStop(infoOf[callee], body, closed)
							}
						}
					}
				}
				if !ok {
					report(gostmt.Pos(), "goroutine observes no context or stop channel and is not WaitGroup-accounted; shutdown cannot stop it")
				}
				return true
			})
		}
	}
}

// calleeFunc resolves the function object behind a call expression's Fun.
func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

var stopNameRe = []string{"stop", "done", "quit", "close", "shutdown", "exit", "ctx", "cancel"}

func isStopName(name string) bool {
	name = strings.ToLower(name)
	for _, w := range stopNameRe {
		if strings.Contains(name, w) {
			return true
		}
	}
	return false
}

// exprIsStopSignal reports whether e is a value that lets the goroutine
// learn about shutdown: a context, or a stop-named channel.
func exprIsStopSignal(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return isStopName(types.ExprString(e))
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// collectClosedChanTypes gathers the types of every channel the module
// passes to close(). A goroutine that drains a channel of one of these
// types with a two-value receive has a shutdown path — closing the
// channel ends it — even when the channel's name says nothing about
// stopping. Matching by type rather than by object is deliberate: the
// close() side often works on a local copy of the channel (grabbed under
// a lock), so object identity cannot connect the two ends.
func collectClosedChanTypes(prog *Program) []types.Type {
	var out []types.Type
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "close" {
					return true
				}
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
					return true
				}
				if t := pkg.Info.TypeOf(call.Args[0]); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						out = append(out, t)
					}
				}
				return true
			})
		}
	}
	return out
}

// typeIsClosed matches by element type, ignoring channel direction: the
// drain side usually holds a receive-only view of the channel the owner
// closes.
func typeIsClosed(t types.Type, closed []types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	for _, c := range closed {
		if cc, ok := c.Underlying().(*types.Chan); ok && types.Identical(ch.Elem(), cc.Elem()) {
			return true
		}
	}
	return false
}

// bodyObservesStop scans a goroutine body for any of the accepted shutdown
// disciplines.
func bodyObservesStop(info *types.Info, body *ast.BlockStmt, closed []types.Type) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if isContextType(info.TypeOf(n)) {
				found = true
			}
		case *ast.UnaryExpr: // <-ch receive
			if n.Op.String() == "<-" && exprIsStopSignal(info, n.X) {
				found = true
			}
		case *ast.AssignStmt: // v, ok := <-ch — the comma-ok drain
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if u, ok := n.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					if t := info.TypeOf(u.X); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan && typeIsClosed(t, closed) {
							found = true
						}
					}
				}
			}
		case *ast.RangeStmt: // range over a channel drains until close
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if (name == "Done" || name == "Wait") && isWaitGroup(info.TypeOf(sel.X)) {
					found = true
				}
				if name == "Err" || name == "Deadline" {
					if isContextType(info.TypeOf(sel.X)) {
						found = true
					}
				}
			}
		case *ast.CommClause: // select case on a stop channel
			if n.Comm != nil {
				ast.Inspect(n.Comm, func(m ast.Node) bool {
					if u, ok := m.(*ast.UnaryExpr); ok && u.Op.String() == "<-" && exprIsStopSignal(info, u.X) {
						found = true
					}
					return !found
				})
			}
		}
		return !found
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
