package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. bulletfs/internal/cache
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, with comments
	Types *types.Package
	Info  *types.Info
}

// Program is the set of packages a run analyzes, plus every module-internal
// dependency that had to be typechecked to get there.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	Pkgs       []*Package // analysis targets, sorted by import path
	byPath     map[string]*Package
	graph      *CallGraph // built lazily by CallGraph()
}

// PackageByPath returns the loaded package with the given import path, or
// nil. It sees dependencies as well as analysis targets.
func (p *Program) PackageByPath(path string) *Package { return p.byPath[path] }

// loader typechecks module packages from source. For imports outside the
// module (the standard library) it delegates to the stdlib source importer,
// so the whole pipeline needs nothing but GOROOT/src and this module's
// tree — no export data, no third-party machinery.
type loader struct {
	modulePath string
	moduleDir  string
	fset       *token.FileSet
	pkgs       map[string]*Package
	loading    map[string]bool
	fallback   types.Importer
}

func newLoader(moduleDir, modulePath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		modulePath: modulePath,
		moduleDir:  moduleDir,
		fset:       fset,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		fallback:   importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer: module-internal paths are typechecked
// from source (memoized), everything else goes to the stdlib importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// dirFor maps a module import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	rel := strings.TrimPrefix(path, l.modulePath+"/")
	return filepath.Join(l.moduleDir, filepath.FromSlash(rel))
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// goFilesIn lists the non-test buildable .go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") ||
			strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := buildable(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// buildable reports whether the file lacks a "//go:build ignore"-style
// constraint. The module does not use platform build tags; any //go:build
// line at all excludes the file from analysis rather than teaching the
// loader constraint evaluation.
func buildable(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("analysis: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "//go:build") || strings.HasPrefix(line, "// +build") {
			return false, nil
		}
		if line != "" && !strings.HasPrefix(line, "//") {
			break // past the header comments
		}
	}
	return true, nil
}

// modulePathOf reads the module path out of dir/go.mod.
func modulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("analysis: resolving %s: %w", dir, err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("at or above %s: %w", dir, ErrNoModule)
		}
		dir = parent
	}
}

// LoadModule typechecks the packages of the module rooted at moduleDir that
// match the given patterns and returns them as a Program. Patterns follow
// the go tool's shape, resolved against moduleDir: "./..." for the whole
// module, "./x/..." for a subtree, "./x" (or "x") for one package.
// Directories named testdata, hidden directories, and _-prefixed
// directories are never discovered by "..." patterns, but an exact
// pattern naming such a directory loads it anyway — that is how the CLI
// (and its tests) point bulletlint at a testdata tree on purpose.
func LoadModule(moduleDir string, patterns []string) (*Program, error) {
	moduleDir, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving %s: %w", moduleDir, err)
	}
	modulePath, err := modulePathOf(moduleDir)
	if err != nil {
		return nil, err
	}
	rels, err := discoverPackageDirs(moduleDir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var targets []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, rel := range rels {
			if matchPattern(pat, rel) && !seen[rel] {
				seen[rel] = true
				matched = true
				targets = append(targets, rel)
			} else if matchPattern(pat, rel) {
				matched = true
			}
		}
		if !matched {
			// An exact pattern may name a directory discovery skips
			// (testdata trees); load it if it really holds Go files.
			if rel, ok := exactDir(moduleDir, pat); ok {
				if !seen[rel] {
					seen[rel] = true
					targets = append(targets, rel)
				}
				continue
			}
			return nil, fmt.Errorf("%q: %w", pat, ErrBadPattern)
		}
	}
	sort.Strings(targets)

	l := newLoader(moduleDir, modulePath)
	prog := &Program{Fset: l.fset, ModulePath: modulePath, ModuleDir: moduleDir, byPath: l.pkgs}
	for _, rel := range targets {
		path := modulePath
		if rel != "." {
			path = modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// LoadDirs typechecks the given directories (relative to moduleDir) as
// packages of the module, regardless of discovery rules — the hook tests
// use to analyze testdata trees.
func LoadDirs(moduleDir string, rels []string) (*Program, error) {
	moduleDir, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving %s: %w", moduleDir, err)
	}
	modulePath, err := modulePathOf(moduleDir)
	if err != nil {
		return nil, err
	}
	l := newLoader(moduleDir, modulePath)
	prog := &Program{Fset: l.fset, ModulePath: modulePath, ModuleDir: moduleDir, byPath: l.pkgs}
	for _, rel := range rels {
		pkg, err := l.load(modulePath + "/" + filepath.ToSlash(rel))
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// exactDir reports whether pat is an exact (non-wildcard) pattern naming a
// module directory with buildable Go files, returning its clean
// module-relative form.
func exactDir(moduleDir, pat string) (string, bool) {
	if strings.Contains(pat, "...") {
		return "", false
	}
	rel := strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
	if rel == "" {
		rel = "."
	}
	rel = filepath.ToSlash(filepath.Clean(rel))
	if rel == ".." || strings.HasPrefix(rel, "../") || filepath.IsAbs(rel) {
		return "", false
	}
	names, err := goFilesIn(filepath.Join(moduleDir, filepath.FromSlash(rel)))
	if err != nil || len(names) == 0 {
		return "", false
	}
	return rel, true
}

// discoverPackageDirs returns the module-relative directories ("." for the
// root) that contain at least one buildable non-test Go file.
func discoverPackageDirs(moduleDir string) ([]string, error) {
	var rels []string
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != moduleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			rel, err := filepath.Rel(moduleDir, path)
			if err != nil {
				return err
			}
			rels = append(rels, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking module: %w", err)
	}
	sort.Strings(rels)
	return rels, nil
}

// matchPattern reports whether the module-relative directory rel matches a
// go-tool-style pattern.
func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "..." {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	if pat == "" || pat == "." {
		return rel == "."
	}
	return rel == pat
}
