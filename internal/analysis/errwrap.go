package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrWrap keeps the error chain intact across package boundaries. Callers
// of an exported function can only react to failures programmatically
// (retry, fail over to a replica, translate to an RPC status byte) when
// errors.Is/As can reach a sentinel — which requires every ad-hoc error to
// either be a package-level sentinel or wrap one with %w. The pass checks
// every return statement of every exported function and method:
//
//   - `return fmt.Errorf("...")` whose format string has no %w verb is a
//     diagnostic: the constructed error matches nothing.
//   - `return errors.New(...)` inline is a diagnostic: declare it as a
//     package-level sentinel (so it has an identity) or wrap one.
//
// Returning identifiers (sentinels, err variables) and the results of
// other calls is always allowed; the pass is syntactic and per return
// site, not a dataflow analysis. Package main is exempt: main has no
// importers, so there is no boundary to cross.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "errors returned by exported functions must be sentinels or wrapped with %w",
	Run:  runErrWrap,
}

func runErrWrap(prog *Program, _ Config, report ReportFunc) {
	for _, pkg := range prog.Pkgs {
		if pkg.Types.Name() == "main" {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				sig, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				checkReturns(pkg, fd, sig.Type().(*types.Signature), report)
			}
		}
	}
}

// checkReturns walks fd's own return statements (not those of nested
// function literals, which have their own signatures).
func checkReturns(pkg *Package, fd *ast.FuncDecl, sig *types.Signature, report ReportFunc) {
	results := sig.Results()
	errorIdx := make(map[int]bool)
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			errorIdx[i] = true
		}
	}
	if len(errorIdx) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != results.Len() {
			return true // naked return or `return f()` spread: out of scope
		}
		for i, expr := range ret.Results {
			if !errorIdx[i] {
				continue
			}
			call, ok := expr.(*ast.CallExpr)
			if !ok {
				continue
			}
			switch {
			case isPkgFunc(pkg.Info, call.Fun, "errors", "New"):
				report(call.Pos(), "%s returns an inline errors.New across the package boundary; declare a package-level sentinel or wrap one with %%w", fd.Name.Name)
			case isPkgFunc(pkg.Info, call.Fun, "fmt", "Errorf"):
				if len(call.Args) == 0 {
					continue
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok {
					continue // non-literal format: cannot judge
				}
				if !strings.Contains(lit.Value, "%w") {
					report(call.Pos(), "%s returns fmt.Errorf without %%w; callers cannot errors.Is/As this — wrap a sentinel or the cause", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
