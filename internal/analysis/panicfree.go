package analysis

import (
	"go/types"
	"sort"
	"strings"
)

// PanicFree forbids panics on RPC handler paths. The paper's server keeps
// running across disk deaths and malformed requests; a panic reachable
// from a request handler turns one bad request into a full server outage
// for every client. The pass builds a static call graph over the module
// (direct calls and concrete method calls; interface dispatch is not
// resolved) and reports every panic call reachable from an exported
// function or method of the configured root packages.
//
// A panic inside a function literal is attributed to the function that
// lexically contains it: the literal usually runs on the same request path
// (deferred, invoked inline, or launched as part of serving), and
// attributing lexically keeps the analysis simple and conservative.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "no panic may be reachable from an RPC handler entry point",
	Run:  runPanicFree,
}

func runPanicFree(prog *Program, cfg Config, report ReportFunc) {
	graph := prog.CallGraph()

	isRoot := func(info *FuncInfo) bool {
		if !info.Decl.Name.IsExported() {
			return false
		}
		for _, prefix := range cfg.PanicRoots {
			if info.Pkg.Path == prefix || strings.HasPrefix(info.Pkg.Path, prefix+"/") {
				return true
			}
		}
		return false
	}

	// BFS from the roots, remembering one shortest call chain per function.
	parent := make(map[*types.Func]*types.Func)
	reached := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, obj := range graph.Order {
		if isRoot(graph.Funcs[obj]) {
			reached[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, cs := range graph.Funcs[cur].Calls {
			callee := cs.Callee
			if _, ok := graph.Funcs[callee]; !ok || reached[callee] {
				continue // outside the module, or already visited
			}
			reached[callee] = true
			parent[callee] = cur
			queue = append(queue, callee)
		}
	}

	var flagged []*FuncInfo
	for _, obj := range graph.Order {
		info := graph.Funcs[obj]
		if reached[obj] && len(info.Panics) > 0 {
			flagged = append(flagged, info)
		}
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].Panics[0] < flagged[j].Panics[0] })
	for _, info := range flagged {
		chain := callChain(parent, info.Obj)
		for _, pos := range info.Panics {
			report(pos, "panic reachable from RPC entry point (call chain: %s); return an error instead", chain)
		}
	}
}

// callChain renders root -> ... -> fn using the BFS parent links.
func callChain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for cur := fn; cur != nil; cur = parent[cur] {
		names = append(names, funcDisplayName(cur))
		if parent[cur] == nil {
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// funcDisplayName renders pkg.Func or pkg.(Recv).Method without the full
// import path.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
