package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PanicFree forbids panics on RPC handler paths. The paper's server keeps
// running across disk deaths and malformed requests; a panic reachable
// from a request handler turns one bad request into a full server outage
// for every client. The pass builds a static call graph over the module
// (direct calls and concrete method calls; interface dispatch is not
// resolved) and reports every panic call reachable from an exported
// function or method of the configured root packages.
//
// A panic inside a function literal is attributed to the function that
// lexically contains it: the literal usually runs on the same request path
// (deferred, invoked inline, or launched as part of serving), and
// attributing lexically keeps the analysis simple and conservative.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "no panic may be reachable from an RPC handler entry point",
	Run:  runPanicFree,
}

// funcNode is the per-function call-graph record.
type funcNode struct {
	obj     *types.Func
	callees []*types.Func // deduplicated, in source order
	panics  []token.Pos   // direct panic calls in the body
	isRoot  bool
}

func runPanicFree(prog *Program, cfg Config, report ReportFunc) {
	nodes := make(map[*types.Func]*funcNode)
	var order []*types.Func // deterministic iteration order

	for _, pkg := range prog.Pkgs {
		root := false
		for _, prefix := range cfg.PanicRoots {
			if pkg.Path == prefix || strings.HasPrefix(pkg.Path, prefix+"/") {
				root = true
				break
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{obj: obj, isRoot: root && fd.Name.IsExported()}
				seen := make(map[*types.Func]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch fun := call.Fun.(type) {
					case *ast.Ident:
						if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
							node.panics = append(node.panics, call.Pos())
							return true
						}
						if callee, ok := pkg.Info.Uses[fun].(*types.Func); ok && !seen[callee] {
							seen[callee] = true
							node.callees = append(node.callees, callee)
						}
					case *ast.SelectorExpr:
						if callee, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok && !seen[callee] {
							seen[callee] = true
							node.callees = append(node.callees, callee)
						}
					}
					return true
				})
				nodes[obj] = node
				order = append(order, obj)
			}
		}
	}

	// BFS from the roots, remembering one shortest call chain per function.
	parent := make(map[*types.Func]*types.Func)
	reached := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, obj := range order {
		if nodes[obj].isRoot {
			reached[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range nodes[cur].callees {
			if _, ok := nodes[callee]; !ok || reached[callee] {
				continue // outside the module, or already visited
			}
			reached[callee] = true
			parent[callee] = cur
			queue = append(queue, callee)
		}
	}

	var flagged []*funcNode
	for _, obj := range order {
		node := nodes[obj]
		if reached[obj] && len(node.panics) > 0 {
			flagged = append(flagged, node)
		}
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].panics[0] < flagged[j].panics[0] })
	for _, node := range flagged {
		chain := callChain(parent, node.obj)
		for _, pos := range node.panics {
			report(pos, "panic reachable from RPC entry point (call chain: %s); return an error instead", chain)
		}
	}
}

// callChain renders root -> ... -> fn using the BFS parent links.
func callChain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for cur := fn; cur != nil; cur = parent[cur] {
		names = append(names, funcDisplayName(cur))
		if parent[cur] == nil {
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// funcDisplayName renders pkg.Func or pkg.(Recv).Method without the full
// import path.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
