package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide call graph the interprocedural passes
// (lockorder, pinleak's transfer summaries, rightscheck, panicfree) share.
// The graph covers every function declared in the analyzed packages; calls
// are resolved through go/types, so direct calls and concrete method calls
// are edges while interface dispatch and calls through function values are
// not (the same conservative shape panicfree has always used).

// CallSite is one resolved call inside a function body: the callee and the
// position of the call expression. Callees outside the analyzed packages
// (standard library, dependencies not under analysis) appear as sites too;
// they simply have no FuncInfo of their own.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// FuncInfo is the per-function call-graph record. Calls are in source
// order, one entry per call expression (not deduplicated). A call inside a
// function literal is attributed to the function that lexically contains
// it: the literal usually runs on behalf of the same operation (deferred,
// invoked inline, or launched as part of serving it), and lexical
// attribution keeps summaries conservative.
type FuncInfo struct {
	Obj    *types.Func
	Decl   *ast.FuncDecl
	Pkg    *Package
	Calls  []CallSite
	Panics []token.Pos // direct panic() calls in the body
}

// CallGraph indexes every declared function of the analyzed packages.
// Order preserves declaration order for deterministic iteration.
type CallGraph struct {
	Funcs map[*types.Func]*FuncInfo
	Order []*types.Func
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.graph != nil {
		return p.graph
	}
	g := &CallGraph{Funcs: make(map[*types.Func]*FuncInfo)}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				info := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch fun := call.Fun.(type) {
					case *ast.Ident:
						if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
							info.Panics = append(info.Panics, call.Pos())
							return true
						}
						if callee, ok := pkg.Info.Uses[fun].(*types.Func); ok {
							info.Calls = append(info.Calls, CallSite{Callee: callee, Pos: call.Pos()})
						}
					case *ast.SelectorExpr:
						if callee, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
							info.Calls = append(info.Calls, CallSite{Callee: callee, Pos: call.Pos()})
						}
					}
					return true
				})
				g.Funcs[obj] = info
				g.Order = append(g.Order, obj)
			}
		}
	}
	p.graph = g
	return g
}

// calleeOf resolves the *types.Func a call expression invokes, or nil for
// indirect calls (function values, interface methods resolve to the
// interface method object, which is fine: it has no FuncInfo).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcID renders the stable string identity config lists use to name
// functions: "pkg/path.Func" or "pkg/path.Recv.Method" (pointer receivers
// stripped).
func funcID(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if fn.Pkg() == nil {
		return fn.Name() // builtins, error.Error, ...
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}
