// Package cache implements the Bullet server's RAM file cache (paper §3).
//
// All of the server's memory that is not the inode table is one contiguous
// arena in which whole files are cached contiguously. A separate table of
// rnodes administers the cached files; an rnode records which inode the
// cached copy belongs to, where the copy lives in the arena, and an age
// field implementing LRU replacement. Free rnodes and free arena space are
// kept on free lists.
//
// The inode table points back into this cache: inode.CacheIndex zero means
// "not cached", any other value is the rnode slot number of the cached
// copy. This package hands out those 1-based slot numbers and reports which
// inodes it evicted so the engine can clear their index fields, exactly the
// bookkeeping sequence the paper describes.
//
// Fragmentation of the arena is fought the way the paper suggests: when
// eviction alone cannot produce a large-enough hole but total free space
// suffices, the cache compacts itself (slides every cached file toward the
// bottom of the arena) and retries.
package cache

import (
	"errors"
	"fmt"
	"sync"

	"bulletfs/internal/alloc"
	"bulletfs/internal/stats"
)

// Errors returned by the cache.
var (
	// ErrTooLarge means a file exceeds the entire cache arena. The Bullet
	// model requires files to fit in the server's memory (paper §2).
	ErrTooLarge = errors.New("cache: file larger than cache arena")
	// ErrBadSlot means an rnode slot number is stale or invalid.
	ErrBadSlot = errors.New("cache: bad rnode slot")
	// ErrCorrupt means the cache's own bookkeeping and the arena
	// allocator disagree — a bug, not an operational condition. The cache
	// reports it instead of panicking so one damaged structure degrades
	// to failed requests rather than a server outage (paper §6's
	// robustness goal).
	ErrCorrupt = errors.New("cache: arena bookkeeping corrupt")
	// ErrConfig means New was called with an unusable arena or rnode
	// table size.
	ErrConfig = errors.New("cache: bad configuration")
)

// rnode administers one cached file (paper §3: inode index, pointer into
// the RAM cache, age field for LRU).
type rnode struct {
	inode uint32
	off   int64
	size  int64
	age   uint64
	used  bool
}

// Stats reports cache behaviour since creation.
type Stats struct {
	Files       int   // cached files right now
	UsedBytes   int64 // arena bytes holding cached files
	TotalBytes  int64 // arena size
	Insertions  int64 // successful Inserts
	Evictions   int64 // files evicted to make room
	Compactions int64 // arena compactions triggered by fragmentation
	Hits        int64 // successful Gets
	Misses      int64 // faults reported by the engine via NoteMiss
}

// Cache is the contiguous RAM file cache. It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	buf      []byte           // guarded by mu
	arena    *alloc.Allocator // guarded by mu
	rnodes   []rnode          // guarded by mu; slot i at rnodes[i-1]; slots are 1-based
	freeSlot []uint16         // guarded by mu; free rnode slots
	ageClock uint64           // guarded by mu
	stats    Stats            // guarded by mu
}

// New builds a cache with an arena of the given size and at most maxFiles
// simultaneously cached files (the rnode table size).
func New(arenaBytes int64, maxFiles int) (*Cache, error) {
	if arenaBytes <= 0 {
		return nil, fmt.Errorf("non-positive arena %d: %w", arenaBytes, ErrConfig)
	}
	if maxFiles <= 0 || maxFiles > 0xFFFE {
		return nil, fmt.Errorf("rnode count %d out of range: %w", maxFiles, ErrConfig)
	}
	arena, err := alloc.New(arenaBytes)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		buf:      make([]byte, arenaBytes),
		arena:    arena,
		rnodes:   make([]rnode, maxFiles),
		freeSlot: make([]uint16, 0, maxFiles),
	}
	for i := maxFiles; i >= 1; i-- {
		c.freeSlot = append(c.freeSlot, uint16(i))
	}
	return c, nil
}

// tickLocked returns the next age stamp.
func (c *Cache) tickLocked() uint64 {
	c.ageClock++
	return c.ageClock
}

// slotLocked returns the rnode for a 1-based slot number.
func (c *Cache) slotLocked(idx uint16) (*rnode, error) {
	if idx == 0 || int(idx) > len(c.rnodes) {
		return nil, fmt.Errorf("slot %d: %w", idx, ErrBadSlot)
	}
	rn := &c.rnodes[idx-1]
	if !rn.used {
		return nil, fmt.Errorf("slot %d is free: %w", idx, ErrBadSlot)
	}
	return rn, nil
}

// Insert caches data as the contents of the given inode, evicting
// least-recently-used files (and compacting, if fragmentation demands) to
// make room. It returns the rnode slot to store in the inode's cache-index
// field and the inodes of every file evicted along the way.
func (c *Cache) Insert(inode uint32, data []byte) (idx uint16, evicted []uint32, err error) {
	size := int64(len(data))
	if size > c.arena.Total() {
		return 0, nil, fmt.Errorf("%d bytes into %d-byte arena: %w", size, c.arena.Total(), ErrTooLarge)
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Claim an rnode, evicting the LRU file if the table is full.
	if len(c.freeSlot) == 0 {
		victim := c.lruLocked()
		if victim == 0 {
			return 0, nil, fmt.Errorf("no rnode and nothing to evict: %w", ErrBadSlot)
		}
		inode, rerr := c.removeLocked(victim)
		if rerr != nil {
			return 0, evicted, rerr
		}
		evicted = append(evicted, inode)
	}

	var off int64 = -1
	if size > 0 {
		for {
			start, allocErr := c.arena.Alloc(size)
			if allocErr == nil {
				off = start
				break
			}
			if !errors.Is(allocErr, alloc.ErrNoSpace) {
				return 0, evicted, allocErr
			}
			victim := c.lruLocked()
			if victim != 0 {
				inode, rerr := c.removeLocked(victim)
				if rerr != nil {
					return 0, evicted, rerr
				}
				evicted = append(evicted, inode)
				continue
			}
			// Nothing left to evict. If the space exists but is shattered,
			// compact and retry once; otherwise give up (cannot happen when
			// size <= arena, but guard anyway).
			if st := c.arena.Stats(); st.Free >= size {
				if cerr := c.compactLocked(); cerr != nil {
					return 0, evicted, cerr
				}
				start, allocErr = c.arena.Alloc(size)
				if allocErr == nil {
					off = start
					break
				}
			}
			return 0, evicted, fmt.Errorf("%d bytes: %w", size, ErrTooLarge)
		}
		// Eviction may have freed room without defragmenting enough; the
		// loop above handles that by evicting more. Here we have space.
		copy(c.buf[off:off+size], data)
	}

	slotNum := c.freeSlot[len(c.freeSlot)-1]
	c.freeSlot = c.freeSlot[:len(c.freeSlot)-1]
	c.rnodes[slotNum-1] = rnode{inode: inode, off: off, size: size, age: c.tickLocked(), used: true}
	c.stats.Insertions++
	return slotNum, evicted, nil
}

// lruLocked returns the slot of the least recently used file, or 0 if the
// cache is empty.
func (c *Cache) lruLocked() uint16 {
	best := uint16(0)
	var bestAge uint64
	for i := range c.rnodes {
		rn := &c.rnodes[i]
		if !rn.used {
			continue
		}
		if best == 0 || rn.age < bestAge {
			best = uint16(i + 1)
			bestAge = rn.age
		}
	}
	return best
}

// removeLocked frees slot idx and returns the inode it held. A Free the
// allocator rejects means cache and arena bookkeeping have diverged; the
// slot is still released (the rnode is gone either way) and ErrCorrupt is
// reported so the engine can fail the request instead of crashing.
func (c *Cache) removeLocked(idx uint16) (uint32, error) {
	rn := &c.rnodes[idx-1]
	inode := rn.inode
	var err error
	if rn.size > 0 {
		if ferr := c.arena.Free(rn.off, rn.size); ferr != nil {
			err = fmt.Errorf("freeing [%d,%d): %v: %w", rn.off, rn.off+rn.size, ferr, ErrCorrupt)
		}
	}
	*rn = rnode{}
	c.freeSlot = append(c.freeSlot, idx)
	c.stats.Evictions++
	return inode, err
}

// Get returns the cached contents for slot idx, checking that the slot
// still belongs to the expected inode, and refreshes its LRU age. The
// returned slice aliases the cache arena: callers must copy before the next
// cache operation (the engine copies at the RPC boundary).
func (c *Cache) Get(idx uint16, inode uint32) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rn, err := c.slotLocked(idx)
	if err != nil {
		return nil, err
	}
	if rn.inode != inode {
		return nil, fmt.Errorf("slot %d holds inode %d, want %d: %w", idx, rn.inode, inode, ErrBadSlot)
	}
	rn.age = c.tickLocked()
	c.stats.Hits++
	if rn.size == 0 {
		return []byte{}, nil
	}
	return c.buf[rn.off : rn.off+rn.size : rn.off+rn.size], nil
}

// NoteMiss records one cache miss. The engine calls it when a read finds
// no cached copy and faults the file in from disk; the cache cannot see
// those, because the engine consults the inode's cache-index field first.
func (c *Cache) NoteMiss() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Misses++
}

// Remove drops slot idx from the cache (file deleted, paper §3: "If the
// file is in the cache, the space in the cache can be freed"). The expected
// inode guards against stale slot numbers that were reused for another
// file after an eviction.
func (c *Cache) Remove(idx uint16, inode uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rn, err := c.slotLocked(idx)
	if err != nil {
		return err
	}
	if rn.inode != inode {
		return fmt.Errorf("slot %d holds inode %d, want %d: %w", idx, rn.inode, inode, ErrBadSlot)
	}
	_, err = c.removeLocked(idx)
	c.stats.Evictions-- // explicit removal is not an eviction
	return err
}

// Compact slides every cached file toward the bottom of the arena, merging
// all free space into one hole — the paper's periodic cache compaction.
// Slot numbers are stable across compaction (only offsets change), so the
// inode table does not need updating. A non-nil error is ErrCorrupt: the
// compaction plan and the allocator disagreed about what was live.
func (c *Cache) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactLocked()
}

func (c *Cache) compactLocked() error {
	var used []alloc.Used
	for i := range c.rnodes {
		rn := &c.rnodes[i]
		if rn.used && rn.size > 0 {
			used = append(used, alloc.Used{
				Extent: alloc.Extent{Start: rn.off, Count: rn.size},
				Tag:    uint16(i + 1),
			})
		}
	}
	moves := alloc.Plan(used)
	for _, m := range moves {
		copy(c.buf[m.To:m.To+m.Count], c.buf[m.From:m.From+m.Count])
		c.rnodes[m.Tag.(uint16)-1].off = m.To
	}
	var after []alloc.Extent
	for i := range c.rnodes {
		rn := &c.rnodes[i]
		if rn.used && rn.size > 0 {
			after = append(after, alloc.Extent{Start: rn.off, Count: rn.size})
		}
	}
	if err := c.arena.Reset(after); err != nil {
		return fmt.Errorf("rebuilding free list after compaction: %v: %w", err, ErrCorrupt)
	}
	c.stats.Compactions++
	return nil
}

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.TotalBytes = c.arena.Total()
	for i := range c.rnodes {
		if c.rnodes[i].used {
			s.Files++
			s.UsedBytes += c.rnodes[i].size
		}
	}
	return s
}

// Fragmentation reports the arena's current fragmentation (see
// alloc.Stats.Fragmentation).
func (c *Cache) Fragmentation() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.arena.Stats().Fragmentation()
}

// AttachMetrics registers the cache's counters with a stats registry
// under the "cache." prefix. Values are polled at snapshot time, so
// attachment costs nothing on the hot path.
func (c *Cache) AttachMetrics(r *stats.Registry) {
	poll := func(pick func(Stats) int64) func() int64 {
		return func() int64 { return pick(c.Stats()) }
	}
	r.GaugeFunc("cache.files", poll(func(s Stats) int64 { return int64(s.Files) }))
	r.GaugeFunc("cache.resident_bytes", poll(func(s Stats) int64 { return s.UsedBytes }))
	r.GaugeFunc("cache.total_bytes", poll(func(s Stats) int64 { return s.TotalBytes }))
	r.GaugeFunc("cache.hits", poll(func(s Stats) int64 { return s.Hits }))
	r.GaugeFunc("cache.misses", poll(func(s Stats) int64 { return s.Misses }))
	r.GaugeFunc("cache.insertions", poll(func(s Stats) int64 { return s.Insertions }))
	r.GaugeFunc("cache.evictions", poll(func(s Stats) int64 { return s.Evictions }))
	r.GaugeFunc("cache.compactions", poll(func(s Stats) int64 { return s.Compactions }))
	r.GaugeFunc("cache.fragmentation_pct", func() int64 {
		return int64(100 * c.Fragmentation())
	})
}
