// Package cache implements the Bullet server's RAM file cache (paper §3).
//
// All of the server's memory that is not the inode table is one contiguous
// arena in which whole files are cached contiguously. A separate table of
// rnodes administers the cached files; an rnode records which inode the
// cached copy belongs to, where the copy lives in the arena, and an age
// field implementing LRU replacement. Free rnodes and free arena space are
// kept on free lists.
//
// The inode table points back into this cache: inode.CacheIndex zero means
// "not cached", any other value is the rnode slot number of the cached
// copy. This package hands out those 1-based slot numbers and reports which
// inodes it evicted so the engine can clear their index fields, exactly the
// bookkeeping sequence the paper describes.
//
// Fragmentation of the arena is fought the way the paper suggests: when
// eviction alone cannot produce a large-enough hole but total free space
// suffices, the cache compacts itself (slides every cached file toward the
// bottom of the arena) and retries.
package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bulletfs/internal/alloc"
	"bulletfs/internal/stats"
)

// Errors returned by the cache.
var (
	// ErrTooLarge means a file exceeds the entire cache arena. The Bullet
	// model requires files to fit in the server's memory (paper §2).
	ErrTooLarge = errors.New("cache: file larger than cache arena")
	// ErrBadSlot means an rnode slot number is stale or invalid.
	ErrBadSlot = errors.New("cache: bad rnode slot")
	// ErrCorrupt means the cache's own bookkeeping and the arena
	// allocator disagree — a bug, not an operational condition. The cache
	// reports it instead of panicking so one damaged structure degrades
	// to failed requests rather than a server outage (paper §6's
	// robustness goal).
	ErrCorrupt = errors.New("cache: arena bookkeeping corrupt")
	// ErrConfig means New was called with an unusable arena or rnode
	// table size.
	ErrConfig = errors.New("cache: bad configuration")
)

// rnode administers one cached file (paper §3: inode index, pointer into
// the RAM cache). The LRU age and the pin count live in the cache's
// parallel slots table (one cache-line-padded slotState per rnode) so the
// read path can update them under the shared lock. A pinned rnode's arena bytes are immovable and
// must survive until the last view is released, so eviction and
// compaction skip pinned entries and Remove defers the reclaim by
// setting doomed.
type rnode struct {
	inode  uint32
	off    int64
	size   int64
	used   bool
	doomed bool // removed while pinned; reclaim on last Release
}

// slotState is one rnode's reader-side state. It is padded to a full cache
// line: concurrent readers of different files update adjacent slots' pin
// counts and age stamps on every operation, and without the padding those
// updates ping-pong a single line of packed counters between cores,
// serializing the whole read path.
type slotState struct {
	pins atomic.Int32 // outstanding Views; >0 means the extent is immovable
	_    [4]byte
	age  atomic.Uint64 // LRU age stamp
	hits atomic.Int64  // reads served from this slot; drained into stats on reclaim
	_    [40]byte
}

// Stats reports cache behaviour since creation.
type Stats struct {
	Files       int   // cached files right now
	UsedBytes   int64 // arena bytes holding cached files
	TotalBytes  int64 // arena size
	Insertions  int64 // successful Inserts
	Evictions   int64 // files evicted to make room
	Compactions int64 // arena compactions triggered by fragmentation
	Hits        int64 // successful Gets
	Misses      int64 // faults reported by the engine via NoteMiss

	PinnedViews        int64 // outstanding pinned read views right now
	CompactionsSkipped int64 // compactions refused because views were pinned
}

// Cache is the contiguous RAM file cache. It is safe for concurrent use:
// lookups (GetView, Pin, Get) share the lock and touch only the atomic
// side tables, so concurrent readers proceed in parallel; Insert, Remove
// and Compact hold it exclusively.
type Cache struct {
	mu       sync.RWMutex
	buf      []byte           // guarded by mu (shared: read bytes; exclusive: move/overwrite)
	arena    *alloc.Allocator // guarded by mu
	rnodes   []rnode          // guarded by mu; slot i at rnodes[i-1]; slots are 1-based
	freeSlot []uint16         // guarded by mu; free rnode slots

	// Per-slot reader state, parallel to rnodes. Atomic so that readers
	// holding only the shared lock can pin entries and refresh LRU ages;
	// padded so neighbouring slots never share a cache line (see slotState).
	slots []slotState

	ageClock atomic.Uint64
	_        [56]byte     // pad: the age clock is bumped on every read
	doomed   atomic.Int64 // doomed slots awaiting their last Release
	_        [56]byte     // pad: Release loads doomed on every call
	misses   atomic.Int64

	stats Stats // guarded by mu; slow-path counters only (Hits holds reclaimed slots' drained hit counts)
}

// New builds a cache with an arena of the given size and at most maxFiles
// simultaneously cached files (the rnode table size).
func New(arenaBytes int64, maxFiles int) (*Cache, error) {
	if arenaBytes <= 0 {
		return nil, fmt.Errorf("non-positive arena %d: %w", arenaBytes, ErrConfig)
	}
	if maxFiles <= 0 || maxFiles > 0xFFFE {
		return nil, fmt.Errorf("rnode count %d out of range: %w", maxFiles, ErrConfig)
	}
	arena, err := alloc.New(arenaBytes)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		buf:      make([]byte, arenaBytes),
		arena:    arena,
		rnodes:   make([]rnode, maxFiles),
		freeSlot: make([]uint16, 0, maxFiles),
		slots:    make([]slotState, maxFiles),
	}
	for i := maxFiles; i >= 1; i-- {
		c.freeSlot = append(c.freeSlot, uint16(i))
	}
	return c, nil
}

// tick returns the next age stamp; safe under the shared lock.
func (c *Cache) tick() uint64 {
	return c.ageClock.Add(1)
}

// slotLocked returns the rnode for a 1-based slot number. Doomed slots
// (removed while pinned, awaiting the last Release) are logically gone and
// report ErrBadSlot like any other stale index.
func (c *Cache) slotLocked(idx uint16) (*rnode, error) {
	if idx == 0 || int(idx) > len(c.rnodes) {
		return nil, fmt.Errorf("slot %d: %w", idx, ErrBadSlot)
	}
	rn := &c.rnodes[idx-1]
	if !rn.used || rn.doomed {
		return nil, fmt.Errorf("slot %d is free: %w", idx, ErrBadSlot)
	}
	return rn, nil
}

// Evicted identifies one eviction performed during an Insert: which inode
// lost its cached copy and which rnode slot held it. Reporting the slot
// lets the engine clear the inode's cache-index field with a compare-and-
// set — if the index no longer names this slot, a concurrent fault already
// re-cached the file and the stale-index clear must lose.
type Evicted struct {
	Inode uint32
	Slot  uint16
}

// Insert caches data as the contents of the given inode, evicting
// least-recently-used files (and compacting, if fragmentation demands) to
// make room. It returns the rnode slot to store in the inode's cache-index
// field and the (inode, slot) pair of every file evicted along the way.
func (c *Cache) Insert(inode uint32, data []byte) (idx uint16, evicted []Evicted, err error) {
	size := int64(len(data))
	if size > c.arena.Total() {
		return 0, nil, fmt.Errorf("%d bytes into %d-byte arena: %w", size, c.arena.Total(), ErrTooLarge)
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Claim an rnode, evicting the LRU file if the table is full.
	if len(c.freeSlot) == 0 {
		victim := c.lruLocked()
		if victim == 0 {
			return 0, nil, fmt.Errorf("no rnode and nothing to evict: %w", ErrBadSlot)
		}
		inode, rerr := c.removeLocked(victim)
		if rerr != nil {
			return 0, evicted, rerr
		}
		evicted = append(evicted, Evicted{Inode: inode, Slot: victim})
	}

	var off int64 = -1
	if size > 0 {
		for {
			start, allocErr := c.arena.Alloc(size)
			if allocErr == nil {
				off = start
				break
			}
			if !errors.Is(allocErr, alloc.ErrNoSpace) {
				return 0, evicted, allocErr
			}
			victim := c.lruLocked()
			if victim != 0 {
				inode, rerr := c.removeLocked(victim)
				if rerr != nil {
					return 0, evicted, rerr
				}
				evicted = append(evicted, Evicted{Inode: inode, Slot: victim})
				continue
			}
			// Nothing left to evict. If the space exists but is shattered,
			// compact and retry once; otherwise give up (cannot happen when
			// size <= arena, but guard anyway).
			if st := c.arena.Stats(); st.Free >= size {
				if cerr := c.compactLocked(); cerr != nil {
					return 0, evicted, cerr
				}
				start, allocErr = c.arena.Alloc(size)
				if allocErr == nil {
					off = start
					break
				}
			}
			return 0, evicted, fmt.Errorf("%d bytes: %w", size, ErrTooLarge)
		}
		// Eviction may have freed room without defragmenting enough; the
		// loop above handles that by evicting more. Here we have space.
		copy(c.buf[off:off+size], data)
	}

	slotNum := c.freeSlot[len(c.freeSlot)-1]
	c.freeSlot = c.freeSlot[:len(c.freeSlot)-1]
	c.rnodes[slotNum-1] = rnode{inode: inode, off: off, size: size, used: true}
	c.slots[slotNum-1].age.Store(c.tick())
	c.stats.Insertions++
	return slotNum, evicted, nil
}

// lruLocked returns the slot of the least recently used evictable file, or
// 0 if nothing can be evicted. Pinned entries have live readers copying
// out of the arena and doomed entries are already on their way out, so
// neither is a candidate.
func (c *Cache) lruLocked() uint16 {
	best := uint16(0)
	var bestAge uint64
	for i := range c.rnodes {
		rn := &c.rnodes[i]
		if !rn.used || c.slots[i].pins.Load() > 0 || rn.doomed {
			continue
		}
		if age := c.slots[i].age.Load(); best == 0 || age < bestAge {
			best = uint16(i + 1)
			bestAge = age
		}
	}
	return best
}

// removeLocked frees slot idx and returns the inode it held. A pinned slot
// cannot release its arena bytes while readers still view them, so it is
// marked doomed instead and reclaimed by the last Release; the slot is
// logically gone either way (slotLocked stops resolving it). A Free the
// allocator rejects means cache and arena bookkeeping have diverged; the
// slot is still released (the rnode is gone either way) and ErrCorrupt is
// reported so the engine can fail the request instead of crashing.
func (c *Cache) removeLocked(idx uint16) (uint32, error) {
	rn := &c.rnodes[idx-1]
	inode := rn.inode
	c.stats.Evictions++
	// Publish the doom before reading the pin count. Release decrements
	// the pin count before checking the doomed counter, so whichever of
	// the two observes the other's write performs the reclaim — the
	// extent is never stranded.
	rn.doomed = true
	c.doomed.Add(1)
	if c.slots[idx-1].pins.Load() > 0 {
		return inode, nil // the last Release reclaims
	}
	return inode, c.reclaimLocked(idx)
}

// reclaimLocked returns slot idx's arena extent to the allocator and the
// slot to the free list. Callers have already decided the entry is dead
// (unused or doomed with no pins left).
func (c *Cache) reclaimLocked(idx uint16) error {
	rn := &c.rnodes[idx-1]
	var err error
	if rn.size > 0 {
		if ferr := c.arena.Free(rn.off, rn.size); ferr != nil {
			err = fmt.Errorf("freeing [%d,%d): %v: %w", rn.off, rn.off+rn.size, ferr, ErrCorrupt)
		}
	}
	if rn.doomed {
		c.doomed.Add(-1)
	}
	*rn = rnode{}
	sl := &c.slots[idx-1]
	sl.age.Store(0)
	c.stats.Hits += sl.hits.Swap(0) // keep lifetime hit totals across slot reuse
	c.freeSlot = append(c.freeSlot, idx)
	return err
}

// View is a pinned, read-only window onto one cached file. While a view is
// outstanding its bytes are immovable: eviction skips the entry, compaction
// refuses to slide the arena, and a Remove defers the reclaim until the
// last Release. That lets a reader leave the engine's metadata lock before
// copying the bytes to the wire. Views are cheap; hold them only for the
// duration of one copy-out and always Release (Release is idempotent).
type View struct {
	c    *Cache
	idx  uint16
	data []byte
	done bool
}

// Bytes returns the pinned file contents. The slice aliases the cache
// arena and is valid only until Release.
func (v *View) Bytes() []byte { return v.data }

// Len returns the pinned file's size in bytes.
func (v *View) Len() int { return len(v.data) }

// Release unpins the view. The last release of a doomed entry (removed or
// evicted while pinned) reclaims its arena space. Safe to call twice.
//
// The common case is lock-free: drop the pin counts and return. Only when
// some slot is doomed does Release take the lock to check whether this
// was the last pin holding a dead extent in place; the doomed check runs
// after the pin decrement (mirroring removeLocked's doom-then-read-pins
// order), so one of the two sides always sees the reclaim through.
func (v *View) Release() {
	if v == nil || v.done {
		return
	}
	v.done = true
	v.data = nil
	c := v.c
	left := c.slots[v.idx-1].pins.Add(-1)
	if left != 0 || c.doomed.Load() == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rn := &c.rnodes[v.idx-1]
	// Re-check under the lock: the slot may have been reclaimed (and even
	// reused) since the fast path ran.
	if rn.used && rn.doomed && c.slots[v.idx-1].pins.Load() == 0 {
		_ = c.reclaimLocked(v.idx) // bookkeeping divergence already reported at Remove time
	}
}

// GetView returns a pinned view of the cached contents for slot idx,
// checking that the slot still belongs to the expected inode, and
// refreshes its LRU age. Unlike Get, the returned view stays valid across
// later cache operations until it is released.
func (c *Cache) GetView(idx uint16, inode uint32) (*View, error) {
	return c.view(idx, inode, true)
}

// Pin is GetView without the cache-hit accounting: the engine pins a
// freshly inserted entry for the duration of its disk write-through,
// which is not a read.
func (c *Cache) Pin(idx uint16, inode uint32) (*View, error) {
	return c.view(idx, inode, false)
}

// view runs under the shared lock: writers (Insert, Remove, Compact) are
// excluded, so the rnode fields are stable, and the pin/age updates go
// through the atomic side tables. Concurrent lookups proceed in parallel.
func (c *Cache) view(idx uint16, inode uint32, countHit bool) (*View, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rn, err := c.slotLocked(idx)
	if err != nil {
		return nil, err
	}
	if rn.inode != inode {
		return nil, fmt.Errorf("slot %d holds inode %d, want %d: %w", idx, rn.inode, inode, ErrBadSlot)
	}
	sl := &c.slots[idx-1]
	sl.age.Store(c.tick())
	sl.pins.Add(1)
	if countHit {
		sl.hits.Add(1)
	}
	data := []byte{}
	if rn.size > 0 {
		data = c.buf[rn.off : rn.off+rn.size : rn.off+rn.size]
	}
	return &View{c: c, idx: idx, data: data}, nil
}

// PinnedViews returns the number of outstanding pinned views. The count
// is a sum of per-slot pin counters read without the lock, so concurrent
// pin/release traffic makes it approximate — exact when quiescent.
func (c *Cache) PinnedViews() int64 {
	var n int64
	for i := range c.slots {
		n += int64(c.slots[i].pins.Load())
	}
	return n
}

// Get returns the cached contents for slot idx, checking that the slot
// still belongs to the expected inode, and refreshes its LRU age. The
// returned slice aliases the cache arena: callers must copy before the next
// cache operation (the engine uses GetView instead, which pins the bytes
// in place until released).
func (c *Cache) Get(idx uint16, inode uint32) ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rn, err := c.slotLocked(idx)
	if err != nil {
		return nil, err
	}
	if rn.inode != inode {
		return nil, fmt.Errorf("slot %d holds inode %d, want %d: %w", idx, rn.inode, inode, ErrBadSlot)
	}
	c.slots[idx-1].age.Store(c.tick())
	c.slots[idx-1].hits.Add(1)
	if rn.size == 0 {
		return []byte{}, nil
	}
	return c.buf[rn.off : rn.off+rn.size : rn.off+rn.size], nil
}

// NoteMiss records one cache miss. The engine calls it when a read finds
// no cached copy and faults the file in from disk; the cache cannot see
// those, because the engine consults the inode's cache-index field first.
func (c *Cache) NoteMiss() {
	c.misses.Add(1)
}

// Remove drops slot idx from the cache (file deleted, paper §3: "If the
// file is in the cache, the space in the cache can be freed"). The expected
// inode guards against stale slot numbers that were reused for another
// file after an eviction.
func (c *Cache) Remove(idx uint16, inode uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rn, err := c.slotLocked(idx)
	if err != nil {
		return err
	}
	if rn.inode != inode {
		return fmt.Errorf("slot %d holds inode %d, want %d: %w", idx, rn.inode, inode, ErrBadSlot)
	}
	_, err = c.removeLocked(idx)
	c.stats.Evictions-- // explicit removal is not an eviction
	return err
}

// Compact slides every cached file toward the bottom of the arena, merging
// all free space into one hole — the paper's periodic cache compaction.
// Slot numbers are stable across compaction (only offsets change), so the
// inode table does not need updating. A non-nil error is ErrCorrupt: the
// compaction plan and the allocator disagreed about what was live.
func (c *Cache) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactLocked()
}

// pinnedLocked sums the per-slot pin counters. Exact while mu is held
// exclusively (view, the only pinner, needs the shared lock).
func (c *Cache) pinnedLocked() int64 {
	var n int64
	for i := range c.slots {
		n += int64(c.slots[i].pins.Load())
	}
	return n
}

func (c *Cache) compactLocked() error {
	// Pinned views alias arena bytes; sliding them would corrupt an
	// in-flight copy-out. Pins are held only for the duration of one copy,
	// so skipping is cheap — the next compaction attempt will succeed.
	// (Holding mu exclusively excludes new pins, so the sum is exact.)
	if c.pinnedLocked() > 0 {
		c.stats.CompactionsSkipped++
		return nil
	}
	var used []alloc.Used
	for i := range c.rnodes {
		rn := &c.rnodes[i]
		if rn.used && rn.size > 0 {
			used = append(used, alloc.Used{
				Extent: alloc.Extent{Start: rn.off, Count: rn.size},
				Tag:    uint16(i + 1),
			})
		}
	}
	moves := alloc.Plan(used)
	for _, m := range moves {
		copy(c.buf[m.To:m.To+m.Count], c.buf[m.From:m.From+m.Count])
		c.rnodes[m.Tag.(uint16)-1].off = m.To
	}
	var after []alloc.Extent
	for i := range c.rnodes {
		rn := &c.rnodes[i]
		if rn.used && rn.size > 0 {
			after = append(after, alloc.Extent{Start: rn.off, Count: rn.size})
		}
	}
	if err := c.arena.Reset(after); err != nil {
		return fmt.Errorf("rebuilding free list after compaction: %v: %w", err, ErrCorrupt)
	}
	c.stats.Compactions++
	return nil
}

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Misses = c.misses.Load()
	s.TotalBytes = c.arena.Total()
	s.PinnedViews = c.pinnedLocked()
	for i := range c.rnodes {
		s.Hits += c.slots[i].hits.Load()
		if c.rnodes[i].used {
			if !c.rnodes[i].doomed {
				s.Files++
			}
			s.UsedBytes += c.rnodes[i].size
		}
	}
	return s
}

// Fragmentation reports the arena's current fragmentation (see
// alloc.Stats.Fragmentation).
func (c *Cache) Fragmentation() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.arena.Stats().Fragmentation()
}

// AttachMetrics registers the cache's counters with a stats registry
// under the "cache." prefix. Values are polled at snapshot time, so
// attachment costs nothing on the hot path.
func (c *Cache) AttachMetrics(r *stats.Registry) {
	poll := func(pick func(Stats) int64) func() int64 {
		return func() int64 { return pick(c.Stats()) }
	}
	r.GaugeFunc("cache.files", poll(func(s Stats) int64 { return int64(s.Files) }))
	r.GaugeFunc("cache.resident_bytes", poll(func(s Stats) int64 { return s.UsedBytes }))
	r.GaugeFunc("cache.total_bytes", poll(func(s Stats) int64 { return s.TotalBytes }))
	r.GaugeFunc("cache.hits", poll(func(s Stats) int64 { return s.Hits }))
	r.GaugeFunc("cache.misses", poll(func(s Stats) int64 { return s.Misses }))
	r.GaugeFunc("cache.insertions", poll(func(s Stats) int64 { return s.Insertions }))
	r.GaugeFunc("cache.evictions", poll(func(s Stats) int64 { return s.Evictions }))
	r.GaugeFunc("cache.compactions", poll(func(s Stats) int64 { return s.Compactions }))
	r.GaugeFunc("cache.compactions_skipped", poll(func(s Stats) int64 { return s.CompactionsSkipped }))
	r.GaugeFunc("cache.pinned_views", c.PinnedViews)
	r.GaugeFunc("cache.fragmentation_pct", func() int64 {
		return int64(100 * c.Fragmentation())
	})
}
