package cache

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"bulletfs/internal/stats"
)

func mustNew(t *testing.T, arena int64, files int) *Cache {
	t.Helper()
	c, err := New(arena, files)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func mustInsert(t *testing.T, c *Cache, inode uint32, data []byte) uint16 {
	t.Helper()
	idx, _, err := c.Insert(inode, data)
	if err != nil {
		t.Fatalf("Insert(%d): %v", inode, err)
	}
	return idx
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Fatal("New(0 bytes) succeeded")
	}
	if _, err := New(100, 0); err == nil {
		t.Fatal("New(0 files) succeeded")
	}
	if _, err := New(100, 1<<16); err == nil {
		t.Fatal("New(65536 files) succeeded: slot numbers must fit uint16 with 0 reserved")
	}
}

func TestInsertGetRoundTrip(t *testing.T) {
	c := mustNew(t, 1024, 8)
	data := []byte("cached contiguously in RAM")
	idx := mustInsert(t, c, 42, data)
	if idx == 0 {
		t.Fatal("slot 0 handed out; 0 must mean 'not cached'")
	}
	got, err := c.Get(idx, 42)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
}

func TestGetWrongInode(t *testing.T) {
	c := mustNew(t, 1024, 8)
	idx := mustInsert(t, c, 42, []byte("x"))
	if _, err := c.Get(idx, 43); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Get with wrong inode err = %v, want ErrBadSlot", err)
	}
}

func TestGetBadSlot(t *testing.T) {
	c := mustNew(t, 1024, 8)
	if _, err := c.Get(0, 1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Get(0) err = %v", err)
	}
	if _, err := c.Get(99, 1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Get(99) err = %v", err)
	}
	if _, err := c.Get(3, 1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Get(free slot) err = %v", err)
	}
}

func TestZeroByteFile(t *testing.T) {
	c := mustNew(t, 64, 4)
	idx := mustInsert(t, c, 7, nil)
	got, err := c.Get(idx, 7)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Get = %q, want empty", got)
	}
	st := c.Stats()
	if st.Files != 1 || st.UsedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := c.Remove(idx, 7); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

func TestRejectTooLarge(t *testing.T) {
	c := mustNew(t, 64, 4)
	if _, _, err := c.Insert(1, make([]byte, 65)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// Exactly arena-sized fits.
	if _, _, err := c.Insert(1, make([]byte, 64)); err != nil {
		t.Fatalf("arena-sized insert: %v", err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := mustNew(t, 300, 8)
	idx1 := mustInsert(t, c, 1, make([]byte, 100))
	idx2 := mustInsert(t, c, 2, make([]byte, 100))
	idx3 := mustInsert(t, c, 3, make([]byte, 100))

	// Touch 1 so that 2 becomes the LRU.
	if _, err := c.Get(idx1, 1); err != nil {
		t.Fatalf("Get: %v", err)
	}
	_ = idx2
	_ = idx3

	// Inserting 100 more bytes must evict exactly inode 2.
	_, evicted, err := c.Insert(4, make([]byte, 100))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if len(evicted) != 1 || evicted[0].Inode != 2 {
		t.Fatalf("evicted = %v, want inode 2", evicted)
	}
	// 1 and 3 are still readable.
	if _, err := c.Get(idx1, 1); err != nil {
		t.Fatalf("Get(1) after eviction: %v", err)
	}
	if _, err := c.Get(idx3, 3); err != nil {
		t.Fatalf("Get(3) after eviction: %v", err)
	}
}

func TestEvictionRepeatsUntilEnoughSpace(t *testing.T) {
	c := mustNew(t, 300, 8)
	mustInsert(t, c, 1, make([]byte, 100))
	mustInsert(t, c, 2, make([]byte, 100))
	mustInsert(t, c, 3, make([]byte, 100))
	// 250 bytes need all three evicted (paper: "repeating until enough
	// memory is found") — 1, 2, 3 in LRU order.
	_, evicted, err := c.Insert(4, make([]byte, 250))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	want := []uint32{1, 2, 3}
	if len(evicted) != 3 {
		t.Fatalf("evicted = %v, want %v", evicted, want)
	}
	for i, inode := range want {
		if evicted[i].Inode != inode {
			t.Fatalf("evicted = %v, want %v", evicted, want)
		}
	}
}

func TestRnodeExhaustionEvicts(t *testing.T) {
	c := mustNew(t, 1024, 2) // plenty of bytes, only two rnodes
	mustInsert(t, c, 1, []byte("a"))
	mustInsert(t, c, 2, []byte("b"))
	_, evicted, err := c.Insert(3, []byte("c"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if len(evicted) != 1 || evicted[0].Inode != 1 {
		t.Fatalf("evicted = %v, want inode 1", evicted)
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	c := mustNew(t, 100, 4)
	idx := mustInsert(t, c, 1, make([]byte, 100))
	if err := c.Remove(idx, 1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := c.Get(idx, 1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Get after remove err = %v", err)
	}
	// Space is reusable without eviction.
	_, evicted, err := c.Insert(2, make([]byte, 100))
	if err != nil {
		t.Fatalf("Insert after remove: %v", err)
	}
	if len(evicted) != 0 {
		t.Fatalf("evicted = %v, want none", evicted)
	}
	if err := c.Remove(idx, 1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("double Remove err = %v", err)
	}
}

func TestCompactionOnFragmentation(t *testing.T) {
	// Arena 300: three 100-byte files; evicting the middle leaves holes of
	// 100 at position 100. Insert 150: eviction of LRU (file 1 at 0) gives
	// holes [0,200) after coalescing... arrange a genuinely shattered case:
	// files at [0,100) [100,200) [200,300), remove 1st and 3rd, then ask
	// for 150 with only file 2 in the middle. Eviction would remove file 2
	// eventually; to force compaction instead, touch file 2 often? LRU
	// still evicts it. So instead verify explicit Compact merges holes.
	c := mustNew(t, 300, 8)
	i1 := mustInsert(t, c, 1, bytes.Repeat([]byte{1}, 100))
	i2 := mustInsert(t, c, 2, bytes.Repeat([]byte{2}, 100))
	i3 := mustInsert(t, c, 3, bytes.Repeat([]byte{3}, 100))
	if err := c.Remove(i1, 1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := c.Remove(i3, 3); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if frag := c.Fragmentation(); frag == 0 {
		t.Fatal("expected fragmentation > 0 before compaction")
	}
	c.Compact()
	if frag := c.Fragmentation(); frag != 0 {
		t.Fatalf("fragmentation = %v after compaction, want 0", frag)
	}
	// File 2 must have survived the slide with the same slot number.
	got, err := c.Get(i2, 2)
	if err != nil {
		t.Fatalf("Get after compaction: %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{2}, 100)) {
		t.Fatal("file 2 corrupted by compaction")
	}
	if st := c.Stats(); st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
}

func TestAutoCompactionWhenShattered(t *testing.T) {
	// Five 20-byte files fill a 100-byte arena. Evicting LRU files one at
	// a time frees from the oldest; arrange ages so the holes are
	// non-adjacent: touch files 0,2,4 (so 1,3 are LRU). A 40-byte insert
	// evicts 1 and 3 -> two separate 20-byte holes -> auto-compaction must
	// kick in... except eviction continues to 0, giving [0,60) after
	// coalescing with hole at 20. To pin the behaviour precisely, fill the
	// arena, remove alternating files manually, and insert: no evictable
	// LRU is *needed* (free total = 40 >= 40) but no hole is big enough
	// until the cache compacts or evicts. The implementation evicts first;
	// with all remaining files younger... it will still evict. So instead
	// remove ALL files but leave fragmentation: impossible. Exercise the
	// internal path directly: empty cache with a fragmented arena cannot
	// exist. The auto-compact path therefore triggers only when everything
	// evictable is gone yet space is shattered — which cannot happen when
	// all files are evictable. Assert instead that a full-arena-sized
	// insert into a fragmented cache succeeds by evicting everything.
	c := mustNew(t, 100, 8)
	var idx [5]uint16
	for i := 0; i < 5; i++ {
		idx[i] = mustInsert(t, c, uint32(i+1), bytes.Repeat([]byte{byte(i + 1)}, 20))
	}
	if err := c.Remove(idx[1], 2); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := c.Remove(idx[3], 4); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	// Holes at [20,40) and [60,80): 40 free but largest hole 20.
	_, _, err := c.Insert(9, make([]byte, 40))
	if err != nil {
		t.Fatalf("Insert into fragmented cache: %v", err)
	}
	got, err := c.Get(0, 9)
	if !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Get(0) err = %v", err)
	}
	_ = got
}

func TestStatsCounts(t *testing.T) {
	c := mustNew(t, 1000, 8)
	mustInsert(t, c, 1, make([]byte, 100))
	mustInsert(t, c, 2, make([]byte, 200))
	st := c.Stats()
	if st.Files != 2 || st.UsedBytes != 300 || st.TotalBytes != 1000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Insertions != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: after any sequence of inserts, every cached file reads back
// exactly what was inserted (evictions notwithstanding).
func TestQuickCacheIntegrity(t *testing.T) {
	f := func(sizes []uint16) bool {
		c, err := New(4096, 32)
		if err != nil {
			return false
		}
		type entry struct {
			idx  uint16
			data []byte
		}
		livemap := map[uint32]entry{}
		next := uint32(1)
		for _, raw := range sizes {
			size := int(raw % 1024)
			data := bytes.Repeat([]byte{byte(next)}, size)
			idx, evicted, err := c.Insert(next, data)
			if err != nil {
				return false
			}
			for _, ev := range evicted {
				delete(livemap, ev.Inode)
			}
			livemap[next] = entry{idx: idx, data: data}
			next++

			for inode, e := range livemap {
				got, err := c.Get(e.idx, inode)
				if err != nil {
					return false
				}
				if !bytes.Equal(got, e.data) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: compaction never loses or corrupts cached data, at any fill
// pattern, and always leaves zero fragmentation.
func TestQuickCompactionSafe(t *testing.T) {
	f := func(sizes []uint8, removeMask uint32) bool {
		c, err := New(2048, 16)
		if err != nil {
			return false
		}
		type entry struct {
			idx  uint16
			data []byte
		}
		live := map[uint32]entry{}
		next := uint32(1)
		for _, raw := range sizes {
			size := int(raw)%256 + 1
			data := bytes.Repeat([]byte{byte(next)}, size)
			idx, evicted, err := c.Insert(next, data)
			if err != nil {
				return false
			}
			for _, ev := range evicted {
				delete(live, ev.Inode)
			}
			live[next] = entry{idx, data}
			next++
		}
		i := 0
		for inode, e := range live {
			if removeMask&(1<<(i%32)) != 0 {
				if err := c.Remove(e.idx, inode); err != nil {
					return false
				}
				delete(live, inode)
			}
			i++
		}
		c.Compact()
		if c.Fragmentation() != 0 {
			return false
		}
		for inode, e := range live {
			got, err := c.Get(e.idx, inode)
			if err != nil || !bytes.Equal(got, e.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManyInsertionsStayWithinArena(t *testing.T) {
	c := mustNew(t, 1<<16, 64)
	for i := 0; i < 1000; i++ {
		size := (i*37)%4096 + 1
		if _, _, err := c.Insert(uint32(i+1), make([]byte, size)); err != nil {
			t.Fatalf("Insert %d (%d bytes): %v", i, size, err)
		}
		st := c.Stats()
		if st.UsedBytes > st.TotalBytes {
			t.Fatalf("cache overcommitted: %+v", st)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions under pressure")
	}
	t.Logf("final stats: %+v", st)
}

// TestConcurrentInternalSafety hammers the cache's own locking: inserts,
// lookups, removals and compactions from many goroutines. Returned views
// are deliberately not dereferenced — the documented contract is that
// view contents are only stable until the next cache operation, which the
// Bullet engine guarantees with its own lock.
func TestConcurrentInternalSafety(t *testing.T) {
	c := mustNew(t, 1<<18, 64)
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			base := uint32(w*1000 + 1)
			for i := 0; i < 300; i++ {
				inode := base + uint32(i)
				idx, _, err := c.Insert(inode, make([]byte, (i%500)+1))
				if err != nil {
					done <- err
					return
				}
				if _, err := c.Get(idx, inode); err != nil && !errors.Is(err, ErrBadSlot) {
					done <- err
					return
				}
				switch i % 9 {
				case 3:
					_ = c.Remove(idx, inode) // may already be evicted
				case 6:
					c.Compact()
				}
				c.Stats()
				c.Fragmentation()
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func ExampleCache() {
	c, _ := New(1<<20, 128)
	idx, _, _ := c.Insert(1, []byte("an immutable file"))
	data, _ := c.Get(idx, 1)
	fmt.Println(string(data))
	// Output: an immutable file
}

func TestMetricsGauges(t *testing.T) {
	c := mustNew(t, 1024, 8)
	reg := stats.NewRegistry()
	c.AttachMetrics(reg)

	idx, _, err := c.Insert(1, []byte("observable bytes"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := c.Get(idx, 1); err != nil {
		t.Fatalf("Get: %v", err)
	}
	c.NoteMiss()
	c.NoteMiss()

	snap := reg.Snapshot()
	want := map[string]int64{
		"cache.files":          1,
		"cache.resident_bytes": 16,
		"cache.total_bytes":    1024,
		"cache.hits":           1,
		"cache.misses":         2,
		"cache.insertions":     1,
		"cache.evictions":      0,
	}
	for k, v := range want {
		if got := snap.Gauges[k]; got != v {
			t.Errorf("%s = %d, want %d", k, got, v)
		}
	}
	if _, ok := snap.Gauges["cache.fragmentation_pct"]; !ok {
		t.Error("cache.fragmentation_pct gauge missing")
	}
}
