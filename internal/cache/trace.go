package cache

import "bulletfs/internal/trace"

// GetViewTraced is GetView with a cache-lookup span: hit or miss, size on
// hit. tc may be nil (untraced paths share this code path shape in the
// engine).
func (c *Cache) GetViewTraced(tc *trace.Ctx, parent *trace.Span, idx uint16, inode uint32) (*View, error) {
	if !tc.Active() {
		return c.GetView(idx, inode)
	}
	sp := tc.Begin(parent, trace.LayerCache, trace.OpCacheLookup)
	v, err := c.GetView(idx, inode)
	if sp != nil {
		sp.Inode = inode
		if err == nil {
			sp.CacheHit = trace.CacheHit
			sp.Bytes = int64(v.Len())
		} else {
			// A stale slot number: logically a miss (the caller faults).
			sp.CacheHit = trace.CacheMiss
		}
	}
	tc.End(sp)
	return v, err
}

// InsertTraced is Insert with a cache-insert span recording the inode and
// the bytes admitted. tc may be nil.
func (c *Cache) InsertTraced(tc *trace.Ctx, parent *trace.Span, inode uint32, data []byte) (uint16, []Evicted, error) {
	if !tc.Active() {
		return c.Insert(inode, data)
	}
	sp := tc.Begin(parent, trace.LayerCache, trace.OpCacheInsert)
	idx, evicted, err := c.Insert(inode, data)
	if sp != nil {
		sp.Inode = inode
		sp.Bytes = int64(len(data))
		if err != nil {
			sp.Status = 1
		}
	}
	tc.End(sp)
	return idx, evicted, err
}

// TraceMiss emits a cache-lookup miss span for a file with no cached copy
// at all (the engine consults the inode's cache-index field first, so the
// cache never sees such lookups; this is the tracing analogue of
// NoteMiss). No-op when tc is nil.
func (c *Cache) TraceMiss(tc *trace.Ctx, parent *trace.Span, inode uint32) {
	if !tc.Active() {
		return
	}
	sp := tc.Begin(parent, trace.LayerCache, trace.OpCacheLookup)
	if sp != nil {
		sp.Inode = inode
		sp.CacheHit = trace.CacheMiss
	}
	tc.End(sp)
}
