// Package logsrv implements the separate log server the paper calls for in
// §2: "Each append to a log file ... would require the whole file to be
// copied. For log files we have implemented a separate server."
//
// A log object accepts cheap appends into a RAM tail; once the tail grows
// past a threshold (or on demand) it is folded into an immutable Bullet
// file using the server-side append extension (§5), so the flush transfers
// only the tail, never the whole log. Sealing a log turns it into a plain
// immutable Bullet file and returns that file's capability.
package logsrv

import (
	"errors"
	"fmt"
	"sync"

	"bulletfs/internal/capability"
	"bulletfs/internal/client"
)

// Errors returned by the log server.
var (
	// ErrNoSuchLog means the capability does not name a live log.
	ErrNoSuchLog = errors.New("logsrv: no such log")
	// ErrConfig means the server was built with unusable options.
	ErrConfig = errors.New("logsrv: bad configuration")
)

// Rights used by the log server.
const (
	// RightAppend permits appending records.
	RightAppend = capability.RightModify
	// RightRead permits reading and sizing the log.
	RightRead = capability.RightRead
	// RightDelete permits deleting or sealing the log.
	RightDelete = capability.RightDelete
)

// Options configures a log server.
type Options struct {
	// Port is the server's capability port (zero = random).
	Port capability.Port
	// Store is the Bullet client used for checkpoints and sealing.
	Store *client.Client
	// StorePort is the Bullet server backing this log server.
	StorePort capability.Port
	// FlushThreshold is the tail size that triggers a background-free
	// synchronous fold into the Bullet checkpoint (default 64 KiB).
	FlushThreshold int
	// PFactor is the paranoia factor for checkpoint writes (default 1).
	PFactor int
}

type logObject struct {
	random     capability.Random
	checkpoint capability.Capability // zero until first flush
	ckptSize   int64
	tail       []byte
	threshold  int // doubles after each flush (amortization, see below)
}

// Server is the append-optimized log server.
type Server struct {
	port      capability.Port
	store     *client.Client
	storePort capability.Port
	threshold int
	pfactor   int

	mu      sync.Mutex
	logs    map[uint32]*logObject // guarded by mu
	nextObj uint32                // guarded by mu
	stats   Stats                 // guarded by mu
}

// Stats counts log server activity.
type Stats struct {
	Appends       int64
	AppendedBytes int64
	Flushes       int64
	Seals         int64
}

// New builds a log server. Store is required: logs checkpoint to Bullet.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("a Bullet store is required: %w", ErrConfig)
	}
	if (opts.Port == capability.Port{}) {
		p, err := capability.NewPort()
		if err != nil {
			return nil, err
		}
		opts.Port = p
	}
	if opts.FlushThreshold <= 0 {
		opts.FlushThreshold = 64 << 10
	}
	if opts.PFactor == 0 {
		opts.PFactor = 1
	}
	return &Server{
		port:      opts.Port,
		store:     opts.Store,
		storePort: opts.StorePort,
		threshold: opts.FlushThreshold,
		pfactor:   opts.PFactor,
		logs:      make(map[uint32]*logObject),
		nextObj:   1,
	}, nil
}

// Port returns the server's capability port.
func (s *Server) Port() capability.Port { return s.port }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Server) resolveLocked(c capability.Capability, want capability.Rights) (uint32, *logObject, error) {
	if c.Port != s.port {
		return 0, nil, fmt.Errorf("capability for another server: %w", ErrNoSuchLog)
	}
	lo, ok := s.logs[c.Object]
	if !ok {
		return 0, nil, fmt.Errorf("object %d: %w", c.Object, ErrNoSuchLog)
	}
	if err := capability.Require(c, lo.random, want); err != nil {
		return 0, nil, err
	}
	return c.Object, lo, nil
}

// CreateLog makes a new, empty log and returns its owner capability.
func (s *Server) CreateLog() (capability.Capability, error) {
	r, err := capability.NewRandom()
	if err != nil {
		return capability.Capability{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	obj := s.nextObj
	s.nextObj++
	s.logs[obj] = &logObject{random: r, threshold: s.threshold}
	return capability.Owner(s.port, obj, r), nil
}

// Append adds data to the log and returns the log's new total size. Unlike
// a Bullet create, the cost is proportional to the appended data, not the
// log size. Crossing the flush threshold folds the tail into the Bullet
// checkpoint before returning.
func (s *Server) Append(c capability.Capability, data []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, lo, err := s.resolveLocked(c, RightAppend)
	if err != nil {
		return 0, err
	}
	lo.tail = append(lo.tail, data...)
	s.stats.Appends++
	s.stats.AppendedBytes += int64(len(data))
	if len(lo.tail) >= lo.threshold {
		if err := s.flushLocked(lo); err != nil {
			return 0, err
		}
	}
	return lo.ckptSize + int64(len(lo.tail)), nil
}

// flushLocked folds the RAM tail into the Bullet checkpoint using the
// server-side append extension: only the tail crosses the wire. Because
// the immutable store rewrites the whole checkpoint on every fold, the
// per-log threshold doubles after each flush (capped at 4 MiB): total
// store traffic stays O(log size), the standard amortization for
// append-into-immutable-storage.
func (s *Server) flushLocked(lo *logObject) error {
	if len(lo.tail) == 0 {
		return nil
	}
	var next capability.Capability
	var err error
	if (lo.checkpoint == capability.Capability{}) {
		next, err = s.store.Create(s.storePort, lo.tail, s.pfactor)
	} else {
		next, err = s.store.Append(lo.checkpoint, lo.tail, s.pfactor)
	}
	if err != nil {
		return fmt.Errorf("logsrv: flushing tail: %w", err)
	}
	if (lo.checkpoint != capability.Capability{}) {
		_ = s.store.Delete(lo.checkpoint) // best effort: superseded version
	}
	lo.ckptSize += int64(len(lo.tail))
	lo.checkpoint = next
	lo.tail = nil
	if lo.threshold < 4<<20 {
		lo.threshold *= 2
	}
	s.stats.Flushes++
	return nil
}

// Flush forces the tail into the Bullet checkpoint now.
func (s *Server) Flush(c capability.Capability) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, lo, err := s.resolveLocked(c, RightAppend)
	if err != nil {
		return err
	}
	return s.flushLocked(lo)
}

// Size returns the log's total size (checkpoint + tail).
func (s *Server) Size(c capability.Capability) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, lo, err := s.resolveLocked(c, RightRead)
	if err != nil {
		return 0, err
	}
	return lo.ckptSize + int64(len(lo.tail)), nil
}

// Read returns the complete log contents.
func (s *Server) Read(c capability.Capability) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, lo, err := s.resolveLocked(c, RightRead)
	if err != nil {
		return nil, err
	}
	var prefix []byte
	if (lo.checkpoint != capability.Capability{}) {
		prefix, err = s.store.Read(lo.checkpoint)
		if err != nil {
			return nil, fmt.Errorf("logsrv: reading checkpoint: %w", err)
		}
	}
	out := make([]byte, 0, len(prefix)+len(lo.tail))
	out = append(out, prefix...)
	out = append(out, lo.tail...)
	return out, nil
}

// Seal freezes the log into an immutable Bullet file, deletes the log
// object, and returns the file's capability — the hand-off from the
// mutable-log world to Bullet's immutable one.
func (s *Server) Seal(c capability.Capability) (capability.Capability, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, lo, err := s.resolveLocked(c, RightDelete)
	if err != nil {
		return capability.Capability{}, err
	}
	if err := s.flushLocked(lo); err != nil {
		return capability.Capability{}, err
	}
	if (lo.checkpoint == capability.Capability{}) {
		// Empty log: seal to an empty Bullet file.
		empty, err := s.store.Create(s.storePort, nil, s.pfactor)
		if err != nil {
			return capability.Capability{}, err
		}
		lo.checkpoint = empty
	}
	sealed := lo.checkpoint
	delete(s.logs, obj)
	s.stats.Seals++
	return sealed, nil
}

// DeleteLog discards the log and its checkpoint.
func (s *Server) DeleteLog(c capability.Capability) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, lo, err := s.resolveLocked(c, RightDelete)
	if err != nil {
		return err
	}
	if (lo.checkpoint != capability.Capability{}) {
		_ = s.store.Delete(lo.checkpoint)
	}
	delete(s.logs, obj)
	return nil
}

// LogCount returns the number of live logs.
func (s *Server) LogCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.logs)
}

// ReferencedObjects collects the object numbers of the live logs'
// checkpoint files on the given Bullet port — the log server's
// contribution to the garbage collector's mark phase.
func (s *Server) ReferencedObjects(port capability.Port) map[uint32]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint32]bool)
	for _, lo := range s.logs {
		if lo.checkpoint.Port == port {
			out[lo.checkpoint.Object] = true
		}
	}
	return out
}
