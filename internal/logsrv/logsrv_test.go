package logsrv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

// world builds a bullet store + log server wired over the local transport.
type world struct {
	logs   *Server
	store  *client.Client
	bullet *bullet.Server
	mux    *rpc.Mux
}

func newWorld(t *testing.T, threshold int) *world {
	t.Helper()
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 300); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(eng.Sync)
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	cl := client.New(rpc.NewLocal(mux))
	ls, err := New(Options{Store: cl, StorePort: eng.Port(), FlushThreshold: threshold, PFactor: 2})
	if err != nil {
		t.Fatalf("logsrv.New: %v", err)
	}
	ls.Register(mux)
	return &world{logs: ls, store: cl, bullet: eng, mux: mux}
}

func TestAppendRead(t *testing.T) {
	w := newWorld(t, 1<<20) // high threshold: everything stays in the tail
	lc, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	var want []byte
	for i := 0; i < 10; i++ {
		line := []byte(fmt.Sprintf("entry %d\n", i))
		want = append(want, line...)
		n, err := w.logs.Append(lc, line)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if n != int64(len(want)) {
			t.Fatalf("size after append = %d, want %d", n, len(want))
		}
	}
	got, err := w.logs.Read(lc)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Read = %q, %v", got, err)
	}
	size, err := w.logs.Size(lc)
	if err != nil || size != int64(len(want)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
}

func TestAutoFlushAtThreshold(t *testing.T) {
	w := newWorld(t, 100)
	lc, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	var want []byte
	for i := 0; i < 30; i++ { // 30 x 10 bytes crosses the 100-byte threshold repeatedly
		chunk := bytes.Repeat([]byte{byte('a' + i%26)}, 10)
		want = append(want, chunk...)
		if _, err := w.logs.Append(lc, chunk); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := w.logs.Stats()
	if st.Flushes == 0 {
		t.Fatal("no flush happened despite crossing the threshold")
	}
	got, err := w.logs.Read(lc)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Read after flushes corrupted (%d vs %d bytes), %v", len(got), len(want), err)
	}
	// Exactly one live checkpoint file per log (superseded ones deleted).
	if live := w.bullet.Live(); live != 1 {
		t.Fatalf("bullet store holds %d files, want 1", live)
	}
}

func TestExplicitFlush(t *testing.T) {
	w := newWorld(t, 1<<20)
	lc, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	if _, err := w.logs.Append(lc, []byte("tail data")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.logs.Flush(lc); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.bullet.Live() != 1 {
		t.Fatalf("no checkpoint file after flush")
	}
	got, err := w.logs.Read(lc)
	if err != nil || string(got) != "tail data" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	// Flushing an empty tail is a no-op.
	if err := w.logs.Flush(lc); err != nil {
		t.Fatalf("second Flush: %v", err)
	}
}

func TestSealProducesImmutableFile(t *testing.T) {
	w := newWorld(t, 50)
	lc, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	var want []byte
	for i := 0; i < 20; i++ {
		line := []byte(fmt.Sprintf("record-%02d;", i))
		want = append(want, line...)
		if _, err := w.logs.Append(lc, line); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	fileCap, err := w.logs.Seal(lc)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := w.store.Read(fileCap)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("sealed file = %q, %v", got, err)
	}
	// The log is gone.
	if _, err := w.logs.Read(lc); !errors.Is(err, ErrNoSuchLog) {
		t.Fatalf("Read after seal err = %v", err)
	}
	if w.logs.LogCount() != 0 {
		t.Fatalf("LogCount = %d", w.logs.LogCount())
	}
}

func TestSealEmptyLog(t *testing.T) {
	w := newWorld(t, 50)
	lc, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	fileCap, err := w.logs.Seal(lc)
	if err != nil {
		t.Fatalf("Seal(empty): %v", err)
	}
	got, err := w.store.Read(fileCap)
	if err != nil || len(got) != 0 {
		t.Fatalf("sealed empty log = %q, %v", got, err)
	}
}

func TestDeleteLogCleansCheckpoint(t *testing.T) {
	w := newWorld(t, 10)
	lc, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	if _, err := w.logs.Append(lc, bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if w.bullet.Live() != 1 {
		t.Fatal("expected a checkpoint file")
	}
	if err := w.logs.DeleteLog(lc); err != nil {
		t.Fatalf("DeleteLog: %v", err)
	}
	if w.bullet.Live() != 0 {
		t.Fatalf("checkpoint leaked: %d files", w.bullet.Live())
	}
}

func TestLogRights(t *testing.T) {
	w := newWorld(t, 1<<20)
	owner, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	readOnly, err := capability.Restrict(owner, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := w.logs.Append(readOnly, []byte("x")); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("Append with read-only cap err = %v", err)
	}
	appendOnly, err := capability.Restrict(owner, RightAppend)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := w.logs.Append(appendOnly, []byte("x")); err != nil {
		t.Fatalf("Append with append cap: %v", err)
	}
	if _, err := w.logs.Read(appendOnly); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("Read with append-only cap err = %v", err)
	}
	forged := owner
	forged.Check[0] ^= 1
	if _, err := w.logs.Read(forged); !errors.Is(err, capability.ErrBadCheck) {
		t.Fatalf("forged cap err = %v", err)
	}
	var ghost capability.Capability
	ghost.Port = w.logs.Port()
	ghost.Object = 999
	if _, err := w.logs.Read(ghost); !errors.Is(err, ErrNoSuchLog) {
		t.Fatalf("ghost log err = %v", err)
	}
}

func TestLogClientOverRPC(t *testing.T) {
	w := newWorld(t, 40)
	lc := NewClient(rpc.NewLocal(w.mux))
	logCap, err := lc.CreateLog(w.logs.Port())
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	var want []byte
	for i := 0; i < 15; i++ {
		line := []byte(fmt.Sprintf("wire %d|", i))
		want = append(want, line...)
		n, err := lc.Append(logCap, line)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if n != int64(len(want)) {
			t.Fatalf("size = %d, want %d", n, len(want))
		}
	}
	got, err := lc.Read(logCap)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Read = %q, %v", got, err)
	}
	size, err := lc.Size(logCap)
	if err != nil || size != int64(len(want)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
	if err := lc.Flush(logCap); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	sealed, err := lc.Seal(logCap)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	fileData, err := w.store.Read(sealed)
	if err != nil || !bytes.Equal(fileData, want) {
		t.Fatalf("sealed = %q, %v", fileData, err)
	}
	if err := lc.DeleteLog(logCap); !errors.Is(err, ErrNoSuchLog) {
		t.Fatalf("DeleteLog after seal err = %v", err)
	}
}

func TestAppendCheaperThanNaiveCopy(t *testing.T) {
	// The reason the log server exists: appending N records to a log must
	// move O(total) bytes through the Bullet store, not O(total^2) as the
	// naive "read + create" per append would.
	w := newWorld(t, 1000)
	lc, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	const records = 100
	rec := bytes.Repeat([]byte{7}, 100) // 10 KB total, flush every 10 records
	for i := 0; i < records; i++ {
		if _, err := w.logs.Append(lc, rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := w.bullet.Stats()
	total := int64(records * len(rec))
	// Each flush re-creates the checkpoint server-side; bytes flowing into
	// the store are bounded by ~2x total (engine copies old + new), far
	// below the ~50x of per-append whole-file copies.
	if st.BytesIn > 4*total {
		t.Fatalf("store ingested %d bytes for a %d-byte log; append path is not incremental", st.BytesIn, total)
	}
}

func TestManyLogsIndependent(t *testing.T) {
	w := newWorld(t, 64)
	caps := make([]capability.Capability, 10)
	for i := range caps {
		c, err := w.logs.CreateLog()
		if err != nil {
			t.Fatalf("CreateLog: %v", err)
		}
		caps[i] = c
	}
	for round := 0; round < 20; round++ {
		for i, c := range caps {
			if _, err := w.logs.Append(c, []byte{byte(i), byte(round)}); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
	}
	for i, c := range caps {
		got, err := w.logs.Read(c)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if len(got) != 40 {
			t.Fatalf("log %d length = %d, want 40", i, len(got))
		}
		for r := 0; r < 20; r++ {
			if got[2*r] != byte(i) || got[2*r+1] != byte(r) {
				t.Fatalf("log %d corrupted at round %d", i, r)
			}
		}
	}
}
