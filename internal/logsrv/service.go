package logsrv

import (
	"errors"
	"fmt"

	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

// Command codes of the log protocol.
const (
	CmdCreateLog uint32 = 64 // -> reply Cap
	CmdAppend    uint32 = 65 // Cap, payload=data -> reply Arg=new size
	CmdRead      uint32 = 66 // Cap -> reply payload
	CmdSize      uint32 = 67 // Cap -> reply Arg=size
	CmdFlush     uint32 = 68 // Cap
	CmdSeal      uint32 = 69 // Cap -> reply Cap (bullet file)
	CmdDelete    uint32 = 70 // Cap
)

// StatusOf maps log server errors to statuses.
func StatusOf(err error) rpc.Status {
	switch {
	case err == nil:
		return rpc.StatusOK
	case errors.Is(err, ErrNoSuchLog):
		return rpc.StatusNoSuchObject
	case errors.Is(err, capability.ErrBadCheck):
		return rpc.StatusBadCheck
	case errors.Is(err, capability.ErrBadRights):
		return rpc.StatusBadRights
	default:
		return rpc.StatusInternal
	}
}

// ErrorOf maps reply statuses back to errors on the client side.
func ErrorOf(st rpc.Status) error {
	switch st {
	case rpc.StatusOK:
		return nil
	case rpc.StatusNoSuchObject:
		return ErrNoSuchLog
	case rpc.StatusBadCheck:
		return capability.ErrBadCheck
	case rpc.StatusBadRights:
		return capability.ErrBadRights
	default:
		return rpc.Errf(st, "log server error")
	}
}

// Register installs the handler on mux.
func (s *Server) Register(mux *rpc.Mux) { mux.Register(s.port, s.Handle) }

// Handle processes one log transaction.
func (s *Server) Handle(req rpc.Header, payload []byte) (rpc.Header, []byte) {
	fail := func(err error) (rpc.Header, []byte) { return rpc.ReplyErr(StatusOf(err)), nil }
	switch req.Command {
	case CmdCreateLog:
		c, err := s.CreateLog()
		if err != nil {
			return fail(err)
		}
		return rpc.Header{Status: rpc.StatusOK, Cap: c}, nil
	case CmdAppend:
		n, err := s.Append(req.Cap, payload)
		if err != nil {
			return fail(err)
		}
		return rpc.Header{Status: rpc.StatusOK, Arg: uint64(n)}, nil
	case CmdRead:
		data, err := s.Read(req.Cap)
		if err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), data
	case CmdSize:
		n, err := s.Size(req.Cap)
		if err != nil {
			return fail(err)
		}
		return rpc.Header{Status: rpc.StatusOK, Arg: uint64(n)}, nil
	case CmdFlush:
		if err := s.Flush(req.Cap); err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), nil
	case CmdSeal:
		c, err := s.Seal(req.Cap)
		if err != nil {
			return fail(err)
		}
		return rpc.Header{Status: rpc.StatusOK, Cap: c}, nil
	case CmdDelete:
		if err := s.DeleteLog(req.Cap); err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), nil
	default:
		return rpc.ReplyErr(rpc.StatusBadCommand), nil
	}
}

// Client calls a log server over any rpc.Transport.
type Client struct {
	tr rpc.Transport
}

// NewClient builds a log client.
func NewClient(tr rpc.Transport) *Client { return &Client{tr: tr} }

func (c *Client) call(port capability.Port, req rpc.Header, payload []byte) (rpc.Header, []byte, error) {
	rep, body, err := c.tr.Trans(port, req, payload)
	if err != nil {
		return rpc.Header{}, nil, fmt.Errorf("log client: transport: %w", err)
	}
	if rep.Status != rpc.StatusOK {
		return rep, nil, ErrorOf(rep.Status)
	}
	return rep, body, nil
}

// CreateLog makes a new empty log on the server at port.
func (c *Client) CreateLog(port capability.Port) (capability.Capability, error) {
	rep, _, err := c.call(port, rpc.Header{Command: CmdCreateLog}, nil)
	if err != nil {
		return capability.Capability{}, err
	}
	return rep.Cap, nil
}

// Append adds data to the log, returning the new total size.
func (c *Client) Append(logCap capability.Capability, data []byte) (int64, error) {
	rep, _, err := c.call(logCap.Port, rpc.Header{Command: CmdAppend, Cap: logCap}, data)
	if err != nil {
		return 0, err
	}
	return int64(rep.Arg), nil
}

// Read returns the whole log.
func (c *Client) Read(logCap capability.Capability) ([]byte, error) {
	_, body, err := c.call(logCap.Port, rpc.Header{Command: CmdRead, Cap: logCap}, nil)
	return body, err
}

// Size returns the log's total size.
func (c *Client) Size(logCap capability.Capability) (int64, error) {
	rep, _, err := c.call(logCap.Port, rpc.Header{Command: CmdSize, Cap: logCap}, nil)
	if err != nil {
		return 0, err
	}
	return int64(rep.Arg), nil
}

// Flush forces the tail into the Bullet checkpoint.
func (c *Client) Flush(logCap capability.Capability) error {
	_, _, err := c.call(logCap.Port, rpc.Header{Command: CmdFlush, Cap: logCap}, nil)
	return err
}

// Seal freezes the log into an immutable Bullet file.
func (c *Client) Seal(logCap capability.Capability) (capability.Capability, error) {
	rep, _, err := c.call(logCap.Port, rpc.Header{Command: CmdSeal, Cap: logCap}, nil)
	if err != nil {
		return capability.Capability{}, err
	}
	return rep.Cap, nil
}

// DeleteLog discards the log.
func (c *Client) DeleteLog(logCap capability.Capability) error {
	_, _, err := c.call(logCap.Port, rpc.Header{Command: CmdDelete, Cap: logCap}, nil)
	return err
}
