package logsrv

import (
	"errors"
	"testing"

	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

func TestLogStatusErrorRoundTrip(t *testing.T) {
	for _, in := range []error{ErrNoSuchLog, capability.ErrBadCheck, capability.ErrBadRights} {
		st := StatusOf(in)
		if st == rpc.StatusOK || st == rpc.StatusInternal {
			t.Errorf("StatusOf(%v) = %v", in, st)
			continue
		}
		if out := ErrorOf(st); !errors.Is(out, in) {
			t.Errorf("round trip %v -> %v -> %v", in, st, out)
		}
	}
	if StatusOf(nil) != rpc.StatusOK || ErrorOf(rpc.StatusOK) != nil {
		t.Error("nil round trip broken")
	}
	if StatusOf(errors.New("x")) != rpc.StatusInternal || ErrorOf(rpc.StatusInternal) == nil {
		t.Error("internal mapping broken")
	}
}

func TestLogServiceErrorsOverRPC(t *testing.T) {
	w := newWorld(t, 1<<20)
	lc := NewClient(rpc.NewLocal(w.mux))

	var ghost capability.Capability
	ghost.Port = w.logs.Port()
	ghost.Object = 42
	if _, err := lc.Read(ghost); !errors.Is(err, ErrNoSuchLog) {
		t.Fatalf("Read(ghost) err = %v", err)
	}
	owner, err := lc.CreateLog(w.logs.Port())
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	forged := owner
	forged.Check[1] ^= 1
	if _, err := lc.Append(forged, []byte("x")); !errors.Is(err, capability.ErrBadCheck) {
		t.Fatalf("forged append err = %v", err)
	}
	readOnly, err := capability.Restrict(owner, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := lc.Seal(readOnly); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("seal without right err = %v", err)
	}
	rep, _ := w.logs.Handle(rpc.Header{Command: 999}, nil)
	if rep.Status != rpc.StatusBadCommand {
		t.Fatalf("bad command status = %v", rep.Status)
	}
}

func TestLogReferencedObjects(t *testing.T) {
	w := newWorld(t, 10) // tiny threshold: first append checkpoints
	lc1, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	lc2, err := w.logs.CreateLog()
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	// lc1 flushes (has a checkpoint); lc2 stays tail-only (no checkpoint).
	if _, err := w.logs.Append(lc1, make([]byte, 100)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := w.logs.Append(lc2, []byte("x")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	refs := w.logs.ReferencedObjects(w.bullet.Port())
	if len(refs) != 1 {
		t.Fatalf("refs = %v, want exactly the flushed checkpoint", refs)
	}
	// Wrong port: nothing.
	if refs := w.logs.ReferencedObjects(capability.PortFromString("elsewhere")); len(refs) != 0 {
		t.Fatalf("refs for foreign port = %v", refs)
	}
	_ = lc2
}
