// Package scrub paces background integrity scrubbing over a Bullet
// engine: a rate-limited goroutine that periodically walks every live
// object, compares all replica copies against the file's CRC32C, and
// repairs divergent extents (the per-object mechanics live in
// bullet.ScrubObject; this package only schedules them).
//
// The paper's server trusted its disks; a long-lived replica set cannot
// (see docs/RECOVERY.md). The scrubber is the proactive half of
// self-healing — the read path's verify-and-failover is the reactive
// half — and is deliberately gentle: a byte budget per second, one object
// at a time, pausable while compaction owns the disk layout.
package scrub

import (
	"sync"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/stats"
)

// Engine is the slice of *bullet.Server the scrubber needs; narrowed for
// tests.
type Engine interface {
	Objects() []uint32
	ScrubObject(obj uint32) bullet.ScrubResult
	FlushSums() error
}

// Config tunes the scrubber.
type Config struct {
	// Interval between the start of one pass and the next. Zero disables
	// periodic passes; TriggerPass still works.
	Interval time.Duration
	// BytesPerSec caps how fast the scrubber reads replica data. Zero
	// means DefaultBytesPerSec.
	BytesPerSec int64
}

// DefaultBytesPerSec is the default scrub read budget: 8 MiB/s across all
// replicas, slow enough to be invisible next to real traffic.
const DefaultBytesPerSec = 8 << 20

// Status is a snapshot of scrubber progress for the health report.
type Status struct {
	Running      bool  `json:"running"`
	Paused       bool  `json:"paused"`
	Passes       int64 `json:"passes"`
	FilesChecked int64 `json:"files_checked"`
	Repairs      int64 `json:"repairs"`
	Backfills    int64 `json:"backfills"`
	Unrepairable int64 `json:"unrepairable"`
	BytesRead    int64 `json:"bytes_read"`
}

// Scrubber drives periodic scrub passes over an engine.
type Scrubber struct {
	eng Engine
	cfg Config

	stop chan struct{}
	kick chan struct{} // TriggerPass signal, capacity 1
	done chan struct{}

	mu      sync.Mutex
	started bool
	stopped bool
	paused  bool

	passes       stats.Counter
	filesChecked stats.Counter
	repairs      stats.Counter
	backfills    stats.Counter
	unrepairable stats.Counter
	bytesRead    stats.Counter
}

// New builds a scrubber over eng. Call Start to launch it.
func New(eng Engine, cfg Config) *Scrubber {
	if cfg.BytesPerSec <= 0 {
		cfg.BytesPerSec = DefaultBytesPerSec
	}
	return &Scrubber{
		eng:  eng,
		cfg:  cfg,
		stop: make(chan struct{}),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
}

// AttachMetrics publishes the scrubber's counters into reg.
func (s *Scrubber) AttachMetrics(reg *stats.Registry) {
	reg.GaugeFunc("scrub.passes", s.passes.Load)
	reg.GaugeFunc("scrub.files_checked", s.filesChecked.Load)
	reg.GaugeFunc("scrub.repairs", s.repairs.Load)
	reg.GaugeFunc("scrub.checksum_backfills", s.backfills.Load)
	reg.GaugeFunc("scrub.unrepairable", s.unrepairable.Load)
	reg.GaugeFunc("scrub.bytes_read", s.bytesRead.Load)
}

// Start launches the background loop. Starting twice is a no-op.
func (s *Scrubber) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.stopped {
		return
	}
	s.started = true
	go s.loop() // exits when s.stop closes; Stop waits on s.done
}

// Stop halts the loop and waits for an in-flight pass to finish its
// current object. Idempotent.
func (s *Scrubber) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	started := s.started
	s.mu.Unlock()
	close(s.stop)
	if started {
		<-s.done
	}
}

// Pause suspends scrubbing between objects (an in-flight ScrubObject
// completes). Compaction pauses the scrubber so the two never contend for
// the metadata lock while the layout is in motion.
func (s *Scrubber) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume lifts a Pause.
func (s *Scrubber) Resume() {
	s.mu.Lock()
	s.paused = false
	s.mu.Unlock()
}

// TriggerPass requests an immediate pass (the SALVAGE RPC's scrub
// selector). If a trigger is already pending it is coalesced.
func (s *Scrubber) TriggerPass() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Status returns a snapshot of scrubber progress.
func (s *Scrubber) Status() Status {
	s.mu.Lock()
	running := s.started && !s.stopped
	paused := s.paused
	s.mu.Unlock()
	return Status{
		Running:      running,
		Paused:       paused,
		Passes:       s.passes.Load(),
		FilesChecked: s.filesChecked.Load(),
		Repairs:      s.repairs.Load(),
		Backfills:    s.backfills.Load(),
		Unrepairable: s.unrepairable.Load(),
		BytesRead:    s.bytesRead.Load(),
	}
}

func (s *Scrubber) loop() {
	defer close(s.done)
	var tick <-chan time.Time
	var ticker *time.Ticker
	if s.cfg.Interval > 0 {
		ticker = time.NewTicker(s.cfg.Interval)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-tick:
		}
		s.pass()
	}
}

// pass scrubs every object that was live when the pass began. New files
// are covered by the next pass (they were verified at create anyway).
func (s *Scrubber) pass() {
	for _, obj := range s.eng.Objects() {
		if !s.gate() {
			return
		}
		res := s.eng.ScrubObject(obj)
		if res.Skipped {
			continue
		}
		s.filesChecked.Inc()
		s.bytesRead.Add(res.Bytes)
		s.repairs.Add(int64(res.Repaired))
		if res.Backfilled {
			s.backfills.Inc()
		}
		if res.Unrepairable {
			s.unrepairable.Inc()
		}
		s.throttle(res.Bytes)
	}
	// Persist checksums the pass backfilled without waiting for the next
	// engine Sync.
	_ = s.eng.FlushSums()
	s.passes.Inc()
}

// gate blocks while paused; it reports false when the scrubber is
// stopping and the pass should abandon.
func (s *Scrubber) gate() bool {
	for {
		select {
		case <-s.stop:
			return false
		default:
		}
		s.mu.Lock()
		paused := s.paused
		s.mu.Unlock()
		if !paused {
			return true
		}
		select {
		case <-s.stop:
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// throttle sleeps long enough that n bytes fit the configured budget,
// abandoning early when the scrubber stops.
func (s *Scrubber) throttle(n int64) {
	if n <= 0 {
		return
	}
	d := time.Duration(n * int64(time.Second) / s.cfg.BytesPerSec)
	if d <= 0 {
		return
	}
	select {
	case <-s.stop:
	case <-time.After(d):
	}
}
