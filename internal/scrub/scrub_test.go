package scrub

import (
	"sync"
	"testing"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/stats"
)

// fakeEngine counts scrub calls and serves canned results.
type fakeEngine struct {
	mu      sync.Mutex
	objects []uint32
	results map[uint32]bullet.ScrubResult
	scrubs  int
	flushes int
}

func (f *fakeEngine) Objects() []uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint32(nil), f.objects...)
}

func (f *fakeEngine) ScrubObject(obj uint32) bullet.ScrubResult {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scrubs++
	if r, ok := f.results[obj]; ok {
		return r
	}
	return bullet.ScrubResult{Object: obj, Checked: 3, Bytes: 1024}
}

func (f *fakeEngine) FlushSums() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flushes++
	return nil
}

func (f *fakeEngine) counts() (scrubs, flushes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.scrubs, f.flushes
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTriggeredPassScrubsEveryObject(t *testing.T) {
	eng := &fakeEngine{
		objects: []uint32{1, 2, 3},
		results: map[uint32]bullet.ScrubResult{
			1: {Object: 1, Checked: 3, Bytes: 512, Repaired: 1},
			2: {Object: 2, Skipped: true},
			3: {Object: 3, Checked: 3, Bytes: 512, Backfilled: true, Unrepairable: true},
		},
	}
	s := New(eng, Config{BytesPerSec: 1 << 30}) // no periodic ticks, fast budget
	s.Start()
	defer s.Stop()

	s.TriggerPass()
	waitFor(t, "first pass", func() bool { return s.Status().Passes == 1 })

	st := s.Status()
	if st.FilesChecked != 2 { // the skipped object does not count
		t.Fatalf("FilesChecked = %d, want 2", st.FilesChecked)
	}
	if st.Repairs != 1 || st.Backfills != 1 || st.Unrepairable != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.BytesRead != 1024 {
		t.Fatalf("BytesRead = %d, want 1024", st.BytesRead)
	}
	if scrubs, flushes := eng.counts(); scrubs != 3 || flushes != 1 {
		t.Fatalf("scrubs=%d flushes=%d, want 3 and 1", scrubs, flushes)
	}
}

func TestPeriodicPassesAndStop(t *testing.T) {
	eng := &fakeEngine{objects: []uint32{1}}
	s := New(eng, Config{Interval: 5 * time.Millisecond, BytesPerSec: 1 << 30})
	s.Start()
	waitFor(t, "two periodic passes", func() bool { return s.Status().Passes >= 2 })
	s.Stop()
	if s.Status().Running {
		t.Fatalf("still running after Stop")
	}
	after, _ := eng.counts()
	time.Sleep(20 * time.Millisecond)
	if now, _ := eng.counts(); now != after {
		t.Fatalf("scrubbing continued after Stop (%d -> %d)", after, now)
	}
	s.Stop() // idempotent
}

func TestPauseSuspendsScrubbing(t *testing.T) {
	eng := &fakeEngine{objects: []uint32{1, 2, 3, 4, 5}}
	s := New(eng, Config{BytesPerSec: 1 << 30})
	s.Pause()
	s.Start()
	defer s.Stop()
	s.TriggerPass()

	time.Sleep(30 * time.Millisecond)
	if scrubs, _ := eng.counts(); scrubs != 0 {
		t.Fatalf("scrubbed %d objects while paused", scrubs)
	}
	if !s.Status().Paused {
		t.Fatalf("status does not show paused")
	}
	s.Resume()
	waitFor(t, "pass after resume", func() bool { return s.Status().Passes == 1 })
}

func TestAttachMetrics(t *testing.T) {
	eng := &fakeEngine{objects: []uint32{1}}
	s := New(eng, Config{BytesPerSec: 1 << 30})
	reg := stats.NewRegistry()
	s.AttachMetrics(reg)
	s.Start()
	defer s.Stop()
	s.TriggerPass()
	waitFor(t, "pass", func() bool { return s.Status().Passes == 1 })
	snap := reg.Snapshot()
	if snap.Gauges["scrub.files_checked"] != 1 {
		t.Fatalf("scrub.files_checked gauge missing or wrong: %+v", snap.Gauges)
	}
}
