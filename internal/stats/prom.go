package stats

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the OpenMetrics text exposition format
// (the superset of the classic Prometheus text format that can carry
// exemplars), dependency-free. Metric names are mangled from the
// registry's dotted namespace into Prometheus convention:
//
//	rpc.read.latency_ns  ->  bullet_rpc_read_latency_ns
//
// Counters gain the mandated `_total` sample suffix; histograms expand
// into cumulative `_bucket{le="..."}` series plus `_sum` and `_count`,
// with `le` values in the histogram's native unit (nanoseconds for
// latency ladders — the `_ns` name suffix carries the unit). Buckets
// holding a trace exemplar emit it OpenMetrics-style:
//
//	bullet_rpc_read_latency_ns_bucket{le="2000000"} 5 # {trace_id="00..ab"} 1500000 1754600000.123456789
//
// The output ends with the mandatory `# EOF` marker.

// OpenMetricsContentType is the Content-Type of WriteOpenMetrics output.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// PromName mangles a registry metric name into a Prometheus-legal one:
// every run of characters outside [a-zA-Z0-9_] becomes one underscore,
// and the stable exporter prefix "bullet_" is prepended (metric names
// must not start with a digit; the prefix also namespaces the exporter).
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 7)
	b.WriteString("bullet_")
	lastUnder := false
	for i := 0; i < len(name); i++ {
		ch := name[i]
		ok := ch == '_' || ch >= '0' && ch <= '9' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z'
		if ok {
			b.WriteByte(ch)
			lastUnder = ch == '_'
			continue
		}
		if !lastUnder {
			b.WriteByte('_')
			lastUnder = true
		}
	}
	return b.String()
}

// WriteOpenMetrics renders the snapshot. The output is deterministic
// (names sort) so two snapshots of one registry diff cleanly.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	bw := &errWriter{w: w}

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		bw.printf("# TYPE %s counter\n", pn)
		bw.printf("%s_total %d\n", pn, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		bw.printf("# TYPE %s gauge\n", pn)
		bw.printf("%s %d\n", pn, s.Gauges[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeHistogram(bw, PromName(name), s.Histograms[name])
	}

	bw.printf("# EOF\n")
	return bw.err
}

// writeHistogram renders one histogram family: cumulative buckets with
// exemplars, then _sum and _count.
func writeHistogram(bw *errWriter, pn string, h HistogramSnapshot) {
	bw.printf("# TYPE %s histogram\n", pn)
	ex := make(map[int]Exemplar, len(h.Exemplars))
	for _, e := range h.Exemplars {
		ex[e.Bucket] = e
	}
	cum := int64(0)
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = strconv.FormatInt(h.Bounds[i], 10)
		}
		bw.printf("%s_bucket{le=%q} %d", pn, le, cum)
		if e, ok := ex[i]; ok {
			// Exemplar: labelset, value, then the timestamp in seconds.
			bw.printf(" # {trace_id=%q} %d %d.%09d", e.TraceID, e.Value,
				e.UnixNano/1e9, e.UnixNano%1e9)
		}
		bw.printf("\n")
	}
	bw.printf("%s_sum %d\n", pn, h.Sum)
	bw.printf("%s_count %d\n", pn, h.Count)
}

// errWriter latches the first write error so the exposition loop reads
// straight through without per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
