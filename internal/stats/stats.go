// Package stats is the server's observability substrate: lock-free
// counters and gauges, fixed-bucket histograms with percentile summaries,
// and a registry that snapshots everything to JSON. The paper's argument
// is quantitative — Bullet wins because measured latency and throughput
// beat NFS (§4) — so the server must be able to report the numbers it is
// being judged on: cache hit rates, P-FACTOR commit latency, compaction
// work, RPC latency distributions.
//
// The package is stdlib-only and dependency-free so every layer
// (internal/bullet, internal/cache, internal/disk, internal/rpc) can use
// it without import cycles. Counters and gauges are single atomics;
// histograms use atomic per-bucket counts; the registry serializes only
// metric creation and snapshotting, never the hot-path updates.
package stats

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use. All methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Snapshot is a point-in-time copy of every metric in a registry. It
// marshals to (and unmarshals from) stable JSON: map keys sort, so two
// snapshots of the same registry diff cleanly.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry names and owns a set of metrics. Creation methods are
// idempotent: asking for an existing name returns the existing metric, so
// layers can share one registry without coordinating. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter     // guarded by mu
	gauges     map[string]*Gauge       // guarded by mu
	gaugeFuncs map[string]func() int64 // guarded by mu
	histograms map[string]*Histogram   // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn as the named gauge; each Snapshot calls it for
// the current value. Registering an existing name replaces the function
// (a layer re-attaching after a restart wins).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds mean DefaultLatencyBounds). The
// bounds of an existing histogram are kept; the argument is ignored.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramExemplars returns the named histogram (creating it like
// Histogram) with per-bucket trace exemplars enabled at the given
// threshold. Enabling is idempotent and race-safe against concurrent
// observers; an existing histogram keeps its bounds and its original
// exemplar threshold.
func (r *Registry) HistogramExemplars(name string, bounds []int64, min int64) *Histogram {
	h := r.Histogram(name, bounds)
	h.EnableExemplars(min)
	return h
}

// Snapshot copies every metric's current value. Gauge functions are
// called outside the registry lock so they may take their own locks.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		funcs[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()

	for name, fn := range funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// MarshalIndent renders the snapshot as indented JSON (the STATS RPC
// payload and the /statsz HTTP body).
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
