package stats

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds is a 1 µs .. 5 s exponential ladder in nanoseconds
// — wide enough for an in-memory cache hit at the bottom and a compaction
// pass or a WAN round trip at the top.
var DefaultLatencyBounds = []int64{
	int64(1 * time.Microsecond),
	int64(2 * time.Microsecond),
	int64(5 * time.Microsecond),
	int64(10 * time.Microsecond),
	int64(20 * time.Microsecond),
	int64(50 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(200 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2 * time.Millisecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(20 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(200 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2 * time.Second),
	int64(5 * time.Second),
}

// DefaultSizeBounds is a 64 B .. 64 MB ladder for payload-size
// histograms, matching the paper's 1-byte-to-1-Mbyte sweep with headroom
// up to the transport's payload limit.
var DefaultSizeBounds = []int64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Histogram counts observations into fixed buckets and tracks count, sum,
// min and max. Observations are single atomic adds; percentile summaries
// are computed at snapshot time by linear interpolation inside the
// containing bucket, clamped to the observed min/max. All methods are
// safe for concurrent use; a snapshot taken during concurrent observes is
// internally consistent enough for monitoring (counts may trail sum by a
// few in-flight observations).
//
// A histogram may additionally carry per-bucket trace exemplars (see
// EnableExemplars): each bucket remembers the most recent traced
// observation that landed in it, closing the metrics→trace loop — a p99
// spike in a latency histogram names a trace ID the flight recorder can
// expand into a span tree.
type Histogram struct {
	bounds []int64        // immutable after construction; ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf overflow
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
	ex     atomic.Pointer[exemplarSet] // nil until EnableExemplars
}

// exemplarSet is a histogram's per-bucket exemplar table. min gates
// recording: observations below it never claim a slot, so ultra-hot cheap
// operations cannot thrash the slots that matter (the slow buckets).
type exemplarSet struct {
	min   int64
	slots []exemplarSlot // len(counts): one per bucket, overflow included
}

// exemplarSlot holds one bucket's most recent exemplar under a seqlock:
// seq odd = a writer owns the slot, even = stable. Writers CAS to claim
// and never block; a losing writer simply drops its exemplar (the slot
// already holds a fresher or concurrent one). Readers retry a few times
// and skip the slot rather than spin.
type exemplarSlot struct {
	seq     atomic.Uint64
	traceID atomic.Uint64
	value   atomic.Int64
	at      atomic.Int64 // wall clock, Unix nanoseconds
}

// record stores one exemplar, non-blocking and allocation-free.
func (s *exemplarSlot) record(traceID uint64, v, at int64) {
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		return // a concurrent writer owns the slot; drop this exemplar
	}
	s.traceID.Store(traceID)
	s.value.Store(v)
	s.at.Store(at)
	s.seq.Store(seq + 2)
}

// load returns a consistent copy of the slot (ok false when empty or
// contended past the retry budget).
func (s *exemplarSlot) load() (traceID uint64, v, at int64, ok bool) {
	for try := 0; try < 3; try++ {
		seq := s.seq.Load()
		if seq == 0 {
			return 0, 0, 0, false // never written
		}
		if seq&1 != 0 {
			continue
		}
		traceID, v, at = s.traceID.Load(), s.value.Load(), s.at.Load()
		if s.seq.Load() == seq {
			return traceID, v, at, true
		}
	}
	return 0, 0, 0, false
}

// NewHistogram builds a histogram over ascending upper bounds (nil means
// DefaultLatencyBounds). An observation v lands in the first bucket with
// v <= bounds[i], or in the overflow bucket.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	own := make([]int64, len(bounds))
	copy(own, bounds)
	h := &Histogram{
		bounds: own,
		counts: make([]atomic.Int64, len(own)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) { h.ObserveTraced(v, 0) }

// ObserveDuration records a latency in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// EnableExemplars arms per-bucket exemplar recording: every traced
// observation of at least min lands its trace ID in its bucket's slot
// (most recent wins). Idempotent and safe to race with Observe — the
// table is installed with a single atomic pointer swap and never
// replaced once set, so concurrent observers see either "off" or the
// final table. Memory is fixed: one slot per bucket.
func (h *Histogram) EnableExemplars(min int64) {
	if h.ex.Load() != nil {
		return
	}
	es := &exemplarSet{min: min, slots: make([]exemplarSlot, len(h.counts))}
	h.ex.CompareAndSwap(nil, es)
}

// ObserveTraced records one value carrying the trace ID of the request
// that produced it. With exemplars enabled (and traceID non-zero, v at or
// above the exemplar threshold) the value's bucket remembers the ID as
// its exemplar. Allocation-free either way.
func (h *Histogram) ObserveTraced(v int64, traceID uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	if traceID == 0 {
		return
	}
	if es := h.ex.Load(); es != nil && v >= es.min {
		es.slots[i].record(traceID, v, time.Now().UnixNano())
	}
}

// HistogramSnapshot is the JSON form of a histogram: totals, observed
// extremes, the standard percentile summary, and the raw buckets so a
// consumer can compute any other quantile.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	P999   float64 `json:"p999"`
	Bounds []int64 `json:"bounds,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
	// Exemplars are the per-bucket trace exemplars, ascending by bucket
	// index; present only on histograms with EnableExemplars and only for
	// buckets that have recorded one.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Exemplar names the most recent traced observation in one bucket. The
// trace ID is 16 lowercase hex digits (matching the TRACE RPC's JSON:
// JSON numbers are lossy past 2^53), ready to correlate against the
// flight recorder.
type Exemplar struct {
	Bucket   int    `json:"bucket"` // index into Counts; len(Bounds) = the overflow bucket
	TraceID  string `json:"trace_id"`
	Value    int64  `json:"value"`
	UnixNano int64  `json:"unix_nano"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	s.P50 = quantile(s, 0.50)
	s.P95 = quantile(s, 0.95)
	s.P99 = quantile(s, 0.99)
	s.P999 = quantile(s, 0.999)
	if es := h.ex.Load(); es != nil {
		for i := range es.slots {
			if id, v, at, ok := es.slots[i].load(); ok {
				s.Exemplars = append(s.Exemplars, Exemplar{
					Bucket:   i,
					TraceID:  formatTraceID(id),
					Value:    v,
					UnixNano: at,
				})
			}
		}
	}
	return s
}

// formatTraceID renders a trace ID as 16 lowercase hex digits, the same
// form the TRACE RPC uses.
func formatTraceID(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// Quantile estimates the q-quantile (0 <= q <= 1) from a snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 { return quantile(s, q) }

// quantile walks the cumulative bucket counts to the one containing the
// q-quantile and interpolates linearly within it. The bucket's nominal
// range is tightened by the observed min and max, so a histogram holding
// a single value reports that value at every quantile, and the unbounded
// overflow bucket never extrapolates past the largest observation.
func quantile(s HistogramSnapshot, q float64) float64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := float64(s.Min)
			if i > 0 {
				if b := float64(s.Bounds[i-1]); b > lo {
					lo = b
				}
			}
			hi := float64(s.Max)
			if i < len(s.Bounds) {
				if b := float64(s.Bounds[i]); b < hi {
					hi = b
				}
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return float64(s.Max)
}
