package stats

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds is a 1 µs .. 5 s exponential ladder in nanoseconds
// — wide enough for an in-memory cache hit at the bottom and a compaction
// pass or a WAN round trip at the top.
var DefaultLatencyBounds = []int64{
	int64(1 * time.Microsecond),
	int64(2 * time.Microsecond),
	int64(5 * time.Microsecond),
	int64(10 * time.Microsecond),
	int64(20 * time.Microsecond),
	int64(50 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(200 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2 * time.Millisecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(20 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(200 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2 * time.Second),
	int64(5 * time.Second),
}

// DefaultSizeBounds is a 64 B .. 64 MB ladder for payload-size
// histograms, matching the paper's 1-byte-to-1-Mbyte sweep with headroom
// up to the transport's payload limit.
var DefaultSizeBounds = []int64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Histogram counts observations into fixed buckets and tracks count, sum,
// min and max. Observations are single atomic adds; percentile summaries
// are computed at snapshot time by linear interpolation inside the
// containing bucket, clamped to the observed min/max. All methods are
// safe for concurrent use; a snapshot taken during concurrent observes is
// internally consistent enough for monitoring (counts may trail sum by a
// few in-flight observations).
type Histogram struct {
	bounds []int64        // immutable after construction; ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf overflow
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram builds a histogram over ascending upper bounds (nil means
// DefaultLatencyBounds). An observation v lands in the first bucket with
// v <= bounds[i], or in the overflow bucket.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	own := make([]int64, len(bounds))
	copy(own, bounds)
	h := &Histogram{
		bounds: own,
		counts: make([]atomic.Int64, len(own)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a latency in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// HistogramSnapshot is the JSON form of a histogram: totals, observed
// extremes, the standard percentile summary, and the raw buckets so a
// consumer can compute any other quantile.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	P999   float64 `json:"p999"`
	Bounds []int64 `json:"bounds,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	s.P50 = quantile(s, 0.50)
	s.P95 = quantile(s, 0.95)
	s.P99 = quantile(s, 0.99)
	s.P999 = quantile(s, 0.999)
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from a snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 { return quantile(s, q) }

// quantile walks the cumulative bucket counts to the one containing the
// q-quantile and interpolates linearly within it. The bucket's nominal
// range is tightened by the observed min and max, so a histogram holding
// a single value reports that value at every quantile, and the unbounded
// overflow bucket never extrapolates past the largest observation.
func quantile(s HistogramSnapshot, q float64) float64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := float64(s.Min)
			if i > 0 {
				if b := float64(s.Bounds[i-1]); b > lo {
					lo = b
				}
			}
			hi := float64(s.Max)
			if i < len(s.Bounds) {
				if b := float64(s.Bounds[i]); b < hi {
					hi = b
				}
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return float64(s.Max)
}
