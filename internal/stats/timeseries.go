package stats

import (
	"sync"
	"time"
)

// This file is the streaming half of the stats package: a Collector
// goroutine samples the whole registry on a fixed interval into a ring of
// snapshots, derives rates and windowed histogram summaries between
// consecutive samples, and fans the resulting Updates out to subscribers
// (the WATCH RPC, bulletctl top). Sampling reads only atomics and the
// registry's creation lock — never a hot-path lock — so a busy server
// pays nothing for being watched beyond the counters it already keeps.

// Default collector shape: 128 samples of history at one sample per
// second ≈ two minutes of per-metric time series in fixed memory.
const (
	DefaultRingSize = 128
	DefaultInterval = time.Second
)

// Rate is one counter's movement across one sampling window.
type Rate struct {
	Total  int64   `json:"total"` // cumulative value at the window's end
	Delta  int64   `json:"delta"` // increase across the window
	PerSec float64 `json:"per_sec"`
}

// Window is one histogram's delta across one sampling window: the bucket
// counts of the two samples subtracted, quantiles interpolated from the
// delta alone. Unlike the cumulative snapshot quantiles (which average
// over the process lifetime) these answer "how slow is it RIGHT NOW".
type Window struct {
	Count  int64   `json:"count"` // observations inside the window
	Sum    int64   `json:"sum"`
	PerSec float64 `json:"per_sec"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	P999   float64 `json:"p999"`
	// SlowTrace names the slowest exemplar recorded during (or after the
	// start of) the window — the trace ID to pull from the flight
	// recorder when the window's tail looks wrong. Empty when the
	// histogram carries no exemplars or none is recent enough.
	SlowTrace string `json:"slow_trace,omitempty"`
	SlowNS    int64  `json:"slow_ns,omitempty"`
}

// Update is one collector tick: everything that moved between two
// consecutive samples, plus absolute gauge levels. It is the WATCH RPC's
// frame payload and marshals to stable JSON (map keys sort).
type Update struct {
	Seq        uint64            `json:"seq"`       // 1 for the first derived update
	UnixNano   int64             `json:"unix_nano"` // wall clock at the window's end
	IntervalNS int64             `json:"interval_ns"`
	Counters   map[string]Rate   `json:"counters,omitempty"`
	Gauges     map[string]int64  `json:"gauges,omitempty"`
	Histograms map[string]Window `json:"histograms,omitempty"`
}

// Sample is one raw registry snapshot with its timestamp — one slot of
// the collector's ring.
type Sample struct {
	At   time.Time
	Snap Snapshot
}

// Collector periodically snapshots a Registry into a fixed-size ring and
// derives an Update per tick. One collector goroutine serves any number
// of subscribers; it never blocks on them (a slow subscriber drops
// updates, counted in telemetry.dropped_updates).
type Collector struct {
	reg      *Registry
	interval time.Duration
	size     int

	samples *Counter // telemetry.samples
	drops   *Counter // telemetry.dropped_updates

	mu      sync.Mutex
	ring    []Sample // guarded by mu; ring[next-1 mod size] is the newest
	updates []Update // guarded by mu; parallel ring of derived updates
	next    uint64   // guarded by mu; total samples taken
	derived uint64   // guarded by mu; total updates derived (= seq of newest)
	subs    map[int]chan Update
	subID   int
	closed  bool
	started bool // guarded by mu; whether Start's goroutine owns done

	stop chan struct{}
	done chan struct{}
}

// NewCollector builds a collector over reg. interval <= 0 picks
// DefaultInterval; size <= 0 picks DefaultRingSize. The collector
// registers its own health metrics (telemetry.*) in reg. Call Start to
// begin sampling and Close to stop.
func NewCollector(reg *Registry, interval time.Duration, size int) *Collector {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if size <= 0 {
		size = DefaultRingSize
	}
	c := &Collector{
		reg:      reg,
		interval: interval,
		size:     size,
		ring:     make([]Sample, 0, size),
		updates:  make([]Update, 0, size),
		subs:     make(map[int]chan Update),
		samples:  reg.Counter("telemetry.samples"),
		drops:    reg.Counter("telemetry.dropped_updates"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	reg.Gauge("telemetry.interval_ns").Set(int64(interval))
	reg.GaugeFunc("telemetry.watchers", func() int64 { return int64(c.Watchers()) })
	return c
}

// Interval returns the sampling interval.
func (c *Collector) Interval() time.Duration { return c.interval }

// Start launches the sampling goroutine. The first tick happens one
// interval after Start; updates (which need two samples) begin on the
// second. Start more than once is a bug (the second goroutine would
// double-sample); it is not guarded.
func (c *Collector) Start() {
	c.mu.Lock()
	c.started = true
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		// Take the baseline sample immediately so the first ticked update
		// covers [Start, Start+interval) rather than waiting two intervals.
		c.Tick(time.Now())
		for {
			select {
			case <-c.stop:
				return
			case now := <-ticker.C:
				c.Tick(now)
			}
		}
	}()
}

// Close stops the sampling goroutine and closes every subscriber
// channel; subscribers see their channel close and end their streams.
// Idempotent; safe to call before Start (the goroutine, if any, exits on
// its next tick).
func (c *Collector) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	started := c.started
	for id, ch := range c.subs {
		close(ch)
		delete(c.subs, id)
	}
	c.mu.Unlock()
	close(c.stop)
	// Only a Start()ed collector has a goroutine closing done; a
	// tick-driven one (tests, virtual clock) has nothing to wait for.
	if started {
		<-c.done
	}
}

// Tick takes one sample now: snapshot the registry, derive the update
// against the previous sample, store both in the rings, fan the update
// out. Exposed so tests (and the virtual-clock harness) can drive the
// collector without real time; Start's goroutine calls it on the ticker.
func (c *Collector) Tick(now time.Time) {
	snap := c.reg.Snapshot()
	c.samples.Inc()
	sample := Sample{At: now, Snap: snap}

	c.mu.Lock()
	var prev *Sample
	if c.next > 0 {
		p := c.ringAtLocked(c.next - 1)
		prev = &p
	}
	c.pushSampleLocked(sample)
	var u Update
	var have bool
	if prev != nil {
		u = deriveUpdate(prev, &sample, c.derived+1)
		c.derived++
		c.pushUpdateLocked(u)
		have = true
	}
	// Fan out while still holding mu: the sends are non-blocking (a full
	// subscriber drops the update), and holding the lock means Close can
	// never close a channel with a send in flight.
	if have {
		for _, ch := range c.subs {
			select {
			case ch <- u:
			default:
				c.drops.Inc()
			}
		}
	}
	c.mu.Unlock()
}

// pushSampleLocked appends to the sample ring, overwriting oldest. Caller
// holds mu.
func (c *Collector) pushSampleLocked(s Sample) {
	if len(c.ring) < c.size {
		c.ring = append(c.ring, s)
	} else {
		c.ring[c.next%uint64(c.size)] = s
	}
	c.next++
}

// pushUpdateLocked appends to the update ring, overwriting oldest. Caller
// holds mu.
func (c *Collector) pushUpdateLocked(u Update) {
	if len(c.updates) < c.size {
		c.updates = append(c.updates, u)
	} else {
		c.updates[(c.derived-1)%uint64(c.size)] = u
	}
}

// ringAtLocked returns the i-th sample ever taken (must still be in the ring).
// Caller holds mu.
func (c *Collector) ringAtLocked(i uint64) Sample {
	if len(c.ring) < c.size {
		return c.ring[i]
	}
	return c.ring[i%uint64(c.size)]
}

// Latest returns the newest derived update (ok false before two samples
// exist).
func (c *Collector) Latest() (Update, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.derived == 0 {
		return Update{}, false
	}
	return c.updates[(c.derived-1)%uint64(c.size)], true
}

// History returns up to n most recent updates, oldest first. n <= 0
// means all retained.
func (c *Collector) History(n int) []Update {
	c.mu.Lock()
	defer c.mu.Unlock()
	have := len(c.updates)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Update, 0, n)
	for i := c.derived - uint64(n); i < c.derived; i++ {
		out = append(out, c.updates[i%uint64(c.size)])
	}
	return out
}

// Samples returns up to n most recent raw samples, oldest first — the
// per-metric time series (each metric's ring of periodic snapshots,
// viewed column-wise). n <= 0 means all retained.
func (c *Collector) Samples(n int) []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	have := len(c.ring)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Sample, 0, n)
	for i := c.next - uint64(n); i < c.next; i++ {
		out = append(out, c.ringAtLocked(i))
	}
	return out
}

// Subscription is one subscriber's live update feed. Close it to
// unsubscribe; the collector closes C when it shuts down.
type Subscription struct {
	C  <-chan Update
	id int
	c  *Collector
}

// Subscribe registers a live feed of updates. The channel holds a small
// buffer; a subscriber that falls behind loses updates (counted) rather
// than stalling the collector. On a closed collector the returned
// channel is already closed.
func (c *Collector) Subscribe() *Subscription {
	ch := make(chan Update, 4)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		close(ch)
		return &Subscription{C: ch, id: -1, c: c}
	}
	c.subID++
	id := c.subID
	c.subs[id] = ch
	return &Subscription{C: ch, id: id, c: c}
}

// Close unsubscribes. Idempotent; the channel is closed so a pending
// receive unblocks.
func (s *Subscription) Close() {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if ch, ok := s.c.subs[s.id]; ok {
		close(ch)
		delete(s.c.subs, s.id)
	}
}

// Watchers reports the live subscriber count.
func (c *Collector) Watchers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subs)
}

// deriveUpdate computes the delta view between two consecutive samples.
func deriveUpdate(prev, cur *Sample, seq uint64) Update {
	dt := cur.At.Sub(prev.At)
	if dt <= 0 {
		dt = time.Nanosecond // degenerate clock; keep rates finite
	}
	secs := dt.Seconds()
	u := Update{
		Seq:        seq,
		UnixNano:   cur.At.UnixNano(),
		IntervalNS: int64(dt),
		Counters:   make(map[string]Rate, len(cur.Snap.Counters)),
		Gauges:     cur.Snap.Gauges,
		Histograms: make(map[string]Window, len(cur.Snap.Histograms)),
	}
	for name, total := range cur.Snap.Counters {
		delta := total - prev.Snap.Counters[name] // absent before = 0
		if delta < 0 {
			delta = 0 // a restarted metric source; clamp rather than report negative rates
		}
		u.Counters[name] = Rate{Total: total, Delta: delta, PerSec: float64(delta) / secs}
	}
	for name, hs := range cur.Snap.Histograms {
		u.Histograms[name] = deriveWindow(prev.Snap.Histograms[name], hs, prev.At.UnixNano(), secs)
	}
	return u
}

// deriveWindow subtracts two cumulative histogram snapshots into a
// windowed one. The window's quantiles interpolate over the delta bucket
// counts alone, clamped by the cumulative min/max (the tightest bounds
// known without per-window extremes). sinceNS gates exemplars: only
// those recorded at or after the window's start are "recent".
func deriveWindow(prev, cur HistogramSnapshot, sinceNS int64, secs float64) Window {
	d := HistogramSnapshot{
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
		Min:    cur.Min,
		Max:    cur.Max,
		Bounds: cur.Bounds,
		Counts: make([]int64, len(cur.Counts)),
	}
	for i := range cur.Counts {
		c := cur.Counts[i]
		if i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		if c < 0 {
			c = 0
		}
		d.Counts[i] = c
	}
	if d.Count < 0 {
		d.Count = 0
	}
	w := Window{
		Count:  d.Count,
		Sum:    d.Sum,
		PerSec: float64(d.Count) / secs,
		P50:    d.Quantile(0.50),
		P95:    d.Quantile(0.95),
		P99:    d.Quantile(0.99),
		P999:   d.Quantile(0.999),
	}
	for _, ex := range cur.Exemplars {
		if ex.UnixNano >= sinceNS && ex.Value >= w.SlowNS {
			w.SlowNS = ex.Value
			w.SlowTrace = ex.TraceID
		}
	}
	return w
}
