package stats

import (
	"errors"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"rpc.read.latency_ns":  "bullet_rpc_read_latency_ns",
		"cache.hits":           "bullet_cache_hits",
		"disk-0/free bytes":    "bullet_disk_0_free_bytes",
		"weird..name":          "bullet_weird_name",
		"already_under_scored": "bullet_already_under_scored",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc.read.requests").Add(42)
	r.Gauge("cache.bytes").Set(1024)
	h := r.Histogram("rpc.read.latency_ns", []int64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)

	var b strings.Builder
	if err := r.Snapshot().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE bullet_rpc_read_requests counter\n",
		"bullet_rpc_read_requests_total 42\n",
		"# TYPE bullet_cache_bytes gauge\n",
		"bullet_cache_bytes 1024\n",
		"# TYPE bullet_rpc_read_latency_ns histogram\n",
		`bullet_rpc_read_latency_ns_bucket{le="100"} 1` + "\n",
		`bullet_rpc_read_latency_ns_bucket{le="1000"} 2` + "\n",
		`bullet_rpc_read_latency_ns_bucket{le="+Inf"} 3` + "\n",
		"bullet_rpc_read_latency_ns_sum 5550\n",
		"bullet_rpc_read_latency_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition does not end with # EOF:\n%s", out)
	}
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramExemplars("lat", []int64{100, 1000}, 0)
	h.ObserveTraced(500, 0xdeadbeef)

	var b strings.Builder
	if err := r.Snapshot().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantID := formatTraceID(0xdeadbeef)
	want := `bullet_lat_bucket{le="1000"} 1 # {trace_id="` + wantID + `"} 500 `
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar %q\n%s", want, out)
	}
	// The exemplar timestamp is seconds.nanoseconds.
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "trace_id") {
			line = l
		}
	}
	fields := strings.Fields(line)
	ts := fields[len(fields)-1]
	if !strings.Contains(ts, ".") || len(strings.SplitN(ts, ".", 2)[1]) != 9 {
		t.Fatalf("exemplar timestamp %q not seconds.nanos", ts)
	}
}

func TestWriteOpenMetricsDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(n).Inc()
	}
	var b1, b2 strings.Builder
	snap := r.Snapshot()
	if err := snap.WriteOpenMetrics(&b1); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteOpenMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("two renderings of one snapshot differ")
	}
	first := strings.Index(b1.String(), "bullet_a_first")
	last := strings.Index(b1.String(), "bullet_z_last")
	if first < 0 || last < 0 || first > last {
		t.Fatal("counter families not in sorted order")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errShortPipe
	}
	return len(p), nil
}

var errShortPipe = errors.New("pipe closed")

func TestWriteOpenMetricsPropagatesWriteError(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("b").Inc()
	if err := r.Snapshot().WriteOpenMetrics(&failWriter{}); err != errShortPipe {
		t.Fatalf("err = %v, want %v", err, errShortPipe)
	}
}
