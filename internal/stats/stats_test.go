package stats

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistryIdempotentCreation(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter(x) returned two different counters")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("Gauge(y) returned two different gauges")
	}
	if r.Histogram("h", nil) != r.Histogram("h", DefaultSizeBounds) {
		t.Fatal("Histogram(h) returned two different histograms")
	}
}

// TestConcurrentUpdates hammers every metric kind from many goroutines;
// run under -race this is the data-race check, and the totals prove no
// increment was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 10000
	c := r.Counter("ops")
	g := r.Gauge("depth")
	h := r.Histogram("lat", nil)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed + int64(j)%7)
			}
		}(int64(i))
	}
	done := make(chan Snapshot, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		done <- r.Snapshot() // snapshot concurrently with updates
	}()
	wg.Wait()
	<-done

	if got := c.Load(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Load(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	hs := h.Snapshot()
	if hs.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", hs.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, n := range hs.Counts {
		bucketSum += n
	}
	if bucketSum != hs.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, hs.Count)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(3)
	r.GaugeFunc("live", func() int64 { return v })
	if got := r.Snapshot().Gauges["live"]; got != 3 {
		t.Fatalf("gauge func = %d, want 3", got)
	}
	v = 9
	if got := r.Snapshot().Gauges["live"]; got != 9 {
		t.Fatalf("gauge func after update = %d, want 9", got)
	}
	// Re-registering replaces the function.
	r.GaugeFunc("live", func() int64 { return -1 })
	if got := r.Snapshot().Gauges["live"]; got != -1 {
		t.Fatalf("replaced gauge func = %d, want -1", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("bullet.creates").Add(7)
	r.Gauge("cache.resident_bytes").Set(4096)
	h := r.Histogram("rpc.read.latency_ns", nil)
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 30 * time.Millisecond} {
		h.ObserveDuration(d)
	}
	snap := r.Snapshot()

	body, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip mismatch:\n  out: %+v\n  in:  %+v", snap, back)
	}
	if back.Counters["bullet.creates"] != 7 {
		t.Errorf("counter lost in round trip: %+v", back.Counters)
	}
	if back.Histograms["rpc.read.latency_ns"].Count != 3 {
		t.Errorf("histogram lost in round trip: %+v", back.Histograms)
	}
}

func TestSnapshotMarshalIndentStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	one, err := r.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	two, err := r.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(one) != string(two) {
		t.Fatalf("snapshot JSON unstable:\n%s\nvs\n%s", one, two)
	}
}
