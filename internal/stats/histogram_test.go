package stats

import (
	"math"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty histogram totals = %+v, want zeros", s)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty q%.2f = %v, want 0", q, got)
		}
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	want := float64(3 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != want {
			t.Errorf("single-value q%.2f = %v, want %v", q, got, want)
		}
	}
	if s.Min != int64(want) || s.Max != int64(want) {
		t.Errorf("min/max = %d/%d, want %v", s.Min, s.Max, want)
	}
}

func TestHistogramUniformPercentiles(t *testing.T) {
	// 1..1000 into tight buckets: percentiles should land near the rank.
	bounds := make([]int64, 100)
	for i := range bounds {
		bounds[i] = int64((i + 1) * 10)
	}
	h := NewHistogram(bounds)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > 10 {
			t.Errorf("q%.2f = %v, want ~%v (±10)", tc.q, got, tc.want)
		}
	}
	if s.P50 != s.Quantile(0.5) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Error("snapshot percentile fields disagree with Quantile")
	}
}

func TestHistogramOverflowBucketClampsToMax(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	h.Observe(5000) // overflow bucket, no upper bound
	h.Observe(7000)
	s := h.Snapshot()
	if got := s.Quantile(0.99); got > 7000 {
		t.Errorf("q99 = %v extrapolated past observed max 7000", got)
	}
	if got := s.Quantile(0); got < 5000 {
		t.Errorf("q0 = %v below observed min 5000", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	h.Observe(10)  // on the bound: first bucket (v <= bound)
	h.Observe(11)  // second bucket
	h.Observe(100) // second bucket
	h.Observe(101) // overflow
	s := h.Snapshot()
	want := []int64{1, 2, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 4 || s.Sum != 10+11+100+101 {
		t.Errorf("count/sum = %d/%d, want 4/%d", s.Count, s.Sum, 10+11+100+101)
	}
}

// TestHistogramBoundsAreInclusiveUpper pins the bucket convention across
// the whole default latency ladder: an observation exactly equal to
// bounds[i] lands in bucket i, never i+1. The convention is load-bearing
// for benchcheck's regression gate — an off-by-one at the boundary would
// shift exact-bound latencies one bucket up and inflate every reported
// percentile. (Boundary audit: Observe's `v > bounds[i]` walk is the
// correct inclusive-upper form; this test exists so a future "cleanup"
// to `>=` fails loudly.)
func TestHistogramBoundsAreInclusiveUpper(t *testing.T) {
	h := NewHistogram(nil)
	for _, b := range DefaultLatencyBounds {
		h.Observe(b)
	}
	s := h.Snapshot()
	for i, b := range DefaultLatencyBounds {
		if s.Counts[i] != 1 {
			t.Errorf("bound %d (bucket %d) holds %d observations, want exactly 1", b, i, s.Counts[i])
		}
	}
	if over := s.Counts[len(DefaultLatencyBounds)]; over != 0 {
		t.Errorf("overflow bucket holds %d observations, want 0 (no bound value may spill over)", over)
	}
}

// TestHistogramQuantileAtBucketBoundary: when every observation sits
// exactly on a bucket's upper bound, all quantiles must report that
// bound — the bucket range is tightened by the observed min/max, so the
// estimate cannot drift below the boundary or into the next bucket.
func TestHistogramQuantileAtBucketBoundary(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	s := h.Snapshot()
	if s.Counts[1] != 100 {
		t.Fatalf("buckets = %v, want all 100 observations in bucket 1 (bound 100)", s.Counts)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 100 {
			t.Errorf("q%.2f = %v, want exactly 100 (all mass at the bucket boundary)", q, got)
		}
	}
}

func TestHistogramQuantileRangeClamped(t *testing.T) {
	h := NewHistogram([]int64{10})
	h.Observe(4)
	h.Observe(6)
	s := h.Snapshot()
	if got := s.Quantile(-1); got < 4 {
		t.Errorf("q<0 = %v, want clamped to >= min", got)
	}
	if got := s.Quantile(2); got > 6 {
		t.Errorf("q>1 = %v, want clamped to <= max", got)
	}
}

func TestHistogramNegativeValues(t *testing.T) {
	// Durations can never be negative, but byte deltas could be; the
	// histogram must not corrupt its totals.
	h := NewHistogram([]int64{0, 10})
	h.Observe(-5)
	h.Observe(5)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 0 {
		t.Fatalf("count/sum = %d/%d, want 2/0", s.Count, s.Sum)
	}
	if s.Min != -5 || s.Max != 5 {
		t.Fatalf("min/max = %d/%d, want -5/5", s.Min, s.Max)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 {
		t.Fatalf("buckets = %v, want [1 1 0]", s.Counts)
	}
}

func TestExemplarRecording(t *testing.T) {
	h := NewHistogram([]int64{100, 1000})
	h.ObserveTraced(50, 0x1) // before enabling: dropped silently
	h.EnableExemplars(0)
	h.EnableExemplars(999) // idempotent; first threshold wins
	h.ObserveTraced(50, 0x2)
	h.ObserveTraced(500, 0x3)
	h.ObserveTraced(5000, 0x4)
	h.ObserveTraced(60, 0x5) // same bucket as 0x2: most recent wins
	h.ObserveTraced(70, 0)   // untraced: never claims a slot
	s := h.Snapshot()
	if len(s.Exemplars) != 3 {
		t.Fatalf("exemplars = %+v, want 3 buckets", s.Exemplars)
	}
	byBucket := map[int]Exemplar{}
	for _, e := range s.Exemplars {
		byBucket[e.Bucket] = e
	}
	if e := byBucket[0]; e.TraceID != formatTraceID(0x5) || e.Value != 60 {
		t.Fatalf("bucket 0 exemplar = %+v, want trace 5 value 60", e)
	}
	if e := byBucket[1]; e.TraceID != formatTraceID(0x3) || e.Value != 500 {
		t.Fatalf("bucket 1 exemplar = %+v, want trace 3 value 500", e)
	}
	if e := byBucket[2]; e.TraceID != formatTraceID(0x4) || e.Value != 5000 {
		t.Fatalf("overflow exemplar = %+v, want trace 4 value 5000", e)
	}
	if byBucket[0].UnixNano == 0 {
		t.Fatal("exemplar missing wall-clock timestamp")
	}
}

func TestExemplarThreshold(t *testing.T) {
	h := NewHistogram([]int64{100, 1000})
	h.EnableExemplars(400)
	h.ObserveTraced(50, 0x1)  // below threshold: counted but no exemplar
	h.ObserveTraced(500, 0x2) // at/above threshold
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if len(s.Exemplars) != 1 || s.Exemplars[0].Bucket != 1 {
		t.Fatalf("exemplars = %+v, want only bucket 1", s.Exemplars)
	}
}

func TestFormatTraceID(t *testing.T) {
	if got := formatTraceID(0xdeadbeef); got != "00000000deadbeef" {
		t.Fatalf("formatTraceID = %q", got)
	}
	if got := formatTraceID(0); got != "0000000000000000" {
		t.Fatalf("formatTraceID(0) = %q", got)
	}
}

// TestObserveTracedAllocFree is part of the zero-alloc acceptance: the
// hot path must not allocate even with exemplars armed and recording.
func TestObserveTracedAllocFree(t *testing.T) {
	h := NewHistogram(nil)
	h.EnableExemplars(0)
	allocs := testing.AllocsPerRun(1000, func() {
		h.ObserveTraced(int64(3*time.Microsecond), 0xabcdef)
	})
	if allocs != 0 {
		t.Fatalf("ObserveTraced allocates %v per call, want 0", allocs)
	}
}
