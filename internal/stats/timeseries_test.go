package stats

import (
	"sync"
	"testing"
	"time"
)

// tickAt drives a collector with a fabricated clock so rate math is
// exact and deterministic.
func tickAt(c *Collector, base time.Time, offset time.Duration) {
	c.Tick(base.Add(offset))
}

func TestCollectorDerivesRates(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("ops")
	depth := r.Gauge("depth")
	c := NewCollector(r, time.Hour, 8) // never ticks on its own
	base := time.Unix(1_700_000_000, 0)

	ops.Add(10)
	depth.Set(3)
	tickAt(c, base, 0) // baseline
	if _, ok := c.Latest(); ok {
		t.Fatal("Latest reported an update after a single sample")
	}

	ops.Add(20)
	depth.Set(5)
	tickAt(c, base, 2*time.Second)
	u, ok := c.Latest()
	if !ok {
		t.Fatal("no update after two samples")
	}
	if u.Seq != 1 {
		t.Fatalf("seq = %d, want 1", u.Seq)
	}
	if u.IntervalNS != int64(2*time.Second) {
		t.Fatalf("interval = %d, want 2s", u.IntervalNS)
	}
	got := u.Counters["ops"]
	if got.Total != 30 || got.Delta != 20 || got.PerSec != 10 {
		t.Fatalf("ops rate = %+v, want total 30 delta 20 per_sec 10", got)
	}
	if u.Gauges["depth"] != 5 {
		t.Fatalf("depth gauge = %d, want 5", u.Gauges["depth"])
	}
	// The collector's own health metrics ride in the same registry.
	if u.Counters["telemetry.samples"].Total == 0 {
		t.Fatal("telemetry.samples missing from update")
	}
}

func TestCollectorWindowQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	c := NewCollector(r, time.Hour, 8)
	base := time.Unix(1_700_000_000, 0)

	// First window: a slow population that must NOT leak into the second.
	for i := 0; i < 100; i++ {
		h.Observe(int64(400 * time.Millisecond))
	}
	tickAt(c, base, 0)
	tickAt(c, base, time.Second)
	u, _ := c.Latest()
	w := u.Histograms["lat"]
	if w.Count != 0 {
		// Baseline tick already saw the slow population; window 1 is empty.
		t.Fatalf("window 1 count = %d, want 0", w.Count)
	}

	// Second window: fast ops only. Windowed p99 must reflect the fast
	// population even though the cumulative histogram is dominated by the
	// slow one.
	for i := 0; i < 1000; i++ {
		h.Observe(int64(30 * time.Microsecond))
	}
	tickAt(c, base, 2*time.Second)
	u, _ = c.Latest()
	w = u.Histograms["lat"]
	if w.Count != 1000 {
		t.Fatalf("window 2 count = %d, want 1000", w.Count)
	}
	if w.PerSec != 1000 {
		t.Fatalf("window 2 per_sec = %v, want 1000", w.PerSec)
	}
	if w.P99 > float64(100*time.Microsecond) {
		t.Fatalf("windowed p99 = %v ns, want <= 100µs (cumulative leaked in)", w.P99)
	}
	// 100 of 1100 cumulative observations are 400ms, so the cumulative
	// p95 still sits in the slow tail — the contrast the window removes.
	cumulative := h.Snapshot()
	if cumulative.P95 < float64(time.Millisecond) {
		t.Fatalf("cumulative p95 = %v, expected slow-dominated tail", cumulative.P95)
	}
}

func TestCollectorRingWraparound(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("ops")
	c := NewCollector(r, time.Hour, 4)
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i <= 10; i++ {
		ops.Add(1)
		tickAt(c, base, time.Duration(i)*time.Second)
	}
	hist := c.History(0)
	if len(hist) != 4 {
		t.Fatalf("history length = %d, want ring size 4", len(hist))
	}
	for i, u := range hist {
		want := uint64(7 + i) // updates 1..10 total; ring keeps 7,8,9,10
		if u.Seq != want {
			t.Fatalf("history[%d].Seq = %d, want %d", i, u.Seq, want)
		}
	}
	samples := c.Samples(2)
	if len(samples) != 2 {
		t.Fatalf("samples length = %d, want 2", len(samples))
	}
	if !samples[1].At.After(samples[0].At) {
		t.Fatal("samples not in oldest-first order")
	}
}

func TestCollectorSubscribeAndDrop(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("ops")
	c := NewCollector(r, time.Hour, 8)
	base := time.Unix(1_700_000_000, 0)
	tickAt(c, base, 0)

	sub := c.Subscribe()
	if got := c.Watchers(); got != 1 {
		t.Fatalf("watchers = %d, want 1", got)
	}
	ops.Add(5)
	tickAt(c, base, time.Second)
	select {
	case u := <-sub.C:
		if u.Counters["ops"].Delta != 5 {
			t.Fatalf("subscriber update delta = %d, want 5", u.Counters["ops"].Delta)
		}
	default:
		t.Fatal("no update delivered to subscriber")
	}

	// Fill the buffer past capacity without draining: overflow must be
	// dropped (never block the collector) and counted.
	for i := 0; i < 10; i++ {
		tickAt(c, base, time.Duration(2+i)*time.Second)
	}
	if got := r.Counter("telemetry.dropped_updates").Load(); got == 0 {
		t.Fatal("expected dropped updates with a stalled subscriber")
	}

	sub.Close()
	sub.Close() // idempotent
	if got := c.Watchers(); got != 0 {
		t.Fatalf("watchers after close = %d, want 0", got)
	}
	if _, open := <-sub.C; open {
		// Drain buffered updates until close.
		for range sub.C {
		}
	}
}

func TestCollectorCloseClosesSubscribers(t *testing.T) {
	r := NewRegistry()
	c := NewCollector(r, time.Hour, 8)
	c.Start()
	sub := c.Subscribe()
	c.Close()
	c.Close() // idempotent
	for range sub.C {
		// Drain whatever was buffered; the loop must terminate because
		// Close closed the channel.
	}
	// Subscribing after close yields an already-closed channel.
	late := c.Subscribe()
	if _, open := <-late.C; open {
		t.Fatal("subscription on a closed collector delivered an update")
	}
	late.Close()
}

// TestCollectorConcurrentWithHotPath races the collector's sampling loop
// against hot-path metric updates and a churning subscriber; under -race
// this is the telemetry data-race check (satellite d).
func TestCollectorConcurrentWithHotPath(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("ops")
	depth := r.Gauge("depth")
	h := r.HistogramExemplars("lat", nil, 0)
	c := NewCollector(r, 100*time.Microsecond, 16)
	c.Start()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ops.Inc()
				depth.Set(int64(i))
				h.ObserveTraced(int64(i%1000+1), uint64(g*1_000_000+i+1))
			}
		}(g)
	}
	// A subscriber that consumes concurrently with fanout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub := c.Subscribe()
		defer sub.Close()
		n := 0
		for range sub.C {
			n++
			if n >= 20 {
				return
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	c.Close()
	if got := r.Counter("telemetry.samples").Load(); got < 2 {
		t.Fatalf("collector took %d samples, want >= 2", got)
	}
	u, ok := c.Latest()
	if !ok {
		t.Fatal("no update derived during concurrent run")
	}
	if u.Counters["ops"].Total == 0 {
		t.Fatal("ops counter missing from final update")
	}
}

func TestDeriveWindowSlowTrace(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramExemplars("lat", nil, 0)
	c := NewCollector(r, time.Hour, 8)
	// Baseline in the past so the exemplar's wall-clock (real now) is
	// inside the window.
	base := time.Now().Add(-time.Minute)
	tickAt(c, base, 0)
	h.ObserveTraced(int64(70*time.Millisecond), 0xabc)
	h.ObserveTraced(int64(9*time.Millisecond), 0xdef)
	tickAt(c, base, 30*time.Second)
	u, _ := c.Latest()
	w := u.Histograms["lat"]
	if w.SlowTrace != formatTraceID(0xabc) {
		t.Fatalf("slow trace = %q, want %q", w.SlowTrace, formatTraceID(0xabc))
	}
	if w.SlowNS != int64(70*time.Millisecond) {
		t.Fatalf("slow ns = %d, want 70ms", w.SlowNS)
	}

	// A window that STARTS after the exemplar was recorded must not name
	// it again: both samples in the future, so sinceNS postdates the
	// exemplar's wall clock.
	future := time.Now().Add(time.Hour)
	tickAt(c, future, 0)
	tickAt(c, future, time.Second)
	u, _ = c.Latest()
	if got := u.Histograms["lat"].SlowTrace; got != "" {
		t.Fatalf("stale exemplar leaked into later window: %q", got)
	}
}

func TestCollectorStartTicksOnItsOwn(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("ops")
	c := NewCollector(r, time.Millisecond, 8)
	sub := c.Subscribe()
	c.Start()
	defer c.Close()
	ops.Add(7)
	select {
	case u, open := <-sub.C:
		if !open {
			t.Fatal("subscription closed before any update")
		}
		if u.Seq == 0 {
			t.Fatal("update with zero seq")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no update within 5s from a 1ms collector")
	}
	sub.Close()
}
