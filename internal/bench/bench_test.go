package bench

import (
	"strings"
	"testing"
	"time"

	"bulletfs/internal/hwmodel"
)

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		1:       "1 byte",
		16:      "16 bytes",
		256:     "256 bytes",
		4096:    "4 Kbytes",
		65536:   "64 Kbytes",
		1 << 20: "1 Mbyte",
	}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		Title:   "T",
		Unit:    "msec",
		Columns: []string{"A", "B"},
		Rows:    []RowT{{Label: "1 byte", Values: []float64{1.5, 2.25}}},
	}
	out := tab.Format()
	for _, want := range []string{"T (msec)", "A", "B", "1 byte", "1.50", "2.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}

func TestCheckFormat(t *testing.T) {
	ok := Check{ID: "X", Claim: "c", Detail: "d", Pass: true}
	if !strings.HasPrefix(ok.Format(), "[PASS]") {
		t.Errorf("Format = %q", ok.Format())
	}
	bad := Check{ID: "X", Claim: "c", Detail: "d"}
	if !strings.HasPrefix(bad.Format(), "[FAIL]") {
		t.Errorf("Format = %q", bad.Format())
	}
}

func TestMeasureUsesVirtualClock(t *testing.T) {
	clock := &hwmodel.Clock{}
	d, err := Measure(clock, func() error {
		clock.Advance(42 * time.Millisecond)
		return nil
	})
	if err != nil || d != 42*time.Millisecond {
		t.Fatalf("Measure = %v, %v", d, err)
	}
}

func TestBulletWorldBasics(t *testing.T) {
	w, err := NewBulletWorld(BulletConfig{Profile: hwmodel.AmoebaProfile()})
	if err != nil {
		t.Fatalf("NewBulletWorld: %v", err)
	}
	c, err := w.Client.Create(w.Port, []byte("hello"), 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := w.Client.Read(c)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if w.Clock.Now() == 0 {
		t.Fatal("operations cost no virtual time")
	}
}

func TestNFSWorldChurn(t *testing.T) {
	w, err := NewNFSWorld(NFSConfig{Profile: hwmodel.SunNFSProfile(), Residency: 30 * time.Second})
	if err != nil {
		t.Fatalf("NewNFSWorld: %v", err)
	}
	root, err := w.Client.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if _, err := w.Client.CreateWrite(root, "f", pattern(64<<10)); err != nil {
		t.Fatalf("CreateWrite: %v", err)
	}
	if w.Server.CachedBlocks() == 0 {
		t.Fatal("write-through did not populate the cache")
	}
	// Fast churn call: within the window, nothing evicted.
	w.Churn()
	if w.Server.CachedBlocks() == 0 {
		t.Fatal("in-window churn evicted the cache")
	}
	// Now exceed the window.
	w.Clock.Advance(31 * time.Second)
	w.Churn()
	if w.Server.CachedBlocks() != 0 {
		t.Fatalf("out-of-window churn left %d blocks", w.Server.CachedBlocks())
	}
}

func TestNFSWorldChurnDisabled(t *testing.T) {
	w, err := NewNFSWorld(NFSConfig{Profile: hwmodel.SunNFSProfile(), Residency: -1})
	if err != nil {
		t.Fatalf("NewNFSWorld: %v", err)
	}
	root, err := w.Client.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if _, err := w.Client.CreateWrite(root, "f", pattern(8192)); err != nil {
		t.Fatalf("CreateWrite: %v", err)
	}
	w.Clock.Advance(time.Hour)
	w.Churn()
	if w.Server.CachedBlocks() == 0 {
		t.Fatal("disabled churn still evicted")
	}
}

// TestPaperShapeHolds is the headline regression test: the full Fig. 2 /
// Fig. 3 regeneration must keep reproducing the paper's comparison claims.
func TestPaperShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	f2, err := RunF2()
	if err != nil {
		t.Fatalf("RunF2: %v", err)
	}
	f3, err := RunF3()
	if err != nil {
		t.Fatalf("RunF3: %v", err)
	}
	cmp := RunCompare(f2, f3)
	for _, c := range cmp.Checks {
		if !c.Pass {
			t.Errorf("%s", c.Format())
		}
	}

	// Structural sanity of the tables themselves.
	if len(f2.Delay.Rows) != len(PaperSizes) || len(f3.Delay.Rows) != len(PaperSizes) {
		t.Fatal("tables missing rows")
	}
	// Delay must grow with size within each column.
	for i := 1; i < len(f2.Delay.Rows); i++ {
		if f2.Delay.Rows[i].Values[0] < f2.Delay.Rows[i-1].Values[0] {
			t.Errorf("Bullet read delay not monotonic at %s", f2.Delay.Rows[i].Label)
		}
	}
	// Bullet large reads approach (but cannot exceed) the 10 Mbit wire.
	bw1MB := kbps(1<<20, f2.ReadDelay[1<<20])
	if bw1MB < 400 || bw1MB > 1250 {
		t.Errorf("Bullet 1 MB read bandwidth %.0f KB/s outside the 10 Mbit/s regime", bw1MB)
	}
}

func TestPFactorShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tab, err := RunPFactor()
	if err != nil {
		t.Fatalf("RunPFactor: %v", err)
	}
	for _, c := range PFactorChecks(tab) {
		if !c.Pass {
			t.Errorf("%s", c.Format())
		}
	}
}

func TestFragmentationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	_, checks, err := RunFragmentation()
	if err != nil {
		t.Fatalf("RunFragmentation: %v", err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s", c.Format())
		}
	}
}

func TestCacheExpShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	_, checks, err := RunCacheExp()
	if err != nil {
		t.Fatalf("RunCacheExp: %v", err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s", c.Format())
		}
	}
}

func TestTraceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tab, checks, err := RunTrace()
	if err != nil {
		t.Fatalf("RunTrace: %v", err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s", c.Format())
		}
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestWANShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	_, checks, err := RunWAN()
	if err != nil {
		t.Fatalf("RunWAN: %v", err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s", c.Format())
		}
	}
}

func TestParallelExpShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tab, checks, err := RunParallelExp()
	if err != nil {
		t.Fatalf("RunParallelExp: %v", err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s", c.Format())
		}
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
}

func TestModernShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	_, checks, err := RunModern()
	if err != nil {
		t.Fatalf("RunModern: %v", err)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s", c.Format())
		}
	}
}

func TestAblationBulletWinsOnSameHardware(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tab, err := RunAblation()
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	// At 64 KB and 1 MB, the contiguous whole-file design must beat the
	// block design on identical hardware, in both columns.
	for _, r := range tab.Rows[4:] {
		bulletRead, blockRead := r.Values[0], r.Values[1]
		bulletCre, blockCre := r.Values[2], r.Values[3]
		if bulletRead >= blockRead {
			t.Errorf("%s: bullet read %.1f ms not faster than block read %.1f ms",
				r.Label, bulletRead, blockRead)
		}
		if bulletCre >= blockCre {
			t.Errorf("%s: bullet create %.1f ms not faster than block create %.1f ms",
				r.Label, bulletCre, blockCre)
		}
	}
}
