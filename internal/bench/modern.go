package bench

import (
	"fmt"

	"bulletfs/internal/hwmodel"
)

// RunModern is the what-if experiment DESIGN.md's hardware model set up:
// the paper's two designs re-run on commodity 2020s hardware (NVMe
// latencies, gigabit Ethernet). It quantifies how much of the Bullet
// advantage was 1989 disk physics (seek+rotation per block) and how much
// is structural (one RPC and one positioning per file): on SSDs the read
// gap collapses to protocol overhead, while whole-file creates keep a
// clear structural win — which is why today's object stores still look
// like Bullet.
func RunModern() (*Table, []Check, error) {
	profile := hwmodel.ModernProfile()

	bw, err := NewBulletWorld(BulletConfig{Profile: profile})
	if err != nil {
		return nil, nil, err
	}
	nw, err := NewNFSWorld(NFSConfig{
		Profile:     profile,
		AllocStride: 1,  // fresh filesystem
		Residency:   -1, // dedicated server
	})
	if err != nil {
		return nil, nil, err
	}
	root, err := nw.Client.Root()
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:   "What-if: both designs on modern hardware (NVMe, 1 GbE; delay)",
		Unit:    "msec",
		Columns: []string{"BULLET-READ", "BLOCK-READ", "BULLET-CRE", "BLOCK-CRE"},
	}
	type point struct{ bRead, nRead, bCre, nCre float64 }
	var last point
	for si, size := range PaperSizes {
		data := pattern(size)
		cap0, err := bw.Client.Create(bw.Port, data, 2)
		if err != nil {
			return nil, nil, err
		}
		bRead, err := Measure(bw.Clock, func() error {
			if _, err := bw.Client.Size(cap0); err != nil {
				return err
			}
			_, err := bw.Client.Read(cap0)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		bCre, err := Measure(bw.Clock, func() error {
			c, err := bw.Client.Create(bw.Port, data, 2)
			if err != nil {
				return err
			}
			return bw.Client.Delete(c)
		})
		if err != nil {
			return nil, nil, err
		}
		if err := bw.Client.Delete(cap0); err != nil {
			return nil, nil, err
		}

		name := fmt.Sprintf("m-%d", si)
		h, err := nw.Client.CreateWrite(root, name, data)
		if err != nil {
			return nil, nil, err
		}
		if _, err := nw.Client.ReadAll(h); err != nil { // warm
			return nil, nil, err
		}
		nRead, err := Measure(nw.Clock, func() error {
			_, err := nw.Client.ReadAll(h)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		nCre, err := Measure(nw.Clock, func() error {
			_, err := nw.Client.CreateWrite(root, name+"x", data)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		if err := nw.Client.Remove(root, name+"x"); err != nil {
			return nil, nil, err
		}

		last = point{msec(bRead), msec(nRead), msec(bCre), msec(nCre)}
		t.Rows = append(t.Rows, RowT{
			Label:  SizeLabel(size),
			Values: []float64{last.bRead, last.nRead, last.bCre, last.nCre},
		})
	}

	checks := []Check{
		{
			ID:    "M1",
			Claim: "whole-file transfer still wins at 1 MB on modern hardware",
			Detail: fmt.Sprintf("read %.2f vs %.2f ms, create %.2f vs %.2f ms",
				last.bRead, last.nRead, last.bCre, last.nCre),
			Pass: last.bRead < last.nRead && last.bCre < last.nCre,
		},
		{
			ID:    "M2",
			Claim: "the 1989 gap was mostly disk physics: it narrows on SSDs",
			Detail: fmt.Sprintf("1 MB create gap %.1fx on SSDs (5-6x on 1989 disks)",
				last.nCre/last.bCre),
			Pass: last.nCre/last.bCre < 5,
		},
	}
	return t, checks, nil
}
