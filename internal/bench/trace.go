package bench

import (
	"fmt"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/hwmodel"
	"bulletfs/internal/nfs"
	"bulletfs/internal/workload"
)

// RunTrace replays a synthetic UNIX-like trace — file sizes fitted to the
// paper's §1 statistics (median 1 KB, 99% under 64 KB), 75% whole-file
// reads per §2 — against both servers on 1989 hardware. Where Figs. 2/3
// sweep one size at a time, this measures the *mixture* the design was
// actually aimed at, and reports mean operation latency and the byte-
// weighted throughput of each server.
func RunTrace() (*Table, []Check, error) {
	gen := workload.New(workload.Config{Seed: 1989, Files: 120})
	population := gen.Population()
	stats := workload.Summarize(population)
	const ops = 400
	trace := gen.Trace(ops)

	bw, err := NewBulletWorld(BulletConfig{Profile: hwmodel.AmoebaProfile()})
	if err != nil {
		return nil, nil, err
	}
	nw, err := NewNFSWorld(NFSConfig{Profile: hwmodel.SunNFSProfile()})
	if err != nil {
		return nil, nil, err
	}
	root, err := nw.Client.Root()
	if err != nil {
		return nil, nil, err
	}

	// Seed both servers with the same population.
	bCaps := make([]capability.Capability, len(population))
	nNames := make([]string, len(population))
	nHandles := make([]nfs.Handle, len(population))
	sizes := make([]int, len(population))
	copy(sizes, population)
	for i, size := range population {
		data := pattern(size)
		c, err := bw.Client.Create(bw.Port, data, 2)
		if err != nil {
			return nil, nil, fmt.Errorf("bench trace: seeding bullet: %w", err)
		}
		bCaps[i] = c
		name := fmt.Sprintf("t%d", i)
		h, err := nw.Client.CreateWrite(root, name, data)
		if err != nil {
			return nil, nil, fmt.Errorf("bench trace: seeding nfs: %w", err)
		}
		nNames[i], nHandles[i] = name, h
	}
	nw.Churn()

	// Replay. Deleted slots are re-created on demand so both servers see
	// identical logical operations.
	var bTotal, nTotal time.Duration
	var bytesMoved int64
	live := make([]bool, len(population))
	for i := range live {
		live[i] = true
	}
	executed := 0
	for _, ev := range trace {
		i := ev.File
		if !live[i] && ev.Op != workload.OpCreate {
			continue // skip ops on currently-deleted files
		}
		switch ev.Op {
		case workload.OpWholeRead:
			bytesMoved += int64(sizes[i])
			d, err := Measure(bw.Clock, func() error {
				if _, err := bw.Client.Size(bCaps[i]); err != nil {
					return err
				}
				_, err := bw.Client.Read(bCaps[i])
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			bTotal += d
			d, err = Measure(nw.Clock, func() error {
				_, err := nw.Client.ReadAll(nHandles[i])
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			nTotal += d
			nw.Churn()

		case workload.OpPartRead:
			n := ev.N
			if n > int64(sizes[i]) {
				n = int64(sizes[i])
			}
			bytesMoved += n
			d, err := Measure(bw.Clock, func() error {
				_, err := bw.Client.ReadRange(bCaps[i], 0, n)
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			bTotal += d
			d, err = Measure(nw.Clock, func() error {
				_, err := nw.Client.ReadBlock(nHandles[i], 0, int(n))
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			nTotal += d
			nw.Churn()

		case workload.OpCreate:
			// Replace slot i with a fresh file of the drawn size.
			data := pattern(ev.Size)
			bytesMoved += int64(ev.Size)
			d, err := Measure(bw.Clock, func() error {
				if live[i] {
					if err := bw.Client.Delete(bCaps[i]); err != nil {
						return err
					}
				}
				c, err := bw.Client.Create(bw.Port, data, 2)
				if err != nil {
					return err
				}
				bCaps[i] = c
				return nil
			})
			if err != nil {
				return nil, nil, err
			}
			bTotal += d
			d, err = Measure(nw.Clock, func() error {
				if live[i] {
					if err := nw.Client.Remove(root, nNames[i]); err != nil {
						return err
					}
				}
				h, err := nw.Client.CreateWrite(root, nNames[i], data)
				if err != nil {
					return err
				}
				nHandles[i] = h
				return nil
			})
			if err != nil {
				return nil, nil, err
			}
			nTotal += d
			nw.Churn()
			sizes[i] = ev.Size
			live[i] = true

		case workload.OpDelete:
			d, err := Measure(bw.Clock, func() error { return bw.Client.Delete(bCaps[i]) })
			if err != nil {
				return nil, nil, err
			}
			bTotal += d
			d, err = Measure(nw.Clock, func() error { return nw.Client.Remove(root, nNames[i]) })
			if err != nil {
				return nil, nil, err
			}
			nTotal += d
			nw.Churn()
			live[i] = false
		}
		executed++
	}

	bMean := bTotal / time.Duration(executed)
	nMean := nTotal / time.Duration(executed)
	t := &Table{
		Title: fmt.Sprintf("Trace replay: %d ops over %d files (median %d B, p99 %d B, %.0f%% < 64 KB)",
			executed, len(population), stats.Median, stats.P99, 100*stats.Under64),
		Unit:    "msec",
		Columns: []string{"BULLET", "NFS"},
		Rows: []RowT{
			{Label: "mean op", Values: []float64{msec(bMean), msec(nMean)}},
			{Label: "total", Values: []float64{msec(bTotal), msec(nTotal)}},
		},
	}
	checks := []Check{{
		ID:    "T1",
		Claim: "under the paper's own workload mixture, Bullet wins clearly",
		Detail: fmt.Sprintf("mean op %.1f ms vs %.1f ms (%.1fx), %d KB moved",
			msec(bMean), msec(nMean), float64(nMean)/float64(bMean), bytesMoved/1024),
		Pass: float64(nMean) >= 2.5*float64(bMean),
	}}
	return t, checks, nil
}
